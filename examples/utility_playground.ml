(* Utility playground: the generic matching framework beyond global
   rankings - symmetric (latency) utilities, blended utilities, adversarial
   cycles, and the classical capacitated baseline.

   Run with:  dune exec examples/utility_playground.exe *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Spatial = Stratify_graph.Spatial
module U = Stratify_graph.Undirected
module Output = Stratify_cli.Output
open Stratify_core

let () =
  let rng = Rng.create 77 in
  let n = 60 in

  Output.section "A latency world";
  let positions = Spatial.random_positions rng ~n in
  let dist = Spatial.distance positions in
  let latency = Utility.symmetric_distance dist in
  Output.note "latency utilities are symmetric: %b" (Utility.is_symmetric latency ~n);
  let acceptance = U.adjacency_arrays (Gen.complete n) in
  let gm = General_matching.create ~utility:latency ~acceptance ~b:(Array.make n 2) in
  let s = Symmetric_greedy.stable_state gm ~utility:latency in
  Output.note "greedy max-utility matching is stable: %b" (General_matching.is_stable gm s);
  let mean_dist =
    let total = ref 0. and k = ref 0 in
    for p = 0 to n - 1 do
      List.iter
        (fun q ->
          total := !total +. dist p q;
          incr k)
        (General_matching.State.mates s p)
    done;
    !total /. float_of_int !k
  in
  Output.note "mean partner distance %.3f (uniform pairs: ~0.52) - proximity clusters"
    mean_dist;

  Output.section "An adversarial world: cyclic utilities";
  let cyclic = Utility.of_function (fun p q -> if (p + 1) mod 3 = q then 2. else 1.) in
  let k3 = [| [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |] |] in
  let g3 = General_matching.create ~utility:cyclic ~acceptance:k3 ~b:[| 1; 1; 1 |] in
  Output.note "stable configuration exists: %b" (General_matching.exists_stable g3);
  (match General_matching.best_response_run g3 ~max_steps:1000 rng with
  | General_matching.Cycled { period_found_at } ->
      Output.note "best-response dynamics revisited a configuration after %d steps"
        period_found_at
  | General_matching.Converged _ -> Output.note "unexpected convergence!");
  let sys = Utility.to_tan cyclic ~acceptance:k3 in
  (match Tan.find_preference_cycle ~parity:`Odd sys with
  | Some cycle ->
      Output.note "Tan's certificate - odd preference cycle: {%s}"
        (String.concat " -> " (List.map string_of_int cycle))
  | None -> Output.note "no odd cycle (!?)");

  Output.section "Blending ranking with latency";
  let ranking_u = Utility.of_function (fun _ q -> float_of_int (n - q)) in
  List.iter
    (fun alpha ->
      let blended = Utility.blend ranking_u latency ~alpha in
      let g = General_matching.create ~utility:blended ~acceptance ~b:(Array.make n 2) in
      match General_matching.best_response_run g ~max_steps:100_000 rng with
      | General_matching.Converged { steps } ->
          Output.note "alpha=%.2f: converged in %d steps" alpha steps
      | General_matching.Cycled _ -> Output.note "alpha=%.2f: dynamics cycled" alpha)
    [ 0.; 0.3; 0.7; 1. ];

  Output.section "The capacitated bipartite baseline (hospitals/residents)";
  let inst =
    {
      Hospital_residents.resident_prefs = [| [| 0; 1 |]; [| 0; 1 |]; [| 1; 0 |]; [| 0 |] |];
      hospital_prefs = [| [| 3; 0; 1; 2 |]; [| 2; 1; 0 |] |];
      capacity = [| 2; 1 |];
    }
  in
  let m = Hospital_residents.solve inst in
  Array.iteri
    (fun r h ->
      if h >= 0 then Output.note "resident %d -> hospital %d" r h
      else Output.note "resident %d unmatched" r)
    m.Hospital_residents.hospital_of;
  Output.note "stable: %b" (Hospital_residents.is_stable inst m)
