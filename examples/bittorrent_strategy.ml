(* BitTorrent strategy: what the stratification model tells a peer about
   its expected share ratio, and why the protocol defaults to 4 slots.

   Reproduces §6's discussion: a rational peer concentrates its upload on
   fewer TFT slots to climb the global ranking; obedient peers need >= 3
   TFT slots to keep the collaboration graph connected.

   Run with:  dune exec examples/bittorrent_strategy.exe *)

module Saroiu = Stratify_bandwidth.Saroiu
module Profile = Stratify_bandwidth.Profile
module Output = Stratify_cli.Output
module Table = Stratify_stats.Table
open Stratify_core

let () =
  let n = 800 and d = 20. in

  Output.section "Expected share ratio across the bandwidth spectrum";
  let r = Share_ratio.compute { Share_ratio.n; b0 = 3; d; profile = Saroiu.profile } in
  let t = Table.create [ "percentile"; "upload (kbps)"; "per slot"; "expected D/U" ] in
  List.iter
    (fun pct ->
      let i = min (n - 1) (int_of_float (float_of_int n *. (1. -. (pct /. 100.)))) in
      ignore
        (Table.add_float_row t
           (Printf.sprintf "%g%%" pct)
           [ r.Share_ratio.upload.(i); r.Share_ratio.upload_per_slot.(i); r.Share_ratio.ratio.(i) ]
           ~fmt:(Printf.sprintf "%.3g")))
    [ 99.9; 95.; 75.; 50.; 25.; 5.; 0.1 ];
  Output.table t;
  Output.note "the fastest peers subsidise the swarm; the slowest ride the optimism";

  Output.section "A rational peer tunes its slot count";
  let my_upload = Saroiu.median_upstream in
  let sweep =
    Share_ratio.sweep_slots ~n ~d ~profile:Saroiu.profile ~my_upload ~slots:[| 1; 2; 3; 4; 5; 6 |] ()
  in
  Array.iter
    (fun (s, ratio) -> Output.note "%d TFT slot(s): expected D/U = %.3f" s ratio)
    sweep;
  Output.note "fewer slots -> higher per-slot bandwidth -> better stratum -> better ratio:";
  Output.note "the race to the 1-slot Nash equilibrium the paper warns about.";

  Output.section "Why 4 slots: connectivity of the TFT collaboration graph";
  (* On complete acceptance, the b0-matching graph is clusters of b0+1:
     pairs for b0=1, triangles/cycles for b0=2 - content cannot spread. *)
  List.iter
    (fun b0 ->
      let analysis = Cluster.analyze_budgets ~b:(Normal_b.constant ~n:120 ~b0) in
      Output.note "b0 = %d TFT slots: largest cluster %d of 120 peers" b0
        analysis.Cluster.largest)
    [ 1; 2; 3 ];
  Output.note "b0 <= 2 confines content inside tiny clusters; 3 TFT slots + 1 optimistic";
  Output.note "(the BitTorrent default of 4) is the smallest safe configuration."
