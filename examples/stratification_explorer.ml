(* Stratification explorer: the §4-§5 phenomena in one tour - complete
   graph clusters, the sigma phase transition, and the mate-rank
   distributions on random acceptance graphs.

   Run with:  dune exec examples/stratification_explorer.exe *)

module Rng = Stratify_prng.Rng
module Series = Stratify_stats.Series
module Discrete = Stratify_stats.Discrete
module Output = Stratify_cli.Output
open Stratify_core

let () =
  let rng = Rng.create 99 in

  Output.section "Complete acceptance graph: clusters of b0+1";
  List.iter
    (fun b0 ->
      let analysis = Cluster.analyze_budgets ~b:(Normal_b.constant ~n:210 ~b0) in
      Output.note "b0 = %d: %3d clusters of mean size %.1f, MMO %.2f (closed form %.2f)" b0
        analysis.Cluster.count analysis.Cluster.mean_size
        (Mmo.of_adjacency (Cluster.collaboration_graph ~b:(Normal_b.constant ~n:210 ~b0) ()))
        (Mmo.closed_form b0))
    [ 1; 2; 4; 6 ];

  Output.section "Heterogeneous budgets: the phase transition";
  let sigmas = [| 0.; 0.1; 0.15; 0.2; 0.5; 1. |] in
  let points = Phase.sweep rng ~n:8000 ~mean_b:4. ~sigmas ~replicates:3 in
  Array.iter
    (fun p ->
      Output.note "sigma %.2f: mean cluster %8.1f, largest %8.0f, MMO %.2f" p.Phase.sigma
        p.Phase.mean_cluster_size p.Phase.largest_cluster p.Phase.mmo)
    points;
  Output.note "a pinch of budget heterogeneity fuses the clusters but the MMO stays";
  Output.note "small: connectivity is fixed, stratification is not.";

  Output.section "Random acceptance graphs: who mates with whom";
  let n = 2000 and p = 0.01 in
  let peers = [| 50; 1000; 1950 |] in
  let rows = One_matching.mate_distributions ~n ~p ~peers in
  let series =
    Array.to_list
      (Array.map2
         (fun peer row ->
           Series.make
             (Printf.sprintf "peer %d" (peer + 1))
             (Array.mapi (fun j w -> (float_of_int (j + 1), w)) (Discrete.to_array row)))
         peers rows)
  in
  Output.plot ~x_label:"mate rank" ~y_label:"probability" series;
  Array.iteri
    (fun k row ->
      Output.note "peer %4d: P(matched) = %.3f, expected mate rank %.0f" (peers.(k) + 1)
        (Discrete.total_mass row) (Discrete.mean row +. 1.))
    rows;

  Output.section "The fluid limit";
  let d = 20. in
  Output.note "scaled offset density of the best peer's mate vs d e^(-beta d):";
  let finite = Fluid.scaled_best_peer_series ~n:2000 ~d in
  let limit =
    Series.make "fluid limit"
      (Array.init 60 (fun i ->
           let beta = float_of_int i /. 120. in
           (beta, Fluid.density ~d beta)))
  in
  let finite_short =
    { finite with Series.points = Array.sub finite.Series.points 0 (Series.length finite / 4) }
  in
  Output.plot ~x_label:"beta = offset/n" ~y_label:"density" [ finite_short; limit ];
  Output.note "max gap to the limit at n=2000: %.4f" (Fluid.max_gap_to_limit ~n:2000 ~d)
