(* Quickstart: build a global-ranking b-matching instance, compute its
   unique stable configuration, and watch decentralised initiatives find
   the same configuration on their own.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
open Stratify_core

let () =
  let rng = Rng.create 2024 in

  (* 1. An instance: 12 peers, Erdős–Rényi acceptance graph with expected
     degree 6, everyone ranked by an intrinsic score, 2 slots each. *)
  let n = 12 in
  let graph = Gen.gnd rng ~n ~d:6. in
  let scores = Array.init n (fun i -> 100. -. float_of_int i +. (0.001 *. float_of_int i)) in
  let ranking = Ranking.of_scores scores in
  let inst = Instance.create ~ranking ~graph ~b:(Array.make n 2) () in
  Printf.printf "Instance: %d peers, %d acceptance edges, %d slots total\n" (Instance.n inst)
    (Array.fold_left (fun acc p -> acc + Instance.degree inst p) 0 (Array.init n (fun i -> i)) / 2)
    (Instance.slot_total inst);

  (* 2. Algorithm 1: the unique stable configuration. *)
  let stable = Greedy.stable_config inst in
  Printf.printf "\nStable configuration (Algorithm 1):\n";
  Config.iter_pairs (fun p q -> Printf.printf "  peer %2d <-> peer %2d\n" p q) stable;
  Printf.printf "stable: %b, collaborations: %d\n" (Blocking.is_stable stable)
    (Config.edge_count stable);

  (* 3. Decentralised dynamics: random best-mate initiatives reach the
     same configuration (Theorem 1). *)
  let sim = Sim.create inst rng in
  (match Sim.run_until_stable sim ~stable ~max_units:100 with
  | Some steps ->
      Printf.printf "\nInitiative dynamics reached the stable configuration after %d initiatives\n"
        steps;
      Printf.printf "(%d of them active; Theorem 1's optimal schedule needs B/2 = %d)\n"
        (Sim.active_count sim)
        (Instance.slot_total inst / 2)
  | None -> Printf.printf "\nDid not converge (should not happen!)\n");
  Printf.printf "same configuration as Algorithm 1: %b\n"
    (Config.equal (Sim.config sim) stable);

  (* 4. Who collaborates with whom? Stratification in one line. *)
  let adj = Config.to_adjacency stable in
  Printf.printf "\nMean max rank offset (MMO): %.2f  (complete-graph closed form: %.2f)\n"
    (Mmo.of_adjacency adj) (Mmo.closed_form 2)
