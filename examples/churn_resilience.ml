(* Churn resilience: how far does a live system drift from its instant
   stable configuration as peers come and go?  Reproduces the §3 message
   (Figs 2-3): the stable configuration is a strong attractor, and the
   residual disorder is proportional to the churn rate.

   Run with:  dune exec examples/churn_resilience.exe *)

module Rng = Stratify_prng.Rng
module Series = Stratify_stats.Series
module Output = Stratify_cli.Output
open Stratify_core

let () =
  let n = 400 and d = 10. in

  Output.section "Single departure: the domino effect";
  List.iter
    (fun remove ->
      let rng = Rng.create 7 in
      let traj = Churn.removal_trajectory rng ~n ~d ~b:1 ~remove ~units:8 ~samples_per_unit:4 in
      let recovery =
        match Series.first_x_below traj 1e-12 with
        | Some x -> Printf.sprintf "recovered after %.2f initiatives/peer" x
        | None -> "still recovering"
      in
      Output.note "remove peer %3d: peak disorder %.4f, %s" (remove + 1) (Series.max_y traj)
        recovery)
    [ 0; 40; 200; 399 ];
  Output.note "removing a good peer displaces everyone below it - the domino effect";

  Output.section "Continuous churn: disorder tracks the churn rate";
  let series =
    List.map
      (fun rate ->
        let rng = Rng.create 7 in
        let params =
          {
            Churn.n;
            d;
            b = 1;
            rate;
            units = 16;
            samples_per_unit = 4;
            strategy = Initiative.Best_mate;
            scheduler = Scheduler.Random_poll;
          }
        in
        let traj = Churn.run rng params in
        let plateau = Churn.mean_disorder_tail traj ~skip_units:8. in
        Output.note "churn rate %5.1f/1000 -> plateau disorder %.4f" (rate *. 1000.) plateau;
        { traj with Series.label = Printf.sprintf "%.1f/1000" (rate *. 1000.) })
      [ 0.02; 0.005; 0.001; 0. ]
  in
  Output.plot ~x_label:"initiatives per peer" ~y_label:"disorder" series;

  Output.section "Strategy comparison under churn";
  List.iter
    (fun strategy ->
      let rng = Rng.create 7 in
      let params =
        {
          Churn.n;
          d;
          b = 1;
          rate = 0.005;
          units = 16;
          samples_per_unit = 2;
          strategy;
          scheduler = Scheduler.Random_poll;
        }
      in
      let traj = Churn.run rng params in
      Output.note "%-12s plateau disorder %.4f"
        (Initiative.strategy_name strategy)
        (Churn.mean_disorder_tail traj ~skip_units:8.))
    [ Initiative.Best_mate; Initiative.Decremental; Initiative.Random ];
  Output.note "less-informed strategies converge more slowly, hence drift further"
