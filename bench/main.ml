(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the reproduction
   harness - same reports as `stratify_experiments all`).  Part 2 times the
   computational kernel behind each table/figure with Bechamel, one
   Test.make per experiment.

   Environment knobs:
     BENCH_SCALE=0.2     shrink the regeneration workloads (default 1.0)
     BENCH_SKIP_REGEN=1  run only the micro-benchmarks. *)

open Bechamel

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Bt = Stratify_bittorrent
module E = Stratify_cli.Experiments
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every table and figure                           *)

let regenerate () =
  let scale =
    match Sys.getenv_opt "BENCH_SCALE" with
    | Some s -> (try Float.min 1. (Float.max 0.01 (float_of_string s)) with _ -> 1.)
    | None -> 1.
  in
  let ctx = { E.seed = 42; scale; csv_dir = None } in
  Printf.printf "Regenerating all tables and figures (scale %g)\n%!" scale;
  List.iter
    (fun (_, _, f) ->
      f ctx;
      print_newline ())
    E.all

(* ------------------------------------------------------------------ *)
(* Part 2: one Bechamel kernel per table/figure                        *)

let make_er_instance ~n ~d ~b seed =
  let rng = Rng.create seed in
  let graph = Gen.gnd rng ~n ~d in
  Instance.create ~graph ~b:(Array.make n b) ()

let bench_fig1 =
  (* Kernel of Figs 1-3: one best-mate initiative step. *)
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 1 in
  let rng = Rng.create 2 in
  let sim = Sim.create inst rng in
  Test.make ~name:"fig1-3: initiative step (n=1000,d=10)"
    (Staged.stage (fun () -> ignore (Sim.step sim)))

let bench_stable_config =
  (* Kernel of Fig 2's instant-stable recomputation. *)
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 3 in
  Test.make ~name:"fig2: Algorithm 1 (n=1000,d=10)"
    (Staged.stage (fun () -> ignore (Greedy.stable_config inst)))

let bench_disorder =
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 4 in
  let stable = Greedy.stable_config inst in
  let empty = Config.empty inst in
  Test.make ~name:"fig3: disorder metric (n=1000)"
    (Staged.stage (fun () -> ignore (Disorder.distance empty stable)))

let bench_complete =
  (* Kernel of Fig 4/5 and Table 1: fast greedy on the complete graph. *)
  let b = Normal_b.constant ~n:10_000 ~b0:6 in
  Test.make ~name:"fig4-5/table1: complete-graph matching (n=10000,b0=6)"
    (Staged.stage (fun () -> ignore (Greedy.stable_complete ~b)))

let bench_phase =
  (* Kernel of Fig 6: one sigma measurement. *)
  let rng = Rng.create 5 in
  Test.make ~name:"fig6: phase point (n=5000,b=6,sigma=0.2)"
    (Staged.stage (fun () ->
         ignore (Phase.measure rng ~n:5000 ~mean_b:6. ~sigma:0.2 ~replicates:1)))

let bench_exact =
  Test.make ~name:"fig7: exact enumeration (n=5,b0=2)"
    (Staged.stage (fun () -> ignore (Exact_small.mate_matrix ~n:5 ~p:0.3 ~b0:2)))

let bench_one_matching =
  Test.make ~name:"fig8: Algorithm 2 sweep (n=2000)"
    (Staged.stage (fun () -> One_matching.sweep ~n:2000 ~p:0.005 ~f:(fun _ _ _ -> ())))

let bench_monte_carlo =
  (* Kernel of Fig 9: one Monte-Carlo realization. *)
  let rng = Rng.create 6 in
  Test.make ~name:"fig9: one G(n,p) stable 2-matching (n=2000,p=1%)"
    (Staged.stage (fun () ->
         let adj = Gen.gnp_adjacency rng ~n:2000 ~p:0.01 in
         let inst = Instance.of_adjacency ~adj ~b:(Array.make 2000 2) () in
         ignore (Greedy.stable_config inst)))

let bench_b_matching =
  Test.make ~name:"fig9/11: Algorithm 3 sweep (n=1000,b0=3)"
    (Staged.stage (fun () -> B_matching.sweep ~n:1000 ~p:0.02 ~b0:3 ~f:(fun _ _ _ _ -> ())))

let bench_profile =
  let rng = Rng.create 7 in
  Test.make ~name:"fig10: bandwidth profile sampling (x1000)"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Profile.sample Saroiu.profile rng)
         done))

let bench_share_ratio =
  Test.make ~name:"fig11: share-ratio model (n=500,b0=3,d=20)"
    (Staged.stage (fun () ->
         ignore
           (Share_ratio.compute { Share_ratio.n = 500; b0 = 3; d = 20.; profile = Saroiu.profile })))

let bench_slots =
  Test.make ~name:"slots: rational-peer sweep (n=300)"
    (Staged.stage (fun () ->
         ignore
           (Share_ratio.sweep_slots ~n:300 ~d:20. ~profile:Saroiu.profile ~my_upload:500.
              ~slots:[| 1; 3 |] ())))

let bench_swarm =
  let rng = Rng.create 8 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n:300 in
  let swarm = Bt.Swarm.create rng (Bt.Swarm.default_params ~uploads) in
  Test.make ~name:"swarm: one simulator tick (n=300)"
    (Staged.stage (fun () -> Bt.Swarm.step swarm))

let bench_roommates =
  let rng = Rng.create 9 in
  let prefs =
    Array.init 100 (fun p ->
        let row = Array.init 100 (fun i -> i) in
        Stratify_prng.Dist.shuffle rng row;
        Array.of_list (List.filter (fun q -> q <> p) (Array.to_list row)))
  in
  let sys = Tan.of_lists prefs in
  Test.make ~name:"substrate: Irving stable roommates (n=100)"
    (Staged.stage (fun () -> ignore (Roommates.solve sys)))

let bench_gale_shapley =
  let rng = Rng.create 10 in
  let mk () =
    Array.init 200 (fun _ ->
        let row = Array.init 200 (fun i -> i) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let men = mk () and women = mk () in
  Test.make ~name:"substrate: Gale-Shapley (n=200)"
    (Staged.stage (fun () -> ignore (Gale_shapley.run ~proposer_prefs:men ~receiver_prefs:women)))

let bench_symmetric =
  let rng = Rng.create 11 in
  let positions = Stratify_graph.Spatial.random_positions rng ~n:200 in
  let u = Stratify_core.Utility.symmetric_distance (Stratify_graph.Spatial.distance positions) in
  let acceptance = Stratify_graph.Undirected.adjacency_arrays (Gen.complete 200) in
  let g = General_matching.create ~utility:u ~acceptance ~b:(Array.make 200 2) in
  Test.make ~name:"latency: symmetric greedy matching (n=200, complete)"
    (Staged.stage (fun () -> ignore (Symmetric_greedy.stable_state g ~utility:u)))

let bench_gossip =
  let rng = Rng.create 12 in
  let g = Gossip.create rng ~n:500 ~view_size:10 in
  Test.make ~name:"gossip: one round (n=500, view 10)"
    (Staged.stage (fun () -> Gossip.round g))

let bench_hospital_residents =
  let rng = Rng.create 13 in
  let n_res = 200 and n_hosp = 20 in
  let resident_prefs =
    Array.init n_res (fun _ ->
        let row = Array.init n_hosp (fun h -> h) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let hospital_prefs =
    Array.init n_hosp (fun _ ->
        let row = Array.init n_res (fun r -> r) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let inst =
    { Hospital_residents.resident_prefs; hospital_prefs; capacity = Array.make n_hosp 10 }
  in
  Test.make ~name:"substrate: hospitals/residents (200x20, cap 10)"
    (Staged.stage (fun () -> ignore (Hospital_residents.solve inst)))

let bench_piece_tick =
  let rng = Rng.create 14 in
  let uploads = Array.make 200 16. in
  let params =
    {
      (Bt.Swarm.default_params ~uploads) with
      Bt.Swarm.d = 15.;
      piece = Some { Bt.Swarm.pieces = 400; piece_size = 8.; init_fraction = 0.5; seeds = 2 };
    }
  in
  let swarm = Bt.Swarm.create rng params in
  Test.make ~name:"flashcrowd: piece-mode swarm tick (n=200, 400 pieces)"
    (Staged.stage (fun () -> Bt.Swarm.step swarm))

let bench_streaming =
  let rng = Rng.create 15 in
  let b = Normal_b.rounded_normal rng ~n:2000 ~mean:8. ~sigma:0.5 in
  let adjacency = Cluster.collaboration_graph ~b in
  Test.make ~name:"streaming: delay measurement (n=2000)"
    (Staged.stage (fun () -> ignore (Streaming.measure ~adjacency ~sources:[ 0 ])))

let bench_edonkey =
  let rng = Rng.create 16 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n:200 in
  let sim = Stratify_edonkey.Queue_sim.create rng (Stratify_edonkey.Queue_sim.default_params ~uploads) in
  Test.make ~name:"edonkey: one credit-queue tick (n=200)"
    (Staged.stage (fun () -> Stratify_edonkey.Queue_sim.step sim))

let bench_async =
  let rng = Rng.create 17 in
  let graph = Gen.gnd rng ~n:300 ~d:10. in
  let inst = Instance.create ~graph ~b:(Array.make 300 1) () in
  let a = Async_dynamics.create inst rng { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0. } in
  Test.make ~name:"async: 1 time unit of the message protocol (n=300)"
    (Staged.stage (fun () -> Async_dynamics.run a ~horizon:1.))

let tests =
  [
    bench_fig1;
    bench_stable_config;
    bench_disorder;
    bench_complete;
    bench_phase;
    bench_exact;
    bench_one_matching;
    bench_monte_carlo;
    bench_b_matching;
    bench_profile;
    bench_share_ratio;
    bench_slots;
    bench_swarm;
    bench_roommates;
    bench_gale_shapley;
    bench_symmetric;
    bench_gossip;
    bench_hospital_residents;
    bench_piece_tick;
    bench_streaming;
    bench_edonkey;
    bench_async;
  ]

let run_benchmarks () =
  print_endline "\n================ Bechamel micro-benchmarks ================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              if ns > 1e6 then Printf.printf "  %-55s %10.3f ms/run\n%!" name (ns /. 1e6)
              else Printf.printf "  %-55s %10.1f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        analysis)
    tests

let () =
  if Sys.getenv_opt "BENCH_SKIP_REGEN" = None then regenerate ();
  run_benchmarks ()
