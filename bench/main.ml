(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the reproduction
   harness - same reports as `stratify_experiments all`).  Part 2 times the
   computational kernel behind each table/figure with Bechamel, one
   Test.make per experiment.  Part 3 measures the multicore replication
   engine (replicas/sec vs --jobs, written to BENCH_parallel.json) and the
   incremental stability-detection fix.  Part 4 measures the
   implicit-backend / flat-config matching core against a faithful replica
   of the pre-rewrite representation (BENCH_core.json).  Part 5 races the
   two convergence schedulers — the paper's uniform random polling vs the
   worklist of active candidates — to the same stable configuration
   (BENCH_sched.json).

   Environment knobs:
     BENCH_SCALE=0.2     shrink the regeneration workloads (default 1.0)
     BENCH_JOBS=4        worker domains for the regeneration pass
                         (default: recommended domain count)
     BENCH_SKIP_REGEN=1  run only the micro-benchmarks
     BENCH_OUT=path      where to write the parallel-scaling run
                         manifest (default BENCH_parallel.json — the
                         checked-in baseline the bench-regression CI job
                         compares against)
     BENCH_CORE_OUT=path where to write the matching-core run manifest
                         (default BENCH_core.json — also a checked-in
                         baseline)
     BENCH_PROFILE_OUT=path where to write the per-phase-profile run
                         manifest (default BENCH_profile.json — also a
                         checked-in baseline; the bench hard-fails if the
                         steady-state sweep or the worklist repair
                         allocates on the minor heap, and the manifest's
                         profile section carries per-kernel wall/GC rows)
     BENCH_SCHED_OUT=path where to write the scheduler-race run manifest
                         (default BENCH_sched.json — also a checked-in
                         baseline)
     BENCH_NET_OUT=path  where to write the network-dispatch run manifest
                         (default BENCH_net.json — also a checked-in
                         baseline; the bench itself fails if fault-free
                         Net.send exceeds 1.15x the direct dispatch)
     BENCH_SHARD_OUT=path where to write the sharded-matching run manifest
                         (default BENCH_shard.json — also a checked-in
                         baseline; the bench asserts band-count
                         invariance in-process and, when enough cores
                         exist, the parallel speedup at 8 bands)
     BENCH_MATRIX_OUT=path where to write the scenario-matrix run manifest
                         (default BENCH_matrix.json — also a checked-in
                         baseline; checksums pin the generated cell list
                         and the metrics of the async-dense slice)
     BENCH_DES_OUT=path  where to write the event-engine run manifest
                         (default BENCH_des.json — also a checked-in
                         baseline; races the heap / calendar / ladder
                         queue backends on a packed-event cascade, the
                         message-level swarm (swarm-md) and the async
                         dynamics under loss.  The bench hard-fails if
                         any backend disagrees on a delivery checksum,
                         if the cascade allocates on the minor heap in
                         steady state, or if the best non-heap backend
                         is not >= 2x the binary heap on swarm-md).
     BENCH_SERVE_OUT=path where to write the service-layer run manifest
                         (default BENCH_serve.json — also a checked-in
                         baseline; replays a mixed tracker script once
                         per queue backend, stop/resumes it across
                         backends, and times the announce hot path.
                         The bench hard-fails if any backend's response
                         checksum or serve manifest differs, or if a
                         snapshot/restore run diverges from the
                         uninterrupted one). *)

open Bechamel

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Bt = Stratify_bittorrent
module E = Stratify_cli.Experiments
module Exec = Stratify_exec.Exec
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every table and figure                           *)

let regenerate () =
  let scale =
    match Sys.getenv_opt "BENCH_SCALE" with
    | Some s -> (try Float.min 1. (Float.max 0.01 (float_of_string s)) with _ -> 1.)
    | None -> 1.
  in
  let jobs =
    match Sys.getenv_opt "BENCH_JOBS" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> Exec.default_jobs ())
    | None -> Exec.default_jobs ()
  in
  let ctx =
    {
      E.seed = 42;
      scale;
      csv_dir = None;
      jobs;
      manifest_dir = None;
      n_override = None;
      scheduler = Scheduler.Random_poll;
      bands = 1;
      band_overlap = None;
      profile_phases = false;
      queue = Stratify_des.Engine.Heap;
    }
  in
  Printf.printf "Regenerating all tables and figures (scale %g, jobs %d)\n%!" scale jobs;
  List.iter
    (fun (_, _, f) ->
      f ctx;
      print_newline ())
    E.all

(* ------------------------------------------------------------------ *)
(* Part 2: one Bechamel kernel per table/figure                        *)

let make_er_instance ~n ~d ~b seed =
  let rng = Rng.create seed in
  let graph = Gen.gnd rng ~n ~d in
  Instance.create ~graph ~b:(Array.make n b) ()

let bench_fig1 =
  (* Kernel of Figs 1-3: one best-mate initiative step. *)
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 1 in
  let rng = Rng.create 2 in
  let sim = Sim.create inst rng in
  Test.make ~name:"fig1-3: initiative step (n=1000,d=10)"
    (Staged.stage (fun () -> ignore (Sim.step sim)))

let bench_stable_config =
  (* Kernel of Fig 2's instant-stable recomputation. *)
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 3 in
  Test.make ~name:"fig2: Algorithm 1 (n=1000,d=10)"
    (Staged.stage (fun () -> ignore (Greedy.stable_config inst)))

let bench_disorder =
  let inst = make_er_instance ~n:1000 ~d:10. ~b:1 4 in
  let stable = Greedy.stable_config inst in
  let empty = Config.empty inst in
  Test.make ~name:"fig3: disorder metric (n=1000)"
    (Staged.stage (fun () -> ignore (Disorder.distance empty stable)))

let bench_complete =
  (* Kernel of Fig 4/5 and Table 1: fast greedy on the complete graph. *)
  let b = Normal_b.constant ~n:10_000 ~b0:6 in
  Test.make ~name:"fig4-5/table1: complete-graph matching (n=10000,b0=6)"
    (Staged.stage (fun () -> ignore (Greedy.stable_complete ~b)))

let bench_phase =
  (* Kernel of Fig 6: one sigma measurement. *)
  let rng = Rng.create 5 in
  Test.make ~name:"fig6: phase point (n=5000,b=6,sigma=0.2)"
    (Staged.stage (fun () ->
         ignore (Phase.measure rng ~n:5000 ~mean_b:6. ~sigma:0.2 ~replicates:1)))

let bench_exact =
  Test.make ~name:"fig7: exact enumeration (n=5,b0=2)"
    (Staged.stage (fun () -> ignore (Exact_small.mate_matrix ~n:5 ~p:0.3 ~b0:2)))

let bench_one_matching =
  Test.make ~name:"fig8: Algorithm 2 sweep (n=2000)"
    (Staged.stage (fun () -> One_matching.sweep ~n:2000 ~p:0.005 ~f:(fun _ _ _ -> ())))

let bench_monte_carlo =
  (* Kernel of Fig 9: one Monte-Carlo realization. *)
  let rng = Rng.create 6 in
  Test.make ~name:"fig9: one G(n,p) stable 2-matching (n=2000,p=1%)"
    (Staged.stage (fun () ->
         let adj = Gen.gnp_adjacency rng ~n:2000 ~p:0.01 in
         let inst = Instance.of_adjacency ~adj ~b:(Array.make 2000 2) () in
         ignore (Greedy.stable_config inst)))

let bench_b_matching =
  Test.make ~name:"fig9/11: Algorithm 3 sweep (n=1000,b0=3)"
    (Staged.stage (fun () -> B_matching.sweep ~n:1000 ~p:0.02 ~b0:3 ~f:(fun _ _ _ _ -> ())))

let bench_profile =
  let rng = Rng.create 7 in
  Test.make ~name:"fig10: bandwidth profile sampling (x1000)"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Profile.sample Saroiu.profile rng)
         done))

let bench_share_ratio =
  Test.make ~name:"fig11: share-ratio model (n=500,b0=3,d=20)"
    (Staged.stage (fun () ->
         ignore
           (Share_ratio.compute { Share_ratio.n = 500; b0 = 3; d = 20.; profile = Saroiu.profile })))

let bench_slots =
  Test.make ~name:"slots: rational-peer sweep (n=300)"
    (Staged.stage (fun () ->
         ignore
           (Share_ratio.sweep_slots ~n:300 ~d:20. ~profile:Saroiu.profile ~my_upload:500.
              ~slots:[| 1; 3 |] ())))

let bench_swarm =
  let rng = Rng.create 8 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n:300 in
  let swarm = Bt.Swarm.create rng (Bt.Swarm.default_params ~uploads) in
  Test.make ~name:"swarm: one simulator tick (n=300)"
    (Staged.stage (fun () -> Bt.Swarm.step swarm))

let bench_roommates =
  let rng = Rng.create 9 in
  let prefs =
    Array.init 100 (fun p ->
        let row = Array.init 100 (fun i -> i) in
        Stratify_prng.Dist.shuffle rng row;
        Array.of_list (List.filter (fun q -> q <> p) (Array.to_list row)))
  in
  let sys = Tan.of_lists prefs in
  Test.make ~name:"substrate: Irving stable roommates (n=100)"
    (Staged.stage (fun () -> ignore (Roommates.solve sys)))

let bench_gale_shapley =
  let rng = Rng.create 10 in
  let mk () =
    Array.init 200 (fun _ ->
        let row = Array.init 200 (fun i -> i) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let men = mk () and women = mk () in
  Test.make ~name:"substrate: Gale-Shapley (n=200)"
    (Staged.stage (fun () -> ignore (Gale_shapley.run ~proposer_prefs:men ~receiver_prefs:women)))

let bench_symmetric =
  let rng = Rng.create 11 in
  let positions = Stratify_graph.Spatial.random_positions rng ~n:200 in
  let u = Stratify_core.Utility.symmetric_distance (Stratify_graph.Spatial.distance positions) in
  let acceptance = Stratify_graph.Undirected.adjacency_arrays (Gen.complete 200) in
  let g = General_matching.create ~utility:u ~acceptance ~b:(Array.make 200 2) in
  Test.make ~name:"latency: symmetric greedy matching (n=200, complete)"
    (Staged.stage (fun () -> ignore (Symmetric_greedy.stable_state g ~utility:u)))

let bench_gossip =
  let rng = Rng.create 12 in
  let g = Gossip.create rng ~n:500 ~view_size:10 in
  Test.make ~name:"gossip: one round (n=500, view 10)"
    (Staged.stage (fun () -> Gossip.round g))

let bench_hospital_residents =
  let rng = Rng.create 13 in
  let n_res = 200 and n_hosp = 20 in
  let resident_prefs =
    Array.init n_res (fun _ ->
        let row = Array.init n_hosp (fun h -> h) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let hospital_prefs =
    Array.init n_hosp (fun _ ->
        let row = Array.init n_res (fun r -> r) in
        Stratify_prng.Dist.shuffle rng row;
        row)
  in
  let inst =
    { Hospital_residents.resident_prefs; hospital_prefs; capacity = Array.make n_hosp 10 }
  in
  Test.make ~name:"substrate: hospitals/residents (200x20, cap 10)"
    (Staged.stage (fun () -> ignore (Hospital_residents.solve inst)))

let bench_piece_tick =
  let rng = Rng.create 14 in
  let uploads = Array.make 200 16. in
  let params =
    {
      (Bt.Swarm.default_params ~uploads) with
      Bt.Swarm.d = 15.;
      piece = Some { Bt.Swarm.pieces = 400; piece_size = 8.; init_fraction = 0.5; seeds = 2 };
    }
  in
  let swarm = Bt.Swarm.create rng params in
  Test.make ~name:"flashcrowd: piece-mode swarm tick (n=200, 400 pieces)"
    (Staged.stage (fun () -> Bt.Swarm.step swarm))

let bench_streaming =
  let rng = Rng.create 15 in
  let b = Normal_b.rounded_normal rng ~n:2000 ~mean:8. ~sigma:0.5 in
  let adjacency = Cluster.collaboration_graph ~b () in
  Test.make ~name:"streaming: delay measurement (n=2000)"
    (Staged.stage (fun () -> ignore (Streaming.measure ~adjacency ~sources:[ 0 ])))

let bench_edonkey =
  let rng = Rng.create 16 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n:200 in
  let sim = Stratify_edonkey.Queue_sim.create rng (Stratify_edonkey.Queue_sim.default_params ~uploads) in
  Test.make ~name:"edonkey: one credit-queue tick (n=200)"
    (Staged.stage (fun () -> Stratify_edonkey.Queue_sim.step sim))

let bench_async =
  let rng = Rng.create 17 in
  let graph = Gen.gnd rng ~n:300 ~d:10. in
  let inst = Instance.create ~graph ~b:(Array.make 300 1) () in
  let a = Async_dynamics.create inst rng { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0. } in
  Test.make ~name:"async: 1 time unit of the message protocol (n=300)"
    (Staged.stage (fun () -> Async_dynamics.run a ~horizon:1.))

let tests =
  [
    bench_fig1;
    bench_stable_config;
    bench_disorder;
    bench_complete;
    bench_phase;
    bench_exact;
    bench_one_matching;
    bench_monte_carlo;
    bench_b_matching;
    bench_profile;
    bench_share_ratio;
    bench_slots;
    bench_swarm;
    bench_roommates;
    bench_gale_shapley;
    bench_symmetric;
    bench_gossip;
    bench_hospital_residents;
    bench_piece_tick;
    bench_streaming;
    bench_edonkey;
    bench_async;
  ]

let run_benchmarks () =
  print_endline "\n================ Bechamel micro-benchmarks ================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              if ns > 1e6 then Printf.printf "  %-55s %10.3f ms/run\n%!" name (ns /. 1e6)
              else Printf.printf "  %-55s %10.1f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: multicore engine scaling + stability-detection fix          *)

let bench_parallel_scaling () =
  print_endline "\n================ Parallel replication scaling ================";
  (* Fig 9's Monte-Carlo kernel: one G(n,p) instance solved to stability.
     The whole section runs with the stratify.obs probes on and is
     published as a run manifest — the same schema the experiments emit
     under --manifest — so CI can track the perf trajectory and pin the
     kernel checksum without parsing free-form text. *)
  let module Obs = Stratify_obs in
  let n = 500 and p = 0.02 and replicas = 24 in
  let kernel rng _i =
    let adj = Gen.gnp_adjacency rng ~n ~p in
    let inst = Instance.of_adjacency ~adj ~b:(Array.make n 2) () in
    Config.edge_count (Greedy.stable_config inst)
  in
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  let time_once jobs =
    let rng = Rng.create 42 in
    let t0 = Unix.gettimeofday () in
    let results =
      Obs.Span.with_
        (Printf.sprintf "bench.jobs_%d" jobs)
        (fun () -> Exec.map_replicas ~jobs ~rng ~replicas kernel)
    in
    let dt = Unix.gettimeofday () -. t0 in
    let checksum = Array.fold_left ( + ) 0 results in
    (float_of_int replicas /. dt, checksum)
  in
  let job_counts = [ 1; 2; 4; 8 ] in
  (* Warm up the allocator/code paths once so jobs=1 is not penalised. *)
  ignore (time_once 1);
  let rows =
    List.map
      (fun jobs ->
        let rate, checksum = time_once jobs in
        Printf.printf "  jobs=%d  %8.2f replicas/sec  (checksum %d)\n%!" jobs rate checksum;
        (jobs, rate, checksum))
      job_counts
  in
  (* All job counts must agree bit-for-bit on the results. *)
  let checksum =
    match rows with
    | (_, _, c0) :: rest ->
        List.iter
          (fun (jobs, _, c) ->
            if c <> c0 then failwith (Printf.sprintf "jobs=%d checksum mismatch" jobs))
          rest;
        c0
    | [] -> 0
  in
  Obs.Counter.add (Obs.Counter.make "bench.checksum") checksum;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_parallel" ~seed:42 ~scale:1.0
      ~jobs:(List.fold_left max 1 job_counts)
      ~metrics:
        ([ ("n", float_of_int n); ("p", p); ("replicas", float_of_int replicas) ]
        @ List.map (fun (j, r, _) -> (Printf.sprintf "replicas_per_sec/%d" j, r)) rows)
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_OUT" with Some p when p <> "" -> p | _ -> "BENCH_parallel.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

let bench_stability_detection () =
  print_endline "\n================ Stability-detection fix ================";
  (* Naive baseline: a [Config.equal] scan before every step — what
     [run_until_stable] used to do.  Same seed, same check-before-step
     order, so both take the identical number of steps.  A third run with
     {e no} check at all isolates the detection overhead from the common
     stepping cost, which otherwise Amdahl-bounds the end-to-end ratio. *)
  let n = 1000 and d = 10. and b = 1 and reps = 10 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let t_base = ref 0. and t_naive = ref 0. and t_inc = ref 0. and steps_total = ref 0 in
  for rep = 1 to reps do
    let inst =
      let rng = Rng.create (100 + rep) in
      let graph = Gen.gnd rng ~n ~d in
      Instance.create ~graph ~b:(Array.make n b) ()
    in
    let stable = Greedy.stable_config inst in
    let max_units = 10_000 in
    let naive () =
      let sim = Sim.create inst (Rng.create (200 + rep)) in
      let limit = max_units * n in
      let rec loop () =
        if Config.equal (Sim.config sim) stable then Some (Sim.steps sim)
        else if Sim.steps sim >= limit then None
        else begin
          ignore (Sim.step sim);
          loop ()
        end
      in
      loop ()
    in
    let incremental () =
      let sim = Sim.create inst (Rng.create (200 + rep)) in
      Sim.run_until_stable sim ~stable ~max_units
    in
    let r_naive, dt_naive = time naive in
    let r_inc, dt_inc = time incremental in
    if r_naive <> r_inc then failwith "stability detection: step counts differ";
    let steps = match r_inc with Some s -> s | None -> failwith "did not converge" in
    let base () =
      let sim = Sim.create inst (Rng.create (200 + rep)) in
      for _ = 1 to steps do
        ignore (Sim.step sim)
      done
    in
    let (), dt_base = time base in
    steps_total := !steps_total + steps;
    t_naive := !t_naive +. dt_naive;
    t_inc := !t_inc +. dt_inc;
    t_base := !t_base +. dt_base
  done;
  Printf.printf "  n=%d d=%g b=%d, %d runs, %d steps total\n" n d b reps !steps_total;
  Printf.printf "  stepping only (no check):        %8.4f s\n" !t_base;
  Printf.printf "  naive (Config.equal every step): %8.4f s\n" !t_naive;
  Printf.printf "  incremental tracker:             %8.4f s\n" !t_inc;
  Printf.printf "  end-to-end speedup:  %.1fx\n" (!t_naive /. !t_inc);
  Printf.printf "  detection overhead:  %.1fx  (%.4f s -> %.4f s)\n%!"
    ((!t_naive -. !t_base) /. (!t_inc -. !t_base))
    (!t_naive -. !t_base) (!t_inc -. !t_base)

(* ------------------------------------------------------------------ *)
(* Part 4: implicit-backend / flat-config matching core                *)

(* Faithful replica of the pre-rewrite matching core: materialized
   adjacency rows, [int list] mate storage with a cached worst rank,
   List.length degrees, and the same scan/early-stop structure as
   [Blocking].  The ≥5x claim in BENCH_core.json is measured against
   this real old representation, not a straw man. *)
module Legacy = struct
  type config = {
    slots : int array;
    adj : int array array;
    mates : int list array;
    worst : int array;  (* cached last element of mates.(p); -1 when unmated *)
    mutable edges : int;
  }

  let empty ~adj ~slots =
    let n = Array.length adj in
    { slots; adj; mates = Array.make n []; worst = Array.make n (-1); edges = 0 }

  let degree c p = List.length c.mates.(p)
  let free_slots c p = c.slots.(p) - degree c p
  let worst_mate c p = let w = c.worst.(p) in if w < 0 then None else Some w

  let rec mem_sorted q = function
    | [] -> false
    | x :: rest -> x = q || (x < q && mem_sorted q rest)

  let mated c p q = q <= c.worst.(p) && mem_sorted q c.mates.(p)

  let insert_sorted q l =
    let rec go = function
      | [] -> [ q ]
      | x :: rest as all -> if q < x then q :: all else x :: go rest
    in
    go l

  let rec last_or_none = function [] -> -1 | [ x ] -> x | _ :: rest -> last_or_none rest

  (* The pre-rewrite [Instance.accepts]: binary search over the
     materialized row. *)
  let accepts c p q =
    let row = c.adj.(p) in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = row.(mid) in
      if x = q then found := true else if x < q then lo := mid + 1 else hi := mid - 1
    done;
    !found

  (* Validation checks included: the pre-rewrite [Config.connect] paid
     them on every rewire, so the replica must too. *)
  let connect c p q =
    if p = q then invalid_arg "Legacy.connect: self-collaboration";
    if not (accepts c p q) then invalid_arg "Legacy.connect: pair not in the acceptance graph";
    if mated c p q then invalid_arg "Legacy.connect: already mates";
    if free_slots c p <= 0 || free_slots c q <= 0 then invalid_arg "Legacy.connect: no free slot";
    c.mates.(p) <- insert_sorted q c.mates.(p);
    c.mates.(q) <- insert_sorted p c.mates.(q);
    if q > c.worst.(p) then c.worst.(p) <- q;
    if p > c.worst.(q) then c.worst.(q) <- p;
    c.edges <- c.edges + 1

  let disconnect c p q =
    c.mates.(p) <- List.filter (fun x -> x <> q) c.mates.(p);
    c.mates.(q) <- List.filter (fun x -> x <> p) c.mates.(q);
    if c.worst.(p) = q then c.worst.(p) <- last_or_none c.mates.(p);
    if c.worst.(q) = p then c.worst.(q) <- last_or_none c.mates.(q);
    c.edges <- c.edges - 1

  let drop_worst c p =
    match worst_mate c p with None -> () | Some q -> disconnect c p q

  let would_accept c p q =
    if free_slots c p > 0 then c.slots.(p) > 0
    else match worst_mate c p with None -> false | Some w -> q < w

  let best_blocking_mate c p =
    if c.slots.(p) = 0 then None
    else begin
      let row = c.adj.(p) in
      let len = Array.length row in
      let rec scan i =
        if i >= len then None
        else begin
          let q = row.(i) in
          if not (would_accept c p q) then None
          else if (not (mated c p q)) && would_accept c q p then Some q
          else scan (i + 1)
        end
      in
      scan 0
    end

  (* Same scan, counting probes — run untimed so the instrumentation
     does not pollute the legacy rate. *)
  let probe_count c p =
    if c.slots.(p) = 0 then 0
    else begin
      let row = c.adj.(p) in
      let len = Array.length row in
      let rec scan i acc =
        if i >= len then acc
        else begin
          let q = row.(i) in
          let acc = acc + 1 in
          if not (would_accept c p q) then acc
          else if (not (mated c p q)) && would_accept c q p then acc
          else scan (i + 1) acc
        end
      in
      scan 0 0
    end

  let step rng c n =
    let p = Rng.int rng n in
    match best_blocking_mate c p with
    | None -> false
    | Some q ->
        if free_slots c p <= 0 then drop_worst c p;
        if free_slots c q <= 0 then drop_worst c q;
        connect c p q;
        true
end

(* Order-sensitive hash of the collaboration set (pairs p<q in ascending
   order) — the determinism checksum pinned by the bench-regression job.
   Implementation-independent: both representations iterate pairs in the
   same order. *)
let fnv_pairs iter =
  let h = ref 0x811c9dc5 in
  iter (fun p q -> h := ((!h * 16777619) lxor ((p lsl 20) lxor q)) land ((1 lsl 50) - 1));
  !h

let bench_core () =
  print_endline "\n================ Implicit-backend / flat-config core ================";
  let module Obs = Stratify_obs in
  let n = 10_000 and b0 = 6 in
  let b = Array.make n b0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* New core: implicit complete acceptance graph, flat-array config. *)
  let inst = Instance.complete ~n ~b () in
  let stable = Greedy.stable_config inst in
  (* Legacy core: materialized n×(n-1) rows (what Gen.complete +
     Instance.build produced), list-based config built to the identical
     stable state. *)
  let legacy_adj = Array.init n (fun p -> Array.init (n - 1) (fun i -> if i < p then i else i + 1)) in
  let legacy_stable = Legacy.empty ~adj:legacy_adj ~slots:b in
  Config.iter_pairs (fun p q -> Legacy.connect legacy_stable p q) stable;
  let cs_stable = fnv_pairs (fun f -> Config.iter_pairs f stable) in
  let cs_legacy =
    fnv_pairs (fun f ->
        Array.iteri (fun p l -> List.iter (fun q -> if p < q then f p q) l) legacy_stable.Legacy.mates)
  in
  if cs_stable <> cs_legacy then failwith "bench.core: stable-config checksum mismatch";

  (* (a) Stability sweep: one best_blocking_mate call per peer on the
     stable configuration — the probe loop that dominates the dynamics
     near convergence (Figs 1-3).  The probe total is deterministic and
     identical for both implementations by construction. *)
  let probes_per_sweep = ref 0 in
  for p = 0 to n - 1 do
    probes_per_sweep := !probes_per_sweep + Legacy.probe_count legacy_stable p
  done;
  let probes_per_sweep = !probes_per_sweep in
  let blocked_legacy, dt_sweep_legacy =
    time (fun () ->
        let hits = ref 0 in
        for p = 0 to n - 1 do
          match Legacy.best_blocking_mate legacy_stable p with
          | Some _ -> incr hits
          | None -> ()
        done;
        !hits)
  in
  let core_reps = 3 in
  let blocked_core, dt_sweep_core =
    time (fun () ->
        let hits = ref 0 in
        for _ = 1 to core_reps do
          for p = 0 to n - 1 do
            if Blocking.best_blocking_mate_int stable p >= 0 then incr hits
          done
        done;
        !hits)
  in
  if blocked_legacy <> 0 || blocked_core <> 0 then
    failwith "bench.core: stable configuration has blocking pairs";
  let rate_sweep_legacy = float_of_int probes_per_sweep /. dt_sweep_legacy in
  let rate_sweep_core = float_of_int (core_reps * probes_per_sweep) /. dt_sweep_core in
  Printf.printf "  probe sweep (n=%d, b0=%d, %d probes):\n" n b0 probes_per_sweep;
  Printf.printf "    legacy list core:    %10.2f Mprobes/s\n" (rate_sweep_legacy /. 1e6);
  Printf.printf "    flat/implicit core:  %10.2f Mprobes/s  (%.1fx)\n%!"
    (rate_sweep_core /. 1e6) (rate_sweep_core /. rate_sweep_legacy);

  (* (b) Best-mate dynamics at stability: the Sim.step loop of Figs 1-3
     in the regime that dominates wall-clock (every step scans, nothing
     rewires).  Identical RNG streams, so both implementations probe the
     same peers. *)
  let t_steps = 2_000 in
  let active_legacy, dt_dyn_legacy =
    time (fun () ->
        let rng = Rng.create 42 in
        let active = ref 0 in
        for _ = 1 to t_steps do
          if Legacy.step rng legacy_stable n then incr active
        done;
        !active)
  in
  let core_step rng c =
    let p = Rng.int rng n in
    let q = Blocking.best_blocking_mate_int c p in
    q >= 0
    && begin
         if Config.free_slots c p <= 0 then ignore (Config.drop_worst_rank c p);
         if Config.free_slots c q <= 0 then ignore (Config.drop_worst_rank c q);
         Config.connect c p q;
         true
       end
  in
  let active_core, dt_dyn_core =
    time (fun () ->
        let rng = Rng.create 42 in
        let active = ref 0 in
        for _ = 1 to t_steps do
          if core_step rng stable then incr active
        done;
        !active)
  in
  if active_legacy <> active_core then failwith "bench.core: dynamics diverged";
  let cs_dyn = fnv_pairs (fun f -> Config.iter_pairs f stable) in
  if cs_dyn <> cs_stable then failwith "bench.core: stable dynamics mutated the configuration";
  let rate_dyn_legacy = float_of_int t_steps /. dt_dyn_legacy in
  let rate_dyn_core = float_of_int t_steps /. dt_dyn_core in
  Printf.printf "  best-mate dynamics at stability (%d steps):\n" t_steps;
  Printf.printf "    legacy list core:    %10.0f steps/s\n" rate_dyn_legacy;
  Printf.printf "    flat/implicit core:  %10.0f steps/s  (%.1fx)\n%!" rate_dyn_core
    (rate_dyn_core /. rate_dyn_legacy);

  (* (c) Fill dynamics from the empty configuration: exercises the
     connect/disconnect shift path, same RNG streams, checksummed. *)
  let fill_steps = 4 * n in
  let cs_fill_legacy, dt_fill_legacy =
    time (fun () ->
        let rng = Rng.create 7 in
        let c = Legacy.empty ~adj:legacy_adj ~slots:b in
        for _ = 1 to fill_steps do
          ignore (Legacy.step rng c n)
        done;
        fnv_pairs (fun f ->
            Array.iteri
              (fun p l -> List.iter (fun q -> if p < q then f p q) l)
              c.Legacy.mates))
  in
  let cs_fill_core, dt_fill_core =
    time (fun () ->
        let rng = Rng.create 7 in
        let c = Config.empty inst in
        for _ = 1 to fill_steps do
          ignore (core_step rng c)
        done;
        fnv_pairs (fun f -> Config.iter_pairs f c))
  in
  if cs_fill_legacy <> cs_fill_core then failwith "bench.core: fill dynamics diverged";
  let rate_fill_legacy = float_of_int fill_steps /. dt_fill_legacy in
  let rate_fill_core = float_of_int fill_steps /. dt_fill_core in
  Printf.printf "  fill dynamics from empty (%d steps):\n" fill_steps;
  Printf.printf "    legacy list core:    %10.0f steps/s\n" rate_fill_legacy;
  Printf.printf "    flat/implicit core:  %10.0f steps/s  (%.1fx)\n%!" rate_fill_core
    (rate_fill_core /. rate_fill_legacy);

  (* (d) Memory demonstration: the fig4/table1 kernel at n=10⁵ on the
     implicit backend.  A dense complete acceptance graph would need
     n(n-1) ints ≈ 80 GB; the implicit pipeline's live heap is O(n·b̄). *)
  let n5 = 100_000 in
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  (* Live words only show what survives; the churn through the minor
     heap (and what the GC promoted) is the allocation-pressure story,
     so report those deltas too. *)
  let minor0, promoted0, _ = Gc.counters () in
  let (edges5, clusters5, live5), dt_1e5 =
    time (fun () ->
        let inst5 = Instance.complete ~n:n5 ~b:(Array.make n5 b0) () in
        let cfg5 = Greedy.stable_config inst5 in
        let adj5 = Config.to_adjacency cfg5 in
        let analysis = Cluster.analyze adj5 in
        Gc.compact ();
        let live = (Gc.stat ()).Gc.live_words in
        (Config.edge_count cfg5, analysis.Cluster.count, live))
  in
  let minor1, promoted1, _ = Gc.counters () in
  let minor_mwords = (minor1 -. minor0) /. 1e6 in
  let promoted_mwords = (promoted1 -. promoted0) /. 1e6 in
  let live_mb = float_of_int ((live5 - live0) * 8) /. 1e6 in
  let dense_mb = float_of_int n5 *. float_of_int (n5 - 1) *. 8. /. 1e6 in
  Printf.printf "  complete-graph pipeline at n=%d (b0=%d): %.2f s\n" n5 b0 dt_1e5;
  Printf.printf "    %d edges, %d clusters\n" edges5 clusters5;
  Printf.printf "    live heap for the pipeline: %.1f MB (dense adjacency would be %.0f MB)\n"
    live_mb dense_mb;
  Printf.printf "    allocation churn: %.1f Mwords minor, %.2f Mwords promoted\n%!" minor_mwords
    promoted_mwords;

  (* Publish as a run manifest: "checksum.*" counters are pinned exactly
     by the bench-regression job; "rate/*" metrics fail CI when more
     than --max-slowdown slower than the committed baseline. *)
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.core_stable_config") cs_stable;
  Obs.Counter.add (Obs.Counter.make "checksum.core_sweep_probes") probes_per_sweep;
  Obs.Counter.add (Obs.Counter.make "checksum.core_dyn_stable_active") active_core;
  Obs.Counter.add (Obs.Counter.make "checksum.core_fill_config") cs_fill_core;
  Obs.Counter.add (Obs.Counter.make "checksum.core_complete_1e5_edges") edges5;
  Obs.Counter.add (Obs.Counter.make "checksum.core_complete_1e5_clusters") clusters5;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_core" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        [
          ("n", float_of_int n);
          ("b0", float_of_int b0);
          ("rate/sweep_probes_legacy", rate_sweep_legacy);
          ("rate/sweep_probes_core", rate_sweep_core);
          ("rate/dyn_stable_steps_legacy", rate_dyn_legacy);
          ("rate/dyn_stable_steps_core", rate_dyn_core);
          ("rate/fill_steps_legacy", rate_fill_legacy);
          ("rate/fill_steps_core", rate_fill_core);
          ("speedup/sweep", rate_sweep_core /. rate_sweep_legacy);
          ("speedup/dyn_stable", rate_dyn_core /. rate_dyn_legacy);
          ("speedup/fill", rate_fill_core /. rate_fill_legacy);
          ("mem/complete_1e5_live_mb", live_mb);
          ("mem/complete_1e5_dense_equiv_mb", dense_mb);
          ("mem/complete_1e5_minor_mwords", minor_mwords);
          ("mem/complete_1e5_promoted_mwords", promoted_mwords);
        ]
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_CORE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_core.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 4b: per-phase profile + the zero-alloc steady-state gate       *)

(* The allocation contract of the rewritten core (DESIGN.md §13),
   asserted: once converged, probing and repairing allocate (next to)
   nothing on the minor heap.  Both windows are RNG-free — the xoshiro
   state boxes int64s, so only the Best_mate sweep and the worklist
   drain can be measured at zero words.  Also runs the instrumented
   build kernels under Stratify_obs.Profile and publishes the per-kernel
   wall/GC rows as the manifest's "profile" section, which the
   bench-regression job ratchets. *)
let bench_profile_phases () =
  print_endline
    "\n================ Per-phase profile / zero-alloc steady state ================";
  let module Obs = Stratify_obs in
  let n = 10_000 and b0 = 6 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let inst = Instance.complete ~n ~b:(Array.make n b0) () in
  let stable = Greedy.stable_config inst in
  let cs_stable = fnv_pairs (fun f -> Config.iter_pairs f stable) in

  (* (a) Steady-state probe sweep: every peer scans for a blocking mate
     and finds none.  After the warm-up call the measured window must
     stay off the minor heap entirely; the word budget absorbs the
     boxed floats of the measurement itself. *)
  let sweep () =
    let hits = ref 0 in
    for p = 0 to n - 1 do
      if Blocking.best_blocking_mate_int stable p >= 0 then incr hits
    done;
    !hits
  in
  if sweep () <> 0 then failwith "bench.profile: stable configuration has blocking pairs";
  let sweep_reps = 50 in
  let sweep_initiatives = sweep_reps * n in
  let m0 = Gc.minor_words () in
  let (), dt_sweep = time (fun () -> for _ = 1 to sweep_reps do ignore (sweep ()) done) in
  let sweep_minor = Gc.minor_words () -. m0 in
  let sweep_zero_alloc = sweep_minor <= 256. in
  if not sweep_zero_alloc then
    failwith
      (Printf.sprintf "bench.profile: steady-state sweep allocated %.0f minor words over %d \
                       initiatives (expected ~0)"
         sweep_minor sweep_initiatives);
  let rate_sweep = float_of_int sweep_initiatives /. dt_sweep in
  Printf.printf "  steady-state sweep: %d initiatives, %.0f minor words (gate: ~0)\n"
    sweep_initiatives sweep_minor;
  Printf.printf "    %10.0f initiatives/s\n%!" rate_sweep;

  (* (b) Perturb-and-repair: drop the worst mate of every 10th peer,
     then drain the worklist with Best_mate (consumes no randomness)
     back to the unique stable configuration.  The only allocations per
     window are the drain's shared note closure and its result tuple,
     so minor words per performed initiative must stay far below 1. *)
  let sched = Scheduler.create ~n in
  let state = Initiative.create_state inst in
  let rng = Rng.create 0 in
  let perturb () =
    let p = ref 0 in
    while !p < n do
      let q = Config.drop_worst_rank stable !p in
      if q >= 0 then begin
        Scheduler.push sched !p;
        Scheduler.push sched q
      end;
      p := !p + 10
    done
  in
  (* Warm-up: one unmeasured cycle to touch every code path once. *)
  perturb ();
  ignore (Scheduler.drain sched stable state Initiative.Best_mate rng);
  let repair_reps = 20 in
  let total_active = ref 0 in
  let m1 = Gc.minor_words () in
  let (), dt_repair =
    time (fun () ->
        for _ = 1 to repair_reps do
          perturb ();
          let active, _pops = Scheduler.drain sched stable state Initiative.Best_mate rng in
          total_active := !total_active + active
        done)
  in
  let repair_minor = Gc.minor_words () -. m1 in
  let repair_words_per_initiative = repair_minor /. float_of_int (max 1 !total_active) in
  let repair_zero_alloc = repair_words_per_initiative < 1.0 in
  if not repair_zero_alloc then
    failwith
      (Printf.sprintf "bench.profile: repair allocated %.2f minor words per initiative \
                       (expected < 1)"
         repair_words_per_initiative);
  let cs_repaired = fnv_pairs (fun f -> Config.iter_pairs f stable) in
  if cs_repaired <> cs_stable then failwith "bench.profile: repair missed the stable fixed point";
  let rate_repair = float_of_int !total_active /. dt_repair in
  Printf.printf "  perturb+repair: %d initiatives, %.3f minor words/initiative (gate: < 1)\n"
    !total_active repair_words_per_initiative;
  Printf.printf "    %10.0f initiatives/s\n%!" rate_repair;

  (* (c) The instrumented build kernels under Profile: arena-reused
     greedy builds, the cut scan and a banded solve.  The snapshot
     becomes the manifest's "profile" section. *)
  Obs.Profile.reset ();
  Obs.Profile.set_enabled true;
  let arena = Greedy.create_arena () in
  let builds = 5 in
  let rebuilt = ref stable in
  for _ = 1 to builds do
    rebuilt := Greedy.stable_config ~arena inst
  done;
  if not (Config.equal !rebuilt stable) then
    failwith "bench.profile: arena-reused build diverged from the fresh build";
  ignore (Shard.cluster_cuts ~arena inst);
  let sharded = Shard.stable_config ~jobs:1 ~bands:8 ~arena inst in
  Obs.Profile.set_enabled false;
  if not (Config.equal sharded stable) then
    failwith "bench.profile: sharded build diverged from the serial build";
  Printf.printf "  profiled kernels:\n";
  List.iter
    (fun (r : Obs.Profile.entry) ->
      Printf.printf "    %-18s %8.2f ms  %3d call(s)  %9d ops  %10.0f minor words\n" r.kernel
        (r.wall_s *. 1e3) r.count r.ops r.minor_words)
    (Obs.Profile.snapshot ());

  (* Publish: the zero-alloc verdicts are pinned exactly as checksum
     counters (so CI fails loudly if a regression slips past the local
     failwith), rates ratchet via rate/*, and the per-kernel rows ride
     in the manifest's profile section. *)
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.profile_stable_config") cs_stable;
  Obs.Counter.add (Obs.Counter.make "checksum.profile_sweep_initiatives") sweep_initiatives;
  Obs.Counter.add (Obs.Counter.make "checksum.profile_repair_initiatives") !total_active;
  Obs.Counter.add
    (Obs.Counter.make "checksum.profile_sweep_zero_alloc")
    (if sweep_zero_alloc then 1 else 0);
  Obs.Counter.add
    (Obs.Counter.make "checksum.profile_repair_zero_alloc")
    (if repair_zero_alloc then 1 else 0);
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_profile" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        [
          ("n", float_of_int n);
          ("b0", float_of_int b0);
          ("rate/profile_sweep_initiatives", rate_sweep);
          ("rate/profile_repair_initiatives", rate_repair);
          ("alloc/sweep_minor_words", sweep_minor);
          ("alloc/repair_minor_words_per_initiative", repair_words_per_initiative);
        ]
      ()
  in
  (* Keep later bench sections' manifests profile-free. *)
  Obs.Profile.reset ();
  let out =
    match Sys.getenv_opt "BENCH_PROFILE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_profile.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 5: convergence schedulers — random polling vs active worklist  *)

let bench_sched () =
  print_endline "\n================ Convergence scheduler (random poll vs worklist) ================";
  let module Obs = Stratify_obs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Race both policies from the empty configuration to the (unique,
     Theorem 1) stable configuration.  [run_until_stable] counts every
     initiative attempt; under [Worklist] it terminates the moment the
     dirty queue drains, which certifies stability without the
     random-poll tail of wasted scans.  Final configurations must be
     bit-identical — that is the uniqueness theorem, pinned here by
     checksum. *)
  let race ~label inst ~max_units =
    let stable = Greedy.stable_config inst in
    let run policy =
      let rng = Rng.create 42 in
      let sim = Sim.create ~scheduler:policy inst rng in
      let steps_opt, dt = time (fun () -> Sim.run_until_stable sim ~stable ~max_units) in
      match steps_opt with
      | None ->
          failwith
            (Printf.sprintf "bench.sched: %s did not stabilize under %s" label
               (Scheduler.policy_name policy))
      | Some attempts ->
          let checksum = fnv_pairs (fun f -> Config.iter_pairs f (Sim.config sim)) in
          (attempts, Sim.active_count sim, checksum, dt)
    in
    let attempts_r, active_r, cs_r, dt_r = run Scheduler.Random_poll in
    let attempts_w, active_w, cs_w, dt_w = run Scheduler.Worklist in
    if cs_r <> cs_w then
      failwith (Printf.sprintf "bench.sched: %s final configurations diverged" label);
    let ratio = float_of_int attempts_r /. float_of_int (max 1 attempts_w) in
    Printf.printf "  %s:\n" label;
    Printf.printf "    random poll:  %9d attempts (%d active) in %6.3f s\n" attempts_r active_r
      dt_r;
    Printf.printf "    worklist:     %9d attempts (%d active) in %6.3f s  (%.1fx fewer attempts)\n%!"
      attempts_w active_w dt_w ratio;
    (attempts_r, attempts_w, active_w, cs_w, dt_r, dt_w, ratio)
  in
  let n4 = 10_000 and b0 = 6 in
  let complete = Instance.complete ~n:n4 ~b:(Array.make n4 b0) () in
  (* Random polling needs ~0.47·n units here (stratification settles
     top-down, so low-stratum polls are wasted until their turn —
     DESIGN.md §9); the worklist replays Algorithm 1's connection order
     in ~B/2 active pops.  The random leg dominates this bench's wall
     time by design: that cost is the measurement. *)
  let c_ar, c_aw, c_actw, c_cs, c_dtr, c_dtw, c_ratio =
    race ~label:(Printf.sprintf "complete n=%d b0=%d" n4 b0) complete ~max_units:6_000
  in
  if c_ratio < 5. then
    failwith
      (Printf.sprintf "bench.sched: worklist saves only %.1fx attempts on the complete case"
         c_ratio);
  let n5 = 100_000 and d = 10. in
  let gnd =
    let rng = Rng.create 1 in
    let graph = Gen.gnd rng ~n:n5 ~d in
    Instance.create ~graph ~b:(Array.make n5 1) ()
  in
  let g_ar, g_aw, g_actw, g_cs, g_dtr, g_dtw, g_ratio =
    race ~label:(Printf.sprintf "G(n,d) n=%d d=%g b=1" n5 d) gnd ~max_units:400
  in
  (* Pin exact determinism: the shared final configuration of each case
     and the worklist attempt counts (the worklist draws no randomness
     with the best-mate strategy, so these are schedule-determined). *)
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_complete_config") c_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_complete_worklist_attempts") c_aw;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_complete_worklist_active") c_actw;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_gnd_config") g_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_gnd_worklist_attempts") g_aw;
  Obs.Counter.add (Obs.Counter.make "checksum.sched_gnd_worklist_active") g_actw;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_sched" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        [
          ("complete/n", float_of_int n4);
          ("complete/b0", float_of_int b0);
          ("complete/attempts_random", float_of_int c_ar);
          ("complete/attempts_worklist", float_of_int c_aw);
          ("complete/attempts_ratio", c_ratio);
          ("complete/wall_random_s", c_dtr);
          ("complete/wall_worklist_s", c_dtw);
          ("rate/sched_complete_random", float_of_int c_ar /. c_dtr);
          ("rate/sched_complete_worklist", float_of_int c_aw /. c_dtw);
          ("gnd/n", float_of_int n5);
          ("gnd/d", d);
          ("gnd/attempts_random", float_of_int g_ar);
          ("gnd/attempts_worklist", float_of_int g_aw);
          ("gnd/attempts_ratio", g_ratio);
          ("gnd/wall_random_s", g_dtr);
          ("gnd/wall_worklist_s", g_dtw);
          ("rate/sched_gnd_random", float_of_int g_ar /. g_dtr);
          ("rate/sched_gnd_worklist", float_of_int g_aw /. g_dtw);
        ]
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_SCHED_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_sched.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 6: stratify.net dispatch overhead                              *)

let bench_net () =
  print_endline "\n================ Network layer (fault-free Net.send vs Engine.schedule) ================";
  let module Obs = Stratify_obs in
  let module Net = Stratify_net.Net in
  let module Engine = Stratify_des.Engine in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Every Async_dynamics message now crosses Net.send; the fault-free
     configuration must stay within 1.15x of the direct Engine.schedule
     path it replaced, or the refactor has a hot-path cost.  Both legs
     run the identical event cascade: each delivery schedules the next
     message until the budget is spent. *)
  let events = 1_000_000 in
  let run_engine () =
    let e = Engine.create () in
    let count = ref 0 in
    let rec send () =
      if !count < events then begin
        incr count;
        Engine.schedule e ~delay:0.05 (fun _ -> send ())
      end
    in
    send ();
    ignore (Engine.drain e);
    !count
  in
  let run_net () =
    let net = Net.create (Rng.create 42) (Net.ideal ~latency:0.05 ()) in
    let count = ref 0 in
    let rec send () =
      if !count < events then begin
        incr count;
        Net.send net ~src:(!count land 63) ~dst:((!count + 1) land 63) (fun _ -> send ())
      end
    in
    send ();
    ignore (Engine.drain (Net.engine net));
    !count
  in
  let best leg =
    let rec go k acc =
      if k = 0 then acc
      else
        let n, dt = time leg in
        if n <> events then failwith "bench.net: event count mismatch";
        go (k - 1) (Float.min acc dt)
    in
    go 3 infinity
  in
  ignore (run_engine ());
  (* warm *)
  let dt_engine = best run_engine in
  let dt_net = best run_net in
  let rate_engine = float_of_int events /. dt_engine in
  let rate_net = float_of_int events /. dt_net in
  let overhead = dt_net /. dt_engine in
  Printf.printf "  dispatch cascade (%d events, best of 3):\n" events;
  Printf.printf "    direct Engine.schedule: %10.2f Mevents/s\n" (rate_engine /. 1e6);
  Printf.printf "    fault-free Net.send:    %10.2f Mevents/s  (%.3fx overhead)\n%!"
    (rate_net /. 1e6) overhead;
  if overhead > 1.15 then
    failwith
      (Printf.sprintf
         "bench.net: fault-free Net.send is %.3fx the direct dispatch (budget 1.15x). \
          Note: the dev profile compiles with -opaque, which turns the Obs counter probes \
          into indirect calls and inflates dispatch overhead — run this bench with \
          `dune exec --profile release bench/main.exe`."
         overhead);

  (* Determinism checksum: a faulty pipeline (loss + duplication +
     reordering + a partition window) must deliver the exact same message
     sequence on every platform.  Hash the delivery order of message ids. *)
  let trace_events = 50_000 in
  let net =
    Net.create (Rng.create 7)
      {
        Net.latency = Net.Jitter { base = 0.05; spread = 0.3 };
        loss = Net.Burst { p_gb = 0.05; p_bg = 0.3; loss_good = 0.02; loss_bad = 0.5 };
        duplicate = 0.05;
        reorder = 0.1;
        reorder_spread = 1.;
      }
  in
  Net.set_partition_schedule net
    [
      { Net.at = 100.; groups = Some (Array.init 64 (fun p -> p land 1)) };
      { Net.at = 300.; groups = None };
    ];
  let e = Net.engine net in
  let h = ref 0x811c9dc5 in
  for k = 0 to trace_events - 1 do
    Engine.schedule_at e
      ~time:(float_of_int k *. 0.01)
      (fun _ ->
        Net.send net ~src:(k land 63) ~dst:((k * 7) land 63) (fun _ ->
            h := ((!h * 16777619) lxor k) land ((1 lsl 50) - 1)))
  done;
  ignore (Engine.drain e);
  let cs_trace = !h in
  Printf.printf "  faulty-pipeline delivery checksum over %d sends: %d delivered, lost %d, dup %d\n%!"
    trace_events (Net.delivered net) (Net.lost net) (Net.duplicated net);

  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace") cs_trace;
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace_delivered") (Net.delivered net);
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace_lost") (Net.lost net);
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace_partitioned") (Net.partitioned net);
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace_duplicated") (Net.duplicated net);
  Obs.Counter.add (Obs.Counter.make "checksum.net_trace_reordered") (Net.reordered net);
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_net" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        [
          ("events", float_of_int events);
          ("rate/net_dispatch", rate_net);
          ("rate/engine_dispatch", rate_engine);
          ("overhead/fault_free", overhead);
        ]
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_NET_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_net.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 7: rank-banded sharded matching                                *)

let bench_shard () =
  print_endline "\n================ Sharded matching (rank bands over the domain pool) ================";
  let module Obs = Stratify_obs in
  let n = 1_000_000 and b0 = 3 in
  let inst = Instance.complete ~n ~b:(Array.make n b0) () in
  let jobs = Exec.default_jobs () in
  let cores = Domain.recommended_domain_count () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* bands = 1 short-circuits to the plain greedy — that IS the
     baseline the speedups are measured against. *)
  let runs =
    List.map
      (fun bands ->
        let config, dt = time (fun () -> Shard.stable_config ~jobs ~bands inst) in
        let cs = fnv_pairs (fun f -> Config.iter_pairs f config) in
        let edges = Config.edge_count config in
        Printf.printf "  bands=%d jobs=%d: %6.3f s  (%d edges, checksum %d)\n%!" bands jobs dt
          edges cs;
        (bands, dt, cs, edges))
      [ 1; 2; 4; 8 ]
  in
  (* Band-count invariance (Theorem 1's uniqueness), asserted in
     process before anything is written. *)
  let _, base_dt, base_cs, base_edges = List.hd runs in
  List.iter
    (fun (bands, _, cs, edges) ->
      if cs <> base_cs || edges <> base_edges then
        failwith (Printf.sprintf "bench.shard: %d-band configuration diverged" bands))
    runs;
  let wall bands =
    match List.find_opt (fun (b, _, _, _) -> b = bands) runs with
    | Some (_, dt, _, _) -> dt
    | None -> base_dt
  in
  let s4 = base_dt /. wall 4 and s8 = base_dt /. wall 8 in
  Printf.printf "  speedup vs 1 band: x%.2f at 4 bands, x%.2f at 8 bands (%d cores)\n%!" s4 s8
    cores;
  (* The speedup gate needs the cores to exist: near-linear scaling in
     bands means >= 3x at 8 bands on a >= 8-core host and a softer bar
     at 4; below that only invariance is asserted (a 1-core runner
     cannot measure parallelism, and the rate/* metrics below still
     catch gross serial regressions via --max-slowdown). *)
  if cores >= 8 && s8 < 3. then
    failwith
      (Printf.sprintf "bench.shard: %.2fx speedup at 8 bands on %d cores (need >= 3x)" s8 cores);
  if cores >= 4 && cores < 8 && s4 < 1.5 then
    failwith
      (Printf.sprintf "bench.shard: %.2fx speedup at 4 bands on %d cores (need >= 1.5x)" s4 cores);
  if cores < 4 then
    Printf.printf "  (%d cores: speedup gate skipped, invariance still asserted)\n%!" cores;
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.shard_config") base_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.shard_edges") base_edges;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_shard" ~seed:42 ~scale:1.0 ~jobs
      ~metrics:
        (List.concat_map
           (fun (bands, dt, _, edges) ->
             [
               (Printf.sprintf "shard/wall_bands_%d_s" bands, dt);
               (Printf.sprintf "rate/shard_bands_%d" bands, float_of_int edges /. dt);
             ])
           runs
        @ [
            ("shard/n", float_of_int n);
            ("shard/b0", float_of_int b0);
            ("shard/jobs", float_of_int jobs);
            ("shard/cores", float_of_int cores);
            ("shard/speedup_4", s4);
            ("shard/speedup_8", s8);
          ])
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_SHARD_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_shard.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 8: scenario-matrix expansion and execution                     *)

let bench_matrix () =
  print_endline "\n================ Scenario matrix (expansion + cell execution) ================";
  let module Obs = Stratify_obs in
  let module Matrix = Stratify_net_plan.Matrix in
  let module Plan = Stratify_net_plan.Plan in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Expansion throughput: the generator is pure, so repeated expansion
     is the honest unit of work; the checksum pins the cell list
     (names, order, per-cell seeds) across machines. *)
  let reps = 200 in
  let cells = Matrix.generate ~seed:42 in
  let (), expand_dt =
    time (fun () ->
        for _ = 2 to reps do
          ignore (Matrix.generate ~seed:42)
        done)
  in
  let cells_cs = Matrix.checksum cells in
  Printf.printf "  expand: %d cells x %d reps in %.3f s (checksum %d)\n%!" Matrix.cardinality
    reps expand_dt cells_cs;
  (* Run throughput: the async-dense slice of the matrix on the domain
     pool — the cheapest cells, so the rate reflects runner overhead
     rather than one slow simulator.  The metrics checksum (FNV over the
     IEEE bits of every cell metric, in cell order) pins execution
     determinism end to end. *)
  let subset = Matrix.filter cells ~substring:"async-dense" in
  let git = Obs.Run_manifest.git_describe () in
  let jobs = Exec.default_jobs () in
  let results, run_dt =
    time (fun () ->
        Exec.map_array ~jobs subset (fun c -> Plan.run_pure ~git c.Matrix.plan))
  in
  let passed = Array.for_all (fun r -> r.Plan.passed) results in
  if not passed then failwith "bench.matrix: an async-dense cell failed its assertions";
  let metrics_cs =
    let acc = ref 0xcbf29ce484222325L in
    Array.iter
      (fun r ->
        List.iter
          (fun (_, v) ->
            acc := Int64.mul (Int64.logxor !acc (Int64.bits_of_float v)) 0x100000001b3L)
          r.Plan.manifest.Stratify_obs.Run_manifest.metrics)
      results;
    Int64.to_int (Int64.logand !acc 0x3FFF_FFFFL)
  in
  Printf.printf "  run: %d cells in %.3f s on %d jobs (metrics checksum %d)\n%!"
    (Array.length subset) run_dt jobs metrics_cs;
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.matrix_cells") cells_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.matrix_cardinality") Matrix.cardinality;
  Obs.Counter.add (Obs.Counter.make "checksum.matrix_metrics") metrics_cs;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_matrix" ~seed:42 ~scale:1.0 ~jobs
      ~metrics:
        [
          ("rate/matrix_expand", float_of_int (Matrix.cardinality * reps) /. expand_dt);
          ("rate/matrix_run", float_of_int (Array.length subset) /. run_dt);
          ("matrix/cells", float_of_int Matrix.cardinality);
          ("matrix/subset", float_of_int (Array.length subset));
          ("matrix/jobs", float_of_int jobs);
        ]
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_MATRIX_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_matrix.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 9: event engine — queue backends under three DES workloads     *)

(* bench.des: the gate behind `--queue`.  Three workloads, each run
   once per backend (heap / calendar / ladder):

   (a) cascade — a self-rescheduling packed-event population, the pure
       queue-ops workload.  Delays are compile-time float constants
       (picked by event code), so the steady state touches only
       recycled slot arrays and backend pools: the measured window must
       allocate (essentially) nothing on the minor heap, extending the
       DESIGN.md §13 zero-alloc discipline to the event layer.
   (b) swarm-md — the message-level BitTorrent swarm (Swarm.Des): every
       transfer fans out into packed piece messages through the full
       Net fault pipeline with burst-batched draws.  This is the
       workload the reproduction actually scales by, so the >= 2x gate
       lives here: best non-heap packed backend vs. the same workload
       built the seed way (one closure per message via Net.send on the
       binary heap — rebuilt inline as the closure-heap baseline).
   (c) async — the propose/accept/commit dynamics under loss, the
       closure-event (legacy-path) workload; small queue population, so
       backends are expected to tie rather than win.

   Every backend pops the identical (time, seq) order, so all three
   workloads also serve as end-to-end invariance checks: per-backend
   delivery checksums must agree exactly (hard failure, plus pinned
   checksum counters for CI). *)
let bench_des () =
  print_endline "\n================ Event engine (heap vs calendar vs ladder) ================";
  let module Obs = Stratify_obs in
  let module Eng = Stratify_des.Engine in
  let module Net = Stratify_net.Net in
  let backends = Eng.backends in
  let name = Eng.backend_name in
  let assert_same what = function
    | [] -> ()
    | (b0, v0) :: rest ->
        List.iter
          (fun (b, v) ->
            if v <> v0 then
              failwith
                (Printf.sprintf "bench.des: %s disagrees across backends (%s %d vs %s %d)" what
                   (name b) v (name b0) v0))
          rest
  in

  (* (a) packed cascade *)
  let cascade_pending = 30_000 in
  let cascade backend =
    let eng = Eng.create ~backend () in
    let fired = ref 0 in
    let cs = ref 0x811C9DC5 in
    Eng.set_packed_handler eng (fun eng code ->
        incr fired;
        cs := (!cs lxor code) * 0x01000193 land max_int;
        let c = ((code * 0x343FD) + 0x269EC3) land 0x3FFF_FFFF in
        (* Each branch passes a distinct compile-time constant, so the
           fresh delay never crosses a function boundary as a computed
           float — the non-flambda boxing trap (DESIGN.md §14). *)
        match c land 7 with
        | 0 -> Eng.schedule_packed eng ~delay:0.0711 c
        | 1 -> Eng.schedule_packed eng ~delay:0.1337 c
        | 2 -> Eng.schedule_packed eng ~delay:0.2917 c
        | 3 -> Eng.schedule_packed eng ~delay:0.4139 c
        | 4 -> Eng.schedule_packed eng ~delay:0.5923 c
        | 5 -> Eng.schedule_packed eng ~delay:0.7351 c
        | 6 -> Eng.schedule_packed eng ~delay:0.9743 c
        | _ -> Eng.schedule_packed eng ~delay:1.1329 c);
    (* Each seed gets a distinct start time.  This matters: children of
       a shared pop time land on exactly equal floats (clock +. constant
       computed identically), so a population seeded on a handful of
       times never diversifies — it collapses onto a few dozen
       exactly-equal time values, which degenerates any bucket-based
       queue into equal-key chain scans.  Distinct seeds keep the
       pending-time population continuous, which is what the real
       schedules look like (Net draws a fresh latency per message). *)
    for i = 0 to cascade_pending - 1 do
      let c = (i * 0x9E3779B) land 0x3FFF_FFFF in
      Eng.schedule_packed eng ~delay:(0.5 +. (float_of_int i *. 6.1e-5)) c
    done;
    (* Warm-up grows the slot pool and settles the calendar size; the
       population is constant afterwards, so the measured window leaves
       every pool untouched by the allocator. *)
    Eng.run_until eng ~time:20.;
    let f0 = !fired in
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    Eng.run_until eng ~time:120.;
    let dt = Unix.gettimeofday () -. t0 in
    let minor = Gc.minor_words () -. m0 in
    (!fired - f0, dt, minor, !cs)
  in
  let cascade_runs = List.map (fun b -> (b, cascade b)) backends in
  let cascade_zero_alloc = ref true in
  List.iter
    (fun (b, (ev, dt, minor, _)) ->
      Printf.printf "  cascade %-8s %9d events in %6.3f s  (%10.0f events/s, %.0f minor words)\n%!"
        (name b) ev dt
        (float_of_int ev /. dt)
        minor;
      if minor > 512. then begin
        cascade_zero_alloc := false;
        failwith
          (Printf.sprintf "bench.des: %s cascade allocated %.0f minor words over %d events \
                           (expected ~0)"
             (name b) minor ev)
      end)
    cascade_runs;
  assert_same "cascade event count" (List.map (fun (b, (ev, _, _, _)) -> (b, ev)) cascade_runs);
  assert_same "cascade checksum" (List.map (fun (b, (_, _, _, cs)) -> (b, cs)) cascade_runs);
  let cascade_rate b =
    let _, (ev, dt, _, _) = (b, List.assoc b cascade_runs) in
    float_of_int ev /. dt
  in

  (* (b) swarm-md: message-level swarm through the full fault pipeline.
     chunk 0.0625 puts ~5.8M piece messages through 40 ticks with ~1.2M
     in flight at steady state — the scale ROADMAP items 2/4 need, and
     the scale at which the seed engine's per-message closures turn into
     GC load. *)
  let swarm_ticks = 40 in
  let swarm_chunk = 0.0625 in
  let swarm_n = 300 in
  let swarm_faults =
    {
      Net.latency = Net.Jitter { base = 2.0; spread = 8.0 };
      loss = Net.Iid 0.05;
      duplicate = 0.01;
      reorder = 0.1;
      reorder_spread = 1.0;
    }
  in
  let swarm_parts backend =
    let rng = Rng.create 4242 in
    let uploads =
      Array.init swarm_n (fun i -> 20. +. (10. *. float_of_int (i mod 5)))
    in
    let swarm = Bt.Swarm.create rng (Bt.Swarm.default_params ~uploads) in
    let net = Net.create ~engine:(Eng.create ~backend ()) (Rng.create 993) swarm_faults in
    (swarm, net)
  in
  (* Each timed variant starts from a compacted heap.  The des section
     runs after the shard/matrix parts, whose n = 10^6 solves leave
     hundreds of MB of garbage: whichever variant runs first pays the
     major-GC work of tracing and sweeping it, and whichever runs last
     inherits a clean heap — a run-order artifact that once compressed
     the measured speedup below its real value. *)
  let swarm_run backend =
    let swarm, net = swarm_parts backend in
    let d = Bt.Swarm.Des.create swarm ~net ~chunk:swarm_chunk in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    Bt.Swarm.Des.run d ~ticks:swarm_ticks;
    let dt = Unix.gettimeofday () -. t0 in
    let events = Bt.Swarm.Des.pieces_delivered d + swarm_ticks in
    (events, dt, Bt.Swarm.Des.pieces_sent d, Bt.Swarm.Des.checksum d)
  in
  (* The ">= 2x" denominator: the same workload built the way the seed
     engine worked — one freshly allocated closure per piece message
     through [Net.send]'s per-message fault draws, on the binary heap.
     At ~1.2M messages in flight the live closures are tens of MB of
     heap the GC must repeatedly trace, which is exactly the cost the
     packed path deletes; its traffic class differs from the packed one
     (independent draws), so it contributes a rate, not a checksum. *)
  let swarm_closure_baseline () =
    let swarm, net = swarm_parts Eng.Heap in
    let eng = Net.engine net in
    let delivered = ref 0 in
    Bt.Swarm.set_on_transfer swarm (fun sender receiver amount ->
        let msgs =
          let m = int_of_float (amount /. swarm_chunk) in
          if m < 1 then 1 else m
        in
        for _ = 1 to msgs do
          Net.send net ~src:sender ~dst:receiver (fun _ -> incr delivered)
        done);
    let ticks_left = ref swarm_ticks in
    let rec tick _eng =
      Bt.Swarm.step swarm;
      decr ticks_left;
      if !ticks_left > 0 then Eng.schedule eng ~delay:1.0 tick
    in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    Eng.schedule eng ~delay:0. tick;
    ignore (Eng.drain ~max_events:max_int eng);
    let dt = Unix.gettimeofday () -. t0 in
    (!delivered + swarm_ticks, dt)
  in
  let swarm_runs = List.map (fun b -> (b, swarm_run b)) backends in
  List.iter
    (fun (b, (ev, dt, sent, _)) ->
      Printf.printf
        "  swarm-md %-8s %9d events in %6.3f s  (%10.0f events/s, %d pieces sent)\n%!" (name b)
        ev dt
        (float_of_int ev /. dt)
        sent)
    swarm_runs;
  assert_same "swarm-md pieces sent" (List.map (fun (b, (_, _, s, _)) -> (b, s)) swarm_runs);
  assert_same "swarm-md event count" (List.map (fun (b, (ev, _, _, _)) -> (b, ev)) swarm_runs);
  assert_same "swarm-md checksum" (List.map (fun (b, (_, _, _, cs)) -> (b, cs)) swarm_runs);
  let swarm_rate b =
    let ev, dt, _, _ = List.assoc b swarm_runs in
    float_of_int ev /. dt
  in
  let closure_events, closure_dt = swarm_closure_baseline () in
  let closure_rate = float_of_int closure_events /. closure_dt in
  Printf.printf "  swarm-md closure-heap baseline %9d events in %6.3f s  (%10.0f events/s)\n%!"
    closure_events closure_dt closure_rate;
  let best_backend, best_rate =
    List.fold_left
      (fun (bb, br) b ->
        let r = swarm_rate b in
        if r > br then (b, r) else (bb, br))
      (Eng.Calendar, swarm_rate Eng.Calendar)
      [ Eng.Ladder ]
  in
  let swarm_speedup = best_rate /. closure_rate in
  Printf.printf "  swarm-md speedup: %.2fx (packed %s vs closure-heap baseline; gate: >= 2x)\n%!"
    swarm_speedup (name best_backend);
  if swarm_speedup < 2.0 then
    failwith
      (Printf.sprintf
         "bench.des: best non-heap backend (%s, packed) is only %.2fx the closure-heap \
          baseline on swarm-md (need >= 2x)"
         (name best_backend) swarm_speedup);

  (* (c) async dynamics under loss (closure events, small population) *)
  let async_run backend =
    let rng = Rng.create 7 in
    let graph = Gen.gnd rng ~n:400 ~d:12. in
    let inst = Instance.create ~graph ~b:(Array.make 400 3) () in
    let arng = Rng.create 11 in
    let dyn =
      Async_dynamics.create ~backend inst arng
        { Async_dynamics.latency = 0.4; initiative_rate = 1.; loss = 0.05 }
    in
    let t0 = Unix.gettimeofday () in
    Async_dynamics.run dyn ~horizon:40.;
    let outcome = Async_dynamics.quiesce dyn in
    let dt = Unix.gettimeofday () -. t0 in
    if outcome <> Async_dynamics.Drained then failwith "bench.des: async failed to quiesce";
    let sent = Async_dynamics.messages_sent dyn in
    let cs = fnv_pairs (fun f -> Config.iter_pairs f (Async_dynamics.mutual_config dyn)) in
    let inconsistent = Async_dynamics.inconsistency_count dyn in
    (sent, dt, cs, inconsistent)
  in
  let async_runs = List.map (fun b -> (b, async_run b)) backends in
  List.iter
    (fun (b, (sent, dt, _, _)) ->
      Printf.printf "  async    %-8s %9d messages in %6.3f s  (%10.0f messages/s)\n%!" (name b)
        sent dt
        (float_of_int sent /. dt))
    async_runs;
  assert_same "async messages" (List.map (fun (b, (s, _, _, _)) -> (b, s)) async_runs);
  assert_same "async config checksum" (List.map (fun (b, (_, _, cs, _)) -> (b, cs)) async_runs);
  assert_same "async inconsistency"
    (List.map (fun (b, (_, _, _, i)) -> (b, i)) async_runs);
  let async_rate b =
    let s, dt, _, _ = List.assoc b async_runs in
    float_of_int s /. dt
  in

  (* Publish.  Checksums are pinned exactly; rate/* ride the
     max-slowdown gate; speedup/* (same-run ratios, noise-cancelling)
     ride the tighter dimensionless band; and the per-backend cascade
     rows enter the profile section via Profile.record, putting the
     event layer under the same zero-alloc ratchet as the matching
     kernels. *)
  Obs.Profile.reset ();
  Obs.Profile.set_enabled true;
  List.iter
    (fun (b, (ev, dt, minor, _)) ->
      Obs.Profile.record
        ("des.cascade." ^ name b)
        ~ops:ev ~minor_words:minor ~wall_s:dt ())
    cascade_runs;
  List.iter
    (fun (b, (ev, dt, _, _)) ->
      Obs.Profile.record ("des.swarm_md." ^ name b) ~ops:ev ~wall_s:dt ())
    swarm_runs;
  Obs.Profile.set_enabled false;
  let cascade_fired, _, _, cascade_cs = List.assoc Eng.Heap cascade_runs in
  let swarm_events, _, swarm_sent, swarm_cs = List.assoc Eng.Heap swarm_runs in
  let async_sent, _, async_cs, _ = List.assoc Eng.Heap async_runs in
  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.des_cascade") cascade_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.des_cascade_fired") cascade_fired;
  Obs.Counter.add
    (Obs.Counter.make "checksum.des_cascade_zero_alloc")
    (if !cascade_zero_alloc then 1 else 0);
  Obs.Counter.add (Obs.Counter.make "checksum.des_swarm") swarm_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.des_swarm_events") swarm_events;
  Obs.Counter.add (Obs.Counter.make "checksum.des_swarm_sent") swarm_sent;
  Obs.Counter.add (Obs.Counter.make "checksum.des_async_config") async_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.des_async_sent") async_sent;
  Obs.Control.set_enabled false;
  let per_backend prefix rate =
    List.map (fun b -> (prefix ^ name b, rate b)) backends
  in
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_des" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        (per_backend "rate/des_cascade_" cascade_rate
        @ per_backend "rate/des_swarm_md_" swarm_rate
        @ per_backend "rate/des_async_" async_rate
        @ [
            ("rate/des_swarm_md_closure_baseline", closure_rate);
            ("speedup/des_swarm_md", swarm_speedup);
            ( "speedup/des_cascade",
              List.fold_left (fun acc b -> Float.max acc (cascade_rate b)) 0.
                [ Eng.Calendar; Eng.Ladder ]
              /. cascade_rate Eng.Heap );
            ("des/cascade_pending", float_of_int cascade_pending);
            ("des/swarm_ticks", float_of_int swarm_ticks);
          ])
      ()
  in
  Obs.Profile.reset ();
  let out =
    match Sys.getenv_opt "BENCH_DES_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_des.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 10: the service layer (lib/serve).

   Three stages, mirroring bench_des's invariance-then-speed shape:
   (a) a mixed tracker script — two swarms (one partitioned-and-healed
       under loss, one in piece mode) over a churning population —
       replayed once per queue backend.  The response checksum and the
       entire kind:"serve" manifest must agree byte for byte (hard
       failure): the end-to-end form of the (time, seq) invariance
       bench_des pins at the engine layer.
   (b) the same script stopped mid-run, snapshotted, restored on a
       *different* backend and run out: the manifest must equal the
       uninterrupted run's (hard failure) — the serve-suite CI
       contract, checked from inside one process.
   (c) the announce hot path: a larger population serving a sustained
       announce stream against a live (ticking) world.  Reports
       sustained announces/sec and the exact p50/p99 handling latency
       from the full sorted per-request latency array — no histogram
       bucketing, every sample kept. *)
let bench_serve () =
  print_endline "\n================ Service layer (replay equality + announce path) ================";
  let module Obs = Stratify_obs in
  let module Eng = Stratify_des.Engine in
  let module Serve = Stratify_serve.Serve in
  let module Req = Stratify_serve.Request in
  let with_backend b f =
    let saved = Eng.default_backend () in
    Eng.set_default_backend b;
    Fun.protect ~finally:(fun () -> Eng.set_default_backend saved) f
  in
  let name = Eng.backend_name in

  (* (a) + (b): the mixed script. *)
  let script =
    let rng = Rng.create 0xbe5e in
    let n = 300 in
    let sids = [| "alpha"; "beta" |] in
    let requests =
      Array.init 160 (fun i ->
          let at = 1.0 +. (float_of_int i *. 0.21) in
          let peer = Rng.int rng n in
          let swarm = sids.(Rng.int rng 2) in
          let kind =
            match Rng.int rng 10 with
            | 0 -> Req.Join { peer; swarm }
            | 1 -> Req.Leave { peer; swarm }
            | 2 -> Req.Scrape { swarm }
            | 3 -> Req.Stats
            | _ -> Req.Announce { peer; swarm; want = 1 + Rng.int rng 8 }
          in
          { Req.at; kind })
    in
    Req.validate
      {
        Req.name = "bench-serve";
        seed = 42;
        world =
          {
            Req.n;
            d = 8.0;
            b = 2;
            churn_rate = 0.3;
            bands = 2;
            swarms =
              [
                {
                  Req.sid = "alpha";
                  size = 90;
                  d = 14.0;
                  loss = 0.05;
                  partitions =
                    [
                      { Req.at_tick = 12; groups = Req.Halves };
                      { Req.at_tick = 24; groups = Req.Heal };
                    ];
                  piece = None;
                };
                {
                  Req.sid = "beta";
                  size = 48;
                  d = 10.0;
                  loss = 0.0;
                  partitions = [];
                  piece =
                    Some { Req.pieces = 32; piece_size = 1.0; init_fraction = 0.0; seeds = 1 };
                };
              ];
          };
        requests;
        horizon = 36.0;
      }
  in
  let replay backend =
    with_backend backend (fun () ->
        let t = Serve.create script in
        Serve.run_script t;
        ( Serve.checksum t,
          Serve.requests_handled t,
          Obs.Run_manifest.to_string (Serve.manifest ~git:"bench" t) ))
  in
  let runs = List.map (fun b -> (b, replay b)) Eng.backends in
  (match runs with
  | [] -> ()
  | (b0, (cs0, rq0, m0)) :: rest ->
      List.iter
        (fun (b, (cs, rq, m)) ->
          if cs <> cs0 || rq <> rq0 then
            failwith
              (Printf.sprintf
                 "bench.serve: %s checksum/requests (%d, %d) disagree with %s (%d, %d)" (name b)
                 cs rq (name b0) cs0 rq0);
          if not (String.equal m m0) then
            failwith
              (Printf.sprintf "bench.serve: %s serve manifest differs from %s" (name b) (name b0)))
        rest);
  List.iter
    (fun (b, (cs, rq, _)) ->
      Printf.printf "  replay %-8s checksum %d  (%d requests handled)\n%!" (name b) cs rq)
    runs;
  let script_cs, script_requests, uninterrupted = List.assoc Eng.Heap runs in

  (* (b) stop at t=17 on the heap, restore on the ladder, run out. *)
  let snap =
    with_backend Eng.Heap (fun () ->
        let t = Serve.create script in
        Serve.run_to t 17.0;
        Serve.snapshot_string t)
  in
  let resumed =
    with_backend Eng.Ladder (fun () ->
        let t = Serve.restore_string snap in
        Serve.run_script t;
        Obs.Run_manifest.to_string (Serve.manifest ~git:"bench" t))
  in
  if not (String.equal resumed uninterrupted) then
    failwith
      "bench.serve: stop-at-17 / resume (heap -> ladder) manifest differs from the uninterrupted \
       run";
  Printf.printf "  stop/resume heap->ladder: manifest identical (%d bytes, snapshot %d bytes)\n%!"
    (String.length resumed) (String.length snap);

  (* (c) announce hot path: cycle announces over a 600-slot swarm in a
     2000-peer population, ticking the world every 2000 requests so the
     stream is served against live swarm/choker dynamics, not a frozen
     snapshot.  Per-request latency is kept exactly. *)
  let hot_script =
    Req.validate
      {
        Req.name = "bench-serve-hot";
        seed = 42;
        world =
          {
            Req.n = 2000;
            d = 8.0;
            b = 2;
            churn_rate = 0.0;
            bands = 2;
            swarms =
              [
                {
                  Req.sid = "hot";
                  size = 600;
                  d = 16.0;
                  loss = 0.0;
                  partitions = [];
                  piece = None;
                };
              ];
          };
        requests = [||];
        horizon = 1000.0;
      }
  in
  let announces = 20_000 in
  let lat = Array.make announces 0. in
  let announce_rate, hot_cs =
    with_backend Eng.Heap (fun () ->
        let t = Serve.create hot_script in
        (* warm-up: build the world and let the first ticks settle *)
        Serve.run_to t 2.0;
        let t0 = Unix.gettimeofday () in
        for i = 0 to announces - 1 do
          let peer = i mod 600 in
          let a = Unix.gettimeofday () in
          ignore (Serve.handle t (Req.Announce { peer; swarm = "hot"; want = 8 }));
          let b = Unix.gettimeofday () in
          lat.(i) <- (b -. a) *. 1e9;
          if i mod 2000 = 1999 then Serve.run_to t (Serve.now t +. 1.0)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        (float_of_int announces /. dt, Serve.checksum t))
  in
  Array.sort compare lat;
  let pct p =
    lat.(max 0 (min (announces - 1) (int_of_float (ceil (p *. float_of_int announces)) - 1)))
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  Printf.printf "  announce hot path: %9.0f announces/s   p50 %7.0f ns   p99 %8.0f ns\n%!"
    announce_rate p50 p99;

  Obs.Counter.reset_all ();
  Obs.Histogram.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  Obs.Counter.add (Obs.Counter.make "checksum.serve_script") script_cs;
  Obs.Counter.add (Obs.Counter.make "checksum.serve_script_requests") script_requests;
  Obs.Counter.add (Obs.Counter.make "checksum.serve_stop_resume_ok") 1;
  Obs.Counter.add (Obs.Counter.make "checksum.serve_hot") hot_cs;
  Obs.Control.set_enabled false;
  let manifest =
    Obs.Run_manifest.capture ~kind:"bench" ~name:"bench_serve" ~seed:42 ~scale:1.0 ~jobs:1
      ~metrics:
        [
          ("rate/serve_announce", announce_rate);
          ("serve/p50_announce_ns", p50);
          ("serve/p99_announce_ns", p99);
          ("serve/announce_count", float_of_int announces);
        ]
      ()
  in
  let out =
    match Sys.getenv_opt "BENCH_SERVE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_serve.json"
  in
  Obs.Run_manifest.write_path out manifest;
  Printf.printf "  wrote %s\n" out

let parts =
  [
    ("parallel", bench_parallel_scaling);
    ("core", bench_core);
    ("profile", bench_profile_phases);
    ("sched", bench_sched);
    ("net", bench_net);
    ("shard", bench_shard);
    ("matrix", bench_matrix);
    ("des", bench_des);
    ("serve", bench_serve);
    ("stability", bench_stability_detection);
  ]

let () =
  (* BENCH_ONLY=name runs a single micro-benchmark part (see [parts]) —
     the fast loop for regenerating one baseline or chasing one
     regression without paying for the whole harness. *)
  match Sys.getenv_opt "BENCH_ONLY" with
  | Some only when only <> "" -> (
      match List.assoc_opt only parts with
      | Some f -> f ()
      | None ->
          Printf.eprintf "bench: unknown BENCH_ONLY=%s (parts: %s)\n" only
            (String.concat ", " (List.map fst parts));
          exit 2)
  | _ ->
      if Sys.getenv_opt "BENCH_SKIP_REGEN" = None then regenerate ();
      run_benchmarks ();
      List.iter (fun (_, f) -> f ()) parts
