module Rng = Stratify_prng.Rng

type point = {
  sigma : float;
  mean_cluster_size : float;
  largest_cluster : float;
  mmo : float;
}

let measure ?(jobs = 1) ?(bands = 1) ?overlap rng ~n ~mean_b ~sigma ~replicates =
  if replicates <= 0 then invalid_arg "Phase.measure: need replicates > 0";
  let size_acc = ref 0. and largest_acc = ref 0. and mmo_acc = ref 0. in
  for _ = 1 to replicates do
    let b =
      if sigma <= 0. then Normal_b.constant ~n ~b0:(int_of_float (Float.round mean_b))
      else Normal_b.rounded_normal rng ~n ~mean:mean_b ~sigma
    in
    let adj = Cluster.collaboration_graph ~jobs ~bands ?overlap ~b () in
    let analysis = Cluster.analyze adj in
    size_acc := !size_acc +. analysis.Cluster.mean_size;
    largest_acc := !largest_acc +. float_of_int analysis.Cluster.largest;
    mmo_acc := !mmo_acc +. Mmo.of_adjacency adj
  done;
  let r = float_of_int replicates in
  {
    sigma;
    mean_cluster_size = !size_acc /. r;
    largest_cluster = !largest_acc /. r;
    mmo = !mmo_acc /. r;
  }

let sweep ?(jobs = 1) ?(bands = 1) ?overlap rng ~n ~mean_b ~sigmas ~replicates =
  Array.map (fun sigma -> measure ~jobs ~bands ?overlap rng ~n ~mean_b ~sigma ~replicates) sigmas

let transition_sigma points ~threshold =
  match Array.to_list points with
  | [] -> None
  | base :: _ ->
      let limit = threshold *. base.mean_cluster_size in
      Array.fold_left
        (fun acc p ->
          match acc with
          | Some _ -> acc
          | None -> if p.mean_cluster_size > limit then Some p.sigma else None)
        None points
