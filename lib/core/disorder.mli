(** The paper's configuration distance and the {e disorder} measure (§3).

    For 1-matchings the distance is exactly the paper's

    {v D(C1,C2) = Σ_i |σ(C1,i) − σ(C2,i)| · 2/(n(n+1)) v}

    where [σ(C,i)] is [i]'s mate and unmatched peers count as a virtual
    worst mate.  The normalisation makes the distance between any perfect
    matching and the empty configuration equal to 1.  For b-matchings the
    sum runs over slot columns (mates sorted best-first, padded with the
    virtual mate) and the normalisation generalises to [2/(B(n+1))] with
    [B = Σ b(i)], which degenerates to the paper's formula at [b ≡ 1]. *)

val distance : Config.t -> Config.t -> float
(** Both configurations must be over instances of equal size and budgets. *)

val disorder : Config.t -> stable:Config.t -> float
(** Distance to the (instant) stable configuration. *)

val distance_on : present:bool array -> Config.t -> Config.t -> float
(** Restriction to a peer subset: absent peers contribute nothing and the
    normalisation uses the present population only (churn support). *)
