(** The BitTorrent Tit-for-Tat application (§6, Fig 11).

    In the post-flash-crowd regime, content availability is not binding
    and TFT exchanges are driven by bandwidth alone: peers rank each other
    by the upload bandwidth a partner devotes to one slot, which — with a
    common slot count [b0] — induces a global ranking by upload capacity.
    Feeding the measured upstream distribution into the independent
    b₀-matching model yields each peer's expected download and hence its
    expected download/upload ("share") ratio. *)

type params = {
  n : int;  (** population discretisation (ranks) *)
  b0 : int;  (** TFT slots per peer (paper: 3, plus one optimistic) *)
  d : float;  (** expected number of acceptable peers (paper: 20) *)
  profile : Stratify_bandwidth.Profile.t;
}

type result = {
  upload : float array;  (** total upload bandwidth by rank, best first *)
  upload_per_slot : float array;  (** upload / b0 — Fig 11's x-axis *)
  expected_download : float array;  (** Σ_c Σ_j D_c(i,j) · per-slot(j) *)
  expected_mates : float array;  (** Σ_c Σ_j D_c(i,j) (≤ b0) *)
  ratio : float array;  (** expected_download / upload — Fig 11's y-axis *)
}

val compute : params -> result

val to_series : result -> Stratify_stats.Series.t
(** Fig 11's curve: (upload per slot, expected D/U ratio), best peer
    last (increasing x). *)

val best_peer_ratio : result -> float
val worst_peer_ratio : result -> float

val ratio_near : result -> bandwidth_per_slot:float -> float
(** Ratio of the peer whose per-slot upload is closest to the given
    value — used to probe density peaks. *)

val sweep_slots :
  ?population_b0:int ->
  n:int ->
  d:float ->
  profile:Stratify_bandwidth.Profile.t ->
  my_upload:float ->
  slots:int array ->
  unit ->
  (int * float) array
(** The rational-peer experiment behind the paper's 4-slot discussion: a
    peer with fixed total upload [my_upload] varies its own slot count
    (everyone else keeps [population_b0], default 3); returns (slot count,
    expected D/U).
    Fewer slots raise per-slot bandwidth, hence rank, hence ratio — the
    race to the 1-slot Nash equilibrium.  For [s > population_b0] the
    homogeneous model cannot credit the surplus slots, so the reported
    ratio is a lower bound there (which only reinforces the
    conclusion). *)

val sweep_slots_scaled :
  n:int ->
  d:float ->
  profile:Stratify_bandwidth.Profile.t ->
  my_upload:float ->
  slots:int array ->
  (int * float) array
(** Like {!sweep_slots} but crediting a deviant with [s > 3] slots by
    replication: its [s] slots behave like [s/3] independent 3-slot peers
    at its per-slot rank, so download scales with [s/3] instead of being
    truncated.  This is the right reading of §6's "best peers add
    connections until their per-slot bandwidth matches the peers below" —
    the ratio climbs towards 1 as per-slot rates equalise. *)
