module Profile = Stratify_bandwidth.Profile
module Series = Stratify_stats.Series
module Discrete = Stratify_stats.Discrete

type params = { n : int; b0 : int; d : float; profile : Profile.t }

type result = {
  upload : float array;
  upload_per_slot : float array;
  expected_download : float array;
  expected_mates : float array;
  ratio : float array;
}

let compute { n; b0; d; profile } =
  if n < 2 then invalid_arg "Share_ratio.compute: need n >= 2";
  let upload = Profile.rank_bandwidths profile ~n in
  let upload_per_slot = Array.map (fun u -> u /. float_of_int b0) upload in
  let p = Float.min 1. (d /. float_of_int (n - 1)) in
  let expected_download, expected_mates =
    B_matching.expectations ~n ~p ~b0 ~value:(fun j -> upload_per_slot.(j))
  in
  let ratio = Array.mapi (fun i dl -> dl /. upload.(i)) expected_download in
  { upload; upload_per_slot; expected_download; expected_mates; ratio }

let to_series r =
  let n = Array.length r.ratio in
  (* Ranks are best-first = decreasing bandwidth; reverse for an
     increasing x-axis. *)
  let points = Array.init n (fun k ->
      let i = n - 1 - k in
      (r.upload_per_slot.(i), r.ratio.(i)))
  in
  Series.make "expected D/U ratio" points

let best_peer_ratio r = r.ratio.(0)
let worst_peer_ratio r = r.ratio.(Array.length r.ratio - 1)

let ratio_near r ~bandwidth_per_slot =
  let best_i = ref 0 and best_gap = ref infinity in
  Array.iteri
    (fun i ps ->
      let gap = Float.abs (log ps -. log bandwidth_per_slot) in
      if gap < !best_gap then begin
        best_gap := gap;
        best_i := i
      end)
    r.upload_per_slot;
  r.ratio.(!best_i)

let sweep_slots ?(population_b0 = 3) ~n ~d ~profile ~my_upload ~slots () =
  let upload = Profile.rank_bandwidths profile ~n in
  let pop_per_slot = Array.map (fun u -> u /. float_of_int population_b0) upload in
  Array.map
    (fun s ->
      if s <= 0 then invalid_arg "Share_ratio.sweep_slots: slot counts must be positive";
      let my_per_slot = my_upload /. float_of_int s in
      (* The deviant's rank: how many population peers offer more per
         slot.  Ranks are best-first so this count is the insertion
         index. *)
      let rank =
        Array.fold_left (fun acc ps -> if ps > my_per_slot then acc + 1 else acc) 0 pop_per_slot
      in
      let rank = min rank (n - 1) in
      let p = Float.min 1. (d /. float_of_int (n - 1)) in
      let rows = B_matching.choice_distributions ~n ~p ~b0:population_b0 ~peer:rank in
      (* The homogeneous model only describes choices 1..b0 of the
         population; a deviant with more slots than that gets the full
         b0 choices at its (lowered) rank and the surplus slots are not
         credited — the reported ratio is a lower bound for s > b0,
         which only strengthens the fewer-slots-win conclusion. *)
      let download = ref 0. in
      for c = 0 to min s population_b0 - 1 do
        download := !download +. Discrete.expectation rows.(c) (fun j -> pop_per_slot.(j))
      done;
      (s, !download /. my_upload))
    slots

let sweep_slots_scaled ~n ~d ~profile ~my_upload ~slots =
  let population_b0 = 3 in
  let upload = Profile.rank_bandwidths profile ~n in
  let pop_per_slot = Array.map (fun u -> u /. float_of_int population_b0) upload in
  Array.map
    (fun s ->
      if s <= 0 then invalid_arg "Share_ratio.sweep_slots_scaled: slot counts must be positive";
      let my_per_slot = my_upload /. float_of_int s in
      let rank =
        Array.fold_left (fun acc ps -> if ps > my_per_slot then acc + 1 else acc) 0 pop_per_slot
      in
      let rank = min rank (n - 1) in
      let p = Float.min 1. (d /. float_of_int (n - 1)) in
      let rows = B_matching.choice_distributions ~n ~p ~b0:population_b0 ~peer:rank in
      let per_three_slots = ref 0. in
      for c = 0 to min s population_b0 - 1 do
        per_three_slots :=
          !per_three_slots +. Discrete.expectation rows.(c) (fun j -> pop_per_slot.(j))
      done;
      let download =
        if s <= population_b0 then !per_three_slots
        else !per_three_slots *. (float_of_int s /. float_of_int population_b0)
      in
      (s, download /. my_upload))
    slots
