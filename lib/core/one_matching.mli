(** The independent 1-matching model — Algorithm 2 of the paper.

    Under the Erdős–Rényi acceptance graph [G(n,p)] and Assumption 1
    (independence of the two "not matched with better" events), the
    probability [D(i,j)] that peers [i] and [j] are mates satisfies

    {v D(i,j) = p · (1 − Σ_{k<j} D(i,k)) · (1 − Σ_{k<i} D(j,k)) v}

    computed here row by row with O(n) running prefix sums — O(n²) time,
    O(n) memory — so the [n = 5000] setting of Fig 8 runs in milliseconds
    instead of the paper's Matlab scripts.  Peers are 0-based ranks
    (0 = best). *)

val sweep : n:int -> p:float -> f:(int -> int -> float -> unit) -> unit
(** Visit every pair [(i, j)], [i < j], with its probability [D(i,j)], in
    lexicographic order.  The visitor must not assume any storage — this is
    the O(n)-memory primitive the rest of the module builds on. *)

val mate_distributions : n:int -> p:float -> peers:int array -> Stratify_stats.Discrete.t array
(** The full rows [D(peer, ·)] for selected peers (Fig 8's curves).  Each
    row is a sub-probability: the missing mass is the probability of ending
    up unmatched. *)

val match_probability : n:int -> p:float -> peer:int -> float
(** [Σ_j D(peer, j)] — tends to 1 as peers are added below (Lemma 1), and
    equals 1/2 for the worst peer in the [n → ∞] limit. *)

val expectations : n:int -> p:float -> value:(int -> float) -> float array * float array
(** [(e, mass)] with [e.(i) = Σ_j D(i,j)·value(j)] and
    [mass.(i) = Σ_j D(i,j)] — the §6 download model in one pass. *)

val matrix : n:int -> p:float -> float array array
(** Dense [D]; O(n²) memory, for tests and small [n]. *)

val expected_offsets : n:int -> p:float -> float array
(** Per-peer expected |mate rank − own rank| conditional on being matched
    — the model-side view of §4's stratification depth.  For the best
    peer this is exactly the geometric mean [1/p]; for mid-rank peers it
    converges to the fluid-limit value, making the "crucial parameter is
    d" statement quantitative (offsets scale as [n/d]). *)
