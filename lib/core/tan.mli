(** Preference systems and Tan's preference cycles (§3 of the paper).

    Tan (1991) characterised stable-matching existence in the roommates
    setting: a stable configuration exists iff there is no {e odd}
    preference cycle of length > 1, and it is unique if additionally there
    is no even cycle of length > 2.  A preference cycle is a set of
    distinct peers [i1 … ik] in which every peer prefers its successor to
    its predecessor.  Global rankings admit no cycle at all — that is the
    paper's existence-and-uniqueness argument — and this module provides
    both the general representation and a brute-force cycle finder used to
    test the theorem on small adversarial instances. *)

type t
(** A general preference system: each peer holds a strict preference order
    over a subset of the other peers. *)

val of_lists : int array array -> t
(** [of_lists prefs] where [prefs.(p)] lists [p]'s acceptable partners,
    most-preferred first.  Raises [Invalid_argument] on self-references or
    duplicates.  Acceptability is symmetrised: pairs listed by only one
    side are dropped. *)

val of_global_ranking : Instance.t -> t
(** The preference system a global-ranking instance induces. *)

val size : t -> int

val preference_list : t -> int -> int array

val accepts : t -> int -> int -> bool

val prefers : t -> int -> int -> int -> bool
(** [prefers t p a b]: does [p] rank [a] strictly before [b]?  Both must be
    acceptable to [p]. *)

val find_preference_cycle : ?parity:[ `Any | `Odd | `Even ] -> t -> int list option
(** Exhaustive search for a preference cycle of length ≥ 3, optionally
    restricted to a parity class.  Exponential; for [size ≤ 10]. *)

val is_global_ranking_like : t -> bool
(** Whether some global ranking induces exactly these preferences (i.e. all
    preference lists are consistent with one total order). *)
