(** The independent b₀-matching model — Algorithm 3 of the paper.

    Generalises {!One_matching} to [b0] collaboration slots per peer.  The
    object computed is [Dᶜʲ_ᶜᵢ(i,j)]: the probability that peer [j] is
    peer [i]'s choice number [ci] {e and} [i] is [j]'s choice number [cj]
    (choices are numbered 1 … b0, best mate first).  Under Assumption 2 it
    factorises as

    {v Dᶜʲ_ᶜᵢ(i,j) = p · F_i^{ci}(j) · F_j^{cj}(i) v}

    where [F_x^c(y) = Σ_{k<y} (D_{c−1}(x,k) − D_c(x,k))] is the probability
    that choice [c−1] of [x] is matched better than [y] while choice [c] is
    not, with the convention [Σ_{k<y} D_0(x,k) ≡ 1] (the paper's
    [Dc0 ← ones]).  The quantity of interest is the per-choice marginal
    [D_c(i,j) = Σ_{cj} Dᶜʲ_c(i,j)].

    Implemented with the paper's suggested prefix-sum optimisation: the
    "partial sums kept in memory" make the sweep O(n²·b0²) time and
    O(n·b0) memory. *)

val sweep :
  n:int ->
  p:float ->
  b0:int ->
  f:(int -> int -> float array -> float array -> unit) ->
  unit
(** Visit each pair [(i, j)], [i < j], with the per-choice marginals:
    [f i j di dj] where [di.(c)] is [D_{c+1}(i,j)] ("j is i's choice c+1")
    and [dj.(c)] is [D_{c+1}(j,i)].  The arrays are reused between calls —
    copy them if you keep them. *)

val choice_distributions :
  n:int -> p:float -> b0:int -> peer:int -> Stratify_stats.Discrete.t array
(** For one peer, the [b0] rows [D_c(peer, ·)], c = 1 … b0 — the estimated
    curves of Fig 9. *)

val mate_count_mass : n:int -> p:float -> b0:int -> peer:int -> float
(** Expected number of mates of [peer]: [Σ_c Σ_j D_c(peer,j)] (≤ b0). *)

val expectations : n:int -> p:float -> b0:int -> value:(int -> float) -> float array * float array
(** [(e, mass)] with [e.(i) = Σ_c Σ_j D_c(i,j)·value(j)] and [mass.(i)] the
    expected mate count — the Fig 11 download model. *)

val reduces_to_one_matching : n:int -> p:float -> float
(** Max absolute difference between this model at [b0 = 1] and
    {!One_matching} over all pairs — a consistency diagnostic (should be
    ~1e-15). *)

val sweep_joint :
  n:int ->
  p:float ->
  b0:int ->
  f:(int -> int -> float array array -> unit) ->
  unit
(** Visit each pair [(i, j)], [i < j], with the full joint matrix:
    [joint.(ci).(cj) = Dᶜʲ⁺¹_ᶜᵢ₊₁(i,j)] ("j is i's choice ci+1 and i is
    j's choice cj+1") — the paper's actual Algorithm 3 object.  The matrix
    is reused between calls.  Marginals recovered by row/column sums equal
    {!sweep}'s outputs. *)
