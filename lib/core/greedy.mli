(** Algorithm 1 of the paper: the unique stable configuration of a
    global-ranking b-matching instance, computed greedily.

    Peers are processed best-rank-first; each takes the best acceptable
    peers that still have free slots.  Every connection made this way is
    stable by immediate recurrence, and with a global ranking the result is
    the {e unique} stable configuration (Tan 1991). *)

val stable_config : Instance.t -> Config.t
(** O(Σ degree) over the acceptance lists. *)

val stable_complete : b:int array -> int array array
(** Fast path for a complete acceptance graph with identity ranking (§4's
    toy model): returns the stable collaboration graph as adjacency arrays
    without materialising the O(n²) acceptance graph.  [b.(i)] is the slot
    budget of the rank-[i] peer.  O(n · max b) via a skip-list over
    still-available peers. *)

val stable_partners_array : Instance.t -> int array
(** For 1-matching instances only: the mate of each peer, or [-1] when
    unmatched.  Raises [Invalid_argument] if some budget exceeds 1. *)
