(** Algorithm 1 of the paper: the unique stable configuration of a
    global-ranking b-matching instance, computed greedily.

    Peers are processed best-rank-first; each takes the best acceptable
    peers that still have free slots.  Every connection made this way is
    stable by immediate recurrence, and with a global ranking the result is
    the {e unique} stable configuration (Tan 1991). *)

type arena
(** Reusable scratch buffers for the greedy scans.  Passing the same
    arena to repeated {!stable_config} calls (churn repair, sharded band
    solves, benchmark loops) reuses the per-build working arrays instead
    of reallocating them; the result is bit-identical to the arena-free
    path.  Single-threaded: share one arena per domain, never across
    domains. *)

val create_arena : unit -> arena
(** An empty arena; its buffers grow lazily to the largest instance
    solved through it. *)

val scratch_avail : arena -> int -> int array
(** [scratch_avail a len] is a scratch array of length >= [len] with
    unspecified contents, owned by [a] — callers fill what they read.
    For solvers ({!Shard.cluster_cuts}) that share the arena's buffers
    with their own fill discipline. *)

val scratch_next : arena -> int -> int array
(** Same contract as {!scratch_avail}, for the next-pointer buffer. *)

val stable_config : ?arena:arena -> Instance.t -> Config.t
(** O(Σ degree) over the acceptance lists.  When profiling is on
    ({!Stratify_obs.Profile}), each build is recorded under the
    "greedy.build" kernel with [n] ops. *)

val stable_complete : b:int array -> int array array
(** Fast path for a complete acceptance graph with identity ranking (§4's
    toy model): returns the stable collaboration graph as adjacency arrays
    without materialising the O(n²) acceptance graph.  [b.(i)] is the slot
    budget of the rank-[i] peer.  O(n · max b) via a skip-list over
    still-available peers. *)

val stable_partners_array : Instance.t -> int array
(** For 1-matching instances only: the mate of each peer, or [-1] when
    unmatched.  Raises [Invalid_argument] if some budget exceeds 1. *)
