(** Tan's stable partitions (1991) — the structure behind §3's
    existence/uniqueness citation.

    A {e stable partition} of a roommates instance is a permutation [π] of
    the peers such that

    - every non-fixed peer accepts its successor, and whenever
      [π(x) ≠ π⁻¹(x)], [x] strictly prefers [π(x)] to [π⁻¹(x)];
    - no pair [{x, y}] with [y ∉ {π(x), π⁻¹(x)}] exists in which each
      member prefers the other to its predecessor (fixed points count as
      preferring anyone acceptable).

    Tan proved that a stable partition {e always} exists, that its cycle
    type is an invariant of the instance, and that a stable matching
    exists iff the stable partition has no {e odd party} (cycle of odd
    length ≥ 3).  This module provides an exhaustive finder and checker
    for small instances — the ground truth the Irving solver and the
    paper's global-ranking arguments are cross-validated against. *)

val is_stable_partition : Tan.t -> int array -> bool
(** Check the two conditions above for a permutation ([perm.(x)] is
    [x]'s successor; fixed points are singles). *)

val find_brute : Tan.t -> int array option
(** First stable partition in lexicographic permutation order, or [None]
    (which Tan's theorem says cannot happen).  Factorial; for [n ≤ 8]. *)

val all_brute : Tan.t -> int array list
(** Every stable partition (for invariance tests). *)

val parties : int array -> int list list
(** Cycle decomposition of a permutation, each cycle as a peer list. *)

val odd_parties : int array -> int list list
(** Cycles of odd length ≥ 3. *)

val predicts_stable_matching : int array -> bool
(** No odd party: Tan's criterion for the existence of a stable
    matching. *)
