(** Gale–Shapley stable marriage (1962) — the bipartite ancestor of the
    paper's framework, included as a reference baseline.

    Two sides of [n] agents each; every agent ranks the whole opposite
    side.  The deferred-acceptance algorithm returns the proposer-optimal
    stable matching in O(n²). *)

type matching = { proposer_mate : int array; receiver_mate : int array }
(** [proposer_mate.(m)] is the receiver matched to proposer [m] (complete
    preference lists make the matching perfect). *)

val run : proposer_prefs:int array array -> receiver_prefs:int array array -> matching
(** [run ~proposer_prefs ~receiver_prefs] where row [p] lists the opposite
    side most-preferred first.  Lists must be complete permutations of
    [0 .. n-1]; raises [Invalid_argument] otherwise. *)

val is_stable :
  proposer_prefs:int array array -> receiver_prefs:int array array -> matching -> bool
(** No proposer/receiver pair prefers each other to their assigned
    partners. *)

val proposer_rank_of_mate : proposer_prefs:int array array -> matching -> float
(** Mean position (0 = favourite) proposers give their assigned partner —
    the classic proposer-optimality diagnostic. *)
