(* [perm.(x)] is x's successor in the partition; perm.(x) = x means x is a
   single (a party of size one). *)

let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun y ->
      if y < 0 || y >= n || seen.(y) then ok := false else seen.(y) <- true)
    perm;
  !ok

let inverse perm =
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun x y -> inv.(y) <- x) perm;
  inv

(* Does x prefer candidate y to its current predecessor?  A single prefers
   any acceptable peer; an unacceptable candidate is never preferred. *)
let prefers_to_predecessor t perm inv x y =
  if not (Tan.accepts t x y) then false
  else if perm.(x) = x then true
  else begin
    let pred = inv.(x) in
    if pred = y then false else Tan.prefers t x y pred
  end

let is_stable_partition t perm =
  let n = Tan.size t in
  Array.length perm = n
  && is_permutation perm
  &&
  let inv = inverse perm in
  (* Condition 1: successors acceptable; strict improvement over the
     predecessor on parties of size >= 3 (for pairs the successor IS the
     predecessor). *)
  let condition1 = ref true in
  Array.iteri
    (fun x succ ->
      if succ <> x then begin
        if not (Tan.accepts t x succ) then condition1 := false
        else if inv.(x) <> succ then begin
          (* Parties of size >= 3: the predecessor must also be
             acceptable, and strictly worse than the successor. *)
          if not (Tan.accepts t x inv.(x)) then condition1 := false
          else if not (Tan.prefers t x succ inv.(x)) then condition1 := false
        end
      end)
    perm;
  (* Condition 2: no blocking pair against predecessors. *)
  let condition2 = ref true in
  if !condition1 then
    for x = 0 to n - 1 do
      Array.iter
        (fun y ->
          if y > x && perm.(x) <> y && perm.(y) <> x then
            if prefers_to_predecessor t perm inv x y && prefers_to_predecessor t perm inv y x
            then condition2 := false)
        (Tan.preference_list t x)
    done;
  !condition1 && !condition2

let permutations n =
  (* Lazily fold over all permutations of 0..n-1 via Heap-free recursive
     construction in lexicographic order. *)
  let rec build prefix remaining acc visit =
    match remaining with
    | [] -> visit acc (Array.of_list (List.rev prefix))
    | _ ->
        List.fold_left
          (fun acc x ->
            build (x :: prefix) (List.filter (fun y -> y <> x) remaining) acc visit)
          acc remaining
  in
  fun acc visit -> build [] (List.init n (fun i -> i)) acc visit

let find_brute t =
  let n = Tan.size t in
  if n > 8 then invalid_arg "Stable_partition.find_brute: n too large";
  let exception Found of int array in
  try
    ignore
      (permutations n ()
         (fun () perm -> if is_stable_partition t perm then raise (Found perm)));
    None
  with Found perm -> Some perm

let all_brute t =
  let n = Tan.size t in
  if n > 8 then invalid_arg "Stable_partition.all_brute: n too large";
  List.rev
    (permutations n [] (fun acc perm ->
         if is_stable_partition t perm then perm :: acc else acc))

let parties perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let out = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let cycle = ref [] in
      let x = ref start in
      while not seen.(!x) do
        seen.(!x) <- true;
        cycle := !x :: !cycle;
        x := perm.(!x)
      done;
      out := List.rev !cycle :: !out
    end
  done;
  List.rev !out

let odd_parties perm =
  List.filter (fun cycle -> List.length cycle >= 3 && List.length cycle mod 2 = 1) (parties perm)

let predicts_stable_matching perm = odd_parties perm = []
