(* Enumerate acceptance graphs as bitmasks over the upper-triangular edge
   list; run the greedy stable-matching directly on the mask. *)

let edge_list n =
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      edges := (i, j) :: !edges
    done
  done;
  Array.of_list !edges

let enumerate ~n ~p ~b0 ~visit =
  if n > 7 then invalid_arg "Exact_small: n too large for exhaustive enumeration";
  if p < 0. || p > 1. then invalid_arg "Exact_small: p must be in [0,1]";
  if b0 <= 0 then invalid_arg "Exact_small: b0 must be positive";
  let edges = edge_list n in
  let m = Array.length edges in
  let avail = Array.make n 0 in
  let mates = Array.make_matrix n b0 (-1) in
  let filled = Array.make n 0 in
  for mask = 0 to (1 lsl m) - 1 do
    let edge_count = ref 0 in
    Array.fill avail 0 n b0;
    Array.fill filled 0 n 0;
    (* Greedy Algorithm 1: edges are listed in (i, j) lexicographic order,
       which is exactly "each peer i in rank order takes the best
       still-available j > i". *)
    for e = 0 to m - 1 do
      if mask land (1 lsl e) <> 0 then begin
        incr edge_count;
        let i, j = edges.(e) in
        if avail.(i) > 0 && avail.(j) > 0 then begin
          avail.(i) <- avail.(i) - 1;
          avail.(j) <- avail.(j) - 1;
          mates.(i).(filled.(i)) <- j;
          filled.(i) <- filled.(i) + 1;
          mates.(j).(filled.(j)) <- i;
          filled.(j) <- filled.(j) + 1
        end
      end
    done;
    let weight =
      Float.pow p (float_of_int !edge_count)
      *. Float.pow (1. -. p) (float_of_int (m - !edge_count))
    in
    visit ~weight ~mates ~filled
  done

(* Mates of a peer arrive best-first: partners better than i claim i in
   rank order first, then i claims worse partners in rank order — so the
   fill order is already the choice order. *)

let choice_matrices ~n ~p ~b0 =
  let out = Array.init b0 (fun _ -> Array.make_matrix n n 0.) in
  enumerate ~n ~p ~b0 ~visit:(fun ~weight ~mates ~filled ->
      for i = 0 to n - 1 do
        for c = 0 to filled.(i) - 1 do
          let j = mates.(i).(c) in
          out.(c).(i).(j) <- out.(c).(i).(j) +. weight
        done
      done);
  out

let mate_matrix ~n ~p ~b0 =
  let out = Array.make_matrix n n 0. in
  enumerate ~n ~p ~b0 ~visit:(fun ~weight ~mates ~filled ->
      for i = 0 to n - 1 do
        for c = 0 to filled.(i) - 1 do
          let j = mates.(i).(c) in
          out.(i).(j) <- out.(i).(j) +. weight
        done
      done);
  out

let fig7_exact ~p = (p, p *. (1. -. p), p *. (1. -. p) *. (1. -. p))

let fig7_approximation_error ~p = p *. p *. p *. (1. -. p)
