module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist
module Engine = Stratify_des.Engine
module Net = Stratify_net.Net
module Series = Stratify_stats.Series

type params = { latency : float; initiative_rate : float; loss : float }

let default_params = { latency = 0.05; initiative_rate = 1.; loss = 0. }

type outcome = Drained | Budget_exhausted

type t = {
  instance : Instance.t;
  params : params;
  rng : Rng.t;
  net : Net.t;
  mates : int list array;  (* each peer's local belief, sorted by rank *)
  mutable live : bool;  (* initiative clocks active *)
}

(* ---- local mate-list operations (always keep |mates| <= b) ---------- *)

let degree t p = List.length t.mates.(p)
let listed t p q = List.mem q t.mates.(p)

let insert_sorted q l =
  let rec go = function
    | [] -> [ q ]
    | x :: rest as all -> if q < x then q :: all else x :: go rest
  in
  go l

let remove t p q = t.mates.(p) <- List.filter (fun x -> x <> q) t.mates.(p)

let worst t p = match t.mates.(p) with [] -> None | l -> Some (List.nth l (List.length l - 1))

(* Would p welcome q right now, according to p's local state? *)
let wants t p q =
  (not (listed t p q))
  &&
  if degree t p < Instance.slots t.instance p then Instance.slots t.instance p > 0
  else match worst t p with None -> false | Some w -> q < w

(* ---- protocol ------------------------------------------------------ *)

(* Every message now crosses the network layer, which applies partition,
   loss, latency, reordering and duplication faults; the keepalive audits
   are what make the protocol safe under all of them. *)
let send t ~src ~dst handler = Net.send t.net ~src ~dst handler

(* p makes room for a new mate, notifying the evicted peer. *)
let make_room t p =
  if degree t p >= Instance.slots t.instance p then
    match worst t p with
    | Some w ->
        remove t p w;
        send t ~src:p ~dst:w (fun _ -> remove t w p)
    | None -> ()

let handle_commit t ~from_:p ~to_:q _engine =
  (* q finalises: idempotent if already mutual; retract if q changed its
     mind while the commit was in flight. *)
  if listed t q p then ()
  else if wants t q p then begin
    make_room t q;
    t.mates.(q) <- insert_sorted p t.mates.(q)
  end
  else send t ~src:q ~dst:p (fun _ -> remove t p q)

let handle_accept t ~from_:q ~to_:p _engine =
  (* p re-validates on current state before committing. *)
  if listed t p q then ()
  else if wants t p q then begin
    make_room t p;
    t.mates.(p) <- insert_sorted q t.mates.(p);
    send t ~src:p ~dst:q (handle_commit t ~from_:p ~to_:q)
  end

let handle_propose t ~from_:p ~to_:q _engine =
  if wants t q p then send t ~src:q ~dst:p (handle_accept t ~from_:q ~to_:p)

let initiative t p =
  let len = Instance.degree t.instance p in
  if len > 0 then begin
    let q = Instance.acceptable_at t.instance p (Rng.int t.rng len) in
    (* Random strategy: propose if q looks attractive on local state. *)
    if wants t p q then send t ~src:p ~dst:q (handle_propose t ~from_:p ~to_:q)
  end;
  (* Keepalive audit: probe one current mate; stale one-sided listings
     (races between crossing retracts and re-adds) get repaired instead of
     squatting a slot forever. *)
  match t.mates.(p) with
  | [] -> ()
  | l ->
      let m = List.nth l (Rng.int t.rng (List.length l)) in
      send t ~src:p ~dst:m (fun _ ->
          (* m answers with its state at probe time... *)
          let mates_at_probe = listed t m p in
          send t ~src:m ~dst:p (fun _ ->
              (* ...and p acts on the reply (m may have re-added since; its
                 own audits repair the inverse ghost if so). *)
              if (not mates_at_probe) && listed t p m then remove t p m))

let rec arm_clock t p =
  let delay = Dist.exponential t.rng ~rate:t.params.initiative_rate in
  Engine.schedule (Net.engine t.net) ~delay (fun _ ->
      if t.live then begin
        initiative t p;
        arm_clock t p
      end)

let create ?backend ?net instance rng params =
  if params.latency < 0. then invalid_arg "Async_dynamics: negative latency";
  if params.initiative_rate <= 0. then invalid_arg "Async_dynamics: rate must be positive";
  if params.loss < 0. || params.loss >= 1. then
    invalid_arg "Async_dynamics: loss must be in [0,1)";
  (match (backend, net) with
  | Some _, Some _ ->
      invalid_arg "Async_dynamics: ?backend applies to the internally built net; pass one or the other"
  | _ -> ());
  let net =
    match net with
    | Some n -> n
    | None ->
        (* Legacy fault model: constant latency, optional i.i.d. loss.
           [Iid 0.] and [Constant] draw nothing, so this network is
           draw-for-draw identical to the old direct-[Engine.schedule]
           path and preserves goldens bit-for-bit.  The queue backend
           changes pop mechanics only, never pop order, so it too is
           draw-for-draw invisible (`--queue` invariance). *)
        Net.create ~engine:(Engine.create ?backend ()) rng
          {
            latency = Net.Constant params.latency;
            loss = (if params.loss > 0. then Net.Iid params.loss else Net.No_loss);
            duplicate = 0.;
            reorder = 0.;
            reorder_spread = 0.;
          }
  in
  let t =
    { instance; params; rng; net; mates = Array.make (Instance.n instance) []; live = true }
  in
  for p = 0 to Instance.n instance - 1 do
    arm_clock t p
  done;
  t

let net t = t.net

let time t = Engine.now (Net.engine t.net)

let run t ~horizon =
  let engine = Net.engine t.net in
  Engine.run_until engine ~time:(Engine.now engine +. horizon)

let quiesce ?max_events t =
  t.live <- false;
  if Engine.drain ?max_events (Net.engine t.net) then Drained else Budget_exhausted

let mutual_config t =
  let config = Config.empty t.instance in
  Array.iteri
    (fun p l ->
      List.iter (fun q -> if p < q && listed t q p && not (Config.mated config p q) then Config.connect config p q) l)
    t.mates;
  config

let inconsistency_count t =
  let count = ref 0 in
  Array.iteri
    (fun p l -> List.iter (fun q -> if not (listed t q p) then incr count) l)
    t.mates;
  !count

let messages_sent t = Net.sent t.net
let messages_lost t = Net.dropped t.net

let disorder_trajectory t ~stable ~horizon ~samples =
  if samples < 1 then invalid_arg "Async_dynamics.disorder_trajectory: need samples >= 1";
  let start = time t in
  let points = ref [ (0., Disorder.disorder (mutual_config t) ~stable) ] in
  for k = 1 to samples do
    let target = start +. (horizon *. float_of_int k /. float_of_int samples) in
    Engine.run_until (Net.engine t.net) ~time:target;
    points := (target -. start, Disorder.disorder (mutual_config t) ~stable) :: !points
  done;
  Series.make
    (Printf.sprintf "latency=%g" t.params.latency)
    (Array.of_list (List.rev !points))
