(** Asynchronous message-passing initiative dynamics.

    The paper's §3 model is asynchronous in spirit — peers act "anytime" —
    but its simulations (and {!Sim}) are round-based with atomic rewiring.
    This module implements the dynamics as an actual distributed protocol
    over a discrete-event simulation: peers fire initiatives on
    independent exponential clocks and rewire through a
    propose/accept/commit handshake whose messages cross a
    {!Stratify_net.Net} network, so decisions are made on {e stale} state
    and must be re-validated (with retract/drop compensation) on arrival.

    Local mate lists can disagree transiently ({e inconsistency}); edges
    both endpoints agree on form the {e mutual configuration}.  The
    protocol is eventually consistent: once initiatives stop and messages
    drain, mate lists are symmetric again.  The [async] experiment
    measures how convergence degrades as latency approaches the initiative
    period; the [faults] experiment sweeps loss and latency through the
    full network layer. *)

type params = {
  latency : float;  (** one-way message delay *)
  initiative_rate : float;  (** per-peer exponential initiative rate *)
  loss : float;  (** probability a message silently vanishes, in [0,1) *)
}

val default_params : params
(** latency 0.05, rate 1 (per time unit), no loss. *)

type outcome =
  | Drained  (** all in-flight messages processed; mate lists symmetric *)
  | Budget_exhausted
      (** the event budget ran out before quiescence — an explicit
          non-convergence verdict, never silently conflated with success *)

type t

val create :
  ?backend:Stratify_des.Engine.backend ->
  ?net:Stratify_net.Net.t ->
  Instance.t ->
  Stratify_prng.Rng.t ->
  params ->
  t
(** Peers use the paper's {e random} initiative strategy (propose to a
    uniform acceptable peer) — the only one available without a global
    availability oracle.

    Without [?net], messages cross a private fault-free-by-default
    network built from [params]: constant [latency], i.i.d. [loss] — the
    legacy fault model, bit-identical to the historical
    direct-[Engine.schedule] path.  [?backend] selects the event-queue
    backend of that private network's engine (default:
    {!Stratify_des.Engine.default_backend}); every backend pops in the
    same total [(time, seq)] order, so results are backend-invariant —
    only events/sec changes (bench.des measures this workload).  With
    [?net], all messages route through the given network (its
    latency/loss/duplication/reordering/partition faults apply;
    [params.latency] and [params.loss] are ignored, and [?backend] is
    rejected — choose the backend when building the network's engine)
    and the dynamics runs on that network's engine — this is how the
    scenario harness injects faults. *)

val net : t -> Stratify_net.Net.t
(** The network carrying this instance's messages (the private one if
    [create] built it). *)

val time : t -> float

val run : t -> horizon:float -> unit
(** Advance the simulation clock (initiatives keep firing). *)

val quiesce : ?max_events:int -> t -> outcome
(** Stop all initiative clocks and drain in-flight messages.
    [Budget_exhausted] means the [max_events] drain budget (default 10⁷)
    ran out first — the run did {e not} reach a stable configuration and
    callers must report it as such. *)

val mutual_config : t -> Config.t
(** The edges both endpoints currently list. *)

val inconsistency_count : t -> int
(** Directed listings without reciprocation — in-flight handshakes and
    not-yet-delivered drops. *)

val messages_sent : t -> int
val messages_lost : t -> int
(** Messages dropped in transit (loss model + partitions). *)

val disorder_trajectory :
  t -> stable:Config.t -> horizon:float -> samples:int -> Stratify_stats.Series.t
(** Run to [horizon], sampling the mutual configuration's disorder at
    evenly spaced instants (x-axis: time units ≈ initiatives/peer). *)
