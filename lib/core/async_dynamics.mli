(** Asynchronous message-passing initiative dynamics.

    The paper's §3 model is asynchronous in spirit — peers act "anytime" —
    but its simulations (and {!Sim}) are round-based with atomic rewiring.
    This module implements the dynamics as an actual distributed protocol
    over a discrete-event simulation: peers fire initiatives on
    independent exponential clocks and rewire through a
    propose/accept/commit handshake whose messages take [latency] time
    units, so decisions are made on {e stale} state and must be
    re-validated (with retract/drop compensation) on arrival.

    Local mate lists can disagree transiently ({e inconsistency}); edges
    both endpoints agree on form the {e mutual configuration}.  The
    protocol is eventually consistent: once initiatives stop and messages
    drain, mate lists are symmetric again.  The [async] experiment
    measures how convergence degrades as latency approaches the initiative
    period. *)

type params = {
  latency : float;  (** one-way message delay *)
  initiative_rate : float;  (** per-peer exponential initiative rate *)
  loss : float;  (** probability a message silently vanishes, in [0,1) *)
}

val default_params : params
(** latency 0.05, rate 1 (per time unit), no loss. *)

type t

val create : Instance.t -> Stratify_prng.Rng.t -> params -> t
(** Peers use the paper's {e random} initiative strategy (propose to a
    uniform acceptable peer) — the only one available without a global
    availability oracle. *)

val time : t -> float

val run : t -> horizon:float -> unit
(** Advance the simulation clock (initiatives keep firing). *)

val quiesce : t -> bool
(** Stop all initiative clocks and drain in-flight messages.  Returns
    [false] only if the event budget ran out (should not happen). *)

val mutual_config : t -> Config.t
(** The edges both endpoints currently list. *)

val inconsistency_count : t -> int
(** Directed listings without reciprocation — in-flight handshakes and
    not-yet-delivered drops. *)

val messages_sent : t -> int
val messages_lost : t -> int

val disorder_trajectory :
  t -> stable:Config.t -> horizon:float -> samples:int -> Stratify_stats.Series.t
(** Run to [horizon], sampling the mutual configuration's disorder at
    evenly spaced instants (x-axis: time units ≈ initiatives/peer). *)
