(** Global rankings (the paper's intrinsic value [S(p)]).

    Every peer carries a scalar mark — available bandwidth, computational
    capacity, shared storage … — and all peers agree that higher marks are
    better.  The paper requires marks to be distinct ("Note on ties", §3):
    ties break the existence guarantees of the global-ranking class, so the
    constructor rejects them loudly rather than resolving them silently. *)

type t

exception Ties of int * int
(** Raised by {!of_scores} when two peers have equal scores. *)

val of_scores : float array -> t
(** [of_scores s] ranks peer ids [0 .. n-1] by decreasing score.
    @raise Ties if two scores are equal. *)

val identity : int -> t
(** The label ranking used throughout the paper's simulations: peer id [i]
    has rank [i] (id 0 is the best peer). *)

val size : t -> int

val rank : t -> int -> int
(** [rank t p] is the position of peer [p], [0] = best. *)

val peer_at : t -> int -> int
(** [peer_at t r] is the peer holding rank [r]; inverse of {!rank}. *)

val score : t -> int -> float
(** Original score of a peer ([-rank] for {!identity} rankings). *)

val prefers : t -> int -> int -> bool
(** [prefers t p q]: is [p] strictly better-ranked than [q]? *)

val compare_peers : t -> int -> int -> int
(** Comparator ordering peers best-first (negative when the first argument
    is better). *)

val is_identity : t -> bool
(** Whether ranks coincide with ids (enables fast paths). *)
