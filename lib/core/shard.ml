module Rng = Stratify_prng.Rng
module Exec = Stratify_exec.Exec
module Obs = Stratify_obs

let c_bands = Obs.Counter.make "shard.bands"
let c_conflicts = Obs.Counter.make "shard.stitch_conflicts"
let c_seeded = Obs.Counter.make "shard.fixup_seeded"
let c_active = Obs.Counter.make "shard.fixup_active"
let c_pops = Obs.Counter.make "shard.fixup_pops"

type band = { core_lo : int; core_hi : int; ext_lo : int; ext_hi : int }

let check_bands fn ~n ~bands ~overlap =
  if bands < 1 then invalid_arg (Printf.sprintf "%s: bands must be >= 1 (got %d)" fn bands);
  if bands > max 1 n then
    invalid_arg
      (Printf.sprintf "%s: %d bands exceed the %d-peer population" fn bands n);
  if overlap < 0 then
    invalid_arg (Printf.sprintf "%s: overlap must be >= 0 (got %d)" fn overlap)

let band_ranges ~n ~bands ~overlap =
  check_bands "Shard.band_ranges" ~n ~bands ~overlap;
  Array.init bands (fun i ->
      let core_lo = i * n / bands and core_hi = (i + 1) * n / bands in
      {
        core_lo;
        core_hi;
        ext_lo = max 0 (core_lo - overlap);
        ext_hi = min n (core_hi + overlap);
      })

(* Rank positions that no stable collaboration crosses, computed by
   replaying Algorithm 1's availability evolution without building a
   configuration: peer [i] claims the next still-available peers through
   the same lazily-compressed next-pointer jump as
   [Greedy.stable_config]'s complete fast path, but only counters are
   touched — no mate segments, no sorted inserts.  [s] is a cut iff no
   connection made by peers [< s] reached [s] or beyond; since claims
   only go forward in rank, the availability of [s, n) is then exactly
   virgin when the scan arrives at [s], so Algorithm 1 restarted from
   [s] reproduces the global configuration on [s, n) — a renewal point.
   O(n·b̄) integer work: roughly an order of magnitude cheaper than the
   full greedy build it lets the bands parallelize.

   Meaningful for the complete-family backends, whose acceptance is a
   rank window; on sparse backends cuts this cheap do not exist
   (acceptance rows would have to be walked), so the sharded solve falls
   back to nominal boundaries there.  Availability is clamped to the
   acceptance degree so removed ([Complete_minus]) peers are born
   saturated, mirroring the generic greedy's skip of their empty rows. *)
let cluster_cuts ?arena inst =
  let n = Instance.n inst in
  let prof = Obs.Profile.start () in
  let avail, next =
    match arena with
    | None ->
        ( Array.init n (fun p -> min (Instance.slots inst p) (Instance.degree inst p)),
          Array.init (n + 1) (fun i -> i) )
    | Some a ->
        let avail = Greedy.scratch_avail a n in
        for p = 0 to n - 1 do
          avail.(p) <- min (Instance.slots inst p) (Instance.degree inst p)
        done;
        let next = Greedy.scratch_next a (n + 1) in
        for i = 0 to n do
          next.(i) <- i
        done;
        (avail, next)
  in
  let rec find_next i =
    if i > n then n
    else if i = n || avail.(i) > 0 then i
    else begin
      let r = find_next next.(i + 1) in
      next.(i) <- r;
      r
    end
  in
  let cuts = ref [] and ncuts = ref 0 in
  let maxq = ref (-1) in
  for i = 0 to n - 1 do
    if !maxq < i then begin
      cuts := i :: !cuts;
      incr ncuts
    end;
    let q = ref (find_next (i + 1)) in
    while avail.(i) > 0 && !q < n do
      avail.(i) <- avail.(i) - 1;
      avail.(!q) <- avail.(!q) - 1;
      if !q > !maxq then maxq := !q;
      q := find_next (!q + 1)
    done
  done;
  (* prepended while scanning up → reversed; [n] is always a cut *)
  let out = Array.make (!ncuts + 1) n in
  List.iteri (fun i s -> out.(!ncuts - 1 - i) <- s) !cuts;
  Obs.Profile.stop "shard.cluster_cuts" ~ops:n prof;
  out

(* Snap each nominal boundary [i·n/bands] to the nearest cluster cut.
   A band that starts at a cut is phase-aligned: its local greedy equals
   the global configuration restricted to the band, so the stitch is a
   pure copy and the fixup drains an (almost) empty queue.  Nominal
   boundaries instead start bands mid-cluster, and the band-local
   clusters come out shifted — correct only after the fixup re-matches
   the entire band, which is exactly the serial work sharding exists to
   avoid.  [nearest] is monotone in its argument, so deduplicating the
   snapped bounds just drops empty bands: when cuts are sparser than
   bands (giant fused clusters, Table 1's normal law at high σ), the
   effective band count degrades gracefully instead of producing
   misaligned bands. *)
let snap_ranges ~n ~bands cuts =
  let ncuts = Array.length cuts in
  let nearest t =
    let lo = ref 0 and hi = ref ncuts in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cuts.(mid) < t then lo := mid + 1 else hi := mid
    done;
    if !lo >= ncuts then cuts.(ncuts - 1)
    else if !lo = 0 then cuts.(0)
    else if cuts.(!lo) - t <= t - cuts.(!lo - 1) then cuts.(!lo)
    else cuts.(!lo - 1)
  in
  let bounds =
    Array.init (bands + 1) (fun i ->
        if i = 0 then 0 else if i = bands then n else nearest (i * n / bands))
  in
  let uniq = ref [ n ] in
  for i = bands - 1 downto 0 do
    if bounds.(i) < List.hd !uniq then uniq := bounds.(i) :: !uniq
  done;
  let uniq = Array.of_list !uniq in
  Array.init
    (Array.length uniq - 1)
    (fun i ->
      { core_lo = uniq.(i); core_hi = uniq.(i + 1); ext_lo = uniq.(i); ext_hi = uniq.(i + 1) })

(* §4's concentration bound: the mean max offset tends to (3/4)·b0
   (Mmo.asymptote), i.e. stable mates sit within a cluster's width of
   their peer's own rank.  Pad by one full cluster (bmax + 1) so a
   remainder cluster cut by a band edge still fits in the extension. *)
let default_overlap inst =
  let bmax = Array.fold_left max 0 (Instance.raw_slots inst) in
  (((3 * bmax) + 3) / 4) + bmax + 1

(* The sub-instance induced by ranks [lo, hi), relabelled to local
   labels [0, hi-lo) with the identity ranking.  Config-level algorithms
   operate purely on rank labels, so the original instance's id<->rank
   translation is irrelevant here: a band is a window on rank space. *)
let band_instance inst ~lo ~hi =
  let len = hi - lo in
  let b = Array.sub (Instance.raw_slots inst) lo len in
  let filtered_row row row_len =
    let count = ref 0 in
    for k = 0 to row_len - 1 do
      let q = Array.unsafe_get row k in
      if q >= lo && q < hi then incr count
    done;
    let out = Array.make !count 0 in
    let j = ref 0 in
    for k = 0 to row_len - 1 do
      let q = Array.unsafe_get row k in
      if q >= lo && q < hi then begin
        out.(!j) <- q - lo;
        incr j
      end
    done;
    out
  in
  match Instance.raw_backend inst with
  | Instance.Raw_complete -> Instance.complete ~n:len ~b ()
  | Instance.Raw_complete_minus { pos; _ } ->
      let removed = ref [] in
      for r = hi - 1 downto lo do
        if pos.(r) < 0 then removed := (r - lo) :: !removed
      done;
      Instance.complete_minus ~n:len ~b ~removed:!removed ()
  | Instance.Raw_dense { off; data } ->
      let adj =
        Array.init len (fun i ->
            let p = lo + i in
            let base = off.(p) in
            filtered_row (Array.sub data base (off.(p + 1) - base)) (off.(p + 1) - base))
      in
      Instance.of_adjacency ~adj ~b ()
  | Instance.Raw_dynamic { rows; len = row_len } ->
      let adj = Array.init len (fun i -> filtered_row rows.(lo + i) row_len.(lo + i)) in
      Instance.of_adjacency ~adj ~b ()

let stable_config ?(jobs = 1) ?(bands = 1) ?overlap ?arena inst =
  let n = Instance.n inst in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Shard.stable_config: jobs must be >= 1 (got %d)" jobs);
  let overlap =
    match overlap with
    | Some o -> o
    | None -> default_overlap inst
  in
  check_bands "Shard.stable_config" ~n ~bands ~overlap;
  if bands = 1 then Greedy.stable_config ?arena inst
  else begin
    (* The complete-family backends admit the O(n) renewal scan: snap
       band boundaries to true cluster cuts so each band's local greedy
       IS the global configuration on its window (overlap becomes
       irrelevant — the extension is dropped and the stitch is a pure
       [Config.absorb] blit).  Sparse backends keep the nominal
       boundaries with extensions; their stitch goes through the
       tolerant per-pair path below.  Either way the fixup drain is the
       safety net that certifies stability, so a degraded cut scan
       could only cost time, never correctness. *)
    let snapped =
      match Instance.backend_kind inst with
      | `Complete | `Complete_minus -> true
      | `Dense | `Dynamic -> false
    in
    let ranges =
      if snapped then snap_ranges ~n ~bands (cluster_cuts ?arena inst)
      else band_ranges ~n ~bands ~overlap
    in
    let nbands = Array.length ranges in
    Obs.Counter.add c_bands nbands;
    (* Solve every (extended) band independently: Algorithm 1 on the
       band-local sub-instance.  Each kernel depends only on its band
       index, so the fan-out is jobs-invariant by construction.  The
       caller's arena is single-threaded and must not cross into the
       worker domains; each band builds with fresh scratch.  The
       [Profile] rows ARE worker-domain safe (mutex-protected), and
       every band solve records under "greedy.build" — the enclosing
       "shard.band_solve" row measures the whole fan-out from the
       coordinator. *)
    let solve = Obs.Profile.start () in
    let locals =
      Exec.map_indexed ~jobs ~count:nbands (fun i ->
          let { ext_lo; ext_hi; _ } = ranges.(i) in
          Greedy.stable_config (band_instance inst ~lo:ext_lo ~hi:ext_hi))
    in
    Obs.Profile.stop "shard.band_solve" ~ops:nbands solve;
    let config = Config.empty inst in
    let sched = Scheduler.create ~n in
    (* Stitch, in band order, each band's pairs in ascending (p, q)
       order (Config.iter_pairs) — a fixed, deterministic sequence.
       Snapped bands have no extension and disjoint pair sets, so they
       blit straight in.  Extended bands own the pairs whose best-ranked
       endpoint falls in their core, so every pair has exactly one
       owner; the tolerant connect skips anything a previously stitched
       band made impossible and queues both endpoints for the fixup
       instead. *)
    let stitch = Obs.Profile.start () in
    Array.iteri
      (fun i local ->
        let { core_lo; core_hi; ext_lo; _ } = ranges.(i) in
        if snapped then Config.absorb config local ~shift:ext_lo
        else
          Config.iter_pairs
            (fun lp lq ->
              let p = lp + ext_lo and q = lq + ext_lo in
              if p >= core_lo && p < core_hi then begin
                if
                  Config.mated config p q
                  || Config.free_slots config p <= 0
                  || Config.free_slots config q <= 0
                then begin
                  Obs.Counter.incr c_conflicts;
                  Scheduler.push sched p;
                  Scheduler.push sched q
                end
                else Config.connect config p q
              end)
            local)
      locals;
    Obs.Profile.stop "shard.stitch" ~ops:nbands stitch;
    (* Seed the fixup worklist with every possible blocking-pair
       endpoint (see shard.mli for why this set is sufficient): the
       extension zone around each internal boundary, plus every peer
       left with a free slot — which covers, in particular, any interior
       peer whose band-local pair was dropped by the stitch.  Snapped
       bands need no boundary zones: their stitched mate lists are
       band-local, and two full peers with band-local mates can never
       block across a boundary (each one's worst mate outranks the whole
       of the other's band), so free-slot seeding alone is exhaustive. *)
    if not snapped then
      for i = 1 to nbands - 1 do
        let s = ranges.(i).core_lo in
        for p = max 0 (s - overlap) to min n (s + overlap) - 1 do
          Scheduler.push sched p
        done
      done;
    for p = 0 to n - 1 do
      if Config.free_slots config p > 0 && Instance.slots inst p > 0 && Instance.degree inst p > 0
      then Scheduler.push sched p
    done;
    Obs.Counter.add c_seeded (Scheduler.length sched);
    (* Rank-ordered drain with Best_mate: consumes no randomness, pops
       lowest rank first — the deterministic fixed-order fixup.  An
       empty queue certifies stability (Scheduler invariant), and by
       Theorem 1's uniqueness the result equals the unsharded one. *)
    let state = Initiative.create_state inst in
    let fixup = Obs.Profile.start () in
    let active, pops = Scheduler.drain sched config state Initiative.Best_mate (Rng.create 0) in
    Obs.Profile.stop "shard.fixup" ~ops:pops fixup;
    Obs.Counter.add c_active active;
    Obs.Counter.add c_pops pops;
    config
  end
