(** Play-out delay over collaboration graphs (§7's streaming remark).

    The paper's conclusion warns that strong stratification "produce[s] a
    collaboration graph with large diameter (large play out delay)" for
    P2P streaming.  Model: content enters at source peers and each
    collaboration hop costs one unit of delay; a peer's play-out delay is
    its hop distance to the nearest source.  This module measures that
    delay over any collaboration graph, so stratified, proximity-based and
    random graphs can be compared. *)

type report = {
  reachable : int;  (** peers with a finite delay *)
  unreachable : int;
  mean_delay : float;  (** over reachable non-source peers *)
  max_delay : int;
  delay_histogram : int array;  (** count per hop distance *)
}

val measure : adjacency:int array array -> sources:int list -> report
(** BFS from the source set over the collaboration graph. *)

val delay_by_rank : adjacency:int array array -> sources:int list -> int array
(** Per-peer delay, [-1] when unreachable — exposes {e who} pays the
    stratification price (peers far from the sources' stratum). *)

val random_regular_baseline :
  Stratify_prng.Rng.t -> n:int -> degree:int -> int array array
(** A degree-capped random collaboration graph with the same per-peer
    budget (pairing-model with rejected duplicates) — the unstratified
    reference topology. *)
