module Components = Stratify_graph.Components

type analysis = {
  component_sizes : int array;
  mean_size : float;
  largest : int;
  count : int;
}

(* Route through the implicit [Complete] backend: no n×n adjacency is
   ever materialized, so the fig4/table1/fig6 pipeline runs at 10⁵ peers
   in O(n·b̄) memory.  With [bands = 1] (the default)
   [Shard.stable_config] is exactly [Greedy.stable_config] and its
   complete-graph fast path; [bands > 1] solves rank bands on the
   domain pool and reconciles the boundaries — same unique result
   (Theorem 1), which is what pushes fig4 to 10⁶–10⁷ peers. *)
let collaboration_graph ?(jobs = 1) ?(bands = 1) ?overlap ~b () =
  let n = Array.length b in
  Array.iter (fun k -> if k < 0 then invalid_arg "Cluster.collaboration_graph: negative budget") b;
  let inst = Instance.complete ~n ~b () in
  Config.to_adjacency (Shard.stable_config ~jobs ~bands ?overlap inst)

let analyze adj =
  let comps = Components.of_adjacency adj in
  let sizes = Array.copy comps.Components.sizes in
  Array.sort (fun a b -> Int.compare b a) sizes;
  {
    component_sizes = sizes;
    mean_size = Components.mean_size comps;
    largest = Components.largest_size comps;
    count = comps.Components.count;
  }

let analyze_budgets ~b = analyze (collaboration_graph ~b ())

let predicted_block ~n ~b0 ~peer =
  if b0 <= 0 then [ peer ]
  else begin
    let block = peer / (b0 + 1) in
    let start = block * (b0 + 1) in
    let stop = min n (start + b0 + 1) - 1 in
    List.init (stop - start + 1) (fun i -> start + i)
  end

let matches_block_structure ~n ~b0 adj =
  if Array.length adj <> n then false
  else begin
    let ok = ref true in
    for peer = 0 to n - 1 do
      let expected = List.filter (fun q -> q <> peer) (predicted_block ~n ~b0 ~peer) in
      if Array.to_list adj.(peer) <> expected then ok := false
    done;
    !ok
  end
