(** Mean Max Offset (MMO) — the paper's stratification depth measure (§4).

    For each peer, the {e max offset} is the rank distance to its furthest
    mate in the collaboration graph; the MMO averages this over peers.  A
    small MMO relative to [n] means collaboration stays between peers of
    similar intrinsic value — stratification. *)

val of_adjacency : int array array -> float
(** Empirical MMO of a collaboration graph (vertices = rank labels).
    Unmated peers contribute 0. *)

val closed_form : int -> float
(** The constant-[b0] complete-graph value:
    [MMO(b0) = (Σ_{i=1}^{b0+1} max(i−1, b0+1−i)) / (b0+1)] —
    e.g. 1.67 at [b0=2], 2.5 at 3, 3.2 at 4 (Table 1). *)

val asymptote : int -> float
(** The paper's limit [3·b0/4] (up to O(1/b0) terms). *)
