(** Churn experiments (§3, Figs 2–3): peer departures and arrivals over a
    fixed rank universe.

    A departure isolates a peer (its acceptance edges and collaborations
    vanish); an arrival re-inserts an absent peer with fresh Erdős–Rényi
    edges to the present population.  The {e instant stable configuration}
    is recomputed after every event, and disorder is always measured
    against it, restricted to present peers. *)

type params = {
  n : int;  (** rank-universe size *)
  d : float;  (** expected acceptance degree *)
  b : int;  (** per-peer slot budget (the paper uses 1) *)
  rate : float;  (** churn events per initiative step (e.g. 30/1000) *)
  units : int;  (** duration in base units *)
  samples_per_unit : int;
  strategy : Initiative.strategy;
}

val run : Stratify_prng.Rng.t -> params -> Stratify_stats.Series.t
(** Fig 3: from the empty configuration, disorder relative to the instant
    stable configuration over time, under continuous churn. *)

val removal_trajectory :
  Stratify_prng.Rng.t ->
  n:int ->
  d:float ->
  b:int ->
  remove:int ->
  units:int ->
  samples_per_unit:int ->
  Stratify_stats.Series.t
(** Fig 2: start {e at} the stable configuration, remove one peer (rank
    label, 0 = best), and track disorder towards the new stable
    configuration. *)

val mean_disorder_tail : Stratify_stats.Series.t -> skip_units:float -> float
(** Average disorder after a warm-up prefix — the "plateau level" used to
    compare churn rates. *)
