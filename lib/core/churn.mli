(** Churn experiments (§3, Figs 2–3): peer departures and arrivals over a
    fixed rank universe.

    A departure isolates a peer (its acceptance edges and collaborations
    vanish); an arrival re-inserts an absent peer with fresh Erdős–Rényi
    edges to the present population.  Disorder is always measured
    against the {e instant stable configuration}, restricted to present
    peers.

    Events are {e incremental}: the world keeps one [`Dynamic]
    {!Instance} alive for the whole run and patches its acceptance rows
    in place, and the instant stable configuration is {e repaired} —
    a dirty queue seeded with just the perturbed neighbourhood (the
    departed peer's ex-mates, or the arrival itself) is drained with
    best-mate initiatives — instead of recomputed from scratch.  By
    Theorem 1's uniqueness the repaired configuration is bit-identical
    to a full [Greedy.stable_config] rebuild, at O(cascade) per event
    instead of O(n + m); the repair draws no randomness, so trajectories
    match the historical full-rebuild implementation exactly. *)

type params = {
  n : int;  (** rank-universe size *)
  d : float;  (** expected acceptance degree *)
  b : int;  (** per-peer slot budget (the paper uses 1) *)
  rate : float;  (** churn events per initiative step (e.g. 30/1000) *)
  units : int;  (** duration in base units *)
  samples_per_unit : int;
  strategy : Initiative.strategy;
  scheduler : Scheduler.policy;
      (** how initiative takers are chosen: [Random_poll] (the paper's
          uniform sampling, the default) or [Worklist] (drain the dirty
          queue — same fixed points, far fewer wasted polls) *)
}

val run : Stratify_prng.Rng.t -> params -> Stratify_stats.Series.t
(** Fig 3: from the empty configuration, disorder relative to the instant
    stable configuration over time, under continuous churn. *)

val removal_trajectory :
  ?scheduler:Scheduler.policy ->
  Stratify_prng.Rng.t ->
  n:int ->
  d:float ->
  b:int ->
  remove:int ->
  units:int ->
  samples_per_unit:int ->
  Stratify_stats.Series.t
(** Fig 2: start {e at} the stable configuration, remove one peer (rank
    label, 0 = best), and track disorder towards the new stable
    configuration. *)

val mean_disorder_tail : Stratify_stats.Series.t -> skip_units:float -> float
(** Average disorder after a warm-up prefix — the "plateau level" used to
    compare churn rates. *)

(** {2 World plumbing}

    The event-level API, exposed for tests and custom drivers. *)

type world
(** Present mask + budgets + one live [`Dynamic] instance carrying the
    acceptance graph, the evolving configuration and the incrementally
    repaired instant stable configuration. *)

val make_world :
  ?scheduler:Scheduler.policy ->
  ?bands:int ->
  Stratify_prng.Rng.t ->
  n:int ->
  d:float ->
  b:int ->
  world
(** Fresh world over [G(n, d)] with constant budget [b], everyone
    present, the empty configuration and its stable target (the run's
    single from-scratch solve).  [bands > 1] routes that solve through
    {!Shard.stable_config} — bit-identical output by Theorem 1's
    uniqueness, but decomposed for large populations. *)

val restore_world :
  n:int ->
  b:int ->
  present:bool array ->
  adjacency:int array array ->
  config_pairs:(int * int) list ->
  stable_pairs:(int * int) list ->
  world
(** Rebuild a world from serialized state (the deterministic service
    snapshots of [stratify.serve]): acceptance rows as sorted adjacency
    arrays, the present mask, and the evolving/stable configurations as
    pair lists.  Restored worlds always use [Random_poll]; the repair
    machinery is reconstructed empty, which is exact because every event
    drains it before returning.  Raises [Invalid_argument] on
    mis-sized inputs, or (via {!Config.of_pairs}) on pairs that violate
    acceptability or budgets. *)

val remove_peer : world -> int -> unit
(** Departure: isolate the peer in the live instance, drop its
    collaborations, and repair the stable configuration from the freed
    neighbourhood. *)

val insert_peer : Stratify_prng.Rng.t -> world -> int -> p:float -> unit
(** Arrival: mark present, attach fresh Erdős–Rényi acceptance edges
    (probability [p] to each present peer) in place, and repair the
    stable configuration from the arrival. *)

val churn_event : Stratify_prng.Rng.t -> world -> p:float -> unit
(** One random event: a removal or an insertion (fair coin), falling
    back to the other kind when impossible. *)

val initiative_step : Stratify_prng.Rng.t -> world -> Initiative.strategy -> unit
(** One initiative on the evolving configuration — by a uniformly random
    present peer ([Random_poll]) or the next dirty peer ([Worklist]). *)

val world_instance : world -> Instance.t
val world_config : world -> Config.t
val world_stable : world -> Config.t
val world_present : world -> bool array

val reconfigure : Config.t -> Instance.t -> bool array -> Config.t
(** Reference semantics of an event's effect on a configuration: rebuild
    on [instance], keeping exactly the collaborations whose endpoints
    are both present and still acceptable.  The incremental event path
    is equivalent (a departure touches only the departed peer's pairs;
    an arrival touches none) — kept for tests. *)
