(** Exhaustive enumeration of stable configurations — the ground truth
    against which Algorithm 1, Irving's algorithm and the dynamics are
    cross-validated on small instances.

    Complexity is exponential in the number of acceptance edges; intended
    for [n ≤ 8]. *)

val all_configs : Instance.t -> Config.t list
(** Every degree-feasible subset of the acceptance edges. *)

val all_stable_configs : Instance.t -> Config.t list
(** The stable ones among them.  For a global-ranking instance this list
    has exactly one element (Tan's uniqueness). *)

val count_configs : Instance.t -> int
(** Number of feasible configurations (without materialising them). *)
