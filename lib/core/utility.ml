type t = Fn of (int -> int -> float)

let global_ranking ranking = Fn (fun _ q -> Ranking.score ranking q)
let of_function f = Fn f
let symmetric_distance dist = Fn (fun p q -> -.dist p q)

let blend (Fn a) (Fn b) ~alpha =
  if alpha < 0. || alpha > 1. then invalid_arg "Utility.blend: alpha must be in [0,1]";
  Fn (fun p q -> (alpha *. a p q) +. ((1. -. alpha) *. b p q))

let value (Fn f) p q = f p q

let is_symmetric (Fn f) ~n =
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      if f p q <> f q p then ok := false
    done
  done;
  !ok

let preference_lists (Fn f) ~acceptance =
  Array.mapi
    (fun p row ->
      let sorted = Array.copy row in
      Array.sort
        (fun q1 q2 ->
          let c = Float.compare (f p q2) (f p q1) in
          if c <> 0 then c else Int.compare q1 q2)
        sorted;
      sorted)
    acceptance

let to_tan u ~acceptance = Tan.of_lists (preference_lists u ~acceptance)
