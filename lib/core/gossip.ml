module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist
module Undirected = Stratify_graph.Undirected

type t = { rng : Rng.t; views : int array array; view_size : int }

let random_view rng ~n ~view_size ~self =
  let seen = Hashtbl.create (2 * view_size) in
  let out = ref [] and filled = ref 0 in
  let cap = min view_size (n - 1) in
  while !filled < cap do
    let q = Rng.int rng n in
    if q <> self && not (Hashtbl.mem seen q) then begin
      Hashtbl.replace seen q ();
      out := q :: !out;
      incr filled
    end
  done;
  Array.of_list !out

let create rng ~n ~view_size =
  if n < 2 then invalid_arg "Gossip.create: need at least two peers";
  if view_size < 1 then invalid_arg "Gossip.create: need view_size >= 1";
  {
    rng;
    views = Array.init n (fun self -> random_view rng ~n ~view_size ~self);
    view_size;
  }

let n t = Array.length t.views
let view_size t = t.view_size
let view t p = Array.copy t.views.(p)

(* Merge the local view with the received buffer: dedup, drop self, keep a
   random subset of size view_size. *)
let merge t ~self current received =
  let seen = Hashtbl.create 16 in
  let pool = ref [] in
  let add q =
    if q <> self && not (Hashtbl.mem seen q) then begin
      Hashtbl.replace seen q ();
      pool := q :: !pool
    end
  in
  Array.iter add received;
  Array.iter add current;
  let pool = Array.of_list !pool in
  Dist.shuffle t.rng pool;
  Array.sub pool 0 (min t.view_size (Array.length pool))

let round t =
  let order = Array.init (n t) (fun i -> i) in
  Dist.shuffle t.rng order;
  Array.iter
    (fun p ->
      let my_view = t.views.(p) in
      if Array.length my_view > 0 then begin
        let q = my_view.(Rng.int t.rng (Array.length my_view)) in
        (* Each side sends half of its view plus its own address. *)
        let half v sender =
          let copy = Array.copy v in
          Dist.shuffle t.rng copy;
          Array.append [| sender |] (Array.sub copy 0 (Array.length copy / 2))
        in
        let to_q = half t.views.(p) p in
        let to_p = half t.views.(q) q in
        t.views.(p) <- merge t ~self:p t.views.(p) to_p;
        t.views.(q) <- merge t ~self:q t.views.(q) to_q
      end)
    order

let acceptance_graph t =
  let g = Undirected.create (n t) in
  Array.iteri
    (fun p view -> Array.iter (fun q -> ignore (Undirected.add_edge g p q)) view)
    t.views;
  g

let view_coverage t =
  let total = Array.fold_left (fun acc v -> acc + Array.length v) 0 t.views in
  float_of_int total /. float_of_int (n t * (n t - 1))

let indegree_stddev t =
  let counts = Array.make (n t) 0 in
  Array.iter (fun v -> Array.iter (fun q -> counts.(q) <- counts.(q) + 1) v) t.views;
  let acc = Stratify_stats.Online.create () in
  Array.iter (fun c -> Stratify_stats.Online.add acc (float_of_int c)) counts;
  Stratify_stats.Online.stddev acc

module Rank_estimator = struct
  type estimator = { totals : float array; rounds : int array; n : int }

  let create ~n = { totals = Array.make n 0.; rounds = Array.make n 0; n }

  let observe est t ~scores =
    if Array.length scores <> n t then invalid_arg "Rank_estimator.observe: score size mismatch";
    for p = 0 to n t - 1 do
      let v = t.views.(p) in
      if Array.length v > 0 then begin
        let better = ref 0 in
        Array.iter (fun q -> if scores.(q) > scores.(p) then incr better) v;
        est.totals.(p) <-
          est.totals.(p) +. (float_of_int !better /. float_of_int (Array.length v));
        est.rounds.(p) <- est.rounds.(p) + 1
      end
    done

  let estimated_rank est p =
    if est.rounds.(p) = 0 then float_of_int (est.n - 1) /. 2.
    else est.totals.(p) /. float_of_int est.rounds.(p) *. float_of_int (est.n - 1)

  let mean_absolute_error est ~scores =
    let ranking = Ranking.of_scores scores in
    let total = ref 0. in
    for p = 0 to est.n - 1 do
      total := !total +. Float.abs (estimated_rank est p -. float_of_int (Ranking.rank ranking p))
    done;
    !total /. float_of_int est.n
end
