module Rng = Stratify_prng.Rng

type strategy = Best_mate | Decremental | Random

let strategy_name = function
  | Best_mate -> "best-mate"
  | Decremental -> "decremental"
  | Random -> "random"

type state = { cursor : int array }

let create_state inst = { cursor = Array.make (Instance.n inst) 0 }

let find_mate config state strategy rng p =
  match strategy with
  | Best_mate -> Blocking.best_blocking_mate config p
  | Decremental -> (
      match Blocking.blocking_mate_from config p ~start:state.cursor.(p) with
      | None -> None
      | Some (q, next) ->
          state.cursor.(p) <- next;
          Some q)
  | Random ->
      let row = Instance.acceptable (Config.instance config) p in
      if Array.length row = 0 then None
      else begin
        let q = row.(Rng.int rng (Array.length row)) in
        if Blocking.is_blocking config p q then Some q else None
      end

let perform ?on_rewire config p q =
  if not (Blocking.is_blocking config p q) then
    invalid_arg "Initiative.perform: pair does not block";
  let dropped_p =
    if Config.free_slots config p <= 0 then Config.drop_worst config p else None
  in
  let dropped_q =
    if Config.free_slots config q <= 0 then Config.drop_worst config q else None
  in
  Config.connect config p q;
  match on_rewire with
  | None -> ()
  | Some note ->
      (match dropped_p with Some w -> note w | None -> ());
      (match dropped_q with Some w -> note w | None -> ());
      note p;
      note q

let attempt ?on_rewire config state strategy rng p =
  match find_mate config state strategy rng p with
  | None -> false
  | Some q ->
      perform ?on_rewire config p q;
      true
