module Rng = Stratify_prng.Rng

type strategy = Best_mate | Decremental | Random

let strategy_name = function
  | Best_mate -> "best-mate"
  | Decremental -> "decremental"
  | Random -> "random"

type state = { cursor : int array }

let create_state inst = { cursor = Array.make (Instance.n inst) 0 }

let find_mate config state strategy rng p =
  match strategy with
  | Best_mate -> Blocking.best_blocking_mate config p
  | Decremental -> (
      match Blocking.blocking_mate_from config p ~start:state.cursor.(p) with
      | None -> None
      | Some (q, next) ->
          state.cursor.(p) <- next;
          Some q)
  | Random ->
      let row = Instance.acceptable (Config.instance config) p in
      if Array.length row = 0 then None
      else begin
        let q = row.(Rng.int rng (Array.length row)) in
        if Blocking.is_blocking config p q then Some q else None
      end

let perform config p q =
  if not (Blocking.is_blocking config p q) then
    invalid_arg "Initiative.perform: pair does not block";
  if Config.free_slots config p <= 0 then ignore (Config.drop_worst config p);
  if Config.free_slots config q <= 0 then ignore (Config.drop_worst config q);
  Config.connect config p q

let attempt config state strategy rng p =
  match find_mate config state strategy rng p with
  | None -> false
  | Some q ->
      perform config p q;
      true
