module Rng = Stratify_prng.Rng
module Obs = Stratify_obs

(* Observability (no-ops unless [Obs.Control.enabled]): every performed
   initiative is by definition active, so "initiative.performed" is the
   counted-initiative total that Theorem 1's B/2 bound talks about. *)
let c_performed = Obs.Counter.make "initiative.performed"
let c_rewires = Obs.Counter.make "initiative.rewires"

type strategy = Best_mate | Decremental | Random

let strategy_name = function
  | Best_mate -> "best-mate"
  | Decremental -> "decremental"
  | Random -> "random"

type state = { cursor : int array }

let create_state inst = { cursor = Array.make (Instance.n inst) 0 }

let find_mate config state strategy rng p =
  match strategy with
  | Best_mate -> Blocking.best_blocking_mate config p
  | Decremental -> (
      match Blocking.blocking_mate_from config p ~start:state.cursor.(p) with
      | None -> None
      | Some (q, next) ->
          state.cursor.(p) <- next;
          Some q)
  | Random ->
      let inst = Config.instance config in
      let len = Instance.degree inst p in
      if len = 0 then None
      else begin
        let q = Instance.acceptable_at inst p (Rng.int rng len) in
        if Blocking.is_blocking config p q then Some q else None
      end

let perform ?on_rewire config p q =
  if not (Blocking.is_blocking config p q) then
    invalid_arg "Initiative.perform: pair does not block";
  let dropped_p =
    if Config.free_slots config p <= 0 then Config.drop_worst config p else None
  in
  let dropped_q =
    if Config.free_slots config q <= 0 then Config.drop_worst config q else None
  in
  Config.connect config p q;
  Obs.Counter.incr c_performed;
  Obs.Counter.add c_rewires
    (2 + (if dropped_p <> None then 1 else 0) + if dropped_q <> None then 1 else 0);
  match on_rewire with
  | None -> ()
  | Some note ->
      (match dropped_p with Some w -> note w | None -> ());
      (match dropped_q with Some w -> note w | None -> ());
      note p;
      note q

let attempt ?on_rewire config state strategy rng p =
  match find_mate config state strategy rng p with
  | None -> false
  | Some q ->
      perform ?on_rewire config p q;
      true
