module Rng = Stratify_prng.Rng
module Obs = Stratify_obs

(* Observability (no-ops unless [Obs.Control.enabled]): every performed
   initiative is by definition active, so "initiative.performed" is the
   counted-initiative total that Theorem 1's B/2 bound talks about. *)
let c_performed = Obs.Counter.make "initiative.performed"
let c_rewires = Obs.Counter.make "initiative.rewires"

type strategy = Best_mate | Decremental | Random

let strategy_name = function
  | Best_mate -> "best-mate"
  | Decremental -> "decremental"
  | Random -> "random"

type state = { cursor : int array }

let create_state inst = { cursor = Array.make (Instance.n inst) 0 }

(* Shared do-nothing rewire hook: callers without an [on_rewire] pass
   this instead of wrapping a closure in [Some] per attempt — the
   steady-state loop performs millions of attempts and must not box an
   option (or a fresh closure) on each. *)
let no_note (_ : int) = ()

(* Option-free [find_mate]: the blocking mate's rank, or [-1].  The
   three strategies' scans are already sentinel-based in [Blocking]. *)
let find_mate_int config state strategy rng p =
  match strategy with
  | Best_mate -> Blocking.best_blocking_mate_int config p
  | Decremental -> Blocking.blocking_mate_cursor config p state.cursor
  | Random ->
      let inst = Config.instance config in
      let len = Instance.degree inst p in
      if len = 0 then -1
      else begin
        let q = Instance.acceptable_at inst p (Rng.int rng len) in
        if Blocking.is_blocking config p q then q else -1
      end

let find_mate config state strategy rng p =
  let q = find_mate_int config state strategy rng p in
  if q < 0 then None else Some q

(* Non-optional-hook form of [perform]: drops are sentinel ints, the
   hook is always a function ([no_note] when absent), so an active
   initiative rewires without allocating.  Counter values are identical
   to the historical option-based form: rewires = 2 principals + one per
   actually-dropped mate. *)
let perform_hook config ~note p q =
  if not (Blocking.is_blocking config p q) then
    invalid_arg "Initiative.perform: pair does not block";
  let dropped_p =
    if Config.free_slots config p <= 0 then Config.drop_worst_rank config p else -1
  in
  let dropped_q =
    if Config.free_slots config q <= 0 then Config.drop_worst_rank config q else -1
  in
  Config.connect config p q;
  Obs.Counter.incr c_performed;
  Obs.Counter.add c_rewires
    (2 + (if dropped_p >= 0 then 1 else 0) + if dropped_q >= 0 then 1 else 0);
  if dropped_p >= 0 then note dropped_p;
  if dropped_q >= 0 then note dropped_q;
  note p;
  note q

let perform ?on_rewire config p q =
  let note = match on_rewire with None -> no_note | Some f -> f in
  perform_hook config ~note p q

let attempt_hook config state strategy rng p ~note =
  let q = find_mate_int config state strategy rng p in
  q >= 0
  && begin
       perform_hook config ~note p q;
       true
     end

let attempt ?on_rewire config state strategy rng p =
  let note = match on_rewire with None -> no_note | Some f -> f in
  attempt_hook config state strategy rng p ~note
