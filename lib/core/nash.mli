(** The slot-count game of §6.

    "Suppressing one connexion can improve the probability of
    collaborating with higher peers.  However, this leads to a Nash
    equilibrium where all peers have just one TFT slot."  This module
    formalises that claim over the analytic share-ratio model: given a
    common population slot count, does any peer gain by unilaterally
    deviating? *)

type analysis = {
  population_b0 : int;  (** common slot count everyone else plays *)
  deviations : (float * int * float * float) array;
      (** per probe peer: (upload, best response, ratio at status quo,
          ratio at best response) *)
  is_equilibrium : bool;
      (** no probe peer improves by more than the tolerance *)
}

val best_response :
  n:int ->
  d:float ->
  profile:Stratify_bandwidth.Profile.t ->
  population_b0:int ->
  my_upload:float ->
  candidates:int array ->
  int * float
(** The deviation (slot count, expected D/U) maximising a peer's ratio
    when everyone else plays [population_b0]. *)

val symmetric_profile_analysis :
  n:int ->
  d:float ->
  profile:Stratify_bandwidth.Profile.t ->
  population_b0:int ->
  candidates:int array ->
  ?probes:float array ->
  ?tolerance:float ->
  unit ->
  analysis
(** Check the symmetric profile "everyone plays [population_b0]" against
    unilateral deviations within [candidates], for peers at the [probes]
    bandwidth quantiles (default: 10 %, 25 %, 50 %, 75 %, 90 %).
    [tolerance] is the minimum relative gain counted as an improvement
    (default 5 %, absorbing model noise). *)
