(** Utility functions over peers — the generic framework of §2/§7.

    The paper's analysis covers the {e global ranking} class, but its
    framework (and its conclusion) is about arbitrary utility functions:
    each peer [p] scores each acceptable peer [q] and prefers higher
    scores.  This module represents such functions and derives the
    preference lists the matching machinery consumes.

    Three structural classes matter:
    - {e global ranking}: [u p q = S q] — a peer's attractiveness is the
      same for everyone.  Unique stable configuration (§3).
    - {e symmetric}: [u p q = u q p] — e.g. negative latency.  A stable
      configuration always exists (take globally best edges greedily) but
      it need not be unique.
    - {e arbitrary}: stability can fail altogether (Tan's odd cycles). *)

type t

val global_ranking : Ranking.t -> t
(** [u p q = score q]. *)

val of_function : (int -> int -> float) -> t
(** Arbitrary utility [u p q]: the value of [q] {e for} [p]. *)

val symmetric_distance : (int -> int -> float) -> t
(** [u p q = -. dist p q] for a symmetric distance (latency, say);
    closer = better. *)

val blend : t -> t -> alpha:float -> t
(** [blend a b ~alpha]: [alpha·a + (1−alpha)·b] — the paper's §7
    "combining different utility functions". *)

val value : t -> int -> int -> float
(** Evaluate the utility. *)

val is_symmetric : t -> n:int -> bool
(** Exhaustively check [u p q = u q p] over [n] peers (tests; O(n²)). *)

val preference_lists : t -> acceptance:int array array -> int array array
(** For each peer, its acceptance list sorted by decreasing utility, ties
    broken by peer id (documented determinism; the theory assumes strict
    preferences, so callers should avoid exact ties where it matters). *)

val to_tan : t -> acceptance:int array array -> Tan.t
(** Preference system for the roommates/cycle machinery. *)
