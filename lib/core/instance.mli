(** A global-ranking b-matching instance (§2 of the paper).

    Bundles the three ingredients of the model: an {e acceptance graph}
    (who may collaborate with whom — symmetric), a {e global ranking}
    [S(p)], and per-peer {e slot budgets} [b(p)].  Internally, peers are
    relabelled by rank so that peer [0] is the best; acceptance lists are
    stored best-first, which every algorithm in this library exploits.

    The acceptance graph is held by a pluggable {e backend}:

    - [`Dense] — explicit CSR storage (one flat [int array] plus offsets),
      built from an arbitrary graph; O(Σ degree) memory.
    - [`Complete] — fully implicit: [accepts p q ⇔ p ≠ q].  O(1) memory,
      so the paper's §4 experiments (which all run on complete acceptance
      graphs) scale to 10⁵⁺ peers without an n×n adjacency.
    - [`Complete_minus] — complete minus a removal set, for
      connectivity-repair runs; O(n) memory.
    - [`Dynamic] — mutable per-peer rows for churn workloads: arrivals
      and departures patch the acceptance graph in place
      ({!dyn_add_edge}/{!dyn_isolate}) so the instance — and every
      {!Config} built on it — survives peer events.

    Algorithms should use [degree]/[acceptable_at] or the iteration
    functions below rather than [acceptable], which materializes a row. *)

type t

val create :
  ?ranking:Ranking.t ->
  graph:Stratify_graph.Undirected.t ->
  b:int array ->
  unit ->
  t
(** Build a [`Dense] instance.  [b.(p)] is peer [p]'s slot budget (must be
    non-negative).  [ranking] defaults to the identity ranking (peer id =
    rank), the convention of all the paper's experiments.  Vertices of
    [graph] are peer ids. *)

val of_adjacency : ?ranking:Ranking.t -> adj:int array array -> b:int array -> unit -> t
(** Same, from frozen adjacency arrays (must be symmetric; not checked
    beyond bounds). *)

val complete : ?ranking:Ranking.t -> n:int -> b:int array -> unit -> t
(** The complete acceptance graph on [n] peers, fully implicit: no
    adjacency is materialized, ever.  [accepts p q ⇔ p ≠ q]. *)

val complete_minus :
  ?ranking:Ranking.t -> n:int -> b:int array -> removed:int list -> unit -> t
(** The complete acceptance graph on [n] peers minus every peer in
    [removed] (given as peer ids): removed peers accept nobody and nobody
    accepts them.  O(n) memory. *)

val dynamic : graph:Stratify_graph.Undirected.t -> b:int array -> unit -> t
(** A [`Dynamic] instance snapshotting [graph] (identity ranking only:
    peer id = rank, so in-place mutations are unambiguous).  Unlike the
    frozen backends its acceptance rows may change after construction
    through {!dyn_add_edge}/{!dyn_isolate}; budgets stay fixed. *)

val dyn_add_edge : t -> int -> int -> unit
(** Add an acceptance edge to a [`Dynamic] instance (no-op when already
    present).  O(degree) per endpoint.  Raises [Invalid_argument] on
    other backends, self-loops, or out-of-range peers. *)

val dyn_isolate : t -> int -> unit
(** Drop every acceptance edge of a peer in a [`Dynamic] instance (a
    churn departure).  O(Σ neighbour degree). *)

val backend_kind : t -> [ `Dense | `Complete | `Complete_minus | `Dynamic ]
(** Which backend holds the acceptance graph — lets algorithms pick
    specialised fast paths ([Greedy.stable_config] does). *)

val n : t -> int
(** Number of peers. *)

val slots : t -> int -> int
(** Slot budget of a peer (by rank label). *)

val slot_total : t -> int
(** [B = Σ b(p)] — the bound of Theorem 1 is [B/2] initiatives. *)

val degree : t -> int -> int
(** Acceptance-list length.  O(1) on every backend. *)

val acceptable_at : t -> int -> int -> int
(** [acceptable_at t p i] is the [i]-th best acceptable peer of [p]
    ([0 <= i < degree t p]).  O(1) on every backend — this plus [degree]
    replaces row materialization in all hot paths. *)

val acceptable : t -> int -> int array
(** Acceptance list of a peer, best-ranked first, as a {e fresh} array.
    Peers are rank labels: [0] is the globally best peer.  Allocates
    O(degree) — use [acceptable_at]/[iter_acceptable] in hot paths. *)

val accepts : t -> int -> int -> bool
(** Symmetric acceptability test.  O(log degree) on [`Dense], O(1) on the
    implicit backends. *)

val iter_acceptable : t -> int -> (int -> unit) -> unit
(** Apply a function to each acceptable peer, best-ranked first. *)

val iter_acceptable_from : t -> int -> start:int -> (int -> unit) -> unit
(** Same, starting at row index [start] ([start >= 0]; indices past the
    row length iterate nothing). *)

val fold_acceptable : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over acceptable peers, best-ranked first. *)

val first_index_above : t -> int -> rank:int -> int
(** Smallest row index [i] of peer [p] with
    [acceptable_at t p i > rank], or [degree t p] if none — i.e. where a
    "peers ranked after [rank]" scan starts.  O(log degree). *)

val rank_to_id : t -> int -> int
(** Translate a rank label back to the original peer id of the input
    graph. *)

val id_to_rank : t -> int -> int
(** Translate an original peer id to its rank label. *)

(** {2 Low-level views}

    Read-only views of the backend storage for fused hot-loop kernels
    (the [Blocking] scan runs a few hundred million probes per
    experiment, and without cross-module inlining every accessor call
    costs more than the probe itself).  The returned arrays are the
    live internals: callers must never mutate them. *)

type raw_backend =
  | Raw_dense of { off : int array; data : int array }
      (** CSR rows: peer [p]'s acceptance list is
          [data.(off.(p)) .. data.(off.(p+1)-1)], increasing. *)
  | Raw_complete  (** [accepts p q ⇔ p ≠ q]; nothing stored. *)
  | Raw_complete_minus of { alive : int array; pos : int array }
      (** Surviving ranks, increasing; [pos.(p)] is [p]'s index in
          [alive], [-1] if removed. *)
  | Raw_dynamic of { rows : int array array; len : int array }
      (** Mutable rows: peer [p]'s acceptance list is
          [rows.(p).(0 .. len.(p)-1)], increasing.  Row buffers are
          replaced on growth, so re-read [rows.(p)] on every use. *)

val raw_backend : t -> raw_backend
(** Backend storage view.  O(1), allocates one small block. *)

val raw_slots : t -> int array
(** Slot budgets indexed by rank label — the live array, do not
    mutate. *)
