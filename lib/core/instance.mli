(** A global-ranking b-matching instance (§2 of the paper).

    Bundles the three ingredients of the model: an {e acceptance graph}
    (who may collaborate with whom — symmetric), a {e global ranking}
    [S(p)], and per-peer {e slot budgets} [b(p)].  Internally, peers are
    relabelled by rank so that peer [0] is the best; acceptance lists are
    stored best-first, which every algorithm in this library exploits. *)

type t

val create :
  ?ranking:Ranking.t ->
  graph:Stratify_graph.Undirected.t ->
  b:int array ->
  unit ->
  t
(** Build an instance.  [b.(p)] is peer [p]'s slot budget (must be
    non-negative).  [ranking] defaults to the identity ranking (peer id =
    rank), the convention of all the paper's experiments.  Vertices of
    [graph] are peer ids. *)

val of_adjacency : ?ranking:Ranking.t -> adj:int array array -> b:int array -> unit -> t
(** Same, from frozen adjacency arrays (must be symmetric; not checked
    beyond bounds). *)

val n : t -> int
(** Number of peers. *)

val slots : t -> int -> int
(** Slot budget of a peer (by rank label). *)

val slot_total : t -> int
(** [B = Σ b(p)] — the bound of Theorem 1 is [B/2] initiatives. *)

val acceptable : t -> int -> int array
(** Acceptance list of a peer, best-ranked first.  Peers are rank labels:
    [0] is the globally best peer. *)

val accepts : t -> int -> int -> bool
(** Symmetric acceptability test (binary search, O(log degree)). *)

val degree : t -> int -> int
(** Acceptance-list length. *)

val rank_to_id : t -> int -> int
(** Translate a rank label back to the original peer id of the input
    graph. *)

val id_to_rank : t -> int -> int
(** Translate an original peer id to its rank label. *)
