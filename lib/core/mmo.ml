let of_adjacency adj =
  let n = Array.length adj in
  if n = 0 then 0.
  else begin
    let total = ref 0 in
    Array.iteri
      (fun peer mates ->
        let worst = Array.fold_left (fun acc q -> max acc (abs (q - peer))) 0 mates in
        total := !total + worst)
      adj;
    float_of_int !total /. float_of_int n
  end

let closed_form b0 =
  if b0 <= 0 then 0.
  else begin
    let k = b0 + 1 in
    let total = ref 0 in
    for i = 1 to k do
      total := !total + max (i - 1) (k - i)
    done;
    float_of_int !total /. float_of_int k
  end

let asymptote b0 = 0.75 *. float_of_int b0
