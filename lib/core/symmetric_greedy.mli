(** Stable b-matching for {e symmetric} utilities (§7's latency class).

    When [u p q = u q p] — pairwise latency, say — a stable configuration
    always exists: repeatedly take the globally best remaining acceptable
    pair with free slots on both sides.  The first pair chosen is mutually
    best, hence stable, and the argument recurses (the symmetric analogue
    of Algorithm 1's best-peer-first argument).  Unlike the global-ranking
    case the result need not be unique — distinct symmetric weights give a
    unique outcome, ties do not.

    This is the constructive half of the paper's concluding remark that
    different utility classes yield very different collaboration
    structures: symmetric utilities cluster peers by {e proximity} rather
    than by {e rank} (no stratification), which the [latency] experiment
    demonstrates. *)

val stable_state :
  General_matching.t -> utility:Utility.t -> General_matching.State.state
(** Greedy max-utility-edge matching.  [utility] must be the symmetric
    utility the instance was built from (used to order edges; symmetry is
    the caller's obligation — verify with {!Utility.is_symmetric} in
    tests).  O(m log m). *)
