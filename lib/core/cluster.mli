(** Cluster structure of stable configurations on complete acceptance
    graphs (§4).

    With constant budgets [b0] the stable collaboration graph is a chain of
    complete blocks of size [b0+1] (Fig 4); heterogeneous budgets fuse the
    blocks into huge components (Table 1, Fig 6). *)

type analysis = {
  component_sizes : int array;  (** sorted decreasingly *)
  mean_size : float;
  largest : int;
  count : int;
}

val collaboration_graph :
  ?jobs:int -> ?bands:int -> ?overlap:int -> b:int array -> unit -> int array array
(** Stable collaboration graph on the complete acceptance graph (identity
    ranking), as sorted adjacency arrays.  Fast path — O(n · max b).
    [bands]/[overlap]/[jobs] (defaults 1 / {!Shard.default_overlap} / 1)
    route the matching through {!Shard.stable_config}: rank-banded
    solves on the domain pool with boundary reconciliation — the result
    is identical for every combination (Theorem 1's uniqueness). *)

val analyze : int array array -> analysis
(** Component statistics of a collaboration graph. *)

val analyze_budgets : b:int array -> analysis
(** [analyze (collaboration_graph ~b)]. *)

val predicted_block : n:int -> b0:int -> peer:int -> int list
(** The members of [peer]'s predicted cluster under constant [b0]-matching:
    the block [\[k(b0+1), …\]] containing it, truncated at [n]. *)

val matches_block_structure : n:int -> b0:int -> int array array -> bool
(** Does a collaboration graph consist exactly of the predicted complete
    blocks? (Fig 4's claim.) *)
