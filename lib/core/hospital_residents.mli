(** Hospitals/Residents — capacitated bipartite deferred acceptance.

    The bipartite ancestor of b-matching (Gale & Shapley 1962, college
    admissions): residents each want one hospital, hospitals have
    capacities.  Included as the classical capacitated baseline against
    which the roommates-style machinery is cross-validated; with
    incomplete lists, unmatched agents are allowed and the standard
    stability notion applies. *)

type instance = {
  resident_prefs : int array array;
      (** resident r's acceptable hospitals, most-preferred first *)
  hospital_prefs : int array array;
      (** hospital h's acceptable residents, most-preferred first *)
  capacity : int array;  (** per-hospital capacity *)
}

type matching = {
  hospital_of : int array;  (** resident -> hospital, or -1 *)
  residents_of : int list array;  (** hospital -> residents, best first *)
}

val solve : instance -> matching
(** Resident-proposing deferred acceptance: resident-optimal stable
    matching, O(Σ list lengths).  Raises [Invalid_argument] on asymmetric
    acceptability, duplicate entries or negative capacities. *)

val is_stable : instance -> matching -> bool
(** No resident–hospital pair prefers each other to their assignment. *)

val unmatched_residents : matching -> int list
