(** The σ phase transition of variable b-matching (§4.2, Table 1, Fig 6).

    Sweeping the budget dispersion σ at fixed mean b̄ on a complete
    acceptance graph: around σ ≈ 0.15 the average cluster size explodes
    from [b̄+1] to a value growing roughly factorially with b̄, while the
    MMO {e decreases}. *)

type point = {
  sigma : float;
  mean_cluster_size : float;
  largest_cluster : float;
  mmo : float;
}

val measure :
  ?jobs:int ->
  ?bands:int ->
  ?overlap:int ->
  Stratify_prng.Rng.t ->
  n:int ->
  mean_b:float ->
  sigma:float ->
  replicates:int ->
  point
(** Average cluster size and MMO over [replicates] independent budget
    draws on [n] peers.  [bands]/[overlap]/[jobs] are forwarded to
    {!Cluster.collaboration_graph} (rank-banded sharded matching);
    results are identical for every combination. *)

val sweep :
  ?jobs:int ->
  ?bands:int ->
  ?overlap:int ->
  Stratify_prng.Rng.t ->
  n:int ->
  mean_b:float ->
  sigmas:float array ->
  replicates:int ->
  point array
(** Fig 6's abscissa sweep. *)

val transition_sigma : point array -> threshold:float -> float option
(** First σ whose mean cluster size exceeds [threshold] × the σ=0 size —
    the measured location of the phase transition. *)
