(** Gossip-based peer sampling (Jelasity, Guerraoui & Kermarrec —
    reference [8] of the paper).

    The paper notes its framework "also fits gossip-based protocols used
    by a peer to discover its rank": in a deployed system the acceptance
    list is not a static random graph but a continuously refreshed {e
    view} maintained by gossip.  This module implements the classic
    view-exchange service — every round each peer swaps half of its view
    with a random view member and keeps the freshest entries — and
    exposes the induced (symmetrised) acceptance graph so the initiative
    dynamics can run on top of it. *)

type t

val create : Stratify_prng.Rng.t -> n:int -> view_size:int -> t
(** Bootstrap: each peer's view holds [view_size] uniform random peers. *)

val n : t -> int
val view_size : t -> int

val view : t -> int -> int array
(** Current view of a peer (distinct peers, no self). *)

val round : t -> unit
(** One gossip round: every peer (in random order) exchanges half of its
    view, including its own address, with a uniformly chosen view member;
    both keep a fresh random subset of the union, deduplicated, capped at
    [view_size]. *)

val acceptance_graph : t -> Stratify_graph.Undirected.t
(** The symmetrised knows-relation: an edge whenever either peer has the
    other in view. *)

val view_coverage : t -> float
(** Fraction of ordered peer pairs (p, q) with [q] in [p]'s view —
    [view_size/(n-1)] when views stay full. *)

val indegree_stddev : t -> float
(** Standard deviation of the in-view count across peers — the classic
    load-balance diagnostic of a peer-sampling service (gossip keeps it
    low; a star topology makes it explode). *)

(** Decentralised rank discovery — the use the paper cites gossip for
    ("gossip-based protocols used by a peer to discover its rank"). *)
module Rank_estimator : sig
  type estimator

  val create : n:int -> estimator

  val observe : estimator -> t -> scores:float array -> unit
  (** After a gossip round, every peer compares its score against its
      current view and accumulates the better-than-me fraction. *)

  val estimated_rank : estimator -> int -> float
  (** Peer's running rank estimate, in [0, n-1] (smaller = better). *)

  val mean_absolute_error : estimator -> scores:float array -> float
  (** Mean |estimated − true| rank over all peers. *)
end
