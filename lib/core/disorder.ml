(* Sum over slot columns of |mate difference|, mates best-first, padding
   with the virtual worst mate [n] (0-based labels make [n] play the role
   of the paper's [n+1]). *)
let column_gap n b mates1 mates2 =
  let rec go l1 l2 remaining acc =
    if remaining = 0 then acc
    else
      match (l1, l2) with
      | [], [] -> acc
      | x :: r1, [] -> go r1 [] (remaining - 1) (acc + abs (x - n))
      | [], y :: r2 -> go [] r2 (remaining - 1) (acc + abs (n - y))
      | x :: r1, y :: r2 -> go r1 r2 (remaining - 1) (acc + abs (x - y))
  in
  go mates1 mates2 b 0

let generic ~present c1 c2 =
  let inst = Config.instance c1 in
  let n_total = Instance.n inst in
  if Instance.n (Config.instance c2) <> n_total then
    invalid_arg "Disorder.distance: instance size mismatch";
  let considered p = match present with None -> true | Some mask -> mask.(p) in
  let n_present = ref 0 and b_present = ref 0 and total = ref 0 in
  for p = 0 to n_total - 1 do
    if considered p then begin
      incr n_present;
      let b = max (Instance.slots inst p) (Instance.slots (Config.instance c2) p) in
      b_present := !b_present + b;
      total := !total + column_gap n_total b (Config.mates c1 p) (Config.mates c2 p)
    end
  done;
  if !b_present = 0 then 0.
  else
    2. *. float_of_int !total
    /. (float_of_int !b_present *. float_of_int (!n_present + 1))

let distance c1 c2 = generic ~present:None c1 c2
let disorder c ~stable = distance c stable
let distance_on ~present c1 c2 = generic ~present:(Some present) c1 c2
