(* Sum over slot columns of |mate difference|, mates best-first, padding
   with the virtual worst mate [n] (0-based labels make [n] play the role
   of the paper's [n+1]).  Columns where both sides are empty contribute
   nothing, so the scan stops at the longer of the two mate sets.  Reads
   mates by index — no per-peer list allocation on the sampling path. *)
let column_gap n b c1 c2 p =
  let d1 = Config.degree c1 p and d2 = Config.degree c2 p in
  let cols = min b (max d1 d2) in
  let acc = ref 0 in
  for i = 0 to cols - 1 do
    let x = if i < d1 then Config.mate_at c1 p i else n in
    let y = if i < d2 then Config.mate_at c2 p i else n in
    acc := !acc + abs (x - y)
  done;
  !acc

let generic ~present c1 c2 =
  let inst = Config.instance c1 in
  let n_total = Instance.n inst in
  if Instance.n (Config.instance c2) <> n_total then
    invalid_arg "Disorder.distance: instance size mismatch";
  let considered p = match present with None -> true | Some mask -> mask.(p) in
  let n_present = ref 0 and b_present = ref 0 and total = ref 0 in
  for p = 0 to n_total - 1 do
    if considered p then begin
      incr n_present;
      let b = max (Instance.slots inst p) (Instance.slots (Config.instance c2) p) in
      b_present := !b_present + b;
      total := !total + column_gap n_total b c1 c2 p
    end
  done;
  if !b_present = 0 then 0.
  else
    2. *. float_of_int !total
    /. (float_of_int !b_present *. float_of_int (!n_present + 1))

let distance c1 c2 = generic ~present:None c1 c2
let disorder c ~stable = distance c stable
let distance_on ~present c1 c2 = generic ~present:(Some present) c1 c2
