(** Convergence scheduling — which peer attempts the next initiative.

    Theorem 1 makes the stable configuration schedule-independent: any
    sequence of active initiatives reaches the same fixed point.  That
    licenses two interchangeable policies:

    - {e Random_poll} — each step polls a uniformly random peer, the
      paper's §3 setting and the default for paper-faithful
      trajectories (Figs 1–3).  Near stability almost every poll is a
      wasted pass.
    - {e Worklist} — an intrusive dirty set of {e active candidates}:
      only peers whose mate list (or acceptance neighbourhood) changed
      since they last found no blocking mate are polled, best rank
      first.  Seeded and re-seeded through {!Initiative.perform}'s
      [on_rewire] hook; an empty set certifies stability, so
      convergence costs O(cascade) instead of O(n) polls per quiescent
      sweep, and the rank order replays Theorem 1's constructive
      schedule (strata settle top-down, active count near B/2).

    Soundness of the dirty set: a rewire changes the state of exactly
    the peers [on_rewire] reports (the two principals and any dropped
    mates), a pair's blocking status depends only on its endpoints'
    states, and a peer is popped only after scanning its whole
    acceptance list without finding a blocking mate — so "every
    blocking pair has an endpoint in the queue" is an invariant and an
    empty queue implies no blocking pair exists. *)

type policy = Random_poll | Worklist

val policy_name : policy -> string
(** ["random"] / ["worklist"] — the [--scheduler] CLI spelling. *)

val policy_of_string : string -> policy option

type t
(** A dirty set over peers [0 .. n-1]: {!pop} returns the
    lowest-labelled member (= best-ranked under the identity ranking),
    each peer present at most once (word-packed bitset), O(1) push and
    amortised-O(1) pop, no allocation after {!create}. *)

val create : n:int -> t
(** An empty queue over [n] peers. *)

val push : t -> int -> unit
(** Mark a peer dirty; no-op if already queued.  Bumps "sched.pushes"
    when it actually enqueues (observability on). *)

val pop : t -> int option
(** Lowest-labelled dirty peer, or [None] when the set is empty (= the
    configuration is stable if the invariant was maintained).  Bumps
    "sched.pops". *)

val pop_int : t -> int
(** Option-free {!pop}: the popped peer, or [-1] on an empty set.  The
    worklist dynamics use this so a steady-state pop allocates
    nothing. *)

val mem : t -> int -> bool
val length : t -> int
val is_empty : t -> bool

val clear : t -> unit

val seed_all : t -> unit
(** Mark every peer dirty (convergence from an arbitrary
    configuration, e.g. the empty one). *)

val drain :
  ?on_rewire:(int -> unit) ->
  t ->
  Config.t ->
  Initiative.state ->
  Initiative.strategy ->
  Stratify_prng.Rng.t ->
  int * int
(** Pop-and-attempt until the queue is empty, re-queueing every peer
    [Initiative.perform] reports as rewired; returns
    [(active, attempts)].  With the [Best_mate] strategy this consumes
    no randomness, so it can repair a configuration mid-stream without
    perturbing the caller's RNG trajectory ({!Churn} relies on this).
    [on_rewire] is forwarded to the underlying attempts (after the
    queue push) for external divergence trackers. *)

val note_hit : unit -> unit
(** Bump "sched.hits" — for callers that pop manually ({!Sim}) rather
    than through {!drain}. *)
