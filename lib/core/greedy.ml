(* Algorithm 1 (§3): scan peers best-first; each peer claims the
   best-ranked acceptable peers after it that still have capacity.  The
   result is the unique stable configuration of an acyclic instance. *)

(* Reusable scratch buffers for the greedy scans.  A repeated solver
   (churn repair, sharded band solves, benchmark loops) passes the same
   arena to every call so the per-build [available]/[next] arrays are
   allocated once and reused; the arrays grow monotonically and are
   re-filled from scratch on each use, so a call with an arena is
   bit-identical to one without.  An arena is single-threaded state:
   share one per domain, never across domains. *)
type arena = { mutable avail : int array; mutable next : int array }

let create_arena () = { avail = [||]; next = [||] }

let scratch_avail a len =
  if Array.length a.avail < len then a.avail <- Array.make (max len 1) 0;
  a.avail

let scratch_next a len =
  if Array.length a.next < len then a.next <- Array.make (max len 1) 0;
  a.next

(* [available.(i)] = remaining slot budget of peer [i]; fresh per call,
   arena-backed when one is supplied (entries beyond [n] are ignored). *)
let fill_avail arena inst n =
  match arena with
  | None -> Array.init n (Instance.slots inst)
  | Some a ->
      let v = scratch_avail a n in
      for i = 0 to n - 1 do
        v.(i) <- Instance.slots inst i
      done;
      v

let fill_next arena n =
  match arena with
  | None -> Array.init (n + 1) (fun i -> i)
  | Some a ->
      let v = scratch_next a (n + 1) in
      for i = 0 to n do
        v.(i) <- i
      done;
      v

(* Generic path: works on any backend through the O(1) indexed row
   access.  [first_index_above] skips the row prefix of peers ranked
   before [i], which the legacy code walked and discarded one by one. *)
let stable_config_generic ?arena inst =
  let n = Instance.n inst in
  let config = Config.empty inst in
  let available = fill_avail arena inst n in
  for i = 0 to n - 1 do
    if available.(i) > 0 then begin
      let len = Instance.degree inst i in
      (* Acceptable peers better than i were processed earlier and either
         connected to i already (accounted in available) or spent their
         slots; only peers ranked after i can still be claimed. *)
      let j = ref (Instance.first_index_above inst i ~rank:i) in
      while available.(i) > 0 && !j < len do
        let q = Instance.acceptable_at inst i !j in
        if available.(q) > 0 then begin
          Config.connect config i q;
          available.(i) <- available.(i) - 1;
          available.(q) <- available.(q) - 1
        end;
        incr j
      done
    end
  done;
  config

(* Complete-backend fast path: every pair is acceptable, so instead of
   probing each q > i for capacity we jump between peers that still have
   capacity with a lazily-compressed "next pointer" array (union-find
   style).  O(n·b̄) total instead of O(n²) probes.  Connections are made
   in exactly the order the generic scan would make them, so the
   resulting configuration is identical. *)
let stable_config_complete ?arena inst =
  let n = Instance.n inst in
  let config = Config.empty inst in
  let available = fill_avail arena inst n in
  let next = fill_next arena n in
  let rec find_next i =
    if i > n then n
    else if i = n || available.(i) > 0 then i
    else begin
      let r = find_next next.(i + 1) in
      next.(i) <- r;
      r
    end
  in
  for i = 0 to n - 1 do
    let q = ref (find_next (i + 1)) in
    while available.(i) > 0 && !q < n do
      Config.connect config i !q;
      available.(i) <- available.(i) - 1;
      available.(!q) <- available.(!q) - 1;
      q := find_next (!q + 1)
    done
  done;
  config

(* "greedy.stable_config" counts full from-scratch builds: churn runs
   use it (together with the "sched.*" counters) to prove they repaired
   incrementally instead of rebuilding per event. *)
let c_builds = Stratify_obs.Counter.make "greedy.stable_config"

let stable_config ?arena inst =
  Stratify_obs.Counter.incr c_builds;
  let snap = Stratify_obs.Profile.start () in
  let config =
    match Instance.backend_kind inst with
    | `Complete -> stable_config_complete ?arena inst
    | `Dense | `Complete_minus | `Dynamic -> stable_config_generic ?arena inst
  in
  Stratify_obs.Profile.stop "greedy.build" ~ops:(Instance.n inst) snap;
  config

(* Standalone raw-array variant of the complete-graph case, kept as a
   reference implementation for tests and benchmarks. *)
let stable_complete ~b =
  let n = Array.length b in
  Array.iter (fun k -> if k < 0 then invalid_arg "Greedy.stable_complete: negative budget") b;
  let mates = Array.init n (fun i -> Array.make (min b.(i) (n - 1)) (-1)) in
  let filled = Array.make n 0 in
  let available = Array.copy b in
  (* next.(i) = first peer >= i that may still have capacity; lazily
     compressed like a union-find "next pointer" structure. *)
  let next = Array.init (n + 1) (fun i -> i) in
  let rec find_next i = if i > n then n
    else if i = n || available.(i) > 0 then i
    else begin
      let r = find_next next.(i + 1) in
      next.(i) <- r;
      r
    end
  in
  let connect i q =
    mates.(i).(filled.(i)) <- q;
    filled.(i) <- filled.(i) + 1;
    mates.(q).(filled.(q)) <- i;
    filled.(q) <- filled.(q) + 1;
    available.(i) <- available.(i) - 1;
    available.(q) <- available.(q) - 1
  in
  for i = 0 to n - 1 do
    let q = ref (find_next (i + 1)) in
    while available.(i) > 0 && !q < n do
      connect i !q;
      q := find_next (!q + 1)
    done
  done;
  Array.init n (fun i ->
      let row = Array.sub mates.(i) 0 filled.(i) in
      Array.sort Int.compare row;
      row)

let stable_partners_array inst =
  let n = Instance.n inst in
  for p = 0 to n - 1 do
    if Instance.slots inst p > 1 then
      invalid_arg "Greedy.stable_partners_array: 1-matching only"
  done;
  let config = stable_config inst in
  Array.init n (fun p -> match Config.best_mate config p with Some q -> q | None -> -1)
