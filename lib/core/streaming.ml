module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist

let delay_by_rank ~adjacency ~sources =
  let n = Array.length adjacency in
  let delay = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Streaming: source out of range";
      if delay.(s) < 0 then begin
        delay.(s) <- 0;
        Queue.push s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if delay.(v) < 0 then begin
          delay.(v) <- delay.(u) + 1;
          Queue.push v queue
        end)
      adjacency.(u)
  done;
  delay

type report = {
  reachable : int;
  unreachable : int;
  mean_delay : float;
  max_delay : int;
  delay_histogram : int array;
}

let measure ~adjacency ~sources =
  let delay = delay_by_rank ~adjacency ~sources in
  let reachable = ref 0 and unreachable = ref 0 in
  let total = ref 0 and non_source = ref 0 and max_delay = ref 0 in
  Array.iter
    (fun d ->
      if d < 0 then incr unreachable
      else begin
        incr reachable;
        if d > 0 then begin
          total := !total + d;
          incr non_source
        end;
        if d > !max_delay then max_delay := d
      end)
    delay;
  let histogram = Array.make (!max_delay + 1) 0 in
  Array.iter (fun d -> if d >= 0 then histogram.(d) <- histogram.(d) + 1) delay;
  {
    reachable = !reachable;
    unreachable = !unreachable;
    mean_delay =
      (if !non_source = 0 then 0. else float_of_int !total /. float_of_int !non_source);
    max_delay = !max_delay;
    delay_histogram = histogram;
  }

let random_regular_baseline rng ~n ~degree =
  if degree < 0 then invalid_arg "Streaming.random_regular_baseline: negative degree";
  (* Pairing model: shuffle the multiset of half-edges, reject self-loops
     and duplicates (leaves a few peers slightly under-degree, which
     matches the matching-based graphs it is compared against). *)
  let stubs = Array.make (n * degree) 0 in
  for v = 0 to n - 1 do
    for k = 0 to degree - 1 do
      stubs.((v * degree) + k) <- v
    done
  done;
  Dist.shuffle rng stubs;
  let seen = Hashtbl.create (n * degree) in
  let adj = Array.make n [] in
  let m = Array.length stubs in
  let i = ref 0 in
  while !i + 1 < m do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
      Hashtbl.replace seen (min u v, max u v) ();
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v)
    end;
    i := !i + 2
  done;
  Array.map (fun l -> Array.of_list (List.sort Int.compare l)) adj
