type t = {
  score : float array;
  rank_of : int array;  (* peer id -> rank, 0 = best *)
  peer_at : int array;  (* rank -> peer id *)
  identity : bool;
}

exception Ties of int * int

let of_scores score =
  let n = Array.length score in
  let peer_at = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare score.(b) score.(a) in
      if c <> 0 then c else Int.compare a b)
    peer_at;
  (* Detect ties between rank-adjacent peers (sorting makes adjacency
     sufficient). *)
  for r = 0 to n - 2 do
    if score.(peer_at.(r)) = score.(peer_at.(r + 1)) then
      raise (Ties (peer_at.(r), peer_at.(r + 1)))
  done;
  let rank_of = Array.make n 0 in
  Array.iteri (fun r p -> rank_of.(p) <- r) peer_at;
  let identity = Array.for_all (fun p -> rank_of.(p) = p) (Array.init n (fun i -> i)) in
  { score = Array.copy score; rank_of; peer_at; identity }

let identity n =
  {
    score = Array.init n (fun i -> float_of_int (-i));
    rank_of = Array.init n (fun i -> i);
    peer_at = Array.init n (fun i -> i);
    identity = true;
  }

let size t = Array.length t.rank_of
let rank t p = t.rank_of.(p)
let peer_at t r = t.peer_at.(r)
let score t p = t.score.(p)
let prefers t p q = t.rank_of.(p) < t.rank_of.(q)
let compare_peers t p q = Int.compare t.rank_of.(p) t.rank_of.(q)
let is_identity t = t.identity
