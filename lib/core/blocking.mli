(** Blocking pairs and stability (§2 of the paper).

    A pair [{p, q}] {e blocks} a configuration when the two peers are
    acceptable to each other, not currently mates, and each is either
    under-budget or prefers the other to its worst current mate.  A
    configuration with no blocking pair is {e stable} — a Nash equilibrium
    of the collaboration game. *)

val would_accept : Config.t -> int -> int -> bool
(** [would_accept c p q]: would [p] welcome [q] as a new mate — free slot,
    or [q] better than [p]'s worst mate?  (Does not check acceptability or
    current matedness.)  One load of {!Config.raw_thresh}. *)

val is_blocking : Config.t -> int -> int -> bool
(** Full blocking-pair test for [{p, q}]. *)

val best_blocking_mate : Config.t -> int -> int option
(** Best-ranked blocking mate of [p], if any — the target of a "best mate"
    initiative.  O(acceptance degree). *)

val best_blocking_mate_int : Config.t -> int -> int
(** Option-free {!best_blocking_mate}: the mate's rank, or [-1] when no
    pair involving [p] blocks.  The steady-state convergence loop calls
    this per attempt and allocates nothing. *)

val blocking_mate_from : Config.t -> int -> start:int -> (int * int) option
(** Circular scan of [p]'s acceptance list beginning at position [start]
    (for "decremental" initiatives).  Returns [(mate, next_start)]. *)

val blocking_mate_cursor : Config.t -> int -> int array -> int
(** Option-free {!blocking_mate_from} with the per-peer cursor state
    threaded as an array: starts at [cursors.(p)], and only on a hit
    stores the follow-up position back into [cursors.(p)] and returns
    the mate's rank; [-1] (cursor untouched) when nothing blocks. *)

val blocking_pairs : Config.t -> (int * int) list
(** All blocking pairs, [p < q].  O(n · degree); intended for tests and
    small instances. *)

val is_stable : Config.t -> bool

val first_blocking_pair : Config.t -> (int * int) option
