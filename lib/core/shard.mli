(** Rank-banded sharded matching — the million-peer layer.

    §4's concentration bound (MMO → (3/4)·b0, {!Mmo.asymptote}) says a
    peer's stable mates live within a few budget-widths of its own rank,
    so the global b-matching decomposes almost perfectly into rank
    bands.  [stable_config] exploits that: it partitions the population
    into [bands] contiguous rank intervals, extends each by [overlap]
    ranks on both sides, solves every extended band independently
    (Algorithm 1 on a band-local sub-instance, fanned out over the
    {!Stratify_exec.Exec} domain pool), stitches the band solutions into
    one global {!Config}, and reconciles the boundaries with the
    rank-ordered {!Scheduler} worklist until no cross-band blocking pair
    remains.

    {2 Why the result is exact, for any band count and overlap}

    The fixup seeds every peer that could possibly be an endpoint of a
    blocking pair after stitching:

    - every peer within [overlap] of an internal band boundary (its
      band-local mates may differ between the two bands that both see
      it);
    - both endpoints of every stitch conflict (a pair the tolerant
      stitch had to skip);
    - every peer with a free slot (a peer missing one of its band-local
      mates necessarily has [deg < b], and two open peers in different
      bands can always block each other on a complete acceptance
      graph).

    Any pair of {e unseeded} peers is then provably non-blocking: two
    unseeded interiors of the same band carry their band-local mate
    lists, and the band solution is stable; two full unseeded interiors
    of different bands cannot want each other, because each one's worst
    mate is strictly better-ranked than the other band's interior.  So
    "every blocking pair has an endpoint in the queue" holds when the
    drain starts, the {!Scheduler} invariant preserves it, and an empty
    queue certifies stability.  Theorem 1 makes the stable configuration
    unique, hence the sharded result is {e identical} to the unsharded
    one — for any [bands >= 1] and any [overlap >= 0]; the overlap only
    controls how much reconciliation work is left.  The drain uses
    {!Initiative.Best_mate}, which consumes no randomness, so the whole
    pipeline is deterministic for any [jobs], like the rest of the
    [--jobs] discipline.

    {2 Why boundaries are snapped on complete-family backends}

    Correct-for-any-boundary is not fast-for-any-boundary: Algorithm 1
    run on a suffix [\[lo, n)] anchors its clusters at [lo], while the
    global solution anchors them at renewal points of its own scan, so a
    band whose start is mid-cluster produces an entirely {e phase-
    shifted} local solution that the serial fixup must re-match pair by
    pair — O(n) serial work, the opposite of sharding.  For [`Complete]
    and [`Complete_minus], [cluster_cuts] replays Algorithm 1's
    availability evolution with pure counters (no configuration, O(n·b̄)
    integer ops) and returns exactly the ranks no stable pair crosses;
    starting a band at such a cut makes its local solve equal the global
    solution restricted to the band, the stitch a flat {!Config.absorb}
    blit, and the fixup an (almost) empty drain.  [stable_config] snaps
    nominal boundaries to the nearest cut on those backends (dropping
    bands that collapse when cuts are sparser than bands — giant fused
    clusters parallelize gracelessly by nature) and ignores [overlap]
    there; sparse backends keep nominal boundaries plus extensions and
    pay the tolerant per-pair stitch. *)

type band = {
  core_lo : int;  (** first rank owned by this band *)
  core_hi : int;  (** one past the last owned rank *)
  ext_lo : int;  (** [core_lo - overlap], clamped to 0 *)
  ext_hi : int;  (** [core_hi + overlap], clamped to [n] *)
}

val band_ranges : n:int -> bands:int -> overlap:int -> band array
(** The band decomposition: cores partition [\[0, n)] into [bands]
    near-equal contiguous intervals ([core_lo = i·n/bands]), extensions
    pad each core by [overlap] ranks on both sides.  Raises
    [Invalid_argument] on [bands < 1], [bands > max 1 n] or
    [overlap < 0]. *)

val cluster_cuts : ?arena:Greedy.arena -> Instance.t -> int array
(** The ascending rank positions that no stable collaboration crosses
    (always including [0] and [n]): renewal points of Algorithm 1's
    scan, computed in O(n·b̄) integer work without building a
    configuration.  Exact for [`Complete]/[`Complete_minus] (on constant
    budgets [b0 > 0] these are precisely the multiples of [b0+1], §4's
    block structure); on sparse backends the window-claim replay is only
    an approximation and [stable_config] does not use it. *)

val snap_ranges : n:int -> bands:int -> int array -> band array
(** [snap_ranges ~n ~bands cuts] snaps each nominal boundary
    [i·n/bands] to the nearest member of [cuts], deduplicates (possibly
    returning fewer than [bands] bands), and returns extension-free
    bands ([ext = core]). *)

val default_overlap : Instance.t -> int
(** The §4-derived overlap: [⌈(3/4)·bmax⌉ + bmax + 1] where [bmax] is
    the largest slot budget — the MMO concentration bound padded by one
    full cluster width, so a remainder cluster at a band edge sits
    wholly inside the extension. *)

val band_instance : Instance.t -> lo:int -> hi:int -> Instance.t
(** The sub-instance induced by ranks [\[lo, hi)], relabelled to
    [\[0, hi-lo)] with the identity ranking.  Backend-preserving:
    [`Complete] and [`Complete_minus] stay implicit (O(hi-lo) memory);
    [`Dense]/[`Dynamic] keep only intra-band acceptance edges. *)

val stable_config :
  ?jobs:int -> ?bands:int -> ?overlap:int -> ?arena:Greedy.arena -> Instance.t -> Config.t
(** The unique stable configuration, computed by band decomposition.
    [bands] defaults to 1 (plain {!Greedy.stable_config}, byte-identical
    to the unsharded path); [overlap] defaults to
    {!default_overlap}; [jobs] (default 1) are the worker domains the
    band solves fan out over — the result is bit-identical for any
    value.  Peak memory is O(n·b̄): band sub-instances and their local
    configurations are O(Σ band width · b̄) and no n×n structure ever
    exists.  Raises [Invalid_argument] (with the offending value named)
    on [bands < 1], [bands > max 1 n], [overlap < 0] or [jobs < 1].

    [arena] (single-threaded; never shared across domains) reuses the
    scratch buffers of the serial paths — the band-1 greedy build and
    the cut scan; band solves inside worker domains always use fresh
    scratch.  The result is bit-identical with or without it.

    Observability (when {!Stratify_obs.Control} is on): "shard.bands",
    "shard.stitch_conflicts", "shard.fixup_seeded", "shard.fixup_active"
    and "shard.fixup_pops" counters.  When {!Stratify_obs.Profile} is
    on, the phases record as "shard.cluster_cuts", "shard.band_solve",
    "shard.stitch" and "shard.fixup" kernels (band solves also fold into
    "greedy.build" from their worker domains). *)
