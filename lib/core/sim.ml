module Rng = Stratify_prng.Rng
module Series = Stratify_stats.Series
module Obs = Stratify_obs

(* Step-granularity counters (no-ops unless [Obs.Control.enabled]): one
   "sim.steps" per initiative attempt, one "sim.active" per active one —
   together with "initiative.rewires" these are the totals a run
   manifest reports, and they are jobs-invariant because atomic adds
   commute across worker domains. *)
let c_steps = Obs.Counter.make "sim.steps"
let c_active = Obs.Counter.make "sim.active"

type t = {
  instance : Instance.t;
  config : Config.t;
  state : Initiative.state;
  strategy : Initiative.strategy;
  rng : Rng.t;
  sched : Scheduler.t option;  (* [Some] iff the Worklist policy drives stepping *)
  mutable steps : int;
  mutable active : int;
  (* The caller's rewire hook for the current step ([Initiative.no_note]
     when absent) and the preallocated closure forwarded to
     [Initiative.attempt_hook] — built once at [create] so a
     steady-state step allocates neither a closure nor an option. *)
  mutable extern_note : int -> unit;
  mutable self_note : int -> unit;
}

let create ?start ?(strategy = Initiative.Best_mate) ?(scheduler = Scheduler.Random_poll)
    instance rng =
  let config = match start with Some c -> Config.copy c | None -> Config.empty instance in
  let sched =
    match scheduler with
    | Scheduler.Random_poll -> None
    | Scheduler.Worklist ->
        (* Starting from an arbitrary configuration, any peer may have a
           blocking mate: seed them all.  Rewires re-seed incrementally. *)
        let s = Scheduler.create ~n:(Instance.n instance) in
        Scheduler.seed_all s;
        Some s
  in
  let t =
    {
      instance;
      config;
      state = Initiative.create_state instance;
      strategy;
      rng;
      sched;
      steps = 0;
      active = 0;
      extern_note = Initiative.no_note;
      self_note = Initiative.no_note;
    }
  in
  (match sched with
  | None -> t.self_note <- (fun q -> t.extern_note q)
  | Some s ->
      t.self_note <-
        (fun q ->
          Scheduler.push s q;
          t.extern_note q));
  t

let config t = t.config
let steps t = t.steps
let active_count t = t.active

let record t was_active =
  t.steps <- t.steps + 1;
  if was_active then t.active <- t.active + 1;
  Obs.Counter.incr c_steps;
  if was_active then Obs.Counter.incr c_active

(* One scheduling decision, int-coded so the steady-state loop boxes no
   option: [1] active, [0] inactive, [-1] when a Worklist queue is
   empty — which certifies stability (see [Scheduler]), so no attempt is
   made or counted.  [note] is the caller's rewire hook for this step
   (pass [Initiative.no_note] for none); it is stored, not wrapped, so
   the call allocates nothing. *)
let attempt_next_code t ~note =
  t.extern_note <- note;
  match t.sched with
  | None ->
      let p = Rng.int t.rng (Instance.n t.instance) in
      let was_active =
        Initiative.attempt_hook t.config t.state t.strategy t.rng p ~note:t.self_note
      in
      record t was_active;
      if was_active then 1 else 0
  | Some s ->
      let p = Scheduler.pop_int s in
      if p < 0 then -1
      else begin
        let was_active =
          Initiative.attempt_hook t.config t.state t.strategy t.rng p ~note:t.self_note
        in
        if was_active then Scheduler.note_hit ();
        record t was_active;
        if was_active then 1 else 0
      end

let step t = attempt_next_code t ~note:Initiative.no_note = 1

let run_units t units =
  let n = Instance.n t.instance in
  for _ = 1 to units * n do
    ignore (step t)
  done

let disorder_trajectory t ~stable ~units ~samples_per_unit =
  let n = Instance.n t.instance in
  let stride = max 1 (n / samples_per_unit) in
  let total_steps = units * n in
  let points = ref [ (0., Disorder.disorder t.config ~stable) ] in
  let done_steps = ref 0 in
  while !done_steps < total_steps do
    let burst = min stride (total_steps - !done_steps) in
    for _ = 1 to burst do
      ignore (step t)
    done;
    done_steps := !done_steps + burst;
    let x = float_of_int !done_steps /. float_of_int n in
    points := (x, Disorder.disorder t.config ~stable) :: !points
  done;
  Series.make "disorder" (Array.of_list (List.rev !points))

(* Incremental convergence detection.  Checking [Config.equal config
   stable] after every step costs O(n) per step — O(n²·units) per run.
   Instead we keep, per peer, whether its mate list currently matches the
   target, and a count of mismatched peers; each step only re-examines the
   ≤ 4 peers the initiative rewired (via [Initiative.perform]'s
   [on_rewire] hook).  The O(n) [Config.equal] runs only when the fast
   path says "maybe equal" — i.e. at most once, to confirm. *)
module Divergence = struct
  type tracker = {
    target : Config.t;
    matched : bool array;
    mutable mismatches : int;
  }

  let create config target =
    let n = Instance.n (Config.instance target) in
    let matched = Array.init n (fun p -> Config.same_mates config target p) in
    let mismatches = Array.fold_left (fun acc m -> if m then acc else acc + 1) 0 matched in
    { target; matched; mismatches }

  let touch tr config p =
    (* [same_mates] compares the flat mate segments directly — no list
       materialization or polymorphic compare per rewired peer. *)
    let now = Config.same_mates config tr.target p in
    if now <> tr.matched.(p) then begin
      tr.matched.(p) <- now;
      tr.mismatches <- tr.mismatches + (if now then -1 else 1)
    end

  (* Fast path: any mismatched peer or a differing edge count rules
     equality out in O(1); otherwise confirm with the full scan. *)
  let maybe_equal tr config =
    tr.mismatches = 0
    && Config.edge_count config = Config.edge_count tr.target
    && Config.equal config tr.target
end

let run_until_stable t ~stable ~max_units =
  let n = Instance.n t.instance in
  let limit = max_units * n in
  let start_steps = t.steps in
  let tr = Divergence.create t.config stable in
  (* One closure for the whole run — each step stores it, never re-wraps. *)
  let note p = Divergence.touch tr t.config p in
  let rec go () =
    if Divergence.maybe_equal tr t.config then Some (t.steps - start_steps)
    else if t.steps - start_steps >= limit then None
    else if attempt_next_code t ~note >= 0 then go ()
    else
      (* Worklist drained: the configuration is stable.  It equals
         [stable] iff the caller's target really is the (unique)
         stable configuration — re-check rather than assume. *)
      if Divergence.maybe_equal tr t.config then Some (t.steps - start_steps)
      else None
  in
  go ()

let count_active_to_stability ?scheduler instance ~strategy rng ~max_steps =
  let t = create ?scheduler ~strategy instance rng in
  let stable = Greedy.stable_config instance in
  let tr = Divergence.create t.config stable in
  let note p = Divergence.touch tr t.config p in
  let rec go () =
    if Divergence.maybe_equal tr t.config then Some t.active
    else if t.steps >= max_steps then None
    else if attempt_next_code t ~note >= 0 then go ()
    else if Divergence.maybe_equal tr t.config then Some t.active
    else None
  in
  go ()

let optimal_schedule instance =
  let pairs = ref [] in
  Config.iter_pairs (fun p q -> pairs := (p, q) :: !pairs) (Greedy.stable_config instance);
  (* Algorithm 1 creates connections best-peer-first; iter_pairs yields
     them sorted by (p, q), which is exactly that order. *)
  List.rev !pairs

let replay_schedule instance schedule =
  let config = Config.empty instance in
  List.iter (fun (p, q) -> Initiative.perform config p q) schedule;
  config
