module Rng = Stratify_prng.Rng
module Obs = Stratify_obs

(* Worklist accounting (no-ops unless [Obs.Control.enabled]):
   "sched.pushes" counts peers entering the dirty set (deduplicated),
   "sched.pops" peers leaving it to attempt an initiative, "sched.hits"
   the pops whose initiative was active.  Together with "sim.steps" /
   "greedy.stable_config" these are what run manifests use to prove a
   churn run repaired incrementally instead of rebuilding. *)
let c_pushes = Obs.Counter.make "sched.pushes"
let c_pops = Obs.Counter.make "sched.pops"
let c_hits = Obs.Counter.make "sched.hits"

type policy = Random_poll | Worklist

let policy_name = function Random_poll -> "random" | Worklist -> "worklist"

let policy_of_string = function
  | "random" -> Some Random_poll
  | "worklist" -> Some Worklist
  | _ -> None

(* Rank-ordered dirty set: a word-packed bitset of queued peers plus a
   cursor below which no peer is queued.  [pop] returns the
   lowest-labelled dirty peer — under the identity ranking that is the
   best-ranked one, which makes the drain replay Theorem 1's
   constructive schedule (Algorithm 1's connection order): strata fill
   top-down, so almost no initiative is later undone, and the active
   count stays near the B/2 bound.  A FIFO drain converges too (any
   active order does) but measurably thrashes — on complete graphs its
   breadth-first cascade re-displaces every stratum O(n/b) times,
   ~n²/3 active initiatives at n=10⁴ against rank order's ~n·b/2.

   Membership test and dedup are one bit probe; push is O(1); pop scans
   forward from the cursor, 62 peers per word, and the cursor only
   rewinds on a push below it — drains dominated by cascade-local
   pushes stay effectively O(1) per operation. *)

let bits_per_word = 62

type t = {
  words : int array;  (* bit [p mod 62] of word [p / 62]: peer queued *)
  n : int;
  mutable count : int;
  mutable cursor : int;  (* no queued peer has label < cursor *)
}

let create ~n =
  if n < 0 then invalid_arg "Scheduler.create: negative size";
  let nw = (max 1 n + bits_per_word - 1) / bits_per_word in
  { words = Array.make nw 0; n; count = 0; cursor = 0 }

let length t = t.count
let is_empty t = t.count = 0

let mem t p = (t.words.(p / bits_per_word) lsr (p mod bits_per_word)) land 1 = 1

let push t p =
  if p < 0 || p >= t.n then invalid_arg "Scheduler.push: peer out of range";
  let w = p / bits_per_word and m = 1 lsl (p mod bits_per_word) in
  if t.words.(w) land m = 0 then begin
    t.words.(w) <- t.words.(w) lor m;
    t.count <- t.count + 1;
    if p < t.cursor then t.cursor <- p;
    Obs.Counter.incr c_pushes
  end

(* Index of the lowest set bit of a non-zero word, by binary descent on
   the isolated bit. *)
let lowest_bit_index w =
  let w = ref (w land -w) and i = ref 0 in
  if !w land 0xFFFFFFFF = 0 then begin i := !i + 32; w := !w lsr 32 end;
  if !w land 0xFFFF = 0 then begin i := !i + 16; w := !w lsr 16 end;
  if !w land 0xFF = 0 then begin i := !i + 8; w := !w lsr 8 end;
  if !w land 0xF = 0 then begin i := !i + 4; w := !w lsr 4 end;
  if !w land 0x3 = 0 then begin i := !i + 2; w := !w lsr 2 end;
  if !w land 0x1 = 0 then incr i;
  !i

(* Option-free pop: [-1] when the set is empty.  [pop] boxes the result
   for option-shaped callers; the drain below and [Sim]'s worklist step
   use this directly so a steady-state pop allocates nothing. *)
let pop_int t =
  if t.count = 0 then -1
  else begin
    (* count > 0 and the cursor invariant imply a set bit at >= cursor,
       so the scan stays in bounds. *)
    let w = ref (t.cursor / bits_per_word) in
    let masked = t.words.(!w) land (-1 lsl (t.cursor mod bits_per_word)) in
    let word = ref masked in
    while !word = 0 do
      incr w;
      word := t.words.(!w)
    done;
    let b = lowest_bit_index !word in
    let p = (!w * bits_per_word) + b in
    t.words.(!w) <- t.words.(!w) land lnot (1 lsl b);
    t.count <- t.count - 1;
    t.cursor <- p + 1;
    Obs.Counter.incr c_pops;
    p
  end

let pop t =
  let p = pop_int t in
  if p < 0 then None else Some p

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0;
  t.cursor <- 0

let seed_all t =
  clear t;
  for p = 0 to t.n - 1 do
    let w = p / bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl (p mod bits_per_word))
  done;
  t.count <- t.n;
  Obs.Counter.add c_pushes t.n

(* Drain to quiescence.  The activation invariant (DESIGN.md §9): every
   blocking pair keeps at least one endpoint in the dirty set, because a
   pair's blocking status depends only on its endpoints' mate lists and
   [Initiative.perform] reports every peer whose list changed through
   [on_rewire] — so each state change re-queues exactly the peers whose
   pairs it may newly activate.  A popped peer leaves only after
   [find_mate] returned [None], i.e. no pair involving it blocks, so an
   empty set certifies stability.  Termination is Theorem 1: every
   performed initiative is active, and active sequences are finite. *)
let drain ?on_rewire t config state strategy rng =
  (* One closure per drain call, shared by every pop — the per-initiative
     path below is option-free and allocates nothing. *)
  let note =
    match on_rewire with
    | None -> fun p -> push t p
    | Some f ->
        fun p ->
          push t p;
          f p
  in
  let actives = ref 0 and pops = ref 0 in
  let rec go () =
    let p = pop_int t in
    if p >= 0 then begin
      incr pops;
      if Initiative.attempt_hook config state strategy rng p ~note then begin
        incr actives;
        Obs.Counter.incr c_hits
      end;
      go ()
    end
  in
  go ();
  (!actives, !pops)

let note_hit () = Obs.Counter.incr c_hits
