let would_accept c p q =
  if Config.free_slots c p > 0 then Instance.slots (Config.instance c) p > 0
  else
    match Config.worst_mate c p with
    | None -> false (* b(p) = 0: no slot will ever open *)
    | Some w -> q < w

let is_blocking c p q =
  p <> q
  && (not (Config.mated c p q))
  && Instance.accepts (Config.instance c) p q
  && would_accept c p q
  && would_accept c q p

let best_blocking_mate c p =
  let inst = Config.instance c in
  if Instance.slots inst p = 0 then None
  else begin
    let row = Instance.acceptable inst p in
    let len = Array.length row in
    (* The acceptance list is best-first; the first q that blocks is the
       best blocking mate.  Once q is worse than p's worst mate and p is
       full, no later q can block — stop early. *)
    let rec scan i =
      if i >= len then None
      else begin
        let q = row.(i) in
        if not (would_accept c p q) then None
        else if (not (Config.mated c p q)) && would_accept c q p then Some q
        else scan (i + 1)
      end
    in
    scan 0
  end

let blocking_mate_from c p ~start =
  let inst = Config.instance c in
  let row = Instance.acceptable inst p in
  let len = Array.length row in
  if len = 0 then None
  else begin
    let start = ((start mod len) + len) mod len in
    let rec scan step =
      if step >= len then None
      else begin
        let i = (start + step) mod len in
        let q = row.(i) in
        if is_blocking c p q then Some (q, (i + 1) mod len) else scan (step + 1)
      end
    in
    scan 0
  end

let blocking_pairs c =
  let inst = Config.instance c in
  let out = ref [] in
  for p = Instance.n inst - 1 downto 0 do
    Array.iter
      (fun q -> if p < q && is_blocking c p q then out := (p, q) :: !out)
      (Instance.acceptable inst p)
  done;
  !out

let first_blocking_pair c =
  let inst = Config.instance c in
  let n = Instance.n inst in
  let rec loop p =
    if p >= n then None
    else
      match best_blocking_mate c p with
      | Some q -> Some (min p q, max p q)
      | None -> loop (p + 1)
  in
  loop 0

let is_stable c = first_blocking_pair c = None
