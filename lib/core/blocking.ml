(* [Config.raw_thresh] encodes the whole acceptance predicate in one
   word per peer: q < thresh.(p) ⟺ p would accept q (free slot ⇒
   max_int, full ⇒ worst mate's rank, full-and-unmated ⇒ -1).  All
   kernels below are single-load forms of the PR 3 fused scans. *)

let would_accept c p q = q < (Config.raw_thresh c).(p)

(* Conjuncts ordered cheapest-first (two thresh loads, then the masked
   matedness probe, then the acceptance test); all are pure, so the
   order only affects speed. *)
let is_blocking c p q =
  p <> q
  && would_accept c p q
  && would_accept c q p
  && (not (Config.mated c p q))
  && Instance.accepts (Config.instance c) p q

(* [best_blocking_mate] is the dynamics' hot loop: near stability every
   Sim/Async step scans O(n) candidates and finds nothing, so the probe
   below runs hundreds of millions of times per experiment.  Rather than
   paying half a dozen cross-module accessor calls per probe (this build
   has no cross-module inlining), the kernels specialise per backend and
   read the flat arrays directly:

   - the scanning peer's acceptance threshold ([limit]) is one [thresh]
     load, fixed for the whole scan and hoisted — it also subsumes the
     b(p) = 0 early exit (thresh = -1 ⇒ empty scan range);
   - rows and mate segments are both increasing, so the "already mates"
     test is a moving cursor over [p]'s segment — O(b) for the whole
     scan instead of O(b) per probe; on the complete backend the whole
     sweep is one [Config.first_accepting] max-segment-tree descent —
     O(log n) per all-reject scan instead of O(n);
   - the accepts-back probe is a single [thresh] load.

   The scan order, early stop and result are identical to the generic
   expression [if not (would_accept c p q) then None else if not mated
   && would_accept c q p then Some q else next] probed best-first —
   [test_blocking] pins the equivalence on random instances.

   [Array.unsafe_get] is in range by construction: every probed q lies
   in [0, n) (backend invariant), the cursor stays ≤ deg.(p), and
   deg.(q) ≤ off.(q+1) - off.(q) keeps each data index below
   [Array.length data].  Returns [-1] when no blocking mate exists —
   the option-free form the steady-state loop allocates nothing on.

   The scan kernels live at module level with all state passed as
   arguments: a [let rec] inside the entry point would capture its
   environment in a heap-allocated closure on {e every call} (this
   build has no flambda to eliminate it), which is exactly the
   steady-state allocation the zero-alloc gate in bench forbids.
   The [int array] annotations are load-bearing: without them the
   kernels generalize over the element type and every comparison
   compiles to the generic [caml_lessthan] C call (and every array
   read to the float-checking generic path) — a silent 5x slowdown
   the closure form never exhibited because captures arrive typed. *)

(* Advance p's mate cursor past every mate ranked below q. *)
let rec mate_fwd (data : int array) base_p dp (q : int) mi =
  if mi < dp && Array.unsafe_get data (base_p + mi) < q then mate_fwd data base_p dp q (mi + 1)
  else mi

(* Kernel for materialized rows: row.(i..hi-1) is the acceptance list
   of p, increasing, possibly still containing [skip] = p itself
   (Complete_minus's [alive]).  [mi] is the mate cursor. *)
let rec scan_row (thresh : int array) (data : int array) base_p dp (p : int) (limit : int)
    (row : int array) i hi (skip : int) mi =
  if i >= hi then -1
  else begin
    let q = Array.unsafe_get row i in
    if q = skip then scan_row thresh data base_p dp p limit row (i + 1) hi skip mi
    else if q >= limit then -1
    else begin
      let mi = mate_fwd data base_p dp q mi in
      if mi < dp && Array.unsafe_get data (base_p + mi) = q then
        scan_row thresh data base_p dp p limit row (i + 1) hi skip (mi + 1)
      else if p < Array.unsafe_get thresh q then q
      else scan_row thresh data base_p dp p limit row (i + 1) hi skip mi
    end
  end

(* Complete backend: the row is 0,1,2,… minus p — pure arithmetic — and
   every candidate probe is the accepts-back test [p < thresh.(q)], so
   the whole scan collapses to "leftmost q < hi whose thresh exceeds p":
   exactly [Config.first_accepting]'s max-segment-tree descent.  Near
   stability nobody accepts back and the query answers -1 in O(log n)
   where the linear sweep paid O(n); the rare hits that land on p
   itself or an existing mate (both skipped by the generic scan's
   order) re-query from q + 1 — at most b(p) + 1 extra descents. *)
let rec complete_next c (p : int) hi cur =
  let q = Config.first_accepting c ~lo:cur ~hi p in
  if q < 0 then -1
  else if q = p || Config.mated c p q then complete_next c p hi (q + 1)
  else q

let best_blocking_mate_int c p =
  let inst = Config.instance c in
  let off = Config.raw_off c in
  let data = Config.raw_data c in
  let deg = Config.raw_deg c in
  let thresh = Config.raw_thresh c in
  let base_p = Array.unsafe_get off p in
  let dp = Array.unsafe_get deg p in
  let limit = Array.unsafe_get thresh p in
  match Instance.raw_backend inst with
  | Instance.Raw_complete ->
      let n = Instance.n inst in
      let hi = if limit < n then limit else n in
      complete_next c p hi 0
  | Instance.Raw_dense { off = goff; data = gdata } ->
      scan_row thresh data base_p dp p limit gdata goff.(p) goff.(p + 1) (-1) 0
  | Instance.Raw_complete_minus { alive; pos } ->
      if pos.(p) < 0 then -1
      else scan_row thresh data base_p dp p limit alive 0 (Array.length alive) p 0
  | Instance.Raw_dynamic { rows; len } ->
      scan_row thresh data base_p dp p limit rows.(p) 0 len.(p) (-1) 0

let best_blocking_mate c p =
  let q = best_blocking_mate_int c p in
  if q < 0 then None else Some q

(* Circular decremental scan with the cursor state threaded as a flat
   array: reads [cursors.(p)] as the start position and, only on a hit,
   stores the follow-up position back — exactly [blocking_mate_from]'s
   contract, without boxing a tuple option per probe.  Static for the
   same reason as the kernels above: a per-call closure would put the
   decremental steady state back on the allocator. *)
let rec cursor_scan c inst cursors p len start step =
  if step >= len then -1
  else begin
    let i = (start + step) mod len in
    let q = Instance.acceptable_at inst p i in
    if is_blocking c p q then begin
      cursors.(p) <- (i + 1) mod len;
      q
    end
    else cursor_scan c inst cursors p len start (step + 1)
  end

let blocking_mate_cursor c p cursors =
  let inst = Config.instance c in
  let len = Instance.degree inst p in
  if len = 0 then -1
  else begin
    let start =
      let s = cursors.(p) mod len in
      if s < 0 then s + len else s
    in
    cursor_scan c inst cursors p len start 0
  end

let blocking_mate_from c p ~start =
  let inst = Config.instance c in
  let len = Instance.degree inst p in
  if len = 0 then None
  else begin
    let start = ((start mod len) + len) mod len in
    let rec scan step =
      if step >= len then None
      else begin
        let i = (start + step) mod len in
        let q = Instance.acceptable_at inst p i in
        if is_blocking c p q then Some (q, (i + 1) mod len) else scan (step + 1)
      end
    in
    scan 0
  end

let blocking_pairs c =
  let inst = Config.instance c in
  let out = ref [] in
  for p = Instance.n inst - 1 downto 0 do
    Instance.iter_acceptable inst p (fun q ->
        if p < q && is_blocking c p q then out := (p, q) :: !out)
  done;
  !out

let first_blocking_pair c =
  let inst = Config.instance c in
  let n = Instance.n inst in
  let rec loop p =
    if p >= n then None
    else
      let q = best_blocking_mate_int c p in
      if q >= 0 then Some (min p q, max p q) else loop (p + 1)
  in
  loop 0

let is_stable c = match first_blocking_pair c with None -> true | Some _ -> false
