let would_accept c p q =
  if Config.free_slots c p > 0 then Instance.slots (Config.instance c) p > 0
  else begin
    (* [worst_rank] is -1 when unmated; a full unmated peer has b(p) = 0
       and no slot will ever open. *)
    let w = Config.worst_rank c p in
    w >= 0 && q < w
  end

let is_blocking c p q =
  p <> q
  && (not (Config.mated c p q))
  && Instance.accepts (Config.instance c) p q
  && would_accept c p q
  && would_accept c q p

(* [best_blocking_mate] is the dynamics' hot loop: near stability every
   Sim/Async step scans O(n) candidates and finds nothing, so the probe
   below runs hundreds of millions of times per experiment.  Rather than
   paying half a dozen cross-module accessor calls per probe (this build
   has no cross-module inlining), the kernels specialise per backend and
   read the flat arrays directly:

   - the scanning peer's acceptance threshold ([limit] — free slot, or
     its worst mate's rank) is fixed for the whole scan and hoisted;
   - rows and mate segments are both increasing, so the "already mates"
     test is a moving cursor over [p]'s segment — O(b) for the whole
     scan instead of O(b) per probe;
   - [accepts_back] is [would_accept] inlined on the raw arrays.

   The scan order, early stop and result are identical to the generic
   expression [if not (would_accept c p q) then None else if not mated
   && would_accept c q p then Some q else next] probed best-first —
   [test_blocking] pins the equivalence on random instances.

   [Array.unsafe_get] is in range by construction: every probed q lies
   in [0, n) (backend invariant), the cursor stays ≤ deg.(p), and
   deg.(q) ≤ off.(q+1) - off.(q) keeps each data index below
   [Array.length data]. *)
let best_blocking_mate c p =
  let inst = Config.instance c in
  let bs = Instance.raw_slots inst in
  if bs.(p) = 0 then None
  else begin
    let off = Config.raw_off c in
    let data = Config.raw_data c in
    let deg = Config.raw_deg c in
    let base_p = Array.unsafe_get off p in
    let dp = Array.unsafe_get deg p in
    let limit =
      if dp < Array.unsafe_get bs p then max_int
      else Array.unsafe_get data (base_p + dp - 1)
    in
    (* Would q accept p: a free slot, or p beats q's worst mate. *)
    let[@inline] accepts_back q =
      let dq = Array.unsafe_get deg q in
      dq < Array.unsafe_get bs q
      || (dq > 0 && p < Array.unsafe_get data (Array.unsafe_get off q + dq - 1))
    in
    (* Kernel for materialized rows: row.(lo..hi-1) is the acceptance
       list of p, increasing, possibly still containing [skip] = p
       itself (Complete_minus's [alive]).  [mi] is the mate cursor. *)
    let rec scan_row row i hi skip mi =
      if i >= hi then None
      else begin
        let q = Array.unsafe_get row i in
        if q = skip then scan_row row (i + 1) hi skip mi
        else if q >= limit then None
        else begin
          let rec fwd mi =
            if mi < dp && Array.unsafe_get data (base_p + mi) < q then fwd (mi + 1) else mi
          in
          let mi = fwd mi in
          if mi < dp && Array.unsafe_get data (base_p + mi) = q then
            scan_row row (i + 1) hi skip (mi + 1)
          else if accepts_back q then Some q
          else scan_row row (i + 1) hi skip mi
        end
      end
    in
    match Instance.raw_backend inst with
    | Instance.Raw_complete ->
        (* The row is 0,1,2,… minus p — pure arithmetic.  q ascends one
           by one, so the mate cursor only ever needs the equality
           test. *)
        let n = Instance.n inst in
        let hi = if limit < n then limit else n in
        let rec scan q mi =
          if q >= hi then None
          else if q = p then scan (q + 1) mi
          else if mi < dp && Array.unsafe_get data (base_p + mi) = q then scan (q + 1) (mi + 1)
          else if accepts_back q then Some q
          else scan (q + 1) mi
        in
        scan 0 0
    | Instance.Raw_dense { off = goff; data = gdata } -> scan_row gdata goff.(p) goff.(p + 1) (-1) 0
    | Instance.Raw_complete_minus { alive; pos } ->
        if pos.(p) < 0 then None else scan_row alive 0 (Array.length alive) p 0
    | Instance.Raw_dynamic { rows; len } -> scan_row rows.(p) 0 len.(p) (-1) 0
  end

let blocking_mate_from c p ~start =
  let inst = Config.instance c in
  let len = Instance.degree inst p in
  if len = 0 then None
  else begin
    let start = ((start mod len) + len) mod len in
    let rec scan step =
      if step >= len then None
      else begin
        let i = (start + step) mod len in
        let q = Instance.acceptable_at inst p i in
        if is_blocking c p q then Some (q, (i + 1) mod len) else scan (step + 1)
      end
    in
    scan 0
  end

let blocking_pairs c =
  let inst = Config.instance c in
  let out = ref [] in
  for p = Instance.n inst - 1 downto 0 do
    Instance.iter_acceptable inst p (fun q ->
        if p < q && is_blocking c p q then out := (p, q) :: !out)
  done;
  !out

let first_blocking_pair c =
  let inst = Config.instance c in
  let n = Instance.n inst in
  let rec loop p =
    if p >= n then None
    else
      match best_blocking_mate c p with
      | Some q -> Some (min p q, max p q)
      | None -> loop (p + 1)
  in
  loop 0

let is_stable c = match first_blocking_pair c with None -> true | Some _ -> false
