(** The fluid limit of the independent model (§5.2, Conjecture 1).

    With [p = d/n] and [n → ∞], the rank offset [β = (j − i)/n] of a
    peer's mate has an absolutely continuous limit law; for the best peer
    ([α = 0]) the paper derives the density [M₀,d(β) = d·e^{−βd}]. *)

val density : d:float -> float -> float
(** [density ~d beta = d·exp(−beta·d)] for [beta ≥ 0], 0 below. *)

val cdf : d:float -> float -> float
(** [1 − exp(−beta·d)]. *)

val mean_offset : d:float -> float
(** [1/d] — the expected scaled rank offset of the best peer's mate. *)

val scaled_best_peer_series : n:int -> d:float -> Stratify_stats.Series.t
(** The finite-[n] analogue from Algorithm 2: points
    [(β, n·D(0, ⌊βn⌋))] for the best peer, to be compared against
    {!density} (they converge as [n] grows). *)

val max_gap_to_limit : n:int -> d:float -> float
(** [sup_β |n·D(0, βn) − d·e^{−βd}|] over the sampled points — the
    convergence diagnostic used in tests. *)

val offset_series : n:int -> d:float -> alpha:float -> Stratify_stats.Series.t
(** Mate-offset distribution of the peer at relative rank [alpha]:
    points [((j − i)/n, n·D(i, j))] with [i = ⌊alpha·(n−1)⌋] — the
    finite-[n] version of Conjecture 1's [M(alpha, d)]. *)

val shift_invariance_gap : n:int -> d:float -> alpha1:float -> alpha2:float -> float
(** Mean absolute difference between the offset distributions at two
    relative ranks (§5.3's "the distribution simply shifts with the rank
    of the peer": small for mid-range alphas — stratification is a pure
    translation there). *)
