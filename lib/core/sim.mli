(** Round-based initiative simulation (§3's convergence experiments).

    Each step picks a uniformly random peer which attempts one initiative.
    [n] consecutive steps form one {e base unit} ("one expected initiative
    per peer"), the time axis of Figs 1–3.

    When {!Stratify_obs.Control.enabled} is on, every step bumps the
    "sim.steps" counter and every active step "sim.active" (and, through
    {!Initiative.perform}, "initiative.performed"/"initiative.rewires"),
    so run manifests can check Theorem 1's counted-initiative bound
    against what actually happened; with the switch off the probes cost
    one boolean load per step. *)

type t

val create :
  ?start:Config.t ->
  ?strategy:Initiative.strategy ->
  ?scheduler:Scheduler.policy ->
  Instance.t ->
  Stratify_prng.Rng.t ->
  t
(** Defaults: start from the empty configuration with the best-mate
    strategy under {!Scheduler.Random_poll} (the paper's setting).
    Under [~scheduler:Worklist] every peer starts queued and each
    {!step} pops the dirty queue instead of drawing a random peer; by
    Theorem 1 the reached fixed point is the same. *)

val config : t -> Config.t
val steps : t -> int
(** Initiatives attempted so far (active or not). *)

val active_count : t -> int
(** Active initiatives so far. *)

val step : t -> bool
(** One initiative — by a uniformly random peer under [Random_poll], by
    the next dirty peer under [Worklist]; [true] when active.  A
    [Worklist] step with an empty queue is a no-op returning [false]
    (the configuration is already stable) and counts no step. *)

val run_units : t -> int -> unit
(** Advance by whole base units ([n] steps each). *)

val disorder_trajectory :
  t -> stable:Config.t -> units:int -> samples_per_unit:int -> Stratify_stats.Series.t
(** Advance [units] base units, recording the disorder after every
    [n/samples_per_unit] steps.  The series' x-axis is in base units and
    includes the initial point at x=0. *)

val run_until_stable : t -> stable:Config.t -> max_units:int -> int option
(** Advance until the configuration equals [stable]; returns the number of
    steps taken, or [None] if [max_units] base units elapse first.
    Equality is detected incrementally (a per-peer divergence counter
    updated through [Initiative.perform]'s rewire hook), so each step
    costs O(1) amortised instead of an O(n) configuration scan; the step
    count returned is identical to checking [Config.equal] every step.
    Under [Worklist] the run also ends when the queue drains (stability
    certified without sampling): the result is the number of pops. *)

val count_active_to_stability :
  ?scheduler:Scheduler.policy ->
  Instance.t ->
  strategy:Initiative.strategy ->
  Stratify_prng.Rng.t ->
  max_steps:int ->
  int option
(** From the empty configuration, the number of {e active} initiatives
    performed before reaching the stable configuration (Theorem 1 says this
    is finite on every active sequence, and [B/2] is achievable). *)

val optimal_schedule : Instance.t -> (int * int) list
(** Theorem 1's constructive half: an explicit sequence of initiatives —
    each one active when played in order from the empty configuration —
    that reaches the stable configuration in exactly its number of
    collaborations (≤ B/2).  It is Algorithm 1's connection order. *)

val replay_schedule : Instance.t -> (int * int) list -> Config.t
(** Execute a schedule with {!Initiative.perform} from the empty
    configuration (raises if some step does not block — i.e. if the
    schedule is not made of active initiatives). *)
