module Rng = Stratify_prng.Rng

type t = {
  prefs : int array array;  (* acceptance lists, most-preferred first *)
  position : (int, int) Hashtbl.t array;  (* position.(p) : q -> index in prefs.(p) *)
  b : int array;
}

let build prefs b =
  let n = Array.length prefs in
  if Array.length b <> n then invalid_arg "General_matching: |b| mismatch";
  Array.iter (fun k -> if k < 0 then invalid_arg "General_matching: negative budget") b;
  let position =
    Array.map
      (fun row ->
        let h = Hashtbl.create (2 * Array.length row) in
        Array.iteri (fun i q -> Hashtbl.replace h q i) row;
        h)
      prefs
  in
  (* Acceptance must be symmetric. *)
  Array.iteri
    (fun p row ->
      Array.iter
        (fun q ->
          if q < 0 || q >= n || q = p then invalid_arg "General_matching: bad acceptance entry";
          if not (Hashtbl.mem position.(q) p) then
            invalid_arg "General_matching: acceptance is not symmetric")
        row)
    prefs;
  { prefs; position; b }

let create ~utility ~acceptance ~b =
  build (Utility.preference_lists utility ~acceptance) b

let of_instance inst =
  let n = Instance.n inst in
  let acceptance = Array.init n (Instance.acceptable inst) in
  let b = Array.init n (Instance.slots inst) in
  (* Rank labels are already preference-ordered (best first). *)
  build acceptance b

let n t = Array.length t.prefs
let slots t p = t.b.(p)
let preference_list t p = Array.copy t.prefs.(p)

let rank_of t p q =
  match Hashtbl.find_opt t.position.(p) q with
  | Some i -> i
  | None -> invalid_arg "General_matching: unacceptable peer"

let accepts t p q = Hashtbl.mem t.position.(p) q
let prefers t p a b = rank_of t p a < rank_of t p b

module State = struct
  type state = { inst : t; mates : int list array; mutable edges : int }

  let empty inst = { inst; mates = Array.make (Array.length inst.prefs) []; edges = 0 }
  let mates s p = s.mates.(p)
  let degree s p = List.length s.mates.(p)
  let mated s p q = List.mem q s.mates.(p)

  let worst_mate s p =
    match s.mates.(p) with [] -> None | l -> Some (List.nth l (List.length l - 1))

  let insert_by_pref inst p q l =
    let pos = rank_of inst p q in
    let rec go = function
      | [] -> [ q ]
      | x :: rest as all -> if pos < rank_of inst p x then q :: all else x :: go rest
    in
    go l

  let connect s p q =
    if p = q || not (accepts s.inst p q) then invalid_arg "General_matching.connect: unacceptable";
    if mated s p q then invalid_arg "General_matching.connect: already mates";
    if degree s p >= s.inst.b.(p) || degree s q >= s.inst.b.(q) then
      invalid_arg "General_matching.connect: no free slot";
    s.mates.(p) <- insert_by_pref s.inst p q s.mates.(p);
    s.mates.(q) <- insert_by_pref s.inst q p s.mates.(q);
    s.edges <- s.edges + 1

  let disconnect s p q =
    if not (mated s p q) then invalid_arg "General_matching.disconnect: not mates";
    s.mates.(p) <- List.filter (fun x -> x <> q) s.mates.(p);
    s.mates.(q) <- List.filter (fun x -> x <> p) s.mates.(q);
    s.edges <- s.edges - 1

  let edge_count s = s.edges

  let signature s =
    let buf = Buffer.create (16 * s.edges) in
    Array.iteri
      (fun p l ->
        List.iter
          (fun q ->
            if p < q then begin
              Buffer.add_string buf (string_of_int p);
              Buffer.add_char buf ':';
              Buffer.add_string buf (string_of_int q);
              Buffer.add_char buf ';'
            end)
          l)
      s.mates;
    Buffer.contents buf

  let copy s = { inst = s.inst; mates = Array.copy s.mates; edges = s.edges }
end

let would_accept t (s : State.state) p q =
  if State.degree s p < t.b.(p) then t.b.(p) > 0
  else
    match State.worst_mate s p with None -> false | Some w -> prefers t p q w

let is_blocking t s p q =
  p <> q
  && accepts t p q
  && (not (State.mated s p q))
  && would_accept t s p q
  && would_accept t s q p

let blocking_pairs t s =
  let out = ref [] in
  for p = n t - 1 downto 0 do
    Array.iter (fun q -> if p < q && is_blocking t s p q then out := (p, q) :: !out) t.prefs.(p)
  done;
  !out

let best_blocking_mate t s p =
  if t.b.(p) = 0 then None
  else begin
    let row = t.prefs.(p) in
    let len = Array.length row in
    let full = State.degree s p >= t.b.(p) in
    let worst = State.worst_mate s p in
    let rec scan i =
      if i >= len then None
      else begin
        let q = row.(i) in
        (* Once candidates are no better than p's worst mate and p is
           full, nothing later can block. *)
        if full && (match worst with Some w -> not (prefers t p q w) | None -> true) then None
        else if (not (State.mated s p q)) && would_accept t s q p then Some q
        else scan (i + 1)
      end
    in
    scan 0
  end

let is_stable t s =
  let rec go p = p >= n t || (best_blocking_mate t s p = None && go (p + 1)) in
  go 0

let satisfy t s p q =
  if not (is_blocking t s p q) then invalid_arg "General_matching.satisfy: pair does not block";
  if State.degree s p >= t.b.(p) then
    (match State.worst_mate s p with Some w -> State.disconnect s p w | None -> ());
  if State.degree s q >= t.b.(q) then
    (match State.worst_mate s q with Some w -> State.disconnect s q w | None -> ());
  State.connect s p q

type run = Converged of { steps : int } | Cycled of { period_found_at : int }

let best_response_run t ?(max_steps = 100_000) rng =
  let s = State.empty t in
  let seen = Hashtbl.create 256 in
  Hashtbl.replace seen (State.signature s) ();
  let rec go steps =
    if is_stable t s then Converged { steps }
    else if steps >= max_steps then Cycled { period_found_at = max_steps }
    else begin
      let p = Rng.int rng (n t) in
      match best_blocking_mate t s p with
      | None -> go (steps + 1)
      | Some q ->
          satisfy t s p q;
          let sg = State.signature s in
          if Hashtbl.mem seen sg then Cycled { period_found_at = steps + 1 }
          else begin
            Hashtbl.replace seen sg ();
            go (steps + 1)
          end
    end
  in
  go 0

let exists_stable t =
  let edges = ref [] in
  for p = n t - 1 downto 0 do
    Array.iter (fun q -> if p < q then edges := (p, q) :: !edges) t.prefs.(p)
  done;
  let edges = Array.of_list !edges in
  let m = Array.length edges in
  let s = State.empty t in
  let found = ref false in
  let rec go i =
    if not !found then
      if i >= m then begin
        if is_stable t s then found := true
      end
      else begin
        let p, q = edges.(i) in
        go (i + 1);
        if (not !found) && State.degree s p < t.b.(p) && State.degree s q < t.b.(q) then begin
          State.connect s p q;
          go (i + 1);
          State.disconnect s p q
        end
      end
  in
  go 0;
  !found
