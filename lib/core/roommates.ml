type outcome = Stable of int array | No_stable

(* Working state: each person's preference list with lazy deletion.  The
   invariant maintained after phase 1 and restored after every rotation
   elimination is the classic one: [q] is first on [p]'s list iff [p] is
   last on [q]'s list. *)
type state = {
  pref : int array array;
  rank : int array array;  (* rank.(p).(q) = position of q in pref.(p), -1 if unacceptable *)
  active : bool array array;  (* active.(p).(i) — entry i of pref.(p) still alive *)
  len : int array;
  lo : int array;  (* lower cursor for first-entry scans *)
  hi : int array;  (* upper cursor for last-entry scans *)
}

let make_state t =
  let n = Tan.size t in
  let pref = Array.init n (Tan.preference_list t) in
  let rank =
    Array.init n (fun p ->
        let row = Array.make n (-1) in
        Array.iteri (fun i q -> row.(q) <- i) pref.(p);
        row)
  in
  {
    pref;
    rank;
    active = Array.map (fun row -> Array.make (Array.length row) true) pref;
    len = Array.map Array.length pref;
    lo = Array.make n 0;
    hi = Array.map (fun row -> Array.length row - 1) pref;
  }

let first st p =
  let row = st.pref.(p) and alive = st.active.(p) in
  let i = ref st.lo.(p) in
  while !i < Array.length row && not alive.(!i) do
    incr i
  done;
  st.lo.(p) <- !i;
  if !i >= Array.length row then None else Some row.(!i)

let second st p =
  let row = st.pref.(p) and alive = st.active.(p) in
  match first st p with
  | None -> None
  | Some _ ->
      let i = ref (st.lo.(p) + 1) in
      while !i < Array.length row && not alive.(!i) do
        incr i
      done;
      if !i >= Array.length row then None else Some row.(!i)

let last st p =
  let row = st.pref.(p) and alive = st.active.(p) in
  let i = ref st.hi.(p) in
  while !i >= 0 && not alive.(!i) do
    decr i
  done;
  st.hi.(p) <- !i;
  if !i < 0 then None else Some row.(!i)

(* Remove the mutual acceptability of p and q (both directions). *)
let delete_pair st p q =
  let ip = st.rank.(p).(q) in
  if ip >= 0 && st.active.(p).(ip) then begin
    st.active.(p).(ip) <- false;
    st.len.(p) <- st.len.(p) - 1
  end;
  let iq = st.rank.(q).(p) in
  if iq >= 0 && st.active.(q).(iq) then begin
    st.active.(q).(iq) <- false;
    st.len.(q) <- st.len.(q) - 1
  end

(* Delete from q's list every active entry strictly worse than p. *)
let truncate_after st q p =
  let row = st.pref.(q) and alive = st.active.(q) in
  let cut = st.rank.(q).(p) in
  for i = cut + 1 to Array.length row - 1 do
    if alive.(i) then delete_pair st q row.(i)
  done

exception Empty_list

(* Phase 1: proposal sequence.  held.(q) is the proposer q currently
   holds, or -1. *)
let phase1 st =
  let n = Array.length st.pref in
  let held = Array.make n (-1) in
  let engaged_to = Array.make n (-1) in
  (* engaged_to.(p) = the q holding p's proposal *)
  let rec propose p =
    match first st p with
    | None -> () (* p exhausted its list: single in every stable matching *)
    | Some q ->
        let r = held.(q) in
        if r < 0 then begin
          held.(q) <- p;
          engaged_to.(p) <- q
        end
        else if st.rank.(q).(p) < st.rank.(q).(r) then begin
          held.(q) <- p;
          engaged_to.(p) <- q;
          engaged_to.(r) <- -1;
          delete_pair st r q;
          propose r
        end
        else begin
          delete_pair st p q;
          propose p
        end
  in
  for p = 0 to n - 1 do
    if engaged_to.(p) < 0 then propose p
  done;
  (* Reduction: each q keeps no one worse than the proposer it holds. *)
  for q = 0 to n - 1 do
    if held.(q) >= 0 then truncate_after st q held.(q)
  done

(* Phase 2: find and eliminate rotations until all lists have length <= 1.
   Raises Empty_list if an engaged person's list empties (no stable
   matching). *)
let phase2 st =
  let n = Array.length st.pref in
  let some_exn = function Some x -> x | None -> raise Empty_list in
  let find_long () =
    let rec go p = if p >= n then None else if st.len.(p) >= 2 then Some p else go (p + 1) in
    go 0
  in
  let rec loop () =
    match find_long () with
    | None -> ()
    | Some start ->
        (* Chase p -> last(second(p)) until a person repeats; the cycle is
           the rotation's x-sequence. *)
        let seen_at = Array.make n (-1) in
        let seq = ref [] in
        let rec chase p steps =
          if seen_at.(p) >= 0 then seen_at.(p)
          else begin
            seen_at.(p) <- steps;
            seq := p :: !seq;
            let y = some_exn (second st p) in
            let p' = some_exn (last st y) in
            chase p' (steps + 1)
          end
        in
        let cycle_start = chase start 0 in
        let xs = Array.of_list (List.rev !seq) in
        let xs = Array.sub xs cycle_start (Array.length xs - cycle_start) in
        let k = Array.length xs in
        (* Rotation pairs: (x_i, y_i) with y_i = first(x_i); successor
           y_{i+1} = second(x_i). *)
        let ys = Array.map (fun x -> some_exn (first st x)) xs in
        let seconds = Array.map (fun x -> some_exn (second st x)) xs in
        for i = 0 to k - 1 do
          delete_pair st xs.(i) ys.(i)
        done;
        for i = 0 to k - 1 do
          (* x_i now proposes to its old second = y_{i+1}; that person
             truncates below x_i. *)
          let y' = seconds.(i) in
          if st.rank.(y').(xs.(i)) < 0 || not st.active.(y').(st.rank.(y').(xs.(i))) then
            raise Empty_list;
          truncate_after st y' xs.(i)
        done;
        (* Any engaged person left with an empty list kills existence. *)
        Array.iteri
          (fun i x ->
            ignore i;
            if st.len.(x) = 0 then raise Empty_list)
          xs;
        Array.iter (fun y -> if st.len.(y) = 0 then raise Empty_list) ys;
        loop ()
  in
  loop ()

let solve t =
  let st = make_state t in
  phase1 st;
  match phase2 st with
  | () ->
      let n = Tan.size t in
      let mate = Array.make n (-1) in
      let consistent = ref true in
      for p = 0 to n - 1 do
        match first st p with
        | None -> ()
        | Some q -> (
            mate.(p) <- q;
            match first st q with
            | Some p' when p' = p -> ()
            | _ -> consistent := false)
      done;
      if !consistent then Stable mate else No_stable
  | exception Empty_list -> No_stable

let is_stable_matching t mate =
  let n = Tan.size t in
  if Array.length mate <> n then false
  else begin
    let ok = ref true in
    (* Symmetry and acceptability. *)
    for p = 0 to n - 1 do
      let q = mate.(p) in
      if q >= 0 then begin
        if q >= n || mate.(q) <> p || not (Tan.accepts t p q) then ok := false
      end
    done;
    (* Blocking pairs. *)
    if !ok then
      for p = 0 to n - 1 do
        Array.iter
          (fun q ->
            if q > p && Tan.accepts t p q && mate.(p) <> q then begin
              let p_wants = mate.(p) < 0 || Tan.prefers t p q mate.(p) in
              let q_wants = mate.(q) < 0 || Tan.prefers t q p mate.(q) in
              if p_wants && q_wants then ok := false
            end)
          (Tan.preference_list t p)
      done;
    !ok
  end
