(** Exact mate distributions by exhaustive graph enumeration (Fig 7).

    For tiny [n], every one of the [2^(n(n−1)/2)] acceptance graphs is
    enumerated with its Erdős–Rényi probability and the {e exact} stable
    b₀-matching computed on each — the ground truth that exposes the error
    of Assumption 1/2.  Exponential: intended for [n ≤ 7]. *)

val mate_matrix : n:int -> p:float -> b0:int -> float array array
(** [m.(i).(j)] = exact probability that [i] and [j] are mates in the
    stable configuration of a random [G(n,p)]. *)

val choice_matrices : n:int -> p:float -> b0:int -> float array array array
(** [c.(k).(i).(j)] = exact probability that [j] is [i]'s choice [k+1]. *)

val fig7_exact : p:float -> float * float * float
(** The paper's closed forms for [n = 3], 1-matching:
    [D(1,2) = p], [D(1,3) = p(1−p)], [D(2,3) = p(1−p)²]
    (peers renamed 0-based internally; returned in paper order). *)

val fig7_approximation_error : p:float -> float
(** The predicted gap of Algorithm 2 on [D(2,3)]: [p³(1−p)]. *)
