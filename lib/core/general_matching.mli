(** b-matching under {e arbitrary} preferences.

    The generic counterpart of {!Instance}/{!Config}/{!Blocking}: peers
    rank their acceptable partners by an arbitrary {!Utility.t} instead of
    a shared global ranking.  Everything the paper proves for the
    global-ranking class can {e fail} here — stable configurations may not
    exist, best-response dynamics may cycle — and this module makes those
    phenomena observable (they are exercised in tests and in the
    utility-ablation experiment). *)

type t
(** An instance: acceptance lists ordered by preference, plus budgets. *)

val create : utility:Utility.t -> acceptance:int array array -> b:int array -> t
(** [acceptance] must be symmetric (checked); budgets non-negative. *)

val of_instance : Instance.t -> t
(** Embed a global-ranking instance (rank labels become scores). *)

val n : t -> int
val slots : t -> int -> int
val preference_list : t -> int -> int array
(** Acceptable peers, most-preferred first. *)

val prefers : t -> int -> int -> int -> bool
(** [prefers t p a b]: does [p] strictly prefer [a] to [b]? *)

(** Mutable matching state over an instance. *)
module State : sig
  type state

  val empty : t -> state
  val mates : state -> int -> int list
  (** Current mates, most-preferred first. *)

  val degree : state -> int -> int
  val mated : state -> int -> int -> bool
  val worst_mate : state -> int -> int option
  val connect : state -> int -> int -> unit
  val disconnect : state -> int -> int -> unit
  val edge_count : state -> int
  val signature : state -> string
  val copy : state -> state
end

val is_blocking : t -> State.state -> int -> int -> bool
val blocking_pairs : t -> State.state -> (int * int) list
val is_stable : t -> State.state -> bool

val best_blocking_mate : t -> State.state -> int -> int option

val satisfy : t -> State.state -> int -> int -> unit
(** Execute the blocking pair: both sides drop their worst mate if full,
    then connect. *)

type run = Converged of { steps : int } | Cycled of { period_found_at : int }

val best_response_run : t -> ?max_steps:int -> Stratify_prng.Rng.t -> run
(** From the empty state, repeatedly satisfy a random peer's best blocking
    pair.  Returns [Converged] on reaching stability, [Cycled] when a
    configuration repeats (impossible under a global ranking — Theorem 1 —
    but possible in general), and [Cycled] with [period_found_at =
    max_steps] if the budget runs out undecided. *)

val exists_stable : t -> bool
(** Exhaustive search over all degree-feasible configurations
    (exponential; for small instances). *)
