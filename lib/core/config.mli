(** Configurations (the paper's "matchings"): who currently collaborates
    with whom.

    A configuration is a subgraph of the acceptance graph in which every
    peer [p] has degree at most [b(p)].  The structure is mutable — the
    initiative dynamics of §3 rewires it in place — and keeps each peer's
    mate list sorted best-first so that worst-mate lookups are O(1). *)

type t

val empty : Instance.t -> t
(** The empty configuration [C∅]. *)

val instance : t -> Instance.t

val degree : t -> int -> int
(** Current number of mates of a peer. *)

val free_slots : t -> int -> int
(** [b(p)] minus current degree. *)

val is_full : t -> int -> bool

val mates : t -> int -> int list
(** Mates best-ranked first. *)

val best_mate : t -> int -> int option

val worst_mate : t -> int -> int option
(** O(1): the worst mate is cached, not recomputed from the list — it is
    probed by [Blocking.would_accept] on every initiative. *)

val mated : t -> int -> int -> bool
(** Whether two peers are currently mates.  O(1) rejection when [q] is
    worse than [p]'s cached worst mate; otherwise an early-exit scan of
    the (short, sorted) mate list. *)

val connect : t -> int -> int -> unit
(** Add a collaboration.  Raises [Invalid_argument] if the pair is
    unacceptable, already mated, or either side has no free slot — callers
    decide what to drop first. *)

val disconnect : t -> int -> int -> unit
(** Remove a collaboration.  Raises [Invalid_argument] if absent. *)

val drop_worst : t -> int -> int option
(** Disconnect and return a peer's worst mate ([None] if unmated). *)

val edge_count : t -> int
(** Number of collaborations. *)

val iter_pairs : (int -> int -> unit) -> t -> unit
(** Iterate each collaboration once with [p < q] (rank labels). *)

val copy : t -> t

val equal : t -> t -> bool
(** Same collaboration set (instances assumed identical). *)

val signature : t -> string
(** Canonical string key of the collaboration set — used to detect
    configuration revisits (Theorem 1 asserts none happen). *)

val to_adjacency : t -> int array array
(** Collaboration graph as sorted adjacency arrays over rank labels. *)

val of_pairs : Instance.t -> (int * int) list -> t
(** Build from explicit pairs; validates acceptability and budgets. *)
