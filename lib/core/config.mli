(** Configurations (the paper's "matchings"): who currently collaborates
    with whom.

    A configuration is a subgraph of the acceptance graph in which every
    peer [p] has degree at most [b(p)].  The structure is mutable — the
    initiative dynamics of §3 rewires it in place.  Mates are stored in
    one flat [int array] of fixed-capacity sorted segments (capacity
    [min b(p) (acceptance degree)], so O(n·b̄) total even on complete
    acceptance graphs); [connect]/[disconnect] are zero-allocation O(b)
    shifts and [degree]/[worst_mate]/[free_slots] are O(1). *)

type t

val empty : Instance.t -> t
(** The empty configuration [C∅]. *)

val instance : t -> Instance.t

val degree : t -> int -> int
(** Current number of mates of a peer.  O(1) — cached, not recomputed. *)

val free_slots : t -> int -> int
(** [b(p)] minus current degree. *)

val is_full : t -> int -> bool

val mates : t -> int -> int list
(** Mates best-ranked first, as a fresh list.  Allocates — hot paths use
    [mate_at]/[iter_mates] instead. *)

val mate_at : t -> int -> int -> int
(** [mate_at t p i] is [p]'s [i]-th best current mate
    ([0 <= i < degree t p]).  O(1), no allocation. *)

val iter_mates : t -> int -> (int -> unit) -> unit
(** Apply a function to each mate of a peer, best-ranked first. *)

val best_mate : t -> int -> int option

val worst_mate : t -> int -> int option
(** O(1): segments are sorted, so the worst mate is the last entry — it
    is probed by [Blocking.would_accept] on every initiative. *)

val worst_rank : t -> int -> int
(** Allocation-free [worst_mate]: the worst mate's rank label, or [-1]
    when unmated.  The dynamics' innermost loop uses this to avoid
    boxing an option per probe. *)

val mated : t -> int -> int -> bool
(** Whether two peers are currently mates.  When the word-packed mate
    filter is enabled ({!mask_enabled}, the default for b̄ ≤ 63) a clear
    bit of [raw_mask] answers "no" in one load; otherwise (and on a set
    bit) an early-exit scan of the (short, sorted, flat) mate segment —
    all comparisons are immediate int compares. *)

val mated_linear : t -> int -> int -> bool
(** The flat-array reference path of {!mated}, never consulting the mate
    filter.  Same answer by construction; the equivalence tests pin the
    two against each other. *)

val mask_enabled : t -> bool
(** Whether {!mated} consults the 63-bit mate filter first.  Chosen at
    {!empty} time ([max b ≤ 63], where the filter is selective); the
    filter itself is always maintained. *)

val set_use_mask : t -> bool -> unit
(** Force the filter path on or off — a test hook for the bitset ≡
    flat-array equivalence properties; either setting is correct. *)

val connect : t -> int -> int -> unit
(** Add a collaboration.  Raises [Invalid_argument] if the pair is
    unacceptable, already mated, or either side has no free slot — callers
    decide what to drop first. *)

val disconnect : t -> int -> int -> unit
(** Remove a collaboration.  Raises [Invalid_argument] if absent. *)

val drop_worst : t -> int -> int option
(** Disconnect and return a peer's worst mate ([None] if unmated). *)

val drop_worst_rank : t -> int -> int
(** Allocation-free {!drop_worst}: the dropped mate's rank, or [-1] when
    unmated (nothing dropped).  [Initiative.perform] uses this to keep
    steady-state rewiring option-free. *)

val edge_count : t -> int
(** Number of collaborations. *)

val iter_pairs : (int -> int -> unit) -> t -> unit
(** Iterate each collaboration once with [p < q] (rank labels). *)

val copy : t -> t

val equal : t -> t -> bool
(** Same collaboration set (instances assumed identical). *)

val same_mates : t -> t -> int -> bool
(** [same_mates a b p]: whether peer [p] has the identical mate set in
    both configurations (instances assumed identical).  O(b), no
    allocation — [Sim]'s convergence tracker calls it per rewired peer. *)

val signature : t -> string
(** Canonical string key of the collaboration set — used to detect
    configuration revisits (Theorem 1 asserts none happen). *)

val to_adjacency : t -> int array array
(** Collaboration graph as sorted adjacency arrays over rank labels. *)

val of_pairs : Instance.t -> (int * int) list -> t
(** Build from explicit pairs; validates acceptability and budgets. *)

val absorb : t -> t -> shift:int -> unit
(** [absorb t local ~shift] bulk-copies the band-local configuration
    [local] into [t], relabelling local peer [lp] to [shift + lp].
    Contract (enforced only cheaply): [local]'s instance must be the
    rank window [shift, shift + n) of [t]'s instance and the window's
    peers must still be unmated in [t].  O(edges of [local]) array
    blits — no per-pair validation or sorted insertion, which is what
    makes stitching sharded bands ({!Shard.stable_config}) cheap.
    Raises [Invalid_argument] when the window overflows [t], a target
    peer is already mated, or a segment overflows its capacity. *)

(** {2 Low-level views}

    Read-only views of the flat mate storage for fused hot-loop kernels
    ([Blocking.best_blocking_mate]).  [raw_off] is immutable after
    {!empty}; [raw_data]/[raw_deg] are the live arrays — callers must
    never mutate them, and must re-read after any [connect]/[disconnect]. *)

val raw_off : t -> int array
(** Segment offsets: peer [p]'s mates live at indices
    [raw_off t.(p) .. raw_off t.(p) + raw_deg t.(p) - 1] of [raw_data]. *)

val raw_data : t -> int array
val raw_deg : t -> int array

val raw_thresh : t -> int array
(** Per-peer acceptance threshold, maintained on every rewire:
    [q < (raw_thresh t).(p)] ⟺ [Blocking.would_accept t p q] — [max_int]
    while [p] has a free slot, its worst mate's rank when full, [-1]
    when full and unmated ([b(p) = 0]).  Collapses the accepts-back
    probe of the fused blocking kernels to a single load. *)

val first_accepting : t -> lo:int -> hi:int -> int -> int
(** [first_accepting t ~lo ~hi p] is the smallest [q] in [\[lo, hi)]
    with [(raw_thresh t).(q) > p] — i.e. the best-ranked peer in the
    range that would accept [p] — or [-1] when none exists.  O(log n)
    via a max segment tree over [raw_thresh], maintained incrementally
    on every rewire; allocation-free.  The complete-backend blocking
    scan descends this tree instead of probing each rank in turn. *)

val raw_mask : t -> int array
(** Per-peer 63-bit mate filter: bit [q mod 63] is set whenever [q] is a
    mate of [p].  A clear bit proves non-matedness; a set bit says
    nothing (fall back to the segment scan).  Sound for every budget,
    selective only when b̄ ≤ 63 — see {!mask_enabled}. *)
