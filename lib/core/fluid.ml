module Series = Stratify_stats.Series
module Discrete = Stratify_stats.Discrete

let density ~d beta = if beta < 0. then 0. else d *. exp (-.beta *. d)
let cdf ~d beta = if beta < 0. then 0. else 1. -. exp (-.beta *. d)
let mean_offset ~d = 1. /. d

let scaled_best_peer_series ~n ~d =
  let p = d /. float_of_int n in
  let row = (One_matching.mate_distributions ~n ~p ~peers:[| 0 |]).(0) in
  let fn = float_of_int n in
  let points =
    Array.init (n - 1) (fun k ->
        let j = k + 1 in
        (float_of_int j /. fn, fn *. Discrete.mass row j))
  in
  Series.make (Printf.sprintf "n=%d,d=%g" n d) points

let max_gap_to_limit ~n ~d =
  let series = scaled_best_peer_series ~n ~d in
  Array.fold_left
    (fun acc (beta, y) -> Float.max acc (Float.abs (y -. density ~d beta)))
    0. series.Series.points

let offset_series ~n ~d ~alpha =
  if alpha < 0. || alpha > 1. then invalid_arg "Fluid.offset_series: alpha must be in [0,1]";
  let p = d /. float_of_int n in
  let peer = min (n - 1) (int_of_float (alpha *. float_of_int (n - 1))) in
  let row = (One_matching.mate_distributions ~n ~p ~peers:[| peer |]).(0) in
  let fn = float_of_int n in
  let points =
    Array.init n (fun j -> (float_of_int (j - peer) /. fn, fn *. Discrete.mass row j))
  in
  Series.make (Printf.sprintf "alpha=%g" alpha) points

let shift_invariance_gap ~n ~d ~alpha1 ~alpha2 =
  let s1 = offset_series ~n ~d ~alpha:alpha1 and s2 = offset_series ~n ~d ~alpha:alpha2 in
  (* Compare densities on the common offset grid around zero. *)
  let probes = Array.init 81 (fun i -> (float_of_int i -. 40.) /. (2. *. d) /. 10.) in
  let total = ref 0. in
  Array.iter (fun x -> total := !total +. Float.abs (Series.eval s1 x -. Series.eval s2 x)) probes;
  !total /. float_of_int (Array.length probes)
