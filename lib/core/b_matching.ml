module Discrete = Stratify_stats.Discrete

let sweep_generic ~n ~p ~b0 ~f =
  if p < 0. || p > 1. then invalid_arg "B_matching.sweep: p must be in [0,1]";
  if b0 <= 0 then invalid_arg "B_matching.sweep: b0 must be positive";
  (* col_acc.(c).(j) = Σ_{k<i} D_{c+1}(j,k): prefix of peer j's choice-(c+1)
     distribution over peers better than the current row i. *)
  let col_acc = Array.init b0 (fun _ -> Array.make n 0.) in
  let row_acc = Array.make b0 0. in
  let fi = Array.make b0 0. in
  let fj = Array.make b0 0. in
  let di = Array.make b0 0. in
  let dj = Array.make b0 0. in
  for i = 0 to n - 1 do
    for c = 0 to b0 - 1 do
      row_acc.(c) <- col_acc.(c).(i)
    done;
    for j = i + 1 to n - 1 do
      (* Free-at-level factors, computed from pre-update prefixes. *)
      for c = 0 to b0 - 1 do
        let prev = if c = 0 then 1. else row_acc.(c - 1) in
        fi.(c) <- Float.max 0. (prev -. row_acc.(c));
        let prev_j = if c = 0 then 1. else col_acc.(c - 1).(j) in
        fj.(c) <- Float.max 0. (prev_j -. col_acc.(c).(j))
      done;
      for c = 0 to b0 - 1 do
        di.(c) <- 0.;
        dj.(c) <- 0.
      done;
      for ci = 0 to b0 - 1 do
        for cj = 0 to b0 - 1 do
          let d = p *. fi.(ci) *. fj.(cj) in
          di.(ci) <- di.(ci) +. d;
          dj.(cj) <- dj.(cj) +. d
        done
      done;
      f i j ~fi ~fj ~di ~dj;
      for c = 0 to b0 - 1 do
        row_acc.(c) <- row_acc.(c) +. di.(c);
        col_acc.(c).(j) <- col_acc.(c).(j) +. dj.(c)
      done
    done
  done

let sweep ~n ~p ~b0 ~f =
  sweep_generic ~n ~p ~b0 ~f:(fun i j ~fi:_ ~fj:_ ~di ~dj -> f i j di dj)

let sweep_joint ~n ~p ~b0 ~f =
  let joint = Array.make_matrix b0 b0 0. in
  sweep_generic ~n ~p ~b0 ~f:(fun i j ~fi ~fj ~di:_ ~dj:_ ->
      for ci = 0 to b0 - 1 do
        for cj = 0 to b0 - 1 do
          joint.(ci).(cj) <- p *. fi.(ci) *. fj.(cj)
        done
      done;
      f i j joint)

let choice_distributions ~n ~p ~b0 ~peer =
  if peer < 0 || peer >= n then invalid_arg "B_matching.choice_distributions: peer out of range";
  let rows = Array.init b0 (fun _ -> Array.make n 0.) in
  sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      if i = peer then for c = 0 to b0 - 1 do rows.(c).(j) <- di.(c) done;
      if j = peer then for c = 0 to b0 - 1 do rows.(c).(i) <- dj.(c) done);
  Array.map Discrete.of_weights rows

let mate_count_mass ~n ~p ~b0 ~peer =
  let total = ref 0. in
  sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      if i = peer then Array.iter (fun d -> total := !total +. d) di;
      if j = peer then Array.iter (fun d -> total := !total +. d) dj);
  !total

let expectations ~n ~p ~b0 ~value =
  let e = Array.make n 0. and mass = Array.make n 0. in
  sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      let si = Array.fold_left ( +. ) 0. di and sj = Array.fold_left ( +. ) 0. dj in
      e.(i) <- e.(i) +. (si *. value j);
      e.(j) <- e.(j) +. (sj *. value i);
      mass.(i) <- mass.(i) +. si;
      mass.(j) <- mass.(j) +. sj);
  (e, mass)

let reduces_to_one_matching ~n ~p =
  let worst = ref 0. in
  let reference = One_matching.matrix ~n ~p in
  sweep ~n ~p ~b0:1 ~f:(fun i j di _dj ->
      worst := Float.max !worst (Float.abs (di.(0) -. reference.(i).(j))));
  !worst
