type instance = {
  resident_prefs : int array array;
  hospital_prefs : int array array;
  capacity : int array;
}

type matching = { hospital_of : int array; residents_of : int list array }

let validate inst =
  let n_res = Array.length inst.resident_prefs in
  let n_hosp = Array.length inst.hospital_prefs in
  if Array.length inst.capacity <> n_hosp then
    invalid_arg "Hospital_residents: capacity array size mismatch";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hospital_residents: negative capacity")
    inst.capacity;
  let check name prefs bound =
    Array.iter
      (fun row ->
        let seen = Hashtbl.create 8 in
        Array.iter
          (fun x ->
            if x < 0 || x >= bound then invalid_arg (name ^ ": entry out of range");
            if Hashtbl.mem seen x then invalid_arg (name ^ ": duplicate entry");
            Hashtbl.replace seen x ())
          row)
      prefs
  in
  check "Hospital_residents: resident_prefs" inst.resident_prefs n_hosp;
  check "Hospital_residents: hospital_prefs" inst.hospital_prefs n_res;
  (* Mutual acceptability. *)
  let hosp_accepts = Array.map (fun row -> let h = Hashtbl.create 8 in Array.iteri (fun i r -> Hashtbl.replace h r i) row; h) inst.hospital_prefs in
  Array.iteri
    (fun r row ->
      Array.iter
        (fun h ->
          if not (Hashtbl.mem hosp_accepts.(h) r) then
            invalid_arg "Hospital_residents: acceptability not mutual")
        row)
    inst.resident_prefs;
  hosp_accepts

let solve inst =
  let hosp_rank = validate inst in
  let n_res = Array.length inst.resident_prefs in
  let n_hosp = Array.length inst.hospital_prefs in
  let hospital_of = Array.make n_res (-1) in
  (* Hospital's held residents as a list sorted worst-first for O(1)
     bumping. *)
  let held = Array.make n_hosp [] in
  let next_proposal = Array.make n_res 0 in
  let rank h r = Hashtbl.find hosp_rank.(h) r in
  let worse h r1 r2 = rank h r1 > rank h r2 in
  let free = Queue.create () in
  for r = 0 to n_res - 1 do
    Queue.push r free
  done;
  while not (Queue.is_empty free) do
    let r = Queue.pop free in
    if next_proposal.(r) < Array.length inst.resident_prefs.(r) then begin
      let h = inst.resident_prefs.(r).(next_proposal.(r)) in
      next_proposal.(r) <- next_proposal.(r) + 1;
      if List.length held.(h) < inst.capacity.(h) then begin
        (* Insert keeping worst-first order. *)
        let rec insert = function
          | [] -> [ r ]
          | x :: rest as all -> if worse h r x then r :: all else x :: insert rest
        in
        held.(h) <- insert held.(h);
        hospital_of.(r) <- h
      end
      else begin
        match held.(h) with
        | worst :: rest when inst.capacity.(h) > 0 && worse h worst r ->
            (* r displaces the worst held resident. *)
            hospital_of.(worst) <- -1;
            Queue.push worst free;
            let rec insert = function
              | [] -> [ r ]
              | x :: tail as all -> if worse h r x then r :: all else x :: insert tail
            in
            held.(h) <- insert rest;
            hospital_of.(r) <- h
        | _ -> Queue.push r free
      end
    end
  done;
  let residents_of =
    Array.mapi (fun h l -> List.sort (fun a b -> Int.compare (rank h a) (rank h b)) l) held
  in
  { hospital_of; residents_of }

let is_stable inst m =
  let hosp_rank = validate inst in
  let rank h r = Hashtbl.find hosp_rank.(h) r in
  let res_rank =
    Array.map
      (fun row ->
        let t = Hashtbl.create 8 in
        Array.iteri (fun i h -> Hashtbl.replace t h i) row;
        t)
      inst.resident_prefs
  in
  let blocking = ref false in
  Array.iteri
    (fun r row ->
      Array.iter
        (fun h ->
          let r_prefers_h =
            match m.hospital_of.(r) with
            | -1 -> true
            | current -> Hashtbl.find res_rank.(r) h < Hashtbl.find res_rank.(r) current
          in
          if r_prefers_h then begin
            let members = m.residents_of.(h) in
            let has_room = List.length members < inst.capacity.(h) in
            let prefers_r =
              match List.rev members with
              | [] -> false
              | worst :: _ -> rank h r < rank h worst
            in
            if (has_room && inst.capacity.(h) > 0) || prefers_r then blocking := true
          end)
        row)
    inst.resident_prefs;
  not !blocking

let unmatched_residents m =
  let out = ref [] in
  Array.iteri (fun r h -> if h < 0 then out := r :: !out) m.hospital_of;
  List.rev !out
