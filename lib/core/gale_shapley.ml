type matching = { proposer_mate : int array; receiver_mate : int array }

let validate name prefs n =
  if Array.length prefs <> n then invalid_arg (name ^ ": wrong number of rows");
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg (name ^ ": incomplete preference list");
      let seen = Array.make n false in
      Array.iter
        (fun q ->
          if q < 0 || q >= n then invalid_arg (name ^ ": entry out of range");
          if seen.(q) then invalid_arg (name ^ ": duplicate entry");
          seen.(q) <- true)
        row)
    prefs

let run ~proposer_prefs ~receiver_prefs =
  let n = Array.length proposer_prefs in
  validate "Gale_shapley: proposer_prefs" proposer_prefs n;
  validate "Gale_shapley: receiver_prefs" receiver_prefs n;
  let receiver_rank =
    Array.map
      (fun row ->
        let rank = Array.make n 0 in
        Array.iteri (fun i m -> rank.(m) <- i) row;
        rank)
      receiver_prefs
  in
  let proposer_mate = Array.make n (-1) in
  let receiver_mate = Array.make n (-1) in
  let next_proposal = Array.make n 0 in
  let free = Queue.create () in
  for m = 0 to n - 1 do
    Queue.push m free
  done;
  while not (Queue.is_empty free) do
    let m = Queue.pop free in
    let w = proposer_prefs.(m).(next_proposal.(m)) in
    next_proposal.(m) <- next_proposal.(m) + 1;
    let current = receiver_mate.(w) in
    if current < 0 then begin
      receiver_mate.(w) <- m;
      proposer_mate.(m) <- w
    end
    else if receiver_rank.(w).(m) < receiver_rank.(w).(current) then begin
      receiver_mate.(w) <- m;
      proposer_mate.(m) <- w;
      proposer_mate.(current) <- -1;
      Queue.push current free
    end
    else Queue.push m free
  done;
  { proposer_mate; receiver_mate }

let is_stable ~proposer_prefs ~receiver_prefs matching =
  let n = Array.length proposer_prefs in
  let rank_of prefs =
    Array.map
      (fun row ->
        let rank = Array.make n 0 in
        Array.iteri (fun i q -> rank.(q) <- i) row;
        rank)
      prefs
  in
  let proposer_rank = rank_of proposer_prefs and receiver_rank = rank_of receiver_prefs in
  let blocking = ref false in
  for m = 0 to n - 1 do
    for w = 0 to n - 1 do
      let m_mate = matching.proposer_mate.(m) and w_mate = matching.receiver_mate.(w) in
      let m_prefers_w = m_mate < 0 || proposer_rank.(m).(w) < proposer_rank.(m).(m_mate) in
      let w_prefers_m = w_mate < 0 || receiver_rank.(w).(m) < receiver_rank.(w).(w_mate) in
      if m_mate <> w && m_prefers_w && w_prefers_m then blocking := true
    done
  done;
  not !blocking

let proposer_rank_of_mate ~proposer_prefs matching =
  let n = Array.length proposer_prefs in
  let total = ref 0 in
  for m = 0 to n - 1 do
    let w = matching.proposer_mate.(m) in
    Array.iteri (fun i q -> if q = w then total := !total + i) proposer_prefs.(m)
  done;
  float_of_int !total /. float_of_int n
