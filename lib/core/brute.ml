let acceptance_edges inst =
  let edges = ref [] in
  for p = Instance.n inst - 1 downto 0 do
    Instance.iter_acceptable inst p (fun q -> if p < q then edges := (p, q) :: !edges)
  done;
  !edges

(* Depth-first include/exclude over the edge list, pruning on slot
   budgets. *)
let fold_configs f init inst =
  let edges = Array.of_list (acceptance_edges inst) in
  let n_edges = Array.length edges in
  let used = Array.make (Instance.n inst) 0 in
  let chosen = ref [] in
  let acc = ref init in
  let rec go i =
    if i >= n_edges then acc := f !acc (List.rev !chosen)
    else begin
      let p, q = edges.(i) in
      (* exclude *)
      go (i + 1);
      (* include, if both endpoints have budget left *)
      if used.(p) < Instance.slots inst p && used.(q) < Instance.slots inst q then begin
        used.(p) <- used.(p) + 1;
        used.(q) <- used.(q) + 1;
        chosen := (p, q) :: !chosen;
        go (i + 1);
        chosen := List.tl !chosen;
        used.(p) <- used.(p) - 1;
        used.(q) <- used.(q) - 1
      end
    end
  in
  go 0;
  !acc

let all_configs inst =
  List.rev (fold_configs (fun acc pairs -> Config.of_pairs inst pairs :: acc) [] inst)

let all_stable_configs inst =
  List.rev
    (fold_configs
       (fun acc pairs ->
         let c = Config.of_pairs inst pairs in
         if Blocking.is_stable c then c :: acc else acc)
       [] inst)

let count_configs inst = fold_configs (fun acc _ -> acc + 1) 0 inst
