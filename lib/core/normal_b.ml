module Dist = Stratify_prng.Dist

let constant ~n ~b0 =
  if b0 < 0 then invalid_arg "Normal_b.constant: negative budget";
  Array.make n b0

let rounded_normal rng ~n ~mean ~sigma =
  Array.init n (fun _ -> Dist.rounded_positive_normal rng ~mean ~sigma)

let with_extra b ~peer =
  let out = Array.copy b in
  out.(peer) <- out.(peer) + 1;
  out
