module Discrete = Stratify_stats.Discrete

let sweep ~n ~p ~f =
  if p < 0. || p > 1. then invalid_arg "One_matching.sweep: p must be in [0,1]";
  (* col_acc.(j) = Σ_{k<i} D(k,j), maintained across rows; by symmetry it
     is also Σ_{k<i} D(j,k), the second factor of the recurrence. *)
  let col_acc = Array.make n 0. in
  for i = 0 to n - 1 do
    (* row_acc = Σ_{k<j} D(i,k); at j = i+1 this is Σ_{k<i} D(i,k) =
       col_acc.(i) (D(i,i) = 0). *)
    let row_acc = ref col_acc.(i) in
    for j = i + 1 to n - 1 do
      let d = p *. (1. -. !row_acc) *. (1. -. col_acc.(j)) in
      f i j d;
      row_acc := !row_acc +. d;
      col_acc.(j) <- col_acc.(j) +. d
    done
  done

let mate_distributions ~n ~p ~peers =
  let index = Hashtbl.create 8 in
  Array.iteri
    (fun slot peer ->
      if peer < 0 || peer >= n then invalid_arg "One_matching.mate_distributions: peer out of range";
      Hashtbl.replace index peer slot)
    peers;
  let rows = Array.map (fun _ -> Array.make n 0.) peers in
  sweep ~n ~p ~f:(fun i j d ->
      (match Hashtbl.find_opt index i with Some s -> rows.(s).(j) <- d | None -> ());
      match Hashtbl.find_opt index j with Some s -> rows.(s).(i) <- d | None -> ());
  Array.map Discrete.of_weights rows

let match_probability ~n ~p ~peer =
  let total = ref 0. in
  sweep ~n ~p ~f:(fun i j d -> if i = peer || j = peer then total := !total +. d);
  !total

let expectations ~n ~p ~value =
  let e = Array.make n 0. and mass = Array.make n 0. in
  sweep ~n ~p ~f:(fun i j d ->
      e.(i) <- e.(i) +. (d *. value j);
      e.(j) <- e.(j) +. (d *. value i);
      mass.(i) <- mass.(i) +. d;
      mass.(j) <- mass.(j) +. d);
  (e, mass)

let matrix ~n ~p =
  let m = Array.make_matrix n n 0. in
  sweep ~n ~p ~f:(fun i j d ->
      m.(i).(j) <- d;
      m.(j).(i) <- d);
  m

let expected_offsets ~n ~p =
  let weighted = Array.make n 0. and mass = Array.make n 0. in
  sweep ~n ~p ~f:(fun i j d ->
      let gap = float_of_int (j - i) in
      weighted.(i) <- weighted.(i) +. (d *. gap);
      weighted.(j) <- weighted.(j) +. (d *. gap);
      mass.(i) <- mass.(i) +. d;
      mass.(j) <- mass.(j) +. d);
  Array.init n (fun i -> if mass.(i) <= 0. then 0. else weighted.(i) /. mass.(i))
