(** Irving's stable-roommates algorithm (1985), with incomplete lists.

    The 1-matching problem with {e arbitrary} (not ranking-induced)
    preferences — reference [7] of the paper.  Unlike the global-ranking
    case, a stable matching may not exist; this algorithm decides existence
    and produces one in O(n²) when it does (phase-1 proposal sequence, then
    phase-2 rotation eliminations).

    Stability here is the stable-roommates-with-incomplete-lists (SRI)
    notion, identical to the paper's blocking-pair definition with
    [b ≡ 1]: a matching is stable when no mutually acceptable unmatched
    pair exists in which each member is single or prefers the other to its
    current mate. *)

type outcome =
  | Stable of int array
      (** [mate.(p)] is [p]'s partner, or [-1] for peers single in every
          stable matching. *)
  | No_stable
      (** No stable matching exists (odd-party instances, Tan's odd
          preference cycles …). *)

val solve : Tan.t -> outcome
(** Run both phases on a preference system (see {!Tan.of_lists}). *)

val is_stable_matching : Tan.t -> int array -> bool
(** Checker: [mate] is symmetric, respects acceptability, and admits no
    blocking pair. *)
