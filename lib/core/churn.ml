module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Undirected = Stratify_graph.Undirected
module Series = Stratify_stats.Series

type params = {
  n : int;
  d : float;
  b : int;
  rate : float;
  units : int;
  samples_per_unit : int;
  strategy : Initiative.strategy;
  scheduler : Scheduler.policy;
}

(* Rebuild a configuration on a fresh instance, keeping the collaborations
   whose two endpoints are still present and acceptable.  The event loop
   no longer uses this (events patch the live [Config] in place: a
   departure touches only the departed peer's pairs, an arrival touches
   none) — it remains the reference semantics, pinned by tests. *)
let reconfigure old_config instance present =
  let fresh = Config.empty instance in
  Config.iter_pairs
    (fun p q ->
      if present.(p) && present.(q) && Instance.accepts instance p q then
        Config.connect fresh p q)
    old_config;
  fresh

(* The world keeps one [`Dynamic] instance alive for the whole run; peer
   events patch its acceptance rows in place, so [config] and [stable]
   (both allocated over it once, with full-budget segment capacity)
   survive every event.  [stable] is maintained incrementally: each
   event seeds [repair] with the perturbed neighbourhood and drains it
   with the best-mate strategy — per-event cost O(cascade), and by
   Theorem 1's uniqueness the result is bit-identical to a from-scratch
   [Greedy.stable_config] of the patched instance. *)
type world = {
  present : bool array;
  budgets : int array;
  instance : Instance.t;
  mutable config : Config.t;
  mutable stable : Config.t;
  state : Initiative.state;
  policy : Scheduler.policy;
  sched : Scheduler.t;  (* dirty queue driving [config] under Worklist *)
  repair : Scheduler.t;  (* dirty queue re-stabilizing [stable] *)
  repair_rng : Rng.t;  (* never drawn from: best-mate repair is RNG-free *)
}

let make_world ?(scheduler = Scheduler.Random_poll) ?(bands = 1) rng ~n ~d ~b =
  let graph = Gen.gnd rng ~n ~d in
  let instance = Instance.dynamic ~graph ~b:(Array.make n b) () in
  let sched = Scheduler.create ~n in
  (* From the empty configuration any peer may block: seed them all.
     Random_poll leaves the queue untouched (paper-faithful sampling). *)
  (match scheduler with
  | Scheduler.Worklist -> Scheduler.seed_all sched
  | Scheduler.Random_poll -> ());
  {
    present = Array.make n true;
    budgets = Array.make n b;
    instance;
    config = Config.empty instance;
    stable =
      (* Theorem 1's uniqueness makes the sharded and unsharded solves
         bit-identical; bands > 1 only changes how the initial
         from-scratch solve is decomposed (Shard, DESIGN.md §11). *)
      (if bands > 1 then Shard.stable_config ~bands instance else Greedy.stable_config instance);
    state = Initiative.create_state instance;
    policy = scheduler;
    sched;
    repair = Scheduler.create ~n;
    repair_rng = Rng.create 0;
  }

(* Rebuild a world from serialized state (lib/serve snapshots): the
   acceptance rows, the present mask and the two configurations fully
   determine future behaviour — the schedulers are empty between events
   (every event drains [repair] before returning), [state] only feeds
   the decremental strategy (never used by best-mate repair), and
   [repair_rng] is never drawn from. *)
let restore_world ~n ~b ~present ~adjacency ~config_pairs ~stable_pairs =
  if n < 1 then invalid_arg (Printf.sprintf "Churn.restore_world: n must be >= 1 (got %d)" n);
  if Array.length present <> n then
    invalid_arg
      (Printf.sprintf "Churn.restore_world: |present| = %d, expected %d"
         (Array.length present) n);
  if Array.length adjacency <> n then
    invalid_arg
      (Printf.sprintf "Churn.restore_world: |adjacency| = %d, expected %d"
         (Array.length adjacency) n);
  let graph = Undirected.of_adjacency_arrays adjacency in
  let instance = Instance.dynamic ~graph ~b:(Array.make n b) () in
  {
    present = Array.copy present;
    budgets = Array.make n b;
    instance;
    config = Config.of_pairs instance config_pairs;
    stable = Config.of_pairs instance stable_pairs;
    state = Initiative.create_state instance;
    policy = Scheduler.Random_poll;
    sched = Scheduler.create ~n;
    repair = Scheduler.create ~n;
    repair_rng = Rng.create 0;
  }

let world_instance w = w.instance
let world_config w = w.config
let world_stable w = w.stable
let world_present w = w.present

let restabilize w =
  ignore (Scheduler.drain w.repair w.stable w.state Initiative.Best_mate w.repair_rng)

(* Disconnect every collaboration of [v] in [config], reporting each
   ex-mate to [note]: a dropped pair frees a slot on the surviving side,
   and those are exactly the peers whose pairs may newly block. *)
let drop_pairs config v ~note =
  List.iter
    (fun m ->
      Config.disconnect config v m;
      note m)
    (Config.mates config v)

let config_note w =
  match w.policy with
  | Scheduler.Worklist -> Scheduler.push w.sched
  | Scheduler.Random_poll -> ignore

let remove_peer w v =
  w.present.(v) <- false;
  Instance.dyn_isolate w.instance v;
  drop_pairs w.stable v ~note:(Scheduler.push w.repair);
  restabilize w;
  drop_pairs w.config v ~note:(config_note w)

let insert_peer rng w v ~p =
  w.present.(v) <- true;
  (* Same candidate stream as [Gen.attach_fresh_vertex] on a graph, but
     the edges land directly in the live instance. *)
  Gen.iter_fresh_edges rng
    ~n:(Array.length w.present)
    ~v ~p
    ~present:(fun x -> w.present.(x))
    (fun x -> Instance.dyn_add_edge w.instance v x);
  (* Every new acceptance edge has [v] as an endpoint, so seeding the
     arrival alone preserves the activation invariant. *)
  Scheduler.push w.repair v;
  restabilize w;
  config_note w v

let random_member rng mask value =
  let count = Array.fold_left (fun acc x -> if x = value then acc + 1 else acc) 0 mask in
  if count = 0 then None
  else begin
    let target = Rng.int rng count in
    let idx = ref (-1) and seen = ref 0 in
    Array.iteri
      (fun i x ->
        if x = value then begin
          if !seen = target then idx := i;
          incr seen
        end)
      mask;
    Some !idx
  end

let churn_event rng w ~p =
  let remove_first = Rng.bool rng in
  let try_remove () =
    (* Keep at least two present peers so initiatives stay meaningful. *)
    let present_count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 w.present in
    if present_count <= 2 then false
    else
      match random_member rng w.present true with
      | Some v ->
          remove_peer w v;
          true
      | None -> false
  in
  let try_insert () =
    match random_member rng w.present false with
    | Some v ->
        insert_peer rng w v ~p;
        true
    | None -> false
  in
  if remove_first then (if not (try_remove ()) then ignore (try_insert ()))
  else if not (try_insert ()) then ignore (try_remove ())

let initiative_step rng w strategy =
  match w.policy with
  | Scheduler.Random_poll -> (
      match random_member rng w.present true with
      | None -> ()
      | Some peer -> ignore (Initiative.attempt w.config w.state strategy rng peer))
  | Scheduler.Worklist -> (
      match Scheduler.pop w.sched with
      | None -> ()
      | Some peer ->
          let note q = Scheduler.push w.sched q in
          if Initiative.attempt ~on_rewire:note w.config w.state strategy rng peer then
            Scheduler.note_hit ())

let run rng params =
  let { n; d; b; rate; units; samples_per_unit; strategy; scheduler } = params in
  let er_p = if n > 1 then d /. float_of_int (n - 1) else 0. in
  let w = make_world ~scheduler rng ~n ~d ~b in
  let stride = max 1 (n / samples_per_unit) in
  let total_steps = units * n in
  let sample () = Disorder.distance_on ~present:w.present w.config w.stable in
  let points = ref [ (0., sample ()) ] in
  let steps = ref 0 in
  while !steps < total_steps do
    let burst = min stride (total_steps - !steps) in
    for _ = 1 to burst do
      if Rng.bernoulli rng rate then churn_event rng w ~p:er_p;
      initiative_step rng w strategy
    done;
    steps := !steps + burst;
    points := (float_of_int !steps /. float_of_int n, sample ()) :: !points
  done;
  Series.make (Printf.sprintf "churn=%g" rate) (Array.of_list (List.rev !points))

let removal_trajectory ?(scheduler = Scheduler.Random_poll) rng ~n ~d ~b ~remove ~units
    ~samples_per_unit =
  let w = make_world ~scheduler rng ~n ~d ~b in
  (* Start at the stable configuration, then lose one peer.  The copy is
     stable, so the worklist restarts empty; the removal re-seeds it. *)
  w.config <- Config.copy w.stable;
  Scheduler.clear w.sched;
  remove_peer w remove;
  let stride = max 1 (n / samples_per_unit) in
  let total_steps = units * n in
  let sample () = Disorder.distance_on ~present:w.present w.config w.stable in
  let points = ref [ (0., sample ()) ] in
  let steps = ref 0 in
  while !steps < total_steps do
    let burst = min stride (total_steps - !steps) in
    for _ = 1 to burst do
      initiative_step rng w Initiative.Best_mate
    done;
    steps := !steps + burst;
    points := (float_of_int !steps /. float_of_int n, sample ()) :: !points
  done;
  Series.make (Printf.sprintf "removed=%d" remove) (Array.of_list (List.rev !points))

let mean_disorder_tail series ~skip_units =
  let total = ref 0. and count = ref 0 in
  Array.iter
    (fun (x, y) ->
      if x >= skip_units then begin
        total := !total +. y;
        incr count
      end)
    series.Series.points;
  if !count = 0 then 0. else !total /. float_of_int !count
