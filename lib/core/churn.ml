module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Undirected = Stratify_graph.Undirected
module Series = Stratify_stats.Series

type params = {
  n : int;
  d : float;
  b : int;
  rate : float;
  units : int;
  samples_per_unit : int;
  strategy : Initiative.strategy;
}

(* Rebuild a configuration on a fresh instance, keeping the collaborations
   whose two endpoints are still present and acceptable. *)
let reconfigure old_config instance present =
  let fresh = Config.empty instance in
  Config.iter_pairs
    (fun p q ->
      if present.(p) && present.(q) && Instance.accepts instance p q then
        Config.connect fresh p q)
    old_config;
  fresh

type world = {
  graph : Undirected.t;
  present : bool array;
  budgets : int array;
  mutable instance : Instance.t;
  mutable config : Config.t;
  mutable stable : Config.t;
  mutable state : Initiative.state;
}

let make_world rng ~n ~d ~b =
  let graph = Gen.gnd rng ~n ~d in
  let instance = Instance.create ~graph ~b:(Array.make n b) () in
  {
    graph;
    present = Array.make n true;
    budgets = Array.make n b;
    instance;
    config = Config.empty instance;
    stable = Greedy.stable_config instance;
    state = Initiative.create_state instance;
  }

let refresh w =
  w.instance <- Instance.create ~graph:w.graph ~b:w.budgets ();
  w.config <- reconfigure w.config w.instance w.present;
  w.stable <- Greedy.stable_config w.instance;
  w.state <- Initiative.create_state w.instance

let remove_peer w v =
  Undirected.isolate w.graph v;
  w.present.(v) <- false;
  refresh w

let insert_peer rng w v ~p =
  w.present.(v) <- true;
  ignore (Gen.attach_fresh_vertex rng w.graph ~v ~p ~present:(fun x -> w.present.(x)));
  refresh w

let random_member rng mask value =
  let count = Array.fold_left (fun acc x -> if x = value then acc + 1 else acc) 0 mask in
  if count = 0 then None
  else begin
    let target = Rng.int rng count in
    let idx = ref (-1) and seen = ref 0 in
    Array.iteri
      (fun i x ->
        if x = value then begin
          if !seen = target then idx := i;
          incr seen
        end)
      mask;
    Some !idx
  end

let churn_event rng w ~p =
  let remove_first = Rng.bool rng in
  let try_remove () =
    (* Keep at least two present peers so initiatives stay meaningful. *)
    let present_count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 w.present in
    if present_count <= 2 then false
    else
      match random_member rng w.present true with
      | Some v ->
          remove_peer w v;
          true
      | None -> false
  in
  let try_insert () =
    match random_member rng w.present false with
    | Some v ->
        insert_peer rng w v ~p;
        true
    | None -> false
  in
  if remove_first then (if not (try_remove ()) then ignore (try_insert ()))
  else if not (try_insert ()) then ignore (try_remove ())

let initiative_step rng w strategy =
  match random_member rng w.present true with
  | None -> ()
  | Some peer -> ignore (Initiative.attempt w.config w.state strategy rng peer)

let run rng params =
  let { n; d; b; rate; units; samples_per_unit; strategy } = params in
  let er_p = if n > 1 then d /. float_of_int (n - 1) else 0. in
  let w = make_world rng ~n ~d ~b in
  let stride = max 1 (n / samples_per_unit) in
  let total_steps = units * n in
  let sample () = Disorder.distance_on ~present:w.present w.config w.stable in
  let points = ref [ (0., sample ()) ] in
  let steps = ref 0 in
  while !steps < total_steps do
    let burst = min stride (total_steps - !steps) in
    for _ = 1 to burst do
      if Rng.bernoulli rng rate then churn_event rng w ~p:er_p;
      initiative_step rng w strategy
    done;
    steps := !steps + burst;
    points := (float_of_int !steps /. float_of_int n, sample ()) :: !points
  done;
  Series.make (Printf.sprintf "churn=%g" rate) (Array.of_list (List.rev !points))

let removal_trajectory rng ~n ~d ~b ~remove ~units ~samples_per_unit =
  let w = make_world rng ~n ~d ~b in
  (* Start at the stable configuration, then lose one peer. *)
  w.config <- Config.copy w.stable;
  remove_peer w remove;
  let stride = max 1 (n / samples_per_unit) in
  let total_steps = units * n in
  let sample () = Disorder.distance_on ~present:w.present w.config w.stable in
  let points = ref [ (0., sample ()) ] in
  let steps = ref 0 in
  while !steps < total_steps do
    let burst = min stride (total_steps - !steps) in
    for _ = 1 to burst do
      initiative_step rng w Initiative.Best_mate
    done;
    steps := !steps + burst;
    points := (float_of_int !steps /. float_of_int n, sample ()) :: !points
  done;
  Series.make (Printf.sprintf "removed=%d" remove) (Array.of_list (List.rev !points))

let mean_disorder_tail series ~skip_units =
  let total = ref 0. and count = ref 0 in
  Array.iter
    (fun (x, y) ->
      if x >= skip_units then begin
        total := !total +. y;
        incr count
      end)
    series.Series.points;
  if !count = 0 then 0. else !total /. float_of_int !count
