(** Initiatives — the decentralised rewiring moves of §3.

    A peer [p] "takes the initiative" by proposing partnership to peers on
    its acceptance list; the initiative is {e active} when it finds a
    blocking mate [q], in which case both sides drop their worst mate if
    full and the pair connects.  Three scanning strategies from the paper:

    - {e best mate}: [p] knows everyone's rank and availability and jumps
      straight to the best blocking mate;
    - {e decremental}: [p] knows ranks but not availability, so it scans
      its list circularly from the last peer it asked;
    - {e random}: [p] knows nothing and asks a single uniform peer. *)

type strategy = Best_mate | Decremental | Random

val strategy_name : strategy -> string

type state
(** Per-peer cursors used by the decremental strategy. *)

val create_state : Instance.t -> state

val find_mate : Config.t -> state -> strategy -> Stratify_prng.Rng.t -> int -> int option
(** The blocking mate peer [p] would reach under the given strategy, if
    any, without modifying the configuration (advances decremental
    cursors). *)

val find_mate_int : Config.t -> state -> strategy -> Stratify_prng.Rng.t -> int -> int
(** Option-free {!find_mate}: the mate's rank, or [-1].  The hot loop's
    form — a failed scan (the steady-state common case) allocates
    nothing. *)

val perform : ?on_rewire:(int -> unit) -> Config.t -> int -> int -> unit
(** Execute the pairing move of an active initiative: each side drops its
    worst mate if it has no free slot, then the two connect.  The pair must
    actually block (checked).  [on_rewire] is called, after all rewiring,
    for each peer whose mate list changed: the two principals and any
    dropped mates (a peer dropped by both sides is reported twice, so the
    hook must be idempotent) — this is what incremental convergence
    detectors ({!Sim}) use to avoid rescanning the whole configuration.
    When observability is enabled, each call bumps the
    "initiative.performed" counter and adds the number of changed mate
    lists to "initiative.rewires". *)

val attempt :
  ?on_rewire:(int -> unit) -> Config.t -> state -> strategy -> Stratify_prng.Rng.t -> int -> bool
(** [find_mate] then [perform]; returns whether the initiative was
    active. *)

val no_note : int -> unit
(** The shared do-nothing rewire hook.  Callers on the steady-state path
    pass this (or their own preallocated closure) to {!attempt_hook}
    instead of wrapping an option per attempt. *)

val attempt_hook :
  Config.t -> state -> strategy -> Stratify_prng.Rng.t -> int -> note:(int -> unit) -> bool
(** {!attempt} with a non-optional rewire hook: semantics and counter
    effects are identical, but an attempt boxes neither the found mate
    nor the hook — the allocation-free form [Scheduler.drain] and
    [Sim] step on. *)
