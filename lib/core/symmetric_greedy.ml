module G = General_matching

let stable_state inst ~utility =
  let n = G.n inst in
  let edges = ref [] in
  for p = n - 1 downto 0 do
    Array.iter
      (fun q -> if p < q then edges := (Utility.value utility p q, p, q) :: !edges)
      (G.preference_list inst p)
  done;
  let edges = Array.of_list !edges in
  (* Best utility first; ties broken by lexicographic pair for
     determinism. *)
  Array.sort
    (fun (u1, p1, q1) (u2, p2, q2) ->
      let c = Float.compare u2 u1 in
      if c <> 0 then c
      else
        let c = Int.compare p1 p2 in
        if c <> 0 then c else Int.compare q1 q2)
    edges;
  let s = G.State.empty inst in
  Array.iter
    (fun (_, p, q) ->
      if G.State.degree s p < G.slots inst p && G.State.degree s q < G.slots inst q then
        G.State.connect s p q)
    edges;
  s
