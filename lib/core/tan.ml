type t = { prefs : int array array; pos : int array array }

let build prefs =
  let n = Array.length prefs in
  let pos =
    Array.init n (fun p ->
        let row = Array.make n (-1) in
        Array.iteri
          (fun i q ->
            if q = p then invalid_arg "Tan.of_lists: peer prefers itself";
            if q < 0 || q >= n then invalid_arg "Tan.of_lists: peer out of range";
            if row.(q) >= 0 then invalid_arg "Tan.of_lists: duplicate in preference list";
            row.(q) <- i)
          prefs.(p);
        row)
  in
  { prefs; pos }

let of_lists raw =
  let probe = build raw in
  (* Symmetrise acceptability: keep q in p's list only if p is in q's. *)
  let prefs =
    Array.mapi
      (fun p row -> Array.of_list (List.filter (fun q -> probe.pos.(q).(p) >= 0) (Array.to_list row)))
      raw
  in
  build prefs

let of_global_ranking inst =
  (* [Instance.acceptable] returns a fresh array — safe to own. *)
  let prefs = Array.init (Instance.n inst) (fun p -> Instance.acceptable inst p) in
  build prefs

let size t = Array.length t.prefs
let preference_list t p = Array.copy t.prefs.(p)
let accepts t p q = t.pos.(p).(q) >= 0

let prefers t p a b =
  let ia = t.pos.(p).(a) and ib = t.pos.(p).(b) in
  if ia < 0 || ib < 0 then invalid_arg "Tan.prefers: unacceptable peer";
  ia < ib

let find_preference_cycle ?(parity = `Any) t =
  let n = size t in
  let parity_ok k =
    match parity with `Any -> true | `Odd -> k mod 2 = 1 | `Even -> k mod 2 = 0
  in
  let in_path = Array.make n false in
  let result = ref None in
  (* [prefers] restricted to mutually acceptable peers; false otherwise. *)
  let safe_prefers p a b = accepts t p a && accepts t p b && prefers t p a b in
  (* Extend path p1..pm (rev_path holds it reversed); close or grow. *)
  let rec extend start second rev_path prev cur len =
    if !result = None then begin
      (* Try to close: successor of cur is start. *)
      if len >= 3 && parity_ok len && safe_prefers cur start prev
         && safe_prefers start second cur then
        result := Some (List.rev rev_path)
      else ();
      if !result = None then
        Array.iter
          (fun next ->
            if !result = None && (not in_path.(next)) && safe_prefers cur next prev then begin
              in_path.(next) <- true;
              extend start second (next :: rev_path) cur next (len + 1);
              in_path.(next) <- false
            end)
          t.prefs.(cur)
    end
  in
  let try_start start =
    if !result = None then
      Array.iter
        (fun second ->
          if !result = None && second > start then begin
            in_path.(start) <- true;
            in_path.(second) <- true;
            extend start second [ second; start ] start second 2;
            in_path.(second) <- false;
            in_path.(start) <- false
          end)
        t.prefs.(start)
  in
  for s = 0 to n - 1 do
    try_start s
  done;
  !result

let is_global_ranking_like t =
  let n = size t in
  (* A global ranking exists iff the "must-be-better-than" relation induced
     by consecutive preference-list entries is acyclic. *)
  let succs = Array.make n [] in
  Array.iter
    (fun row ->
      for i = 0 to Array.length row - 2 do
        succs.(row.(i)) <- row.(i + 1) :: succs.(row.(i))
      done)
    t.prefs;
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let rec dfs v =
    if state.(v) = 1 then false
    else if state.(v) = 2 then true
    else begin
      state.(v) <- 1;
      let ok = List.for_all dfs succs.(v) in
      state.(v) <- 2;
      ok
    end
  in
  let rec all v = v >= n || (dfs v && all (v + 1)) in
  all 0
