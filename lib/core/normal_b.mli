(** Slot-budget laws for §4's variable b-matching.

    The paper's phase-transition study draws each budget from a rounded
    normal [N(b̄, σ²)] ("all samples are rounded to the nearest positive
    integer"). *)

val constant : n:int -> b0:int -> int array
(** Everyone gets [b0] slots. *)

val rounded_normal : Stratify_prng.Rng.t -> n:int -> mean:float -> sigma:float -> int array
(** Budget array sampled i.i.d. from the rounded positive normal. *)

val with_extra : int array -> peer:int -> int array
(** Copy with one extra slot granted to [peer] — the Fig 5 perturbation
    that reconnects the Fig 4 clusters. *)
