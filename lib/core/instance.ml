module Undirected = Stratify_graph.Undirected

(* Acceptance-graph storage.  [Dense] is a CSR-flattened explicit graph:
   the acceptable peers of rank [p] are [data.(off.(p)) .. data.(off.(p+1)-1)],
   increasing (= best-ranked first).  [Complete] stores nothing at all:
   every pair of distinct peers is acceptable, and the i-th best acceptable
   peer of [p] is [i] itself, shifted by one past [p].  [Complete_minus] is
   a complete graph restricted to a surviving peer set [alive] (sorted by
   rank); [pos.(p)] is [p]'s index in [alive], or [-1] if removed.
   [Dynamic] is a mutable row-per-peer store for churn: peer [p]'s
   acceptable peers are [rows.(p).(0 .. len.(p)-1)], increasing; rows
   grow by amortized doubling and shrink in place, so arrivals and
   departures patch the acceptance graph without reallocating the
   instance. *)
type backend =
  | Dense of { off : int array; data : int array }
  | Complete
  | Complete_minus of { alive : int array; pos : int array }
  | Dynamic of { rows : int array array; len : int array }

type t = {
  backend : backend;
  b : int array;  (* by rank label *)
  ranking : Ranking.t;
  slot_total : int;
  n : int;
}

let n t = t.n
let slots t p = t.b.(p)
let slot_total t = t.slot_total
let rank_to_id t r = Ranking.peer_at t.ranking r
let id_to_rank t id = Ranking.rank t.ranking id

let backend_kind t =
  match t.backend with
  | Dense _ -> `Dense
  | Complete -> `Complete
  | Complete_minus _ -> `Complete_minus
  | Dynamic _ -> `Dynamic

type raw_backend =
  | Raw_dense of { off : int array; data : int array }
  | Raw_complete
  | Raw_complete_minus of { alive : int array; pos : int array }
  | Raw_dynamic of { rows : int array array; len : int array }

let raw_backend t =
  match t.backend with
  | Dense { off; data } -> Raw_dense { off; data }
  | Complete -> Raw_complete
  | Complete_minus { alive; pos } -> Raw_complete_minus { alive; pos }
  | Dynamic { rows; len } -> Raw_dynamic { rows; len }

let raw_slots t = t.b

let degree t p =
  match t.backend with
  | Dense { off; _ } -> off.(p + 1) - off.(p)
  | Complete -> t.n - 1
  | Complete_minus { alive; pos } -> if pos.(p) < 0 then 0 else Array.length alive - 1
  | Dynamic { len; _ } -> len.(p)

let acceptable_at t p i =
  match t.backend with
  | Dense { off; data } -> data.(off.(p) + i)
  | Complete -> if i < p then i else i + 1
  | Complete_minus { alive; pos } ->
      let k = pos.(p) in
      alive.(if i < k then i else i + 1)
  | Dynamic { rows; _ } -> rows.(p).(i)

let accepts t p q =
  p <> q
  && p >= 0 && p < t.n && q >= 0 && q < t.n
  &&
  match t.backend with
  | Complete -> true
  | Complete_minus { pos; _ } -> pos.(p) >= 0 && pos.(q) >= 0
  | Dense { off; data } ->
      let lo = ref off.(p) and hi = ref (off.(p + 1) - 1) in
      let found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = data.(mid) in
        if x = q then found := true else if x < q then lo := mid + 1 else hi := mid - 1
      done;
      !found
  | Dynamic { rows; len } ->
      let row = rows.(p) in
      let lo = ref 0 and hi = ref (len.(p) - 1) in
      let found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = row.(mid) in
        if x = q then found := true else if x < q then lo := mid + 1 else hi := mid - 1
      done;
      !found

let iter_acceptable t p f =
  match t.backend with
  | Dense { off; data } ->
      for i = off.(p) to off.(p + 1) - 1 do
        f data.(i)
      done
  | Complete ->
      for q = 0 to p - 1 do
        f q
      done;
      for q = p + 1 to t.n - 1 do
        f q
      done
  | Complete_minus { alive; pos } ->
      if pos.(p) >= 0 then
        Array.iter (fun q -> if q <> p then f q) alive
  | Dynamic { rows; len } ->
      let row = rows.(p) in
      for i = 0 to len.(p) - 1 do
        f row.(i)
      done

let iter_acceptable_from t p ~start f =
  let len = degree t p in
  for i = start to len - 1 do
    f (acceptable_at t p i)
  done

let fold_acceptable t p f init =
  match t.backend with
  | Dense { off; data } ->
      let acc = ref init in
      for i = off.(p) to off.(p + 1) - 1 do
        acc := f !acc data.(i)
      done;
      !acc
  | _ ->
      let acc = ref init in
      iter_acceptable t p (fun q -> acc := f !acc q);
      !acc

(* Smallest row index whose acceptable peer outranks [rank] (i.e. has a
   strictly larger rank label), or [degree t p] if none does.  Rows are
   increasing, so this is where a "only peers ranked after me" scan
   starts — [Greedy.stable_config] uses it to skip the prefix that the
   legacy code walked and discarded. *)
let first_index_above t p ~rank =
  match t.backend with
  | Complete ->
      (* Smallest acceptable value > rank is rank+1, skipping p itself;
         its row index shifts down by one past p.  If it overflows the
         universe, return the degree (n-1). *)
      let v = rank + 1 in
      let v = if v = p then v + 1 else v in
      if v >= t.n then t.n - 1 else if v < p then v else v - 1
  | Dense { off; data } ->
      let base = off.(p) in
      let lo = ref base and hi = ref off.(p + 1) in
      (* invariant: data.(i) <= rank for i < lo; data.(i) > rank for i >= hi *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if data.(mid) <= rank then lo := mid + 1 else hi := mid
      done;
      !lo - base
  | Complete_minus { alive; pos } ->
      if pos.(p) < 0 then 0
      else begin
        let len = Array.length alive in
        let lo = ref 0 and hi = ref len in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if alive.(mid) <= rank then lo := mid + 1 else hi := mid
        done;
        (* alive index -> row index: entries before [p]'s own position
           shift down by one. *)
        if !lo <= pos.(p) then !lo else !lo - 1
      end
  | Dynamic { rows; len } ->
      let row = rows.(p) in
      let lo = ref 0 and hi = ref len.(p) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if row.(mid) <= rank then lo := mid + 1 else hi := mid
      done;
      !lo

let acceptable t p =
  match t.backend with
  | Dense { off; data } -> Array.sub data off.(p) (off.(p + 1) - off.(p))
  | Dynamic { rows; len } -> Array.sub rows.(p) 0 len.(p)
  | _ ->
      let len = degree t p in
      Array.init len (fun i -> acceptable_at t p i)

let check_b ~n b =
  if Array.length b <> n then invalid_arg "Instance: |b| must equal the number of peers";
  Array.iter (fun k -> if k < 0 then invalid_arg "Instance: negative slot budget") b

let finish ~backend ~ranking ~b ~n =
  if Ranking.size ranking <> n then invalid_arg "Instance: ranking size mismatch";
  let b_by_rank = Array.init n (fun r -> b.(Ranking.peer_at ranking r)) in
  { backend; b = b_by_rank; ranking; slot_total = Array.fold_left ( + ) 0 b; n }

let build ~ranking ~raw_adj ~b =
  let n = Array.length raw_adj in
  check_b ~n b;
  if Ranking.size ranking <> n then invalid_arg "Instance: ranking size mismatch";
  (* Relabel peers by rank: segment r of [data] lists the ranks acceptable
     to the peer of rank r, in increasing rank order. *)
  let off = Array.make (n + 1) 0 in
  for r = 0 to n - 1 do
    off.(r + 1) <- off.(r) + Array.length raw_adj.(Ranking.peer_at ranking r)
  done;
  let data = Array.make off.(n) 0 in
  for r = 0 to n - 1 do
    let row = raw_adj.(Ranking.peer_at ranking r) in
    let base = off.(r) in
    let len = Array.length row in
    for i = 0 to len - 1 do
      data.(base + i) <- Ranking.rank ranking row.(i)
    done;
    if len > 1 then begin
      let seg = Array.sub data base len in
      Array.sort Int.compare seg;
      Array.blit seg 0 data base len
    end
  done;
  finish ~backend:(Dense { off; data }) ~ranking ~b ~n

let create ?ranking ~graph ~b () =
  let n = Undirected.vertex_count graph in
  check_b ~n b;
  match ranking with
  | Some r -> build ~ranking:r ~raw_adj:(Undirected.adjacency_arrays graph) ~b
  | None ->
      (* Identity ranking: the CSR snapshot is already rank-labelled and
         row-sorted — freeze it directly, no per-row arrays. *)
      let off, data = Undirected.adjacency_csr graph in
      finish ~backend:(Dense { off; data }) ~ranking:(Ranking.identity n) ~b ~n

let of_adjacency ?ranking ~adj ~b () =
  let n = Array.length adj in
  let ranking = match ranking with Some r -> r | None -> Ranking.identity n in
  check_b ~n b;
  Array.iteri
    (fun u row ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Instance.of_adjacency: vertex out of range";
          if v = u then invalid_arg "Instance.of_adjacency: self-loop")
        row)
    adj;
  build ~ranking ~raw_adj:adj ~b

let complete ?ranking ~n ~b () =
  if n < 0 then invalid_arg "Instance.complete: negative size";
  check_b ~n b;
  let ranking = match ranking with Some r -> r | None -> Ranking.identity n in
  finish ~backend:Complete ~ranking ~b ~n

let complete_minus ?ranking ~n ~b ~removed () =
  if n < 0 then invalid_arg "Instance.complete_minus: negative size";
  check_b ~n b;
  let ranking = match ranking with Some r -> r | None -> Ranking.identity n in
  let gone = Array.make n false in
  List.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Instance.complete_minus: peer out of range";
      gone.(Ranking.rank ranking id) <- true)
    removed;
  let survivors = ref 0 in
  for r = 0 to n - 1 do
    if not gone.(r) then incr survivors
  done;
  let alive = Array.make !survivors 0 in
  let pos = Array.make n (-1) in
  let k = ref 0 in
  for r = 0 to n - 1 do
    if not gone.(r) then begin
      alive.(!k) <- r;
      pos.(r) <- !k;
      incr k
    end
  done;
  finish ~backend:(Complete_minus { alive; pos }) ~ranking ~b ~n

(* Dynamic (churn) backend.  Identity ranking only: mutations are given
   in rank labels, and relabelling under a non-trivial ranking would
   make the in-place patches ambiguous. *)
let dynamic ~graph ~b () =
  let n = Undirected.vertex_count graph in
  check_b ~n b;
  let off, data = Undirected.adjacency_csr graph in
  let len = Array.init n (fun p -> off.(p + 1) - off.(p)) in
  let rows =
    Array.init n (fun p ->
        let d = len.(p) in
        let buf = Array.make (max 4 d) 0 in
        Array.blit data off.(p) buf 0 d;
        buf)
  in
  finish ~backend:(Dynamic { rows; len }) ~ranking:(Ranking.identity n) ~b ~n

let dyn_fields t =
  match t.backend with
  | Dynamic { rows; len } -> (rows, len)
  | _ -> invalid_arg "Instance: dynamic backend required"

(* Sorted insert into [p]'s row, growing the buffer by doubling.  No-op
   when the edge is already present (mirrors [Undirected.add_edge]). *)
let row_insert rows len p q =
  let buf = rows.(p) in
  let d = len.(p) in
  let lo = ref 0 and hi = ref d in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if buf.(mid) < q then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  if i < d && buf.(i) = q then false
  else begin
    let buf =
      if d < Array.length buf then buf
      else begin
        let grown = Array.make (max 4 (2 * d)) 0 in
        Array.blit buf 0 grown 0 d;
        rows.(p) <- grown;
        grown
      end
    in
    Array.blit buf i buf (i + 1) (d - i);
    buf.(i) <- q;
    len.(p) <- d + 1;
    true
  end

let row_remove rows len p q =
  let buf = rows.(p) in
  let d = len.(p) in
  let rec find i = if i >= d then -1 else if buf.(i) = q then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    Array.blit buf (i + 1) buf i (d - 1 - i);
    len.(p) <- d - 1
  end

let dyn_add_edge t p q =
  if p = q then invalid_arg "Instance.dyn_add_edge: self-loop";
  if p < 0 || p >= t.n || q < 0 || q >= t.n then
    invalid_arg "Instance.dyn_add_edge: peer out of range";
  let rows, len = dyn_fields t in
  if row_insert rows len p q then ignore (row_insert rows len q p)

let dyn_isolate t p =
  if p < 0 || p >= t.n then invalid_arg "Instance.dyn_isolate: peer out of range";
  let rows, len = dyn_fields t in
  let row = rows.(p) in
  for i = 0 to len.(p) - 1 do
    row_remove rows len row.(i) p
  done;
  len.(p) <- 0
