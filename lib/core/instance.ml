module Undirected = Stratify_graph.Undirected

type t = {
  adj : int array array;  (* by rank label; each row increasing (= best first) *)
  b : int array;  (* by rank label *)
  ranking : Ranking.t;
  slot_total : int;
}

let build ~ranking ~raw_adj ~b =
  let n = Array.length raw_adj in
  if Array.length b <> n then invalid_arg "Instance: |b| must equal the number of peers";
  Array.iter (fun k -> if k < 0 then invalid_arg "Instance: negative slot budget") b;
  if Ranking.size ranking <> n then invalid_arg "Instance: ranking size mismatch";
  (* Relabel peers by rank: row r of [adj] lists the ranks acceptable to the
     peer of rank r, in increasing rank order. *)
  let adj =
    Array.init n (fun r ->
        let id = Ranking.peer_at ranking r in
        let row = Array.map (fun w -> Ranking.rank ranking w) raw_adj.(id) in
        Array.sort compare row;
        row)
  in
  let b_by_rank = Array.init n (fun r -> b.(Ranking.peer_at ranking r)) in
  { adj; b = b_by_rank; ranking; slot_total = Array.fold_left ( + ) 0 b }

let create ?ranking ~graph ~b () =
  let n = Undirected.vertex_count graph in
  let ranking = match ranking with Some r -> r | None -> Ranking.identity n in
  build ~ranking ~raw_adj:(Undirected.adjacency_arrays graph) ~b

let of_adjacency ?ranking ~adj ~b () =
  let n = Array.length adj in
  let ranking = match ranking with Some r -> r | None -> Ranking.identity n in
  Array.iteri
    (fun u row ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Instance.of_adjacency: vertex out of range";
          if v = u then invalid_arg "Instance.of_adjacency: self-loop")
        row)
    adj;
  build ~ranking ~raw_adj:adj ~b

let n t = Array.length t.adj
let slots t p = t.b.(p)
let slot_total t = t.slot_total
let acceptable t p = t.adj.(p)
let degree t p = Array.length t.adj.(p)

let accepts t p q =
  let row = t.adj.(p) in
  let lo = ref 0 and hi = ref (Array.length row - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = row.(mid) in
    if x = q then found := true else if x < q then lo := mid + 1 else hi := mid - 1
  done;
  !found

let rank_to_id t r = Ranking.peer_at t.ranking r
let id_to_rank t id = Ranking.rank t.ranking id
