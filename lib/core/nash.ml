module Profile = Stratify_bandwidth.Profile

type analysis = {
  population_b0 : int;
  deviations : (float * int * float * float) array;
  is_equilibrium : bool;
}

let best_response ~n ~d ~profile ~population_b0 ~my_upload ~candidates =
  let sweep =
    Share_ratio.sweep_slots ~population_b0 ~n ~d ~profile ~my_upload ~slots:candidates ()
  in
  Array.fold_left
    (fun ((_, best_ratio) as best) (s, ratio) ->
      if ratio > best_ratio then (s, ratio) else best)
    (fst sweep.(0) |> fun s -> (s, snd sweep.(0)))
    sweep

let symmetric_profile_analysis ~n ~d ~profile ~population_b0 ~candidates
    ?(probes = [| 0.1; 0.25; 0.5; 0.75; 0.9 |]) ?(tolerance = 0.05) () =
  if not (Array.exists (fun s -> s = population_b0) candidates) then
    invalid_arg "Nash.symmetric_profile_analysis: candidates must include population_b0";
  let deviations =
    Array.map
      (fun quantile ->
        let my_upload = Profile.quantile profile quantile in
        let sweep =
          Share_ratio.sweep_slots ~population_b0 ~n ~d ~profile ~my_upload ~slots:candidates ()
        in
        let status_quo =
          snd (Array.get sweep (Option.get (Array.find_index (fun (s, _) -> s = population_b0) sweep)))
        in
        let best_s, best_ratio =
          Array.fold_left
            (fun ((_, br) as best) (s, r) -> if r > br then (s, r) else best)
            (population_b0, status_quo) sweep
        in
        (my_upload, best_s, status_quo, best_ratio))
      probes
  in
  let is_equilibrium =
    Array.for_all
      (fun (_, _, status_quo, best_ratio) ->
        best_ratio <= status_quo *. (1. +. tolerance) +. 1e-12)
      deviations
  in
  { population_b0; deviations; is_equilibrium }
