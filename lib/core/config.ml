(* Mate storage is one flat [int array]: peer [p]'s mates live in
   [data.(off.(p)) .. data.(off.(p) + deg.(p) - 1)], sorted increasingly
   (= best-ranked first).  Each segment's capacity is
   [min b(p) (acceptance degree of p)], so total storage is O(n·b̄) even
   on a complete acceptance graph.  [connect]/[disconnect] are O(b)
   in-place shifts — no list cells, no allocation on the dynamics' hot
   path — and [degree]/[worst_mate]/[free_slots] are O(1) reads. *)
type t = {
  instance : Instance.t;
  off : int array;  (* n+1 segment offsets into [data] *)
  data : int array;
  deg : int array;  (* current mate count per peer *)
  mutable edges : int;
}

let empty instance =
  let n = Instance.n instance in
  let off = Array.make (n + 1) 0 in
  (* [`Dynamic] degrees change after construction, so capacity must be
     the full budget; the frozen backends clamp to the degree. *)
  let clamp_degree =
    match Instance.backend_kind instance with `Dynamic -> false | _ -> true
  in
  for p = 0 to n - 1 do
    let cap =
      if clamp_degree then min (Instance.slots instance p) (Instance.degree instance p)
      else Instance.slots instance p
    in
    off.(p + 1) <- off.(p) + cap
  done;
  { instance; off; data = Array.make off.(n) (-1); deg = Array.make n 0; edges = 0 }

let instance t = t.instance
let degree t p = t.deg.(p)
let free_slots t p = Instance.slots t.instance p - t.deg.(p)
let is_full t p = free_slots t p <= 0
let mate_at t p i = t.data.(t.off.(p) + i)

let mates t p =
  let base = t.off.(p) in
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(base + i) :: acc) in
  go (t.deg.(p) - 1) []

let iter_mates t p f =
  let base = t.off.(p) in
  for i = 0 to t.deg.(p) - 1 do
    f t.data.(base + i)
  done

let best_mate t p = if t.deg.(p) = 0 then None else Some t.data.(t.off.(p))

(* O(1): segments are sorted, so the worst mate is the last entry.
   [Blocking.would_accept] calls this on every probe of the dynamics'
   innermost loop.  [worst_rank] is the allocation-free variant ([-1]
   when unmated) that the hot path uses instead of the option. *)
let worst_rank t p =
  let d = t.deg.(p) in
  if d = 0 then -1 else t.data.(t.off.(p) + d - 1)

let worst_mate t p = let w = worst_rank t p in if w < 0 then None else Some w

(* Segments are increasing and short (≤ b), so an early-exit scan over
   the flat array beats anything fancier; all comparisons are immediate
   int compares. *)
let mated t p q =
  let base = t.off.(p) and d = t.deg.(p) in
  let rec go i =
    i < d
    &&
    let x = t.data.(base + i) in
    if x >= q then x = q else go (i + 1)
  in
  go 0

(* Insert [q] into [p]'s sorted segment, shifting the tail right.  The
   caller guarantees a free slot, so [base + d] is within capacity.
   Scanning from the end makes ascending-order insertion (the greedy
   builder's pattern) O(1). *)
let insert t p q =
  let base = t.off.(p) in
  let d = t.deg.(p) in
  let i = ref (base + d - 1) in
  while !i >= base && t.data.(!i) > q do
    t.data.(!i + 1) <- t.data.(!i);
    decr i
  done;
  t.data.(!i + 1) <- q;
  t.deg.(p) <- d + 1

(* Remove [q] from [p]'s segment, shifting the tail left.  Returns
   whether [q] was present. *)
let remove t p q =
  let base = t.off.(p) in
  let d = t.deg.(p) in
  let rec find i = if i >= d then -1 else if t.data.(base + i) = q then i else find (i + 1) in
  let i = find 0 in
  i >= 0
  && begin
       for j = base + i to base + d - 2 do
         t.data.(j) <- t.data.(j + 1)
       done;
       t.deg.(p) <- d - 1;
       true
     end

let connect t p q =
  if p = q then invalid_arg "Config.connect: self-collaboration";
  if not (Instance.accepts t.instance p q) then
    invalid_arg "Config.connect: pair not in the acceptance graph";
  if mated t p q then invalid_arg "Config.connect: already mates";
  if free_slots t p <= 0 || free_slots t q <= 0 then
    invalid_arg "Config.connect: no free slot";
  insert t p q;
  insert t q p;
  t.edges <- t.edges + 1

let disconnect t p q =
  if not (remove t p q) then invalid_arg "Config.disconnect: not mates";
  ignore (remove t q p);
  t.edges <- t.edges - 1

let drop_worst t p =
  let w = worst_rank t p in
  if w < 0 then None
  else begin
    disconnect t p w;
    Some w
  end

let edge_count t = t.edges

let iter_pairs f t =
  let n = Array.length t.deg in
  for p = 0 to n - 1 do
    let base = t.off.(p) in
    for i = 0 to t.deg.(p) - 1 do
      let q = t.data.(base + i) in
      if p < q then f p q
    done
  done

let copy t =
  {
    instance = t.instance;
    off = t.off;  (* immutable after [empty] — safe to share *)
    data = Array.copy t.data;
    deg = Array.copy t.deg;
    edges = t.edges;
  }

(* Both configs come from the same instance (documented contract), so
   their segment offsets coincide and per-peer comparison is a flat
   int-array scan. *)
let same_mates a b p =
  let d = a.deg.(p) in
  d = b.deg.(p)
  &&
  let base = a.off.(p) in
  let rec go i = i >= d || (a.data.(base + i) = b.data.(base + i) && go (i + 1)) in
  go 0

let equal a b =
  a.edges = b.edges
  && begin
       let n = Array.length a.deg in
       let rec check p = p >= n || (same_mates a b p && check (p + 1)) in
       check 0
     end

let signature t =
  let buf = Buffer.create (max 16 (16 * t.edges)) in
  let n = Array.length t.deg in
  for p = 0 to n - 1 do
    let base = t.off.(p) in
    for i = 0 to t.deg.(p) - 1 do
      let q = t.data.(base + i) in
      if p < q then begin
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int q);
        Buffer.add_char buf ';'
      end
    done
  done;
  Buffer.contents buf

let to_adjacency t =
  Array.init (Array.length t.deg) (fun p ->
      let base = t.off.(p) in
      Array.init t.deg.(p) (fun i -> t.data.(base + i)))

(* Bulk adoption of a band-local configuration: local peer [lp] becomes
   global peer [shift + lp].  The caller (Shard.stable_config) guarantees
   that [local] is a configuration of the rank window
   [shift, shift + n_local) of [t]'s instance — same budgets, acceptance
   restricted to the window — and that [t]'s segments in the window are
   still empty.  Local segments are sorted and within capacity, and the
   relabelling is a constant shift, so the copy is a flat O(edges) blit:
   no per-pair acceptance checks, searches, or shifts, which is what lets
   the sharded matching stitch 10⁶-peer bands without redoing the
   greedy's insertion work serially. *)
let absorb t local ~shift =
  let ln = Array.length local.deg in
  if shift < 0 || shift + ln > Array.length t.deg then
    invalid_arg "Config.absorb: band outside the population";
  for lp = 0 to ln - 1 do
    let p = shift + lp in
    let d = local.deg.(lp) in
    if t.deg.(p) <> 0 then invalid_arg "Config.absorb: target peer already mated";
    if d > t.off.(p + 1) - t.off.(p) then invalid_arg "Config.absorb: band mates exceed capacity";
    let lbase = local.off.(lp) and base = t.off.(p) in
    for i = 0 to d - 1 do
      t.data.(base + i) <- shift + local.data.(lbase + i)
    done;
    t.deg.(p) <- d
  done;
  t.edges <- t.edges + local.edges

let of_pairs instance pairs =
  let t = empty instance in
  List.iter (fun (p, q) -> connect t p q) pairs;
  t

let raw_off t = t.off
let raw_data t = t.data
let raw_deg t = t.deg
