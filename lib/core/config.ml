type t = {
  instance : Instance.t;
  mates : int list array;  (* each list increasing = best-ranked first *)
  worst : int array;  (* cached last element of mates.(p); -1 when unmated *)
  mutable edges : int;
}

let empty instance =
  let n = Instance.n instance in
  { instance; mates = Array.make n []; worst = Array.make n (-1); edges = 0 }

let instance t = t.instance
let degree t p = List.length t.mates.(p)
let free_slots t p = Instance.slots t.instance p - degree t p
let is_full t p = free_slots t p <= 0
let mates t p = t.mates.(p)
let best_mate t p = match t.mates.(p) with [] -> None | q :: _ -> Some q

(* O(1): the worst mate is the largest rank label, cached in [worst].
   [Blocking.would_accept] calls this on every probe of the dynamics'
   innermost loop, so it must not walk the list. *)
let worst_mate t p = let w = t.worst.(p) in if w < 0 then None else Some w

let rec mem_sorted q = function
  | [] -> false
  | x :: rest -> x = q || (x < q && mem_sorted q rest)

(* Mate lists are increasing, so anything past the cached worst rank is
   certainly absent — the common non-mate probe exits without scanning. *)
let mated t p q = q <= t.worst.(p) && mem_sorted q t.mates.(p)

let insert_sorted q l =
  let rec go = function
    | [] -> [ q ]
    | x :: rest as all -> if q < x then q :: all else x :: go rest
  in
  go l

let rec last_or_none = function [] -> -1 | [ x ] -> x | _ :: rest -> last_or_none rest

let connect t p q =
  if p = q then invalid_arg "Config.connect: self-collaboration";
  if not (Instance.accepts t.instance p q) then
    invalid_arg "Config.connect: pair not in the acceptance graph";
  if mated t p q then invalid_arg "Config.connect: already mates";
  if free_slots t p <= 0 || free_slots t q <= 0 then
    invalid_arg "Config.connect: no free slot";
  t.mates.(p) <- insert_sorted q t.mates.(p);
  t.mates.(q) <- insert_sorted p t.mates.(q);
  if q > t.worst.(p) then t.worst.(p) <- q;
  if p > t.worst.(q) then t.worst.(q) <- p;
  t.edges <- t.edges + 1

let disconnect t p q =
  if not (mated t p q) then invalid_arg "Config.disconnect: not mates";
  t.mates.(p) <- List.filter (fun x -> x <> q) t.mates.(p);
  t.mates.(q) <- List.filter (fun x -> x <> p) t.mates.(q);
  if t.worst.(p) = q then t.worst.(p) <- last_or_none t.mates.(p);
  if t.worst.(q) = p then t.worst.(q) <- last_or_none t.mates.(q);
  t.edges <- t.edges - 1

let drop_worst t p =
  match worst_mate t p with
  | None -> None
  | Some q ->
      disconnect t p q;
      Some q

let edge_count t = t.edges

let iter_pairs f t =
  Array.iteri (fun p l -> List.iter (fun q -> if p < q then f p q) l) t.mates

let copy t =
  {
    instance = t.instance;
    mates = Array.copy t.mates;
    worst = Array.copy t.worst;
    edges = t.edges;
  }

let equal a b =
  a.edges = b.edges
  && begin
       let n = Array.length a.mates in
       let rec check p = p >= n || (a.mates.(p) = b.mates.(p) && check (p + 1)) in
       check 0
     end

let signature t =
  let buf = Buffer.create (16 * t.edges) in
  iter_pairs
    (fun p q ->
      Buffer.add_string buf (string_of_int p);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int q);
      Buffer.add_char buf ';')
    t;
  Buffer.contents buf

let to_adjacency t = Array.map Array.of_list t.mates

let of_pairs instance pairs =
  let t = empty instance in
  List.iter (fun (p, q) -> connect t p q) pairs;
  t
