(* Mate storage is one flat [int array]: peer [p]'s mates live in
   [data.(off.(p)) .. data.(off.(p) + deg.(p) - 1)], sorted increasingly
   (= best-ranked first).  Each segment's capacity is
   [min b(p) (acceptance degree of p)], so total storage is O(n·b̄) even
   on a complete acceptance graph.  [connect]/[disconnect] are O(b)
   in-place shifts — no list cells, no allocation on the dynamics' hot
   path — and [degree]/[worst_mate]/[free_slots] are O(1) reads.

   Two derived structure-of-arrays views are maintained alongside the
   segments (DESIGN.md §13):

   - [thresh.(p)] encodes [Blocking.would_accept] as a single load:
     [max_int] while p has a free slot, otherwise its worst mate's rank
     ([-1] when full and unmated, i.e. b(p) = 0 — no rank label is
     [< -1], so such a peer accepts nobody).  The invariant
     "q < thresh.(p)  ⟺  p would accept q" holds for every q ≥ 0.

   - [mask.(p)] is a word-packed 63-bit occupancy filter of the mate
     set: bit [q mod 63] is set whenever q is a mate of p.  A clear bit
     proves non-matedness with one load; a set bit falls back to the
     exact segment scan.  The filter is sound for any budget, but only
     selective when b̄ ≤ 63 (beyond that it saturates), so [use_mask]
     defaults to [bmax ≤ 63] and the flat scan remains the reference
     path — [set_use_mask] lets the equivalence tests force either. *)
type t = {
  instance : Instance.t;
  off : int array;  (* n+1 segment offsets into [data] *)
  data : int array;
  deg : int array;  (* current mate count per peer *)
  bs : int array;  (* slot budgets, shared with the instance *)
  thresh : int array;  (* acceptance threshold; would_accept p q ⟺ q < thresh.(p) *)
  mask : int array;  (* 63-bit mate filter over q mod 63 *)
  tpow : int;  (* leaf count of [tmax]: smallest power of two ≥ max 1 n *)
  tmax : int array;  (* max segment tree over [thresh]; leaves at tpow + q *)
  mutable use_mask : bool;
  mutable edges : int;
}

let mask_bits = 63

(* [tmax] turns the accepts-back sweep inside out: instead of probing
   thresh.(q) one q at a time, "leftmost q in [lo, hi) with
   thresh.(q) > p" descends the max tree in O(log n) — the
   complete-backend [Blocking] scan drops from O(n) per peer to
   O((b + 1) log n).  Leaves past n hold [min_int] (no rank label
   exceeds it is ever sought), so padding can never be returned. *)

let rec tree_up (tmax : int array) i =
  if i >= 1 then begin
    let l = Array.unsafe_get tmax (2 * i) and r = Array.unsafe_get tmax ((2 * i) + 1) in
    let m = if l < r then r else l in
    if m <> Array.unsafe_get tmax i then begin
      Array.unsafe_set tmax i m;
      tree_up tmax (i / 2)
    end
  end

(* Leftmost q in [lo, hi) with thresh.(q) > p, else -1.  [node] covers
   [nlo, nlo + size); subtrees whose max is ≤ p are pruned whole, so
   the leftmost-descent visits O(log n) nodes.  Non-tail recursion
   depth is log2 tpow ≤ 62; no allocation. *)
let rec tree_first (tmax : int array) (p : int) lo hi node nlo size =
  if nlo + size <= lo || nlo >= hi || Array.unsafe_get tmax node <= p then -1
  else if size = 1 then nlo
  else begin
    let half = size lsr 1 in
    let l = tree_first tmax p lo hi (2 * node) nlo half in
    if l >= 0 then l else tree_first tmax p lo hi ((2 * node) + 1) (nlo + half) half
  end

let empty instance =
  let n = Instance.n instance in
  let off = Array.make (n + 1) 0 in
  (* [`Dynamic] degrees change after construction, so capacity must be
     the full budget; the frozen backends clamp to the degree. *)
  let clamp_degree =
    match Instance.backend_kind instance with `Dynamic -> false | _ -> true
  in
  for p = 0 to n - 1 do
    let cap =
      if clamp_degree then min (Instance.slots instance p) (Instance.degree instance p)
      else Instance.slots instance p
    in
    off.(p + 1) <- off.(p) + cap
  done;
  let bs = Instance.raw_slots instance in
  let thresh = Array.make (max 1 n) 0 in
  let bmax = ref 0 in
  for p = 0 to n - 1 do
    let b = bs.(p) in
    if b > !bmax then bmax := b;
    (* deg = 0: a free slot iff b > 0; full-and-unmated (b = 0) accepts
       nobody. *)
    thresh.(p) <- (if b > 0 then max_int else -1)
  done;
  let tpow =
    let m = ref 1 in
    while !m < n do
      m := !m * 2
    done;
    !m
  in
  let tmax = Array.make (2 * tpow) min_int in
  for p = 0 to n - 1 do
    tmax.(tpow + p) <- thresh.(p)
  done;
  for i = tpow - 1 downto 1 do
    tmax.(i) <- max tmax.(2 * i) tmax.((2 * i) + 1)
  done;
  {
    instance;
    off;
    data = Array.make off.(n) (-1);
    deg = Array.make n 0;
    bs;
    thresh;
    mask = Array.make (max 1 n) 0;
    tpow;
    tmax;
    use_mask = !bmax <= mask_bits;
    edges = 0;
  }

let instance t = t.instance
let degree t p = t.deg.(p)
let free_slots t p = t.bs.(p) - t.deg.(p)
let is_full t p = free_slots t p <= 0
let mate_at t p i = t.data.(t.off.(p) + i)

let mates t p =
  let base = t.off.(p) in
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(base + i) :: acc) in
  go (t.deg.(p) - 1) []

let iter_mates t p f =
  let base = t.off.(p) in
  for i = 0 to t.deg.(p) - 1 do
    f t.data.(base + i)
  done

let best_mate t p = if t.deg.(p) = 0 then None else Some t.data.(t.off.(p))

(* O(1): segments are sorted, so the worst mate is the last entry.
   [Blocking.would_accept] is one load of the derived [thresh] array;
   [worst_rank] is the allocation-free variant ([-1] when unmated) for
   callers that need the rank even with a free slot open. *)
let worst_rank t p =
  let d = t.deg.(p) in
  if d = 0 then -1 else t.data.(t.off.(p) + d - 1)

let worst_mate t p = let w = worst_rank t p in if w < 0 then None else Some w

(* Re-derive [thresh.(p)] after any change to p's degree or worst mate,
   and propagate into the max tree — [tree_up] stops at the first
   ancestor whose max is unchanged, so most refreshes touch one or two
   nodes.  Called from [insert]/[remove]. *)
let[@inline always] refresh_thresh t p =
  let d = Array.unsafe_get t.deg p in
  let v =
    if d < Array.unsafe_get t.bs p then max_int
    else if d = 0 then -1
    else Array.unsafe_get t.data (Array.unsafe_get t.off p + d - 1)
  in
  if v <> Array.unsafe_get t.thresh p then begin
    Array.unsafe_set t.thresh p v;
    let leaf = t.tpow + p in
    Array.unsafe_set t.tmax leaf v;
    tree_up t.tmax (leaf / 2)
  end

(* Leftmost q in [lo, hi) that would accept p (thresh.(q) > p), or -1 —
   the tree-backed form of the accepts-back sweep.  O(log n). *)
let first_accepting t ~lo ~hi p =
  if lo >= hi then -1 else tree_first t.tmax p lo hi 1 0 t.tpow

(* Rebuild [mask.(p)] from the segment — removals can clear a bit only
   if no remaining mate shares the residue, so the O(b) rebuild is the
   simplest sound update. *)
let[@inline always] refresh_mask t p =
  let base = t.off.(p) and d = t.deg.(p) in
  let m = ref 0 in
  for i = 0 to d - 1 do
    m := !m lor (1 lsl (Array.unsafe_get t.data (base + i) mod mask_bits))
  done;
  t.mask.(p) <- !m

(* Exact membership: early-exit scan over the short, sorted, flat
   segment; all comparisons are immediate int compares.  The scan is a
   module-level function with explicit state — a local [let rec] would
   box a closure per call, and membership sits on the dynamics' hot
   path (every [is_blocking] probe that survives the mask). *)
(* The [int array] annotation is load-bearing (as in [Blocking]'s
   kernels): unannotated, the function generalizes and every compare
   becomes a [caml_compare] C call. *)
let rec seg_mem (data : int array) base d (q : int) i =
  i < d
  &&
  let x = Array.unsafe_get data (base + i) in
  if x >= q then x = q else seg_mem data base d q (i + 1)

let mated_linear t p q = seg_mem t.data t.off.(p) t.deg.(p) q 0

(* Filtered membership: a clear mask bit proves q unmated in one load;
   a set bit defers to the exact scan.  With [use_mask] off this IS the
   linear scan — the qcheck equivalence properties pin the two paths
   against each other. *)
let mated t p q =
  if t.use_mask && t.mask.(p) land (1 lsl (q mod mask_bits)) = 0 then false
  else mated_linear t p q

let mask_enabled t = t.use_mask
let set_use_mask t b = t.use_mask <- b

(* Insert [q] into [p]'s sorted segment, shifting the tail right.  The
   caller guarantees a free slot, so [base + d] is within capacity.
   Scanning from the end makes ascending-order insertion (the greedy
   builder's pattern) O(1). *)
let insert t p q =
  let base = t.off.(p) in
  let d = t.deg.(p) in
  let i = ref (base + d - 1) in
  while !i >= base && t.data.(!i) > q do
    t.data.(!i + 1) <- t.data.(!i);
    decr i
  done;
  t.data.(!i + 1) <- q;
  t.deg.(p) <- d + 1;
  t.mask.(p) <- t.mask.(p) lor (1 lsl (q mod mask_bits));
  refresh_thresh t p

(* Remove [q] from [p]'s segment, shifting the tail left.  Returns
   whether [q] was present.  [seg_index] is static for the same reason
   as [seg_mem]: [disconnect] runs once per churn event and twice per
   displacement, and a per-call closure here showed up as 14 words per
   drop in bench.profile's repair window. *)
let rec seg_index (data : int array) base d (q : int) i =
  if i >= d then -1
  else if Array.unsafe_get data (base + i) = q then i
  else seg_index data base d q (i + 1)

let remove t p q =
  let base = t.off.(p) in
  let d = t.deg.(p) in
  let i = seg_index t.data base d q 0 in
  i >= 0
  && begin
       for j = base + i to base + d - 2 do
         t.data.(j) <- t.data.(j + 1)
       done;
       t.deg.(p) <- d - 1;
       refresh_mask t p;
       refresh_thresh t p;
       true
     end

let connect t p q =
  if p = q then invalid_arg "Config.connect: self-collaboration";
  if not (Instance.accepts t.instance p q) then
    invalid_arg "Config.connect: pair not in the acceptance graph";
  if mated t p q then invalid_arg "Config.connect: already mates";
  if free_slots t p <= 0 || free_slots t q <= 0 then
    invalid_arg "Config.connect: no free slot";
  insert t p q;
  insert t q p;
  t.edges <- t.edges + 1

let disconnect t p q =
  if not (remove t p q) then invalid_arg "Config.disconnect: not mates";
  ignore (remove t q p);
  t.edges <- t.edges - 1

(* Sentinel variant of [drop_worst]: the dynamics' hot path uses this to
   avoid boxing an option per performed initiative. *)
let drop_worst_rank t p =
  let w = worst_rank t p in
  if w >= 0 then disconnect t p w;
  w

let drop_worst t p =
  let w = drop_worst_rank t p in
  if w < 0 then None else Some w

let edge_count t = t.edges

let iter_pairs f t =
  let n = Array.length t.deg in
  for p = 0 to n - 1 do
    let base = t.off.(p) in
    for i = 0 to t.deg.(p) - 1 do
      let q = t.data.(base + i) in
      if p < q then f p q
    done
  done

let copy t =
  {
    instance = t.instance;
    off = t.off;  (* immutable after [empty] — safe to share *)
    data = Array.copy t.data;
    deg = Array.copy t.deg;
    bs = t.bs;  (* shared with the instance, never mutated *)
    thresh = Array.copy t.thresh;
    tpow = t.tpow;
    tmax = Array.copy t.tmax;
    mask = Array.copy t.mask;
    use_mask = t.use_mask;
    edges = t.edges;
  }

(* Both configs come from the same instance (documented contract), so
   their segment offsets coincide and per-peer comparison is a flat
   int-array scan. *)
let same_mates a b p =
  let d = a.deg.(p) in
  d = b.deg.(p)
  &&
  let base = a.off.(p) in
  let rec go i = i >= d || (a.data.(base + i) = b.data.(base + i) && go (i + 1)) in
  go 0

let equal a b =
  a.edges = b.edges
  && begin
       let n = Array.length a.deg in
       let rec check p = p >= n || (same_mates a b p && check (p + 1)) in
       check 0
     end

let signature t =
  let buf = Buffer.create (max 16 (16 * t.edges)) in
  let n = Array.length t.deg in
  for p = 0 to n - 1 do
    let base = t.off.(p) in
    for i = 0 to t.deg.(p) - 1 do
      let q = t.data.(base + i) in
      if p < q then begin
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int q);
        Buffer.add_char buf ';'
      end
    done
  done;
  Buffer.contents buf

let to_adjacency t =
  Array.init (Array.length t.deg) (fun p ->
      let base = t.off.(p) in
      Array.init t.deg.(p) (fun i -> t.data.(base + i)))

(* Bulk adoption of a band-local configuration: local peer [lp] becomes
   global peer [shift + lp].  The caller (Shard.stable_config) guarantees
   that [local] is a configuration of the rank window
   [shift, shift + n_local) of [t]'s instance — same budgets, acceptance
   restricted to the window — and that [t]'s segments in the window are
   still empty.  Local segments are sorted and within capacity, and the
   relabelling is a constant shift, so the copy is a flat O(edges) blit:
   no per-pair acceptance checks, searches, or shifts, which is what lets
   the sharded matching stitch 10⁶-peer bands without redoing the
   greedy's insertion work serially.  The derived thresh/mask entries are
   rebuilt once per absorbed peer, after its whole segment lands. *)
let absorb t local ~shift =
  let ln = Array.length local.deg in
  if shift < 0 || shift + ln > Array.length t.deg then
    invalid_arg "Config.absorb: band outside the population";
  for lp = 0 to ln - 1 do
    let p = shift + lp in
    let d = local.deg.(lp) in
    if t.deg.(p) <> 0 then invalid_arg "Config.absorb: target peer already mated";
    if d > t.off.(p + 1) - t.off.(p) then invalid_arg "Config.absorb: band mates exceed capacity";
    let lbase = local.off.(lp) and base = t.off.(p) in
    for i = 0 to d - 1 do
      t.data.(base + i) <- shift + local.data.(lbase + i)
    done;
    t.deg.(p) <- d;
    refresh_mask t p;
    refresh_thresh t p
  done;
  t.edges <- t.edges + local.edges

let of_pairs instance pairs =
  let t = empty instance in
  List.iter (fun (p, q) -> connect t p q) pairs;
  t

let raw_off t = t.off
let raw_data t = t.data
let raw_deg t = t.deg
let raw_thresh t = t.thresh
let raw_mask t = t.mask
