(** Random-variate samplers.

    All samplers draw from an explicit {!Rng.t}.  These cover the needs of
    the stratification experiments: rounded-normal slot budgets (§4 of the
    paper), exponential/geometric churn timers, Zipf-like popularity, and
    alias-method sampling from empirical bandwidth profiles (§6). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via the Marsaglia polar method. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with the given log-space parameters. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with intensity [rate] (mean [1/rate]). *)

val geometric : Rng.t -> p:float -> int
(** Number of Bernoulli([p]) failures before the first success; support
    starts at 0. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson counts; Knuth multiplication for small means, normal
    approximation with continuity correction beyond [lambda > 64]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial(n, p) by inversion for small [n·p], otherwise via a normal
    approximation clamped to the support. *)

(** Zipf sampler with the O(n) CDF built once: [create] then O(log n)
    [draw]s.  Use this — not the {!zipf} convenience wrapper — anywhere
    draws repeat. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  (** Precompute the CDF over ranks [1, n] with exponent [s]. *)

  val size : t -> int
  (** The [n] it was built with. *)

  val draw : t -> Rng.t -> int
  (** Zipf-distributed rank in [1, n]; binary search on the CDF. *)

  val probability : t -> int -> float
  (** Normalised mass of a rank in [1, n] (for testing). *)
end

val zipf : Rng.t -> n:int -> s:float -> int
(** One-shot convenience wrapper: [Zipf.create] + [Zipf.draw].  Rebuilds
    the O(n) CDF on every call — same stream of draws as before, but hot
    paths should hold a {!Zipf.t}. *)

val rounded_positive_normal : Rng.t -> mean:float -> sigma:float -> int
(** The paper's §4 slot-budget law: a Gaussian sample rounded to the nearest
    integer and clamped below at 1 ("rounded to the nearest positive
    integer"). *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct indices from
    [0, n-1], in uniform random order.  Raises [Invalid_argument] if
    [k > n]. *)

val pick : Rng.t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

(** Alias-method sampler for fixed discrete distributions: O(n) setup,
    O(1) per draw. *)
module Alias : sig
  type t

  val of_weights : float array -> t
  (** Build from non-negative weights (need not be normalised; total must be
      positive). *)

  val draw : t -> Rng.t -> int
  (** Sample an index with probability proportional to its weight. *)

  val probability : t -> int -> float
  (** Normalised probability of an index (for testing). *)
end
