(** Deterministic random source for experiments.

    A thin, explicit-state front-end over {!Xoshiro256}.  Every simulation
    and generator in this repository takes an [Rng.t] argument instead of
    touching [Stdlib.Random], so a run is fully determined by its seed and
    experiments are replayable bit-for-bit. *)

type t
(** Mutable random source. *)

val create : int -> t
(** [create seed] builds a source from an integer seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a statistically independent child source and advances
    [t] so that parent and child streams do not overlap.  Use one split per
    logical component (e.g. one per simulated swarm). *)

val copy : t -> t
(** Clone replaying the same future stream (for A/B comparisons). *)

val state : t -> int64 array
(** The generator's four 64-bit state words — the serializable form used
    by deterministic snapshot/restore.  [of_state (state t)] replays
    exactly the stream [t] would have produced. *)

val of_state : int64 array -> t
(** Rebuild a source from {!state} output.  Raises [Invalid_argument]
    unless given exactly four words not all zero. *)

val set_state : t -> int64 array -> unit
(** Overwrite the state in place (same validation as {!of_state}). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0,1) with 53-bit resolution. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)
