type t = { gen : Xoshiro256.t }

let create seed = { gen = Xoshiro256.create (Splitmix64.mix (Int64.of_int seed)) }

let split t =
  let child = { gen = Xoshiro256.copy t.gen } in
  Xoshiro256.jump child.gen;
  (* Advance the parent past the child's substream origin as well, so a
     second split does not reuse it. *)
  Xoshiro256.jump t.gen;
  Xoshiro256.jump t.gen;
  child

let copy t = { gen = Xoshiro256.copy t.gen }
let state t = Xoshiro256.state t.gen
let of_state words = { gen = Xoshiro256.of_state words }
let set_state t words = Xoshiro256.set_state t.gen words

let int64 t = Xoshiro256.next t.gen

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let rec int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits to avoid modulo bias. *)
    let mask_bits = bits30 t in
    let r = mask_bits mod bound in
    if mask_bits - r + (bound - 1) < 1 lsl 30 then r else int t bound
  end
  else begin
    (* Large bound: use 62 bits. *)
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else int t bound
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits of the 64-bit output, scaled to [0,1). *)
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.compare (int64 t) 0L < 0

let bernoulli t p = unit_float t < p
