let uniform rng ~lo ~hi = lo +. Rng.unit_float rng *. (hi -. lo)

let rec normal rng ~mu ~sigma =
  (* Marsaglia polar method; we discard the second variate to keep the
     sampler stateless with respect to the caller. *)
  let u = (2. *. Rng.unit_float rng) -. 1. in
  let v = (2. *. Rng.unit_float rng) -. 1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then normal rng ~mu ~sigma
  else mu +. (sigma *. u *. sqrt (-2. *. log s /. s))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log1p (-.Rng.unit_float rng) /. rate

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = Rng.unit_float rng in
    int_of_float (floor (log1p (-.u) /. log1p (-.p)))

let poisson_knuth rng lambda =
  let limit = exp (-.lambda) in
  let rec loop k prod =
    let prod = prod *. Rng.unit_float rng in
    if prod <= limit then k else loop (k + 1) prod
  in
  loop 0 1.

let poisson rng ~lambda =
  if lambda < 0. then invalid_arg "Dist.poisson: lambda must be non-negative";
  if lambda = 0. then 0
  else if lambda <= 64. then poisson_knuth rng lambda
  else
    let x = normal rng ~mu:lambda ~sigma:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n must be non-negative";
  if p < 0. || p > 1. then invalid_arg "Dist.binomial: p must be in [0,1]";
  if n = 0 || p = 0. then 0
  else if p = 1. then n
  else if float_of_int n *. p <= 32. || float_of_int n *. (1. -. p) <= 32. then begin
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng p then incr count
    done;
    !count
  end
  else
    let mean = float_of_int n *. p in
    let sd = sqrt (mean *. (1. -. p)) in
    let x = int_of_float (Float.round (normal rng ~mu:mean ~sigma:sd)) in
    max 0 (min n x)

module Zipf = struct
  type t = { cdf : float array; total : float }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
    let cdf = Array.make n 0. in
    let total = ref 0. in
    for k = 1 to n do
      total := !total +. (1. /. Float.pow (float_of_int k) s);
      cdf.(k - 1) <- !total
    done;
    { cdf; total = !total }

  let size t = Array.length t.cdf

  let draw t rng =
    let u = Rng.unit_float rng *. t.total in
    (* Binary search for the first index with cdf >= u. *)
    let rec search lo hi =
      if lo >= hi then lo + 1
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (Array.length t.cdf - 1)

  let probability t k =
    if k < 1 || k > Array.length t.cdf then invalid_arg "Dist.Zipf.probability: rank out of range";
    (if k = 1 then t.cdf.(0) else t.cdf.(k - 1) -. t.cdf.(k - 2)) /. t.total
end

let zipf rng ~n ~s = Zipf.draw (Zipf.create ~n ~s) rng

let rounded_positive_normal rng ~mean ~sigma =
  if sigma <= 0. then max 1 (int_of_float (Float.round mean))
  else max 1 (int_of_float (Float.round (normal rng ~mu:mean ~sigma)))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Dist.sample_without_replacement: need 0 <= k <= n";
  if 3 * k >= n then begin
    (* Dense case: partial Fisher-Yates over the full index range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = Rng.int_in rng i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = Rng.int rng n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end

let pick rng a =
  if Array.length a = 0 then invalid_arg "Dist.pick: empty array";
  a.(Rng.int rng (Array.length a))

module Alias = struct
  type t = { prob : float array; alias : int array; normalized : float array }

  let of_weights weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Dist.Alias.of_weights: empty weights";
    let total = Array.fold_left ( +. ) 0. weights in
    if not (total > 0.) then invalid_arg "Dist.Alias.of_weights: total weight must be positive";
    Array.iter (fun w -> if w < 0. then invalid_arg "Dist.Alias.of_weights: negative weight") weights;
    let normalized = Array.map (fun w -> w /. total) weights in
    let scaled = Array.map (fun p -> p *. float_of_int n) normalized in
    let prob = Array.make n 0. in
    let alias = Array.make n 0 in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri (fun i s -> Queue.push i (if s < 1. then small else large)) scaled;
    while not (Queue.is_empty small) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      Queue.push l (if scaled.(l) < 1. then small else large)
    done;
    Queue.iter (fun i -> prob.(i) <- 1.) small;
    Queue.iter (fun i -> prob.(i) <- 1.) large;
    { prob; alias; normalized }

  let draw t rng =
    let n = Array.length t.prob in
    let i = Rng.int rng n in
    if Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)

  let probability t i = t.normalized.(i)
end
