(** Xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).

    256-bit state, period [2^256 - 1], excellent statistical quality and a
    cheap [jump] operation yielding non-overlapping substreams — the
    workhorse generator behind {!Rng}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into a valid (non-zero)
    256-bit state. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val copy : t -> t
(** Independent clone replaying the same future stream. *)

val state : t -> int64 array
(** The four 64-bit state words, as a fresh array — the serializable form
    used by deterministic snapshot/restore ({!Stratify_serve}). *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state} output.  Raises [Invalid_argument]
    unless given exactly four words not all zero. *)

val set_state : t -> int64 array -> unit
(** Overwrite the state in place (same validation as {!of_state}). *)

val jump : t -> unit
(** [jump t] advances [t] by [2^128] steps in place.  Successive jumps carve
    the period into non-overlapping substreams suitable for parallel or
    split use. *)
