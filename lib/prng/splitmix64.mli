(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).

    A tiny, fast, full-period generator over a 64-bit state.  Its main role
    in this library is seeding: it expands a single user seed into the
    256-bit state required by {!Xoshiro256}, and it backs cheap independent
    stream derivation. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator; equal seeds give equal
    streams. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val copy : t -> t
(** [copy t] is an independent clone that will replay [t]'s future. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finaliser, usable as a 64-bit hash
    (bijective, high avalanche). *)
