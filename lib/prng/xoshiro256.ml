type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* The all-zero state is the only invalid one; SplitMix64 outputs make it
     astronomically unlikely, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let next t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let check_state words =
  if Array.length words <> 4 then
    invalid_arg
      (Printf.sprintf "Xoshiro256: state must have 4 words, got %d" (Array.length words));
  if
    Int64.logor (Int64.logor words.(0) words.(1)) (Int64.logor words.(2) words.(3)) = 0L
  then invalid_arg "Xoshiro256: the all-zero state is invalid"

let of_state words =
  check_state words;
  { s0 = words.(0); s1 = words.(1); s2 = words.(2); s3 = words.(3) }

let set_state t words =
  check_state words;
  t.s0 <- words.(0);
  t.s1 <- words.(1);
  t.s2 <- words.(2);
  t.s3 <- words.(3)

let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for b = 0 to 63 do
        if Int64.logand jump_word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
