(** Tracker requests and replayable request scripts.

    The service layer ({!Serve}) is driven by timestamped {e requests} —
    the announce/join/leave/scrape/stats vocabulary of a BitTorrent
    tracker — injected either from a {e script} (a JSON file parsed with
    the same discipline as [Plan.of_json]: unknown keys rejected at
    every level, validation errors named) or line by line from a
    stdio frontend ({!of_line}).

    A script fixes the whole world: the peer population and its churn
    process, every swarm (capacity, knowledge degree, tick-level faults,
    optional piece mode), the request schedule and the horizon.  Two
    runs of the same script are byte-identical; that is what the
    serve-suite CI job pins. *)

type kind =
  | Join of { peer : int; swarm : string }
      (** Take a slot in the swarm (error if already a member). *)
  | Leave of { peer : int; swarm : string }
      (** Release the slot (error if not a member). *)
  | Announce of { peer : int; swarm : string; want : int }
      (** Tracker announce: joins implicitly if needed, brings an
          offline peer back online, and returns up to [want] member
          peers — stable-configuration mates first, then uniform
          members. *)
  | Scrape of { swarm : string }  (** Per-swarm aggregate stats. *)
  | Stats  (** Service-wide stats. *)

type t = { at : float; kind : kind }
(** A request stamped with its injection time (simulated seconds). *)

type groups =
  | Halves  (** split the swarm into two equal groups *)
  | Heal  (** remove the partition *)
  | Groups of int array  (** explicit per-slot group labels *)

type partition = { at_tick : int; groups : groups }

type piece_spec = { pieces : int; piece_size : float; init_fraction : float; seeds : int }

type swarm_spec = {
  sid : string;  (** unique swarm id, the name requests use *)
  size : int;  (** slot capacity (the swarm simulates all slots) *)
  d : float;  (** expected knowledge degree *)
  loss : float;  (** per-link per-tick loss in [0, 1) *)
  partitions : partition list;
  piece : piece_spec option;  (** [None] = bandwidth-only mode *)
}

type world_spec = {
  n : int;  (** population size (rank universe of the oracle) *)
  d : float;  (** oracle acceptance degree *)
  b : int;  (** oracle slot budget *)
  churn_rate : float;  (** per-tick probability of one churn event *)
  bands : int;  (** rank bands for the initial stable solve (§11) *)
  swarms : swarm_spec list;
}

type script = {
  name : string;
  seed : int;
  world : world_spec;
  requests : t array;  (** same-time requests fire in array order *)
  horizon : float;
}

val validate : script -> script
(** Check every cross-field constraint — peer ids within the population,
    swarm references resolving, request times within [0, horizon],
    group arrays sized to their swarm, unique swarm ids, … — raising a
    named [Invalid_argument] on the first violation.  Returns the
    script for pipelining. *)

val of_json : Stratify_obs.Jsonx.t -> script
(** Parse and {!validate}.  Unknown keys anywhere (top level, world,
    swarm, pieces, partition or request objects) raise
    [Jsonx.Parse_error] naming the key — a typo cannot silently drop a
    request. *)

val to_json : script -> Stratify_obs.Jsonx.t
(** Round-trips: [of_json (to_json s) = s] for every valid script. *)

val load : string -> script
(** Read and parse a script file. *)

val of_line : string -> kind
(** Parse one stdio-frontend command:
    ["announce <peer> <swarm> [want]"], ["join <peer> <swarm>"],
    ["leave <peer> <swarm>"], ["scrape <swarm>"] or ["stats"].
    Raises [Invalid_argument] naming the offending line otherwise. *)
