module Rng = Stratify_prng.Rng
module Engine = Stratify_des.Engine
module Net = Stratify_net.Net
module Churn = Stratify_core.Churn
module Config = Stratify_core.Config
module Instance = Stratify_core.Instance
module Swarm = Stratify_bittorrent.Swarm
module Peer = Stratify_bittorrent.Peer
module Piece = Stratify_bittorrent.Piece
module Rate = Stratify_bittorrent.Rate
module Bw_profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Jsonx = Stratify_obs.Jsonx
module Counter = Stratify_obs.Counter
module Histogram = Stratify_obs.Histogram
module Run_manifest = Stratify_obs.Run_manifest

let c_announces = Counter.make "serve.announces"
let c_joins = Counter.make "serve.joins"
let c_leaves = Counter.make "serve.leaves"
let c_scrapes = Counter.make "serve.scrapes"
let c_stats = Counter.make "serve.stats"
let c_reconnects = Counter.make "serve.reconnects"
let c_arrivals = Counter.make "serve.arrivals"
let c_departures = Counter.make "serve.departures"
let c_ticks = Counter.make "serve.ticks"
let h_request_ns = Histogram.make "serve.request_ns"

type swarm_state = {
  sspec : Request.swarm_spec;
  swarm : Swarm.t;
  faults : Net.Tick.t option;
  created_rng : int64 array;
      (* the swarm RNG state *before* Swarm.create consumed it: restore
         replays create from here to regenerate the knowledge graph and
         piece fields bit-for-bit, then overwrites the mutable state *)
  members : int array;  (* slot -> peer id, -1 = free *)
  slot_of : (int, int) Hashtbl.t;
  mutable member_count : int;
}

type t = {
  scr : Request.script;
  engine : Engine.t;
  oracle : Churn.world;
  er_p : float;
  req_rng : Rng.t;  (* announce padding draws *)
  churn_rng : Rng.t;  (* churn process + reconnect edge draws *)
  swarms : swarm_state list;  (* in script order *)
  mutable present_count : int;
  mutable ticks : int;
  mutable announces : int;
  mutable joins : int;
  mutable leaves : int;
  mutable scrapes : int;
  mutable stats_reqs : int;
  mutable reconnects : int;
  mutable arrivals : int;
  mutable departures : int;
  mutable checksum : int;
  mutable requests_handled : int;
  mutable measure_latency : bool;
}

let script t = t.scr
let engine t = t.engine
let now t = Engine.now t.engine
let ticks t = t.ticks
let checksum t = t.checksum
let requests_handled t = t.requests_handled
let oracle t = t.oracle
let set_measure_latency t on = t.measure_latency <- on

(* ------------------------------------------------------------------ *)
(* Response checksum: FNV-1a over response bytes, newline-separated.   *)

let fnv_offset = 0x811C9DC5
let fnv_prime = 0x01000193

let fold_checksum t s =
  let cs = ref t.checksum in
  String.iter (fun c -> cs := ((!cs lxor Char.code c) * fnv_prime) land max_int) s;
  cs := ((!cs lxor 0x0a) * fnv_prime) land max_int;
  t.checksum <- !cs

(* ------------------------------------------------------------------ *)
(* Directory plumbing.                                                 *)

let find_swarm t sid =
  let rec go = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Serve: unknown swarm %S (known:%s)" sid
             (String.concat ""
                (List.map (fun ss -> " " ^ ss.sspec.Request.sid) t.swarms)))
    | ss :: rest -> if String.equal ss.sspec.Request.sid sid then ss else go rest
  in
  go t.swarms

let check_peer t peer =
  let n = t.scr.Request.world.Request.n in
  if peer < 0 || peer >= n then
    invalid_arg
      (Printf.sprintf "Serve: peer %d outside the population [0, %d)" peer n)

let free_slot ss =
  let n = Array.length ss.members in
  let rec go i =
    if i >= n then None else if ss.members.(i) < 0 then Some i else go (i + 1)
  in
  go 0

let take_slot ss peer slot =
  ss.members.(slot) <- peer;
  Hashtbl.replace ss.slot_of peer slot;
  ss.member_count <- ss.member_count + 1;
  Swarm.recycle_peer ss.swarm slot

let release_slot ss peer slot =
  Swarm.recycle_peer ss.swarm slot;
  ss.members.(slot) <- -1;
  Hashtbl.remove ss.slot_of peer;
  ss.member_count <- ss.member_count - 1

(* r-th occupied slot's occupant (r < member_count) *)
let nth_member ss r =
  let k = ref r and res = ref (-1) in
  (try
     Array.iter
       (fun p ->
         if p >= 0 then
           if !k = 0 then begin
             res := p;
             raise Exit
           end
           else decr k)
       ss.members
   with Exit -> ());
  !res

(* ------------------------------------------------------------------ *)
(* Churn: the population evolves under the oracle, and swarm           *)
(* membership follows — a departed peer silently leaves every swarm.   *)

let random_member rng mask value =
  let count = ref 0 in
  Array.iter (fun v -> if v = value then incr count) mask;
  if !count = 0 then None
  else begin
    let target = Rng.int rng !count in
    let seen = ref 0 and res = ref (-1) in
    (try
       Array.iteri
         (fun i v ->
           if v = value then
             if !seen = target then begin
               res := i;
               raise Exit
             end
             else incr seen)
         mask
     with Exit -> ());
    Some !res
  end

let depart t v =
  Churn.remove_peer t.oracle v;
  t.present_count <- t.present_count - 1;
  t.departures <- t.departures + 1;
  Counter.incr c_departures;
  List.iter
    (fun ss ->
      match Hashtbl.find_opt ss.slot_of v with
      | Some slot -> release_slot ss v slot
      | None -> ())
    t.swarms

let arrive t v =
  Churn.insert_peer t.churn_rng t.oracle v ~p:t.er_p;
  t.present_count <- t.present_count + 1;
  t.arrivals <- t.arrivals + 1;
  Counter.incr c_arrivals

let churn_once t =
  let mask = Churn.world_present t.oracle in
  let remove_first = Rng.bool t.churn_rng in
  let removal_ok = t.present_count > 2 in
  if remove_first && removal_ok then (
    match random_member t.churn_rng mask true with
    | Some v -> depart t v
    | None -> ())
  else
    match random_member t.churn_rng mask false with
    | Some v -> arrive t v
    | None -> (
        if removal_ok then
          match random_member t.churn_rng mask true with
          | Some v -> depart t v
          | None -> ())

let ensure_online t peer =
  if not (Churn.world_present t.oracle).(peer) then begin
    Churn.insert_peer t.churn_rng t.oracle peer ~p:t.er_p;
    t.present_count <- t.present_count + 1;
    t.reconnects <- t.reconnects + 1;
    Counter.incr c_reconnects
  end

(* ------------------------------------------------------------------ *)
(* Request handlers.  Reference errors (unknown swarm, peer out of     *)
(* range) raise; state-dependent refusals answer "ERR ..." so the      *)
(* service keeps running — a tracker does not die because a peer       *)
(* joined twice.                                                       *)

let do_announce t peer sid want =
  let ss = find_swarm t sid in
  check_peer t peer;
  ensure_online t peer;
  let seated =
    Hashtbl.mem ss.slot_of peer
    ||
    match free_slot ss with
    | None -> false
    | Some slot ->
        take_slot ss peer slot;
        true
  in
  if not seated then Printf.sprintf "ERR announce %s full" sid
  else begin
    let want = max 0 (min want (ss.member_count - 1)) in
    let picks = ref [] and npicks = ref 0 in
    let consider q =
      if
        !npicks < want && q <> peer
        && Hashtbl.mem ss.slot_of q
        && not (List.mem q !picks)
      then begin
        picks := q :: !picks;
        incr npicks
      end
    in
    (* stable-configuration mates first: the tracker answer *is* the
       paper's stratified matching, restricted to this swarm *)
    List.iter consider (Config.mates (Churn.world_stable t.oracle) peer);
    (* pad with uniform member draws; bounded attempts keep a
       near-degenerate membership from spinning *)
    let attempts = ref 0 in
    let max_attempts = (4 * want) + 8 in
    while !npicks < want && !attempts < max_attempts do
      incr attempts;
      consider (nth_member ss (Rng.int t.req_rng ss.member_count))
    done;
    Printf.sprintf "OK announce %s %d peers%s" sid peer
      (String.concat ""
         (List.map (fun q -> " " ^ string_of_int q) (List.rev !picks)))
  end

let do_join t peer sid =
  let ss = find_swarm t sid in
  check_peer t peer;
  if Hashtbl.mem ss.slot_of peer then
    Printf.sprintf "ERR join %s %d already-member" sid peer
  else
    match free_slot ss with
    | None -> Printf.sprintf "ERR join %s full" sid
    | Some slot ->
        ensure_online t peer;
        take_slot ss peer slot;
        Printf.sprintf "OK join %s %d slot %d" sid peer slot

let do_leave t peer sid =
  let ss = find_swarm t sid in
  check_peer t peer;
  match Hashtbl.find_opt ss.slot_of peer with
  | None -> Printf.sprintf "ERR leave %s %d not-a-member" sid peer
  | Some slot ->
      release_slot ss peer slot;
      Printf.sprintf "OK leave %s %d" sid peer

let do_scrape t sid =
  let ss = find_swarm t sid in
  let uploaded = ref 0. in
  Array.iteri
    (fun slot p ->
      if p >= 0 then
        uploaded := !uploaded +. (Swarm.peer ss.swarm slot).Peer.uploaded)
    ss.members;
  Printf.sprintf "OK scrape %s members %d complete %d drops %d uploaded %.3f"
    sid ss.member_count
    (Swarm.completed ss.swarm)
    (Swarm.link_drops ss.swarm)
    !uploaded

let do_stats t =
  Printf.sprintf "OK stats now %g ticks %d present %d stable_edges %d handled %d"
    (Engine.now t.engine) t.ticks t.present_count
    (Config.edge_count (Churn.world_stable t.oracle))
    t.requests_handled

let handle t kind =
  let resp =
    match kind with
    | Request.Announce { peer; swarm; want } ->
        t.announces <- t.announces + 1;
        Counter.incr c_announces;
        do_announce t peer swarm want
    | Request.Join { peer; swarm } ->
        t.joins <- t.joins + 1;
        Counter.incr c_joins;
        do_join t peer swarm
    | Request.Leave { peer; swarm } ->
        t.leaves <- t.leaves + 1;
        Counter.incr c_leaves;
        do_leave t peer swarm
    | Request.Scrape { swarm } ->
        t.scrapes <- t.scrapes + 1;
        Counter.incr c_scrapes;
        do_scrape t swarm
    | Request.Stats ->
        t.stats_reqs <- t.stats_reqs + 1;
        Counter.incr c_stats;
        do_stats t
  in
  t.requests_handled <- t.requests_handled + 1;
  fold_checksum t resp;
  resp

(* ------------------------------------------------------------------ *)
(* The event loop: one self-rescheduling packed tick plus one packed   *)
(* event per scripted request (src = request index).  Packed-only      *)
(* means the queue serializes ([Engine.dump_packed]).                  *)

let kind_tick = 0
let kind_request = 1
let tick_code = Net.Packed.pack ~kind:kind_tick ~src:0 ~dst:0
let request_code i = Net.Packed.pack_checked ~kind:kind_request ~src:i ~dst:0

let handle_tick t =
  List.iter (fun ss -> Swarm.step ss.swarm) t.swarms;
  let rate = t.scr.Request.world.Request.churn_rate in
  if rate > 0. && Rng.bernoulli t.churn_rng rate then churn_once t;
  t.ticks <- t.ticks + 1;
  Counter.incr c_ticks;
  Engine.schedule_packed t.engine ~delay:1.0 tick_code

let handle_scripted t i =
  let r = t.scr.Request.requests.(i) in
  if t.measure_latency then begin
    let t0 = Unix.gettimeofday () in
    ignore (handle t r.Request.kind);
    Histogram.observe h_request_ns
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  end
  else ignore (handle t r.Request.kind)

let install_handler t =
  Engine.set_packed_handler t.engine (fun _e code ->
      match Net.Packed.kind code with
      | 0 -> handle_tick t
      | 1 -> handle_scripted t (Net.Packed.src code)
      | k -> invalid_arg (Printf.sprintf "Serve: unknown packed event kind %d" k))

(* ------------------------------------------------------------------ *)
(* World construction.  All randomness flows from the script seed      *)
(* through named substreams split off a root in a fixed order, so the  *)
(* whole run is a pure function of the script.                         *)

let resolve_groups size = function
  | Request.Heal -> None
  | Request.Halves ->
      Some (Array.init size (fun i -> if 2 * i < size then 0 else 1))
  | Request.Groups g -> Some (Array.copy g)

let make_faults ~seed ~idx (sw : Request.swarm_spec) =
  if sw.loss > 0. || sw.partitions <> [] then
    Some
      (Net.Tick.create
         ~seed:(seed + (7919 * (idx + 1)))
         ~loss:sw.loss
         ~schedule:
           (List.map
              (fun (pe : Request.partition) ->
                { Net.Tick.at_tick = pe.at_tick;
                  groups = resolve_groups sw.size pe.groups })
              sw.partitions)
         ())
  else None

let swarm_params (sw : Request.swarm_spec) ~faults =
  let uploads = Bw_profile.rank_bandwidths Saroiu.profile ~n:sw.size in
  {
    (Swarm.default_params ~uploads) with
    Swarm.d = sw.d;
    faults;
    piece =
      Option.map
        (fun (pp : Request.piece_spec) ->
          {
            Swarm.pieces = pp.pieces;
            piece_size = pp.piece_size;
            init_fraction = pp.init_fraction;
            seeds = pp.seeds;
          })
        sw.piece;
  }

let er_p (w : Request.world_spec) = w.d /. float_of_int (max 1 (w.n - 1))

let create scr =
  let scr = Request.validate scr in
  let w = scr.Request.world in
  let root = Rng.create scr.Request.seed in
  let oracle_rng = Rng.split root in
  let req_rng = Rng.split root in
  let churn_rng = Rng.split root in
  let oracle =
    Churn.make_world ~bands:w.Request.bands oracle_rng ~n:w.Request.n
      ~d:w.Request.d ~b:w.Request.b
  in
  let swarms =
    List.mapi
      (fun idx (sw : Request.swarm_spec) ->
        let srng = Rng.split root in
        let created_rng = Rng.state srng in
        let faults = make_faults ~seed:scr.Request.seed ~idx sw in
        let swarm = Swarm.create srng (swarm_params sw ~faults) in
        {
          sspec = sw;
          swarm;
          faults;
          created_rng;
          members = Array.make sw.size (-1);
          slot_of = Hashtbl.create 64;
          member_count = 0;
        })
      w.Request.swarms
  in
  let engine = Engine.create () in
  let t =
    {
      scr;
      engine;
      oracle;
      er_p = er_p w;
      req_rng;
      churn_rng;
      swarms;
      present_count = w.Request.n;
      ticks = 0;
      announces = 0;
      joins = 0;
      leaves = 0;
      scrapes = 0;
      stats_reqs = 0;
      reconnects = 0;
      arrivals = 0;
      departures = 0;
      checksum = fnv_offset;
      requests_handled = 0;
      measure_latency = false;
    }
  in
  install_handler t;
  Array.iteri
    (fun i (r : Request.t) ->
      Engine.schedule_packed_at engine ~time:r.at (request_code i))
    scr.Request.requests;
  Engine.schedule_packed_at engine ~time:1.0 tick_code;
  t

let run_to t time = Engine.run_until t.engine ~time
let run_script t = run_to t t.scr.Request.horizon

(* ------------------------------------------------------------------ *)
(* Manifest: built by hand from world-internal tallies, never from the *)
(* process-global counters — so stop/resume across *processes* keeps   *)
(* every total, and the bytes are backend- and wall-clock-invariant.   *)

let manifest ?git t =
  let swarm_counters =
    List.concat_map
      (fun ss ->
        let sid = ss.sspec.Request.sid in
        let uploaded = ref 0. in
        Array.iteri
          (fun slot p ->
            if p >= 0 then
              uploaded := !uploaded +. (Swarm.peer ss.swarm slot).Peer.uploaded)
          ss.members;
        [
          ("serve.swarm." ^ sid ^ ".members", ss.member_count);
          ("serve.swarm." ^ sid ^ ".completed", Swarm.completed ss.swarm);
          ("serve.swarm." ^ sid ^ ".link_drops", Swarm.link_drops ss.swarm);
          ( "serve.swarm." ^ sid ^ ".uploaded_milli",
            int_of_float (!uploaded *. 1000.) );
        ])
      t.swarms
  in
  {
    Run_manifest.schema_version = Run_manifest.schema_version;
    kind = "serve";
    name = t.scr.Request.name;
    seed = t.scr.Request.seed;
    scale = 1.0;
    jobs = 1;
    git = (match git with Some g -> g | None -> Run_manifest.git_describe ());
    cores = Domain.recommended_domain_count ();
    phases = [];
    counters =
      [
        ("checksum.serve_responses", t.checksum);
        ("serve.announces", t.announces);
        ("serve.arrivals", t.arrivals);
        ("serve.departures", t.departures);
        ("serve.joins", t.joins);
        ("serve.leaves", t.leaves);
        ("serve.oracle.present", t.present_count);
        ( "serve.oracle.stable_edges",
          Config.edge_count (Churn.world_stable t.oracle) );
        ("serve.reconnects", t.reconnects);
        ("serve.requests", t.requests_handled);
        ("serve.scrapes", t.scrapes);
        ("serve.stats", t.stats_reqs);
        ("serve.ticks", t.ticks);
      ]
      @ swarm_counters;
    histograms = [];
    metrics = [ ("horizon", t.scr.Request.horizon); ("now", Engine.now t.engine) ];
    profile = [];
  }

(* ------------------------------------------------------------------ *)
(* Snapshot.  Int64s travel as decimal strings (Jsonx.Int is an OCaml  *)
(* 63-bit int); every hash-table dump is sorted by key so the bytes    *)
(* are canonical.                                                      *)

let json_of_int64 x = Jsonx.String (Int64.to_string x)

let json_of_rng_state st =
  Jsonx.List (List.map json_of_int64 (Array.to_list st))

let json_of_groups = function
  | None -> Jsonx.Null
  | Some g -> Jsonx.List (List.map (fun x -> Jsonx.Int x) (Array.to_list g))

let json_of_faults = function
  | None -> Jsonx.Null
  | Some f ->
      let s = Net.Tick.snapshot f in
      Jsonx.Obj
        [
          ("base", json_of_int64 s.Net.Tick.snap_base);
          ("loss", Jsonx.Float s.Net.Tick.snap_loss);
          ( "pending",
            Jsonx.List
              (List.map
                 (fun (e : Net.Tick.event) ->
                   Jsonx.Obj
                     [
                       ("at_tick", Jsonx.Int e.at_tick);
                       ("groups", json_of_groups e.groups);
                     ])
                 s.Net.Tick.snap_pending) );
          ("groups", json_of_groups s.Net.Tick.snap_groups);
          ("drops", Jsonx.Int s.Net.Tick.snap_drops);
        ]

let json_of_swarm ss =
  let sw = ss.swarm in
  let peers =
    List.init (Swarm.size sw) (fun i ->
        let p = Swarm.peer sw i in
        let rates =
          Hashtbl.fold (fun q r acc -> (q, r) :: acc) p.Peer.link_rates []
          |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
          |> List.map (fun (q, r) ->
                 let buckets, stamps, total = Rate.dump r in
                 Jsonx.Obj
                   [
                     ("from", Jsonx.Int q);
                     ("window", Jsonx.Int (Rate.window r));
                     ( "buckets",
                       Jsonx.List
                         (List.map (fun x -> Jsonx.Float x)
                            (Array.to_list buckets)) );
                     ( "stamps",
                       Jsonx.List
                         (List.map (fun x -> Jsonx.Int x) (Array.to_list stamps))
                     );
                     ("total", Jsonx.Float total);
                   ])
        in
        let pieces =
          match p.Peer.field with
          | None -> Jsonx.Null
          | Some f ->
              let held = ref [] in
              Piece.iter_held f (fun pc -> held := pc :: !held);
              Jsonx.List
                (List.map (fun pc -> Jsonx.Int pc) (List.sort compare !held))
        in
        Jsonx.Obj
          [
            ( "unchoked",
              Jsonx.List (List.map (fun q -> Jsonx.Int q) p.Peer.unchoked) );
            ( "optimistic",
              Jsonx.Int (match p.Peer.optimistic with Some q -> q | None -> -1)
            );
            ("uploaded", Jsonx.Float p.Peer.uploaded);
            ("downloaded", Jsonx.Float p.Peer.downloaded);
            ("uploaded_tft", Jsonx.Float p.Peer.uploaded_tft);
            ("downloaded_tft", Jsonx.Float p.Peer.downloaded_tft);
            ("pieces", pieces);
            ("rates", Jsonx.List rates);
          ])
  in
  let progress =
    let acc = ref [] in
    Swarm.iter_link_progress sw (fun s r v -> acc := (s, r, v) :: !acc);
    Jsonx.List
      (List.map
         (fun (s, r, v) ->
           Jsonx.List [ Jsonx.Int s; Jsonx.Int r; Jsonx.Float v ])
         (List.sort compare !acc))
  in
  Jsonx.Obj
    [
      ("sid", Jsonx.String ss.sspec.Request.sid);
      ("created_rng", json_of_rng_state ss.created_rng);
      ("rng", json_of_rng_state (Rng.state (Swarm.rng sw)));
      ("tick", Jsonx.Int (Swarm.tick_count sw));
      ( "members",
        Jsonx.List (List.map (fun m -> Jsonx.Int m) (Array.to_list ss.members))
      );
      ("faults", json_of_faults ss.faults);
      ("peers", Jsonx.List peers);
      ("progress", progress);
    ]

let json_of_oracle oracle =
  let present = Churn.world_present oracle in
  let adjacency =
    match Instance.raw_backend (Churn.world_instance oracle) with
    | Instance.Raw_dynamic { rows; len } ->
        Jsonx.List
          (List.init (Array.length rows) (fun i ->
               Jsonx.List (List.init len.(i) (fun j -> Jsonx.Int rows.(i).(j)))))
    | _ -> invalid_arg "Serve.snapshot: oracle instance is not dynamic"
  in
  let pairs cfg =
    let acc = ref [] in
    Config.iter_pairs
      (fun p q -> acc := Jsonx.List [ Jsonx.Int p; Jsonx.Int q ] :: !acc)
      cfg;
    Jsonx.List (List.rev !acc)
  in
  Jsonx.Obj
    [
      ( "present",
        Jsonx.List
          (List.map
             (fun b -> Jsonx.Int (if b then 1 else 0))
             (Array.to_list present)) );
      ("adjacency", adjacency);
      ("config", pairs (Churn.world_config oracle));
      ("stable", pairs (Churn.world_stable oracle));
    ]

let snapshot t =
  let queue = Engine.dump_packed t.engine in
  Jsonx.Obj
    [
      ("schema_version", Jsonx.Int 1);
      ("kind", Jsonx.String "serve-snapshot");
      ("script", Request.to_json t.scr);
      ("now", Jsonx.Float (Engine.now t.engine));
      (* deliberately no backend field: a snapshot is backend-neutral —
         the queue entries are the canonical (time, seq) order that
         every backend pops identically *)
      ("ticks", Jsonx.Int t.ticks);
      ( "tallies",
        Jsonx.Obj
          [
            ("announces", Jsonx.Int t.announces);
            ("joins", Jsonx.Int t.joins);
            ("leaves", Jsonx.Int t.leaves);
            ("scrapes", Jsonx.Int t.scrapes);
            ("stats", Jsonx.Int t.stats_reqs);
            ("reconnects", Jsonx.Int t.reconnects);
            ("arrivals", Jsonx.Int t.arrivals);
            ("departures", Jsonx.Int t.departures);
            ("requests_handled", Jsonx.Int t.requests_handled);
          ] );
      ("checksum", Jsonx.Int t.checksum);
      ("req_rng", json_of_rng_state (Rng.state t.req_rng));
      ("churn_rng", json_of_rng_state (Rng.state t.churn_rng));
      ( "queue",
        Jsonx.List
          (List.map
             (fun (time, code) ->
               Jsonx.List [ Jsonx.Float time; Jsonx.Int code ])
             (Array.to_list queue)) );
      ("oracle", json_of_oracle t.oracle);
      ("swarms", Jsonx.List (List.map json_of_swarm t.swarms));
    ]

let snapshot_string t = Jsonx.to_string ~indent:false (snapshot t)

(* ------------------------------------------------------------------ *)
(* Restore.                                                            *)

let parse_fail fmt =
  Printf.ksprintf (fun msg -> raise (Jsonx.Parse_error msg)) fmt

let req what name obj =
  match List.assoc_opt name obj with
  | Some v -> v
  | None -> parse_fail "%s: missing field %S" what name

let int64_of_json what = function
  | Jsonx.String s -> (
      try Int64.of_string s
      with _ -> parse_fail "%s: bad int64 %S" what s)
  | _ -> parse_fail "%s: expected an int64-as-string" what

let rng_state_of_json what = function
  | Jsonx.List l -> Array.of_list (List.map (int64_of_json what) l)
  | _ -> parse_fail "%s: expected an RNG state list" what

let int_array what = function
  | Jsonx.List l -> Array.of_list (List.map Jsonx.get_int l)
  | _ -> parse_fail "%s: expected an int array" what

let float_array what = function
  | Jsonx.List l -> Array.of_list (List.map Jsonx.get_float l)
  | _ -> parse_fail "%s: expected a float array" what

let groups_of_json what = function
  | Jsonx.Null -> None
  | j -> Some (int_array what j)

let faults_of_json what = function
  | Jsonx.Null -> None
  | fj ->
      let fo = Jsonx.get_obj fj in
      let pending =
        List.map
          (fun ej ->
            let eo = Jsonx.get_obj ej in
            {
              Net.Tick.at_tick = Jsonx.get_int (req what "at_tick" eo);
              groups = groups_of_json what (req what "groups" eo);
            })
          (Jsonx.get_list (req what "pending" fo))
      in
      Some
        (Net.Tick.restore
           {
             Net.Tick.snap_base = int64_of_json what (req what "base" fo);
             snap_loss = Jsonx.get_float (req what "loss" fo);
             snap_pending = pending;
             snap_groups = groups_of_json what (req what "groups" fo);
             snap_drops = Jsonx.get_int (req what "drops" fo);
           })

let restore_swarm what (sw : Request.swarm_spec) sj =
  let obj = Jsonx.get_obj sj in
  let sid = Jsonx.get_string (req what "sid" obj) in
  if not (String.equal sid sw.sid) then
    parse_fail "%s: swarm %S out of order (script declares %S here)" what sid
      sw.sid;
  let what = Printf.sprintf "%s.swarm[%s]" what sid in
  let created_rng = rng_state_of_json what (req what "created_rng" obj) in
  let faults = faults_of_json what (req what "faults" obj) in
  (* replay create from the captured pre-create RNG state: regenerates
     the knowledge graph and piece fields bit-for-bit *)
  let srng = Rng.of_state created_rng in
  let swarm = Swarm.create srng (swarm_params sw ~faults) in
  Rng.set_state (Swarm.rng swarm) (rng_state_of_json what (req what "rng" obj));
  Swarm.set_tick swarm (Jsonx.get_int (req what "tick" obj));
  let members = int_array what (req what "members" obj) in
  if Array.length members <> sw.size then
    parse_fail "%s: members has %d slots, swarm has %d" what
      (Array.length members) sw.size;
  let peers_j = Jsonx.get_list (req what "peers" obj) in
  if List.length peers_j <> sw.size then
    parse_fail "%s: %d peer records, swarm has %d slots" what
      (List.length peers_j) sw.size;
  List.iteri
    (fun i pj ->
      let po = Jsonx.get_obj pj in
      let p = Swarm.peer swarm i in
      p.Peer.unchoked <-
        List.map Jsonx.get_int (Jsonx.get_list (req what "unchoked" po));
      p.Peer.optimistic <-
        (match Jsonx.get_int (req what "optimistic" po) with
        | -1 -> None
        | q -> Some q);
      p.Peer.uploaded <- Jsonx.get_float (req what "uploaded" po);
      p.Peer.downloaded <- Jsonx.get_float (req what "downloaded" po);
      p.Peer.uploaded_tft <- Jsonx.get_float (req what "uploaded_tft" po);
      p.Peer.downloaded_tft <- Jsonx.get_float (req what "downloaded_tft" po);
      Hashtbl.reset p.Peer.link_rates;
      List.iter
        (fun rj ->
          let ro = Jsonx.get_obj rj in
          Hashtbl.replace p.Peer.link_rates
            (Jsonx.get_int (req what "from" ro))
            (Rate.restore
               ~window:(Jsonx.get_int (req what "window" ro))
               ~buckets:(float_array what (req what "buckets" ro))
               ~stamps:(int_array what (req what "stamps" ro))
               ~total:(Jsonx.get_float (req what "total" ro))))
        (Jsonx.get_list (req what "rates" po));
      match req what "pieces" po with
      | Jsonx.Null -> ()
      | pcj ->
          Swarm.set_held_pieces swarm i
            (List.map Jsonx.get_int (Jsonx.get_list pcj)))
    peers_j;
  Swarm.clear_link_progress swarm;
  List.iter
    (fun ej ->
      match Jsonx.get_list ej with
      | [ s; r; v ] ->
          Swarm.set_link_progress swarm ~sender:(Jsonx.get_int s)
            ~receiver:(Jsonx.get_int r) (Jsonx.get_float v)
      | _ -> parse_fail "%s: progress entry must be [sender, receiver, v]" what)
    (Jsonx.get_list (req what "progress" obj));
  let slot_of = Hashtbl.create 64 in
  let member_count = ref 0 in
  Array.iteri
    (fun slot pid ->
      if pid >= 0 then begin
        Hashtbl.replace slot_of pid slot;
        incr member_count
      end)
    members;
  {
    sspec = sw;
    swarm;
    faults;
    created_rng;
    members;
    slot_of;
    member_count = !member_count;
  }

let restore j =
  let what = "Serve.restore" in
  let top = Jsonx.get_obj j in
  (match Jsonx.get_int (req what "schema_version" top) with
  | 1 -> ()
  | v -> parse_fail "%s: unsupported schema_version %d" what v);
  (match Jsonx.get_string (req what "kind" top) with
  | "serve-snapshot" -> ()
  | k -> parse_fail "%s: kind %S is not a serve snapshot" what k);
  let scr = Request.of_json (req what "script" top) in
  let w = scr.Request.world in
  let now = Jsonx.get_float (req what "now" top) in
  let tallies = Jsonx.get_obj (req what "tallies" top) in
  let tally name = Jsonx.get_int (req (what ^ ".tallies") name tallies) in
  let queue =
    Jsonx.get_list (req what "queue" top)
    |> List.map (fun e ->
           match Jsonx.get_list e with
           | [ time; code ] -> (Jsonx.get_float time, Jsonx.get_int code)
           | _ -> parse_fail "%s: queue entry must be [time, code]" what)
    |> Array.of_list
  in
  let oracle_j = Jsonx.get_obj (req what "oracle" top) in
  let present =
    Array.of_list
      (List.map
         (fun v -> Jsonx.get_int v <> 0)
         (Jsonx.get_list (req what "present" oracle_j)))
  in
  let adjacency =
    Array.of_list
      (List.map
         (fun row -> int_array (what ^ ".adjacency") row)
         (Jsonx.get_list (req what "adjacency" oracle_j)))
  in
  let pairs name =
    List.map
      (fun pq ->
        match Jsonx.get_list pq with
        | [ a; b ] -> (Jsonx.get_int a, Jsonx.get_int b)
        | _ -> parse_fail "%s: %s entry must be [p, q]" what name)
      (Jsonx.get_list (req what name oracle_j))
  in
  let oracle =
    Churn.restore_world ~n:w.Request.n ~b:w.Request.b ~present ~adjacency
      ~config_pairs:(pairs "config") ~stable_pairs:(pairs "stable")
  in
  let swarm_js = Jsonx.get_list (req what "swarms" top) in
  if List.length swarm_js <> List.length w.Request.swarms then
    parse_fail "%s: snapshot has %d swarms, script declares %d" what
      (List.length swarm_js)
      (List.length w.Request.swarms);
  let swarms = List.map2 (restore_swarm what) w.Request.swarms swarm_js in
  (* restore_packed on the *current* default backend: any --queue choice
     replays the snapshot's canonical (time, seq) order identically *)
  let engine = Engine.restore_packed ~now queue in
  let t =
    {
      scr;
      engine;
      oracle;
      er_p = er_p w;
      req_rng = Rng.of_state (rng_state_of_json what (req what "req_rng" top));
      churn_rng =
        Rng.of_state (rng_state_of_json what (req what "churn_rng" top));
      swarms;
      present_count =
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 present;
      ticks = Jsonx.get_int (req what "ticks" top);
      announces = tally "announces";
      joins = tally "joins";
      leaves = tally "leaves";
      scrapes = tally "scrapes";
      stats_reqs = tally "stats";
      reconnects = tally "reconnects";
      arrivals = tally "arrivals";
      departures = tally "departures";
      checksum = Jsonx.get_int (req what "checksum" top);
      requests_handled = tally "requests_handled";
      measure_latency = false;
    }
  in
  install_handler t;
  t

let restore_string s = restore (Jsonx.of_string s)
