(** The request-driven service layer: a continuously simulated world
    behind a tracker-style announce/join/leave/scrape/stats interface.

    One {!t} holds a peer {e population} — a churn oracle
    ({!Stratify_core.Churn.world}) whose instant stable configuration is
    repaired incrementally as peers arrive and depart — and any number
    of concurrent {e swarms} (fixed-capacity
    {!Stratify_bittorrent.Swarm} simulators with tick-level
    {!Stratify_net.Net.Tick} faults).  A DES engine drives everything:
    a self-rescheduling packed tick event advances every swarm and the
    churn process once per simulated second, and scripted requests are
    packed events stamped with their injection times.  Announce
    responses are fed from the oracle's stable configuration (mates
    first, then uniform members) — the tracker serves the paper's
    stratified matching, which is the whole point.

    {2 Determinism and snapshots}

    Every run is a pure function of its {!Request.script}: all
    randomness flows from the script seed through named substreams, the
    engine pops the backend-invariant total (time, seq) order, and
    responses fold into a checksum.  {!snapshot} serializes the {e
    complete} world — RNG streams, DES queue contents, matching config,
    swarm piece/rate state, net fault state — such that
    {!restore}d service replays bit-for-bit: stopping at tick [T] and
    resuming produces the same {!manifest} as the uninterrupted run,
    for every [--queue] backend (the snapshot stores the canonical
    queue order, which all backends share).  DESIGN.md §15 gives the
    argument. *)

type t

val create : Request.script -> t
(** Build the world and schedule the script: the tick loop (first tick
    at time 1.0) plus one packed event per request.  Nothing runs until
    {!run_to}. *)

val script : t -> Request.script
val engine : t -> Stratify_des.Engine.t
val now : t -> float
val ticks : t -> int
(** World ticks completed so far. *)

val checksum : t -> int
(** FNV-style fold of every response string served so far — the
    replay-equality fingerprint. *)

val requests_handled : t -> int

val oracle : t -> Stratify_core.Churn.world

val set_measure_latency : t -> bool -> unit
(** When on, each scripted request's wall-clock handling time is
    observed into the ["serve.request_ns"] histogram (requires
    {!Stratify_obs.Control} enabled).  Off by default — wall-clock
    must never leak into deterministic script manifests. *)

val handle : t -> Request.kind -> string
(** Serve one request at the current simulated time and return the
    response line ("OK ..." or "ERR ..." for state-dependent refusals
    such as joining a full swarm).  Referencing an unknown swarm id or
    a peer outside the population raises a named [Invalid_argument] —
    the contract the stdio frontend and the error-path tests lean on.
    The response is folded into {!checksum}. *)

val run_to : t -> float -> unit
(** Advance the world to an absolute simulated time (events at that
    time included).  Raises [Invalid_argument] (via the engine) when
    the time is in the past. *)

val run_script : t -> unit
(** [run_to] the script horizon. *)

val manifest : ?git:string -> t -> Stratify_obs.Run_manifest.t
(** A [kind:"serve"] manifest built purely from world-internal tallies
    (no global counters, no wall-clock, no phases): request and churn
    totals, the response checksum, per-swarm membership / completion /
    fault-drop / upload aggregates, and oracle occupancy.  Byte-identical
    across runs, [--queue] backends and stop/resume boundaries. *)

val snapshot : t -> Stratify_obs.Jsonx.t
(** Serialize the complete world state.  Raises [Invalid_argument]
    (via [Engine.dump_packed]) if a closure event is pending — the
    serve loop schedules only packed events, so this cannot happen
    unless a caller smuggled one in. *)

val snapshot_string : t -> string

val restore : Stratify_obs.Jsonx.t -> t
(** Rebuild a world from {!snapshot} output, on the {e current} default
    queue backend — a snapshot written under one [--queue] restores
    bit-identically under any other.  Raises [Jsonx.Parse_error] on
    shape errors and named [Invalid_argument] on semantic ones. *)

val restore_string : string -> t

(** {2 Obs wiring} — the live metrics feed: ["serve.announces"],
    ["serve.joins"], ["serve.leaves"], ["serve.scrapes"],
    ["serve.stats"], ["serve.reconnects"], ["serve.arrivals"],
    ["serve.departures"], ["serve.ticks"] counters and the
    ["serve.request_ns"] latency histogram, all gated by
    {!Stratify_obs.Control} like every other probe. *)
