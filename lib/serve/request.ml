module Jsonx = Stratify_obs.Jsonx

type kind =
  | Join of { peer : int; swarm : string }
  | Leave of { peer : int; swarm : string }
  | Announce of { peer : int; swarm : string; want : int }
  | Scrape of { swarm : string }
  | Stats

type t = { at : float; kind : kind }
type groups = Halves | Heal | Groups of int array
type partition = { at_tick : int; groups : groups }
type piece_spec = { pieces : int; piece_size : float; init_fraction : float; seeds : int }

type swarm_spec = {
  sid : string;
  size : int;
  d : float;
  loss : float;
  partitions : partition list;
  piece : piece_spec option;
}

type world_spec = {
  n : int;
  d : float;
  b : int;
  churn_rate : float;
  bands : int;
  swarms : swarm_spec list;
}

type script = {
  name : string;
  seed : int;
  world : world_spec;
  requests : t array;
  horizon : float;
}

(* ---- validation ---------------------------------------------------- *)

let invalid fmt = Printf.ksprintf invalid_arg fmt

let validate script =
  let w = script.world in
  if script.name = "" then invalid "serve script: empty name";
  if w.n < 2 then invalid "serve script: population n must be >= 2 (got %d)" w.n;
  if w.d < 0. then invalid "serve script: negative oracle degree %g" w.d;
  if w.b < 1 then invalid "serve script: oracle budget b must be >= 1 (got %d)" w.b;
  if w.churn_rate < 0. || w.churn_rate > 1. then
    invalid "serve script: churn_rate must be in [0, 1], got %g" w.churn_rate;
  if w.bands < 1 then invalid "serve script: bands must be >= 1 (got %d)" w.bands;
  if script.horizon <= 0. then invalid "serve script: horizon must be positive (got %g)" script.horizon;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun sw ->
      if sw.sid = "" then invalid "serve script: empty swarm id";
      if Hashtbl.mem seen sw.sid then invalid "serve script: duplicate swarm id %S" sw.sid;
      Hashtbl.replace seen sw.sid ();
      if sw.size < 2 then
        invalid "serve script: swarm %S needs size >= 2 (got %d)" sw.sid sw.size;
      if sw.d < 0. then invalid "serve script: swarm %S has negative degree %g" sw.sid sw.d;
      if sw.loss < 0. || sw.loss >= 1. then
        invalid "serve script: swarm %S loss must be in [0, 1), got %g" sw.sid sw.loss;
      List.iter
        (fun p ->
          if p.at_tick < 0 then
            invalid "serve script: swarm %S partition at negative tick %d" sw.sid p.at_tick;
          match p.groups with
          | Groups g ->
              if Array.length g <> sw.size then
                invalid "serve script: swarm %S partition groups has %d entries, expected %d"
                  sw.sid (Array.length g) sw.size;
              Array.iter
                (fun x -> if x < 0 then invalid "serve script: swarm %S negative group label" sw.sid)
                g
          | Halves | Heal -> ())
        sw.partitions;
      match sw.piece with
      | None -> ()
      | Some pp ->
          if pp.pieces < 1 then
            invalid "serve script: swarm %S needs pieces >= 1 (got %d)" sw.sid pp.pieces;
          if pp.piece_size <= 0. then
            invalid "serve script: swarm %S piece_size must be positive (got %g)" sw.sid
              pp.piece_size;
          if pp.init_fraction < 0. || pp.init_fraction > 1. then
            invalid "serve script: swarm %S init_fraction must be in [0, 1], got %g" sw.sid
              pp.init_fraction;
          if pp.seeds < 0 || pp.seeds > sw.size then
            invalid "serve script: swarm %S seeds must be in [0, %d], got %d" sw.sid sw.size
              pp.seeds)
    w.swarms;
  let check_swarm what i sid =
    if not (Hashtbl.mem seen sid) then
      invalid "serve script: request %d (%s) references unknown swarm %S" i what sid
  and check_peer what i p =
    if p < 0 || p >= w.n then
      invalid "serve script: request %d (%s) peer %d outside the population [0, %d)" i what p w.n
  in
  Array.iteri
    (fun i r ->
      if r.at < 0. then invalid "serve script: request %d at %g is before time zero" i r.at;
      if r.at > script.horizon then
        invalid "serve script: request %d at %g is beyond the horizon %g" i r.at script.horizon;
      match r.kind with
      | Join { peer; swarm } ->
          check_peer "join" i peer;
          check_swarm "join" i swarm
      | Leave { peer; swarm } ->
          check_peer "leave" i peer;
          check_swarm "leave" i swarm
      | Announce { peer; swarm; want } ->
          check_peer "announce" i peer;
          check_swarm "announce" i swarm;
          if want < 0 then invalid "serve script: request %d announce wants %d peers" i want
      | Scrape { swarm } -> check_swarm "scrape" i swarm
      | Stats -> ())
    script.requests;
  script

(* ---- JSON ---------------------------------------------------------- *)

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Jsonx.Parse_error s)) fmt

let req name j =
  match Jsonx.member name j with
  | Jsonx.Null -> parse_fail "serve script: missing field %S" name
  | v -> v

let opt_float name ~default j =
  match Jsonx.member name j with Jsonx.Null -> default | v -> Jsonx.get_float v

let opt_int name ~default j =
  match Jsonx.member name j with Jsonx.Null -> default | v -> Jsonx.get_int v

(* Unknown keys are rejected at every level: a typo'd field would
   otherwise silently drop a request or fault and "pass" vacuously —
   the same discipline as [Plan.of_json]. *)
let check_fields what known j =
  match j with
  | Jsonx.Obj members ->
      List.iter
        (fun (key, _) ->
          if not (List.mem key known) then
            parse_fail "serve script: unknown %s field %S (expected one of %s)" what key
              (String.concat "/" known))
        members
  | _ -> parse_fail "serve script: %s must be a JSON object" what

let groups_of_json = function
  | Jsonx.String "halves" -> Halves
  | Jsonx.String "heal" -> Heal
  | Jsonx.List l -> Groups (Array.of_list (List.map Jsonx.get_int l))
  | Jsonx.String s -> parse_fail "serve script: unknown groups %S (want \"halves\", \"heal\" or a list)" s
  | _ -> parse_fail "serve script: groups must be \"halves\", \"heal\" or a list of ints"

let partition_of_json j =
  check_fields "partition" [ "at_tick"; "groups" ] j;
  { at_tick = Jsonx.get_int (req "at_tick" j); groups = groups_of_json (req "groups" j) }

let piece_of_json j =
  check_fields "pieces" [ "pieces"; "piece_size"; "init_fraction"; "seeds" ] j;
  {
    pieces = Jsonx.get_int (req "pieces" j);
    piece_size = Jsonx.get_float (req "piece_size" j);
    init_fraction = opt_float "init_fraction" ~default:0. j;
    seeds = opt_int "seeds" ~default:1 j;
  }

let swarm_of_json j =
  check_fields "swarm" [ "sid"; "size"; "d"; "loss"; "partitions"; "pieces" ] j;
  {
    sid = Jsonx.get_string (req "sid" j);
    size = Jsonx.get_int (req "size" j);
    d = opt_float "d" ~default:20. j;
    loss = opt_float "loss" ~default:0. j;
    partitions =
      (match Jsonx.member "partitions" j with
      | Jsonx.Null -> []
      | l -> List.map partition_of_json (Jsonx.get_list l));
    piece =
      (match Jsonx.member "pieces" j with Jsonx.Null -> None | p -> Some (piece_of_json p));
  }

let world_of_json j =
  check_fields "world" [ "n"; "d"; "b"; "churn_rate"; "bands"; "swarms" ] j;
  {
    n = Jsonx.get_int (req "n" j);
    d = opt_float "d" ~default:8. j;
    b = opt_int "b" ~default:2 j;
    churn_rate = opt_float "churn_rate" ~default:0. j;
    bands = opt_int "bands" ~default:1 j;
    swarms = List.map swarm_of_json (Jsonx.get_list (req "swarms" j));
  }

let request_of_json i j =
  check_fields "request" [ "at"; "kind"; "peer"; "swarm"; "want" ] j;
  let at = Jsonx.get_float (req "at" j) in
  let peer () = Jsonx.get_int (req "peer" j) in
  let swarm () = Jsonx.get_string (req "swarm" j) in
  let kind =
    match Jsonx.get_string (req "kind" j) with
    | "join" -> Join { peer = peer (); swarm = swarm () }
    | "leave" -> Leave { peer = peer (); swarm = swarm () }
    | "announce" -> Announce { peer = peer (); swarm = swarm (); want = opt_int "want" ~default:0 j }
    | "scrape" -> Scrape { swarm = swarm () }
    | "stats" -> Stats
    | k -> parse_fail "serve script: request %d has unknown kind %S" i k
  in
  { at; kind }

let of_json j =
  check_fields "top-level" [ "name"; "seed"; "world"; "requests"; "horizon" ] j;
  validate
    {
      name = Jsonx.get_string (req "name" j);
      seed = opt_int "seed" ~default:42 j;
      world = world_of_json (req "world" j);
      requests =
        (match Jsonx.member "requests" j with
        | Jsonx.Null -> [||]
        | l -> Array.of_list (List.mapi request_of_json (Jsonx.get_list l)));
      horizon = Jsonx.get_float (req "horizon" j);
    }

let groups_to_json = function
  | Halves -> Jsonx.String "halves"
  | Heal -> Jsonx.String "heal"
  | Groups g -> Jsonx.List (Array.to_list (Array.map (fun x -> Jsonx.Int x) g))

let partition_to_json p =
  Jsonx.Obj [ ("at_tick", Jsonx.Int p.at_tick); ("groups", groups_to_json p.groups) ]

let piece_to_json pp =
  Jsonx.Obj
    [
      ("pieces", Jsonx.Int pp.pieces);
      ("piece_size", Jsonx.Float pp.piece_size);
      ("init_fraction", Jsonx.Float pp.init_fraction);
      ("seeds", Jsonx.Int pp.seeds);
    ]

let swarm_to_json sw =
  Jsonx.Obj
    ([
       ("sid", Jsonx.String sw.sid);
       ("size", Jsonx.Int sw.size);
       ("d", Jsonx.Float sw.d);
       ("loss", Jsonx.Float sw.loss);
     ]
    @ (match sw.partitions with
      | [] -> []
      | ps -> [ ("partitions", Jsonx.List (List.map partition_to_json ps)) ])
    @ match sw.piece with None -> [] | Some pp -> [ ("pieces", piece_to_json pp) ])

let world_to_json w =
  Jsonx.Obj
    [
      ("n", Jsonx.Int w.n);
      ("d", Jsonx.Float w.d);
      ("b", Jsonx.Int w.b);
      ("churn_rate", Jsonx.Float w.churn_rate);
      ("bands", Jsonx.Int w.bands);
      ("swarms", Jsonx.List (List.map swarm_to_json w.swarms));
    ]

let request_to_json r =
  let fields =
    match r.kind with
    | Join { peer; swarm } ->
        [ ("kind", Jsonx.String "join"); ("peer", Jsonx.Int peer); ("swarm", Jsonx.String swarm) ]
    | Leave { peer; swarm } ->
        [ ("kind", Jsonx.String "leave"); ("peer", Jsonx.Int peer); ("swarm", Jsonx.String swarm) ]
    | Announce { peer; swarm; want } ->
        [
          ("kind", Jsonx.String "announce");
          ("peer", Jsonx.Int peer);
          ("swarm", Jsonx.String swarm);
          ("want", Jsonx.Int want);
        ]
    | Scrape { swarm } -> [ ("kind", Jsonx.String "scrape"); ("swarm", Jsonx.String swarm) ]
    | Stats -> [ ("kind", Jsonx.String "stats") ]
  in
  Jsonx.Obj (("at", Jsonx.Float r.at) :: fields)

let to_json s =
  Jsonx.Obj
    [
      ("name", Jsonx.String s.name);
      ("seed", Jsonx.Int s.seed);
      ("world", world_to_json s.world);
      ("requests", Jsonx.List (Array.to_list (Array.map request_to_json s.requests)));
      ("horizon", Jsonx.Float s.horizon);
    ]

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  of_json (Jsonx.of_string body)

(* ---- line protocol -------------------------------------------------- *)

let of_line line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  let peer what s =
    match int_of_string_opt s with
    | Some p -> p
    | None -> invalid "serve: %s wants an integer peer id, got %S" what s
  in
  match words with
  | [ "announce"; p; sid ] -> Announce { peer = peer "announce" p; swarm = sid; want = 0 }
  | [ "announce"; p; sid; w ] ->
      Announce { peer = peer "announce" p; swarm = sid; want = peer "announce want" w }
  | [ "join"; p; sid ] -> Join { peer = peer "join" p; swarm = sid }
  | [ "leave"; p; sid ] -> Leave { peer = peer "leave" p; swarm = sid }
  | [ "scrape"; sid ] -> Scrape { swarm = sid }
  | [ "stats" ] -> Stats
  | [] -> invalid "serve: empty command line"
  | cmd :: _ ->
      invalid
        "serve: unknown command %S (want announce <peer> <swarm> [want] | join <peer> <swarm> | \
         leave <peer> <swarm> | scrape <swarm> | stats)"
        cmd
