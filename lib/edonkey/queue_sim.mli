(** Credit-queue network simulator — the eDonkey/eMule-style baseline.

    Every peer runs a server-side upload queue over the clients it knows;
    each tick it serves its [slots] highest-scoring waiting clients
    ([score = waiting time × credit modifier]) with an equal split of its
    upload capacity, then served clients rejoin the back of the queue.
    The client side is trivial in the post-flash-crowd regime: every peer
    wants data from every acquaintance, so it waits in all their queues.

    Contrasted with the TFT swarm in the [edonkey] experiment: both
    protocols are reciprocal, but queue aging guarantees everyone service
    eventually, so the download-rate stratification of §6 is much weaker
    here. *)

type params = {
  uploads : float array;  (** per-peer upload capacity, units/tick *)
  slots : int;  (** concurrent upload slots per peer *)
  d : float;  (** knowledge degree (Erdős–Rényi) *)
  faults : Stratify_net.Net.Tick.t option;
      (** tick-level link faults: per-tick per-link loss and scheduled
          partitions.  A dropped link wastes the server's share for that
          tick (capacity is split before the network has its say); the
          served client still rejoins the back of the queue.  [None] =
          the historical fault-free simulator, bit-identical and drawing
          nothing. *)
}

val default_params : uploads:float array -> params
(** slots = 4, d = 20, no link faults. *)

type t

val create : Stratify_prng.Rng.t -> params -> t
val size : t -> int
val step : t -> unit
val run : t -> ticks:int -> unit
val reset_counters : t -> unit

val uploaded : t -> int -> float
val downloaded : t -> int -> float

val link_drops : t -> int
(** Transfers suppressed by the fault model so far (0 without
    [faults]). *)

val share_ratios : t -> float array
(** downloaded/uploaded per peer over the measurement window. *)

val stratification_correlation : t -> float
(** Pearson correlation between own log-capacity and the byte-weighted
    mean log-capacity of current upload targets. *)

val served_now : t -> int -> int list
(** The clients a peer is currently serving (diagnostics). *)

val mean_wait : t -> float
(** Average current waiting time across all queue positions. *)
