(** eMule-style pairwise credit accounting.

    §2 of the paper contrasts BitTorrent's single game-theoretic
    preference list with "a protocol like eDonkey [which] optimizes
    independently two preference lists on the server and the client
    sides".  The server side ranks waiting clients by
    [waiting time × credit modifier]; the modifier rewards clients that
    previously uploaded to this server.  This module implements the
    classic eMule modifier:

    {v modifier = clamp(1, 10, min(2·U/D, sqrt(U + 2))) v}

    where [U] are the megabytes the client sent {e to me} and [D] the
    megabytes it received {e from me} ([2·U/D] is skipped while [D] is
    negligible). *)

type t

val create : int -> t
(** Zeroed pairwise ledgers for [n] peers. *)

val record_transfer : t -> from_:int -> to_:int -> float -> unit
(** Credit a transfer of the given volume. *)

val uploaded_to : t -> judge:int -> client:int -> float
(** Volume [client] has sent to [judge]. *)

val downloaded_from : t -> judge:int -> client:int -> float
(** Volume [client] has received from [judge]. *)

val modifier : t -> judge:int -> client:int -> float
(** The eMule credit modifier of [client] in [judge]'s queue, in
    [1, 10]. *)
