module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Undirected = Stratify_graph.Undirected
module Correlation = Stratify_stats.Correlation
module Net = Stratify_net.Net

type params = {
  uploads : float array;
  slots : int;
  d : float;
  faults : Net.Tick.t option;
}

let default_params ~uploads = { uploads; slots = 4; d = 20.; faults = None }

type t = {
  params : params;
  neighbors : int array array;
  credit : Credit.t;
  waiting : float array array;  (* waiting.(server) aligned with neighbors.(server) *)
  serving : int list array;
  uploaded : float array;
  downloaded : float array;
  mutable tick : int;
}

let create rng params =
  let n = Array.length params.uploads in
  if n < 2 then invalid_arg "Queue_sim.create: need at least two peers";
  if params.slots < 1 then invalid_arg "Queue_sim.create: need at least one slot";
  let graph = Gen.gnd rng ~n ~d:params.d in
  let neighbors =
    Array.init n (fun v -> Array.of_list (Undirected.sorted_neighbors graph v))
  in
  {
    params;
    neighbors;
    credit = Credit.create n;
    waiting = Array.map (fun row -> Array.make (Array.length row) 0.) neighbors;
    serving = Array.make n [];
    uploaded = Array.make n 0.;
    downloaded = Array.make n 0.;
    tick = 0;
  }

let size t = Array.length t.params.uploads

let step t =
  let n = size t in
  (match t.params.faults with
  | Some f -> Net.Tick.advance f ~tick:t.tick
  | None -> ());
  (* A server splits capacity over its chosen slots before the network
     has its say: a dropped or partitioned link wastes that share for the
     tick (the served client still rejoins the back of the queue — the
     service attempt happened, the bytes did not arrive). *)
  let link_up server client =
    match t.params.faults with
    | None -> true
    | Some f -> Net.Tick.passes f ~tick:t.tick ~src:server ~dst:client
  in
  (* Each server picks its top-scoring waiting clients. *)
  for server = 0 to n - 1 do
    let row = t.neighbors.(server) in
    let count = Array.length row in
    if count > 0 then begin
      let scored =
        Array.init count (fun k ->
            let client = row.(k) in
            let score =
              (1. +. t.waiting.(server).(k))
              *. Credit.modifier t.credit ~judge:server ~client
            in
            (score, k))
      in
      Array.sort (fun (s1, k1) (s2, k2) ->
          let c = compare s2 s1 in
          if c <> 0 then c else compare k1 k2)
        scored;
      let slots = min t.params.slots count in
      let served = Array.to_list (Array.map snd (Array.sub scored 0 slots)) in
      t.serving.(server) <- served;
      let share = t.params.uploads.(server) /. float_of_int slots in
      List.iter
        (fun k ->
          let client = row.(k) in
          if link_up server client then begin
            t.uploaded.(server) <- t.uploaded.(server) +. share;
            t.downloaded.(client) <- t.downloaded.(client) +. share;
            Credit.record_transfer t.credit ~from_:server ~to_:client share
          end;
          (* Served clients drop to the back of the queue. *)
          t.waiting.(server).(k) <- 0.)
        served;
      (* Everyone else ages. *)
      let served_set = Hashtbl.create 8 in
      List.iter (fun k -> Hashtbl.replace served_set k ()) served;
      for k = 0 to count - 1 do
        if not (Hashtbl.mem served_set k) then
          t.waiting.(server).(k) <- t.waiting.(server).(k) +. 1.
      done
    end
  done;
  t.tick <- t.tick + 1

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let reset_counters t =
  Array.fill t.uploaded 0 (size t) 0.;
  Array.fill t.downloaded 0 (size t) 0.

let uploaded t p = t.uploaded.(p)
let downloaded t p = t.downloaded.(p)

let link_drops t =
  match t.params.faults with None -> 0 | Some f -> Net.Tick.drops f

let share_ratios t =
  Array.init (size t) (fun p ->
      if t.uploaded.(p) <= 0. then 0. else t.downloaded.(p) /. t.uploaded.(p))

let served_now t server = List.map (fun k -> t.neighbors.(server).(k)) t.serving.(server)

let stratification_correlation t =
  let pairs = ref [] in
  for server = 0 to size t - 1 do
    match served_now t server with
    | [] -> ()
    | clients ->
        let mean_cap =
          List.fold_left (fun acc c -> acc +. log t.params.uploads.(c)) 0. clients
          /. float_of_int (List.length clients)
        in
        pairs := (log t.params.uploads.(server), mean_cap) :: !pairs
  done;
  Correlation.pearson (Array.of_list !pairs)

let mean_wait t =
  let total = ref 0. and count = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun w ->
          total := !total +. w;
          incr count)
        row)
    t.waiting;
  if !count = 0 then 0. else !total /. float_of_int !count
