type t = { volume : (int * int, float ref) Hashtbl.t }
(* volume maps (sender, receiver) -> data sent. *)

let create _n = { volume = Hashtbl.create 1024 }

let cell t key =
  match Hashtbl.find_opt t.volume key with
  | Some r -> r
  | None ->
      let r = ref 0. in
      Hashtbl.replace t.volume key r;
      r

let record_transfer t ~from_ ~to_ amount =
  if amount < 0. then invalid_arg "Credit.record_transfer: negative volume";
  let c = cell t (from_, to_) in
  c := !c +. amount

let lookup t key = match Hashtbl.find_opt t.volume key with Some r -> !r | None -> 0.

let uploaded_to t ~judge ~client = lookup t (client, judge)
let downloaded_from t ~judge ~client = lookup t (judge, client)

let modifier t ~judge ~client =
  let u = uploaded_to t ~judge ~client in
  let d = downloaded_from t ~judge ~client in
  (* eMule: ratio rule only once real volume has flowed both ways; the
     sqrt rule caps newcomers' boost. *)
  let by_ratio = if d < 1. then infinity else 2. *. u /. d in
  let by_volume = sqrt (u +. 2.) in
  Float.max 1. (Float.min 10. (Float.min by_ratio by_volume))
