(** One JSON record per instrumented run.

    A manifest is the machine-readable summary of an experiment or
    benchmark run: identity (name, seed, scale, jobs, git describe,
    core count), per-phase wall/CPU timings (from {!Span}), counter
    totals (from {!Counter}), histogram bucket counts (from
    {!Histogram}) and free-form float metrics (e.g. replicas/sec).
    CI jobs diff these against checked-in baselines: counter totals are
    deterministic for a given seed and jobs-invariant, so they make
    exact golden values; timings and rates are compared with a
    tolerance.

    Encoding round-trips: [of_string (to_string m) = m] for every
    well-formed manifest (pinned by the test suite). *)

type phase = { phase : string; wall_s : float; cpu_s : float; count : int }

type t = {
  schema_version : int;
  kind : string; (* "experiment" or "bench" *)
  name : string;
  seed : int;
  scale : float;
  jobs : int;
  git : string;
  cores : int;
  phases : phase list;
  counters : (string * int) list;
  histograms : (string * int array) list;
  metrics : (string * float) list;
  profile : Profile.entry list;
      (** Per-kernel wall/GC rows (see {!Profile}); empty — and omitted
          from the JSON, keeping non-profiled manifests byte-identical
          to the pre-profile schema — unless the run enabled
          profiling. *)
}

val schema_version : int

val capture :
  kind:string ->
  name:string ->
  seed:int ->
  scale:float ->
  jobs:int ->
  ?metrics:(string * float) list ->
  unit ->
  t
(** Snapshot the current {!Span}, {!Counter} and {!Histogram} state into
    a manifest, stamping git describe and the machine's core count. *)

val counter : t -> string -> int option
val metric : t -> string -> float option

val profile_row : t -> string -> Profile.entry option
(** The profile row for a kernel name, if the manifest has one. *)

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> t
(** Raises {!Jsonx.Parse_error} on missing or ill-typed fields. *)

val to_string : t -> string
val of_string : string -> t

val write : dir:string -> t -> string
(** Serialize to [dir/<name>-<seed>.json] (directories created as
    needed); returns the path. *)

val write_path : string -> t -> unit
val read : string -> t

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] outside a work
    tree. *)
