(** Accumulating wall/CPU stopwatches.

    A timer owns no global state: create one, [start]/[stop] it any
    number of times, read the accumulated totals.  Wall time comes from
    [Unix.gettimeofday], CPU time from [Sys.time] (user CPU of the
    calling process).  Timers are single-domain objects; cross-domain
    aggregation belongs to {!Span} (coordinator) and {!Histogram}
    (workers). *)

type t

val create : unit -> t

val start : t -> unit
(** Raises [Invalid_argument] if already running. *)

val stop : t -> unit
(** Accumulate the elapsed interval.  Raises [Invalid_argument] if not
    running. *)

val running : t -> bool

val wall_s : t -> float
(** Accumulated wall-clock seconds over all completed intervals (an
    interval in progress is not counted until [stop]). *)

val cpu_s : t -> float

val time : t -> (unit -> 'a) -> 'a
(** [start], run the thunk, [stop] (exception-safe). *)
