let flag = Atomic.make false

(* [@inline always]: counters/histograms call this on simulation hot
   paths (every Net.send, every engine event); left as a cross-module
   call it dominates their disabled-case cost (see bench.net). *)
let[@inline always] enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let saved = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag saved) f
