type agg = { mutable wall : float; mutable cpu : float; mutable count : int }

let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref [] (* reversed first-entry order *)
let stack : int ref = ref 0

let agg_of name =
  match Hashtbl.find_opt aggregates name with
  | Some a -> a
  | None ->
      let a = { wall = 0.; cpu = 0.; count = 0 } in
      Hashtbl.add aggregates name a;
      order := name :: !order;
      a

let with_ name f =
  if not (Control.enabled ()) then f ()
  else begin
    let a = agg_of name in
    let w0 = Unix.gettimeofday () and c0 = Sys.time () in
    incr stack;
    Fun.protect
      ~finally:(fun () ->
        decr stack;
        a.wall <- a.wall +. (Unix.gettimeofday () -. w0);
        a.cpu <- a.cpu +. (Sys.time () -. c0);
        a.count <- a.count + 1)
      f
  end

let totals () =
  List.rev_map
    (fun name ->
      let a = Hashtbl.find aggregates name in
      (name, (a.wall, a.cpu, a.count)))
    !order

let depth () = !stack

let reset () =
  if !stack > 0 then invalid_arg "Obs.Span.reset: spans still open";
  Hashtbl.reset aggregates;
  order := []
