(** Per-kernel profiling: wall time and GC allocation deltas.

    Each [start]/[stop] pair (or [with_]) folds one interval into the
    named kernel's aggregate: total wall seconds, entry count, a
    caller-supplied operation count, and the [Gc.counters] deltas
    (minor, major, promoted words) over the interval.  The allocation
    deltas are what the zero-alloc discipline (DESIGN.md §13) is
    checked against: a steady-state kernel's minor-words-per-op must
    stay at (essentially) zero.

    Unlike {!Span}, aggregates are mutex-protected, so kernels running
    inside worker domains (sharded band solves) may record rows; and the
    enable flag is separate from {!Control} — profiling reads the clock
    and GC counters around every kernel entry, which only
    [--profile-phases] runs opt into.  Instrument once-per-build kernels
    (greedy builds, cut scans, stitches, drains), never per-initiative
    paths.  When disabled, [start] returns a shared sentinel and the
    whole probe is a flag test. *)

type entry = {
  kernel : string;
  wall_s : float;
  count : int;
  ops : int;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

type snap
(** A clock + GC-counter snapshot taken at kernel entry. *)

val start : unit -> snap
(** Snapshot now; a shared allocation-free sentinel when disabled. *)

val stop : string -> ?ops:int -> snap -> unit
(** [stop kernel ~ops snap] folds the interval since [snap] into
    [kernel]'s row, crediting it [ops] operations (default 0).  A no-op
    when disabled or when [snap] was taken while disabled. *)

val with_ : string -> ?ops:int -> (unit -> 'a) -> 'a
(** [start]/[stop] around a thunk, exception-safe. *)

val record :
  string ->
  ?ops:int ->
  ?minor_words:float ->
  ?major_words:float ->
  ?promoted_words:float ->
  wall_s:float ->
  unit ->
  unit
(** Fold an {e externally measured} interval into a kernel's row —
    for harnesses (bench.des) that time and [Gc]-meter a region
    themselves and want the result to ride the same snapshot/manifest
    machinery (and its zero-alloc ratchet) as instrumented kernels.
    A no-op when disabled. *)

val snapshot : unit -> entry list
(** Current aggregates, in first-entry order. *)

val reset : unit -> unit
(** Drop all aggregates (the enable flag is left as-is). *)
