(** Global observability switch.

    Every probe in [stratify.obs] — counters, histograms, spans — checks
    this flag first and reduces to a single boolean load plus a
    predictable branch when it is off.  Instrumented hot paths therefore
    cost nothing measurable unless a run explicitly opts in (the
    [--manifest] flag, the benchmark harness).

    The flag is an {!Atomic.t} so worker domains spawned after
    [set_enabled true] observe the switch; toggling it {e while} a
    domain pool is running is not supported (counts from in-flight
    chunks may or may not be recorded). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to the given value, restoring the
    previous value afterwards (exception-safe). *)
