type t = {
  mutable wall : float;
  mutable cpu : float;
  mutable since : (float * float) option; (* (wall, cpu) at [start] *)
}

let create () = { wall = 0.; cpu = 0.; since = None }

let start t =
  match t.since with
  | Some _ -> invalid_arg "Obs.Timer.start: already running"
  | None -> t.since <- Some (Unix.gettimeofday (), Sys.time ())

let stop t =
  match t.since with
  | None -> invalid_arg "Obs.Timer.stop: not running"
  | Some (w0, c0) ->
      t.wall <- t.wall +. (Unix.gettimeofday () -. w0);
      t.cpu <- t.cpu +. (Sys.time () -. c0);
      t.since <- None

let running t = t.since <> None
let wall_s t = t.wall
let cpu_s t = t.cpu

let time t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) f
