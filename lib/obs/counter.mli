(** Cheap monotonic event counters.

    A counter is a named atomic integer cell registered in a global
    table; {!incr}/{!add} are gated on {!Control.enabled} so a disabled
    counter costs one boolean load.  Cells are domain-safe (atomic
    adds), and because addition commutes, totals are independent of how
    replicas were scheduled across workers — the counter sums reported
    in run manifests are bit-identical for any [--jobs] value. *)

type t

val make : string -> t
(** [make name] returns the counter registered under [name], creating
    it on first use (idempotent, so modules can declare counters at
    top-level and tests can re-request them). *)

val name : t -> string

val incr : t -> unit
(** Add 1 when observability is enabled; no-op otherwise. *)

val add : t -> int -> unit
(** Add [k >= 0] when observability is enabled; no-op otherwise.
    Raises [Invalid_argument] on negative [k] — counters are monotone
    while the switch stays on. *)

val value : t -> int

val dump : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered counter (start of an instrumented run). *)
