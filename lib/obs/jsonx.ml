type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to the same float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = Buffer.add_string buf (if indent then ",\n" else ", ") in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null" (* JSON has no NaN/inf *)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then sep ();
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then sep ();
          pad (level + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          emit buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let next cur =
  match peek cur with
  | Some c ->
      cur.pos <- cur.pos + 1;
      c
  | None -> fail cur "unexpected end of input"

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      cur.pos <- cur.pos + 1;
      skip_ws cur
  | _ -> ()

let expect cur c = if next cur <> c then fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  String.iter (fun c -> if next cur <> c then fail cur ("bad literal " ^ word)) word;
  value

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match next cur with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next cur with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let hex = String.init 4 (fun _ -> next cur) in
            let u =
              try int_of_string ("0x" ^ hex) with _ -> fail cur ("bad \\u escape " ^ hex)
            in
            utf8_of_code buf u
        | c -> fail cur (Printf.sprintf "bad escape '\\%c'" c));
        go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> numchar c | None -> false) do
    cur.pos <- cur.pos + 1
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with Some f -> Float f | None -> fail cur ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur ("bad number " ^ s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' ->
      cur.pos <- cur.pos + 1;
      String (parse_string cur)
  | Some '[' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some ']' then begin
        cur.pos <- cur.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match next cur with
          | ',' -> items (v :: acc)
          | ']' -> List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some '}' then begin
        cur.pos <- cur.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          expect cur '"';
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          (k, parse_value cur)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match next cur with
          | ',' -> fields (kv :: acc)
          | '}' -> List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number cur

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let shape_error what v =
  let tag =
    match v with
    | Null -> "null"
    | Bool _ -> "bool"
    | Int _ -> "int"
    | Float _ -> "float"
    | String _ -> "string"
    | List _ -> "array"
    | Obj _ -> "object"
  in
  raise (Parse_error (Printf.sprintf "expected %s, got %s" what tag))

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | v -> shape_error ("object with member " ^ key) v

let get_int = function Int i -> i | v -> shape_error "int" v
let get_float = function Float f -> f | Int i -> float_of_int i | v -> shape_error "number" v
let get_string = function String s -> s | v -> shape_error "string" v
let get_list = function List l -> l | v -> shape_error "array" v
let get_obj = function Obj o -> o | v -> shape_error "object" v
