type t = { name : string; cell : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let make name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

let name t = t.name

(* Inlined so the disabled case costs one load + branch at the call
   site — probes sit on hot paths (Net.send, engine dispatch). *)
let[@inline always] incr t = if Control.enabled () then Atomic.incr t.cell

let add t k =
  if k < 0 then invalid_arg "Obs.Counter.add: negative increment";
  if Control.enabled () then ignore (Atomic.fetch_and_add t.cell k)

let value t = Atomic.get t.cell

let dump () =
  let all =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [])
  in
  List.sort compare all

let reset_all () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry)
