type phase = { phase : string; wall_s : float; cpu_s : float; count : int }

type t = {
  schema_version : int;
  kind : string;
  name : string;
  seed : int;
  scale : float;
  jobs : int;
  git : string;
  cores : int;
  phases : phase list;
  counters : (string * int) list;
  histograms : (string * int array) list;
  metrics : (string * float) list;
  profile : Profile.entry list;
}

let schema_version = 1

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, s when s <> "" -> s
    | _ -> "unknown"
  with _ -> "unknown"

let capture ~kind ~name ~seed ~scale ~jobs ?(metrics = []) () =
  {
    schema_version;
    kind;
    name;
    seed;
    scale;
    jobs;
    git = git_describe ();
    cores = Domain.recommended_domain_count ();
    phases =
      List.map
        (fun (phase, (wall_s, cpu_s, count)) -> { phase; wall_s; cpu_s; count })
        (Span.totals ());
    counters = Counter.dump ();
    histograms = Histogram.dump ();
    metrics;
    (* Empty unless this run enabled [Profile] and kernels recorded rows
       — and an empty list is omitted from the JSON, so non-profiled
       manifests are byte-identical to the pre-profile schema. *)
    profile = Profile.snapshot ();
  }

let counter t name = List.assoc_opt name t.counters
let metric t name = List.assoc_opt name t.metrics
let profile_row t name = List.find_opt (fun (r : Profile.entry) -> r.kernel = name) t.profile

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                      *)

let to_json t =
  let open Jsonx in
  Obj
    ([
      ("schema_version", Int t.schema_version);
      ("kind", String t.kind);
      ("name", String t.name);
      ("seed", Int t.seed);
      ("scale", Float t.scale);
      ("jobs", Int t.jobs);
      ("git", String t.git);
      ("cores", Int t.cores);
      ( "phases",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("name", String p.phase);
                   ("wall_s", Float p.wall_s);
                   ("cpu_s", Float p.cpu_s);
                   ("count", Int p.count);
                 ])
             t.phases) );
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) t.counters));
      ( "histograms",
        Obj
          (List.map
             (fun (k, cells) -> (k, List (Array.to_list (Array.map (fun c -> Int c) cells))))
             t.histograms) );
      ("metrics", Obj (List.map (fun (k, v) -> (k, Float v)) t.metrics));
    ]
    @
    (* Optional trailing section: absent when the run was not profiled,
       so pre-profile manifests round-trip byte-identically. *)
    (match t.profile with
    | [] -> []
    | rows ->
        [
          ( "profile",
            List
              (List.map
                 (fun (r : Profile.entry) ->
                   Obj
                     [
                       ("kernel", String r.kernel);
                       ("wall_s", Float r.wall_s);
                       ("count", Int r.count);
                       ("ops", Int r.ops);
                       ("minor_words", Float r.minor_words);
                       ("major_words", Float r.major_words);
                       ("promoted_words", Float r.promoted_words);
                     ])
                 rows) );
        ]))

let of_json j =
  let open Jsonx in
  let phases =
    List.map
      (fun p ->
        {
          phase = get_string (member "name" p);
          wall_s = get_float (member "wall_s" p);
          cpu_s = get_float (member "cpu_s" p);
          count = get_int (member "count" p);
        })
      (get_list (member "phases" j))
  in
  {
    schema_version = get_int (member "schema_version" j);
    kind = get_string (member "kind" j);
    name = get_string (member "name" j);
    seed = get_int (member "seed" j);
    scale = get_float (member "scale" j);
    jobs = get_int (member "jobs" j);
    git = get_string (member "git" j);
    cores = get_int (member "cores" j);
    phases;
    counters = List.map (fun (k, v) -> (k, get_int v)) (get_obj (member "counters" j));
    histograms =
      List.map
        (fun (k, v) -> (k, Array.of_list (List.map get_int (get_list v))))
        (get_obj (member "histograms" j));
    metrics = List.map (fun (k, v) -> (k, get_float v)) (get_obj (member "metrics" j));
    profile =
      (match member "profile" j with
      | Null -> [] (* pre-profile manifests have no such section *)
      | p ->
          List.map
            (fun r : Profile.entry ->
              {
                kernel = get_string (member "kernel" r);
                wall_s = get_float (member "wall_s" r);
                count = get_int (member "count" r);
                ops = get_int (member "ops" r);
                minor_words = get_float (member "minor_words" r);
                major_words = get_float (member "major_words" r);
                promoted_words = get_float (member "promoted_words" r);
              })
            (get_list p));
  }

let to_string t = Jsonx.to_string (to_json t) ^ "\n"
let of_string s = of_json (Jsonx.of_string (String.trim s))

(* ------------------------------------------------------------------ *)
(* Files                                                              *)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_path path t =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let write ~dir t =
  let path = Filename.concat dir (Printf.sprintf "%s-%d.json" t.name t.seed) in
  write_path path t;
  path

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s
