(** Log-scale latency histograms with power-of-two bucket boundaries.

    Bucket 0 holds non-positive observations; bucket [b >= 1] holds the
    integer range [[2^(b-1), 2^b - 1]] — so boundaries are {e exact} at
    powers of two: an observation of [2^k] lands one bucket above
    [2^k - 1].  64 buckets cover the whole of [int].  Values are meant
    to be latencies in nanoseconds (a chunk of Monte-Carlo replicas, a
    queue drain), where factor-of-two resolution is plenty and recording
    is one atomic increment.

    Like counters, histograms are registered globally by name, gated on
    {!Control.enabled}, and domain-safe. *)

type t

val make : string -> t
(** Registered under [name]; idempotent like {!Counter.make}. *)

val name : t -> string

val observe : t -> int -> unit
(** Record one observation when observability is enabled. *)

val bucket_of : int -> int
(** The bucket index an observation would land in (pure; exposed for
    tests and decoders). *)

val lower_bound : int -> int
(** Smallest value of a bucket: [0] for bucket 0, [2^(b-1)] for
    [b >= 1]. *)

val counts : t -> int array
(** Per-bucket counts up to the highest non-empty bucket (so an unused
    histogram yields [[||]]). *)

val total : t -> int

val dump : unit -> (string * int array) list
(** All registered histograms with non-zero totals, sorted by name. *)

val reset_all : unit -> unit
