(* Per-kernel profiling: wall time plus GC allocation deltas, keyed by
   kernel name.  Unlike [Span] (coordinator-only, nestable phase
   timings), profile rows are flat per-kernel aggregates protected by a
   mutex, because the sharded solver runs [Greedy.stable_config] inside
   worker domains.  The enable flag is separate from [Control]: counters
   stay cheap enough for every run, whereas reading [Gc.counters] and
   the clock around each kernel is something only [--profile-phases]
   runs opt into. *)

type entry = {
  kernel : string;
  wall_s : float;
  count : int;
  ops : int;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type row = {
  mutable r_wall : float;
  mutable r_count : int;
  mutable r_ops : int;
  mutable r_minor : float;
  mutable r_major : float;
  mutable r_promoted : float;
}

let flag = Atomic.make false
let set_enabled b = Atomic.set flag b

let[@inline always] enabled () = Atomic.get flag

let mu = Mutex.create ()
let rows : (string, row) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref [] (* reversed first-entry order *)

(* call with [mu] held *)
let row_of name =
  match Hashtbl.find_opt rows name with
  | Some r -> r
  | None ->
      let r =
        { r_wall = 0.; r_count = 0; r_ops = 0; r_minor = 0.; r_major = 0.; r_promoted = 0. }
      in
      Hashtbl.add rows name r;
      order := name :: !order;
      r

type snap = { wall : float; minor : float; promoted : float; major : float }

(* Shared sentinel handed out while profiling is off; [stop] recognises
   it physically, so a start/stop pair straddling an enable toggle never
   records a garbage interval. *)
let disabled_snap = { wall = 0.; minor = 0.; promoted = 0.; major = 0. }

let start () =
  if not (enabled ()) then disabled_snap
  else begin
    let minor, promoted, major = Gc.counters () in
    { wall = Unix.gettimeofday (); minor; promoted; major }
  end

let stop name ?(ops = 0) snap =
  if enabled () && snap != disabled_snap then begin
    let minor, promoted, major = Gc.counters () in
    let wall = Unix.gettimeofday () -. snap.wall in
    Mutex.lock mu;
    let r = row_of name in
    r.r_wall <- r.r_wall +. wall;
    r.r_count <- r.r_count + 1;
    r.r_ops <- r.r_ops + ops;
    r.r_minor <- r.r_minor +. (minor -. snap.minor);
    r.r_major <- r.r_major +. (major -. snap.major);
    r.r_promoted <- r.r_promoted +. (promoted -. snap.promoted);
    Mutex.unlock mu
  end

let record name ?(ops = 0) ?(minor_words = 0.) ?(major_words = 0.) ?(promoted_words = 0.)
    ~wall_s () =
  if enabled () then begin
    Mutex.lock mu;
    let r = row_of name in
    r.r_wall <- r.r_wall +. wall_s;
    r.r_count <- r.r_count + 1;
    r.r_ops <- r.r_ops + ops;
    r.r_minor <- r.r_minor +. minor_words;
    r.r_major <- r.r_major +. major_words;
    r.r_promoted <- r.r_promoted +. promoted_words;
    Mutex.unlock mu
  end

let with_ name ?(ops = 0) f =
  if not (enabled ()) then f ()
  else begin
    let snap = start () in
    Fun.protect ~finally:(fun () -> stop name ~ops snap) f
  end

let snapshot () =
  Mutex.lock mu;
  let out =
    List.rev_map
      (fun kernel ->
        let r = Hashtbl.find rows kernel in
        {
          kernel;
          wall_s = r.r_wall;
          count = r.r_count;
          ops = r.r_ops;
          minor_words = r.r_minor;
          major_words = r.r_major;
          promoted_words = r.r_promoted;
        })
      !order
  in
  Mutex.unlock mu;
  out

let reset () =
  Mutex.lock mu;
  Hashtbl.reset rows;
  order := [];
  Mutex.unlock mu
