(** Span-scoped probes: named, nestable wall/CPU timing regions.

    [with_ "exec.merge" f] times [f] and folds the interval into the
    global aggregate for that name (total wall, total CPU, entry count).
    Spans nest — an inner span's time is also part of every enclosing
    span's time, which is what a phase breakdown wants — and the
    aggregates come back in first-entry order, which gives run manifests
    a stable, chronological phase list.

    Spans are {e coordinator-domain} probes: they share one aggregation
    table and one stack, so only the domain that orchestrates a run may
    open them.  Worker-domain measurements belong in {!Histogram} or
    {!Counter}.  When {!Control.enabled} is false, [with_] runs its
    thunk with no clock reads at all. *)

val with_ : string -> (unit -> 'a) -> 'a
(** Time the thunk under the given span name (exception-safe: the
    interval is recorded even if the thunk raises). *)

val totals : unit -> (string * (float * float * int)) list
(** [(name, (wall_s, cpu_s, count))] per span name, in the order the
    names were first entered. *)

val depth : unit -> int
(** Number of currently open spans (0 outside any [with_]) — exposed so
    tests can assert proper nesting and unwinding. *)

val reset : unit -> unit
(** Drop all aggregates.  Raises [Invalid_argument] if spans are still
    open. *)
