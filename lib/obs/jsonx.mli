(** Minimal JSON tree, printer and parser.

    The repository deliberately has no JSON dependency; run manifests
    only need objects, arrays, strings, ints and floats.  The printer
    emits standard JSON (floats chosen so they parse back to the same
    bits); the parser accepts standard JSON including escape sequences
    and [\uXXXX] (encoded to UTF-8).  [to_string (of_string s)] is the
    identity on values, which the test suite pins. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message naming the byte offset. *)

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation;
    otherwise one compact line. *)

val of_string : string -> t
(** Numbers without [.], [e] or [E] parse as [Int]; everything else
    numeric as [Float]. *)

(** {2 Accessors} — all raise {!Parse_error} on shape mismatch, naming
    the offending member, so decoder errors point at the field. *)

val member : string -> t -> t
(** Field of an object; [Null] if absent. *)

val get_int : t -> int
val get_float : t -> float
(** Accepts [Int] too. *)

val get_string : t -> string
val get_list : t -> t list
val get_obj : t -> (string * t) list
