let buckets = 64

type t = { name : string; cells : int Atomic.t array }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let make name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h = { name; cells = Array.init buckets (fun _ -> Atomic.make 0) } in
          Hashtbl.add registry name h;
          h)

let name t = t.name

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* Position of the highest set bit, plus one: 1 -> 1, 2..3 -> 2,
       4..7 -> 3, …  Exact by construction — no float log. *)
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    !b
  end

let lower_bound b = if b <= 0 then 0 else 1 lsl (b - 1)
let observe t v = if Control.enabled () then Atomic.incr t.cells.(bucket_of v)

let counts t =
  let hi = ref 0 in
  Array.iteri (fun i c -> if Atomic.get c > 0 then hi := i + 1) t.cells;
  Array.init !hi (fun i -> Atomic.get t.cells.(i))

let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

let dump () =
  let all =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold
          (fun name h acc -> if total h > 0 then (name, counts h) :: acc else acc)
          registry [])
  in
  List.sort compare all

let reset_all () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ h -> Array.iter (fun c -> Atomic.set c 0) h.cells) registry)
