(** Upstream-capacity distributions as piecewise log-linear CDFs.

    Measured access-link distributions (Fig 10 of the paper, after Saroiu
    et al. 2002) span four decades and are naturally described by control
    points [(bandwidth, cumulative fraction)] interpolated linearly in
    log-bandwidth.  Steep segments are {e density peaks} — the popular
    access technologies that drive the share-ratio structure of Fig 11. *)

type t

val of_points : (float * float) array -> t
(** Control points: bandwidths strictly increasing and positive, fractions
    non-decreasing from 0 to 1.  Raises [Invalid_argument] otherwise. *)

val support : t -> float * float
(** Smallest and largest representable bandwidth. *)

val cdf : t -> float -> float
(** Fraction of hosts with upstream ≤ the given bandwidth (clamped outside
    the support). *)

val quantile : t -> float -> float
(** Inverse CDF for [u ∈ \[0,1\]]; log-linear interpolation. *)

val density : t -> float -> float
(** dF/dx at a bandwidth (piecewise value; 0 outside the support). *)

val sample : t -> Stratify_prng.Rng.t -> float
(** Inverse-transform sampling. *)

val rank_bandwidths : t -> n:int -> float array
(** Discretise the population into [n] rank slots, best first:
    [out.(r) = quantile (1 − (r + ½)/n)].  This is the bandwidth → global
    ranking bridge of §6.  Raises [Invalid_argument] (naming the
    offending value) when [n < 2] — a single rank slot has no ranking
    to bridge. *)

val to_series : t -> points:int -> Stratify_stats.Series.t
(** CDF sampled at log-spaced abscissae, as percentages (Fig 10's axes). *)
