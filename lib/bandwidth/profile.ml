module Rng = Stratify_prng.Rng
module Series = Stratify_stats.Series

type t = { bw : float array; frac : float array }

let of_points points =
  let k = Array.length points in
  if k < 2 then invalid_arg "Profile.of_points: need at least two control points";
  let bw = Array.map fst points and frac = Array.map snd points in
  for i = 0 to k - 1 do
    if bw.(i) <= 0. then invalid_arg "Profile.of_points: bandwidths must be positive";
    if i > 0 && bw.(i) <= bw.(i - 1) then
      invalid_arg "Profile.of_points: bandwidths must be strictly increasing";
    if i > 0 && frac.(i) < frac.(i - 1) then
      invalid_arg "Profile.of_points: fractions must be non-decreasing"
  done;
  if frac.(0) <> 0. || frac.(k - 1) <> 1. then
    invalid_arg "Profile.of_points: fractions must run from 0 to 1";
  { bw; frac }

let support t = (t.bw.(0), t.bw.(Array.length t.bw - 1))

(* Largest index i with key.(i) <= x, assuming key.(0) <= x. *)
let locate key x =
  let lo = ref 0 and hi = ref (Array.length key - 1) in
  if key.(!hi) <= x then !hi
  else begin
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if key.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let cdf t x =
  let k = Array.length t.bw in
  if x <= t.bw.(0) then 0.
  else if x >= t.bw.(k - 1) then 1.
  else begin
    let i = locate t.bw x in
    let lx = log x and l0 = log t.bw.(i) and l1 = log t.bw.(i + 1) in
    t.frac.(i) +. ((lx -. l0) /. (l1 -. l0) *. (t.frac.(i + 1) -. t.frac.(i)))
  end

let quantile t u =
  let u = Float.max 0. (Float.min 1. u) in
  let k = Array.length t.frac in
  if u <= 0. then t.bw.(0)
  else if u >= 1. then t.bw.(k - 1)
  else begin
    let i = ref (locate t.frac u) in
    (* Skip zero-width (flat) segments so interpolation is well-defined. *)
    while !i < k - 1 && t.frac.(!i + 1) = t.frac.(!i) do
      incr i
    done;
    if !i >= k - 1 then t.bw.(k - 1)
    else begin
      let f0 = t.frac.(!i) and f1 = t.frac.(!i + 1) in
      let l0 = log t.bw.(!i) and l1 = log t.bw.(!i + 1) in
      exp (l0 +. ((u -. f0) /. (f1 -. f0) *. (l1 -. l0)))
    end
  end

let density t x =
  let k = Array.length t.bw in
  if x <= t.bw.(0) || x >= t.bw.(k - 1) then 0.
  else begin
    let i = locate t.bw x in
    let dlog = log t.bw.(i + 1) -. log t.bw.(i) in
    (t.frac.(i + 1) -. t.frac.(i)) /. dlog /. x
  end

let sample t rng = quantile t (Rng.unit_float rng)

let rank_bandwidths t ~n =
  (* A 1-slot "population" has no ranking to bridge to (§6 compares
     peers across rank slots); every swarm caller needs n >= 2 anyway,
     so reject the degenerate size by name instead of returning a
     meaningless single median. *)
  if n < 2 then
    invalid_arg (Printf.sprintf "Profile.rank_bandwidths: need n >= 2 rank slots (got %d)" n);
  Array.init n (fun r -> quantile t (1. -. ((float_of_int r +. 0.5) /. float_of_int n)))

let to_series t ~points =
  if points < 2 then invalid_arg "Profile.to_series: need at least two points";
  let lo, hi = support t in
  let llo = log lo and lhi = log hi in
  let samples =
    Array.init points (fun i ->
        let x = exp (llo +. (float_of_int i /. float_of_int (points - 1) *. (lhi -. llo))) in
        (x, 100. *. cdf t x))
  in
  Series.make "upstream CDF (%)" samples
