(** A synthetic upstream-capacity profile calibrated to Fig 10 of the
    paper (itself derived from Saroiu, Gummadi & Gribble's 2002 Gnutella
    measurement).

    The original dataset is not available; this instance reproduces the
    {e shape} that drives §6's analysis — a four-decade span (10 kbps to
    100 Mbps) with density peaks at the access technologies of the era:
    56k modems, ISDN/DSL 128–640 kbps, ~1–3 Mbps cable, 10 Mbps LAN and
    T3.  See DESIGN.md §2 for the substitution rationale. *)

val profile : Profile.t
(** The calibrated CDF (bandwidths in kbps). *)

val density_peaks : float array
(** Centre bandwidths (kbps) of the profile's density peaks, increasing —
    the abscissae near which Fig 11 predicts share ratios ≈ 1 and just
    above which it predicts efficiency peaks. *)

val median_upstream : float
(** Median upstream in kbps (diagnostic). *)
