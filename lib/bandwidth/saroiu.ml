(* Control points (kbps, cumulative fraction).  Steep segments encode the
   density peaks of 2002-era access technologies; the overall envelope
   follows Fig 10 of the paper: ~20% of hosts below 100 kbps, ~70% below
   1 Mbps, a long tail to 100 Mbps. *)
let control_points =
  [|
    (10., 0.00);
    (48., 0.03);
    (53., 0.04);
    (58., 0.13);   (* 56k modem peak *)
    (64., 0.14);
    (118., 0.17);
    (124., 0.18);
    (134., 0.29);  (* ISDN / 128k DSL peak *)
    (145., 0.30);
    (240., 0.33);
    (250., 0.34);
    (264., 0.45);  (* 256k DSL peak *)
    (285., 0.46);
    (600., 0.51);
    (620., 0.52);
    (665., 0.63);  (* 640k DSL peak *)
    (720., 0.64);
    (1040., 0.67);
    (1080., 0.68);
    (1160., 0.79); (* ~1 Mbps cable peak *)
    (1250., 0.80);
    (2850., 0.835);
    (2950., 0.84);
    (3150., 0.90); (* 3 Mbps cable peak *)
    (3400., 0.905);
    (9600., 0.925);
    (9900., 0.93);
    (10600., 0.965); (* 10 Mbps LAN peak *)
    (11400., 0.967);
    (43000., 0.974);
    (44300., 0.975);
    (46000., 0.99); (* T3 peak *)
    (49000., 0.992);
    (100000., 1.00);
  |]

let profile = Profile.of_points control_points

let density_peaks = [| 56.; 129.; 257.; 650.; 1120.; 3050.; 10250.; 45000. |]

let median_upstream = Profile.quantile profile 0.5
