(** Calendar-queue event-queue backend ([--queue calendar]).

    A power-of-two directory of "day" buckets cycled year after year:
    O(1) amortized insert and pop when inter-event gaps are near-uniform
    (R. Brown, CACM 1988) — the regime `Net`'s latency draws produce.
    The directory resizes (with a deterministic width recomputation)
    as the population grows and shrinks.

    Same contract as {!Binq}: slots ordered by the total key
    [(times.(slot), seq)], popped in identical order to every other
    backend.  Times must be non-negative and inserts must not predate
    the last removal — both guaranteed by the engine.  Steady-state
    operation allocates nothing; only pool and directory growth do. *)

type t

val create : unit -> t

val size : t -> int

val buckets : t -> int
(** Current bucket-directory size (a power of two) — exposed for the
    resize unit tests. *)

val resizes : t -> int
(** Number of directory rebuilds so far — exposed for the resize unit
    tests. *)

val add : t -> float array -> seq:int -> slot:int -> unit
(** [add q times ~seq ~slot] inserts [slot] with key
    [(times.(slot), seq)]; the time is copied. *)

val pop_min : t -> max_time:float -> int
(** Remove and return the least-key slot if its time is [<= max_time];
    [-1] when empty or the minimum lies beyond [max_time] (nothing is
    removed or otherwise committed in that case). *)

val clear : t -> unit
(** Empty the queue and release backing storage. *)
