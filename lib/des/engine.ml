(* Discrete-event engine over pluggable queue backends.

   Events live in a structure-of-arrays slot store threaded by a free
   list: a float time, an int payload code, and (only for legacy
   closure events) a callback.  The queue backends (Binq / Calq / Ladq)
   order plain int slots by the total key (time, seq), so every backend
   pops the identical sequence and `--queue` never changes results —
   the same invariance discipline as `--jobs` and `--bands`.

   The hot path is allocation-free in steady state: scheduling a packed
   event writes scalars into recycled slot arrays and backend pools;
   firing one reads them back and dispatches on the int code through
   the installed handler.  Three non-flambda boxing traps shape the
   code: freshly computed floats must not cross function boundaries
   (backends read the event time from the shared [st] array instead of
   a float argument), the clock lives in an all-float record (a mutable
   float field in the main mixed record would box on every store), and
   float comparisons stay on locally loaded values.

   Closure events still allocate their closure (by nature) but release
   it eagerly: the slot's [sf] cell is reset to a shared null function
   the moment the event fires, so fired callbacks never linger in the
   pool — the same leak class fixed in [Pqueue.pop]. *)

type backend = Heap | Calendar | Ladder

let backends = [ Heap; Calendar; Ladder ]
let backend_name = function Heap -> "heap" | Calendar -> "calendar" | Ladder -> "ladder"

let backend_of_string = function
  | "heap" -> Some Heap
  | "calendar" -> Some Calendar
  | "ladder" -> Some Ladder
  | _ -> None

(* The process-wide default, set once from `--queue` by the CLI drivers
   so every engine created behind Net / Async_dynamics / Plan picks it
   up without threading a parameter through each constructor. *)
let default = Atomic.make Heap
let set_default_backend b = Atomic.set default b
let default_backend () = Atomic.get default

type queue = Qh of Binq.t | Qc of Calq.t | Ql of Ladq.t

(* All-float record: an unboxed mutable cell for the simulated clock. *)
type clock = { mutable now_ : float }

type t = {
  mutable queue : queue;
      (* replaced wholesale by [dump_packed]: a drained backend queue's
         pop cursor sits past every pending time, so rebuilding must
         start from a fresh queue *)
  clock : clock;
  (* slot store (structure of arrays) *)
  mutable st : float array; (* slot -> event time *)
  mutable sc : int array; (* slot -> packed code, -1 for closure events *)
  mutable sf : (t -> unit) array; (* slot -> callback (null_fn when unused) *)
  mutable sn : int array; (* free-list links *)
  mutable free : int;
  mutable next_seq : int;
  mutable npending : int;
  mutable packed : t -> int -> unit;
  (* profile row names, precomputed so instrumentation never builds strings *)
  drain_kernel : string;
  run_kernel : string;
}

let null_fn : t -> unit = fun _ -> ()

let no_packed_handler (_ : t) (_ : int) =
  invalid_arg "Engine: packed event fired but no packed handler is installed"

(* Bumped when a [drain] call gives up because its event budget ran out —
   the signal that an event loop fed itself forever.  Callers (e.g.
   [Async_dynamics.quiesce]) surface it as an explicit non-convergence
   outcome; the counter makes it visible in run manifests too. *)
let drain_budget_exhausted = Stratify_obs.Counter.make "des.drain_budget_exhausted"

let create ?backend () =
  let backend = match backend with Some b -> b | None -> Atomic.get default in
  let queue =
    match backend with
    | Heap -> Qh (Binq.create ())
    | Calendar -> Qc (Calq.create ())
    | Ladder -> Ql (Ladq.create ())
  in
  let name = backend_name backend in
  {
    queue;
    clock = { now_ = 0. };
    st = [||];
    sc = [||];
    sf = [||];
    sn = [||];
    free = -1;
    next_seq = 0;
    npending = 0;
    packed = no_packed_handler;
    drain_kernel = "des.drain." ^ name;
    run_kernel = "des.run_until." ^ name;
  }

let backend t = match t.queue with Qh _ -> Heap | Qc _ -> Calendar | Ql _ -> Ladder
let now t = t.clock.now_
let pending t = t.npending
let set_packed_handler t f = t.packed <- f

let grow_slots t =
  let cap = Array.length t.sn in
  let cap' = max 16 (2 * cap) in
  let st = Array.make cap' 0.
  and sc = Array.make cap' (-1)
  and sf = Array.make cap' null_fn
  and sn = Array.make cap' (-1) in
  Array.blit t.st 0 st 0 cap;
  Array.blit t.sc 0 sc 0 cap;
  Array.blit t.sf 0 sf 0 cap;
  Array.blit t.sn 0 sn 0 cap;
  for i = cap to cap' - 2 do
    sn.(i) <- i + 1
  done;
  sn.(cap' - 1) <- t.free;
  t.free <- cap;
  t.st <- st;
  t.sc <- sc;
  t.sf <- sf;
  t.sn <- sn

let[@inline] alloc_slot t =
  if t.free = -1 then grow_slots t;
  let s = t.free in
  t.free <- t.sn.(s);
  s

let[@inline] enqueue t s =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.npending <- t.npending + 1;
  match t.queue with
  | Qh q -> Binq.add q t.st ~seq ~slot:s
  | Qc q -> Calq.add q t.st ~seq ~slot:s
  | Ql q -> Ladq.add q t.st ~seq ~slot:s

let schedule_at t ~time f =
  if time < t.clock.now_ then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.clock.now_);
  let s = alloc_slot t in
  t.st.(s) <- time;
  t.sc.(s) <- -1;
  t.sf.(s) <- f;
  enqueue t s

let schedule t ~delay f =
  if delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule: negative delay %g" delay);
  let s = alloc_slot t in
  t.st.(s) <- t.clock.now_ +. delay;
  t.sc.(s) <- -1;
  t.sf.(s) <- f;
  enqueue t s

let schedule_packed_at t ~time code =
  if code < 0 then invalid_arg "Engine.schedule_packed_at: negative event code";
  if time < t.clock.now_ then
    invalid_arg
      (Printf.sprintf "Engine.schedule_packed_at: time %g is in the past (now %g)" time
         t.clock.now_);
  let s = alloc_slot t in
  t.st.(s) <- time;
  t.sc.(s) <- code;
  enqueue t s

let schedule_packed t ~delay code =
  if code < 0 then invalid_arg "Engine.schedule_packed: negative event code";
  if delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule_packed: negative delay %g" delay);
  let s = alloc_slot t in
  t.st.(s) <- t.clock.now_ +. delay;
  t.sc.(s) <- code;
  enqueue t s

let[@inline] pop_due t max_time =
  match t.queue with
  | Qh q -> Binq.pop_min q ~max_time
  | Qc q -> Calq.pop_min q ~max_time
  | Ql q -> Ladq.pop_min q ~max_time

(* Fire slot [s]: advance the clock, release the slot (the callback cell
   is nulled so the pool never pins a fired closure), then dispatch. *)
let fire t s =
  let time = t.st.(s) in
  if time > t.clock.now_ then t.clock.now_ <- time;
  let code = t.sc.(s) in
  let f = t.sf.(s) in
  t.sf.(s) <- null_fn;
  t.sn.(s) <- t.free;
  t.free <- s;
  t.npending <- t.npending - 1;
  if code >= 0 then t.packed t code else f t

let step t =
  let s = pop_due t infinity in
  if s < 0 then false
  else begin
    fire t s;
    true
  end

let run_until t ~time =
  if time < t.clock.now_ then
    invalid_arg
      (Printf.sprintf "Engine.run_until: time %g is in the past (now %g)" time
         t.clock.now_);
  let snap = Stratify_obs.Profile.start () in
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    let s = pop_due t time in
    if s < 0 then continue := false
    else begin
      fire t s;
      incr fired
    end
  done;
  t.clock.now_ <- time;
  Stratify_obs.Profile.stop t.run_kernel ~ops:!fired snap

(* Snapshot support (lib/serve): the pending queue as pure data.

   Popping every slot yields the canonical total (time, seq) order — the
   one order every backend agrees on — so re-adding the entries in that
   order (with fresh, increasing seqs) reconstructs an equivalent queue:
   relative order among the dumped events is preserved, and events
   scheduled later always get larger seqs in both the original and the
   restored engine.  The dump is therefore non-destructive, and its
   output is backend-independent. *)
let dump_packed t =
  let n = t.npending in
  let times = Array.make n 0.
  and codes = Array.make n (-1)
  and fns = Array.make n null_fn in
  for i = 0 to n - 1 do
    let s = pop_due t infinity in
    times.(i) <- t.st.(s);
    codes.(i) <- t.sc.(s);
    fns.(i) <- t.sf.(s);
    t.sf.(s) <- null_fn;
    t.sn.(s) <- t.free;
    t.free <- s;
    t.npending <- t.npending - 1
  done;
  (* Rebuild the queue before deciding whether to raise, so a failed dump
     leaves the engine exactly as it found it.  The drained backend queue
     is replaced with a fresh one first: draining moved its pop cursor
     (calendar [g.last], ladder rung state) past the maximum pending
     time, and re-inserting earlier events behind a committed cursor
     breaks the backends' "inserts never predate the last removal"
     invariant — events would sit unreachable until the clock caught up
     with the cursor, silently reordering pops. *)
  (match t.queue with
  | Qh _ -> t.queue <- Qh (Binq.create ())
  | Qc _ -> t.queue <- Qc (Calq.create ())
  | Ql _ -> t.queue <- Ql (Ladq.create ()));
  let closures = ref 0 in
  for i = 0 to n - 1 do
    if codes.(i) >= 0 then schedule_packed_at t ~time:times.(i) codes.(i)
    else begin
      incr closures;
      schedule_at t ~time:times.(i) fns.(i)
    end
  done;
  if !closures > 0 then
    invalid_arg
      (Printf.sprintf
         "Engine.dump_packed: queue holds %d closure event(s) — only packed (defunctionalized) \
          events are serializable"
         !closures);
  Array.init n (fun i -> (times.(i), codes.(i)))

let restore_packed ?backend ~now entries =
  if now < 0. then
    invalid_arg (Printf.sprintf "Engine.restore_packed: negative clock %g" now);
  let t = create ?backend () in
  t.clock.now_ <- now;
  Array.iter (fun (time, code) -> schedule_packed_at t ~time code) entries;
  t

let drain ?(max_events = 10_000_000) t =
  let snap = Stratify_obs.Profile.start () in
  let budget = ref max_events in
  while !budget > 0 && step t do
    decr budget
  done;
  let drained = t.npending = 0 in
  if not drained then Stratify_obs.Counter.incr drain_budget_exhausted;
  Stratify_obs.Profile.stop t.drain_kernel ~ops:(max_events - !budget) snap;
  drained
