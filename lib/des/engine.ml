type t = { queue : (t -> unit) Pqueue.t; mutable clock : float }

(* Bumped when a [drain] call gives up because its event budget ran out —
   the signal that an event loop fed itself forever.  Callers (e.g.
   [Async_dynamics.quiesce]) surface it as an explicit non-convergence
   outcome; the counter makes it visible in run manifests too. *)
let drain_budget_exhausted = Stratify_obs.Counter.make "des.drain_budget_exhausted"

let create () = { queue = Pqueue.create (); clock = 0. }
let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.clock);
  Pqueue.push t.queue ~priority:time f

let schedule t ~delay f =
  if delay < 0. then
    invalid_arg (Printf.sprintf "Engine.schedule: negative delay %g" delay);
  schedule_at t ~time:(t.clock +. delay) f

let pending t = Pqueue.size t.queue

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- Float.max t.clock time;
      f t;
      true

let run_until t ~time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.run_until: time %g is in the past (now %g)" time t.clock);
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.queue with
    | Some (next, _) when next <= time -> ignore (step t)
    | _ -> continue := false
  done;
  t.clock <- time

let drain ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  while !budget > 0 && step t do
    decr budget
  done;
  let drained = Pqueue.is_empty t.queue in
  if not drained then Stratify_obs.Counter.incr drain_budget_exhausted;
  drained
