type t = { queue : (t -> unit) Pqueue.t; mutable clock : float }

let create () = { queue = Pqueue.create (); clock = 0. }
let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Pqueue.push t.queue ~priority:time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let pending t = Pqueue.size t.queue

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- Float.max t.clock time;
      f t;
      true

let run_until t ~time =
  if time < t.clock then invalid_arg "Engine.run_until: time is in the past";
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.queue with
    | Some (next, _) when next <= time -> ignore (step t)
    | _ -> continue := false
  done;
  t.clock <- time

let drain ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  while !budget > 0 && step t do
    decr budget
  done;
  Pqueue.is_empty t.queue
