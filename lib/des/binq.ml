(* Binary min-heap over (time, seq) keys carrying int slot values — the
   baseline event-queue backend of the engine (`--queue heap`).

   Unlike {!Pqueue} this is a structure-of-arrays heap: keys live in a
   float array and an int array, values are plain ints, so sifting is
   pure scalar loads/stores/swaps and never allocates.  The key is read
   from [times.(slot)] at [add] time (see the note in {!Binq} about why
   the float is passed through an array rather than as an argument). *)

type t = {
  mutable kt : float array;  (* key: event time *)
  mutable ks : int array;    (* key: insertion sequence, breaks time ties *)
  mutable kv : int array;    (* value: engine slot index *)
  mutable len : int;
}

let create () = { kt = [||]; ks = [||]; kv = [||]; len = 0 }
let size t = t.len

let grow t =
  let cap = Array.length t.kv in
  if t.len >= cap then begin
    let cap' = max 16 (2 * cap) in
    let kt = Array.make cap' 0. and ks = Array.make cap' 0 and kv = Array.make cap' 0 in
    Array.blit t.kt 0 kt 0 t.len;
    Array.blit t.ks 0 ks 0 t.len;
    Array.blit t.kv 0 kv 0 t.len;
    t.kt <- kt;
    t.ks <- ks;
    t.kv <- kv
  end

(* key at [i] orders strictly before key at [j] *)
let[@inline] before t i j =
  t.kt.(i) < t.kt.(j) || (t.kt.(i) = t.kt.(j) && t.ks.(i) < t.ks.(j))

let[@inline] swap t i j =
  let ft = t.kt.(i) in
  t.kt.(i) <- t.kt.(j);
  t.kt.(j) <- ft;
  let s = t.ks.(i) in
  t.ks.(i) <- t.ks.(j);
  t.ks.(j) <- s;
  let v = t.kv.(i) in
  t.kv.(i) <- t.kv.(j);
  t.kv.(j) <- v

let add t times ~seq ~slot =
  grow t;
  let i = t.len in
  t.kt.(i) <- times.(slot);
  t.ks.(i) <- seq;
  t.kv.(i) <- slot;
  t.len <- t.len + 1;
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t !i parent
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let pop_min t ~max_time =
  if t.len = 0 || t.kt.(0) > max_time then -1
  else begin
    let slot = t.kv.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.kt.(0) <- t.kt.(t.len);
      t.ks.(0) <- t.ks.(t.len);
      t.kv.(0) <- t.kv.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t l !smallest then smallest := l;
        if r < t.len && before t r !smallest then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap t !i !smallest;
          i := !smallest
        end
      done
    end;
    slot
  end

let clear t =
  t.len <- 0;
  t.kt <- [||];
  t.ks <- [||];
  t.kv <- [||]
