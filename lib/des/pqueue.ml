type 'a entry = { priority : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused sentinel space via len *)
  mutable len : int;
  mutable next_seq : int;
}

(* Shared tombstone written into vacated slots.  Slots at index >= len are
   never read, so the bogus entry is only there to drop the reference the
   slot would otherwise retain: without it, a popped entry (and its closure
   payload, and everything the closure captures) stays reachable from the
   backing array until a later push overwrites the slot.  The cast is safe
   for the same reason Stdlib.Dynarray's dummy is: ['a entry] is a boxed
   record (never a float array), and the value never escapes. *)
let dummy : 'a entry = Obj.magic (Sys.opaque_identity (ref 0))

let create () = { heap = [||]; len = 0; next_seq = 0 }
let size t = t.len
let is_empty t = t.len = 0

let before a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t =
  let capacity = Array.length t.heap in
  if t.len >= capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) dummy in
    Array.blit t.heap 0 fresh 0 t.len;
    t.heap <- fresh
  end

let push t ~priority payload =
  let entry = { priority; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* Clear the vacated slot: it aliases the entry just moved to the
         root (or, for the last pop, the popped entry itself) and would
         pin it — payload closure included — until overwritten. *)
      t.heap.(t.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end
    else t.heap.(0) <- dummy;
    Some (top.priority, top.payload)
  end

let peek t = if t.len = 0 then None else Some (t.heap.(0).priority, t.heap.(0).payload)

let clear t =
  t.len <- 0;
  t.heap <- [||]
