(** Structure-of-arrays binary min-heap on (time, seq) keys — the
    baseline event-queue backend ([--queue heap]).

    All three backends ({!Binq}, {!Calq}, {!Ladq}) share this contract:
    entries are int [slot] values ordered by the total key
    [(times.(slot), seq)], where [seq] is the engine's monotonically
    increasing insertion sequence.  Because the key order is total, any
    correct min-extracting implementation pops slots in the identical
    order, which is the whole determinism argument for `--queue`
    invariance (DESIGN.md §14).

    The event time is read from [times.(slot)] rather than passed as a
    [float] argument: without flambda a freshly computed float crossing
    a function boundary gets boxed, and the engine's steady-state
    scheduling path must not allocate.  A [float array] load/store stays
    unboxed. *)

type t

val create : unit -> t

val size : t -> int

val add : t -> float array -> seq:int -> slot:int -> unit
(** [add q times ~seq ~slot] inserts [slot] with key
    [(times.(slot), seq)].  The time is copied; later mutation of
    [times.(slot)] does not affect ordering. *)

val pop_min : t -> max_time:float -> int
(** Remove and return the least-key slot if its time is [<= max_time];
    [-1] when the queue is empty or the minimum lies beyond [max_time]
    (nothing is removed in that case).  Pass [infinity] for an
    unconditional pop. *)

val clear : t -> unit
(** Empty the queue and release backing storage. *)
