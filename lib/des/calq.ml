(* Calendar queue backend (`--queue calendar`): a power-of-two array of
   "day" buckets, each a sorted intrusive list, cycled through year after
   year.  Insert hashes the event time to its bucket; pop sweeps at most
   one year's worth of buckets starting from the day of the last popped
   event, falling back to a direct min-over-bucket-heads search when the
   year comes up empty (a long jump in the schedule).  With near-uniform
   inter-event gaps — exactly what `Net`'s latency draws produce — both
   operations are O(1) amortized (R. Brown, CACM 1988).

   Determinism: equal times always hash to the same bucket, and within a
   bucket entries are kept sorted by (time, seq), so the pop order is the
   total (time, seq) order — byte-identical to the heap backend.

   The pop sweep commits no cursor state: the scan origin is always the
   time of the last *removed* event, so a fruitless probe (pop_min with a
   max_time cutoff) cannot skip over entries inserted behind it.  That is
   sound because the engine guarantees inserts never predate the last
   removal (schedule_at rejects past times, and the clock is monotone).

   Entries live in a structure-of-arrays pool threaded by a free list:
   steady-state insert/remove touches only scalar arrays and never
   allocates.  All mutable floats sit in an all-float record ([geo]) so
   stores stay unboxed (mixed-record float fields would box on every
   write). *)

type geo = {
  mutable width : float;  (* bucket ("day") width in simulated time *)
  mutable last : float;   (* time of the last removed entry: pop scan origin *)
}

type t = {
  g : geo;
  mutable mask : int;       (* bucket count - 1; bucket count is a power of two *)
  mutable head : int array; (* bucket -> first pool index, -1 when empty *)
  (* entry pool (structure of arrays) *)
  mutable pt : float array; (* entry time *)
  mutable ps : int array;   (* entry seq *)
  mutable pv : int array;   (* entry slot (the engine's payload handle) *)
  mutable pn : int array;   (* next entry in bucket list / free list, -1 ends *)
  mutable free : int;       (* free-list head through [pn] *)
  mutable size : int;
  mutable resizes : int;    (* bucket-array rebuilds, exposed for tests *)
}

let initial_buckets = 16
let max_bucket_bits = 22 (* cap the directory at 4M buckets *)

let create () =
  {
    g = { width = 1.0; last = 0.0 };
    mask = initial_buckets - 1;
    head = Array.make initial_buckets (-1);
    pt = [||];
    ps = [||];
    pv = [||];
    pn = [||];
    free = -1;
    size = 0;
    resizes = 0;
  }

let size t = t.size
let buckets t = t.mask + 1
let resizes t = t.resizes

let grow_pool t =
  let cap = Array.length t.pn in
  let cap' = max 16 (2 * cap) in
  let pt = Array.make cap' 0.
  and ps = Array.make cap' 0
  and pv = Array.make cap' 0
  and pn = Array.make cap' (-1) in
  Array.blit t.pt 0 pt 0 cap;
  Array.blit t.ps 0 ps 0 cap;
  Array.blit t.pv 0 pv 0 cap;
  Array.blit t.pn 0 pn 0 cap;
  (* thread the fresh slots onto the free list *)
  for i = cap to cap' - 2 do
    pn.(i) <- i + 1
  done;
  pn.(cap' - 1) <- t.free;
  t.free <- cap;
  t.pt <- pt;
  t.ps <- ps;
  t.pv <- pv;
  t.pn <- pn

let[@inline] alloc t =
  if t.free = -1 then grow_pool t;
  let e = t.free in
  t.free <- t.pn.(e);
  e

(* Bucket of [time]: position within the repeating year, divided by the
   day width.  Float.rem avoids the int overflow of a global day count
   when times are large relative to the width. *)
let[@inline] bucket_of t time =
  let w = t.g.width in
  let year = w *. float_of_int (t.mask + 1) in
  let pos = Float.rem time year in
  int_of_float (pos /. w) land t.mask

(* Sorted insert of pool entry [e] into bucket [b] by (time, seq).  The
   key is re-read from the pool ([pt]/[ps]) rather than passed in: a
   freshly computed float argument would box at every call site under
   the non-flambda compiler. *)
let link t b e =
  let time = t.pt.(e) and seq = t.ps.(e) in
  let h = t.head.(b) in
  if h = -1 || time < t.pt.(h) || (time = t.pt.(h) && seq < t.ps.(h)) then begin
    t.pn.(e) <- h;
    t.head.(b) <- e
  end
  else begin
    let prev = ref h in
    let cur = ref t.pn.(h) in
    while
      !cur <> -1 && (t.pt.(!cur) < time || (t.pt.(!cur) = time && t.ps.(!cur) < seq))
    do
      prev := !cur;
      cur := t.pn.(!cur)
    done;
    t.pn.(e) <- !cur;
    t.pn.(!prev) <- e
  end

(* Rebuild the bucket directory with [bits'] bucket bits and a width
   recomputed from the current contents: the span of pending times over
   the population, aiming for a few entries per day.  Deterministic — a
   pure function of the queue contents — so backend invariance survives
   resizes.  Degenerate spans (all times equal) keep the old width. *)
let rebuild t bits' =
  let nb' = 1 lsl bits' in
  let old_head = t.head in
  (* span of pending times *)
  let tmin = ref infinity and tmax = ref neg_infinity in
  Array.iter
    (fun h ->
      let cur = ref h in
      while !cur <> -1 do
        if t.pt.(!cur) < !tmin then tmin := t.pt.(!cur);
        if t.pt.(!cur) > !tmax then tmax := t.pt.(!cur);
        cur := t.pn.(!cur)
      done)
    old_head;
  let span = !tmax -. !tmin in
  if t.size > 1 && span > 0. && span < infinity then begin
    let w = span /. float_of_int t.size *. 1.5 in
    (* keep the day width sane: no denormals, no zero *)
    if w > 1e-300 then t.g.width <- w
  end;
  t.head <- Array.make nb' (-1);
  t.mask <- nb' - 1;
  t.resizes <- t.resizes + 1;
  Array.iter
    (fun h ->
      let cur = ref h in
      while !cur <> -1 do
        let e = !cur in
        cur := t.pn.(e);
        link t (bucket_of t t.pt.(e)) e
      done)
    old_head

let bits t =
  let rec go b = if 1 lsl b >= t.mask + 1 then b else go (b + 1) in
  go 0

let add t times ~seq ~slot =
  let e = alloc t in
  let time = times.(slot) in
  t.pt.(e) <- time;
  t.ps.(e) <- seq;
  t.pv.(e) <- slot;
  link t (bucket_of t time) e;
  t.size <- t.size + 1;
  if t.size > 2 * (t.mask + 1) && bits t < max_bucket_bits then rebuild t (bits t + 1)

(* Find (without removing) the minimum-key entry: sweep the buckets of
   the current year from the day containing [g.last] upward.  Every
   remaining entry has time >= g.last, and bucket assignment is monotone
   in year position, so the first bucket head belonging to the current
   year is the global minimum.  The year test is exact: [Float.rem] is
   an exact operation, so [time -. Float.rem time year] is the rounding
   of the true year start — equal floats iff two times share a year,
   with no accumulated window arithmetic to drift.  An empty sweep means
   the next event is beyond this year: direct-search the bucket heads. *)
let find_min t =
  let w = t.g.width in
  let nb = t.mask + 1 in
  let year = w *. float_of_int nb in
  let pos = Float.rem t.g.last year in
  let b0 = int_of_float (pos /. w) land t.mask in
  let year_start = t.g.last -. pos in
  let best = ref (-1) in
  let b = ref b0 in
  while !best = -1 && !b < nb do
    let h = t.head.(!b) in
    if h <> -1 && t.pt.(h) -. Float.rem t.pt.(h) year = year_start then best := h
    else incr b
  done;
  if !best = -1 then begin
    (* long jump: min over all bucket heads (each head is its bucket's min) *)
    for bb = 0 to nb - 1 do
      let h = t.head.(bb) in
      if h <> -1 then
        if
          !best = -1
          || t.pt.(h) < t.pt.(!best)
          || (t.pt.(h) = t.pt.(!best) && t.ps.(h) < t.ps.(!best))
        then best := h
    done
  end;
  !best

let pop_min t ~max_time =
  if t.size = 0 then -1
  else begin
    let e = find_min t in
    if t.pt.(e) > max_time then -1
    else begin
      let b = bucket_of t t.pt.(e) in
      (* the minimum is necessarily its bucket's head *)
      t.head.(b) <- t.pn.(e);
      t.g.last <- t.pt.(e);
      let slot = t.pv.(e) in
      t.pn.(e) <- t.free;
      t.free <- e;
      t.size <- t.size - 1;
      if t.size < (t.mask + 1) / 2 && t.mask + 1 > initial_buckets then
        rebuild t (bits t - 1);
      slot
    end
  end

let clear t =
  t.g.width <- 1.0;
  t.g.last <- 0.0;
  t.mask <- initial_buckets - 1;
  t.head <- Array.make initial_buckets (-1);
  t.pt <- [||];
  t.ps <- [||];
  t.pv <- [||];
  t.pn <- [||];
  t.free <- -1;
  t.size <- 0
