(** Ladder-queue event-queue backend ([--queue ladder]).

    Top / rungs / Bottom tiers (Tang, Goh & Thng, ACM TOMACS 2005,
    simplified): far-future inserts pile unsorted into Top; when their
    turn approaches they are spread over a rung of bucket spans,
    recursively refined ("spawned") one rung finer whenever a bucket
    holds more than the sort threshold; small buckets are
    insertion-sorted into Bottom, where pops come from.  Robust to the
    skewed and bursty schedules that defeat a calendar queue's uniform
    day width.

    Same contract as {!Binq}: slots ordered by the total key
    [(times.(slot), seq)], popped in identical order to every other
    backend.  Times must not predate the last removal (guaranteed by
    the engine).  Rungs and pools are preallocated and reused, so
    steady-state operation allocates nothing. *)

type t

val create : unit -> t

val size : t -> int

val active_rungs : t -> int
(** Rungs currently live — exposed for the spawn-threshold unit
    tests. *)

val spawned : t -> int
(** Child rungs ever spawned (bucket populations over the sort
    threshold forced a finer subdivision) — exposed for the
    spawn-threshold unit tests. *)

val add : t -> float array -> seq:int -> slot:int -> unit
(** [add q times ~seq ~slot] inserts [slot] with key
    [(times.(slot), seq)]; the time is copied. *)

val pop_min : t -> max_time:float -> int
(** Remove and return the least-key slot if its time is [<= max_time];
    [-1] when empty or the minimum lies beyond [max_time] (nothing is
    removed in that case; internal lazy restructuring may still run). *)

val clear : t -> unit
(** Empty the queue and release backing storage. *)
