(** Discrete-event simulation engine.

    A simulated clock plus an event queue.  Events scheduled for the
    same instant fire in scheduling order, so runs are deterministic.
    This is the substrate of the asynchronous message-passing dynamics
    (the paper's peers act "anytime", not in rounds).

    The queue itself is pluggable ({!backend}, the [--queue] flag):
    a binary heap, a calendar queue, or a ladder queue.  All three pop
    in the identical total (time, seq) order, so the backend choice
    never changes simulation results — only events/sec (DESIGN.md §14).

    Two payload flavours share the queue: classic closure callbacks,
    and defunctionalized "packed" events — a non-negative int code
    (typically bit-packed src/dst/kind, see [Net.Packed]) dispatched
    through a per-engine handler.  Packed events make the steady-state
    scheduling path allocation-free: no closure, no heap entry, just
    scalars in recycled slot arrays. *)

type t

(** {1 Queue backends} *)

type backend =
  | Heap  (** binary heap — the robust general-purpose baseline *)
  | Calendar  (** calendar queue — O(1) amortized for near-uniform gaps *)
  | Ladder  (** ladder queue — robust to skewed / bursty schedules *)

val backends : backend list
(** All backends, in flag order: heap, calendar, ladder. *)

val backend_name : backend -> string
(** ["heap"], ["calendar"] or ["ladder"] — the [--queue] spelling. *)

val backend_of_string : string -> backend option

val set_default_backend : backend -> unit
(** Process-wide default for {!create} — how the [--queue] flag reaches
    engines created deep inside [Net] / [Async_dynamics] / [Plan]
    without threading a parameter through every constructor.  Initially
    {!Heap}. *)

val default_backend : unit -> backend

(** {1 Engine} *)

val create : ?backend:backend -> unit -> t
(** [backend] defaults to {!default_backend}. *)

val backend : t -> backend

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] time units from now ([delay ≥ 0]).  Raises
    [Invalid_argument] naming the offending delay otherwise — jittered
    latency draws that go negative fail loudly, not silently. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past.  Raises
    [Invalid_argument] naming the offending time and the current clock. *)

val schedule_packed : t -> delay:float -> int -> unit
(** Like {!schedule} for a defunctionalized event: [code ≥ 0] is stored
    instead of a closure and dispatched through the handler installed
    with {!set_packed_handler}.  Allocation-free in steady state. *)

val schedule_packed_at : t -> time:float -> int -> unit
(** Absolute-time variant of {!schedule_packed}. *)

val set_packed_handler : t -> (t -> int -> unit) -> unit
(** Install the dispatcher for packed event codes.  Firing a packed
    event with no handler installed raises [Invalid_argument]. *)

val pending : t -> int

val step : t -> bool
(** Fire the single earliest pending event; [false] when idle. *)

val run_until : t -> time:float -> unit
(** Process events with timestamp [≤ time], then advance the clock to
    [time]. *)

val dump_packed : t -> (float * int) array
(** The pending queue as pure data, in the canonical pop order (the total
    (time, seq) order every backend agrees on) — the serializable form
    used by deterministic snapshot/restore.  Non-destructive: the queue
    is intact (and equivalent) afterwards.  Raises [Invalid_argument]
    when a closure event is pending — only packed events are data. *)

val restore_packed : ?backend:backend -> now:float -> (float * int) array -> t
(** A fresh engine whose clock reads [now] and whose queue pops exactly
    the given [(time, code)] entries in array order (entries must be in
    canonical order, i.e. straight from {!dump_packed} — times before
    [now] raise [Invalid_argument]).  Because the dump order is the
    backend-invariant total order, a snapshot taken under one [backend]
    restores bit-identically under any other. *)

val drain : ?max_events:int -> t -> bool
(** Process everything left (events may schedule more).  Returns [false]
    if the [max_events] budget (default 10⁷) ran out first — the runaway
    guard for event loops that feed themselves.  A budget exhaustion also
    bumps the ["des.drain_budget_exhausted"] observability counter so
    instrumented runs cannot mistake a truncated drain for quiescence. *)
