(** Discrete-event simulation engine.

    A simulated clock plus an event queue of callbacks.  Events scheduled
    for the same instant fire in scheduling order, so runs are
    deterministic.  This is the substrate of the asynchronous
    message-passing dynamics (the paper's peers act "anytime", not in
    rounds). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] time units from now ([delay ≥ 0]).  Raises
    [Invalid_argument] naming the offending delay otherwise — jittered
    latency draws that go negative fail loudly, not silently. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past.  Raises
    [Invalid_argument] naming the offending time and the current clock. *)

val pending : t -> int

val run_until : t -> time:float -> unit
(** Process events with timestamp [≤ time], then advance the clock to
    [time]. *)

val drain : ?max_events:int -> t -> bool
(** Process everything left (events may schedule more).  Returns [false]
    if the [max_events] budget (default 10⁷) ran out first — the runaway
    guard for event loops that feed themselves.  A budget exhaustion also
    bumps the ["des.drain_budget_exhausted"] observability counter so
    instrumented runs cannot mistake a truncated drain for quiescence. *)
