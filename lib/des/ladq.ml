(* Ladder queue backend (`--queue ladder`): three tiers — an unsorted
   Top catching far-future inserts, a ladder of rungs that recursively
   subdivide the near future into bucket spans, and a sorted Bottom the
   next events are popped from (Tang, Goh & Thng, ACM TOMACS 2005,
   simplified).  Skewed or bursty schedules that defeat a calendar
   queue's uniform day width land in one rung bucket and are re-bucketed
   at finer width only when their turn comes ("spawning" a child rung);
   buckets at or below [sort_threshold] are insertion-sorted into Bottom
   instead.

   Determinism: every element reaches Bottom before being popped, and
   Bottom is sorted by the total key (time, seq), so the pop sequence
   equals the heap backend's.  Tier routing preserves one invariant:
   anything in a rung or Top is later (in key order) than anything that
   can still enter Bottom.  Each rung k owns the span
   [consumed_k, consumed_{k-1}) — consumed_k being the boundary of its
   already-drained bucket prefix — with Bottom below the finest boundary
   and Top at/above [top_start]; a bucket's span is consumed the moment
   its contents move down, so a late insert into a drained span drops
   through to Bottom and sorts correctly.  (The engine guarantees
   inserts never predate the last pop, which is what makes such inserts
   sortable into Bottom at all.)

   Bucket membership is decided by comparing against *stored* boundary
   floats — [bounds.(b) <= time < bounds.(b+1)] by binary search — never
   by re-deriving indices with division, whose rounding could disagree
   between insert and drain and misroute an event across the Bottom
   boundary by an ulp.  Comparisons against stored floats are exact, so
   the routing invariant is exact.

   Rungs (including their boundary and bucket arrays) are preallocated
   once and reused, and entries live in the same structure-of-arrays
   free-list pool as the other backends, so the steady state allocates
   nothing. *)

let nb = 32 (* buckets per rung *)
let sort_threshold = 64 (* bucket populations up to this sort straight into Bottom *)
let max_rungs = 60

type rung = {
  bounds : float array; (* nb + 1 ascending bucket boundaries *)
  heads : int array; (* per-bucket unsorted list heads, -1 when empty *)
  mutable rcur : int; (* first bucket not yet drained; consumed = bounds.(rcur) *)
  mutable rcount : int; (* entries remaining in this rung *)
}

(* All-float record: mutable floats in a mixed record would box on every
   store. *)
type tgeo = {
  mutable top_min : float;
  mutable top_max : float;
  mutable top_start : float; (* inserts at/above this go to Top *)
}

type t = {
  tg : tgeo;
  mutable top : int array; (* unsorted stack of pool indices *)
  mutable top_len : int;
  rungs : rung array; (* preallocated ladder, rungs.(0) is the coarsest *)
  mutable nrungs : int;
  mutable bottom : int; (* sorted list head through [pn], -1 when empty *)
  (* entry pool (structure of arrays) *)
  mutable pt : float array;
  mutable ps : int array;
  mutable pv : int array;
  mutable pn : int array;
  mutable free : int;
  mutable size : int;
  mutable spawned : int; (* child rungs ever spawned, exposed for tests *)
}

let create () =
  {
    tg = { top_min = infinity; top_max = neg_infinity; top_start = neg_infinity };
    top = [||];
    top_len = 0;
    rungs =
      Array.init max_rungs (fun _ ->
          { bounds = Array.make (nb + 1) 0.; heads = Array.make nb (-1); rcur = 0; rcount = 0 });
    nrungs = 0;
    bottom = -1;
    pt = [||];
    ps = [||];
    pv = [||];
    pn = [||];
    free = -1;
    size = 0;
    spawned = 0;
  }

let size t = t.size
let active_rungs t = t.nrungs
let spawned t = t.spawned

let grow_pool t =
  let cap = Array.length t.pn in
  let cap' = max 16 (2 * cap) in
  let pt = Array.make cap' 0.
  and ps = Array.make cap' 0
  and pv = Array.make cap' 0
  and pn = Array.make cap' (-1) in
  Array.blit t.pt 0 pt 0 cap;
  Array.blit t.ps 0 ps 0 cap;
  Array.blit t.pv 0 pv 0 cap;
  Array.blit t.pn 0 pn 0 cap;
  for i = cap to cap' - 2 do
    pn.(i) <- i + 1
  done;
  pn.(cap' - 1) <- t.free;
  t.free <- cap;
  t.pt <- pt;
  t.ps <- ps;
  t.pv <- pv;
  t.pn <- pn

let[@inline] alloc t =
  if t.free = -1 then grow_pool t;
  let e = t.free in
  t.free <- t.pn.(e);
  e

(* Sorted insert of entry [e] into Bottom by (time, seq).  The key is
   re-read from the pool rather than passed in: a float argument would
   box at every call site under the non-flambda compiler. *)
let bottom_link t e =
  let time = t.pt.(e) and seq = t.ps.(e) in
  let h = t.bottom in
  if h = -1 || time < t.pt.(h) || (time = t.pt.(h) && seq < t.ps.(h)) then begin
    t.pn.(e) <- h;
    t.bottom <- e
  end
  else begin
    let prev = ref h in
    let cur = ref t.pn.(h) in
    while
      !cur <> -1 && (t.pt.(!cur) < time || (t.pt.(!cur) = time && t.ps.(!cur) < seq))
    do
      prev := !cur;
      cur := t.pn.(!cur)
    done;
    t.pn.(e) <- !cur;
    t.pn.(!prev) <- e
  end

(* Largest b in [0, nb-1] with bounds.(b) <= time; callers guarantee
   time >= bounds.(0).  Times at or past bounds.(nb) (boundary-rounding
   stragglers) simply stay in the last bucket. *)
let[@inline] rung_bucket (r : rung) time =
  let lo = ref 0 and hi = ref (nb - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if r.bounds.(mid) <= time then lo := mid else hi := mid - 1
  done;
  !lo

(* Unsorted prepend of [e] into the right bucket of rung [r].  Key
   re-read from the pool; [rung_bucket] is [@inline] so the float never
   crosses a call boundary (which would box it). *)
let[@inline] rung_link t (r : rung) e =
  let b = rung_bucket r t.pt.(e) in
  t.pn.(e) <- r.heads.(b);
  r.heads.(b) <- e;
  r.rcount <- r.rcount + 1

let push_top t e =
  if t.top_len >= Array.length t.top then begin
    let cap' = max 16 (2 * Array.length t.top) in
    let top = Array.make cap' 0 in
    Array.blit t.top 0 top 0 t.top_len;
    t.top <- top
  end;
  t.top.(t.top_len) <- e;
  t.top_len <- t.top_len + 1;
  let time = t.pt.(e) in
  if time < t.tg.top_min then t.tg.top_min <- time;
  if time > t.tg.top_max then t.tg.top_max <- time

let add t times ~seq ~slot =
  let e = alloc t in
  let time = times.(slot) in
  t.pt.(e) <- time;
  t.ps.(e) <- seq;
  t.pv.(e) <- slot;
  t.size <- t.size + 1;
  if time >= t.tg.top_start then push_top t e
  else begin
    (* Consumed boundaries are non-increasing from coarse to fine, so
       the first rung accepting [time] is the one owning its span.  A
       fully drained rung ([rcur] = nb, possibly not yet retired — the
       lazy retirement happens in [ensure_bottom]) accepts nothing: its
       whole span is consumed, and parking an entry in a consumed
       bucket would hide it from the drain scan forever.  Falling
       through to a finer rung or Bottom keeps the order exact —
       everything still pending in coarser tiers is above [time]. *)
    let j = ref 0 in
    while
      !j < t.nrungs
      &&
      let r = t.rungs.(!j) in
      r.rcur >= nb || time < r.bounds.(r.rcur)
    do
      incr j
    done;
    if !j < t.nrungs then rung_link t t.rungs.(!j) e else bottom_link t e
  end

(* Spread [tmin, tmax] over a rung's nb buckets.  Returns false when the
   span is too degenerate to subdivide (equal or adjacent floats).
   Callers stage tmin into bounds.(0) and tmax into bounds.(nb) before
   the call — float arguments would box under the non-flambda compiler,
   and this runs on every rung spawn. *)
let fill_bounds (r : rung) =
  let tmin = r.bounds.(0) and tmax = r.bounds.(nb) in
  let w = (tmax -. tmin) /. float_of_int nb in
  if w > 0. && w < infinity then begin
    for i = 0 to nb do
      r.bounds.(i) <- tmin +. (float_of_int i *. w)
    done;
    (* strictly increasing somewhere, or subdivision is pointless *)
    r.bounds.(nb) > r.bounds.(0)
  end
  else false

let reset_rung (r : rung) =
  Array.fill r.heads 0 nb (-1);
  r.rcur <- 0;
  r.rcount <- 0

(* Strictly above [x], for raising [top_start] past everything moved
   down.  One relative ulp up by multiplication — [Float.succ] would do,
   but it allocates (it round-trips through boxed Int64 bit patterns).
   Simulated times are >= 0 and finite, so the multiply is strict for
   any positive x; 0 gets the smallest positive float. *)
let[@inline] above x = if x > 0. then x *. (1. +. epsilon_float) else Float.min_float

(* Move every entry of Top into rung 0 (or straight into Bottom when the
   span is degenerate), raising [top_start] strictly above everything
   moved so future Top inserts stay later than the whole ladder. *)
let transfer_top t =
  let tmax = t.tg.top_max in
  let r = t.rungs.(0) in
  reset_rung r;
  r.bounds.(0) <- t.tg.top_min;
  r.bounds.(nb) <- tmax;
  if fill_bounds r then begin
    t.nrungs <- 1;
    for i = 0 to t.top_len - 1 do
      rung_link t r t.top.(i)
    done;
    t.tg.top_start <- (if r.bounds.(nb) > tmax then r.bounds.(nb) else above tmax)
  end
  else begin
    (* all (essentially) equal times: sort directly into Bottom *)
    for i = 0 to t.top_len - 1 do
      bottom_link t t.top.(i)
    done;
    t.tg.top_start <- above tmax
  end;
  t.top_len <- 0;
  t.tg.top_min <- infinity;
  t.tg.top_max <- neg_infinity

(* Drain rung [j]'s next nonempty bucket: small or unsubdividable
   buckets insertion-sort into Bottom; big divisible ones spawn a child
   rung one level finer.  The child's bounds cover the *actual entry
   span* (measured during the count pass), not the parent bucket's
   nominal span: a bucket whose entries cluster on (near-)equal keys
   would otherwise respawn forever at ever-finer widths without ever
   separating them.  With entry-span bounds a degenerate cluster fails
   [fill_bounds] and insertion-sorts into Bottom instead — entries
   below the child's bounds.(0) cannot exist, so routing stays exact.
   Either way the bucket's span is consumed ([rcur] advances), so later
   inserts into it fall through to Bottom. *)
let drain_bucket t j =
  let r = t.rungs.(j) in
  while r.heads.(r.rcur) = -1 do
    r.rcur <- r.rcur + 1
  done;
  let b = r.rcur in
  let k = ref 0 in
  (* min/max tracked by entry index: float refs would box every store *)
  let emin = ref r.heads.(b) and emax = ref r.heads.(b) in
  let cur = ref r.heads.(b) in
  while !cur <> -1 do
    incr k;
    if t.pt.(!cur) < t.pt.(!emin) then emin := !cur;
    if t.pt.(!cur) > t.pt.(!emax) then emax := !cur;
    cur := t.pn.(!cur)
  done;
  let head = r.heads.(b) in
  r.heads.(b) <- -1;
  r.rcount <- r.rcount - !k;
  r.rcur <- b + 1;
  let spawn =
    !k > sort_threshold
    && j + 1 < max_rungs
    &&
    let r' = t.rungs.(j + 1) in
    reset_rung r';
    r'.bounds.(0) <- t.pt.(!emin);
    r'.bounds.(nb) <- t.pt.(!emax);
    fill_bounds r'
  in
  if spawn then begin
    let r' = t.rungs.(j + 1) in
    t.nrungs <- j + 2;
    t.spawned <- t.spawned + 1;
    let cur = ref head in
    while !cur <> -1 do
      let e = !cur in
      cur := t.pn.(e);
      rung_link t r' e
    done
  end
  else begin
    let cur = ref head in
    while !cur <> -1 do
      let e = !cur in
      cur := t.pn.(e);
      bottom_link t e
    done
  end

(* Make Bottom nonempty if the queue isn't: false only when empty. *)
let rec ensure_bottom t =
  if t.bottom <> -1 then true
  else if t.nrungs > 0 then begin
    let j = t.nrungs - 1 in
    if t.rungs.(j).rcount = 0 then t.nrungs <- j else drain_bucket t j;
    ensure_bottom t
  end
  else if t.top_len > 0 then begin
    transfer_top t;
    ensure_bottom t
  end
  else false

let pop_min t ~max_time =
  if not (ensure_bottom t) then -1
  else begin
    let e = t.bottom in
    if t.pt.(e) > max_time then -1
    else begin
      t.bottom <- t.pn.(e);
      let slot = t.pv.(e) in
      t.pn.(e) <- t.free;
      t.free <- e;
      t.size <- t.size - 1;
      slot
    end
  end

let clear t =
  t.tg.top_min <- infinity;
  t.tg.top_max <- neg_infinity;
  t.tg.top_start <- neg_infinity;
  t.top <- [||];
  t.top_len <- 0;
  Array.iter reset_rung t.rungs;
  t.nrungs <- 0;
  t.bottom <- -1;
  t.pt <- [||];
  t.ps <- [||];
  t.pv <- [||];
  t.pn <- [||];
  t.free <- -1;
  t.size <- 0
