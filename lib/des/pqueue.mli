(** Binary min-heap priority queue.

    The event queue of the discrete-event engine.  Entries with equal
    priority are dequeued in insertion order (stable), which keeps
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Lowest priority first; insertion order breaks ties. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
