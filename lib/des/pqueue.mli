(** Binary min-heap priority queue.

    The event queue of the discrete-event engine.  Entries with equal
    priority are dequeued in insertion order (stable), which keeps
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Lowest priority first; insertion order breaks ties.  The vacated heap
    slot is cleared so the popped entry (and its payload, typically a
    closure) becomes collectable immediately instead of being pinned by
    the backing array until a later [push] happens to overwrite it. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
(** Empties the queue and releases the backing array, so nothing popped
    or pending is retained afterwards. *)
