(** Disjoint-set forest with union by rank and path compression.

    Used to extract connected components of collaboration graphs (cluster
    analysis of §4 of the paper) in near-linear time. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of an element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] when they
    were already in the same set. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val size : t -> int -> int
(** Number of elements in an element's set. *)

val count : t -> int
(** Number of distinct sets. *)
