module Rng = Stratify_prng.Rng

let empty n = Undirected.create n

let complete n =
  let g = Undirected.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Undirected.add_edge g u v)
    done
  done;
  g

let ring n =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  let g = Undirected.create n in
  for v = 0 to n - 1 do
    ignore (Undirected.add_edge g v ((v + 1) mod n))
  done;
  g

let path n =
  let g = Undirected.create n in
  for v = 0 to n - 2 do
    ignore (Undirected.add_edge g v (v + 1))
  done;
  g

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  let g = Undirected.create n in
  for v = 1 to n - 1 do
    ignore (Undirected.add_edge g 0 v)
  done;
  g

(* Iterate the edges of G(n,p) in O(n + m) expected time: walk the linearised
   upper-triangular edge index with geometric jumps (Batagelj & Brandes,
   2005). *)
let iter_gnp_edges rng ~n ~p f =
  if p < 0. || p > 1. then invalid_arg "Gen.gnp: p must be in [0,1]";
  if p > 0. then
    if p >= 1. then begin
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          f u v
        done
      done
    end
    else begin
      let log_q = log1p (-.p) in
      let u = ref 0 and v = ref 0 in
      (* (u, v) with v > u; start just before the first candidate. *)
      let continue = ref (n >= 2) in
      while !continue do
        let r = Rng.unit_float rng in
        let skip = 1 + int_of_float (floor (log1p (-.r) /. log_q)) in
        let j = ref (!v + skip) in
        while !j >= n && !continue do
          incr u;
          j := !u + 1 + (!j - n);
          if !u >= n - 1 then continue := false
        done;
        if !continue then begin
          v := !j;
          f !u !v
        end
      done
    end

let gnp rng ~n ~p =
  let g = Undirected.create n in
  iter_gnp_edges rng ~n ~p (fun u v -> ignore (Undirected.add_edge g u v));
  g

let gnd rng ~n ~d =
  if n < 2 then Undirected.create n
  else
    let p = d /. float_of_int (n - 1) in
    let p = Float.max 0. (Float.min 1. p) in
    gnp rng ~n ~p

let gnp_adjacency rng ~n ~p =
  (* Two passes over the generated edge list: count degrees, then fill. *)
  let edges = ref [] in
  let deg = Array.make n 0 in
  iter_gnp_edges rng ~n ~p (fun u v ->
      edges := (u, v) :: !edges;
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1);
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  (* The skip generator emits edges in increasing (u,v) lexicographic order,
     and [edges] reversed restores that order, so each adjacency row ends up
     sorted without an extra sort for the [u] endpoints; [v] endpoints arrive
     in increasing [u] order too, which is also sorted. *)
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    (List.rev !edges);
  adj

(* Geometric skipping over candidate endpoints, same trick as gnp.  The
   RNG consumption depends only on (n, p) and the skip draws — not on
   [present] or on what [f] does — so every consumer of the same
   (rng, n, v, p) sees the same candidate sequence. *)
let iter_fresh_edges rng ~n ~v ~p ~present f =
  if p >= 1. then
    for w = 0 to n - 1 do
      if w <> v && present w then f w
    done
  else if p > 0. then begin
    let log_q = log1p (-.p) in
    let w = ref (-1) in
    let continue = ref true in
    while !continue do
      let r = Rng.unit_float rng in
      let skip = 1 + int_of_float (floor (log1p (-.r) /. log_q)) in
      w := !w + skip;
      if !w >= n then continue := false
      else if !w <> v && present !w then f !w
    done
  end

let attach_fresh_vertex rng g ~v ~p ~present =
  let added = ref 0 in
  iter_fresh_edges rng ~n:(Undirected.vertex_count g) ~v ~p ~present (fun w ->
      if Undirected.add_edge g v w then incr added);
  !added
