(** Structural graph metrics. *)

val mean_degree : Undirected.t -> float
(** Average vertex degree ([2m/n]); 0 for the empty vertex set. *)

val degree_histogram : Undirected.t -> int array
(** [h.(k)] is the number of vertices of degree [k]. *)

val max_degree : Undirected.t -> int

val clustering_coefficient : Undirected.t -> float
(** Global clustering coefficient (3 × triangles / wedges), exact. *)

val assortativity_by_label : Undirected.t -> float
(** Pearson correlation of endpoint labels over edges.  Under the
    rank-as-label convention this measures stratification directly: values
    near 1 mean peers connect to peers of similar rank. *)
