(** Spatial and small-world acceptance graphs.

    §4.1 of the paper contrasts the collaboration graph with the overlay
    designs of the era ("small world properties: almost fully connected,
    high clustering coefficient, low mean distance"); §7 proposes latency —
    a {e symmetric} ranking — as a second collaboration criterion.  These
    generators provide the substrates for both: random geometric graphs
    give peers positions (hence pairwise latencies), Watts–Strogatz gives
    the classic small-world overlay. *)

type positions = (float * float) array
(** Peer coordinates in the unit square. *)

val random_positions : Stratify_prng.Rng.t -> n:int -> positions

val distance : positions -> int -> int -> float
(** Euclidean distance between two peers (a latency proxy). *)

val toroidal_distance : positions -> int -> int -> float
(** Distance on the unit torus (no boundary effects). *)

val random_geometric :
  Stratify_prng.Rng.t -> n:int -> radius:float -> ?torus:bool -> unit -> Undirected.t * positions
(** Peers at uniform positions; an edge joins every pair within [radius].
    O(n²) — intended for n ≲ 10⁴. *)

val watts_strogatz :
  Stratify_prng.Rng.t -> n:int -> k:int -> beta:float -> Undirected.t
(** Watts–Strogatz small world: a ring lattice where each vertex joins its
    [k] nearest neighbours ([k] even, [< n]), then each lattice edge is
    rewired to a uniform endpoint with probability [beta].  [beta = 0] is
    the lattice, [beta = 1] approaches a random graph. *)
