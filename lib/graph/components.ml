type t = { component : int array; sizes : int array; count : int }

let of_union_find n uf =
  let component = Array.make n (-1) in
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let root = Union_find.find uf v in
    let id =
      match Hashtbl.find_opt remap root with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.add remap root id;
          id
    in
    component.(v) <- id
  done;
  let sizes = Array.make !next 0 in
  Array.iter (fun id -> sizes.(id) <- sizes.(id) + 1) component;
  { component; sizes; count = !next }

let of_graph g =
  let n = Undirected.vertex_count g in
  let uf = Union_find.create n in
  Undirected.iter_edges (fun u v -> ignore (Union_find.union uf u v)) g;
  of_union_find n uf

let of_adjacency adj =
  let n = Array.length adj in
  let uf = Union_find.create n in
  Array.iteri (fun u ws -> Array.iter (fun v -> ignore (Union_find.union uf u v)) ws) adj;
  of_union_find n uf

let largest_size t = Array.fold_left max 0 t.sizes

let mean_size t =
  if t.count = 0 then 0.
  else float_of_int (Array.length t.component) /. float_of_int t.count

let is_connected t = t.count <= 1 && Array.length t.component = Array.fold_left ( + ) 0 t.sizes

let members t id =
  let out = ref [] in
  for v = Array.length t.component - 1 downto 0 do
    if t.component.(v) = id then out := v :: !out
  done;
  !out
