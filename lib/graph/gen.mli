(** Graph generators.

    The paper's simulations use loopless symmetric Erdős–Rényi graphs
    [G(n, d)] where [d] is the {e expected degree} (each edge present
    independently with probability [d/(n-1)]); complete graphs serve as the
    §4 toy model. *)

val empty : int -> Undirected.t
(** Graph with [n] isolated vertices. *)

val complete : int -> Undirected.t
(** Complete graph [K_n]. *)

val ring : int -> Undirected.t
(** Cycle on [n >= 3] vertices. *)

val path : int -> Undirected.t
(** Path on [n] vertices. *)

val star : int -> Undirected.t
(** Star with centre [0]. *)

val gnp : Stratify_prng.Rng.t -> n:int -> p:float -> Undirected.t
(** Erdős–Rényi [G(n,p)] sampled in O(n + m) expected time by geometric
    edge skipping. *)

val gnd : Stratify_prng.Rng.t -> n:int -> d:float -> Undirected.t
(** The paper's parameterisation: expected degree [d], i.e.
    [G(n, p = d/(n-1))].  [d] is clamped to the feasible range. *)

val gnp_adjacency : Stratify_prng.Rng.t -> n:int -> p:float -> int array array
(** Like {!gnp} but returns sorted adjacency arrays directly — the frozen
    form consumed by matching hot loops (used for Monte-Carlo experiments
    where graph construction dominates). *)

val iter_fresh_edges :
  Stratify_prng.Rng.t ->
  n:int ->
  v:int ->
  p:float ->
  present:(int -> bool) ->
  (int -> unit) ->
  unit
(** Sample a fresh Erdős–Rényi arrival's neighbourhood: call [f w] for
    every vertex [w ≠ v] with [present w] kept independently with
    probability [p], in increasing order of [w], O(n·p) expected draws.
    The RNG consumption depends only on [(n, p)] — not on [present] or
    [f] — so graph-backed and instance-backed consumers stay on
    identical random trajectories. *)

val attach_fresh_vertex :
  Stratify_prng.Rng.t -> Undirected.t -> v:int -> p:float -> present:(int -> bool) -> int
(** Re-wire an (isolated) vertex as a fresh Erdős–Rényi arrival: connect [v]
    to every vertex [w ≠ v] with [present w] independently with probability
    [p] (via {!iter_fresh_edges}).  Returns the number of edges created.
    Used by the churn model. *)
