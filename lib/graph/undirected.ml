type t = { adj : (int, unit) Hashtbl.t array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Undirected.create: negative size";
  { adj = Array.init n (fun _ -> Hashtbl.create 8); edges = 0 }

let vertex_count t = Array.length t.adj
let edge_count t = t.edges

let check_vertex t v =
  if v < 0 || v >= vertex_count t then invalid_arg "Undirected: vertex out of range"

let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Undirected.add_edge: self-loop";
  if Hashtbl.mem t.adj.(u) v then false
  else begin
    Hashtbl.replace t.adj.(u) v ();
    Hashtbl.replace t.adj.(v) u ();
    t.edges <- t.edges + 1;
    true
  end

let remove_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if Hashtbl.mem t.adj.(u) v then begin
    Hashtbl.remove t.adj.(u) v;
    Hashtbl.remove t.adj.(v) u;
    t.edges <- t.edges - 1;
    true
  end
  else false

let mem_edge t u v =
  check_vertex t u;
  check_vertex t v;
  let du = Hashtbl.length t.adj.(u) and dv = Hashtbl.length t.adj.(v) in
  if du <= dv then Hashtbl.mem t.adj.(u) v else Hashtbl.mem t.adj.(v) u

let degree t v =
  check_vertex t v;
  Hashtbl.length t.adj.(v)

let neighbors t v =
  check_vertex t v;
  Hashtbl.fold (fun w () acc -> w :: acc) t.adj.(v) []

let sorted_neighbors t v = List.sort Int.compare (neighbors t v)

let isolate t v =
  check_vertex t v;
  let ws = neighbors t v in
  List.iter (fun w -> ignore (remove_edge t v w)) ws

let iter_edges f t =
  Array.iteri
    (fun u adjacency -> Hashtbl.iter (fun v () -> if u < v then f u v) adjacency)
    t.adj

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) t;
  !acc

let copy t =
  { adj = Array.map Hashtbl.copy t.adj; edges = t.edges }

let adjacency_arrays t =
  Array.init (vertex_count t) (fun v ->
      let a = Array.of_list (neighbors t v) in
      Array.sort Int.compare a;
      a)

let adjacency_csr t =
  let n = vertex_count t in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + Hashtbl.length t.adj.(v)
  done;
  let data = Array.make off.(n) 0 in
  let fill = Array.make n 0 in
  (* One pass per vertex: dump the hash-set neighbours into the segment,
     then sort the segment in place.  No intermediate row arrays. *)
  for v = 0 to n - 1 do
    Hashtbl.iter
      (fun w () ->
        data.(off.(v) + fill.(v)) <- w;
        fill.(v) <- fill.(v) + 1)
      t.adj.(v)
  done;
  for v = 0 to n - 1 do
    let len = off.(v + 1) - off.(v) in
    if len > 1 then begin
      let seg = Array.sub data off.(v) len in
      Array.sort Int.compare seg;
      Array.blit seg 0 data off.(v) len
    end
  done;
  (off, data)

let of_adjacency_arrays arrays =
  let g = create (Array.length arrays) in
  Array.iteri
    (fun u ws -> Array.iter (fun v -> if u < v then ignore (add_edge g u v)) ws)
    arrays;
  g
