(** Connected components. *)

type t = {
  component : int array;  (** component id of each vertex, in [0, count). *)
  sizes : int array;  (** size of each component, indexed by id. *)
  count : int;  (** number of components. *)
}

val of_graph : Undirected.t -> t
(** Components via union-find over the edge set. *)

val of_adjacency : int array array -> t
(** Same, from frozen adjacency arrays. *)

val largest_size : t -> int
(** Size of the largest component (0 for the empty graph). *)

val mean_size : t -> float
(** Average component size, i.e. [n / count]. *)

val is_connected : t -> bool
(** Whether there is exactly one component covering all vertices. *)

val members : t -> int -> int list
(** Vertices of a component, in increasing order. *)
