(** Breadth-first traversal utilities. *)

val bfs_distances : Undirected.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [-1]. *)

val eccentricity : Undirected.t -> int -> int
(** Largest finite BFS distance from a vertex (0 for isolated vertices). *)

val diameter_estimate : Undirected.t -> int
(** Lower bound on the diameter by a double-sweep BFS from vertex 0's
    component (exact on trees, a good estimate in general). *)
