let mean_degree g =
  let n = Undirected.vertex_count g in
  if n = 0 then 0.
  else 2. *. float_of_int (Undirected.edge_count g) /. float_of_int n

let max_degree g =
  let best = ref 0 in
  for v = 0 to Undirected.vertex_count g - 1 do
    best := max !best (Undirected.degree g v)
  done;
  !best

let degree_histogram g =
  let h = Array.make (max_degree g + 1) 0 in
  for v = 0 to Undirected.vertex_count g - 1 do
    let d = Undirected.degree g v in
    h.(d) <- h.(d) + 1
  done;
  h

let clustering_coefficient g =
  let n = Undirected.vertex_count g in
  let triangles = ref 0 and wedges = ref 0 in
  for v = 0 to n - 1 do
    let ws = Array.of_list (Undirected.neighbors g v) in
    let d = Array.length ws in
    wedges := !wedges + (d * (d - 1) / 2);
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if Undirected.mem_edge g ws.(i) ws.(j) then incr triangles
      done
    done
  done;
  (* Each triangle is counted once per corner, i.e. three times. *)
  if !wedges = 0 then 0. else float_of_int !triangles /. float_of_int !wedges

let assortativity_by_label g =
  (* Pearson correlation of (u, v) endpoint labels over edges, treating each
     edge in both orientations so the statistic is symmetric. *)
  let sx = ref 0. and sxx = ref 0. and sxy = ref 0. and m = ref 0 in
  Undirected.iter_edges
    (fun u v ->
      let fu = float_of_int u and fv = float_of_int v in
      sx := !sx +. fu +. fv;
      sxx := !sxx +. (fu *. fu) +. (fv *. fv);
      sxy := !sxy +. (2. *. fu *. fv);
      m := !m + 2)
    g;
  if !m = 0 then 0.
  else
    let n = float_of_int !m in
    let mean = !sx /. n in
    let var = (!sxx /. n) -. (mean *. mean) in
    let cov = (!sxy /. n) -. (mean *. mean) in
    if var <= 0. then 0. else cov /. var
