(** Mutable undirected simple graphs over a fixed vertex universe [0..n-1].

    This is the acceptance-graph / collaboration-graph representation used
    throughout the library.  Vertices are peer ranks (0 = best peer); the
    structure supports edge insertion and deletion plus vertex isolation so
    that churn (peer departure/arrival, §3 of the paper) can be simulated in
    place. *)

type t

val create : int -> t
(** [create n] is the empty graph on vertices [0 .. n-1]. *)

val vertex_count : t -> int
(** Size of the vertex universe (including isolated vertices). *)

val edge_count : t -> int
(** Number of edges currently present. *)

val add_edge : t -> int -> int -> bool
(** [add_edge g u v] inserts the edge [{u,v}]; returns [false] if it was
    already present.  Self-loops are rejected with [Invalid_argument]. *)

val remove_edge : t -> int -> int -> bool
(** [remove_edge g u v] deletes the edge; returns [false] if absent. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership test, O(min degree). *)

val degree : t -> int -> int
(** Number of neighbours of a vertex. *)

val neighbors : t -> int -> int list
(** Neighbours in unspecified order. *)

val sorted_neighbors : t -> int -> int list
(** Neighbours in increasing vertex order (best peer first under the
    rank-as-label convention). *)

val isolate : t -> int -> unit
(** [isolate g v] removes every edge incident to [v] (peer departure). *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate each edge exactly once, with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over each edge exactly once, with [u < v]. *)

val copy : t -> t
(** Deep copy. *)

val adjacency_arrays : t -> int array array
(** Snapshot: for each vertex, its neighbours sorted increasingly.  This is
    the frozen form consumed by the matching algorithms' hot paths. *)

val adjacency_csr : t -> int array * int array
(** Compressed-sparse-row snapshot [(off, data)]: the neighbours of [v]
    are [data.(off.(v)) .. data.(off.(v+1) - 1)], sorted increasingly.
    One flat allocation instead of [n] row arrays — the form
    [Instance.create] freezes acceptance graphs into. *)

val of_adjacency_arrays : int array array -> t
(** Rebuild a graph from (possibly unsorted) adjacency arrays; symmetry is
    enforced by insertion. *)
