module Rng = Stratify_prng.Rng

type positions = (float * float) array

let random_positions rng ~n =
  Array.init n (fun _ ->
      let x = Rng.unit_float rng in
      let y = Rng.unit_float rng in
      (x, y))

let distance pos i j =
  let xi, yi = pos.(i) and xj, yj = pos.(j) in
  let dx = xi -. xj and dy = yi -. yj in
  sqrt ((dx *. dx) +. (dy *. dy))

let toroidal_distance pos i j =
  let wrap d =
    let d = Float.abs d in
    Float.min d (1. -. d)
  in
  let xi, yi = pos.(i) and xj, yj = pos.(j) in
  let dx = wrap (xi -. xj) and dy = wrap (yi -. yj) in
  sqrt ((dx *. dx) +. (dy *. dy))

let random_geometric rng ~n ~radius ?(torus = false) () =
  let pos = random_positions rng ~n in
  let dist = if torus then toroidal_distance pos else distance pos in
  let g = Undirected.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist i j <= radius then ignore (Undirected.add_edge g i j)
    done
  done;
  (g, pos)

let watts_strogatz rng ~n ~k ~beta =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Spatial.watts_strogatz: k must be even and >= 2";
  if k >= n then invalid_arg "Spatial.watts_strogatz: need k < n";
  if beta < 0. || beta > 1. then invalid_arg "Spatial.watts_strogatz: beta must be in [0,1]";
  let g = Undirected.create n in
  (* Ring lattice: each vertex connects to its k/2 clockwise neighbours. *)
  for v = 0 to n - 1 do
    for step = 1 to k / 2 do
      ignore (Undirected.add_edge g v ((v + step) mod n))
    done
  done;
  (* Rewire each lattice edge (v, v+step) with probability beta, keeping
     the graph simple and avoiding isolated self-loops. *)
  for v = 0 to n - 1 do
    for step = 1 to k / 2 do
      let w = (v + step) mod n in
      if Rng.bernoulli rng beta && Undirected.mem_edge g v w then begin
        (* Pick a fresh endpoint not already a neighbour of v. *)
        let attempts = ref 0 in
        let chosen = ref (-1) in
        while !chosen < 0 && !attempts < 32 do
          incr attempts;
          let candidate = Rng.int rng n in
          if candidate <> v && not (Undirected.mem_edge g v candidate) then chosen := candidate
        done;
        if !chosen >= 0 then begin
          ignore (Undirected.remove_edge g v w);
          ignore (Undirected.add_edge g v !chosen)
        end
      end
    done
  done;
  g
