let bfs_distances g src =
  let n = Undirected.vertex_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      (Undirected.neighbors g u)
  done;
  dist

let farthest dist =
  let best = ref 0 and best_v = ref 0 in
  Array.iteri
    (fun v d ->
      if d > !best then begin
        best := d;
        best_v := v
      end)
    dist;
  (!best_v, !best)

let eccentricity g v = snd (farthest (bfs_distances g v))

let diameter_estimate g =
  if Undirected.vertex_count g = 0 then 0
  else
    let far, _ = farthest (bfs_distances g 0) in
    eccentricity g far
