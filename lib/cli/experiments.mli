(** One regeneration function per table/figure of the paper.

    Every function prints a human-readable report (tables, ASCII plots,
    paper-vs-measured notes) and, when [csv_dir] is given, writes the raw
    data as CSV.  [scale] shrinks the workload for smoke runs: 1.0 is
    paper scale, 0.1 divides population sizes / replicate counts by ~10.

    The registry at the bottom drives both the [stratify_experiments]
    binary and the benchmark harness. *)

type context = {
  seed : int;
  scale : float;
  csv_dir : string option;
  jobs : int;
  manifest_dir : string option;
  n_override : int option;
  scheduler : Stratify_core.Scheduler.policy;
  bands : int;
  band_overlap : int option;
  profile_phases : bool;
  queue : Stratify_des.Engine.backend;
}
(** [jobs] is the worker-domain count handed to {!Stratify_exec.Exec} by
    the Monte-Carlo-heavy experiments (fig1, table1, fig6, fig9, scaling).
    Output is bit-identical for every [jobs ≥ 1] — replicas run on
    replica-indexed random substreams, never worker-indexed ones.

    [manifest_dir], when set, turns observability on for the run: each
    experiment executed through {!run_named} then writes a
    {!Stratify_obs.Run_manifest} JSON record
    ([<dir>/<name>-<seed>.json]) with per-phase timings, counter totals
    (steps / active initiatives / rewires / chunks) and chunk-latency
    histograms.  Counter totals are deterministic for a given seed and
    identical for every [jobs] value, which is what the golden-manifest
    CI job pins.

    [n_override], when set, replaces the population size of the
    complete-acceptance-graph experiments (fig4, table1, fig6) —
    bypassing [scale] for the population (replicate counts still scale).
    Because those experiments run on the implicit [Instance.complete]
    backend, [--n 100000] holds O(n·b̄) memory, not O(n²).

    [scheduler] selects how the dynamics experiments (fig1, fig2, fig3,
    strategies, scaling) pick initiative takers:
    {!Stratify_core.Scheduler.Random_poll} (the paper's uniform polling,
    the default) or {!Stratify_core.Scheduler.Worklist} (drain the dirty
    queue of active candidates).  By Theorem 1's uniqueness both reach
    the same stable configurations — fig1 pins this with the
    [checksum.fig1_final/<i>] manifest counters.

    [bands] (default 1) and [band_overlap] (default: the §4-derived
    {!Stratify_core.Shard.default_overlap}) route the
    complete-acceptance-graph matchings (fig4, table1, fig6) and
    scaling's reference fixed points through
    {!Stratify_core.Shard.stable_config}: [bands] overlapping rank bands
    solved on the [jobs] domain pool, boundaries reconciled by the
    worklist fixup.  Results are identical for every band count —
    fig4 pins this with the [checksum.fig4_graph]/[checksum.fig4_clusters]
    manifest counters.

    [profile_phases] (default false; requires [manifest_dir]) turns
    {!Stratify_obs.Profile} on for the run: the instrumented kernels
    ("greedy.build", "shard.cluster_cuts", "shard.band_solve",
    "shard.stitch", "shard.fixup") record wall time, entry/op counts and
    GC allocation deltas, written as the manifest's [profile] section.
    Purely additive: the section is omitted when off, so default
    manifests stay byte-identical.

    [queue] (default [Heap]) selects the DES event-queue backend
    ({!Stratify_des.Engine.backend}) installed as the process default by
    {!run_named} before the experiment runs — binary heap, calendar
    queue, or ladder queue.  Every backend pops in the same total
    (time, seq) order, so all outputs (reports, CSVs, manifests) are
    byte-identical across `--queue` values; only events/sec changes.
    The matrix-suite CI job spot-checks this byte identity; bench.des
    measures the throughput difference.  Deliberately {e not} recorded
    in manifests — like [jobs], it is an execution knob, not a scenario
    parameter. *)

val default_context : context
(** seed 42, scale 1.0, no CSV, [jobs = 1], no manifests, random-poll
    scheduler, 1 band, no phase profiling. *)

val validate_context : context -> unit
(** Raise a named [Invalid_argument] on out-of-range fields: scale
    outside (0, 1], [jobs < 1], [n < 1], [bands < 1], [bands > n] (when
    [n_override] is set) or a negative [band_overlap].  {!run_named}
    calls this first. *)

val run_named : context -> string * string * (context -> unit) -> unit
(** Run one registry entry.  Without [manifest_dir] this just calls the
    function; with it, the run happens under a root {!Stratify_obs.Span}
    named after the experiment, counters/histograms/spans are reset
    first, and the manifest is written afterwards (observability is
    switched back off even if the experiment raises). *)

val fig1 : context -> unit
(** Convergence from the empty configuration, (n,d) ∈
    {(100,50),(1000,10),(1000,50)}. *)

val fig2 : context -> unit
(** Disorder after removing peer 1/100/300/600 from the stable state. *)

val fig3 : context -> unit
(** Disorder under continuous churn at rates 30/10/3/0.5/0 per 1000. *)

val fig4 : context -> unit
(** Constant b0-matching clustering on the complete graph. *)

val fig5 : context -> unit
(** One extra slot reconnects the clusters. *)

val table1 : context -> unit
(** Average cluster size and MMO, constant vs N(b̄, 0.2²) budgets. *)

val fig6 : context -> unit
(** σ phase transition at b̄ = 6. *)

val fig7 : context -> unit
(** Exact vs Algorithm-2 probabilities on 3 peers. *)

val fig8 : context -> unit
(** Mate-rank distributions for peers 200/2500/4800, n = 5000. *)

val fig9 : context -> unit
(** Monte-Carlo validation of Algorithm 3 (2-matching, peer 3000). *)

val fig10 : context -> unit
(** Upstream-capacity CDF. *)

val fig11 : context -> unit
(** Expected download/upload ratio vs upload per slot. *)

val slots_ablation : context -> unit
(** §6 discussion: a rational peer's slot-count sweep and the 4-slot
    trade-off (not a numbered figure in the paper). *)

val swarm_validation : context -> unit
(** End-to-end cross-check: the TFT swarm simulator vs the analytic
    share-ratio model (extension experiment). *)

val strategies_ablation : context -> unit
(** §3's three initiative strategies compared: time and active-initiative
    cost to stability. *)

val scaling : context -> unit
(** Empirical convergence-speed scaling law in n and d (the proof the
    paper leaves open, measured). *)

val alpha_fluid : context -> unit
(** Mate-offset distributions across relative ranks: §5.3's
    shift-invariance ("finite horizon") statement. *)

val latency : context -> unit
(** §7's utility-class contrast: global ranking vs symmetric latency, and
    the convergence cost of blending them. *)

val gossip_experiment : context -> unit
(** Stable matching on gossip-maintained acceptance views (reference [8]
    of the paper). *)

val flashcrowd : context -> unit
(** Flash-crowd completion dynamics — the phase before §6's
    post-flash-crowd assumption holds. *)

val streaming_experiment : context -> unit
(** §7's streaming remark measured: play-out delay of stratified vs
    proximity vs random collaboration graphs. *)

val edonkey_experiment : context -> unit
(** §2's architectural contrast: TFT reciprocation vs eDonkey-style
    credit queues on the same population. *)

val bigslots : context -> unit
(** §6's prescription simulated: bandwidth-scaled slot counts rescue the
    best peers' download/upload ratio. *)

val async_experiment : context -> unit
(** The dynamics as a real message-passing protocol: convergence and
    consistency vs message latency. *)

val all : (string * string * (context -> unit)) list
(** (name, description, run) for every experiment above. *)

val find : string -> (context -> unit) option
