module Jsonx = Stratify_obs.Jsonx
module Plan = Stratify_net_plan.Plan
module Matrix = Stratify_net_plan.Matrix

type cell_result = {
  name : string;
  seed : int;
  axes : (string * string) list;
  passed : bool;
  checks : Plan.check list;
  metrics : (string * float) list;
  wall_ms : float;
}

type summary = { matrix_seed : int; cardinality : int; cells : cell_result list }

let cell_of_run ~cell ~result ~wall_ms =
  {
    name = cell.Matrix.name;
    seed = cell.Matrix.seed;
    axes = Matrix.axes cell;
    passed = result.Plan.passed;
    checks = result.Plan.checks;
    metrics = result.Plan.manifest.Stratify_obs.Run_manifest.metrics;
    wall_ms;
  }

let sort_cells cells =
  let sorted = List.sort (fun a b -> compare a.name b.name) cells in
  let rec dup = function
    | a :: (b :: _ as rest) ->
        if a.name = b.name then
          invalid_arg (Printf.sprintf "Matrix_report: duplicate cell %S" a.name)
        else dup rest
    | _ -> ()
  in
  dup sorted;
  sorted

let make ~matrix_seed ~cardinality cells = { matrix_seed; cardinality; cells = sort_cells cells }

(* ---- JSON ----------------------------------------------------------- *)

let kind = "matrix-summary"

let check_to_json (c : Plan.check) =
  Jsonx.Obj
    [ ("label", Jsonx.String c.Plan.label); ("ok", Jsonx.Bool c.Plan.ok);
      ("detail", Jsonx.String c.Plan.detail) ]

let check_of_json j =
  {
    Plan.label = Jsonx.(get_string (member "label" j));
    ok = (match Jsonx.member "ok" j with Jsonx.Bool b -> b | _ -> raise (Jsonx.Parse_error "check: ok must be a bool"));
    detail = Jsonx.(get_string (member "detail" j));
  }

let cell_to_json c =
  Jsonx.Obj
    [
      ("name", Jsonx.String c.name);
      ("seed", Jsonx.Int c.seed);
      ("axes", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.String v)) c.axes));
      ("passed", Jsonx.Bool c.passed);
      ("checks", Jsonx.List (List.map check_to_json c.checks));
      ("metrics", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) c.metrics));
      ("wall_ms", Jsonx.Float c.wall_ms);
    ]

let cell_of_json j =
  {
    name = Jsonx.(get_string (member "name" j));
    seed = Jsonx.(get_int (member "seed" j));
    axes = List.map (fun (k, v) -> (k, Jsonx.get_string v)) Jsonx.(get_obj (member "axes" j));
    passed =
      (match Jsonx.member "passed" j with
      | Jsonx.Bool b -> b
      | _ -> raise (Jsonx.Parse_error "cell: passed must be a bool"));
    checks = List.map check_of_json Jsonx.(get_list (member "checks" j));
    metrics = List.map (fun (k, v) -> (k, Jsonx.get_float v)) Jsonx.(get_obj (member "metrics" j));
    wall_ms = Jsonx.(get_float (member "wall_ms" j));
  }

let to_json s =
  Jsonx.Obj
    [
      ("kind", Jsonx.String kind);
      ("matrix_seed", Jsonx.Int s.matrix_seed);
      ("cardinality", Jsonx.Int s.cardinality);
      ("cells", Jsonx.List (List.map cell_to_json s.cells));
    ]

let of_json j =
  let k = Jsonx.(get_string (member "kind" j)) in
  if k <> kind then
    raise (Jsonx.Parse_error (Printf.sprintf "summary: kind %S, expected %S" k kind));
  {
    matrix_seed = Jsonx.(get_int (member "matrix_seed" j));
    cardinality = Jsonx.(get_int (member "cardinality" j));
    cells = sort_cells (List.map cell_of_json Jsonx.(get_list (member "cells" j)));
  }

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_json (Jsonx.of_string (really_input_string ic (in_channel_length ic))))

let write path s =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonx.to_string (to_json s));
      output_char oc '\n')

(* ---- shard merging --------------------------------------------------- *)

let merge = function
  | [] -> invalid_arg "Matrix_report.merge: no summaries"
  | first :: rest ->
      List.iter
        (fun s ->
          if s.matrix_seed <> first.matrix_seed then
            invalid_arg "Matrix_report.merge: matrix seeds differ";
          if s.cardinality <> first.cardinality then
            invalid_arg "Matrix_report.merge: cardinalities differ")
        rest;
      make ~matrix_seed:first.matrix_seed ~cardinality:first.cardinality
        (List.concat_map (fun s -> s.cells) (first :: rest))

(* ---- baseline comparison --------------------------------------------- *)

let baseline_of_summary s =
  { s with cells = List.map (fun c -> { c with checks = []; wall_ms = 0. }) s.cells }

let find_cell s name = List.find_opt (fun c -> c.name = name) s.cells

let metric_drift ~old_metrics ~new_metrics =
  let drift = ref [] in
  List.iter
    (fun (k, v_old) ->
      match List.assoc_opt k new_metrics with
      | None -> drift := Printf.sprintf "metric %s disappeared" k :: !drift
      | Some v_new ->
          if v_new <> v_old then
            drift := Printf.sprintf "metric %s: %.17g -> %.17g" k v_old v_new :: !drift)
    old_metrics;
  List.rev !drift

let regressions ~baseline s =
  let header =
    (if baseline.matrix_seed <> s.matrix_seed then
       [ ("<matrix>", Printf.sprintf "matrix seed %d -> %d" baseline.matrix_seed s.matrix_seed) ]
     else [])
    @
    if baseline.cardinality <> s.cardinality then
      [ ("<matrix>", Printf.sprintf "cardinality %d -> %d" baseline.cardinality s.cardinality) ]
    else []
  in
  let per_cell =
    List.concat_map
      (fun b ->
        match find_cell s b.name with
        | None -> [ (b.name, "cell missing from run") ]
        | Some c ->
            let flips =
              if b.passed && not c.passed then [ (b.name, "passed -> failed") ] else []
            in
            let seeds =
              if b.seed <> c.seed then
                [ (b.name, Printf.sprintf "seed %d -> %d" b.seed c.seed) ]
              else []
            in
            let drift =
              if b.seed = c.seed then
                List.map (fun d -> (b.name, d)) (metric_drift ~old_metrics:b.metrics ~new_metrics:c.metrics)
              else []
            in
            flips @ seeds @ drift)
      baseline.cells
  in
  header @ List.sort compare per_cell

(* ---- markdown -------------------------------------------------------- *)

let render_markdown ?baseline s =
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ran = List.length s.cells in
  let failed = List.length (List.filter (fun c -> not c.passed) s.cells) in
  let wall = List.fold_left (fun acc c -> acc +. c.wall_ms) 0. s.cells in
  let regs = match baseline with None -> [] | Some b -> regressions ~baseline:b s in
  out "# Scenario matrix\n\n";
  out "- matrix seed: `%d`\n" s.matrix_seed;
  out "- cells: %d run / %d generated, %d passed, %d failed\n" ran s.cardinality (ran - failed)
    failed;
  out "- wall: %.1f s total\n" (wall /. 1000.);
  (match baseline with
  | None -> out "- baseline: (none)\n"
  | Some _ ->
      if regs = [] then out "- baseline: no regressions\n"
      else out "- baseline: **%d regression(s)**\n" (List.length regs));
  out "\n";
  if regs <> [] then begin
    out "## Regressions\n\n";
    List.iter (fun (cell, what) -> out "- `%s`: %s\n" cell what) regs;
    out "\n"
  end;
  let reg_cells = List.sort_uniq compare (List.map fst regs) in
  let baseline_col = baseline <> None in
  out "## Cells\n\n";
  if baseline_col then out "| cell | status | checks | wall (ms) | vs baseline |\n|---|---|---|---:|---|\n"
  else out "| cell | status | checks | wall (ms) |\n|---|---|---|---:|\n";
  let status c = if c.passed then "pass" else "**FAIL**" in
  let check_col c =
    let ok = List.length (List.filter (fun k -> k.Plan.ok) c.checks) in
    let total = List.length c.checks in
    if ok = total then Printf.sprintf "%d/%d" ok total
    else
      let first_bad = List.find (fun k -> not k.Plan.ok) c.checks in
      Printf.sprintf "%d/%d (`%s`: %s)" ok total first_bad.Plan.label first_bad.Plan.detail
  in
  List.iter
    (fun c ->
      if baseline_col then begin
        let verdict =
          if List.mem c.name reg_cells then "**regression**"
          else
            match baseline with
            | Some b when find_cell b c.name = None -> "new"
            | _ -> "ok"
        in
        out "| `%s` | %s | %s | %.0f | %s |\n" c.name (status c) (check_col c) c.wall_ms verdict
      end
      else out "| `%s` | %s | %s | %.0f |\n" c.name (status c) (check_col c) c.wall_ms)
    s.cells;
  (* Baseline cells the run never produced show up as skipped rows. *)
  (match baseline with
  | Some b ->
      List.iter
        (fun bc ->
          if find_cell s bc.name = None then
            out "| `%s` | skip | — | — | **missing** |\n" bc.name)
        b.cells
  | None -> ());
  Buffer.contents buf
