module Series = Stratify_stats.Series
module Table = Stratify_stats.Table

let section title =
  let line = String.make (max 8 (String.length title + 4)) '=' in
  Printf.printf "\n%s\n= %s\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  . %s\n" s) fmt

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let transform ~log_scale v = if log_scale then log v else v

let plot ?(width = 72) ?(height = 20) ?(logx = false) ?(logy = false) ?(x_label = "x")
    ?(y_label = "y") series_list =
  let all_points =
    List.concat_map (fun s -> Array.to_list s.Series.points) series_list
  in
  let usable (x, y) =
    Float.is_finite x && Float.is_finite y && ((not logx) || x > 0.) && ((not logy) || y > 0.)
  in
  let pts = List.filter usable all_points in
  if pts = [] then print_endline "  (nothing to plot)"
  else begin
    let xs = List.map (fun (x, _) -> transform ~log_scale:logx x) pts in
    let ys = List.map (fun (_, y) -> transform ~log_scale:logy y) pts in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys
    and ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun k s ->
        let glyph = glyphs.(k mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            if usable (x, y) then begin
              let fx = (transform ~log_scale:logx x -. xmin) /. xspan in
              let fy = (transform ~log_scale:logy y -. ymin) /. yspan in
              let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1))) in
              let row = height - 1 - min (height - 1) (int_of_float (fy *. float_of_int (height - 1))) in
              grid.(row).(col) <- glyph
            end)
          s.Series.points)
      series_list;
    let y_at row =
      let f = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      let v = ymin +. (f *. yspan) in
      if logy then exp v else v
    in
    Array.iteri
      (fun row line ->
        if row mod 4 = 0 || row = height - 1 then
          Printf.printf "  %10.3g | %s\n" (y_at row) (String.init width (fun c -> line.(c)))
        else Printf.printf "  %10s | %s\n" "" (String.init width (fun c -> line.(c))))
      grid;
    let x_at f =
      let v = xmin +. (f *. xspan) in
      if logx then exp v else v
    in
    Printf.printf "  %10s +-%s\n" "" (String.make width '-');
    Printf.printf "  %10s   %-20.4g%*.4g\n" "" (x_at 0.) (width - 20) (x_at 1.);
    Printf.printf "  %10s   (%s vs %s%s%s)\n" "" y_label x_label
      (if logx then ", log-x" else "")
      (if logy then ", log-y" else "");
    List.iteri
      (fun k s ->
        Printf.printf "  %10s   %c = %s\n" "" glyphs.(k mod Array.length glyphs) s.Series.label)
      series_list
  end

let table t = print_string (Table.render t)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file ~dir ~name contents =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc;
  note "wrote %s" path

let write_csv ~dir ~name t = write_file ~dir ~name (Table.to_csv t)

let write_series_csv ~dir ~name series_list =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "label,x,y";
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "\n%s,%.8g,%.8g" s.Series.label x y))
        s.Series.points)
    series_list;
  write_file ~dir ~name (Buffer.contents buf)
