(** Experiment output: ASCII plots, CSV export, section headers. *)

val section : string -> unit
(** Print a banner line for an experiment section. *)

val subsection : string -> unit

val note : ('a, unit, string, unit) format4 -> 'a
(** Printf-style annotated line (prefixed with "  · "). *)

val plot :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  ?x_label:string ->
  ?y_label:string ->
  Stratify_stats.Series.t list ->
  unit
(** Render one or more series in a shared ASCII frame, one glyph per
    series, with a legend. *)

val table : Stratify_stats.Table.t -> unit
(** Print a rendered table. *)

val write_csv : dir:string -> name:string -> Stratify_stats.Table.t -> unit
(** Write a table as [dir/name.csv] (directory created if needed). *)

val write_series_csv : dir:string -> name:string -> Stratify_stats.Series.t list -> unit
(** Write series as a long-format CSV: label,x,y. *)
