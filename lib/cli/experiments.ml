module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Series = Stratify_stats.Series
module Table = Stratify_stats.Table
module Discrete = Stratify_stats.Discrete
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Bt = Stratify_bittorrent
module Exec = Stratify_exec.Exec
module Net = Stratify_net.Net
open Stratify_core

type context = {
  seed : int;
  scale : float;
  csv_dir : string option;
  jobs : int;
  manifest_dir : string option;
  n_override : int option;
  scheduler : Scheduler.policy;
  bands : int;
  band_overlap : int option;
  profile_phases : bool;
  queue : Stratify_des.Engine.backend;
}

let default_context =
  {
    seed = 42;
    scale = 1.;
    csv_dir = None;
    jobs = 1;
    manifest_dir = None;
    n_override = None;
    scheduler = Scheduler.Random_poll;
    bands = 1;
    band_overlap = None;
    profile_phases = false;
    queue = Stratify_des.Engine.Heap;
  }

(* Contexts also arrive from library callers (the bench harness builds
   one directly), so the named-error validation lives here rather than
   only in the cmdliner layer. *)
let validate_context ctx =
  if ctx.scale <= 0. || ctx.scale > 1. then
    invalid_arg (Printf.sprintf "Experiments: scale must be in (0, 1] (got %g)" ctx.scale);
  if ctx.jobs < 1 then
    invalid_arg (Printf.sprintf "Experiments: jobs must be >= 1 (got %d)" ctx.jobs);
  (match ctx.n_override with
  | Some n when n < 1 ->
      invalid_arg (Printf.sprintf "Experiments: n must be >= 1 (got %d)" n)
  | _ -> ());
  if ctx.bands < 1 then
    invalid_arg (Printf.sprintf "Experiments: bands must be >= 1 (got %d)" ctx.bands);
  (match ctx.n_override with
  | Some n when ctx.bands > n ->
      invalid_arg
        (Printf.sprintf "Experiments: %d bands exceed the %d-peer population" ctx.bands n)
  | _ -> ());
  match ctx.band_overlap with
  | Some o when o < 0 ->
      invalid_arg (Printf.sprintf "Experiments: band-overlap must be >= 0 (got %d)" o)
  | _ -> ()

let scaled ctx full = max 1 (int_of_float (Float.round (float_of_int full *. ctx.scale)))

let maybe_csv ctx name series =
  match ctx.csv_dir with
  | Some dir -> Output.write_series_csv ~dir ~name series
  | None -> ()

let maybe_csv_table ctx name t =
  match ctx.csv_dir with Some dir -> Output.write_csv ~dir ~name t | None -> ()

(* Order-sensitive 50-bit FNV hash of the collaboration set — the same
   machine-independent checksum as the bench manifests.  fig1 records
   one per trajectory so CI can assert the reached fixed point is
   scheduler-invariant (Theorem 1's uniqueness, checked end to end). *)
let config_checksum c =
  let h = ref 0x811c9dc5 in
  Config.iter_pairs
    (fun p q -> h := ((!h * 16777619) lxor ((p lsl 20) lxor q)) land ((1 lsl 50) - 1))
    c;
  !h

(* ------------------------------------------------------------------ *)

let fig1 ctx =
  Output.section "Fig 1 - convergence towards the stable configuration (empty start)";
  let units = 40 in
  let combos = [| (scaled ctx 100, 50.); (scaled ctx 1000, 10.); (scaled ctx 1000, 50.) |] in
  (* One trajectory per (n, d) combo; each re-seeds from the context, so
     they are independent kernels for the parallel engine.  All printing
     stays on the coordinator to keep the report order fixed. *)
  let series =
    Array.to_list
      (Exec.map_indexed ~jobs:ctx.jobs ~count:(Array.length combos) (fun i ->
           let n, d = combos.(i) in
           let rng = Rng.create ctx.seed in
           let graph = Gen.gnd rng ~n ~d in
           let inst = Instance.create ~graph ~b:(Array.make n 1) () in
           let stable = Greedy.stable_config inst in
           let sim = Sim.create ~scheduler:ctx.scheduler inst rng in
           let traj = Sim.disorder_trajectory sim ~stable ~units ~samples_per_unit:4 in
           (* Counter names are per-combo, values a single add: totals
              stay jobs-invariant and, by uniqueness, scheduler-
              invariant once converged. *)
           Stratify_obs.Counter.add
             (Stratify_obs.Counter.make (Printf.sprintf "checksum.fig1_final/%d" i))
             (config_checksum (Sim.config sim));
           { traj with Series.label = Printf.sprintf "n=%d,d=%g" n d }))
  in
  List.iteri
    (fun i traj ->
      let n, d = combos.(i) in
      match Series.first_x_below traj 1e-12 with
      | Some x ->
          Output.note "n=%d d=%g: stable after %.2f initiatives/peer (paper: < d = %g)" n d x d
      | None -> Output.note "n=%d d=%g: not converged in %d units" n d units)
    series;
  Output.plot ~x_label:"initiatives per peer" ~y_label:"disorder" series;
  maybe_csv ctx "fig1" series

let fig2 ctx =
  Output.section "Fig 2 - recovery after removing one peer from the stable state";
  let n = scaled ctx 1000 in
  let d = 10. in
  (* Paper removes peers 1, 100, 300, 600 (1-based labels). *)
  let removals = List.filter (fun r -> r < n) [ 0; 99; 299; 599 ] in
  let series =
    List.map
      (fun remove ->
        let rng = Rng.create ctx.seed in
        let traj =
          Churn.removal_trajectory ~scheduler:ctx.scheduler rng ~n ~d ~b:1 ~remove ~units:10
            ~samples_per_unit:4
        in
        let traj = { traj with Series.label = Printf.sprintf "peer %d removed" (remove + 1) } in
        Output.note "peer %4d removed: initial disorder %.4f, max %.4f, final %.5f" (remove + 1)
          (snd traj.Series.points.(0))
          (Series.max_y traj) (Series.final_value traj);
        traj)
      removals
  in
  Output.plot ~x_label:"initiatives per peer" ~y_label:"disorder" series;
  Output.note "paper: disorder always < 0.014, recovery < d = 10 units, better peers hurt more";
  maybe_csv ctx "fig2" series

let fig3 ctx =
  Output.section "Fig 3 - disorder under continuous churn (empty start)";
  let n = scaled ctx 1000 in
  let rates = [ 0.03; 0.01; 0.003; 0.0005; 0. ] in
  let series =
    List.map
      (fun rate ->
        let rng = Rng.create ctx.seed in
        let params =
          {
            Churn.n;
            d = 10.;
            b = 1;
            rate;
            units = 20;
            samples_per_unit = 4;
            strategy = Initiative.Best_mate;
            scheduler = ctx.scheduler;
          }
        in
        let traj = Churn.run rng params in
        let traj =
          { traj with Series.label = Printf.sprintf "churn=%g/1000" (rate *. 1000.) }
        in
        Output.note "churn %6g/1000: plateau disorder %.4f" (rate *. 1000.)
          (Churn.mean_disorder_tail traj ~skip_units:10.);
        traj)
      rates
  in
  Output.plot ~x_label:"initiatives per peer" ~y_label:"disorder" series;
  Output.note "paper: plateau roughly proportional to the churn rate";
  maybe_csv ctx "fig3" series

let print_components adj =
  let comps = Stratify_graph.Components.of_adjacency adj in
  let module C = Stratify_graph.Components in
  for id = 0 to comps.C.count - 1 do
    let members = C.members comps id in
    Printf.printf "  cluster %d: {%s}\n" id
      (String.concat ", " (List.map (fun v -> string_of_int (v + 1)) members))
  done

(* Same 50-bit FNV discipline as [config_checksum], over an adjacency's
   (p, q) pairs with p < q — fig4 records one so CI can assert the
   collaboration graph is band-count-invariant. *)
let adjacency_checksum adj =
  let h = ref 0x811c9dc5 in
  Array.iteri
    (fun p row ->
      Array.iter
        (fun q ->
          if p < q then h := ((!h * 16777619) lxor ((p lsl 20) lxor q)) land ((1 lsl 50) - 1))
        row)
    adj;
  !h

let fig4 ctx =
  Output.section "Fig 4 - constant 2-matching on a complete graph: clusters of b0+1";
  (* The acceptance graph is implicit ([Instance.complete] under
     [Cluster.collaboration_graph]), so [--n 1000000] runs in O(n·b0)
     memory — no n×n adjacency exists at any point.  [--bands k] solves
     k overlapping rank bands on the domain pool and reconciles the
     boundaries; the graph is identical for every band count. *)
  let n = match ctx.n_override with Some n -> n | None -> 9 in
  let b0 = 2 in
  let adj =
    Cluster.collaboration_graph ~jobs:ctx.jobs ~bands:ctx.bands ?overlap:ctx.band_overlap
      ~b:(Normal_b.constant ~n ~b0) ()
  in
  let analysis = Cluster.analyze adj in
  Stratify_obs.Counter.add
    (Stratify_obs.Counter.make "checksum.fig4_graph")
    (adjacency_checksum adj);
  Stratify_obs.Counter.add
    (Stratify_obs.Counter.make "checksum.fig4_clusters")
    analysis.Cluster.count;
  if n <= 64 then print_components adj
  else
    Output.note "n=%d: %d clusters, mean size %.2f, largest %d" n analysis.Cluster.count
      analysis.Cluster.mean_size analysis.Cluster.largest;
  Output.note "matches the predicted block structure: %b"
    (Cluster.matches_block_structure ~n ~b0 adj)

let fig5 ctx =
  ignore ctx;
  Output.section "Fig 5 - one extra slot on peer 1 chains the clusters";
  let n = 8 and b0 = 2 in
  let b = Normal_b.with_extra (Normal_b.constant ~n ~b0) ~peer:0 in
  let adj = Cluster.collaboration_graph ~b () in
  print_components adj;
  let analysis = Cluster.analyze adj in
  Output.note "connected components: %d (paper: 1)" analysis.Cluster.count

let table1 ctx =
  Output.section "Table 1 - clustering and stratification on complete acceptance graphs";
  let rng = Rng.create ctx.seed in
  let paper_const_size = [| 3.; 4.; 5.; 6.; 7.; 8. |] in
  let paper_const_mmo = [| 1.67; 2.5; 3.2; 4.; 4.71; 5.5 |] in
  let paper_normal_size = [| 6.; 20.; 78.; 350.; 1800.; 11000. |] in
  let paper_normal_mmo = [| 1.33; 2.10; 2.52; 3.21; 3.65; 4.31 |] in
  let t =
    Table.create
      [
        "b0 / b-mean"; "const size (paper)"; "const size (ours)"; "const MMO (paper)";
        "const MMO (ours)"; "N(b,0.2) size (paper)"; "N(b,0.2) size (ours)";
        "N(b,0.2) MMO (paper)"; "N(b,0.2) MMO (ours)";
      ]
  in
  for b0 = 2 to 7 do
    let idx = b0 - 2 in
    (* Constant matching: measure on a block-aligned population. *)
    let n_const =
      match ctx.n_override with
      | None -> 2520
      | Some n -> max (b0 + 1) (n - (n mod (b0 + 1)))
    in
    let adj =
      Cluster.collaboration_graph ~jobs:ctx.jobs ~bands:ctx.bands ?overlap:ctx.band_overlap
        ~b:(Normal_b.constant ~n:n_const ~b0) ()
    in
    let const_analysis = Cluster.analyze adj in
    let const_mmo = Mmo.of_adjacency adj in
    (* Normal budgets: population must dwarf the expected cluster size.
       Cluster sizes are heavy-tailed (a single giant merge dominates a
       mean), so replicate and report the median. *)
    let n_normal =
      match ctx.n_override with
      | Some n -> n
      | None -> scaled ctx (max 10_000 (int_of_float (25. *. paper_normal_size.(idx))))
    in
    let replicates = if b0 <= 5 then 7 else if b0 = 6 then 3 else 2 in
    let runs =
      Exec.map_replicas ~jobs:ctx.jobs ~rng ~replicas:replicates (fun rng _ ->
          (* Replicas already occupy the worker pool, so band solves
             inside each kernel stay on their worker's domain. *)
          Phase.measure ~bands:ctx.bands ?overlap:ctx.band_overlap rng ~n:n_normal
            ~mean_b:(float_of_int b0) ~sigma:0.2 ~replicates:1)
    in
    let median f =
      let values = Array.map f runs in
      Array.sort Float.compare values;
      values.(Array.length values / 2)
    in
    let point =
      {
        Phase.sigma = 0.2;
        mean_cluster_size = median (fun p -> p.Phase.mean_cluster_size);
        largest_cluster = median (fun p -> p.Phase.largest_cluster);
        mmo = median (fun p -> p.Phase.mmo);
      }
    in
    ignore
      (Table.add_float_row t (string_of_int b0)
         [
           paper_const_size.(idx);
           const_analysis.Cluster.mean_size;
           paper_const_mmo.(idx);
           const_mmo;
           paper_normal_size.(idx);
           point.Phase.mean_cluster_size;
           paper_normal_mmo.(idx);
           point.Phase.mmo;
         ])
  done;
  Output.table t;
  Output.note "normal-law cluster sizes depend on n and seed; the paper reports the";
  Output.note "order of magnitude of a factorial-like growth, which is what to compare.";
  maybe_csv_table ctx "table1" t

let fig6 ctx =
  Output.section "Fig 6 - sigma phase transition at b-mean = 6";
  let rng = Rng.create ctx.seed in
  let n = match ctx.n_override with Some n -> n | None -> scaled ctx 40_000 in
  let sigmas =
    Array.of_list
      (List.init 9 (fun i -> float_of_int i *. 0.05)
      @ List.init 8 (fun i -> 0.6 +. (float_of_int i *. 0.2)))
  in
  (* Flatten the (sigma, replicate) grid into one replica list so the
     whole sweep — not just one sigma — feeds the worker pool, then
     average the replicates back per sigma. *)
  let replicates = 2 in
  let grid =
    Exec.map_replicas ~jobs:ctx.jobs ~rng ~replicas:(Array.length sigmas * replicates)
      (fun rng k ->
        Phase.measure ~bands:ctx.bands ?overlap:ctx.band_overlap rng ~n
          ~mean_b:6. ~sigma:sigmas.(k / replicates) ~replicates:1)
  in
  let points =
    Array.mapi
      (fun si sigma ->
        let mean f =
          let acc = ref 0. in
          for r = 0 to replicates - 1 do
            acc := !acc +. f grid.((si * replicates) + r)
          done;
          !acc /. float_of_int replicates
        in
        {
          Phase.sigma;
          mean_cluster_size = mean (fun p -> p.Phase.mean_cluster_size);
          largest_cluster = mean (fun p -> p.Phase.largest_cluster);
          mmo = mean (fun p -> p.Phase.mmo);
        })
      sigmas
  in
  let size_series =
    Series.make "mean cluster size"
      (Array.map (fun p -> (p.Phase.sigma, p.Phase.mean_cluster_size)) points)
  in
  let mmo_series =
    Series.make "mean max offset" (Array.map (fun p -> (p.Phase.sigma, p.Phase.mmo)) points)
  in
  Output.subsection "mean cluster size (log-y)";
  Output.plot ~logy:true ~x_label:"sigma" ~y_label:"cluster size" [ size_series ];
  Output.subsection "mean max offset";
  Output.plot ~x_label:"sigma" ~y_label:"MMO" [ mmo_series ];
  (match Phase.transition_sigma points ~threshold:2. with
  | Some s -> Output.note "cluster-size explosion at sigma ~ %.2f (paper: ~0.15)" s
  | None -> Output.note "no transition detected (scale too small?)");
  let at sigma =
    let best = ref points.(0) in
    Array.iter
      (fun p ->
        if Float.abs (p.Phase.sigma -. sigma) < Float.abs (!best.Phase.sigma -. sigma) then
          best := p)
      points;
    !best
  in
  Output.note "MMO: %.2f at sigma=0 -> %.2f at sigma=0.2 (paper: decreases across the transition)"
    points.(0).Phase.mmo (at 0.2).Phase.mmo;
  maybe_csv ctx "fig6" [ size_series; mmo_series ]

let fig7 ctx =
  Output.section "Fig 7 - exactness counter-example on 3 peers";
  let t =
    Table.create
      [ "p"; "D(1,2) exact"; "D(1,3) exact"; "D(2,3) exact"; "D(2,3) algo2"; "gap"; "p^3(1-p)" ]
  in
  List.iter
    (fun p ->
      let exact = Exact_small.mate_matrix ~n:3 ~p ~b0:1 in
      let approx = One_matching.matrix ~n:3 ~p in
      ignore
        (Table.add_float_row t
           (Printf.sprintf "%.2f" p)
           [
             exact.(0).(1);
             exact.(0).(2);
             exact.(1).(2);
             approx.(1).(2);
             approx.(1).(2) -. exact.(1).(2);
             Exact_small.fig7_approximation_error ~p;
           ]
           ~fmt:(Printf.sprintf "%.6f")))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];
  Output.table t;
  Output.note "the gap equals p^3(1-p) exactly: Assumption 1 fails only through";
  Output.note "the correlation introduced by peer 1 being taken.";
  maybe_csv_table ctx "fig7" t

let fig8 ctx =
  Output.section "Fig 8 - mate-rank distributions (n = 5000, p = 0.5%)";
  let n = scaled ctx 5000 in
  let p = 0.005 /. ctx.scale in
  let p = Float.min p 0.9 in
  let pick frac = min (n - 1) (int_of_float (frac *. float_of_int n)) in
  let peers = [| pick 0.04; pick 0.5; pick 0.96 |] in
  let rows = One_matching.mate_distributions ~n ~p ~peers in
  let series =
    Array.to_list
      (Array.mapi
         (fun k row ->
           let weights = Discrete.to_array row in
           Series.make
             (Printf.sprintf "peer %d" (peers.(k) + 1))
             (Array.mapi (fun j w -> (float_of_int (j + 1), w)) weights))
         rows)
  in
  Output.plot ~x_label:"mate rank j" ~y_label:"D(i,j)" series;
  Array.iteri
    (fun k row ->
      Output.note "peer %4d: match probability %.4f, mean mate rank %.0f, mode %d" (peers.(k) + 1)
        (Discrete.total_mass row) (Discrete.mean row +. 1.) (Discrete.mode row + 1))
    rows;
  let worst = (One_matching.mate_distributions ~n ~p ~peers:[| n - 1 |]).(0) in
  Output.note "worst peer match probability: %.4f (paper: 1/2 in the limit)"
    (Discrete.total_mass worst);
  (* Fluid-limit overlay for the best peer. *)
  let d = p *. float_of_int (n - 1) in
  Output.note "fluid limit check (best peer): max |nD(0,bn) - d e^{-bd}| = %.4f"
    (Fluid.max_gap_to_limit ~n ~d);
  maybe_csv ctx "fig8" series

let smooth_series ~window s =
  let pts = s.Series.points in
  let n = Array.length pts in
  let out =
    Array.init n (fun i ->
        let lo = max 0 (i - window) and hi = min (n - 1) (i + window) in
        let acc = ref 0. in
        for k = lo to hi do
          acc := !acc +. snd pts.(k)
        done;
        (fst pts.(i), !acc /. float_of_int (hi - lo + 1)))
  in
  { s with Series.points = out }

let fig9 ctx =
  Output.section "Fig 9 - Monte-Carlo validation of the independent 2-matching model";
  let n = scaled ctx 5000 in
  let p = Float.min 0.9 (0.01 /. ctx.scale) in
  let b0 = 2 in
  let peer = min (n - 1) (int_of_float (0.6 *. float_of_int n)) in
  let runs = max 50 (scaled ctx 400) in
  let rng = Rng.create ctx.seed in
  (* The paper's "several weeks" of realizations: one replica = one
     G(n,p) stable 2-matching.  Each replica runs on its own substream
     (indexed by replica id, not worker), so the counts — and the CSV —
     are byte-identical for every --jobs value. *)
  let mates_per_run =
    Exec.map_replicas ~jobs:ctx.jobs ~rng ~replicas:runs (fun rng _ ->
        let adj = Gen.gnp_adjacency rng ~n ~p in
        let inst = Instance.of_adjacency ~adj ~b:(Array.make n b0) () in
        let config = Greedy.stable_config inst in
        Config.mates config peer)
  in
  let counts = Array.init b0 (fun _ -> Array.make n 0) in
  Array.iter
    (List.iteri (fun c j -> counts.(c).(j) <- counts.(c).(j) + 1))
    mates_per_run;
  let estimated = B_matching.choice_distributions ~n ~p ~b0 ~peer in
  let offset_series label weights =
    Series.make label
      (Array.mapi (fun j w -> (float_of_int (j - peer), w)) weights)
  in
  let sim_series c =
    offset_series
      (Printf.sprintf "choice %d simulated (%d runs)" (c + 1) runs)
      (Array.map (fun k -> float_of_int k /. float_of_int runs) counts.(c))
  in
  let est_series c =
    offset_series (Printf.sprintf "choice %d estimated" (c + 1)) (Discrete.to_array estimated.(c))
  in
  let window = max 1 (n / 200) in
  let series =
    List.concat_map
      (fun c -> [ smooth_series ~window (sim_series c); smooth_series ~window (est_series c) ])
      [ 0; 1 ]
  in
  Output.plot ~x_label:"ranking offset" ~y_label:"probability" series;
  for c = 0 to b0 - 1 do
    let sim_mass =
      Array.fold_left ( + ) 0 counts.(c) |> fun k -> float_of_int k /. float_of_int runs
    in
    let est_mass = Discrete.total_mass estimated.(c) in
    (* Raw per-rank TV is dominated by Monte-Carlo noise (n cells, runs
       samples); compare coarse-binned distributions instead. *)
    let bins = 25 in
    let bin_width = (n + bins - 1) / bins in
    let sim_binned = Array.make bins 0. and est_binned = Array.make bins 0. in
    Array.iteri
      (fun j k ->
        sim_binned.(j / bin_width) <-
          sim_binned.(j / bin_width) +. (float_of_int k /. float_of_int runs))
      counts.(c);
    for j = 0 to n - 1 do
      est_binned.(j / bin_width) <- est_binned.(j / bin_width) +. Discrete.mass estimated.(c) j
    done;
    let tv = ref 0. in
    for b = 0 to bins - 1 do
      tv := !tv +. Float.abs (sim_binned.(b) -. est_binned.(b))
    done;
    let sim_mean =
      let acc = ref 0. in
      Array.iteri (fun j k -> acc := !acc +. (float_of_int (j * k) /. float_of_int runs)) counts.(c);
      !acc /. sim_mass
    in
    Output.note "choice %d: mass sim %.4f / est %.4f; mean rank sim %.0f / est %.0f; binned TV %.4f"
      (c + 1) sim_mass est_mass sim_mean (Discrete.mean estimated.(c)) (0.5 *. !tv)
  done;
  Output.note "paper used 10^6 realizations over several weeks; %d realizations already" runs;
  Output.note "show the distribution shapes matching within sampling noise.";
  maybe_csv ctx "fig9" series

let fig10 ctx =
  Output.section "Fig 10 - upstream capacity distribution (synthetic Saroiu-like profile)";
  let s = Profile.to_series Saroiu.profile ~points:80 in
  Output.plot ~logx:true ~x_label:"upstream (kbps)" ~y_label:"% of hosts" [ s ];
  Output.note "median upstream: %.0f kbps; density peaks at: %s" Saroiu.median_upstream
    (String.concat ", "
       (Array.to_list (Array.map (fun b -> Printf.sprintf "%.0f" b) Saroiu.density_peaks)));
  maybe_csv ctx "fig10" [ s ]

let fig11 ctx =
  Output.section "Fig 11 - expected D/U ratio vs upload per slot (b0=3, d=20)";
  let n = scaled ctx 2000 in
  let r = Share_ratio.compute { Share_ratio.n; b0 = 3; d = 20.; profile = Saroiu.profile } in
  let s = Share_ratio.to_series r in
  Output.plot ~logx:true ~x_label:"bandwidth per slot (kbps)" ~y_label:"expected D/U" [ s ];
  Output.note "best peer ratio: %.3f (paper: < 1, best peers are spoiled)"
    (Share_ratio.best_peer_ratio r);
  Output.note "worst peer ratio: %.3f (paper: high, ~half the time 4x their upload)"
    (Share_ratio.worst_peer_ratio r);
  Array.iter
    (fun peak ->
      Output.note "density peak %6.0f kbps: ratio %.3f (paper: close to 1)" peak
        (Share_ratio.ratio_near r ~bandwidth_per_slot:(peak /. 3.)))
    [| 56.; 129.; 257.; 650. |];
  maybe_csv ctx "fig11" [ s ]

let slots_ablation ctx =
  Output.section "Slot-count ablation - the rational peer and the 4-slot default";
  let n = scaled ctx 1000 in
  let t = Table.create [ "upload (kbps)"; "1 slot"; "2 slots"; "3 slots"; "4 slots"; "5 slots" ] in
  List.iter
    (fun upload ->
      let sweep =
        Share_ratio.sweep_slots ~n ~d:20. ~profile:Saroiu.profile ~my_upload:upload
          ~slots:[| 1; 2; 3; 4; 5 |] ()
      in
      ignore
        (Table.add_float_row t
           (Printf.sprintf "%.0f" upload)
           (List.map (fun (_, ratio) -> ratio) (Array.to_list sweep))
           ~fmt:(Printf.sprintf "%.3f")))
    [ 128.; 256.; 640.; 1200.; 3200. ];
  Output.table t;
  Output.note "fewer TFT slots raise per-slot bandwidth, hence rank, hence ratio - the";
  Output.note "race towards the 1-slot Nash equilibrium - except where the higher";
  Output.note "per-slot bandwidth lands just above a density peak (an efficiency peak,";
  Output.note "cf. Fig 11). The default 4 (3 TFT + 1 optimistic) trades TFT-graph";
  Output.note "connectivity against that incentive.";
  (* The equilibrium claim, checked: which symmetric slot profiles survive
     unilateral deviation? *)
  Output.subsection "symmetric Nash check (candidates 1..5, probes at 5 quantiles)";
  List.iter
    (fun b0 ->
      let a =
        Nash.symmetric_profile_analysis ~n:(min n 400) ~d:20. ~profile:Saroiu.profile
          ~population_b0:b0 ~candidates:[| 1; 2; 3; 4; 5 |] ()
      in
      let defectors =
        Array.fold_left
          (fun acc (_, _, sq, br) -> if br > sq *. 1.05 then acc + 1 else acc)
          0 a.Nash.deviations
      in
      Output.note "everyone at %d slot(s): %s (%d/%d probe peers would defect)" b0
        (if a.Nash.is_equilibrium then "Nash equilibrium" else "NOT an equilibrium")
        defectors
        (Array.length a.Nash.deviations))
    [ 1; 2; 3; 4 ];
  Output.note "exactly the paper's statement: rational play collapses to 1 TFT slot.";
  maybe_csv_table ctx "slots" t

let swarm_validation ctx =
  Output.section "Swarm cross-check - TFT simulator vs analytic share-ratio model";
  let n = scaled ctx 300 in
  let rng = Rng.create ctx.seed in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let params = { (Bt.Swarm.default_params ~uploads) with Bt.Swarm.d = 20. } in
  let swarm = Bt.Swarm.create rng params in
  let warmup = 600 and measure = 1200 in
  Bt.Swarm.run swarm ~ticks:warmup;
  Bt.Swarm.reset_counters swarm;
  Bt.Swarm.run swarm ~ticks:measure;
  let sim_ratios = Bt.Metrics.tft_share_ratios swarm in
  let model = Share_ratio.compute { Share_ratio.n; b0 = 3; d = 20.; profile = Saroiu.profile } in
  let sim_series =
    Series.make "simulated (TFT traffic)"
      (Array.init n (fun k ->
           let i = n - 1 - k in
           (model.Share_ratio.upload_per_slot.(i), sim_ratios.(i))))
  in
  let model_series = { (Share_ratio.to_series model) with Series.label = "analytic model" } in
  let window = max 1 (n / 40) in
  Output.plot ~logx:true ~x_label:"bandwidth per slot (kbps)" ~y_label:"D/U"
    [ smooth_series ~window sim_series; model_series ];
  let gap = Series.area_between (smooth_series ~window sim_series) model_series in
  Output.note "mean |simulated - model| over the curve: %.3f" gap;
  Output.note "stratification correlation in the swarm: %.3f"
    (Bt.Metrics.stratification_correlation swarm);
  Output.note "TFT reciprocity: %.3f" (Bt.Metrics.reciprocity swarm);
  maybe_csv ctx "swarm_validation" [ sim_series; model_series ]


let strategies_ablation ctx =
  Output.section "Strategy ablation - best-mate vs decremental vs random initiatives";
  let n = scaled ctx 500 in
  let d = 10. in
  let t = Table.create [ "strategy"; "units to stability (median of 5)"; "active initiatives" ] in
  List.iter
    (fun strategy ->
      let units = ref [] and actives = ref [] in
      for seed = 0 to 4 do
        let rng = Rng.create (ctx.seed + seed) in
        let graph = Gen.gnd rng ~n ~d in
        let inst = Instance.create ~graph ~b:(Array.make n 1) () in
        let stable = Greedy.stable_config inst in
        let sim = Sim.create ~strategy ~scheduler:ctx.scheduler inst rng in
        match Sim.run_until_stable sim ~stable ~max_units:2000 with
        | Some steps ->
            units := (float_of_int steps /. float_of_int n) :: !units;
            actives := float_of_int (Sim.active_count sim) :: !actives
        | None -> ()
      done;
      let median l =
        let a = Array.of_list l in
        Array.sort Float.compare a;
        if Array.length a = 0 then Float.nan else a.(Array.length a / 2)
      in
      ignore
        (Table.add_float_row t
           (Initiative.strategy_name strategy)
           [ median !units; median !actives ]
           ~fmt:(Printf.sprintf "%.1f")))
    [ Initiative.Best_mate; Initiative.Decremental; Initiative.Random ];
  Output.table t;
  Output.note "all three strategies of the paper's Section 3 converge; less information";
  Output.note "means more (wasted) initiatives, not a different fixed point.";
  maybe_csv_table ctx "strategies" t

let scaling ctx =
  Output.section "Convergence scaling - initiatives/peer to stability vs n and d";
  (* The paper observes convergence in < n*d initiatives; here we fit the
     empirical scaling law the paper left open. *)
  let median_units ~n ~d =
    (* Five independent seeds; each kernel derives its own RNG from the
       index, so the medians do not depend on --jobs. *)
    let runs =
      Exec.map_indexed ~jobs:ctx.jobs ~count:5 (fun k ->
          let rng = Rng.create (ctx.seed + k) in
          let graph = Gen.gnd rng ~n ~d in
          let inst = Instance.create ~graph ~b:(Array.make n 1) () in
          (* Reference fixed point via the sharded solver (Dense-backend
             exercise; identical to greedy for every band count).  The
             grid spans several n, so clamp the band count to each. *)
          let stable =
            Shard.stable_config ~bands:(min ctx.bands n) ?overlap:ctx.band_overlap inst
          in
          let sim = Sim.create ~scheduler:ctx.scheduler inst rng in
          match Sim.run_until_stable sim ~stable ~max_units:4000 with
          | Some steps -> float_of_int steps /. float_of_int n
          | None -> Float.nan)
    in
    let a = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list runs)) in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  let ns = [| 125; 250; 500; 1000 |] in
  let n_points =
    Array.map (fun n -> (float_of_int (scaled ctx n), median_units ~n:(scaled ctx n) ~d:10.)) ns
  in
  let fit_n = Stratify_stats.Linreg.fit_loglog n_points in
  Output.note "fixed d=10, varying n: units ~ n^%.2f (r2 %.2f)" fit_n.Stratify_stats.Linreg.slope
    fit_n.Stratify_stats.Linreg.r_squared;
  let ds = [| 5.; 10.; 20.; 40. |] in
  let d_points = Array.map (fun d -> (d, median_units ~n:(scaled ctx 500) ~d)) ds in
  let fit_d = Stratify_stats.Linreg.fit_loglog d_points in
  Output.note "fixed n=%d, varying d: units ~ d^%.2f (r2 %.2f)" (scaled ctx 500)
    fit_d.Stratify_stats.Linreg.slope fit_d.Stratify_stats.Linreg.r_squared;
  Output.note "paper: 'the stable configuration is reached in less than n*d initiatives'";
  Output.note "(i.e. units/peer <~ d and roughly n-independent) - consistent when the";
  Output.note "n-exponent is near 0 and the d-exponent is at most ~1.";
  let series =
    [
      Series.make "units vs n (d=10)" n_points;
      Series.make "units vs d (n fixed)" d_points;
    ]
  in
  maybe_csv ctx "scaling" series

let alpha_fluid ctx =
  Output.section "Fluid limit across ranks - shift invariance of the mate-offset law";
  let n = scaled ctx 4000 in
  let d = 20. in
  let alphas = [| 0.; 0.25; 0.5; 0.75; 0.97 |] in
  let series =
    Array.to_list (Array.map (fun alpha -> Fluid.offset_series ~n ~d ~alpha) alphas)
  in
  (* Plot only the informative window around zero offset. *)
  let windowed =
    List.map
      (fun s ->
        let keep =
          Array.of_list
            (List.filter
               (fun (x, _) -> Float.abs x < 4. /. d)
               (Array.to_list s.Series.points))
        in
        { s with Series.points = keep })
      series
  in
  Output.plot ~x_label:"offset / n" ~y_label:"n * D" windowed;
  Output.note "mid-rank gap (alpha 0.4 vs 0.6): %.4f - pure translation"
    (Fluid.shift_invariance_gap ~n ~d ~alpha1:0.4 ~alpha2:0.6);
  Output.note "edge gap (alpha 0.0 vs 0.5):     %.4f - boundary effects"
    (Fluid.shift_invariance_gap ~n ~d ~alpha1:0. ~alpha2:0.5);
  Output.note "this is Section 5.3's stratification statement: the offset law does not";
  Output.note "depend on rank away from the boundaries (the 'finite horizon' property).";
  maybe_csv ctx "alpha_fluid" windowed

let latency ctx =
  Output.section "Utility-class contrast - global ranking vs symmetric latency (Section 7)";
  let n = scaled ctx 300 in
  let rng = Rng.create ctx.seed in
  let positions = Stratify_graph.Spatial.random_positions rng ~n in
  let dist = Stratify_graph.Spatial.distance positions in
  let graph = Gen.gnd rng ~n ~d:30. in
  let acceptance = Stratify_graph.Undirected.adjacency_arrays graph in
  let b = Array.make n 3 in
  (* Global-ranking matching on the same substrate. *)
  let inst = Instance.create ~graph ~b () in
  let ranked = Greedy.stable_config inst in
  (* Symmetric latency matching. *)
  let u = Utility.symmetric_distance dist in
  let gm = General_matching.create ~utility:u ~acceptance ~b in
  let sym = Symmetric_greedy.stable_state gm ~utility:u in
  let rank_offset_pairs config_mates =
    let pairs = ref [] in
    for p = 0 to n - 1 do
      List.iter (fun q -> pairs := (float_of_int p, float_of_int q) :: !pairs) (config_mates p)
    done;
    Array.of_list !pairs
  in
  let mean_partner_metric config_mates metric =
    let total = ref 0. and count = ref 0 in
    for p = 0 to n - 1 do
      List.iter
        (fun q ->
          total := !total +. metric p q;
          incr count)
        (config_mates p)
    done;
    !total /. float_of_int (max 1 !count)
  in
  let ranked_mates p = Config.mates ranked p in
  let sym_mates p = General_matching.State.mates sym p in
  let t = Table.create [ "utility"; "rank corr (partners)"; "mean |rank offset|"; "mean distance" ] in
  let row name mates =
    ignore
      (Table.add_float_row t name
         [
           Stratify_stats.Correlation.pearson (rank_offset_pairs mates);
           mean_partner_metric mates (fun p q -> Float.abs (float_of_int (p - q)));
           mean_partner_metric mates dist;
         ]
         ~fmt:(Printf.sprintf "%.3f"))
  in
  row "global ranking" ranked_mates;
  row "symmetric latency" sym_mates;
  Output.table t;
  Output.note "global ranking stratifies by rank (high rank correlation, small rank";
  Output.note "offset, distance ~ random); latency clusters by proximity (small";
  Output.note "distance, rank structure gone) - Section 7's utility-class contrast.";
  (* Blended utilities: existence degrades between the two well-behaved
     poles. *)
  let score q = float_of_int (n - q) /. float_of_int n in
  let ranking_u = Utility.of_function (fun _ q -> score q) in
  let cycles alpha =
    let blended = Utility.blend ranking_u (Utility.symmetric_distance dist) ~alpha in
    let small_n = min n 40 in
    let small_acc =
      Array.init small_n (fun p ->
          Array.of_list
            (List.filter (fun q -> q < small_n) (Array.to_list acceptance.(p))))
    in
    let g = General_matching.create ~utility:blended ~acceptance:small_acc ~b:(Array.make small_n 2) in
    let cycled = ref 0 in
    for k = 0 to 9 do
      let rng' = Rng.create (ctx.seed + (100 * k)) in
      match General_matching.best_response_run g ~max_steps:50_000 rng' with
      | General_matching.Cycled _ -> incr cycled
      | General_matching.Converged _ -> ()
    done;
    !cycled
  in
  List.iter
    (fun alpha -> Output.note "blend alpha=%.2f: %d/10 best-response runs failed to converge" alpha (cycles alpha))
    [ 0.; 0.5; 1. ];
  Output.note "(both pure classes provably converge; blends lose the guarantee - the";
  Output.note "adversarial cyclic utility in the test suite does cycle - though random";
  Output.note "geometric blends rarely do in practice)"

let gossip_experiment ctx =
  Output.section "Gossip peer sampling - matching on dynamic views (reference [8])";
  let n = scaled ctx 500 in
  let d_target = 10 in
  let rng = Rng.create ctx.seed in
  let t =
    Table.create
      [ "view size"; "coverage"; "in-degree sd"; "stable edges"; "disorder vs full-knowledge" ]
  in
  (* Full-knowledge reference: stable matching when everybody knows
     everybody. *)
  let full_inst = Instance.complete ~n ~b:(Array.make n 1) () in
  let full_stable = Greedy.stable_config full_inst in
  List.iter
    (fun view_size ->
      let g = Gossip.create rng ~n ~view_size in
      for _ = 1 to 20 do
        Gossip.round g
      done;
      let graph = Gossip.acceptance_graph g in
      let inst = Instance.create ~graph ~b:(Array.make n 1) () in
      let stable = Greedy.stable_config inst in
      (* Compare mate choices against the full-knowledge stable matching
         with the paper's disorder metric (full-knowledge pairs adjacent
         ranks). *)
      let gap =
        let total = ref 0 in
        for p = 0 to n - 1 do
          let m1 = match Config.best_mate stable p with Some q -> q | None -> n in
          let m2 = match Config.best_mate full_stable p with Some q -> q | None -> n in
          total := !total + abs (m1 - m2)
        done;
        2. *. float_of_int !total /. (float_of_int n *. float_of_int (n + 1))
      in
      ignore
        (Table.add_float_row t (string_of_int view_size)
           [
             Gossip.view_coverage g;
             Gossip.indegree_stddev g;
             float_of_int (Config.edge_count stable);
             gap;
           ]
           ~fmt:(Printf.sprintf "%.4g")))
    [ d_target / 2; d_target; 2 * d_target; 4 * d_target ];
  Output.table t;
  Output.note "a gossip view of c peers behaves like an Erdos-Renyi acceptance graph of";
  Output.note "expected degree ~2c: modest views already yield near-full matchings whose";
  Output.note "mates sit within a view's width of the full-knowledge mates.";
  (* Rank discovery - the use the paper cites for gossip. *)
  let scores = Array.init n (fun i -> float_of_int (n - i)) in
  let g = Gossip.create rng ~n ~view_size:d_target in
  let est = Gossip.Rank_estimator.create ~n in
  List.iter
    (fun rounds_so_far ->
      for _ = 1 to rounds_so_far do
        Gossip.round g;
        Gossip.Rank_estimator.observe est g ~scores
      done;
      Output.note "rank discovery: mean |error| %.1f ranks (of %d) after %d more rounds"
        (Gossip.Rank_estimator.mean_absolute_error est ~scores)
        n rounds_so_far)
    [ 1; 9; 40 ]

let flashcrowd ctx =
  Output.section "Flash crowd - before the paper's post-flash-crowd assumption holds";
  let n = scaled ctx 60 in
  let rng = Rng.create ctx.seed in
  let uploads =
    Array.init n (fun i -> if i = 0 then 200. else 80. *. Float.pow 0.94 (float_of_int i))
  in
  let result =
    Bt.Scenario.flash_crowd rng ~uploads ~pieces:300 ~piece_size:40. ~d:15. ~max_ticks:30_000
  in
  let completed =
    Array.fold_left
      (fun acc t -> if t <> None then acc + 1 else acc)
      0 result.Bt.Scenario.completion_ticks
  in
  Output.plot ~x_label:"tick" ~y_label:"completed peers" [ result.Bt.Scenario.completed_curve ];
  Output.note "completions: %d/%d within the horizon" completed n;
  Output.note "capacity/completion-time Spearman: %.3f (faster peers finish earlier)"
    (Bt.Scenario.completion_capacity_correlation result ~uploads);
  let swarm = result.Bt.Scenario.swarm in
  Output.note "stratification correlation at the end of the crowd: %.3f"
    (Bt.Metrics.stratification_correlation swarm);
  Output.note "the paper's Section 6 assumes this phase is over; the simulator shows the";
  Output.note "bandwidth hierarchy already shaping who finishes when during it.";
  maybe_csv ctx "flashcrowd" [ result.Bt.Scenario.completed_curve ]


let streaming_experiment ctx =
  Output.section "Streaming play-out delay - the cost of stratification (Section 7)";
  let n = scaled ctx 2000 in
  let rng = Rng.create ctx.seed in
  let t =
    Table.create
      [ "collaboration graph"; "mean delay"; "max delay"; "reached" ]
  in
  let add name adjacency =
    (* Source: the best peer (rank 0). *)
    let r = Streaming.measure ~adjacency ~sources:[ 0 ] in
    ignore
      (Table.add_float_row t name
         [ r.Streaming.mean_delay; float_of_int r.Streaming.max_delay;
           float_of_int r.Streaming.reachable ]
         ~fmt:(Printf.sprintf "%.1f"))
  in
  (* Stratified: global-ranking b-matching on the complete graph; b-mean 8
     with sigma 0.5 puts the whole population in one giant component (cf
     Fig 6) so the comparison is about delay, not disconnection. *)
  let b = Normal_b.rounded_normal rng ~n ~mean:8. ~sigma:0.5 in
  add "stratified (global ranking)" (Cluster.collaboration_graph ~b ());
  (* Latency-based: symmetric utility on random positions. *)
  let small = min n 600 in
  let positions = Stratify_graph.Spatial.random_positions rng ~n:small in
  let acceptance =
    Stratify_graph.Undirected.adjacency_arrays
      (Gen.gnd rng ~n:small ~d:40.)
  in
  let u = Utility.symmetric_distance (Stratify_graph.Spatial.distance positions) in
  let gm = General_matching.create ~utility:u ~acceptance ~b:(Array.make small 8) in
  let sym = Symmetric_greedy.stable_state gm ~utility:u in
  let sym_adj =
    Array.init small (fun p -> Array.of_list (General_matching.State.mates sym p))
  in
  add (Printf.sprintf "latency-based (n=%d)" small) sym_adj;
  (* Random baseline with the same degree budget. *)
  add "random 8-regular" (Streaming.random_regular_baseline rng ~n ~degree:8);
  Output.table t;
  Output.note "Section 7: strong stratification -> large-diameter collaboration graph ->";
  Output.note "large play-out delay; random or proximity graphs spread content in";
  Output.note "O(log n) hops. The delay is the stratification price for streaming.";
  maybe_csv_table ctx "streaming" t

let edonkey_experiment ctx =
  Output.section "eDonkey credit queues vs BitTorrent TFT (Section 2's contrast)";
  let n = scaled ctx 200 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let ticks = 1200 in
  (* TFT swarm. *)
  let rng = Rng.create ctx.seed in
  let swarm = Bt.Swarm.create rng { (Bt.Swarm.default_params ~uploads) with Bt.Swarm.d = 20. } in
  Bt.Swarm.run swarm ~ticks:(ticks / 2);
  Bt.Swarm.reset_counters swarm;
  Bt.Swarm.run swarm ~ticks:(ticks / 2);
  (* Credit-queue network. *)
  let rng2 = Rng.create ctx.seed in
  let ed =
    Stratify_edonkey.Queue_sim.create rng2
      { (Stratify_edonkey.Queue_sim.default_params ~uploads) with Stratify_edonkey.Queue_sim.d = 20. }
  in
  Stratify_edonkey.Queue_sim.run ed ~ticks:(ticks / 2);
  Stratify_edonkey.Queue_sim.reset_counters ed;
  Stratify_edonkey.Queue_sim.run ed ~ticks:(ticks / 2);
  let tft_ratios = Bt.Metrics.tft_share_ratios swarm in
  let ed_ratios = Stratify_edonkey.Queue_sim.share_ratios ed in
  let mean a lo hi =
    let s = ref 0. in
    for i = lo to hi - 1 do
      s := !s +. a.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  let t = Table.create [ "protocol"; "stratification corr"; "top-5 D/U"; "bottom-5 D/U" ] in
  ignore
    (Table.add_float_row t "BitTorrent TFT"
       [
         Bt.Metrics.stratification_correlation swarm;
         mean tft_ratios 0 5;
         mean tft_ratios (n - 5) n;
       ]
       ~fmt:(Printf.sprintf "%.3f"));
  ignore
    (Table.add_float_row t "eDonkey credit queues"
       [
         Stratify_edonkey.Queue_sim.stratification_correlation ed;
         mean ed_ratios 0 5;
         mean ed_ratios (n - 5) n;
       ]
       ~fmt:(Printf.sprintf "%.3f"));
  Output.table t;
  Output.note "TFT's per-rechoke rate competition stratifies partners by bandwidth;";
  Output.note "credit queues age everyone to the front eventually, so partner choice -";
  Output.note "hence stratification - is much weaker, as Section 2's contrast between";
  Output.note "the one-list (game) and two-list (queue) architectures suggests.";
  maybe_csv_table ctx "edonkey" t


let bigslots ctx =
  Output.section "More slots for fast peers - Section 6's prescription";
  (* Part 1 (model): "best peers have to set up a large number of
     connections in order to avoid bad download/upload ratio" - a top peer
     sweeps its slot count; per-slot bandwidth, hence rank, drops with
     every extra slot, and the expected D/U climbs towards 1. *)
  let n = scaled ctx 1000 in
  let top_upload = Profile.quantile Saroiu.profile 0.999 in
  let sweep =
    Share_ratio.sweep_slots_scaled ~n ~d:20. ~profile:Saroiu.profile ~my_upload:top_upload
      ~slots:[| 3; 6; 12; 24; 48; 96; 192 |]
  in
  let t = Table.create [ "slots"; "per-slot (kbps)"; "expected D/U" ] in
  Array.iter
    (fun (s, ratio) ->
      ignore
        (Table.add_float_row t (string_of_int s)
           [ top_upload /. float_of_int s; ratio ]
           ~fmt:(Printf.sprintf "%.3f")))
    sweep;
  Output.table t;
  Output.note "a %.0f kbps peer recovers a fair ratio only once its per-slot bandwidth" top_upload;
  Output.note "falls into the strata below - the paper's justification for BitTorrent's";
  Output.note "higher default connection counts on fast links.";
  (* Part 2 (simulator reality check): with only d = 20 acquaintances, slot
     scaling saturates - knowledge, not slots, binds. *)
  let n_swarm = scaled ctx 200 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n:n_swarm in
  let run slots =
    let rng = Rng.create ctx.seed in
    let params = { (Bt.Swarm.default_params ~uploads) with Bt.Swarm.d = 20.; slots } in
    let swarm = Bt.Swarm.create rng params in
    Bt.Swarm.run swarm ~ticks:800;
    Bt.Swarm.reset_counters swarm;
    Bt.Swarm.run swarm ~ticks:800;
    let ratios = Bt.Metrics.tft_share_ratios swarm in
    let s = ref 0. in
    for i = 0 to 9 do
      s := !s +. ratios.(i)
    done;
    !s /. 10.
  in
  let uniform = run (Array.make n_swarm 3) in
  let maxed = run (Array.map (fun u -> if u > 4. *. uploads.(n_swarm / 2) then 20 else 3) uploads) in
  Output.note "swarm reality check (d = 20): top-10 TFT D/U %.3f with 3 slots, %.3f with" uniform maxed;
  Output.note "20 slots - opening more slots than you have acquaintances only dilutes";
  Output.note "per-partner bandwidth, so the prescription implicitly requires knowing";
  Output.note "(and being interesting to) proportionally more peers.";
  maybe_csv_table ctx "bigslots" t


let async_experiment ctx =
  Output.section "Asynchronous protocol - initiatives over real messages";
  (* The paper's dynamics assume atomic rewiring; over a message-passing
     propose/accept/commit handshake, decisions act on stale state.  How
     much latency can the convergence result absorb? *)
  let n = scaled ctx 400 in
  let d = 10. in
  let horizon = 60. in
  let series =
    List.map
      (fun latency ->
        let rng = Rng.create ctx.seed in
        let graph = Gen.gnd rng ~n ~d in
        let inst = Instance.create ~graph ~b:(Array.make n 1) () in
        let stable = Greedy.stable_config inst in
        let a =
          Async_dynamics.create inst rng { Async_dynamics.latency; initiative_rate = 1.; loss = 0. }
        in
        let traj = Async_dynamics.disorder_trajectory a ~stable ~horizon ~samples:30 in
        let inflight = Async_dynamics.inconsistency_count a in
        ignore (Async_dynamics.quiesce a);
        Output.note
          "latency %5.2f x initiative period: disorder %.4f at t=%.0f, %d one-sided listings \
           in flight, %d after drain"
          latency
          (Stratify_stats.Series.final_value traj)
          horizon inflight
          (Async_dynamics.inconsistency_count a);
        traj)
      [ 0.05; 0.5; 2.; 5. ]
  in
  Output.plot ~x_label:"time (~initiatives/peer)" ~y_label:"disorder (mutual edges)" series;
  Output.note "Theorem 1's convergence survives message latency up to the initiative";
  Output.note "period; beyond it, stale-state races keep a disorder floor and in-flight";
  Output.note "handshakes leave transient one-sided listings (repaired by keepalives).";
  (* Failure injection: lossy network at modest latency. *)
  let rng = Rng.create ctx.seed in
  let graph = Gen.gnd rng ~n ~d in
  let inst = Instance.create ~graph ~b:(Array.make n 1) () in
  let stable = Greedy.stable_config inst in
  let a =
    Async_dynamics.create inst rng
      { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0.15 }
  in
  Async_dynamics.run a ~horizon;
  let lost = Async_dynamics.messages_lost a in
  ignore (Async_dynamics.quiesce a);
  Output.note "with 15%% message loss (%d messages dropped): disorder %.4f, %d residual"
    lost
    (Disorder.disorder (Async_dynamics.mutual_config a) ~stable)
    (Async_dynamics.inconsistency_count a);
  Output.note "one-sided listings - audits make the handshake loss-tolerant.";
  maybe_csv ctx "async" series

let faults_experiment ctx =
  Output.section "Fault injection - convergence under loss x latency (stratify.net)";
  (* The async experiment varies latency with the legacy loss model; here
     every message crosses an explicit Net and the grid sweeps both axes.
     The observables: how long until the live protocol first touches the
     stable configuration, and where it ends up after draining. *)
  let n = scaled ctx 300 in
  let d = 10. in
  let horizon = 120. in
  let samples = 40 in
  let losses = [| 0.; 0.05; 0.15; 0.3 |] in
  let latencies = [| 0.05; 0.5; 2. |] in
  let count = Array.length losses * Array.length latencies in
  let cells =
    Exec.map_indexed ~jobs:ctx.jobs ~count (fun i ->
        let loss = losses.(i / Array.length latencies) in
        let latency = latencies.(i mod Array.length latencies) in
        let rng = Rng.create ctx.seed in
        let graph = Gen.gnd rng ~n ~d in
        let inst = Instance.create ~graph ~b:(Array.make n 1) () in
        let stable = Greedy.stable_config inst in
        let net =
          Net.create rng
            {
              Net.latency = Net.Constant latency;
              loss = (if loss > 0. then Net.Iid loss else Net.No_loss);
              duplicate = 0.;
              reorder = 0.;
              reorder_spread = 0.;
            }
        in
        let a =
          Async_dynamics.create ~net inst rng
            { Async_dynamics.latency; initiative_rate = 1.; loss }
        in
        (* March in fixed steps, recording the first instant the mutual
           configuration coincides with the stable one. *)
        let step = horizon /. float_of_int samples in
        let t_stable = ref None in
        for k = 1 to samples do
          Async_dynamics.run a ~horizon:step;
          if
            !t_stable = None
            && Disorder.disorder (Async_dynamics.mutual_config a) ~stable = 0.
          then t_stable := Some (step *. float_of_int k)
        done;
        let outcome = Async_dynamics.quiesce a in
        let final = Disorder.disorder (Async_dynamics.mutual_config a) ~stable in
        Stratify_obs.Counter.add
          (Stratify_obs.Counter.make (Printf.sprintf "checksum.faults_final/%d" i))
          (config_checksum (Async_dynamics.mutual_config a));
        (loss, latency, !t_stable, final, Net.dropped net, outcome))
  in
  let t =
    Table.create
      ("loss \\ latency"
      :: Array.to_list (Array.map (fun l -> Printf.sprintf "%g" l) latencies))
  in
  Array.iteri
    (fun row loss ->
      let cells_of_row =
        Array.to_list
          (Array.init (Array.length latencies) (fun col ->
               let _, _, t_stable, final, _, outcome =
                 cells.((row * Array.length latencies) + col)
               in
               match (outcome, t_stable) with
               | Async_dynamics.Budget_exhausted, _ -> "no-drain"
               | _, Some ts when final = 0. -> Printf.sprintf "t*=%g" ts
               | _, _ -> Printf.sprintf "D=%.4f" final))
      in
      Table.add_row t (Printf.sprintf "%g" loss :: cells_of_row))
    losses;
  Output.table t;
  let total_dropped =
    Array.fold_left (fun acc (_, _, _, _, dropped, _) -> acc + dropped) 0 cells
  in
  Output.note "t* = time to first reach the stable configuration (units ~ initiatives/peer);";
  Output.note "D = residual disorder after draining when t* was never reached within t=%g." horizon;
  Output.note "%d messages dropped across the grid; keepalive audits keep every drained"
    total_dropped;
  Output.note "cell consistent, so loss costs time, not correctness.";
  maybe_csv_table ctx "faults" t

let all =
  [
    ("fig1", "convergence from the empty configuration", fig1);
    ("fig2", "single-peer removal recovery", fig2);
    ("fig3", "disorder under continuous churn", fig3);
    ("fig4", "complete-graph clustering (b0 constant)", fig4);
    ("fig5", "extra slot reconnects clusters", fig5);
    ("table1", "cluster size and MMO table", table1);
    ("fig6", "sigma phase transition", fig6);
    ("fig7", "exact vs independent model, n=3", fig7);
    ("fig8", "mate-rank distributions", fig8);
    ("fig9", "Monte-Carlo validation of Algorithm 3", fig9);
    ("fig10", "upstream capacity CDF", fig10);
    ("fig11", "expected D/U ratio", fig11);
    ("slots", "slot-count ablation (4-slot default)", slots_ablation);
    ("swarm", "TFT swarm simulator vs analytic model", swarm_validation);
    ("strategies", "initiative-strategy ablation", strategies_ablation);
    ("scaling", "convergence-speed scaling law", scaling);
    ("alpha", "fluid limit across ranks (shift invariance)", alpha_fluid);
    ("latency", "utility-class contrast: ranking vs latency", latency);
    ("gossip", "matching on gossip-maintained views", gossip_experiment);
    ("flashcrowd", "flash-crowd completion dynamics", flashcrowd);
    ("streaming", "play-out delay of stratified graphs", streaming_experiment);
    ("edonkey", "credit-queue baseline vs TFT", edonkey_experiment);
    ("bigslots", "bandwidth-scaled slot counts (Section 6 prescription)", bigslots);
    ("async", "message-passing dynamics vs latency", async_experiment);
    ("faults", "convergence under loss x latency (stratify.net)", faults_experiment);
  ]

let find name =
  List.find_map (fun (n, _, f) -> if n = name then Some f else None) all

(* ------------------------------------------------------------------ *)

module Obs = Stratify_obs

let run_named ctx (name, _desc, f) =
  validate_context ctx;
  (* Install the selected event-queue backend as the process default so
     that engines created anywhere below (Net.create without ?engine,
     Async_dynamics' private net, scenario harnesses) pick it up.  Every
     backend pops in the same total (time, seq) order, so all outputs —
     reports, CSVs, manifests — are byte-identical across `--queue`
     values; only events/sec changes. *)
  Stratify_des.Engine.set_default_backend ctx.queue;
  match ctx.manifest_dir with
  | None -> f ctx
  | Some dir ->
      Obs.Counter.reset_all ();
      Obs.Histogram.reset_all ();
      Obs.Span.reset ();
      Obs.Profile.reset ();
      Obs.Control.set_enabled true;
      if ctx.profile_phases then Obs.Profile.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Control.set_enabled false;
          Obs.Profile.set_enabled false)
        (fun () -> Obs.Span.with_ name (fun () -> f ctx));
      let manifest =
        Obs.Run_manifest.capture ~kind:"experiment" ~name ~seed:ctx.seed ~scale:ctx.scale
          ~jobs:ctx.jobs ()
      in
      let path = Obs.Run_manifest.write ~dir manifest in
      Output.note "wrote manifest %s" path
