(** Matrix-run summaries: JSON schema, shard merging, baseline
    comparison and the markdown report.

    A {e summary} ([matrix-summary.json]) is the per-cell outcome of one
    matrix run (or of several merged shards): pass/fail, check details,
    deterministic metrics, and wall time.  The checked-in {e baseline}
    ([results/matrix/baseline.json]) is a summary stripped of wall times
    and check details ({!baseline_of_summary}), so it is byte-stable
    across machines; {!regressions} compares a fresh summary against it
    cell by cell with exact metric equality — the metrics are
    deterministic functions of the plan, so any drift is a real
    behaviour change. *)

module Jsonx := Stratify_obs.Jsonx
module Plan := Stratify_net_plan.Plan
module Matrix := Stratify_net_plan.Matrix

type cell_result = {
  name : string;
  seed : int;
  axes : (string * string) list;
  passed : bool;
  checks : Plan.check list;
  metrics : (string * float) list;  (** deterministic (no wall times) *)
  wall_ms : float;  (** informational only — never compared *)
}

type summary = {
  matrix_seed : int;
  cardinality : int;  (** the generator's full cardinality *)
  cells : cell_result list;  (** sorted by name, unique *)
}

val cell_of_run : cell:Matrix.cell -> result:Plan.result -> wall_ms:float -> cell_result

val make : matrix_seed:int -> cardinality:int -> cell_result list -> summary
(** Sorts by cell name; raises [Invalid_argument] on duplicate names. *)

val to_json : summary -> Jsonx.t
val of_json : Jsonx.t -> summary
(** Raises {!Jsonx.Parse_error} on schema mismatch (wrong ["kind"],
    missing fields). *)

val read : string -> summary
val write : string -> summary -> unit

val merge : summary list -> summary
(** Merge shard summaries: same matrix seed and cardinality required,
    cell names must not collide.  Raises [Invalid_argument] otherwise
    (or on the empty list). *)

val baseline_of_summary : summary -> summary
(** Strip wall times and check details, keeping name/seed/axes/passed/
    metrics — the byte-stable form checked in as the baseline. *)

val regressions : baseline:summary -> summary -> (string * string) list
(** [(cell, what)] pairs, sorted by cell name: baseline cells missing
    from the summary, pass→fail flips, seed changes, and exact metric
    drift.  Cells absent from the baseline are {e not} regressions (they
    are reported as "new" in the markdown).  A matrix-seed or
    cardinality mismatch is itself a regression (under cell ["<matrix>"]). *)

val render_markdown : ?baseline:summary -> summary -> string
(** One table row per cell (status, checks, wall time, baseline
    verdict), preceded by a totals header.  With [baseline], rows gain a
    regression column and baseline-only cells appear as skipped. *)
