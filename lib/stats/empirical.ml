type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Empirical.of_samples: empty";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Number of samples <= x, by binary search for the last index with
   sorted.(i) <= x. *)
let rank t x =
  let a = t.sorted in
  let n = Array.length a in
  if x < a.(0) then 0
  else if x >= a.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: a.(lo) <= x < a.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= x then lo := mid else hi := mid
    done;
    !lo + 1
  end

let cdf t x = float_of_int (rank t x) /. float_of_int (size t)

let quantile t q = Summary.quantile t.sorted q

let ks_distance t1 t2 =
  let worst = ref 0. in
  let probe t = Array.iter (fun x -> worst := Float.max !worst (Float.abs (cdf t1 x -. cdf t2 x))) t.sorted in
  probe t1;
  probe t2;
  !worst

let ks_distance_to t f =
  let n = float_of_int (size t) in
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let reference = f x in
      let upper = (float_of_int (i + 1) /. n) -. reference in
      let lower = reference -. (float_of_int i /. n) in
      worst := Float.max !worst (Float.max upper lower))
    t.sorted;
  !worst
