(** Fixed-bin histograms over floats, with linear or logarithmic bin edges.

    Log-binned histograms are what Fig 10/11 of the paper need: bandwidths
    span four decades. *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins covering [lo, hi).  Out-of-range samples are counted in
    the overflow/underflow tallies, not in any bin. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Bins with equal width in log-space; [lo] must be positive. *)

val add : t -> float -> unit
val add_weighted : t -> float -> float -> unit

val bins : t -> int
val count : t -> int -> float
(** Weight accumulated in a bin. *)

val total : t -> float
(** Total in-range weight. *)

val underflow : t -> float
val overflow : t -> float

val bin_edges : t -> int -> float * float
(** Inclusive-exclusive edges of a bin. *)

val bin_center : t -> int -> float
(** Arithmetic centre for linear bins, geometric centre for log bins. *)

val density : t -> int -> float
(** Weight per unit of x in a bin, normalised by total in-range weight
    (integrates to 1 over the covered range when there is no out-of-range
    mass). *)

val normalized : t -> float array
(** Per-bin probabilities (in-range mass only). *)
