module Rng = Stratify_prng.Rng

type interval = { low : float; estimate : float; high : float }

let percentile rng ?(replicates = 1000) ?(confidence = 0.95) xs ~statistic =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.percentile: empty sample";
  if replicates <= 0 then invalid_arg "Bootstrap.percentile: need replicates > 0";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.percentile: confidence must be in (0,1)";
  let estimate = statistic xs in
  let stats =
    Array.init replicates (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Rng.int rng n)) in
        statistic resample)
  in
  Array.sort Float.compare stats;
  let alpha = (1. -. confidence) /. 2. in
  let pick q =
    let pos = q *. float_of_int (replicates - 1) in
    stats.(int_of_float (Float.round pos))
  in
  { low = pick alpha; estimate; high = pick (1. -. alpha) }

let mean_interval rng ?replicates ?confidence xs =
  let statistic a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
  percentile rng ?replicates ?confidence xs ~statistic
