(** Batch descriptive statistics over float arrays. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p25 : float;
  p75 : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], with linear interpolation between
    order statistics.  The input need not be sorted. *)

val pp : Format.formatter -> t -> unit
