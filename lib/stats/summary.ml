type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p25 : float;
  p75 : float;
}

let quantile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty array";
  if q <= 0. then sorted.(0)
  else if q >= 1. then sorted.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let frac = pos -. float_of_int lo in
    if lo + 1 >= n then sorted.(n - 1)
    else sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

let quantile xs q =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  quantile_sorted sorted q

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty array";
  let acc = Online.create () in
  Online.add_many acc xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    count = n;
    mean = Online.mean acc;
    stddev = Online.stddev acc;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = quantile_sorted sorted 0.5;
    p25 = quantile_sorted sorted 0.25;
    p75 = quantile_sorted sorted 0.75;
  }

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g"
    t.count t.mean t.stddev t.min t.p25 t.median t.p75 t.max
