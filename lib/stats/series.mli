(** (x, y) data series — the unit of "one curve in a paper figure". *)

type t = { label : string; points : (float * float) array }

val make : string -> (float * float) array -> t
val of_ys : string -> ?x0:float -> ?dx:float -> float array -> t
(** Attach implicit abscissae [x0 + i·dx] (defaults 0, 1). *)

val length : t -> int

val eval : t -> float -> float
(** Piecewise-linear interpolation; clamps outside the x-range.  Requires
    points sorted by x (as produced by the constructors of this library). *)

val map_y : (float -> float) -> t -> t

val resample : t -> float array -> t
(** Evaluate at given abscissae. *)

val area_between : t -> t -> float
(** Mean absolute vertical gap between two curves over the union of their
    x-samples — a scalar "how different are these two curves". *)

val final_value : t -> float
(** y of the last point. *)

val max_y : t -> float
val min_y : t -> float

val first_x_below : t -> float -> float option
(** Smallest sampled x whose y is [<=] the threshold (time-to-converge
    readout). *)

val to_csv_rows : t -> string list
(** "x,y" rows (no header). *)
