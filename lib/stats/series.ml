type t = { label : string; points : (float * float) array }

let make label points = { label; points }

let of_ys label ?(x0 = 0.) ?(dx = 1.) ys =
  { label; points = Array.mapi (fun i y -> (x0 +. (float_of_int i *. dx), y)) ys }

let length t = Array.length t.points

let eval t x =
  let pts = t.points in
  let n = Array.length pts in
  if n = 0 then invalid_arg "Series.eval: empty series";
  if x <= fst pts.(0) then snd pts.(0)
  else if x >= fst pts.(n - 1) then snd pts.(n - 1)
  else begin
    (* binary search for segment containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst pts.(mid) <= x then lo := mid else hi := mid
    done;
    let x0, y0 = pts.(!lo) and x1, y1 = pts.(!hi) in
    if x1 = x0 then y0 else y0 +. ((x -. x0) /. (x1 -. x0) *. (y1 -. y0))
  end

let map_y f t = { t with points = Array.map (fun (x, y) -> (x, f y)) t.points }

let resample t xs = { t with points = Array.map (fun x -> (x, eval t x)) xs }

let area_between a b =
  let xs =
    Array.append (Array.map fst a.points) (Array.map fst b.points)
  in
  Array.sort Float.compare xs;
  if Array.length xs = 0 then 0.
  else begin
    let s = ref 0. in
    Array.iter (fun x -> s := !s +. Float.abs (eval a x -. eval b x)) xs;
    !s /. float_of_int (Array.length xs)
  end

let final_value t =
  let n = Array.length t.points in
  if n = 0 then invalid_arg "Series.final_value: empty series";
  snd t.points.(n - 1)

let fold_y f init t = Array.fold_left (fun acc (_, y) -> f acc y) init t.points
let max_y t = fold_y Float.max neg_infinity t
let min_y t = fold_y Float.min infinity t

let first_x_below t threshold =
  let found = ref None in
  (try
     Array.iter
       (fun (x, y) ->
         if y <= threshold then begin
           found := Some x;
           raise Exit
         end)
       t.points
   with Exit -> ());
  !found

let to_csv_rows t =
  Array.to_list (Array.map (fun (x, y) -> Printf.sprintf "%.6g,%.6g" x y) t.points)
