(** Correlation coefficients.

    Used to quantify stratification: the association between a peer's
    intrinsic value and the value of the peers it ends up collaborating
    with. *)

val pearson : (float * float) array -> float
(** Linear correlation; 0 for fewer than two points or degenerate
    variance. *)

val spearman : (float * float) array -> float
(** Rank correlation: Pearson on fractional ranks (ties get their average
    rank), robust to monotone transformations — the right statistic when
    bandwidths span decades. *)

val kendall : (float * float) array -> float
(** Kendall's τ-a (concordant minus discordant pairs over all pairs);
    O(n²), intended for n ≲ 10⁴. *)

val autocorrelation : float array -> lag:int -> float
(** Sample autocorrelation of a sequence at a given lag (for disorder
    trajectories under churn). *)
