type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let len = List.length row in
  if len > width then invalid_arg "Table.add_row: more cells than headers";
  let padded = row @ List.init (width - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let default_float_fmt x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let add_float_row t ?(fmt = default_float_fmt) label values =
  add_row t (label :: List.map fmt values);
  t

let all_rows t = t.headers :: List.rev t.rows

let render t =
  let rows = all_rows t in
  let width = List.length t.headers in
  let col_width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 rows
  in
  let widths = List.init width col_width in
  let render_row row =
    String.concat "  "
      (List.map2 (fun cell w -> Printf.sprintf "%-*s" w cell) row widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  match rows with
  | [] -> ""
  | header :: body ->
      String.concat "\n" ((render_row header :: sep :: List.map render_row body) @ [ "" ])

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map csv_cell row)) (all_rows t))

let pp fmt t = Format.pp_print_string fmt (render t)
