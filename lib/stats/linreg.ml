type fit = { slope : float; intercept : float; r_squared : float }

let fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Linreg.fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. points /. fn in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. points /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  Array.iter
    (fun (x, y) ->
      let dx = x -. sx and dy = y -. sy in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx <= 0. then invalid_arg "Linreg.fit: need at least two distinct x values";
  let slope = !sxy /. !sxx in
  let intercept = sy -. (slope *. sx) in
  let r_squared = if !syy <= 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r_squared }

let fit_loglog points =
  let usable =
    Array.of_list
      (List.filter_map
         (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
         (Array.to_list points))
  in
  fit usable

let predict f x = (f.slope *. x) +. f.intercept
