(** Least-squares line fitting.

    Used for empirical scaling laws: fitting
    [log(time-to-converge) ~ a·log n + b] over the convergence-speed
    sweeps. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** coefficient of determination *)
}

val fit : (float * float) array -> fit
(** Ordinary least squares on (x, y) points.  Raises [Invalid_argument]
    with fewer than two distinct x values. *)

val fit_loglog : (float * float) array -> fit
(** OLS on (log x, log y): [slope] is the power-law exponent.  Points with
    non-positive coordinates are dropped. *)

val predict : fit -> float -> float
