(** Plain-text table rendering (for experiment output and EXPERIMENTS.md). *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** Convenience: a label cell followed by formatted floats.  Returns the
    table for chaining. *)

val render : t -> string
(** Aligned ASCII rendering with a header separator. *)

val to_csv : t -> string
(** Comma-separated rendering, one line per row, header first.  Cells
    containing commas or quotes are quoted. *)

val pp : Format.formatter -> t -> unit
