(** Empirical cumulative distribution functions. *)

type t

val of_samples : float array -> t
(** Build from raw samples (sorted internally).  Raises on empty input. *)

val cdf : t -> float -> float
(** Fraction of samples [<= x]. *)

val quantile : t -> float -> float
(** Inverse CDF with linear interpolation, [q] clamped to [0,1]. *)

val size : t -> int

val ks_distance : t -> t -> float
(** Two-sample Kolmogorov–Smirnov statistic [sup |F1 - F2|]. *)

val ks_distance_to : t -> (float -> float) -> float
(** One-sample KS statistic against a reference CDF, evaluated at the sample
    points (both one-sided gaps are considered). *)
