(** Streaming moment accumulator (Welford's algorithm).

    Numerically stable running mean/variance, plus min/max — used to
    aggregate repeated simulation runs without storing them. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_many : t -> float array -> unit

val merge : t -> t -> t
(** Combine two accumulators as if their streams were concatenated
    (Chan et al. parallel update). *)

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)
