(** Finite discrete distributions over integer support [0 .. n-1].

    The mate distributions [D(i, ·)] of §5 of the paper are objects of this
    kind (sub-probabilities: some mass may be "unmatched").  Operations stay
    total-mass-aware so truncated distributions are handled honestly. *)

type t

val of_weights : float array -> t
(** Wrap a non-negative weight vector; weights are NOT normalised, so a
    sub-probability (total < 1) is representable.  Negative entries raise. *)

val uniform : int -> t
(** Uniform probability over [0 .. n-1]. *)

val point : n:int -> int -> t
(** Unit mass at one outcome. *)

val support_size : t -> int
val mass : t -> int -> float
val total_mass : t -> float

val missing_mass : t -> float
(** [max 0 (1 - total_mass)] — e.g. the probability of staying unmatched. *)

val normalize : t -> t
(** Rescale to total mass 1.  Raises on zero total mass. *)

val mean : t -> float
(** Expectation of the outcome index, conditional on being in the support
    (i.e. computed against the normalised distribution). *)

val variance : t -> float
(** Variance, conditional on being in the support. *)

val expectation : t -> (int -> float) -> float
(** Unconditional expectation [Σ_k mass(k) · f(k)] (missing mass
    contributes 0). *)

val cdf : t -> int -> float
(** Mass at outcomes [<= k]. *)

val mode : t -> int
val total_variation : t -> t -> float
(** ½ Σ |p - q| over the common support (supports must have equal size). *)

val map_support : t -> (int -> int) -> int -> t
(** [map_support d f m] pushes the mass forward through [f] into a new
    support of size [m]. *)

val to_array : t -> float array
(** Copy of the raw weights. *)
