type t = { w : float array }

let of_weights w =
  Array.iter (fun x -> if x < 0. || Float.is_nan x then invalid_arg "Discrete.of_weights: negative or NaN weight") w;
  { w = Array.copy w }

let uniform n =
  if n <= 0 then invalid_arg "Discrete.uniform: need n > 0";
  { w = Array.make n (1. /. float_of_int n) }

let point ~n k =
  if k < 0 || k >= n then invalid_arg "Discrete.point: outcome out of range";
  let w = Array.make n 0. in
  w.(k) <- 1.;
  { w }

let support_size t = Array.length t.w
let mass t k = t.w.(k)
let total_mass t = Array.fold_left ( +. ) 0. t.w
let missing_mass t = Float.max 0. (1. -. total_mass t)

let normalize t =
  let z = total_mass t in
  if z <= 0. then invalid_arg "Discrete.normalize: zero total mass";
  { w = Array.map (fun x -> x /. z) t.w }

let mean t =
  let z = total_mass t in
  if z <= 0. then 0.
  else begin
    let s = ref 0. in
    Array.iteri (fun k x -> s := !s +. (float_of_int k *. x)) t.w;
    !s /. z
  end

let variance t =
  let z = total_mass t in
  if z <= 0. then 0.
  else begin
    let m = mean t in
    let s = ref 0. in
    Array.iteri
      (fun k x ->
        let d = float_of_int k -. m in
        s := !s +. (d *. d *. x))
      t.w;
    !s /. z
  end

let expectation t f =
  let s = ref 0. in
  Array.iteri (fun k x -> s := !s +. (x *. f k)) t.w;
  !s

let cdf t k =
  let s = ref 0. in
  for i = 0 to min k (support_size t - 1) do
    s := !s +. t.w.(i)
  done;
  !s

let mode t =
  let best = ref 0 in
  Array.iteri (fun k x -> if x > t.w.(!best) then best := k) t.w;
  !best

let total_variation a b =
  if support_size a <> support_size b then
    invalid_arg "Discrete.total_variation: support size mismatch";
  let s = ref 0. in
  Array.iteri (fun k x -> s := !s +. Float.abs (x -. b.w.(k))) a.w;
  0.5 *. !s

let map_support t f m =
  let w = Array.make m 0. in
  Array.iteri
    (fun k x ->
      let k' = f k in
      if k' < 0 || k' >= m then invalid_arg "Discrete.map_support: image out of range";
      w.(k') <- w.(k') +. x)
    t.w;
  { w }

let to_array t = Array.copy t.w
