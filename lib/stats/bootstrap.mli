(** Percentile-bootstrap confidence intervals.

    Monte-Carlo experiments (Fig 9's validation, the swarm cross-checks)
    report statistics of modest sample sizes; the bootstrap gives honest
    uncertainty bands without distributional assumptions. *)

type interval = { low : float; estimate : float; high : float }

val percentile :
  Stratify_prng.Rng.t ->
  ?replicates:int ->
  ?confidence:float ->
  float array ->
  statistic:(float array -> float) ->
  interval
(** [percentile rng xs ~statistic] resamples [xs] with replacement
    [replicates] times (default 1000) and returns the
    [confidence]-level (default 0.95) percentile interval around the
    plug-in estimate. *)

val mean_interval :
  Stratify_prng.Rng.t -> ?replicates:int -> ?confidence:float -> float array -> interval
(** Bootstrap interval for the mean. *)
