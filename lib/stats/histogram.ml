type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : float array;
  mutable under : float;
  mutable over : float;
}

let create_linear ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram: need at least one bin";
  if not (hi > lo) then invalid_arg "Histogram: need hi > lo";
  { scale = Linear; lo; hi; counts = Array.make bins 0.; under = 0.; over = 0. }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram: need at least one bin";
  if not (lo > 0. && hi > lo) then invalid_arg "Histogram: need 0 < lo < hi";
  { scale = Log; lo; hi; counts = Array.make bins 0.; under = 0.; over = 0. }

let position t x =
  match t.scale with
  | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
  | Log -> if x <= 0. then -1. else log (x /. t.lo) /. log (t.hi /. t.lo)

let add_weighted t x w =
  let pos = position t x in
  if pos < 0. then t.under <- t.under +. w
  else if pos >= 1. then t.over <- t.over +. w
  else begin
    let b = int_of_float (pos *. float_of_int (Array.length t.counts)) in
    let b = min b (Array.length t.counts - 1) in
    t.counts.(b) <- t.counts.(b) +. w
  end

let add t x = add_weighted t x 1.

let bins t = Array.length t.counts
let count t b = t.counts.(b)
let total t = Array.fold_left ( +. ) 0. t.counts
let underflow t = t.under
let overflow t = t.over

let bin_edges t b =
  let k = Array.length t.counts in
  if b < 0 || b >= k then invalid_arg "Histogram.bin_edges: bin out of range";
  let frac i = float_of_int i /. float_of_int k in
  match t.scale with
  | Linear ->
      let width = t.hi -. t.lo in
      (t.lo +. (frac b *. width), t.lo +. (frac (b + 1) *. width))
  | Log ->
      let ratio = t.hi /. t.lo in
      (t.lo *. Float.pow ratio (frac b), t.lo *. Float.pow ratio (frac (b + 1)))

let bin_center t b =
  let lo, hi = bin_edges t b in
  match t.scale with Linear -> 0.5 *. (lo +. hi) | Log -> sqrt (lo *. hi)

let density t b =
  let lo, hi = bin_edges t b in
  let mass = total t in
  if mass <= 0. then 0. else t.counts.(b) /. mass /. (hi -. lo)

let normalized t =
  let mass = total t in
  if mass <= 0. then Array.make (bins t) 0.
  else Array.map (fun c -> c /. mass) t.counts
