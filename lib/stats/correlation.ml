let pearson pairs =
  let n = Array.length pairs in
  if n < 2 then 0.
  else begin
    let fn = float_of_int n in
    let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pairs /. fn in
    let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pairs /. fn in
    let cov = ref 0. and vx = ref 0. and vy = ref 0. in
    Array.iter
      (fun (x, y) ->
        let dx = x -. sx and dy = y -. sy in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      pairs;
    if !vx <= 0. || !vy <= 0. then 0. else !cov /. sqrt (!vx *. !vy)
  end

(* Fractional ranks with ties averaged. *)
let ranks values =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare values.(a) values.(b)) order;
  let out = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i)) do
      incr j
    done;
    (* positions !i .. !j share the same value: average rank *)
    let avg = float_of_int (!i + !j) /. 2. in
    for k = !i to !j do
      out.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  out

let spearman pairs =
  let rx = ranks (Array.map fst pairs) and ry = ranks (Array.map snd pairs) in
  pearson (Array.init (Array.length pairs) (fun i -> (rx.(i), ry.(i))))

let kendall pairs =
  let n = Array.length pairs in
  if n < 2 then 0.
  else begin
    let concordant = ref 0 and discordant = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let xi, yi = pairs.(i) and xj, yj = pairs.(j) in
        let sx = compare xi xj and sy = compare yi yj in
        if sx * sy > 0 then incr concordant else if sx * sy < 0 then incr discordant
      done
    done;
    float_of_int (!concordant - !discordant) /. float_of_int (n * (n - 1) / 2)
  end

let autocorrelation xs ~lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n then invalid_arg "Correlation.autocorrelation: lag out of range";
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var = Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs in
  if var <= 0. then 0.
  else begin
    let cov = ref 0. in
    for i = 0 to n - 1 - lag do
      cov := !cov +. ((xs.(i) -. mean) *. (xs.(i + lag) -. mean))
    done;
    !cov /. var
  end
