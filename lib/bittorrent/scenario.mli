(** Canned swarm scenarios.

    The paper analyses the {e post}-flash-crowd regime; these scenarios
    simulate the flash crowd itself (one seed, empty leechers, rarest
    first) so that the regime boundary — when availability stops being the
    bottleneck and bandwidth stratification takes over — can be observed
    rather than assumed. *)

type flash_result = {
  completion_ticks : int option array;
      (** first tick at which each peer held the full file *)
  completed_curve : Stratify_stats.Series.t;  (** (tick, #completed) *)
  swarm : Swarm.t;  (** final state, for further measurement *)
}

val flash_crowd :
  Stratify_prng.Rng.t ->
  uploads:float array ->
  pieces:int ->
  piece_size:float ->
  d:float ->
  max_ticks:int ->
  flash_result
(** Peer 0 is the seed (starts complete); everyone else starts empty.
    Runs until everyone completes or [max_ticks] elapse. *)

val completion_capacity_correlation : flash_result -> uploads:float array -> float
(** Spearman correlation between upload capacity and completion time over
    completed leechers — stratification predicts it strongly negative
    (fast peers finish first). *)

type churn_report = {
  departures : int;  (** completed peers recycled during measurement *)
  mean_time_in_system : float;  (** ticks from (re)arrival to completion *)
  swarm_throughput : float;  (** total data moved per tick during measurement *)
}

val steady_churn :
  Stratify_prng.Rng.t ->
  uploads:float array ->
  pieces:int ->
  piece_size:float ->
  d:float ->
  warmup:int ->
  measure:int ->
  churn_report
(** The real BitTorrent lifecycle: peers leave on completion and fresh
    peers take their place (peer 0 stays as a seed).  After [warmup]
    ticks the next [measure] ticks are measured. *)
