(** Sliding-window transfer-rate estimation.

    BitTorrent's Tit-for-Tat ranks neighbours by the download rate observed
    "in the last 10 seconds"; this module is that estimator: a circular
    per-tick byte counter over a fixed window. *)

type t

val create : window:int -> t
(** [create ~window] observes the last [window] ticks. *)

val record : t -> tick:int -> float -> unit
(** Credit an amount of data transferred during [tick].  Ticks must be
    supplied non-decreasingly. *)

val rate : t -> tick:int -> float
(** Average per-tick rate over the window ending at [tick] (exclusive of
    ticks older than the window). *)

val total : t -> float
(** All data ever recorded. *)

val window : t -> int

val dump : t -> float array * int array * float
(** [(buckets, stamps, total)] — fresh copies of the circular per-tick
    buckets, their tick stamps, and the lifetime total: the serializable
    form used by deterministic snapshot/restore. *)

val restore : window:int -> buckets:float array -> stamps:int array -> total:float -> t
(** Rebuild an estimator from {!dump} output.  Raises [Invalid_argument]
    unless both arrays have exactly [window] entries. *)
