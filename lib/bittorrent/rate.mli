(** Sliding-window transfer-rate estimation.

    BitTorrent's Tit-for-Tat ranks neighbours by the download rate observed
    "in the last 10 seconds"; this module is that estimator: a circular
    per-tick byte counter over a fixed window. *)

type t

val create : window:int -> t
(** [create ~window] observes the last [window] ticks. *)

val record : t -> tick:int -> float -> unit
(** Credit an amount of data transferred during [tick].  Ticks must be
    supplied non-decreasingly. *)

val rate : t -> tick:int -> float
(** Average per-tick rate over the window ending at [tick] (exclusive of
    ticks older than the window). *)

val total : t -> float
(** All data ever recorded. *)
