(** Discrete-time BitTorrent swarm simulator.

    One tick ≈ one second.  Each tick every peer splits its upload capacity
    evenly across its unchoked-and-interested neighbours; every
    [rechoke_period] ticks the TFT choker re-selects the top uploaders;
    every [optimistic_period] ticks the optimistic slot rotates to a random
    interested neighbour.

    Two operating modes:
    - {e bandwidth-only} (default): the paper's post-flash-crowd
      assumption — content availability never gates a transfer, so the
      dynamics are driven purely by bandwidth reciprocation.  This is the
      regime §6 models analytically.
    - {e piece mode}: an explicit file of [pieces] pieces with rarest-first
      selection, used to check rather than assume that availability is not
      a bottleneck. *)

type piece_params = {
  pieces : int;
  piece_size : float;  (** data units per piece *)
  init_fraction : float;  (** initial per-piece holding probability *)
  seeds : int;  (** peers 0..seeds-1 start complete *)
}

type params = {
  uploads : float array;  (** per-peer upload capacity, units/tick *)
  downloads : float array option;
      (** per-peer download capacity; [None] = unlimited (the paper's
          model).  When set, a receiver over capacity throttles every
          inbound stream proportionally — 2006-era links were asymmetric,
          and a saturated downlink weakens the TFT signal. *)
  slots : int array;  (** per-peer TFT slot count *)
  d : float;  (** expected knowledge degree (Erdős–Rényi) *)
  rechoke_period : int;  (** BitTorrent default: 10 *)
  optimistic_period : int;  (** BitTorrent default: 30 *)
  rate_window : int;  (** rate-estimation window, ticks *)
  piece : piece_params option;
  faults : Stratify_net.Net.Tick.t option;
      (** tick-level link faults: per-tick per-link loss and scheduled
          partitions.  A dropped link wastes the sender's share for that
          tick (capacity is split before the network has its say).  [None]
          = the historical fault-free swarm, bit-identical and drawing
          nothing. *)
}

val default_params : uploads:float array -> params
(** slots = 3 everywhere, d = 20, periods 10/30, window 10, no pieces, no
    download caps, no link faults. *)

type t

val create : Stratify_prng.Rng.t -> params -> t
val size : t -> int
val tick_count : t -> int
val peer : t -> int -> Peer.t

val step : t -> unit
(** Advance one tick. *)

val run : t -> ticks:int -> unit

val reset_counters : t -> unit
(** Zero all cumulative counters — call after warm-up so that measured
    ratios cover the steady state only. *)

val link_drops : t -> int
(** Transfers suppressed by the fault model so far (0 without [faults]). *)

val completed : t -> int
(** Number of peers holding the full file (piece mode; [size t] in
    bandwidth-only mode). *)

val recycle_peer : t -> int -> unit
(** Replace a peer with a fresh arrival in its slot: empty bitfield
    (availability updated), cleared choke/rate state, zeroed counters.
    The knowledge graph position is inherited (the newcomer bootstraps
    from the same tracker answer).  No-op consequences in bandwidth-only
    mode beyond the state reset.  Used by the steady-churn scenario. *)

val interested : t -> int -> int -> bool
(** [interested t q p]: would peer [q] want data from [p]?  Always true in
    bandwidth-only mode; in piece mode, true iff [p] holds a piece [q]
    lacks. *)

val rng : t -> Stratify_prng.Rng.t
(** The swarm's private random source — exposed so snapshot/restore can
    capture and re-seed its state ({!Stratify_prng.Rng.state}). *)

val set_tick : t -> int -> unit
(** Overwrite the tick counter (snapshot/restore; [tick >= 0]). *)

val set_held_pieces : t -> int -> int list -> unit
(** Overwrite a peer's bitfield to exactly the given pieces, keeping the
    global availability counts in sync (each change goes through the
    same on_remove/on_add bookkeeping as the simulation).  Raises
    [Invalid_argument] when given pieces in bandwidth-only mode. *)

val iter_link_progress : t -> (int -> int -> float -> unit) -> unit
(** Visit every (sender, receiver, partial-piece progress) entry, in
    hash-table order — sort before serializing. *)

val set_link_progress : t -> sender:int -> receiver:int -> float -> unit
(** Set one link's partial-piece progress ([>= 0]). *)

val clear_link_progress : t -> unit

val set_on_transfer : t -> (int -> int -> float -> unit) -> unit
(** Observation hook fired on every applied transfer, after download-cap
    scaling: [f sender receiver amount].  Defaults to a no-op (plain
    tick runs are byte-identical with or without it); {!Des} uses it to
    emit message-level piece traffic. *)

(** Message-level DES driver: the tick simulator runs as a
    self-rescheduling packed event inside a DES engine, and every
    applied transfer fans out into defunctionalized piece messages
    ([amount / chunk], at least one) routed through
    [Net.send_packed] — latency, loss, reordering and duplication apply
    per message, with all of a tick's fault draws batched behind one
    RNG advance ([Net.burst_begin]).  The engine's `--queue` backend
    choice never changes {!checksum} (pop order is the total
    (time, seq) order for every backend); it only changes events/sec —
    measured by bench.des on this very workload. *)
module Des : sig
  type driver

  val create : t -> net:Stratify_net.Net.t -> chunk:float -> driver
  (** Wire a swarm to a network: installs the packed-event handler on
      the network's engine and the {!set_on_transfer} hook on the
      swarm.  [chunk] is the data units per piece message.  Raises
      [Invalid_argument] when [chunk <= 0]. *)

  val run : driver -> ticks:int -> unit
  (** Schedule the first tick and drain the engine: [ticks] swarm ticks
      one simulated second apart, plus every piece message they emit
      (deliveries may trail the last tick; the drain runs to empty). *)

  val pieces_sent : driver -> int

  val pieces_delivered : driver -> int
  (** Piece messages that survived the fault pipeline (duplicates
      count). *)

  val checksum : driver -> int
  (** FNV-style fold of the piece-delivery order — byte-identical
      across `--queue` backends. *)
end
