(** TFT unchoke selection.

    Every rechoke period a peer unchokes the [slots] interested neighbours
    from which it downloaded fastest over the estimation window, plus one
    {e optimistic} unchoke rotated periodically among the remaining
    interested neighbours — the exploration move that lets new
    reciprocation relationships form (it plays the role of the "random
    initiative" of §3 of the paper). *)

type decision = { unchoked : int list; optimistic : int option }

val rechoke :
  ?rng:Stratify_prng.Rng.t ->
  rates:(int * float) list ->
  slots:int ->
  current_optimistic:int option ->
  unit ->
  decision
(** Pick the top-[slots] neighbours by received rate; ties break uniformly
    at random when [rng] is given (by neighbour id otherwise).  The
    current optimistic neighbour is kept if still valid and not already a
    TFT winner. *)

val rotate_optimistic :
  Stratify_prng.Rng.t -> candidates:int list -> exclude:int list -> int option
(** Choose a new optimistic unchoke uniformly among [candidates] not in
    [exclude] ([None] if no candidate remains). *)
