type t = {
  id : int;
  upload_capacity : float;
  slots : int;
  neighbors : int array;
  link_rates : (int, Rate.t) Hashtbl.t;
  mutable unchoked : int list;
  mutable optimistic : int option;
  mutable uploaded : float;
  mutable downloaded : float;
  mutable uploaded_tft : float;
  mutable downloaded_tft : float;
  field : Piece.t option;
}

let create ~id ~upload_capacity ~slots ~neighbors ~rate_window ~field =
  let link_rates = Hashtbl.create (max 8 (Array.length neighbors)) in
  Array.iter (fun q -> Hashtbl.replace link_rates q (Rate.create ~window:rate_window)) neighbors;
  {
    id;
    upload_capacity;
    slots;
    neighbors;
    link_rates;
    unchoked = [];
    optimistic = None;
    uploaded = 0.;
    downloaded = 0.;
    uploaded_tft = 0.;
    downloaded_tft = 0.;
    field;
  }

let observed_rate t ~from_ ~tick =
  match Hashtbl.find_opt t.link_rates from_ with
  | Some r -> Rate.rate r ~tick
  | None -> 0.

let record_download t ~from_ ~tick amount =
  t.downloaded <- t.downloaded +. amount;
  match Hashtbl.find_opt t.link_rates from_ with
  | Some r -> Rate.record r ~tick amount
  | None ->
      let r = Rate.create ~window:10 in
      Rate.record r ~tick amount;
      Hashtbl.replace t.link_rates from_ r

let active_targets t =
  match t.optimistic with
  | Some o when not (List.mem o t.unchoked) -> o :: t.unchoked
  | _ -> t.unchoked

let reset_counters t =
  t.uploaded <- 0.;
  t.downloaded <- 0.;
  t.uploaded_tft <- 0.;
  t.downloaded_tft <- 0.
