(** Per-peer state of the swarm simulator. *)

type t = {
  id : int;
  upload_capacity : float;  (** data units per tick it can send *)
  slots : int;  (** TFT unchoke slots (excludes the optimistic slot) *)
  neighbors : int array;  (** acceptance list (knowledge graph) *)
  link_rates : (int, Rate.t) Hashtbl.t;
      (** download-rate estimator per neighbour, keyed by sender id *)
  mutable unchoked : int list;  (** current TFT unchokes *)
  mutable optimistic : int option;
  mutable uploaded : float;
  mutable downloaded : float;
  mutable uploaded_tft : float;  (** portion of [uploaded] sent on TFT slots *)
  mutable downloaded_tft : float;  (** portion of [downloaded] received on senders' TFT slots *)
  field : Piece.t option;  (** piece bitfield (piece mode only) *)
}

val create :
  id:int ->
  upload_capacity:float ->
  slots:int ->
  neighbors:int array ->
  rate_window:int ->
  field:Piece.t option ->
  t

val observed_rate : t -> from_:int -> tick:int -> float
(** Download rate recently observed from a neighbour. *)

val record_download : t -> from_:int -> tick:int -> float -> unit

val active_targets : t -> int list
(** Current upload targets: TFT unchokes plus the optimistic one. *)

val reset_counters : t -> unit
(** Zero the cumulative upload/download counters (end of warm-up). *)
