module Rng = Stratify_prng.Rng

type decision = { unchoked : int list; optimistic : int option }

let rechoke ?rng ~rates ~slots ~current_optimistic () =
  (* Ties — typically many neighbours with rate 0 — are broken randomly
     when an [rng] is supplied (a real client has no reason to prefer low
     peer ids), deterministically by id otherwise. *)
  let tagged =
    match rng with
    | None -> List.map (fun (id, r) -> (id, r, id)) rates
    | Some rng -> List.map (fun (id, r) -> (id, r, Rng.bits30 rng)) rates
  in
  let ranked =
    List.map
      (fun (id, _, _) -> (id, List.assoc id rates))
      (List.sort
         (fun (_, r1, t1) (_, r2, t2) ->
           let c = Float.compare r2 r1 in
           if c <> 0 then c else Int.compare t1 t2)
         tagged)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (id, _) :: rest -> id :: take (k - 1) rest
  in
  let unchoked = take (max 0 slots) ranked in
  let optimistic =
    match current_optimistic with
    | Some o when List.mem_assoc o rates && not (List.mem o unchoked) -> Some o
    | _ -> None
  in
  { unchoked; optimistic }

let rotate_optimistic rng ~candidates ~exclude =
  let eligible = List.filter (fun c -> not (List.mem c exclude)) candidates in
  match eligible with
  | [] -> None
  | _ ->
      let arr = Array.of_list eligible in
      Some arr.(Rng.int rng (Array.length arr))
