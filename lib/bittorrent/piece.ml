module Rng = Stratify_prng.Rng

type t = { bits : Bytes.t; pieces : int; mutable held : int }

let create ~pieces =
  if pieces <= 0 then invalid_arg "Piece.create: need at least one piece";
  { bits = Bytes.make ((pieces + 7) / 8) '\000'; pieces; held = 0 }

let pieces t = t.pieces

let has t i =
  if i < 0 || i >= t.pieces then invalid_arg "Piece.has: piece out of range";
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let count t = t.held
let is_complete t = t.held = t.pieces

let add t i =
  if has t i then false
  else begin
    let byte = i lsr 3 in
    Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))));
    t.held <- t.held + 1;
    true
  end

let random_fill t rng ~fraction =
  for i = 0 to t.pieces - 1 do
    if (not (has t i)) && Rng.bernoulli rng fraction then ignore (add t i)
  done

let fill_all t =
  for i = 0 to t.pieces - 1 do
    ignore (add t i)
  done

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.held <- 0

let iter_held t f =
  for i = 0 to t.pieces - 1 do
    if has t i then f i
  done

module Availability = struct
  type counts = int array

  let create ~pieces = Array.make pieces 0
  let on_add counts i = counts.(i) <- counts.(i) + 1
  let on_remove counts i = counts.(i) <- counts.(i) - 1

  let of_swarm ~pieces fields =
    let counts = create ~pieces in
    Array.iter
      (fun field ->
        for i = 0 to pieces - 1 do
          if has field i then on_add counts i
        done)
      fields;
    counts

  let rarest_wanted counts ~have ~from_ =
    let best = ref (-1) and best_avail = ref max_int in
    for i = 0 to Array.length counts - 1 do
      if has from_ i && (not (has have i)) && counts.(i) < !best_avail then begin
        best := i;
        best_avail := counts.(i)
      end
    done;
    if !best < 0 then None else Some !best
end
