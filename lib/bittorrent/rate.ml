type t = {
  window : int;
  buckets : float array;  (* buckets.(tick mod window) *)
  stamps : int array;  (* which tick each bucket currently holds *)
  mutable total : float;
}

let create ~window =
  if window <= 0 then invalid_arg "Rate.create: window must be positive";
  { window; buckets = Array.make window 0.; stamps = Array.make window (-1); total = 0. }

let record t ~tick amount =
  let slot = tick mod t.window in
  if t.stamps.(slot) <> tick then begin
    t.buckets.(slot) <- 0.;
    t.stamps.(slot) <- tick
  end;
  t.buckets.(slot) <- t.buckets.(slot) +. amount;
  t.total <- t.total +. amount

let rate t ~tick =
  let acc = ref 0. in
  for slot = 0 to t.window - 1 do
    let stamp = t.stamps.(slot) in
    if stamp >= 0 && tick - stamp < t.window && stamp <= tick then acc := !acc +. t.buckets.(slot)
  done;
  !acc /. float_of_int t.window

let total t = t.total
let window t = t.window
let dump t = (Array.copy t.buckets, Array.copy t.stamps, t.total)

let restore ~window ~buckets ~stamps ~total =
  if window <= 0 then invalid_arg "Rate.restore: window must be positive";
  if Array.length buckets <> window || Array.length stamps <> window then
    invalid_arg
      (Printf.sprintf "Rate.restore: need %d buckets and stamps, got %d and %d" window
         (Array.length buckets) (Array.length stamps));
  { window; buckets = Array.copy buckets; stamps = Array.copy stamps; total }
