let share_ratios swarm =
  Array.init (Swarm.size swarm) (fun i ->
      let p = Swarm.peer swarm i in
      if p.Peer.uploaded <= 0. then 0. else p.Peer.downloaded /. p.Peer.uploaded)

let download_rates swarm ~since_ticks =
  if since_ticks <= 0 then invalid_arg "Metrics.download_rates: need since_ticks > 0";
  Array.init (Swarm.size swarm) (fun i ->
      (Swarm.peer swarm i).Peer.downloaded /. float_of_int since_ticks)

let mean_partner_capacity swarm =
  Array.init (Swarm.size swarm) (fun i ->
      let p = Swarm.peer swarm i in
      match p.Peer.unchoked with
      | [] -> 0.
      | partners ->
          let total =
            List.fold_left
              (fun acc q -> acc +. (Swarm.peer swarm q).Peer.upload_capacity)
              0. partners
          in
          total /. float_of_int (List.length partners))

let pearson pairs =
  match pairs with
  | [] | [ _ ] -> 0.
  | _ ->
      let n = float_of_int (List.length pairs) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pairs /. n in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pairs /. n in
      let cov, vx, vy =
        List.fold_left
          (fun (c, vx, vy) (x, y) ->
            let dx = x -. sx and dy = y -. sy in
            (c +. (dx *. dy), vx +. (dx *. dx), vy +. (dy *. dy)))
          (0., 0., 0.) pairs
      in
      if vx <= 0. || vy <= 0. then 0. else cov /. sqrt (vx *. vy)

let stratification_correlation swarm =
  let partner_caps = mean_partner_capacity swarm in
  let pairs = ref [] in
  for i = 0 to Swarm.size swarm - 1 do
    let p = Swarm.peer swarm i in
    if p.Peer.unchoked <> [] then
      pairs := (log p.Peer.upload_capacity, log partner_caps.(i)) :: !pairs
  done;
  pearson !pairs

let reciprocity swarm =
  let edges = ref 0 and mutual = ref 0 in
  for i = 0 to Swarm.size swarm - 1 do
    let p = Swarm.peer swarm i in
    List.iter
      (fun q ->
        incr edges;
        if List.mem i (Swarm.peer swarm q).Peer.unchoked then incr mutual)
      p.Peer.unchoked
  done;
  if !edges = 0 then 0. else float_of_int !mutual /. float_of_int !edges

let mean_partner_rank_offset swarm ~ranks =
  if Array.length ranks <> Swarm.size swarm then
    invalid_arg "Metrics.mean_partner_rank_offset: rank array size mismatch";
  let total = ref 0 and edges = ref 0 in
  for i = 0 to Swarm.size swarm - 1 do
    List.iter
      (fun q ->
        incr edges;
        total := !total + abs (ranks.(i) - ranks.(q)))
      (Swarm.peer swarm i).Peer.unchoked
  done;
  if !edges = 0 then 0. else float_of_int !total /. float_of_int !edges

let tft_share_ratios swarm =
  Array.init (Swarm.size swarm) (fun i ->
      let p = Swarm.peer swarm i in
      if p.Peer.uploaded_tft <= 0. then 0. else p.Peer.downloaded_tft /. p.Peer.uploaded_tft)
