(** Piece bitfields and rarest-first selection.

    The optional piece-level mode of the swarm simulator tracks which
    pieces each peer holds; transfers are gated on the sender actually
    having a piece the receiver lacks, and receivers pick the globally
    rarest such piece — BitTorrent's "rarest first" policy, which is what
    justifies the paper's post-flash-crowd assumption that availability is
    not a bottleneck. *)

type t
(** A peer's piece set. *)

val create : pieces:int -> t
(** Empty bitfield over [pieces] pieces. *)

val pieces : t -> int
val has : t -> int -> bool
val count : t -> int
val is_complete : t -> bool

val add : t -> int -> bool
(** Mark a piece as held; [false] if already held. *)

val random_fill : t -> Stratify_prng.Rng.t -> fraction:float -> unit
(** Mark each missing piece independently with the given probability —
    the synthetic post-flash-crowd initial state. *)

val fill_all : t -> unit
(** A seed's bitfield. *)

val clear : t -> unit
(** Drop every piece (peer-recycling support). *)

val iter_held : t -> (int -> unit) -> unit
(** Visit each held piece index. *)

(** Global piece availability across the swarm. *)
module Availability : sig
  type counts

  val create : pieces:int -> counts
  val on_add : counts -> int -> unit
  val on_remove : counts -> int -> unit
  val of_swarm : pieces:int -> t array -> counts

  val rarest_wanted : counts -> have:t -> from_:t -> int option
  (** The rarest piece the sender [from_] holds that the receiver [have]
      lacks; [None] when the sender has nothing useful (the receiver is
      "not interested"). *)
end
