module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Undirected = Stratify_graph.Undirected
module Net = Stratify_net.Net

type piece_params = {
  pieces : int;
  piece_size : float;
  init_fraction : float;
  seeds : int;
}

type params = {
  uploads : float array;
  downloads : float array option;
  slots : int array;
  d : float;
  rechoke_period : int;
  optimistic_period : int;
  rate_window : int;
  piece : piece_params option;
  faults : Net.Tick.t option;
}

let default_params ~uploads =
  {
    uploads;
    downloads = None;
    slots = Array.make (Array.length uploads) 3;
    d = 20.;
    rechoke_period = 10;
    optimistic_period = 30;
    rate_window = 10;
    piece = None;
    faults = None;
  }

type t = {
  params : params;
  peers : Peer.t array;
  rng : Rng.t;
  availability : Piece.Availability.counts option;
  link_progress : (int * int, float ref) Hashtbl.t;  (* (sender, receiver) *)
  mutable tick : int;
  (* Observation hook fired on every applied transfer (after download-cap
     scaling): sender, receiver, amount.  Defaults to a no-op, so plain
     tick runs are unchanged; the DES driver below uses it to emit
     message-level piece traffic. *)
  mutable on_transfer : int -> int -> float -> unit;
}

let create rng params =
  let n = Array.length params.uploads in
  if Array.length params.slots <> n then invalid_arg "Swarm.create: |slots| <> |uploads|";
  (match params.downloads with
  | Some caps when Array.length caps <> n ->
      invalid_arg "Swarm.create: |downloads| <> |uploads|"
  | _ -> ());
  if n < 2 then invalid_arg "Swarm.create: need at least two peers";
  let graph = Gen.gnd rng ~n ~d:params.d in
  let fields =
    match params.piece with
    | None -> Array.make n None
    | Some pp ->
        Array.init n (fun i ->
            let field = Piece.create ~pieces:pp.pieces in
            if i < pp.seeds then Piece.fill_all field
            else Piece.random_fill field rng ~fraction:pp.init_fraction;
            Some field)
  in
  let peers =
    Array.init n (fun i ->
        Peer.create ~id:i ~upload_capacity:params.uploads.(i) ~slots:params.slots.(i)
          ~neighbors:(Array.of_list (Undirected.sorted_neighbors graph i))
          ~rate_window:params.rate_window ~field:fields.(i))
  in
  let availability =
    match params.piece with
    | None -> None
    | Some pp ->
        Some
          (Piece.Availability.of_swarm ~pieces:pp.pieces
             (Array.map (fun f -> Option.get f) fields))
  in
  {
    params;
    peers;
    rng;
    availability;
    link_progress = Hashtbl.create 1024;
    tick = 0;
    on_transfer = (fun _ _ _ -> ());
  }

let size t = Array.length t.peers
let tick_count t = t.tick
let peer t i = t.peers.(i)
let rng t = t.rng

(* Snapshot/restore hooks (lib/serve).  A swarm is restored by replaying
   [create] from the creation-time RNG state (regenerating the knowledge
   graph and initial fields draw-for-draw), then overwriting the mutable
   state through these narrow setters — the availability counts stay
   consistent because [set_held_pieces] goes through the same
   on_remove/on_add bookkeeping as the simulation itself. *)

let set_tick t tick =
  if tick < 0 then invalid_arg (Printf.sprintf "Swarm.set_tick: negative tick %d" tick);
  t.tick <- tick

let set_held_pieces t i pieces =
  match (t.peers.(i).Peer.field, t.availability) with
  | Some field, Some counts ->
      Piece.iter_held field (fun piece -> Piece.Availability.on_remove counts piece);
      Piece.clear field;
      List.iter
        (fun piece -> if Piece.add field piece then Piece.Availability.on_add counts piece)
        pieces
  | _ ->
      if pieces <> [] then
        invalid_arg "Swarm.set_held_pieces: swarm runs in bandwidth-only mode"

let iter_link_progress t f =
  Hashtbl.iter (fun (s, r) v -> f s r !v) t.link_progress

let set_link_progress t ~sender ~receiver amount =
  if amount < 0. then
    invalid_arg (Printf.sprintf "Swarm.set_link_progress: negative progress %g" amount);
  match Hashtbl.find_opt t.link_progress (sender, receiver) with
  | Some r -> r := amount
  | None -> Hashtbl.replace t.link_progress (sender, receiver) (ref amount)

let clear_link_progress t = Hashtbl.reset t.link_progress

let interested t q p =
  match (t.peers.(q).Peer.field, t.peers.(p).Peer.field, t.availability) with
  | Some have, Some from_, Some counts ->
      Piece.Availability.rarest_wanted counts ~have ~from_ <> None
  | _ -> true

let rechoke t =
  Array.iter
    (fun p ->
      let rates =
        Array.to_list p.Peer.neighbors
        |> List.filter (fun q -> interested t q p.Peer.id)
        |> List.map (fun q -> (q, Peer.observed_rate p ~from_:q ~tick:t.tick))
      in
      let decision =
        Choker.rechoke ~rng:t.rng ~rates ~slots:p.Peer.slots
          ~current_optimistic:p.Peer.optimistic ()
      in
      p.Peer.unchoked <- decision.Choker.unchoked;
      p.Peer.optimistic <- decision.Choker.optimistic)
    t.peers

let rotate_optimistic t =
  Array.iter
    (fun p ->
      let candidates =
        Array.to_list p.Peer.neighbors |> List.filter (fun q -> interested t q p.Peer.id)
      in
      p.Peer.optimistic <-
        Choker.rotate_optimistic t.rng ~candidates ~exclude:p.Peer.unchoked)
    t.peers

let deliver_piece t ~sender ~receiver =
  match (t.peers.(receiver).Peer.field, t.peers.(sender).Peer.field, t.availability) with
  | Some have, Some from_, Some counts -> (
      match Piece.Availability.rarest_wanted counts ~have ~from_ with
      | Some piece ->
          if Piece.add have piece then Piece.Availability.on_add counts piece
      | None -> ())
  | _ -> ()

let set_on_transfer t f = t.on_transfer <- f

let transfer t ~sender ~receiver ~tft amount =
  t.on_transfer sender receiver amount;
  let p = t.peers.(sender) and q = t.peers.(receiver) in
  p.Peer.uploaded <- p.Peer.uploaded +. amount;
  Peer.record_download q ~from_:sender ~tick:t.tick amount;
  if tft then begin
    p.Peer.uploaded_tft <- p.Peer.uploaded_tft +. amount;
    q.Peer.downloaded_tft <- q.Peer.downloaded_tft +. amount
  end;
  match t.params.piece with
  | None -> ()
  | Some pp ->
      let key = (sender, receiver) in
      let progress =
        match Hashtbl.find_opt t.link_progress key with
        | Some r -> r
        | None ->
            let r = ref 0. in
            Hashtbl.replace t.link_progress key r;
            r
      in
      progress := !progress +. amount;
      while !progress >= pp.piece_size do
        progress := !progress -. pp.piece_size;
        deliver_piece t ~sender ~receiver
      done

let step t =
  (match t.params.faults with
  | Some f -> Net.Tick.advance f ~tick:t.tick
  | None -> ());
  if t.tick mod t.params.rechoke_period = 0 then rechoke t;
  if t.tick mod t.params.optimistic_period = 0 then rotate_optimistic t;
  (* Collect intended transfers first so that receiver-side (download)
     capacity can throttle proportionally, then apply. *)
  let intents = ref [] in
  (* A sender splits capacity over its unchoked-and-interested set before
     the network has its say: a dropped or partitioned link wastes that
     share for the tick (the sender cannot re-aim mid-tick), exactly like
     the download-cap surplus below. *)
  let link_up sender receiver =
    match t.params.faults with
    | None -> true
    | Some f -> Net.Tick.passes f ~tick:t.tick ~src:sender ~dst:receiver
  in
  Array.iter
    (fun p ->
      let targets =
        List.filter (fun q -> interested t q p.Peer.id) (Peer.active_targets p)
      in
      match targets with
      | [] -> ()
      | _ ->
          let share = p.Peer.upload_capacity /. float_of_int (List.length targets) in
          List.iter
            (fun q ->
              if link_up p.Peer.id q then begin
                let tft = List.mem q p.Peer.unchoked in
                intents := (p.Peer.id, q, tft, share) :: !intents
              end)
            targets)
    t.peers;
  (match t.params.downloads with
  | None ->
      List.iter (fun (sender, receiver, tft, share) -> transfer t ~sender ~receiver ~tft share)
        !intents
  | Some caps ->
      (* Asymmetric links: a receiver over its download capacity scales
         every inbound stream down proportionally (the sender's surplus is
         simply lost - it cannot be re-aimed within the tick). *)
      let inbound = Array.make (size t) 0. in
      List.iter (fun (_, receiver, _, share) -> inbound.(receiver) <- inbound.(receiver) +. share)
        !intents;
      List.iter
        (fun (sender, receiver, tft, share) ->
          let scale =
            if inbound.(receiver) <= caps.(receiver) || inbound.(receiver) <= 0. then 1.
            else caps.(receiver) /. inbound.(receiver)
          in
          transfer t ~sender ~receiver ~tft (share *. scale))
        !intents);
  t.tick <- t.tick + 1

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let reset_counters t = Array.iter Peer.reset_counters t.peers

let recycle_peer t i =
  let p = t.peers.(i) in
  (match (p.Peer.field, t.availability) with
  | Some field, Some counts ->
      Piece.iter_held field (fun piece -> Piece.Availability.on_remove counts piece);
      Piece.clear field
  | _ -> ());
  p.Peer.unchoked <- [];
  p.Peer.optimistic <- None;
  Peer.reset_counters p;
  Hashtbl.reset p.Peer.link_rates;
  Array.iter
    (fun q -> Hashtbl.replace p.Peer.link_rates q (Rate.create ~window:t.params.rate_window))
    p.Peer.neighbors;
  (* Other peers' links towards the newcomer are stale history; drop
     in-flight piece progress both ways. *)
  Hashtbl.filter_map_inplace
    (fun (a, b) v -> if a = i || b = i then None else Some v)
    t.link_progress;
  Array.iter
    (fun other ->
      if other.Peer.id <> i then begin
        other.Peer.unchoked <- List.filter (fun q -> q <> i) other.Peer.unchoked;
        if other.Peer.optimistic = Some i then other.Peer.optimistic <- None
      end)
    t.peers

let link_drops t =
  match t.params.faults with None -> 0 | Some f -> Net.Tick.drops f

let completed t =
  Array.fold_left
    (fun acc p ->
      match p.Peer.field with
      | None -> acc + 1
      | Some f -> if Piece.is_complete f then acc + 1 else acc)
    0 t.peers

(* ------------------------------------------------------------------ *)

(* Message-level DES driver: runs the tick simulator inside the event
   engine and turns every applied transfer into a burst of
   defunctionalized piece messages routed through [Net.send_packed].
   This is the swarm-md workload of bench.des — the §6 stratification
   claims must ultimately be observed from message-level traffic
   (Legout et al.), which makes events/sec the binding constraint on
   reproduction scale.  Each tick does one [Net.burst_begin] (a single
   RNG advance batching all of the tick's fault draws) and every piece
   message flows through the engine's packed path without allocating. *)
module Des = struct
  module Engine = Stratify_des.Engine

  let kind_tick = 0
  let kind_piece = 1

  type driver = {
    swarm : t;
    net : Net.t;
    tick_code : int;
    mutable ticks_left : int;
    mutable pieces_sent : int;
    mutable pieces_delivered : int;
    mutable checksum : int;
  }

  (* tick cadence and message granularity are compile-time constants of
     the driver: one tick per simulated second, one message per
     [chunk] data units of an applied transfer *)
  let tick_interval = 1.0

  let create swarm ~net ~chunk =
    if chunk <= 0. then invalid_arg "Swarm.Des.create: chunk must be positive";
    let d =
      {
        swarm;
        net;
        tick_code = Net.Packed.pack_checked ~kind:kind_tick ~src:0 ~dst:0;
        ticks_left = 0;
        pieces_sent = 0;
        pieces_delivered = 0;
        checksum = 0x811C9DC5;
      }
    in
    set_on_transfer swarm (fun sender receiver amount ->
        let msgs =
          let m = int_of_float (amount /. chunk) in
          if m < 1 then 1 else m
        in
        d.pieces_sent <- d.pieces_sent + msgs;
        for _ = 1 to msgs do
          Net.send_packed d.net ~src:sender ~dst:receiver ~kind:kind_piece
        done);
    Engine.set_packed_handler (Net.engine net) (fun eng code ->
        if Net.Packed.kind code = kind_piece then begin
          d.pieces_delivered <- d.pieces_delivered + 1;
          (* FNV-style fold of the delivery order: identical across
             `--queue` backends iff the pop sequences are identical *)
          d.checksum <- (d.checksum lxor code) * 0x01000193 land max_int
        end
        else begin
          Net.burst_begin d.net;
          step d.swarm;
          d.ticks_left <- d.ticks_left - 1;
          if d.ticks_left > 0 then
            Engine.schedule_packed eng ~delay:tick_interval d.tick_code
        end);
    d

  let run d ~ticks =
    if ticks <= 0 then invalid_arg "Swarm.Des.run: ticks must be positive";
    d.ticks_left <- ticks;
    let eng = Net.engine d.net in
    Engine.schedule_packed eng ~delay:0. d.tick_code;
    ignore (Engine.drain ~max_events:max_int eng)

  let pieces_sent d = d.pieces_sent
  let pieces_delivered d = d.pieces_delivered
  let checksum d = d.checksum
end
