module Series = Stratify_stats.Series
module Correlation = Stratify_stats.Correlation

type flash_result = {
  completion_ticks : int option array;
  completed_curve : Series.t;
  swarm : Swarm.t;
}

let flash_crowd rng ~uploads ~pieces ~piece_size ~d ~max_ticks =
  let n = Array.length uploads in
  let params =
    {
      (Swarm.default_params ~uploads) with
      Swarm.d;
      piece = Some { Swarm.pieces; piece_size; init_fraction = 0.; seeds = 1 };
    }
  in
  let swarm = Swarm.create rng params in
  let completion_ticks = Array.make n None in
  completion_ticks.(0) <- Some 0;
  let curve = ref [ (0., 1.) ] in
  let tick = ref 0 in
  let finished () = Swarm.completed swarm = n in
  while (not (finished ())) && !tick < max_ticks do
    Swarm.step swarm;
    incr tick;
    for i = 0 to n - 1 do
      if completion_ticks.(i) = None then
        match (Swarm.peer swarm i).Peer.field with
        | Some f when Piece.is_complete f -> completion_ticks.(i) <- Some !tick
        | _ -> ()
    done;
    curve := (float_of_int !tick, float_of_int (Swarm.completed swarm)) :: !curve
  done;
  {
    completion_ticks;
    completed_curve = Series.make "completed peers" (Array.of_list (List.rev !curve));
    swarm;
  }

let completion_capacity_correlation result ~uploads =
  let pairs = ref [] in
  Array.iteri
    (fun i completion ->
      match completion with
      | Some t when i > 0 -> pairs := (uploads.(i), float_of_int t) :: !pairs
      | _ -> ())
    result.completion_ticks;
  Correlation.spearman (Array.of_list !pairs)

type churn_report = {
  departures : int;
  mean_time_in_system : float;
  swarm_throughput : float;
}

let steady_churn rng ~uploads ~pieces ~piece_size ~d ~warmup ~measure =
  let n = Array.length uploads in
  let params =
    {
      (Swarm.default_params ~uploads) with
      Swarm.d;
      piece = Some { Swarm.pieces; piece_size; init_fraction = 0.3; seeds = 1 };
    }
  in
  let swarm = Swarm.create rng params in
  let arrival = Array.make n 0 in
  let departures = ref 0 in
  let time_total = ref 0 in
  let recycle_completed ~record tick =
    for i = 1 to n - 1 do
      match (Swarm.peer swarm i).Peer.field with
      | Some f when Piece.is_complete f ->
          if record then begin
            incr departures;
            time_total := !time_total + (tick - arrival.(i))
          end;
          Swarm.recycle_peer swarm i;
          arrival.(i) <- tick
      | _ -> ()
    done
  in
  for tick = 1 to warmup do
    Swarm.step swarm;
    recycle_completed ~record:false tick
  done;
  Swarm.reset_counters swarm;
  for tick = warmup + 1 to warmup + measure do
    Swarm.step swarm;
    recycle_completed ~record:true tick
  done;
  let moved = ref 0. in
  for i = 0 to n - 1 do
    moved := !moved +. (Swarm.peer swarm i).Peer.downloaded
  done;
  {
    departures = !departures;
    mean_time_in_system =
      (if !departures = 0 then 0. else float_of_int !time_total /. float_of_int !departures);
    swarm_throughput = !moved /. float_of_int measure;
  }
