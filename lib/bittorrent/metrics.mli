(** Swarm measurement: share ratios and stratification indices.

    These are the observables Figs 8–11 of the paper predict; the
    simulator measures them directly so the analytic model can be
    validated end-to-end. *)

val share_ratios : Swarm.t -> float array
(** Per-peer downloaded/uploaded over the measurement window (0 for peers
    that uploaded nothing). *)

val download_rates : Swarm.t -> since_ticks:int -> float array
(** Per-peer mean download per tick over the last [since_ticks] ticks,
    from the cumulative counters (call {!Swarm.reset_counters} at the
    start of the window). *)

val mean_partner_capacity : Swarm.t -> float array
(** For each peer, the average upload capacity of its current unchoke
    targets (0 when it unchokes nobody). *)

val stratification_correlation : Swarm.t -> float
(** Pearson correlation, over peers with at least one unchoke target,
    between own log-capacity and mean partner log-capacity.  Values near 1
    mean strong stratification (peers exchange with their own stratum). *)

val reciprocity : Swarm.t -> float
(** Fraction of TFT unchoke edges that are reciprocated — TFT should
    drive this high after convergence. *)

val mean_partner_rank_offset : Swarm.t -> ranks:int array -> float
(** Average |rank(peer) − rank(partner)| over current TFT unchoke edges —
    the simulator-side analogue of the MMO. *)

val tft_share_ratios : Swarm.t -> float array
(** Like {!share_ratios} but restricted to traffic exchanged on TFT slots
    — the quantity §6's analytic model predicts (the optimistic slot is
    the "generous" extra the model excludes). *)
