(** [stratify.net] — a fault-injecting network between peers and the DES
    engine.

    The asynchronous dynamics and the scenario harness route every
    peer-to-peer message through a {!t} instead of calling
    {!Stratify_des.Engine.schedule} directly.  A network applies, in a
    {e fixed, documented order}, the faults of its {!faults} record:

    + {b partition} — if a partition schedule currently separates [src]
      from [dst], the message is dropped (no RNG draw);
    + {b loss} — i.i.d. Bernoulli or a per-link Gilbert–Elliott burst
      chain;
    + {b latency} — constant, uniform jitter, or log-normal (via the
      same samplers as {!Stratify_prng.Dist});
    + {b reordering} — with probability [reorder] the message picks up an
      extra uniform delay in [0, reorder_spread), letting later sends
      overtake it;
    + {b duplication} — with probability [duplicate] a second copy is
      delivered with fresh latency/reorder draws.

    {2 Determinism}

    All draws come from the [Rng.t] handed to {!create}, in send order,
    so a run is bit-identical for a given seed — the same
    replica-substream discipline as [stratify.exec]: give each replica's
    network its own {!Stratify_prng.Rng.split} substream and results do
    not depend on [--jobs] or scheduling.

    The fault-free configuration ({!ideal}) is draw-for-draw identical
    to the pre-[stratify.net] direct-[Engine.schedule] path: [No_loss]
    and [Iid 0.] draw nothing, [Constant] latency draws nothing, and
    zero [duplicate]/[reorder] probabilities draw nothing, so existing
    goldens are preserved bit-for-bit. *)

type latency =
  | Constant of float  (** every message takes exactly this long *)
  | Jitter of { base : float; spread : float }
      (** uniform in [base, base + spread) — spread ≥ the inter-send gap
          reorders messages *)
  | Log_normal of { mu : float; sigma : float }
      (** heavy-tailed one-way delay, [exp] of a Gaussian *)

type loss =
  | No_loss
  | Iid of float  (** each message independently vanishes w.p. [p] *)
  | Burst of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }
      (** Gilbert–Elliott: each {e link} (ordered [src, dst] pair) hosts a
          two-state Markov chain advanced once per message — from Good the
          link turns Bad w.p. [p_gb], from Bad it recovers w.p. [p_bg] —
          and the message is lost w.p. [loss_good]/[loss_bad] depending on
          the state after the transition.  Stationary loss rate:
          [(p_gb·loss_bad + p_bg·loss_good) / (p_gb + p_bg)]. *)

type faults = {
  latency : latency;
  loss : loss;
  duplicate : float;  (** probability a message is delivered twice *)
  reorder : float;  (** probability of an extra reordering delay *)
  reorder_spread : float;  (** the extra delay is uniform in [0, spread) *)
}

val ideal : ?latency:float -> unit -> faults
(** Constant [latency] (default 0.05), no loss, no duplication, no
    reordering — the fault-free network, drawing nothing from the RNG. *)

val stationary_loss : loss -> float
(** The long-run fraction of messages a loss model drops (0 for
    [No_loss]); how tick-based workloads map a [Burst] model onto a
    per-tick i.i.d. rate. *)

type partition_event = { at : float; groups : int array option }
(** At time [at], either install a partition ([Some g] assigns peer [p]
    to group [g.(p)]; messages between different groups are dropped) or
    heal it ([None]). *)

type t

val create : ?engine:Stratify_des.Engine.t -> Stratify_prng.Rng.t -> faults -> t
(** Build a network over a fresh engine (or [engine]).  Raises
    [Invalid_argument] on out-of-range fault parameters (negative
    latencies or spreads, probabilities outside [0, 1)). *)

val engine : t -> Stratify_des.Engine.t
val faults : t -> faults

val set_partition_schedule : t -> partition_event list -> unit
(** Schedule split/heal events on the network's engine (events fire as
    simulated time passes them).  An event dated before the engine's
    current clock raises [Invalid_argument] naming the offending
    partition time — the whole schedule is validated before anything is
    enqueued. *)

val reachable : t -> src:int -> dst:int -> bool
(** Whether a message sent now would cross the current partition. *)

val send : t -> src:int -> dst:int -> (Stratify_des.Engine.t -> unit) -> unit
(** Route one message: apply the fault pipeline above, then (unless
    dropped) schedule the handler at delivery time. *)

(** {2 Defunctionalized sends}

    The high-throughput path for message-level workloads (tens of
    millions of events): instead of a closure, a message is an int code
    bit-packing [(kind, src, dst)], delivered through the engine's
    packed-event handler ({!Stratify_des.Engine.set_packed_handler}).
    Fault draws are {e burst-batched}: {!burst_begin} advances the
    network's RNG once and derives a counter-mode base; every
    {!send_packed} until the next [burst_begin] hashes
    [(base, message index, draw lane)] for its loss / latency / reorder
    / duplicate draws.  One RNG advance per burst, zero allocation per
    message, and verdicts independent of send order within a burst —
    the same discipline as {!Tick}.

    Two deliberate semantic differences from {!send} (the packed path
    is a separate traffic class, not a re-encoding of the closure
    path): draws come from the counter-mode hash, so packed and closure
    sends over the same network do not consume each other's RNG stream;
    and a [Burst] (Gilbert–Elliott) loss model collapses to its
    {!stationary_loss} rate — per-link chain state would reintroduce
    per-message lookups and allocation. *)

module Packed : sig
  val kind_bits : int
  (** 6: kinds 0..63. *)

  val id_bits : int
  (** 28: src/dst ids 0..268_435_455. *)

  val pack : kind:int -> src:int -> dst:int -> int
  (** Bit-pack without bounds checks (the hot path); out-of-range
      arguments corrupt the code.  The packed value is non-negative as
      {!Stratify_des.Engine.schedule_packed} requires. *)

  val pack_checked : kind:int -> src:int -> dst:int -> int
  (** Like {!pack} but raises [Invalid_argument] on out-of-range
      fields. *)

  val kind : int -> int

  val src : int -> int

  val dst : int -> int
end

val burst_begin : t -> unit
(** Start a fault-draw burst: advance the RNG once and reset the
    message index.  Call at the start of each tick (or other natural
    burst) before a batch of {!send_packed} calls. *)

val send_packed : t -> src:int -> dst:int -> kind:int -> unit
(** Route one defunctionalized message: same fault pipeline and
    counters as {!send} (with the packed-path differences above), then
    schedule [Packed.pack ~kind ~src ~dst] at delivery time.
    Allocation-free in steady state. *)

(** {2 Telemetry} — plain fields, plus the ["net.*"] observability
    counters ([net.sent], [net.delivered], [net.lost],
    [net.partitioned], [net.duplicated], [net.reordered]) when
    {!Stratify_obs.Control} is enabled. *)

val sent : t -> int
val delivered : t -> int
(** Messages scheduled for delivery (duplicates count) — every one of
    them runs by the time the engine drains. *)

val lost : t -> int
(** Dropped by the loss model. *)

val partitioned : t -> int
(** Dropped by a partition. *)

val dropped : t -> int
(** [lost + partitioned]. *)

val duplicated : t -> int
val reordered : t -> int

(** Fault gating for {e tick-based} simulators (the BitTorrent swarm),
    which have no event queue to delay messages in: latency collapses to
    the tick granularity, so only loss and partitions apply.  [passes]
    is a pure hash of [(seed, tick, src, dst)] — deterministic and
    independent of the order links are evaluated in. *)
module Tick : sig
  type event = { at_tick : int; groups : int array option }

  type t

  val create : seed:int -> loss:float -> ?schedule:event list -> unit -> t
  (** [loss] is the per-link per-tick drop probability in [0, 1).
      Raises [Invalid_argument] on an out-of-range [loss] or a schedule
      event at a negative tick, naming the offender. *)

  val advance : t -> tick:int -> unit
  (** Apply every scheduled partition event with [at_tick ≤ tick]; call
      once at the start of each simulator tick. *)

  val connected : t -> src:int -> dst:int -> bool

  val passes : t -> tick:int -> src:int -> dst:int -> bool
  (** Whether the link delivers during this tick: connected, and the
      [(seed, tick, src, dst)] hash clears the loss rate. *)

  val drops : t -> int
  (** Number of [passes] calls that returned [false]. *)

  (** {2 Snapshot/restore} — the fault state as pure data, for the
      deterministic service snapshots of [stratify.serve].  [passes] is
      a stateless hash, so capturing [base], the unapplied schedule, the
      installed groups and the drop tally reproduces the model's future
      verdicts exactly. *)

  type snapshot = {
    snap_base : int64;
    snap_loss : float;
    snap_pending : event list;
    snap_groups : int array option;
    snap_drops : int;
  }

  val snapshot : t -> snapshot
  val restore : snapshot -> t
  (** Raises [Invalid_argument] on an out-of-range loss rate. *)
end
