module Jsonx = Stratify_obs.Jsonx
module Manifest = Stratify_obs.Run_manifest
module Counter = Stratify_obs.Counter
module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Net = Stratify_net.Net
module Swarm = Stratify_bittorrent.Swarm
module Bt_metrics = Stratify_bittorrent.Metrics
module Queue_sim = Stratify_edonkey.Queue_sim
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
open Stratify_core

type latency_spec =
  | Constant of float
  | Jitter of { base : float; spread : float }
  | Log_normal of { mu : float; sigma : float }

type loss_spec =
  | No_loss
  | Iid of float
  | Burst of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type net_spec = {
  latency : latency_spec;
  loss : loss_spec;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
}

type groups_spec = Halves | Groups of int array | Heal

type partition_spec = { at : float; groups : groups_spec }

type backend_spec = Dense | Complete | Complete_minus of { removed : int }

type workload =
  | Async of {
      n : int;
      d : float;
      b : int;
      horizon : float;
      initiative_rate : float;
      backend : backend_spec;
      scheduler : Scheduler.policy;
    }
  | Swarm of { n : int; d : float; ticks : int; warmup : int }
  | Edonkey of { n : int; d : float; slots : int; ticks : int; warmup : int }

type assertion =
  | Drained
  | Final_disorder_below of float
  | Inconsistency_below of int
  | Converged_by of { deadline : float; disorder_below : float }
  | Stratification_within of float
  | Scheduler_fixed_point

type t = {
  name : string;
  seed : int;
  workload : workload;
  net : net_spec;
  partitions : partition_spec list;
  assertions : assertion list;
}

(* ---- JSON ---------------------------------------------------------- *)

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Jsonx.Parse_error s)) fmt

let req name j =
  match Jsonx.member name j with
  | Jsonx.Null -> parse_fail "plan: missing field %S" name
  | v -> v

let opt_float name ~default j =
  match Jsonx.member name j with Jsonx.Null -> default | v -> Jsonx.get_float v

let opt_int name ~default j =
  match Jsonx.member name j with Jsonx.Null -> default | v -> Jsonx.get_int v

let latency_of_json j =
  match Jsonx.get_string (req "kind" j) with
  | "constant" -> Constant (Jsonx.get_float (req "value" j))
  | "jitter" ->
      Jitter { base = Jsonx.get_float (req "base" j); spread = Jsonx.get_float (req "spread" j) }
  | "lognormal" ->
      Log_normal { mu = Jsonx.get_float (req "mu" j); sigma = Jsonx.get_float (req "sigma" j) }
  | k -> parse_fail "plan: unknown latency kind %S" k

let loss_of_json j =
  match Jsonx.get_string (req "kind" j) with
  | "none" -> No_loss
  | "iid" -> Iid (Jsonx.get_float (req "p" j))
  | "burst" ->
      Burst
        {
          p_gb = Jsonx.get_float (req "p_gb" j);
          p_bg = Jsonx.get_float (req "p_bg" j);
          loss_good = opt_float "loss_good" ~default:0. j;
          loss_bad = Jsonx.get_float (req "loss_bad" j);
        }
  | k -> parse_fail "plan: unknown loss kind %S" k

let default_net =
  { latency = Constant 0.05; loss = No_loss; duplicate = 0.; reorder = 0.; reorder_spread = 0. }

let net_of_json j =
  match j with
  | Jsonx.Null -> default_net
  | _ ->
      {
        latency =
          (match Jsonx.member "latency" j with
          | Jsonx.Null -> default_net.latency
          | l -> latency_of_json l);
        loss =
          (match Jsonx.member "loss" j with Jsonx.Null -> No_loss | l -> loss_of_json l);
        duplicate = opt_float "duplicate" ~default:0. j;
        reorder = opt_float "reorder" ~default:0. j;
        reorder_spread = opt_float "reorder_spread" ~default:0. j;
      }

let groups_of_json = function
  | Jsonx.String "halves" -> Halves
  | Jsonx.String "heal" -> Heal
  | Jsonx.List l -> Groups (Array.of_list (List.map Jsonx.get_int l))
  | Jsonx.String s -> parse_fail "plan: unknown groups %S (want \"halves\", \"heal\" or a list)" s
  | _ -> parse_fail "plan: groups must be \"halves\", \"heal\" or a list of ints"

let partition_of_json j =
  { at = Jsonx.get_float (req "at" j); groups = groups_of_json (req "groups" j) }

let backend_of_json j =
  match Jsonx.member "backend" j with
  | Jsonx.Null -> Dense
  | v -> (
      match Jsonx.get_string v with
      | "dense" -> Dense
      | "complete" -> Complete
      | "complete_minus" -> Complete_minus { removed = opt_int "removed" ~default:0 j }
      | k -> parse_fail "plan: unknown backend %S (want dense/complete/complete_minus)" k)

let scheduler_of_json j =
  match Jsonx.member "scheduler" j with
  | Jsonx.Null -> Scheduler.Random_poll
  | v -> (
      let s = Jsonx.get_string v in
      match Scheduler.policy_of_string s with
      | Some p -> p
      | None -> parse_fail "plan: unknown scheduler %S (want random/worklist)" s)

let workload_of_json j =
  match Jsonx.get_string (req "kind" j) with
  | "async" ->
      Async
        {
          n = Jsonx.get_int (req "n" j);
          d = opt_float "d" ~default:10. j;
          b = opt_int "b" ~default:1 j;
          horizon = opt_float "horizon" ~default:100. j;
          initiative_rate = opt_float "initiative_rate" ~default:1. j;
          backend = backend_of_json j;
          scheduler = scheduler_of_json j;
        }
  | "swarm" ->
      Swarm
        {
          n = Jsonx.get_int (req "n" j);
          d = opt_float "d" ~default:20. j;
          ticks = opt_int "ticks" ~default:2000 j;
          warmup = opt_int "warmup" ~default:500 j;
        }
  | "edonkey" ->
      Edonkey
        {
          n = Jsonx.get_int (req "n" j);
          d = opt_float "d" ~default:20. j;
          slots = opt_int "slots" ~default:4 j;
          ticks = opt_int "ticks" ~default:2000 j;
          warmup = opt_int "warmup" ~default:500 j;
        }
  | k -> parse_fail "plan: unknown workload kind %S" k

let assertion_of_json j =
  match Jsonx.get_string (req "kind" j) with
  | "drained" -> Drained
  | "final_disorder_below" -> Final_disorder_below (Jsonx.get_float (req "value" j))
  | "inconsistency_below" -> Inconsistency_below (Jsonx.get_int (req "value" j))
  | "converged_by" ->
      Converged_by
        {
          deadline = Jsonx.get_float (req "deadline" j);
          disorder_below = Jsonx.get_float (req "disorder_below" j);
        }
  | "stratification_within" -> Stratification_within (Jsonx.get_float (req "tolerance" j))
  | "scheduler_fixed_point" -> Scheduler_fixed_point
  | k -> parse_fail "plan: unknown assertion kind %S" k

let validate t =
  let async_only what =
    match t.workload with
    | Async _ -> ()
    | Swarm _ | Edonkey _ ->
        invalid_arg (Printf.sprintf "plan %s: %s applies to async workloads only" t.name what)
  in
  let tick_guards n ticks warmup =
    if n < 2 then invalid_arg (Printf.sprintf "plan %s: need n >= 2" t.name);
    if warmup < 0 || warmup >= ticks then
      invalid_arg (Printf.sprintf "plan %s: need 0 <= warmup < ticks" t.name)
  in
  (match t.workload with
  | Async { n; horizon; initiative_rate; backend; _ } ->
      if n < 2 then invalid_arg (Printf.sprintf "plan %s: need n >= 2" t.name);
      if horizon <= 0. then invalid_arg (Printf.sprintf "plan %s: horizon must be positive" t.name);
      if initiative_rate <= 0. then
        invalid_arg (Printf.sprintf "plan %s: initiative_rate must be positive" t.name);
      (match backend with
      | Complete_minus { removed } when removed < 0 || removed > n - 2 ->
          invalid_arg
            (Printf.sprintf "plan %s: complete_minus must keep >= 2 of %d peers (removed %d)"
               t.name n removed)
      | _ -> ())
  | Swarm { n; ticks; warmup; _ } -> tick_guards n ticks warmup
  | Edonkey { n; slots; ticks; warmup; _ } ->
      tick_guards n ticks warmup;
      if slots < 1 then invalid_arg (Printf.sprintf "plan %s: need slots >= 1" t.name));
  List.iter
    (function
      | Drained -> async_only "\"drained\""
      | Final_disorder_below _ -> async_only "\"final_disorder_below\""
      | Inconsistency_below _ -> async_only "\"inconsistency_below\""
      | Scheduler_fixed_point -> async_only "\"scheduler_fixed_point\""
      | Converged_by { deadline; _ } ->
          async_only "\"converged_by\"";
          (match t.workload with
          | Async { horizon; _ } when deadline > horizon ->
              invalid_arg
                (Printf.sprintf "plan %s: converged_by deadline %g beyond horizon %g" t.name
                   deadline horizon)
          | _ -> ())
      | Stratification_within _ -> (
          match t.workload with
          | Swarm _ | Edonkey _ -> ()
          | Async _ ->
              invalid_arg
                (Printf.sprintf
                   "plan %s: \"stratification_within\" applies to tick workloads (swarm/edonkey) only"
                   t.name)))
    t.assertions;
  List.iter
    (fun p ->
      if p.at < 0. then invalid_arg (Printf.sprintf "plan %s: partition at %g < 0" t.name p.at))
    t.partitions;
  t

(* Reject unknown top-level fields instead of silently ignoring them: a
   typo'd field ("asserts", "partiton") would otherwise make the plan
   assert nothing and "pass" vacuously. *)
let known_fields = [ "name"; "seed"; "workload"; "net"; "partitions"; "assertions" ]

let check_no_unknown_fields j =
  match j with
  | Jsonx.Obj members ->
      List.iter
        (fun (key, _) ->
          if not (List.mem key known_fields) then
            parse_fail "plan: unknown field %S (expected one of %s)" key
              (String.concat "/" known_fields))
        members
  | _ -> parse_fail "plan: expected a JSON object"

let of_json j =
  check_no_unknown_fields j;
  validate
    {
      name = Jsonx.get_string (req "name" j);
      seed = opt_int "seed" ~default:42 j;
      workload = workload_of_json (req "workload" j);
      net = net_of_json (Jsonx.member "net" j);
      partitions =
        (match Jsonx.member "partitions" j with
        | Jsonx.Null -> []
        | l -> List.map partition_of_json (Jsonx.get_list l));
      assertions = List.map assertion_of_json (Jsonx.get_list (req "assertions" j));
    }

let latency_to_json = function
  | Constant v -> Jsonx.Obj [ ("kind", Jsonx.String "constant"); ("value", Jsonx.Float v) ]
  | Jitter { base; spread } ->
      Jsonx.Obj
        [ ("kind", Jsonx.String "jitter"); ("base", Jsonx.Float base); ("spread", Jsonx.Float spread) ]
  | Log_normal { mu; sigma } ->
      Jsonx.Obj
        [ ("kind", Jsonx.String "lognormal"); ("mu", Jsonx.Float mu); ("sigma", Jsonx.Float sigma) ]

let loss_to_json = function
  | No_loss -> Jsonx.Obj [ ("kind", Jsonx.String "none") ]
  | Iid p -> Jsonx.Obj [ ("kind", Jsonx.String "iid"); ("p", Jsonx.Float p) ]
  | Burst { p_gb; p_bg; loss_good; loss_bad } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "burst");
          ("p_gb", Jsonx.Float p_gb);
          ("p_bg", Jsonx.Float p_bg);
          ("loss_good", Jsonx.Float loss_good);
          ("loss_bad", Jsonx.Float loss_bad);
        ]

let groups_to_json = function
  | Halves -> Jsonx.String "halves"
  | Heal -> Jsonx.String "heal"
  | Groups g -> Jsonx.List (Array.to_list (Array.map (fun x -> Jsonx.Int x) g))

let workload_to_json = function
  | Async { n; d; b; horizon; initiative_rate; backend; scheduler } ->
      Jsonx.Obj
        ([
           ("kind", Jsonx.String "async");
           ("n", Jsonx.Int n);
           ("d", Jsonx.Float d);
           ("b", Jsonx.Int b);
           ("horizon", Jsonx.Float horizon);
           ("initiative_rate", Jsonx.Float initiative_rate);
         ]
        @ (match backend with
          | Dense -> [ ("backend", Jsonx.String "dense") ]
          | Complete -> [ ("backend", Jsonx.String "complete") ]
          | Complete_minus { removed } ->
              [ ("backend", Jsonx.String "complete_minus"); ("removed", Jsonx.Int removed) ])
        @ [ ("scheduler", Jsonx.String (Scheduler.policy_name scheduler)) ])
  | Swarm { n; d; ticks; warmup } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "swarm");
          ("n", Jsonx.Int n);
          ("d", Jsonx.Float d);
          ("ticks", Jsonx.Int ticks);
          ("warmup", Jsonx.Int warmup);
        ]
  | Edonkey { n; d; slots; ticks; warmup } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "edonkey");
          ("n", Jsonx.Int n);
          ("d", Jsonx.Float d);
          ("slots", Jsonx.Int slots);
          ("ticks", Jsonx.Int ticks);
          ("warmup", Jsonx.Int warmup);
        ]

let assertion_to_json = function
  | Drained -> Jsonx.Obj [ ("kind", Jsonx.String "drained") ]
  | Final_disorder_below v ->
      Jsonx.Obj [ ("kind", Jsonx.String "final_disorder_below"); ("value", Jsonx.Float v) ]
  | Inconsistency_below v ->
      Jsonx.Obj [ ("kind", Jsonx.String "inconsistency_below"); ("value", Jsonx.Int v) ]
  | Converged_by { deadline; disorder_below } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "converged_by");
          ("deadline", Jsonx.Float deadline);
          ("disorder_below", Jsonx.Float disorder_below);
        ]
  | Stratification_within tol ->
      Jsonx.Obj [ ("kind", Jsonx.String "stratification_within"); ("tolerance", Jsonx.Float tol) ]
  | Scheduler_fixed_point -> Jsonx.Obj [ ("kind", Jsonx.String "scheduler_fixed_point") ]

let to_json t =
  Jsonx.Obj
    [
      ("name", Jsonx.String t.name);
      ("seed", Jsonx.Int t.seed);
      ("workload", workload_to_json t.workload);
      ( "net",
        Jsonx.Obj
          [
            ("latency", latency_to_json t.net.latency);
            ("loss", loss_to_json t.net.loss);
            ("duplicate", Jsonx.Float t.net.duplicate);
            ("reorder", Jsonx.Float t.net.reorder);
            ("reorder_spread", Jsonx.Float t.net.reorder_spread);
          ] );
      ( "partitions",
        Jsonx.List
          (List.map
             (fun p -> Jsonx.Obj [ ("at", Jsonx.Float p.at); ("groups", groups_to_json p.groups) ])
             t.partitions) );
      ("assertions", Jsonx.List (List.map assertion_to_json t.assertions));
    ]

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_json (Jsonx.of_string s)

(* ---- execution ----------------------------------------------------- *)

type check = { label : string; ok : bool; detail : string }

type result = {
  plan : t;
  passed : bool;
  checks : check list;
  manifest : Manifest.t;
}

let c_checks_passed = Counter.make "plan.checks_passed"
let c_checks_failed = Counter.make "plan.checks_failed"
let c_disorder_scaled = Counter.make "plan.final_disorder_x1e6"
let c_incons = Counter.make "plan.inconsistency"
let c_drained = Counter.make "plan.drained"
let c_strat_scaled = Counter.make "plan.strat_plus1_x1e6"

let net_loss = function
  | No_loss -> Net.No_loss
  | Iid p -> Net.Iid p
  | Burst { p_gb; p_bg; loss_good; loss_bad } -> Net.Burst { p_gb; p_bg; loss_good; loss_bad }

let net_faults (s : net_spec) : Net.faults =
  {
    latency =
      (match s.latency with
      | Constant v -> Net.Constant v
      | Jitter { base; spread } -> Net.Jitter { base; spread }
      | Log_normal { mu; sigma } -> Net.Log_normal { mu; sigma });
    loss = net_loss s.loss;
    duplicate = s.duplicate;
    reorder = s.reorder;
    reorder_spread = s.reorder_spread;
  }

let resolve_groups n = function
  | Heal -> None
  | Halves -> Some (Array.init n (fun p -> if p < n / 2 then 0 else 1))
  | Groups g ->
      if Array.length g <> n then
        invalid_arg (Printf.sprintf "plan: groups array has %d entries for %d peers" (Array.length g) n);
      Some g

let pass_fail label ok detail = { label; ok; detail }

let assertion_kind = function
  | Drained -> "drained"
  | Final_disorder_below _ -> "final_disorder_below"
  | Inconsistency_below _ -> "inconsistency_below"
  | Converged_by _ -> "converged_by"
  | Stratification_within _ -> "stratification_within"
  | Scheduler_fixed_point -> "scheduler_fixed_point"

(* A runner handed an assertion it cannot evaluate means the plan
   bypassed [validate] (constructed directly instead of parsed) or
   validate and the runners drifted apart.  Name the plan, the assertion
   and the runner instead of crashing on a bare assertion — the caller
   built the plan, so [Invalid_argument] is the right contract. *)
let dispatch_fail plan ~runner a =
  invalid_arg
    (Printf.sprintf
       "plan %s: assertion %S cannot be evaluated by the %s runner (was Plan.validate run?)"
       plan.name (assertion_kind a) runner)

(* Evenly spaced ranks, so a removal set spans every bandwidth class. *)
let spread_removed ~n ~removed = List.init removed (fun i -> i * n / removed)

let run_async plan ~n ~d ~b ~horizon ~initiative_rate ~backend ~scheduler =
  let rng = Rng.create plan.seed in
  let inst =
    match backend with
    | Dense ->
        let graph = Gen.gnd rng ~n ~d in
        Instance.create ~graph ~b:(Array.make n b) ()
    | Complete -> Instance.complete ~n ~b:(Array.make n b) ()
    | Complete_minus { removed } ->
        Instance.complete_minus ~n ~b:(Array.make n b)
          ~removed:(spread_removed ~n ~removed) ()
  in
  let greedy = Greedy.stable_config inst in
  (* The worklist fixed point replays Theorem 1's constructive schedule:
     drain the dirty set from the empty configuration with the best-mate
     strategy (which consumes no randomness).  By Tan's uniqueness it must
     land on Algorithm 1's configuration — the [scheduler_fixed_point]
     assertion pins that, and under [Worklist] the disorder reference
     itself is the drained configuration, so any divergence would also
     surface in every disorder bound. *)
  let worklist_config =
    lazy
      (let cfg = Config.empty inst in
       let queue = Scheduler.create ~n in
       Scheduler.seed_all queue;
       let state = Initiative.create_state inst in
       ignore (Scheduler.drain queue cfg state Initiative.Best_mate (Rng.create plan.seed));
       cfg)
  in
  let stable =
    match scheduler with
    | Scheduler.Random_poll -> greedy
    | Scheduler.Worklist -> Lazy.force worklist_config
  in
  let net = Net.create rng (net_faults plan.net) in
  Net.set_partition_schedule net
    (List.map (fun p -> { Net.at = p.at; groups = resolve_groups n p.groups }) plan.partitions);
  let a = Async_dynamics.create ~net inst rng { Async_dynamics.latency = 0.; initiative_rate; loss = 0. } in
  let disorder_now () = Disorder.disorder (Async_dynamics.mutual_config a) ~stable in
  (* Run piecewise so converged-by deadlines can be sampled in passing. *)
  let deadlines =
    List.filter_map (function Converged_by { deadline; _ } -> Some deadline | _ -> None)
      plan.assertions
    |> List.sort_uniq compare
  in
  let sampled = Hashtbl.create 4 in
  let now =
    List.fold_left
      (fun now deadline ->
        Async_dynamics.run a ~horizon:(deadline -. now);
        Hashtbl.replace sampled deadline (disorder_now ());
        deadline)
      0. deadlines
  in
  if horizon > now then Async_dynamics.run a ~horizon:(horizon -. now);
  let outcome = Async_dynamics.quiesce a in
  let final_disorder = disorder_now () in
  let incons = Async_dynamics.inconsistency_count a in
  Counter.add c_disorder_scaled (int_of_float (final_disorder *. 1e6));
  Counter.add c_incons incons;
  if outcome = Async_dynamics.Drained then Counter.incr c_drained;
  let checks =
    List.map
      (function
        | Drained ->
            pass_fail "drained"
              (outcome = Async_dynamics.Drained)
              (match outcome with
              | Async_dynamics.Drained -> "all in-flight messages drained"
              | Async_dynamics.Budget_exhausted -> "event budget exhausted before quiescence")
        | Final_disorder_below bound ->
            pass_fail "final_disorder_below"
              (final_disorder <= bound)
              (Printf.sprintf "disorder %.6f vs bound %g" final_disorder bound)
        | Inconsistency_below bound ->
            pass_fail "inconsistency_below" (incons <= bound)
              (Printf.sprintf "%d one-sided listings vs bound %d" incons bound)
        | Converged_by { deadline; disorder_below } ->
            let v = Hashtbl.find sampled deadline in
            pass_fail "converged_by"
              (v <= disorder_below)
              (Printf.sprintf "disorder %.6f at t=%g vs bound %g" v deadline disorder_below)
        | Scheduler_fixed_point ->
            let agrees = Config.equal (Lazy.force worklist_config) greedy in
            pass_fail "scheduler_fixed_point" agrees
              (if agrees then
                 Printf.sprintf "worklist fixed point = Algorithm 1 (%d edges)"
                   (Config.edge_count greedy)
               else
                 Printf.sprintf "worklist fixed point diverges from Algorithm 1 (%d vs %d edges)"
                   (Config.edge_count (Lazy.force worklist_config))
                   (Config.edge_count greedy))
        | Stratification_within _ as a -> dispatch_fail plan ~runner:"async" a)
      plan.assertions
  in
  (checks, [ ("final_disorder", final_disorder) ])

let run_swarm plan ~n ~d ~ticks ~warmup =
  (* A tick has no sub-tick timing, so a burst model collapses to its
     stationary rate. *)
  let loss = Net.stationary_loss (net_loss plan.net.loss) in
  let schedule =
    List.map
      (fun p -> { Net.Tick.at_tick = int_of_float p.at; groups = resolve_groups n p.groups })
      plan.partitions
  in
  let build ~faulty =
    let rng = Rng.create plan.seed in
    let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
    let faults =
      if faulty && (loss > 0. || schedule <> []) then
        Some (Net.Tick.create ~seed:plan.seed ~loss ~schedule ())
      else None
    in
    let swarm = Swarm.create rng { (Swarm.default_params ~uploads) with Swarm.d; faults } in
    Swarm.run swarm ~ticks:warmup;
    Swarm.reset_counters swarm;
    Swarm.run swarm ~ticks:(ticks - warmup);
    swarm
  in
  let swarm = build ~faulty:true in
  let strat = Bt_metrics.stratification_correlation swarm in
  Counter.add c_strat_scaled (int_of_float ((strat +. 1.) *. 1e6));
  let baseline =
    if List.exists (function Stratification_within _ -> true | _ -> false) plan.assertions then
      Some (Bt_metrics.stratification_correlation (build ~faulty:false))
    else None
  in
  let checks =
    List.map
      (function
        | Stratification_within tol ->
            let base = Option.get baseline in
            pass_fail "stratification_within"
              (Float.abs (strat -. base) <= tol)
              (Printf.sprintf "stratification %.4f vs fault-free %.4f (tolerance %g)" strat base tol)
        | a -> dispatch_fail plan ~runner:"swarm" a)
      plan.assertions
  in
  let metrics =
    ("stratification", strat)
    :: (match baseline with None -> [] | Some b -> [ ("baseline_stratification", b) ])
  in
  (checks, metrics)

(* The eDonkey twin of [run_swarm]: same tick-level fault model, same
   fault-free-twin stratification comparison, over the credit-queue
   simulator instead of the TFT swarm. *)
let run_edonkey plan ~n ~d ~slots ~ticks ~warmup =
  let loss = Net.stationary_loss (net_loss plan.net.loss) in
  let schedule =
    List.map
      (fun p -> { Net.Tick.at_tick = int_of_float p.at; groups = resolve_groups n p.groups })
      plan.partitions
  in
  let build ~faulty =
    let rng = Rng.create plan.seed in
    let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
    let faults =
      if faulty && (loss > 0. || schedule <> []) then
        Some (Net.Tick.create ~seed:plan.seed ~loss ~schedule ())
      else None
    in
    let sim =
      Queue_sim.create rng { (Queue_sim.default_params ~uploads) with Queue_sim.d; slots; faults }
    in
    Queue_sim.run sim ~ticks:warmup;
    Queue_sim.reset_counters sim;
    Queue_sim.run sim ~ticks:(ticks - warmup);
    sim
  in
  let sim = build ~faulty:true in
  let strat = Queue_sim.stratification_correlation sim in
  Counter.add c_strat_scaled (int_of_float ((strat +. 1.) *. 1e6));
  let baseline =
    if List.exists (function Stratification_within _ -> true | _ -> false) plan.assertions then
      Some (Queue_sim.stratification_correlation (build ~faulty:false))
    else None
  in
  let checks =
    List.map
      (function
        | Stratification_within tol ->
            let base = Option.get baseline in
            pass_fail "stratification_within"
              (Float.abs (strat -. base) <= tol)
              (Printf.sprintf "stratification %.4f vs fault-free %.4f (tolerance %g)" strat base tol)
        | a -> dispatch_fail plan ~runner:"edonkey" a)
      plan.assertions
  in
  let metrics =
    ("stratification", strat)
    :: ("mean_wait", Queue_sim.mean_wait sim)
    :: (match baseline with None -> [] | Some b -> [ ("baseline_stratification", b) ])
  in
  (checks, metrics)

let execute plan =
  match plan.workload with
  | Async { n; d; b; horizon; initiative_rate; backend; scheduler } ->
      run_async plan ~n ~d ~b ~horizon ~initiative_rate ~backend ~scheduler
  | Swarm { n; d; ticks; warmup } -> run_swarm plan ~n ~d ~ticks ~warmup
  | Edonkey { n; d; slots; ticks; warmup } -> run_edonkey plan ~n ~d ~slots ~ticks ~warmup

let run plan =
  let module Obs = Stratify_obs in
  Obs.Counter.reset_all ();
  Obs.Span.reset ();
  Obs.Control.set_enabled true;
  let checks, metrics =
    Fun.protect ~finally:(fun () -> Obs.Control.set_enabled false) (fun () -> execute plan)
  in
  Obs.Control.with_enabled true (fun () ->
      List.iter
        (fun c -> Counter.incr (if c.ok then c_checks_passed else c_checks_failed))
        checks);
  (* No Span phases are opened above, so the manifest has no wall-clock
     content: every field is a deterministic function of the plan. *)
  let manifest =
    Obs.Control.with_enabled true (fun () ->
        Manifest.capture ~kind:"scenario" ~name:plan.name ~seed:plan.seed ~scale:1.0 ~jobs:1
          ~metrics ())
  in
  { plan; passed = List.for_all (fun c -> c.ok) checks; checks; manifest }

let run_pure ?(kind = "matrix") ?git plan =
  let module Obs = Stratify_obs in
  (* Observability stays off for the whole execution, so nothing touches
     the global counter/span tables: many plans can run concurrently on
     the Exec domain pool without corrupting each other's manifests.  The
     price is a counter-free manifest — its metrics (and check verdicts)
     are thread-local values, deterministic functions of the plan. *)
  let checks, metrics = Obs.Control.with_enabled false (fun () -> execute plan) in
  let passed = List.for_all (fun c -> c.ok) checks in
  let metrics =
    metrics
    @ [
        ("checks_passed", float_of_int (List.length (List.filter (fun c -> c.ok) checks)));
        ("checks_failed", float_of_int (List.length (List.filter (fun c -> not c.ok) checks)));
        ("passed", if passed then 1. else 0.);
      ]
  in
  let manifest =
    {
      Manifest.schema_version = Manifest.schema_version;
      kind;
      name = plan.name;
      seed = plan.seed;
      scale = 1.0;
      jobs = 1;
      git = (match git with Some g -> g | None -> Manifest.git_describe ());
      cores = Domain.recommended_domain_count ();
      phases = [];
      counters = [];
      histograms = [];
      metrics;
      profile = [];
    }
  in
  { plan; passed; checks; manifest }
