(** Declarative fault-injection scenarios.

    A {e plan} is a JSON file composing a workload, a network fault
    model, a partition schedule and a list of assertions:

    {v
    {
      "name": "async-loss10-partition",
      "seed": 42,
      "workload": { "kind": "async", "n": 100, "d": 10.0,
                    "horizon": 150.0 },
      "net": { "latency": { "kind": "constant", "value": 0.05 },
               "loss": { "kind": "iid", "p": 0.1 } },
      "partitions": [ { "at": 20.0, "groups": "halves" },
                      { "at": 60.0, "groups": "heal" } ],
      "assertions": [ { "kind": "drained" },
                      { "kind": "final_disorder_below", "value": 0.05 } ]
    }
    v}

    Workloads: ["async"] runs {!Stratify_core.Async_dynamics} over an
    acceptance graph through a {!Stratify_net.Net} built from ["net"] —
    its ["backend"] selects the acceptance-graph storage (["dense"]
    Erdős–Rényi, implicit ["complete"], or ["complete_minus"] with a
    rank-spread removal set) and its ["scheduler"] the reference
    fixed-point computation (["random"]: Algorithm 1's greedy;
    ["worklist"]: Theorem 1's constructive drain — by uniqueness both
    must agree, which the ["scheduler_fixed_point"] assertion pins).
    ["swarm"] runs the {!Stratify_bittorrent.Swarm} and ["edonkey"] the
    {!Stratify_edonkey.Queue_sim} credit-queue baseline, both with
    tick-level link faults ({!Stratify_net.Net.Tick}) — for tick plans
    ["at"] is a tick index, ["net"] contributes only a per-tick loss
    rate (latency below tick granularity is meaningless), and
    stratification is compared against a fault-free twin of the same
    seed.

    Running a plan emits a {!Stratify_obs.Run_manifest} whose counters
    and metrics are deterministic functions of the plan and seed — two
    same-seed invocations of the same binary produce byte-identical
    manifests, which the [matrix-aggregate] CI job pins. *)

module Jsonx := Stratify_obs.Jsonx

type latency_spec =
  | Constant of float
  | Jitter of { base : float; spread : float }
  | Log_normal of { mu : float; sigma : float }

type loss_spec =
  | No_loss
  | Iid of float
  | Burst of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type net_spec = {
  latency : latency_spec;
  loss : loss_spec;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
}

type groups_spec =
  | Halves  (** peers [0, n/2) vs [n/2, n) *)
  | Groups of int array  (** explicit group per peer *)
  | Heal

type partition_spec = { at : float; groups : groups_spec }
(** [at] is simulated time for async workloads, a tick index for swarm
    workloads. *)

type backend_spec =
  | Dense  (** Erdős–Rényi acceptance graph of expected degree [d] (CSR storage) *)
  | Complete  (** implicit complete acceptance graph; [d] is ignored *)
  | Complete_minus of { removed : int }
      (** complete minus [removed] evenly rank-spaced peers; [d] is ignored *)

type workload =
  | Async of {
      n : int;
      d : float;
      b : int;
      horizon : float;
      initiative_rate : float;
      backend : backend_spec;
      scheduler : Stratify_core.Scheduler.policy;
          (** how the disorder reference is computed: [Random_poll] uses
              Algorithm 1's greedy construction (the historical default),
              [Worklist] drains the dirty set from the empty configuration
              — Theorem 1 says both land on the same fixed point *)
    }
  | Swarm of { n : int; d : float; ticks : int; warmup : int }
  | Edonkey of { n : int; d : float; slots : int; ticks : int; warmup : int }

type assertion =
  | Drained  (** async: in-flight messages drain within the event budget *)
  | Final_disorder_below of float  (** async: disorder vs the reference stable config *)
  | Inconsistency_below of int  (** async: residual one-sided listings after quiescing *)
  | Converged_by of { deadline : float; disorder_below : float }
      (** async: disorder already under the bound at time [deadline] *)
  | Stratification_within of float
      (** swarm/edonkey: |stratification − fault-free twin's| ≤ tolerance *)
  | Scheduler_fixed_point
      (** async: the worklist-drained fixed point equals Algorithm 1's
          greedy configuration (Theorem 1 / Tan uniqueness) *)

type t = {
  name : string;
  seed : int;
  workload : workload;
  net : net_spec;
  partitions : partition_spec list;
  assertions : assertion list;
}

val of_json : Jsonx.t -> t
(** Raises {!Jsonx.Parse_error} on missing, ill-typed or {e unknown}
    top-level fields (a typo'd ["assertions"] must not yield a plan that
    passes by asserting nothing); [Invalid_argument] on semantic
    nonsense (swarm plan with an async-only assertion, etc.). *)

val to_json : t -> Jsonx.t
(** Round-trips: [of_json (to_json p) = p] up to field defaults. *)

val load : string -> t
(** Parse a [.plan] file. *)

type check = { label : string; ok : bool; detail : string }

type result = {
  plan : t;
  passed : bool;  (** all assertions hold *)
  checks : check list;  (** one per assertion, in plan order *)
  manifest : Stratify_obs.Run_manifest.t;
}

val run : t -> result
(** Execute the scenario under {!Stratify_obs.Control} with counters
    reset, evaluate every assertion, and capture the manifest (kind
    ["scenario"]).  Deterministic: counters, metrics and check outcomes
    depend only on the plan.  Uses process-global counter state — do not
    call concurrently; the matrix runner uses {!run_pure} instead. *)

val run_pure : ?kind:string -> ?git:string -> t -> result
(** Like {!run} but with observability {e off} for the whole execution:
    the manifest (kind defaults to ["matrix"]) carries no counters,
    histograms or phases — only thread-local metrics plus
    [checks_passed]/[checks_failed]/[passed] — so many plans can execute
    concurrently on the {!Stratify_exec.Exec} domain pool.  [git]
    overrides the [git describe] stamp (resolve it once before a
    parallel map instead of forking per cell).  Deterministic: two
    same-seed runs of the same binary produce byte-identical
    manifests. *)
