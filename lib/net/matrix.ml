module Splitmix64 = Stratify_prng.Splitmix64
module Scheduler = Stratify_core.Scheduler

type workload_axis = Async_w | Swarm_w | Edonkey_w
type backend_axis = Dense_b | Complete_b | Complete_minus_b
type size_axis = Small | Medium

type fault_axis =
  | Clean
  | Loss10
  | Burst_ge
  | Jitter
  | Flapping_partition
  | Churn_burst
  | Class_extinction

type cell = {
  name : string;
  seed : int;
  workload : workload_axis;
  backend : backend_axis;
  scheduler : Scheduler.policy;
  size : size_axis;
  fault : fault_axis;
  plan : Plan.t;
}

let workload_name = function Async_w -> "async" | Swarm_w -> "swarm" | Edonkey_w -> "edonkey"

let backend_name = function
  | Dense_b -> "dense"
  | Complete_b -> "complete"
  | Complete_minus_b -> "complete_minus"

let size_name = function Small -> "sm" | Medium -> "md"

let fault_name = function
  | Clean -> "clean"
  | Loss10 -> "loss10"
  | Burst_ge -> "burst_ge"
  | Jitter -> "jitter"
  | Flapping_partition -> "flapping_partition"
  | Churn_burst -> "churn_burst"
  | Class_extinction -> "class_extinction"

let axes cell =
  [
    ("workload", workload_name cell.workload);
    ("backend", backend_name cell.backend);
    ("scheduler", Scheduler.policy_name cell.scheduler);
    ("size", size_name cell.size);
    ("fault", fault_name cell.fault);
  ]

(* ---- axis-constraint pruning ---------------------------------------- *)

(* The backend and scheduler axes parameterize the b-matching instance
   and its fixed-point reference, which only the async protocol
   exercises (the tick simulators build their own knowledge graphs and
   have no matching scheduler), and sub-tick latency jitter is
   meaningless to a tick simulator, so the jitter profile is async-only
   too.  Loss, partitions, churn and class extinction translate to every
   workload. *)
let valid ~workload ~backend ~scheduler ~fault =
  match workload with
  | Async_w -> true
  | Swarm_w | Edonkey_w ->
      backend = Dense_b && scheduler = Scheduler.Random_poll && fault <> Jitter

let workloads = [ Async_w; Swarm_w; Edonkey_w ]
let backends = [ Dense_b; Complete_b; Complete_minus_b ]
let schedulers = [ Scheduler.Random_poll; Scheduler.Worklist ]
let sizes = [ Small; Medium ]

let faults =
  [ Clean; Loss10; Burst_ge; Jitter; Flapping_partition; Churn_burst; Class_extinction ]

(* Axis order is the generation order, hence the cell order: workload
   outermost, fault innermost. *)
let combos =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun backend ->
          List.concat_map
            (fun scheduler ->
              List.concat_map
                (fun size ->
                  List.filter_map
                    (fun fault ->
                      if valid ~workload ~backend ~scheduler ~fault then
                        Some (workload, backend, scheduler, size, fault)
                      else None)
                    faults)
                sizes)
            schedulers)
        backends)
    workloads

let cardinality = List.length combos

(* ---- deterministic per-cell seeds ----------------------------------- *)

(* FNV-1a over the cell name folded into the matrix seed, finished with
   the SplitMix64 avalanche: name-keyed, so a cell keeps its seed when
   axes are added around it, and two same-seed expansions agree
   byte-for-byte. *)
let cell_seed ~matrix_seed ~name =
  let h = ref (Int64.logxor 0xcbf29ce484222325L (Int64.of_int matrix_seed)) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  Int64.to_int (Int64.logand (Splitmix64.mix !h) 0x3FFF_FFFFL)

(* ---- per-cell plan expansion ---------------------------------------- *)

let clean_net =
  {
    Plan.latency = Plan.Constant 0.05;
    loss = Plan.No_loss;
    duplicate = 0.;
    reorder = 0.;
    reorder_spread = 0.;
  }

let burst_loss = Plan.Burst { p_gb = 0.05; p_bg = 0.25; loss_good = 0.01; loss_bad = 0.5 }

let net_of_fault = function
  | Clean | Flapping_partition | Class_extinction -> clean_net
  | Loss10 -> { clean_net with Plan.loss = Plan.Iid 0.1 }
  | Burst_ge | Churn_burst -> { clean_net with Plan.loss = burst_loss }
  | Jitter ->
      {
        clean_net with
        Plan.latency = Plan.Jitter { base = 0.05; spread = 0.3 };
        loss = Plan.Iid 0.05;
      }

let halves_at t = { Plan.at = t; groups = Plan.Halves }
let heal_at t = { Plan.at = t; groups = Plan.Heal }

(* Isolate the contiguous id block [lo, hi) — ids are ranks, so a block
   is a bandwidth class. *)
let block_at t ~n ~lo ~hi =
  {
    Plan.at = t;
    groups = Plan.Groups (Array.init n (fun p -> if p >= lo && p < hi then 1 else 0));
  }

(* Partition schedules over a horizon [h] (simulated time for async
   plans, ticks for swarm/edonkey — the caller passes the right unit). *)
let partitions_of_fault fault ~n ~h =
  match fault with
  | Clean | Loss10 | Burst_ge | Jitter -> []
  | Flapping_partition ->
      [ halves_at (0.20 *. h); heal_at (0.35 *. h); halves_at (0.50 *. h); heal_at (0.65 *. h) ]
  | Churn_burst ->
      (* Correlated churn: whole contiguous rank blocks vanish and
         return, under burst loss — the Legout-style adversarial cell. *)
      [
        block_at (0.25 *. h) ~n ~lo:0 ~hi:(n / 4);
        heal_at (0.40 *. h);
        block_at (0.55 *. h) ~n ~lo:(n / 4) ~hi:(n / 2);
        heal_at (0.70 *. h);
      ]
  | Class_extinction ->
      (* The top bandwidth class disappears for good. *)
      [ block_at (0.45 *. h) ~n ~lo:0 ~hi:(max 2 (n / 8)) ]

let async_assertions fault ~n ~horizon ~scheduler =
  let base =
    match fault with
    | Clean ->
        [
          Plan.Drained;
          Plan.Converged_by { deadline = 0.8 *. horizon; disorder_below = 0.08 };
          Plan.Final_disorder_below 0.02;
          Plan.Inconsistency_below 0;
        ]
    | Loss10 -> [ Plan.Drained; Plan.Final_disorder_below 0.10; Plan.Inconsistency_below 20 ]
    | Burst_ge -> [ Plan.Drained; Plan.Final_disorder_below 0.15; Plan.Inconsistency_below 30 ]
    | Jitter ->
        [
          Plan.Drained;
          Plan.Converged_by { deadline = 0.9 *. horizon; disorder_below = 0.15 };
          Plan.Final_disorder_below 0.10;
        ]
    | Flapping_partition ->
        [ Plan.Drained; Plan.Final_disorder_below 0.15; Plan.Inconsistency_below 20 ]
    | Churn_burst -> [ Plan.Drained; Plan.Final_disorder_below 0.30; Plan.Inconsistency_below 40 ]
    | Class_extinction ->
        [ Plan.Drained; Plan.Final_disorder_below 0.60; Plan.Inconsistency_below n ]
  in
  match scheduler with
  | Scheduler.Worklist -> base @ [ Plan.Scheduler_fixed_point ]
  | Scheduler.Random_poll -> base

let stratification_tolerance = function
  | Clean -> 0.05
  | Loss10 -> 0.35
  | Burst_ge -> 0.40
  | Jitter -> 0.40
  | Flapping_partition -> 0.45
  | Churn_burst -> 0.50
  | Class_extinction -> 0.60

let expand_cell ~matrix_seed (workload, backend, scheduler, size, fault) =
  let name =
    Printf.sprintf "%s-%s-%s-%s-%s" (workload_name workload) (backend_name backend)
      (Scheduler.policy_name scheduler) (size_name size) (fault_name fault)
  in
  let seed = cell_seed ~matrix_seed ~name in
  let plan =
    match workload with
    | Async_w ->
        (* Near-complete acceptance graphs converge far more slowly than
           sparse ones (every peer has ~n acceptable mates to explore),
           so the complete backends get longer horizons and a higher
           initiative rate; with these the clean cells reach disorder 0. *)
        let n, d, b, horizon, rate =
          match (size, backend) with
          | Small, Dense_b -> (40, 8., 1, 60., 1.)
          | Medium, Dense_b -> (80, 10., 2, 80., 1.)
          | Small, (Complete_b | Complete_minus_b) -> (40, 8., 1, 150., 4.)
          | Medium, (Complete_b | Complete_minus_b) -> (80, 10., 2, 300., 6.)
        in
        let backend_spec =
          match backend with
          | Dense_b -> Plan.Dense
          | Complete_b -> Plan.Complete
          | Complete_minus_b -> Plan.Complete_minus { removed = max 1 (n / 10) }
        in
        {
          Plan.name;
          seed;
          workload =
            Plan.Async
              { n; d; b; horizon; initiative_rate = rate; backend = backend_spec; scheduler };
          net = net_of_fault fault;
          partitions = partitions_of_fault fault ~n ~h:horizon;
          assertions = async_assertions fault ~n ~horizon ~scheduler;
        }
    | Swarm_w ->
        let n, d, ticks, warmup =
          match size with Small -> (30, 10., 240, 60) | Medium -> (60, 16., 420, 120)
        in
        {
          Plan.name;
          seed;
          workload = Plan.Swarm { n; d; ticks; warmup };
          net = net_of_fault fault;
          partitions = partitions_of_fault fault ~n ~h:(float_of_int ticks);
          assertions = [ Plan.Stratification_within (stratification_tolerance fault) ];
        }
    | Edonkey_w ->
        let n, d, ticks, warmup =
          match size with Small -> (30, 10., 200, 50) | Medium -> (60, 16., 360, 90)
        in
        {
          Plan.name;
          seed;
          workload = Plan.Edonkey { n; d; slots = 4; ticks; warmup };
          net = net_of_fault fault;
          partitions = partitions_of_fault fault ~n ~h:(float_of_int ticks);
          assertions = [ Plan.Stratification_within (stratification_tolerance fault) ];
        }
  in
  { name; seed; workload; backend; scheduler; size; fault; plan }

let generate ~seed = Array.of_list (List.map (expand_cell ~matrix_seed:seed) combos)

(* ---- selection ------------------------------------------------------ *)

let shard cells ~index ~of_ =
  if of_ < 1 then invalid_arg "Matrix.shard: need of_ >= 1";
  if index < 1 || index > of_ then
    invalid_arg (Printf.sprintf "Matrix.shard: index %d outside 1..%d" index of_);
  Array.of_list (List.filteri (fun i _ -> i mod of_ = index - 1) (Array.to_list cells))

let contains s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec at i = i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1)) in
  lsub = 0 || at 0

let filter cells ~substring =
  Array.of_list (List.filter (fun c -> contains c.name substring) (Array.to_list cells))

(* ---- determinism fingerprint ---------------------------------------- *)

let checksum cells =
  let acc = ref 0xcbf29ce484222325L in
  Array.iter
    (fun c ->
      acc := Splitmix64.mix (Int64.logxor !acc (Int64.of_int c.seed));
      String.iter
        (fun ch ->
          acc := Int64.mul (Int64.logxor !acc (Int64.of_int (Char.code ch))) 0x100000001b3L)
        c.name)
    cells;
  Int64.to_int (Int64.logand (Splitmix64.mix !acc) 0x3FFF_FFFFL)
