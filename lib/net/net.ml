module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist
module Splitmix64 = Stratify_prng.Splitmix64
module Engine = Stratify_des.Engine
module Counter = Stratify_obs.Counter

type latency =
  | Constant of float
  | Jitter of { base : float; spread : float }
  | Log_normal of { mu : float; sigma : float }

type loss =
  | No_loss
  | Iid of float
  | Burst of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type faults = {
  latency : latency;
  loss : loss;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
}

let ideal ?(latency = 0.05) () =
  { latency = Constant latency; loss = No_loss; duplicate = 0.; reorder = 0.; reorder_spread = 0. }

let stationary_loss = function
  | No_loss -> 0.
  | Iid p -> Float.max 0. p
  | Burst { p_gb; p_bg; loss_good; loss_bad } ->
      if p_gb +. p_bg <= 0. then loss_good
      else ((p_gb *. loss_bad) +. (p_bg *. loss_good)) /. (p_gb +. p_bg)

type partition_event = { at : float; groups : int array option }

(* Counters are global (per-process) like every other stratify.obs probe;
   scenario runs reset them per plan. *)
let c_sent = Counter.make "net.sent"
let c_delivered = Counter.make "net.delivered"
let c_lost = Counter.make "net.lost"
let c_partitioned = Counter.make "net.partitioned"
let c_duplicated = Counter.make "net.duplicated"
let c_reordered = Counter.make "net.reordered"

type t = {
  engine : Engine.t;
  rng : Rng.t;
  faults : faults;
  (* Fault-free configurations take a precomputed branch in [send] that
     skips the whole pipeline (no RNG draws either way, so the two paths
     are trace-identical) — the refactor of Async_dynamics onto Net.send
     must stay within the bench.net dispatch-overhead budget. *)
  fast : bool;
  fast_latency : float;
  burst_bad : (int * int, bool ref) Hashtbl.t;  (* Gilbert–Elliott link states *)
  (* Packed-path fault state: one RNG advance per [burst_begin] seeds a
     native-int counter-mode base; each [send_packed] then hashes
     (base, message index, lane) for its draws instead of advancing the
     RNG.  [packed_loss] is the loss model collapsed to its stationary
     rate (Gilbert–Elliott chains would need per-link mutable state —
     hash-table lookups and allocation — on a path that must stay
     allocation-free and order-independent). *)
  packed_loss : float;
  mutable burst_base : int;
  mutable burst_idx : int;
  mutable groups : int array option;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable partitioned : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let check_prob what p =
  if p < 0. || p >= 1. then
    invalid_arg (Printf.sprintf "Net.create: %s must be in [0, 1), got %g" what p)

let validate f =
  (match f.latency with
  | Constant l -> if l < 0. then invalid_arg (Printf.sprintf "Net.create: negative latency %g" l)
  | Jitter { base; spread } ->
      if base < 0. then invalid_arg (Printf.sprintf "Net.create: negative latency base %g" base);
      if spread < 0. then invalid_arg (Printf.sprintf "Net.create: negative jitter spread %g" spread)
  | Log_normal { sigma; _ } ->
      if sigma < 0. then invalid_arg (Printf.sprintf "Net.create: negative sigma %g" sigma));
  (match f.loss with
  | No_loss -> ()
  | Iid p -> check_prob "loss" p
  | Burst { p_gb; p_bg; loss_good; loss_bad } ->
      check_prob "p_gb" p_gb;
      check_prob "p_bg" p_bg;
      check_prob "loss_good" loss_good;
      check_prob "loss_bad" loss_bad);
  check_prob "duplicate" f.duplicate;
  check_prob "reorder" f.reorder;
  if f.reorder_spread < 0. then
    invalid_arg (Printf.sprintf "Net.create: negative reorder_spread %g" f.reorder_spread)

let create ?engine rng faults =
  validate faults;
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let fast, fast_latency =
    match faults with
    | { latency = Constant l; loss = No_loss | Iid 0.; duplicate = 0.; reorder = 0.; _ } ->
        (true, l)
    | _ -> (false, 0.)
  in
  {
    engine;
    rng;
    faults;
    fast;
    fast_latency;
    burst_bad = Hashtbl.create 64;
    packed_loss = stationary_loss faults.loss;
    burst_base = 0;
    burst_idx = 0;
    groups = None;
    sent = 0;
    delivered = 0;
    lost = 0;
    partitioned = 0;
    duplicated = 0;
    reordered = 0;
  }

let engine t = t.engine
let faults t = t.faults

let set_partition_schedule t events =
  (* Validate the whole schedule before touching the engine, with an
     error naming the partition script rather than the engine internals
     — a request script that schedules a split into the past should be
     told so in its own vocabulary. *)
  let now = Engine.now t.engine in
  List.iter
    (fun ev ->
      if ev.at < now then
        invalid_arg
          (Printf.sprintf
             "Net.set_partition_schedule: partition event at %g is in the past (engine now %g)"
             ev.at now))
    events;
  List.iter
    (fun ev -> Engine.schedule_at t.engine ~time:ev.at (fun _ -> t.groups <- ev.groups))
    events

let reachable t ~src ~dst =
  match t.groups with None -> true | Some g -> g.(src) = g.(dst)

let drop_by_loss t ~src ~dst =
  match t.faults.loss with
  | No_loss -> false
  | Iid p -> p > 0. && Rng.bernoulli t.rng p
  | Burst { p_gb; p_bg; loss_good; loss_bad } ->
      let state =
        match Hashtbl.find_opt t.burst_bad (src, dst) with
        | Some s -> s
        | None ->
            let s = ref false in
            Hashtbl.replace t.burst_bad (src, dst) s;
            s
      in
      (state := if !state then not (Rng.bernoulli t.rng p_bg) else Rng.bernoulli t.rng p_gb);
      let p = if !state then loss_bad else loss_good in
      p > 0. && Rng.bernoulli t.rng p

let draw_latency t =
  match t.faults.latency with
  | Constant l -> l
  | Jitter { base; spread } -> if spread <= 0. then base else Dist.uniform t.rng ~lo:base ~hi:(base +. spread)
  | Log_normal { mu; sigma } -> Dist.lognormal t.rng ~mu ~sigma

(* One delivery attempt: latency draw, optional reordering delay, schedule.
   A scheduled message always runs, so [delivered] is counted here rather
   than in a wrapper closure at fire time — the hot fault-free path then
   hands [handler] to the engine untouched, keeping Net.send within its
   dispatch-overhead budget (see bench.net). *)
let deliver t handler =
  let delay = draw_latency t in
  let delay =
    if t.faults.reorder > 0. && Rng.bernoulli t.rng t.faults.reorder then begin
      t.reordered <- t.reordered + 1;
      Counter.incr c_reordered;
      delay +. Rng.float t.rng t.faults.reorder_spread
    end
    else delay
  in
  t.delivered <- t.delivered + 1;
  Counter.incr c_delivered;
  Engine.schedule t.engine ~delay handler

let[@inline never] send_slow t ~src ~dst handler =
  if not (reachable t ~src ~dst) then begin
    t.partitioned <- t.partitioned + 1;
    Counter.incr c_partitioned
  end
  else if drop_by_loss t ~src ~dst then begin
    t.lost <- t.lost + 1;
    Counter.incr c_lost
  end
  else begin
    deliver t handler;
    if t.faults.duplicate > 0. && Rng.bernoulli t.rng t.faults.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Counter.incr c_duplicated;
      deliver t handler
    end
  end

let[@inline always] send t ~src ~dst handler =
  t.sent <- t.sent + 1;
  Counter.incr c_sent;
  if t.fast && t.groups == None then begin
    t.delivered <- t.delivered + 1;
    Counter.incr c_delivered;
    Engine.schedule t.engine ~delay:t.fast_latency handler
  end
  else send_slow t ~src ~dst handler

let sent t = t.sent
let delivered t = t.delivered
let lost t = t.lost
let partitioned t = t.partitioned
let dropped t = t.lost + t.partitioned
let duplicated t = t.duplicated
let reordered t = t.reordered

(* ------------------------------------------------------------------ *)

module Packed = struct
  let kind_bits = 6
  let id_bits = 28
  let max_kind = (1 lsl kind_bits) - 1
  let max_id = (1 lsl id_bits) - 1

  (* kind in the low bits so handler dispatch is one [land] *)
  let[@inline] pack ~kind ~src ~dst =
    (((dst lsl id_bits) lor src) lsl kind_bits) lor kind

  let pack_checked ~kind ~src ~dst =
    if kind < 0 || kind > max_kind then
      invalid_arg (Printf.sprintf "Net.Packed.pack: kind %d outside [0, %d]" kind max_kind);
    if src < 0 || src > max_id then
      invalid_arg (Printf.sprintf "Net.Packed.pack: src %d outside [0, %d]" src max_id);
    if dst < 0 || dst > max_id then
      invalid_arg (Printf.sprintf "Net.Packed.pack: dst %d outside [0, %d]" dst max_id);
    pack ~kind ~src ~dst

  let[@inline] kind code = code land max_kind
  let[@inline] src code = (code lsr kind_bits) land max_id
  let[@inline] dst code = code lsr (kind_bits + id_bits)
end

(* Counter-mode uniforms for the packed path: a native-int splitmix-style
   finalizer (no Int64 — Int64 values box, and this runs per message).
   The multipliers are odd 62-bit constants; overflow wraps, which is
   fine for a hash. *)
let[@inline] mix63 x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x27BB2EE687B0B0FD in
  let x = x lxor (x lsr 31) in
  x

(* Uniform in [0, 1) from (burst base, message index, draw lane). *)
let[@inline] lane_u53 t lane =
  let h = mix63 (t.burst_base lxor ((t.burst_idx * 64) + lane)) in
  float_of_int (h land 0x1F_FFFF_FFFF_FFFF) *. 0x1p-53

let burst_begin t =
  t.burst_idx <- 0;
  t.burst_base <- Int64.to_int (Splitmix64.mix (Rng.int64 t.rng)) land max_int

(* One packed delivery attempt: latency and reorder draws from lanes
   [off .. off+3], then a defunctionalized schedule. *)
let deliver_packed t code off =
  let delay =
    match t.faults.latency with
    | Constant l -> l
    | Jitter { base; spread } ->
        if spread <= 0. then base else base +. (spread *. lane_u53 t off)
    | Log_normal { mu; sigma } ->
        (* Box–Muller on two lane uniforms *)
        let u1 = lane_u53 t off in
        let u1 = if u1 <= 0. then 0x1p-53 else u1 in
        let u2 = lane_u53 t (off + 1) in
        exp (mu +. (sigma *. (sqrt (-2. *. log u1) *. cos (6.28318530717958648 *. u2))))
  in
  let delay =
    if t.faults.reorder > 0. && lane_u53 t (off + 2) < t.faults.reorder then begin
      t.reordered <- t.reordered + 1;
      Counter.incr c_reordered;
      delay +. (t.faults.reorder_spread *. lane_u53 t (off + 3))
    end
    else delay
  in
  t.delivered <- t.delivered + 1;
  Counter.incr c_delivered;
  Engine.schedule_packed t.engine ~delay code

let[@inline never] send_packed_slow t ~src ~dst code =
  if not (reachable t ~src ~dst) then begin
    t.partitioned <- t.partitioned + 1;
    Counter.incr c_partitioned
  end
  else if t.packed_loss > 0. && lane_u53 t 0 < t.packed_loss then begin
    t.lost <- t.lost + 1;
    Counter.incr c_lost
  end
  else begin
    deliver_packed t code 1;
    if t.faults.duplicate > 0. && lane_u53 t 5 < t.faults.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Counter.incr c_duplicated;
      deliver_packed t code 6
    end
  end

let[@inline always] send_packed t ~src ~dst ~kind =
  t.sent <- t.sent + 1;
  Counter.incr c_sent;
  let code = Packed.pack ~kind ~src ~dst in
  if t.fast && t.groups == None then begin
    t.delivered <- t.delivered + 1;
    Counter.incr c_delivered;
    Engine.schedule_packed t.engine ~delay:t.fast_latency code
  end
  else begin
    send_packed_slow t ~src ~dst code;
    t.burst_idx <- t.burst_idx + 1
  end

(* ------------------------------------------------------------------ *)

module Tick = struct
  type event = { at_tick : int; groups : int array option }

  type t = {
    base : int64;
    loss : float;
    mutable pending : event list;  (* sorted by at_tick *)
    mutable groups : int array option;
    mutable drops : int;
  }

  let c_tick_drops = Counter.make "net.tick_drops"

  let create ~seed ~loss ?(schedule = []) () =
    if loss < 0. || loss >= 1. then
      invalid_arg (Printf.sprintf "Net.Tick.create: loss must be in [0, 1), got %g" loss);
    List.iter
      (fun ev ->
        if ev.at_tick < 0 then
          invalid_arg
            (Printf.sprintf "Net.Tick.create: partition event at negative tick %d" ev.at_tick))
      schedule;
    let pending = List.sort (fun a b -> compare a.at_tick b.at_tick) schedule in
    { base = Splitmix64.mix (Int64.of_int seed); loss; pending; groups = None; drops = 0 }

  let advance t ~tick =
    let rec go = function
      | ev :: rest when ev.at_tick <= tick ->
          t.groups <- ev.groups;
          go rest
      | rest -> t.pending <- rest
    in
    go t.pending

  let connected t ~src ~dst =
    match t.groups with None -> true | Some g -> g.(src) = g.(dst)

  (* Counter-mode draw: hash (seed, tick, src, dst) to a u53 uniform.
     No state advances, so the verdict for a link does not depend on how
     many other links were asked first. *)
  let unit_float t ~tick ~src ~dst =
    let key = Int64.of_int ((((tick * 1_000_003) + src) * 1_000_003) + dst) in
    let h = Splitmix64.mix (Int64.logxor t.base (Splitmix64.mix key)) in
    Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

  let passes t ~tick ~src ~dst =
    let ok =
      connected t ~src ~dst && (t.loss <= 0. || unit_float t ~tick ~src ~dst >= t.loss)
    in
    if not ok then begin
      t.drops <- t.drops + 1;
      Counter.incr c_tick_drops
    end;
    ok

  let drops t = t.drops

  (* Snapshot/restore (lib/serve): the whole fault state is already pure
     data — the mixed seed base, the not-yet-applied partition events,
     the currently installed groups and the drop tally. *)
  type snapshot = {
    snap_base : int64;
    snap_loss : float;
    snap_pending : event list;
    snap_groups : int array option;
    snap_drops : int;
  }

  let snapshot t =
    {
      snap_base = t.base;
      snap_loss = t.loss;
      snap_pending = t.pending;
      snap_groups = Option.map Array.copy t.groups;
      snap_drops = t.drops;
    }

  let restore s =
    if s.snap_loss < 0. || s.snap_loss >= 1. then
      invalid_arg
        (Printf.sprintf "Net.Tick.restore: loss must be in [0, 1), got %g" s.snap_loss);
    {
      base = s.snap_base;
      loss = s.snap_loss;
      pending = List.sort (fun a b -> compare a.at_tick b.at_tick) s.snap_pending;
      groups = Option.map Array.copy s.snap_groups;
      drops = s.snap_drops;
    }
end
