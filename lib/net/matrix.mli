(** Scenario-matrix generator — the cross-product of fault scenarios.

    Expands declarative axes ({e workload} × {e backend} × {e scheduler}
    × {e size} × {e fault profile}) into concrete in-memory {!Plan.t}
    values with auto-chosen assertions, pruning combinations that mean
    nothing (backend/scheduler/jitter are async-only — see {!valid}).
    Generation is deterministic: cell order is the fixed axis order and
    per-cell seeds are name-keyed hashes of the matrix seed, so the same
    matrix seed always yields the identical cell list, independent of
    shard or filter selection. *)

module Scheduler := Stratify_core.Scheduler

type workload_axis = Async_w | Swarm_w | Edonkey_w
type backend_axis = Dense_b | Complete_b | Complete_minus_b
type size_axis = Small | Medium

type fault_axis =
  | Clean
  | Loss10  (** 10% i.i.d. per-message (or per-tick-link) loss *)
  | Burst_ge  (** Gilbert–Elliott bursty loss *)
  | Jitter  (** latency jitter + light loss; async-only *)
  | Flapping_partition  (** halves split, heal, split again, heal *)
  | Churn_burst
      (** correlated churn: contiguous rank blocks vanish and return,
          under Gilbert–Elliott burst loss *)
  | Class_extinction  (** the top bandwidth class is isolated for good *)

type cell = {
  name : string;  (** ["workload-backend-scheduler-size-fault"], unique *)
  seed : int;  (** name-keyed, derived from the matrix seed *)
  workload : workload_axis;
  backend : backend_axis;
  scheduler : Scheduler.policy;
  size : size_axis;
  fault : fault_axis;
  plan : Plan.t;  (** validated, ready for {!Plan.run_pure} *)
}

val workload_name : workload_axis -> string
val backend_name : backend_axis -> string
val size_name : size_axis -> string
val fault_name : fault_axis -> string

val axes : cell -> (string * string) list
(** Axis name → value pairs, in axis order (for reports/manifests). *)

val valid :
  workload:workload_axis ->
  backend:backend_axis ->
  scheduler:Scheduler.policy ->
  fault:fault_axis ->
  bool
(** The pruning predicate: async admits everything; swarm/edonkey only
    [Dense_b] × [Random_poll] and every fault but [Jitter]. *)

val cardinality : int
(** Number of cells after pruning — a generator constant, independent of
    the matrix seed ([manifest_check matrix] cross-checks summaries
    against it). *)

val cell_seed : matrix_seed:int -> name:string -> int
(** The per-cell seed derivation (FNV-1a over the name folded into the
    matrix seed, SplitMix64-finished, masked positive).  Exposed for
    tests. *)

val generate : seed:int -> cell array
(** Expand the full pruned cross-product.  Deterministic: same [seed] →
    identical array (names, seeds, plans). *)

val shard : cell array -> index:int -> of_:int -> cell array
(** Round-robin slice [index] of [of_] (1-based): cell [i] lands in
    shard [(i mod of_) + 1].  Shards partition the input disjointly and
    exhaustively.  Raises [Invalid_argument] unless
    [1 <= index <= of_]. *)

val filter : cell array -> substring:string -> cell array
(** Cells whose name contains [substring] (order preserved). *)

val checksum : cell array -> int
(** Order-sensitive fingerprint of (name, seed) pairs — a cheap
    determinism pin for bench and tests. *)
