(** Deterministic multicore replication engine.

    Monte-Carlo experiments in this repository are embarrassingly parallel:
    [replicas] independent runs of a kernel, each driven by its own random
    substream.  This module fans those runs out over a fixed pool of
    [Domain.spawn] workers while keeping the results {e bit-identical for
    any} [jobs] {e value, including 1}.

    Determinism model: substreams are derived from the base [rng] by
    {!Stratify_prng.Rng.split}, one per {e replica} (never per worker), in
    replica-index order on the calling domain before any worker starts.
    Which domain happens to execute a replica therefore cannot influence
    its random stream; scheduling only changes wall-clock time, never
    output.  Reductions over replicas are likewise combined in a fixed
    order ([chunk]-index order), so floating-point merges are reproducible
    too.

    Workers pull chunks of replica indices from an atomic counter
    (work-stealing over chunks), which keeps the pool busy when kernel
    running times are uneven.

    Observability: when {!Stratify_obs.Control.enabled} is on, workers
    count claimed chunks ("exec.chunks") and replicas ("exec.tasks") and
    record per-chunk wall latency in the "exec.chunk_ns" log-scale
    histogram; the coordinator wraps the pool drain and the final
    reduction in the "exec.drain" / "exec.merge" spans.  None of this
    perturbs results — probes never touch the RNG streams or the merge
    order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs] defaults to. *)

val map_replicas :
  ?chunk:int ->
  jobs:int ->
  rng:Stratify_prng.Rng.t ->
  replicas:int ->
  (Stratify_prng.Rng.t -> int -> 'a) ->
  'a array
(** [map_replicas ~jobs ~rng ~replicas f] computes
    [[| f s_0 0; f s_1 1; … |]] where [s_i] is the [i]-th substream split
    off [rng].  [f] runs on up to [jobs] domains; the result array is
    identical for every [jobs ≥ 1].  [rng] is advanced ([replicas] splits)
    exactly as if the replicas had run sequentially.  [chunk] (default 1)
    is the number of consecutive replicas a worker claims at once — raise
    it for very cheap kernels.  [f] must not touch shared mutable state;
    everything the kernels in this repository need is reachable from their
    substream and replica index.

    Failure discipline: an exception raised by [f] is caught and
    recorded against its chunk index; the pool keeps draining the
    remaining chunks, and once every domain has joined, the recorded
    exception with the {e lowest} chunk index is re-raised (with its
    original backtrace) on the calling domain.  Which replica's failure
    surfaces is therefore a function of the replica indices alone —
    identical for every [jobs] value, like the results themselves. *)

val map_indexed : ?chunk:int -> jobs:int -> count:int -> (int -> 'a) -> 'a array
(** [map_indexed ~jobs ~count f] is [[| f 0; …; f (count-1) |]] computed
    on up to [jobs] domains — for kernels that derive their own seeds from
    the index (e.g. one fixed seed per parameter combination). *)

val map_array : ?chunk:int -> jobs:int -> 'a array -> ('a -> 'b) -> 'b array
(** [map_array ~jobs xs f] is [Array.map f xs] computed on up to [jobs]
    domains in work-stealing chunks — the cell-level parallel map used by
    the matrix runner.  Same failure discipline as {!map_replicas}; [f]
    must not touch shared mutable state. *)

val reduce_replicas :
  ?chunk:int ->
  jobs:int ->
  rng:Stratify_prng.Rng.t ->
  replicas:int ->
  merge:('a -> 'a -> 'a) ->
  (Stratify_prng.Rng.t -> int -> 'a) ->
  'a option
(** Chunked map-reduce without materialising all [replicas] results:
    each worker folds [merge] over its chunk left-to-right in replica
    order, and the per-chunk accumulators are merged in chunk order on the
    calling domain.  For a fixed [chunk] the merge tree — hence the result,
    even with non-associative floating-point [merge] — is independent of
    [jobs].  [None] iff [replicas = 0]. *)

val online_replicas :
  ?chunk:int ->
  jobs:int ->
  rng:Stratify_prng.Rng.t ->
  replicas:int ->
  (Stratify_prng.Rng.t -> int -> float) ->
  Stratify_stats.Online.t
(** Welford reduction of one float per replica: per-chunk
    {!Stratify_stats.Online.t} accumulators (samples added in replica
    order) merged in chunk order via {!Stratify_stats.Online.merge} — the
    jobs-independent way to aggregate a statistic over many runs. *)
