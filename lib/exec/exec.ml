module Rng = Stratify_prng.Rng
module Online = Stratify_stats.Online
module Obs = Stratify_obs

let default_jobs () = Domain.recommended_domain_count ()

(* Observability (no-ops unless [Obs.Control.enabled]).  Counters and
   the chunk-latency histogram are atomic, so workers record from their
   own domains; the drain/merge spans are opened by the coordinator
   only, which is the domain every [Exec] entry point runs on. *)
let c_chunks = Obs.Counter.make "exec.chunks"
let c_tasks = Obs.Counter.make "exec.tasks"
let h_chunk_ns = Obs.Histogram.make "exec.chunk_ns"

(* Run [work lo hi] over every chunk [lo, hi) of [0, count), on [jobs]
   domains pulling chunk indices from an atomic counter.  The calling
   domain is one of the workers, so [jobs = 1] spawns nothing. *)
let run_chunked ~chunk ~jobs ~count work =
  if count > 0 then begin
    let jobs = max 1 (min jobs count) in
    let n_chunks = (count + chunk - 1) / chunk in
    let next = Atomic.make 0 in
    let observing = Obs.Control.enabled () in
    (* Worker failures are recorded per chunk, never raised inside the
       pool: each chunk index is claimed by exactly one worker (the
       atomic counter), so the cells are written race-free, every domain
       keeps draining the remaining chunks, and after all domains have
       joined the failure with the LOWEST chunk index is re-raised with
       its backtrace.  Which domain ran a failing chunk depends on
       scheduling; the lowest failing chunk index does not — the
       surfaced exception is identical for every [jobs], like the
       results themselves. *)
    let failures = Array.make n_chunks None in
    let worker () =
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          let lo = c * chunk in
          let hi = min count (lo + chunk) in
          begin
            try
              if observing then begin
                let t0 = Unix.gettimeofday () in
                work lo hi;
                Obs.Histogram.observe h_chunk_ns
                  (int_of_float (1e9 *. (Unix.gettimeofday () -. t0)));
                Obs.Counter.incr c_chunks;
                Obs.Counter.add c_tasks (hi - lo)
              end
              else work lo hi
            with e -> failures.(c) <- Some (e, Printexc.get_raw_backtrace ())
          end;
          loop ()
        end
      in
      loop ()
    in
    if jobs = 1 then worker ()
    else begin
      let pool = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join pool
    end;
    let rec surface c =
      if c < n_chunks then begin
        match failures.(c) with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> surface (c + 1)
      end
    in
    surface 0
  end

let check_args fn ~chunk ~jobs ~count =
  if chunk <= 0 then invalid_arg (fn ^ ": chunk must be positive");
  if jobs <= 0 then invalid_arg (fn ^ ": jobs must be positive");
  if count < 0 then invalid_arg (fn ^ ": negative count")

let gather fn out =
  Array.map (function Some v -> v | None -> invalid_arg (fn ^ ": replica not computed")) out

let map_replicas ?(chunk = 1) ~jobs ~rng ~replicas f =
  check_args "Exec.map_replicas" ~chunk ~jobs ~count:replicas;
  (* One substream per replica, split sequentially here so neither [jobs]
     nor scheduling can perturb any stream. *)
  let streams = Array.init replicas (fun _ -> Rng.split rng) in
  let out = Array.make replicas None in
  Obs.Span.with_ "exec.drain" (fun () ->
      run_chunked ~chunk ~jobs ~count:replicas (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- Some (f streams.(i) i)
          done));
  gather "Exec.map_replicas" out

let map_indexed ?(chunk = 1) ~jobs ~count f =
  check_args "Exec.map_indexed" ~chunk ~jobs ~count;
  let out = Array.make count None in
  Obs.Span.with_ "exec.drain" (fun () ->
      run_chunked ~chunk ~jobs ~count (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- Some (f i)
          done));
  gather "Exec.map_indexed" out

let map_array ?(chunk = 1) ~jobs xs f =
  map_indexed ~chunk ~jobs ~count:(Array.length xs) (fun i -> f xs.(i))

let reduce_replicas ?(chunk = 1) ~jobs ~rng ~replicas ~merge map =
  check_args "Exec.reduce_replicas" ~chunk ~jobs ~count:replicas;
  let streams = Array.init replicas (fun _ -> Rng.split rng) in
  let n_chunks = (replicas + chunk - 1) / chunk in
  let accs = Array.make n_chunks None in
  Obs.Span.with_ "exec.drain" (fun () ->
      run_chunked ~chunk ~jobs ~count:replicas (fun lo hi ->
          let acc = ref (map streams.(lo) lo) in
          for i = lo + 1 to hi - 1 do
            acc := merge !acc (map streams.(i) i)
          done;
          accs.(lo / chunk) <- Some !acc));
  Obs.Span.with_ "exec.merge" (fun () ->
      Array.fold_left
        (fun acc c ->
          match acc, c with
          | None, v -> v
          | Some a, Some b -> Some (merge a b)
          | Some _, None -> acc)
        None accs)

let online_replicas ?(chunk = 1) ~jobs ~rng ~replicas f =
  check_args "Exec.online_replicas" ~chunk ~jobs ~count:replicas;
  let streams = Array.init replicas (fun _ -> Rng.split rng) in
  let n_chunks = (replicas + chunk - 1) / chunk in
  let accs = Array.init (max 1 n_chunks) (fun _ -> Online.create ()) in
  Obs.Span.with_ "exec.drain" (fun () ->
      run_chunked ~chunk ~jobs ~count:replicas (fun lo hi ->
          let acc = accs.(lo / chunk) in
          for i = lo to hi - 1 do
            Online.add acc (f streams.(i) i)
          done));
  Obs.Span.with_ "exec.merge" (fun () -> Array.fold_left Online.merge (Online.create ()) accs)
