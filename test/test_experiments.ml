(* End-to-end smoke tests: every registered experiment must run to
   completion at a tiny scale (output goes to Alcotest's capture), and the
   CSV export path must produce files.  This keeps the whole regeneration
   harness from bitrotting. *)

module E = Stratify_cli.Experiments

let tiny =
  {
    E.seed = 7;
    scale = 0.05;
    csv_dir = None;
    jobs = 2;
    manifest_dir = None;
    n_override = None;
    scheduler = Stratify_core.Scheduler.Random_poll;
    bands = 1;
    band_overlap = None;
    profile_phases = false;
    queue = Stratify_des.Engine.Heap;
  }

let experiment_cases =
  List.map
    (fun (name, _description, run) ->
      Alcotest.test_case (Printf.sprintf "experiment %s runs" name) `Slow (fun () ->
          run tiny))
    E.all

let test_registry_lookup () =
  Alcotest.(check bool) "fig1 found" true (E.find "fig1" <> None);
  Alcotest.(check bool) "unknown absent" true (E.find "fig99" = None);
  (* Registry names are unique. *)
  let names = List.map (fun (n, _, _) -> n) E.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "all figures and the table present" true
    (List.for_all
       (fun required -> List.mem required names)
       [
         "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "table1"; "fig6"; "fig7"; "fig8"; "fig9";
         "fig10"; "fig11";
       ])

let test_context_validation () =
  let expect what ctx fragment =
    match E.validate_context ctx with
    | exception Invalid_argument msg ->
        if not (Helpers.contains msg fragment) then
          Alcotest.failf "%s: error %S does not mention %S" what msg fragment
    | () -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  expect "n = 0" { tiny with E.n_override = Some 0 } "n must be >= 1";
  expect "negative n" { tiny with E.n_override = Some (-5) } "-5";
  expect "zero scale" { tiny with E.scale = 0. } "scale";
  expect "jobs = 0" { tiny with E.jobs = 0 } "jobs";
  expect "bands = 0" { tiny with E.bands = 0 } "bands";
  expect "bands > n" { tiny with E.n_override = Some 100; bands = 101 } "101 bands";
  expect "negative overlap" { tiny with E.band_overlap = Some (-1) } "overlap";
  (* The boundary cases are accepted. *)
  E.validate_context { tiny with E.n_override = Some 100; bands = 100; band_overlap = Some 0 }

let test_csv_export () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "stratify_test_csv" in
  (match E.find "fig7" with
  | Some run -> run { tiny with E.csv_dir = Some dir; jobs = 1 }
  | None -> Alcotest.fail "fig7 missing");
  let path = Filename.concat dir "fig7.csv" in
  Alcotest.(check bool) "csv written" true (Sys.file_exists path);
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check bool) "has header" true (String.length header > 0);
  Sys.remove path

let suite =
  Alcotest.test_case "registry lookup" `Quick test_registry_lookup
  :: Alcotest.test_case "context validation" `Quick test_context_validation
  :: Alcotest.test_case "csv export" `Quick test_csv_export
  :: experiment_cases
