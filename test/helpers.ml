(* Shared test utilities: deterministic RNGs, random-instance generators,
   float assertions. *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Core = Stratify_core

let rng ?(seed = 42) () = Rng.create seed

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %.3g)" what expected actual eps

let check_close_rel ?(rel = 1e-6) what expected actual =
  let scale = Float.max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. scale > rel then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel %.3g)" what expected actual rel

(* A random global-ranking instance: ER acceptance graph over n peers with
   identity ranking and budgets drawn in [0, bmax]. *)
let random_instance rng ~n ~p ~bmax =
  let graph = Gen.gnp rng ~n ~p in
  let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
  Core.Instance.create ~graph ~b ()

(* QCheck generator wrapper producing (seed, n, p, bmax) tuples; tests
   re-derive everything deterministically from the seed so shrinking
   stays meaningful. *)
let instance_params =
  QCheck.make
    ~print:(fun (seed, n, p, bmax) -> Printf.sprintf "seed=%d n=%d p=%.2f bmax=%d" seed n p bmax)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 24 in
      let* p10 = int_range 0 10 in
      let* bmax = int_range 0 4 in
      return (seed, n, float_of_int p10 /. 10., bmax))

(* Substring membership, for asserting on error-message fragments. *)
let contains s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
