(* The convergence scheduler: dirty-queue mechanics, Worklist/Random_poll
   schedule equivalence (Theorem 1's uniqueness), and the incremental
   churn repair against the from-scratch reference. *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Undirected = Stratify_graph.Undirected
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Queue mechanics                                                     *)

let test_push_pop_rank_order () =
  let s = Scheduler.create ~n:8 in
  Alcotest.(check bool) "starts empty" true (Scheduler.is_empty s);
  List.iter (Scheduler.push s) [ 3; 1; 7; 0 ];
  Alcotest.(check int) "length" 4 (Scheduler.length s);
  Alcotest.(check (list (option int)))
    "best rank first"
    [ Some 0; Some 1; Some 3; Some 7; None ]
    (List.init 5 (fun _ -> Scheduler.pop s))

let test_push_dedup () =
  let s = Scheduler.create ~n:4 in
  Scheduler.push s 2;
  Scheduler.push s 2;
  Scheduler.push s 1;
  Scheduler.push s 2;
  Alcotest.(check int) "duplicates collapse" 2 (Scheduler.length s);
  Alcotest.(check bool) "mem queued" true (Scheduler.mem s 2);
  Alcotest.(check bool) "mem unqueued" false (Scheduler.mem s 0);
  Alcotest.(check (option int)) "lowest label first" (Some 1) (Scheduler.pop s);
  Alcotest.(check bool) "popped leaves" false (Scheduler.mem s 1);
  (* Re-pushing below the cursor must rewind it: 0 pops before 2. *)
  Scheduler.push s 0;
  Alcotest.(check (list (option int)))
    "push below cursor rewinds"
    [ Some 0; Some 2; None ]
    (List.init 3 (fun _ -> Scheduler.pop s));
  (* A popped peer can re-enter. *)
  Scheduler.push s 2;
  Alcotest.(check (option int)) "re-entry" (Some 2) (Scheduler.pop s)

let test_word_boundaries () =
  (* Exercise labels straddling the 62-bit word packing. *)
  let n = 200 in
  let s = Scheduler.create ~n in
  let labels = [ 61; 62; 63; 123; 124; 199; 0 ] in
  List.iter (Scheduler.push s) labels;
  let expected = List.sort Int.compare labels in
  Alcotest.(check (list int)) "sorted drain across words" expected
    (List.filter_map (fun _ -> Scheduler.pop s) labels);
  Alcotest.(check bool) "empty after" true (Scheduler.is_empty s)

let test_clear_and_seed_all () =
  let s = Scheduler.create ~n:5 in
  Scheduler.push s 4;
  Scheduler.clear s;
  Alcotest.(check bool) "clear empties" true (Scheduler.is_empty s);
  Alcotest.(check bool) "clear resets membership" false (Scheduler.mem s 4);
  Scheduler.seed_all s;
  Alcotest.(check int) "seed_all queues everyone" 5 (Scheduler.length s);
  Alcotest.(check (list (option int)))
    "seed_all is in peer order"
    [ Some 0; Some 1; Some 2; Some 3; Some 4; None ]
    (List.init 6 (fun _ -> Scheduler.pop s))

let test_policy_names () =
  Alcotest.(check string) "random" "random" (Scheduler.policy_name Scheduler.Random_poll);
  Alcotest.(check string) "worklist" "worklist" (Scheduler.policy_name Scheduler.Worklist);
  Alcotest.(check bool) "round trip" true
    (Scheduler.policy_of_string "worklist" = Some Scheduler.Worklist
    && Scheduler.policy_of_string "random" = Some Scheduler.Random_poll
    && Scheduler.policy_of_string "nonsense" = None)

let test_drain_reaches_stability () =
  (* seed_all + drain from the empty configuration is a full worklist
     convergence: the result must be the unique stable configuration,
     certified by the empty queue. *)
  let rng = Rng.create 11 in
  let inst = Helpers.random_instance rng ~n:18 ~p:0.4 ~bmax:3 in
  let s = Scheduler.create ~n:(Instance.n inst) in
  Scheduler.seed_all s;
  let config = Config.empty inst in
  let state = Initiative.create_state inst in
  let active, attempts = Scheduler.drain s config state Initiative.Best_mate rng in
  Alcotest.(check bool) "queue drained" true (Scheduler.is_empty s);
  Alcotest.(check bool) "some attempts" true (attempts >= Instance.n inst);
  Alcotest.(check bool) "active <= attempts" true (active <= attempts);
  Alcotest.(check string) "reached the stable configuration"
    (Config.signature (Greedy.stable_config inst))
    (Config.signature config)

(* ------------------------------------------------------------------ *)
(* Schedule equivalence (Theorem 1)                                    *)

let prop_worklist_matches_random_poll =
  Helpers.qtest ~count:80 "Worklist and Random_poll reach the identical stable configuration"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let inst = Helpers.random_instance (Rng.create seed) ~n ~p ~bmax in
      let stable = Greedy.stable_config inst in
      let converge policy =
        let sim = Sim.create ~scheduler:policy inst (Rng.create (seed + 1)) in
        match Sim.run_until_stable sim ~stable ~max_units:400 with
        | None -> QCheck.Test.fail_reportf "%s did not stabilize" (Scheduler.policy_name policy)
        | Some _ -> Config.signature (Sim.config sim)
      in
      let sig_random = converge Scheduler.Random_poll in
      let sig_worklist = converge Scheduler.Worklist in
      sig_random = sig_worklist && sig_worklist = Config.signature stable)

let test_worklist_active_counts_match () =
  (* count_active_to_stability under either policy: both finite, and the
     worklist never needs more attempts than its own queue traffic. *)
  let inst = Helpers.random_instance (Rng.create 5) ~n:40 ~p:0.3 ~bmax:2 in
  let run policy =
    Sim.count_active_to_stability ~scheduler:policy inst ~strategy:Initiative.Best_mate
      (Rng.create 6) ~max_steps:1_000_000
  in
  match (run Scheduler.Random_poll, run Scheduler.Worklist) with
  | Some _, Some active_w ->
      let stable_edges = Config.edge_count (Greedy.stable_config inst) in
      Alcotest.(check bool)
        (Printf.sprintf "worklist active=%d >= stable edges=%d" active_w stable_edges)
        true
        (active_w >= stable_edges)
  | r, w ->
      Alcotest.failf "did not converge (random=%b worklist=%b)" (r <> None) (w <> None)

(* ------------------------------------------------------------------ *)
(* Churn: reference semantics and incremental repair                   *)

let test_reconfigure_keeps_present_acceptable () =
  (* After isolating one peer and masking another out, [reconfigure]
     must keep exactly the pairs that are still present and acceptable. *)
  let n = 20 and b = 2 in
  let rng = Rng.create 9 in
  let graph = Gen.gnd rng ~n ~d:6. in
  let inst = Instance.dynamic ~graph ~b:(Array.make n b) () in
  let config = Greedy.stable_config inst in
  let old_pairs = ref [] in
  Config.iter_pairs (fun p q -> old_pairs := (p, q) :: !old_pairs) config;
  let isolated = 3 and masked = 7 in
  Instance.dyn_isolate inst isolated;
  let present = Array.make n true in
  present.(masked) <- false;
  let fresh = Churn.reconfigure config inst present in
  Config.iter_pairs
    (fun p q ->
      Alcotest.(check bool) "endpoints present" true (present.(p) && present.(q));
      Alcotest.(check bool) "still acceptable" true (Instance.accepts inst p q);
      Alcotest.(check bool) "was a pair before" true
        (List.mem (p, q) !old_pairs || List.mem (q, p) !old_pairs))
    fresh;
  List.iter
    (fun (p, q) ->
      if present.(p) && present.(q) && Instance.accepts inst p q then
        Alcotest.(check bool) (Printf.sprintf "surviving pair %d-%d kept" p q) true
          (Config.mated fresh p q))
    !old_pairs

(* Rebuild a frozen instance from the live dynamic one's acceptance rows
   and the constant budget: the from-scratch reference for the
   incrementally repaired stable configuration. *)
let from_scratch_stable w ~b =
  let inst = Churn.world_instance w in
  let n = Instance.n inst in
  let adj = Array.init n (fun p -> Instance.acceptable inst p) in
  let fresh = Instance.create ~graph:(Undirected.of_adjacency_arrays adj) ~b:(Array.make n b) () in
  Config.signature (Greedy.stable_config fresh)

let churn_world_params =
  QCheck.make
    ~print:(fun (seed, n, b, events) -> Printf.sprintf "seed=%d n=%d b=%d events=%d" seed n b events)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 6 40 in
      let* b = int_range 1 3 in
      let* events = int_range 1 25 in
      return (seed, n, b, events))

let prop_incremental_repair_matches_greedy scheduler =
  Helpers.qtest ~count:60
    (Printf.sprintf "incremental stable repair = from-scratch greedy (%s)"
       (Scheduler.policy_name scheduler))
    churn_world_params
    (fun (seed, n, b, events) ->
      let rng = Rng.create seed in
      let d = 5. in
      let w = Churn.make_world ~scheduler rng ~n ~d ~b in
      let p = d /. float_of_int (n - 1) in
      for _ = 1 to events do
        Churn.churn_event rng w ~p;
        (* Interleave a few initiatives so [config] evolves too. *)
        for _ = 1 to 3 do
          Churn.initiative_step rng w Initiative.Best_mate
        done
      done;
      Config.signature (Churn.world_stable w) = from_scratch_stable w ~b)

let test_removal_and_arrival_repair () =
  (* Deterministic spot check of the two event kinds in sequence. *)
  let n = 30 and b = 1 and d = 6. in
  let rng = Rng.create 21 in
  let w = Churn.make_world rng ~n ~d ~b in
  let p = d /. float_of_int (n - 1) in
  Churn.remove_peer w 0;
  Alcotest.(check string) "repair after removing the best peer"
    (from_scratch_stable w ~b)
    (Config.signature (Churn.world_stable w));
  Churn.remove_peer w 13;
  Alcotest.(check string) "repair after a mid-rank removal"
    (from_scratch_stable w ~b)
    (Config.signature (Churn.world_stable w));
  Churn.insert_peer rng w 0 ~p;
  Alcotest.(check string) "repair after a re-arrival"
    (from_scratch_stable w ~b)
    (Config.signature (Churn.world_stable w));
  Alcotest.(check bool) "present mask tracks events" true
    (let present = Churn.world_present w in
     present.(0) && not present.(13))

let suite =
  [
    Alcotest.test_case "push/pop rank order" `Quick test_push_pop_rank_order;
    Alcotest.test_case "push dedup + cursor rewind" `Quick test_push_dedup;
    Alcotest.test_case "word-boundary labels" `Quick test_word_boundaries;
    Alcotest.test_case "clear and seed_all" `Quick test_clear_and_seed_all;
    Alcotest.test_case "policy names" `Quick test_policy_names;
    Alcotest.test_case "drain reaches stability" `Quick test_drain_reaches_stability;
    prop_worklist_matches_random_poll;
    Alcotest.test_case "active counts under both policies" `Quick
      test_worklist_active_counts_match;
    Alcotest.test_case "reconfigure keeps present+acceptable" `Quick
      test_reconfigure_keeps_present_acceptable;
    prop_incremental_repair_matches_greedy Scheduler.Random_poll;
    prop_incremental_repair_matches_greedy Scheduler.Worklist;
    Alcotest.test_case "removal/arrival incremental repair" `Quick test_removal_and_arrival_repair;
  ]
