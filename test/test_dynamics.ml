module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Series = Stratify_stats.Series
open Stratify_core

let line_instance n b = Instance.create ~graph:(Gen.path n) ~b:(Array.make n b) ()

(* ------------------------------------------------------------------ *)
(* Initiative                                                          *)

let test_perform_drops_worst () =
  let inst = Instance.create ~graph:(Gen.complete 3) ~b:[| 1; 1; 1 |] () in
  let c = Config.of_pairs inst [ (1, 2) ] in
  (* 0 and 1 block; performing must break 1-2. *)
  Initiative.perform c 0 1;
  Alcotest.(check bool) "0-1 mated" true (Config.mated c 0 1);
  Alcotest.(check bool) "1-2 broken" false (Config.mated c 1 2);
  Alcotest.(check int) "2 alone" 0 (Config.degree c 2)

let test_perform_rejects_non_blocking () =
  let inst = line_instance 4 1 in
  let c = Config.of_pairs inst [ (0, 1) ] in
  Alcotest.check_raises "not blocking" (Invalid_argument "Initiative.perform: pair does not block")
    (fun () -> Initiative.perform c 1 2)

let test_best_mate_attempt () =
  let inst = Instance.create ~graph:(Gen.complete 4) ~b:[| 1; 1; 1; 1 |] () in
  let c = Config.empty inst in
  let st = Initiative.create_state inst in
  let rng = Helpers.rng () in
  Alcotest.(check bool) "active" true (Initiative.attempt c st Initiative.Best_mate rng 3);
  (* Peer 3's best blocking mate in the empty config is peer 0. *)
  Alcotest.(check bool) "3-0 mated" true (Config.mated c 3 0);
  (* Paired with the best peer, 3 cannot improve: the next attempt is
     inactive. *)
  Alcotest.(check bool) "no further improvement" false
    (Initiative.attempt c st Initiative.Best_mate rng 3);
  (* But peer 1 blocks with 0 (0 prefers 1 to its worst mate 3) and steals
     it, orphaning 3. *)
  Alcotest.(check bool) "1 is active" true (Initiative.attempt c st Initiative.Best_mate rng 1);
  Alcotest.(check bool) "0-1 mated" true (Config.mated c 0 1);
  Alcotest.(check int) "3 orphaned" 0 (Config.degree c 3)

let test_decremental_scans_circularly () =
  let inst = Instance.create ~graph:(Gen.complete 3) ~b:[| 1; 1; 1 |] () in
  let c = Config.empty inst in
  let st = Initiative.create_state inst in
  let rng = Helpers.rng () in
  (* First decremental initiative of peer 2 starts at list position 0 ->
     proposes to 0. *)
  Alcotest.(check bool) "active" true (Initiative.attempt c st Initiative.Decremental rng 2);
  Alcotest.(check bool) "2-0" true (Config.mated c 2 0);
  ignore (Config.drop_worst c 2);
  (* Cursor advanced past 0; next scan starts at 1. *)
  Alcotest.(check bool) "active 2" true (Initiative.attempt c st Initiative.Decremental rng 2);
  Alcotest.(check bool) "2-1 now" true (Config.mated c 2 1)

let test_random_initiative_eventually_connects () =
  let inst = line_instance 2 1 in
  let c = Config.empty inst in
  let st = Initiative.create_state inst in
  let rng = Helpers.rng () in
  let active = ref false in
  for _ = 1 to 20 do
    if (not !active) && Initiative.attempt c st Initiative.Random rng 0 then active := true
  done;
  Alcotest.(check bool) "eventually active" true !active;
  Alcotest.(check bool) "stable now" true (Blocking.is_stable c)

(* ------------------------------------------------------------------ *)
(* Disorder                                                            *)

let test_disorder_identity () =
  let inst = line_instance 6 1 in
  let c = Greedy.stable_config inst in
  Helpers.check_close "self distance" 0. (Disorder.distance c c)

let test_disorder_normalisation () =
  (* Paper's normalisation: perfect matching vs empty = 1. *)
  let n = 8 in
  let inst = Instance.create ~graph:(Gen.complete n) ~b:(Array.make n 1) () in
  let pairs = List.init (n / 2) (fun k -> (2 * k, (2 * k) + 1)) in
  let perfect = Config.of_pairs inst pairs in
  let empty = Config.empty inst in
  Helpers.check_close "empty vs perfect" 1. (Disorder.distance perfect empty);
  Helpers.check_close "symmetric" (Disorder.distance perfect empty)
    (Disorder.distance empty perfect)

let test_disorder_normalisation_any_perfect_matching () =
  (* The identity holds for any perfect matching, not just adjacent pairs. *)
  let n = 6 in
  let inst = Instance.create ~graph:(Gen.complete n) ~b:(Array.make n 1) () in
  let crossed = Config.of_pairs inst [ (0, 3); (1, 4); (2, 5) ] in
  Helpers.check_close "crossed vs empty" 1. (Disorder.distance crossed (Config.empty inst))

let test_disorder_on_subset () =
  let n = 4 in
  let inst = Instance.create ~graph:(Gen.complete n) ~b:(Array.make n 1) () in
  let c1 = Config.of_pairs inst [ (0, 1) ] in
  let c2 = Config.empty inst in
  let only_23 = [| false; false; true; true |] in
  Helpers.check_close "masked peers identical" 0. (Disorder.distance_on ~present:only_23 c1 c2);
  let only_01 = [| true; true; false; false |] in
  Alcotest.(check bool) "unmasked difference seen" true
    (Disorder.distance_on ~present:only_01 c1 c2 > 0.)

(* ------------------------------------------------------------------ *)
(* Theorem 1                                                           *)

let prop_active_initiatives_never_repeat =
  Helpers.qtest ~count:100 "active initiatives never revisit a configuration (Thm 1)"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      let c = Config.empty inst in
      let st = Initiative.create_state inst in
      let seen = Hashtbl.create 64 in
      Hashtbl.add seen (Config.signature c) ();
      let steps = ref 0 in
      let ok = ref true in
      (* Random peers, random strategy mix; only active initiatives change
         the signature. *)
      let strategies = [| Initiative.Best_mate; Initiative.Decremental; Initiative.Random |] in
      while !ok && !steps < 50 * (n + 1) && not (Blocking.is_stable c) do
        incr steps;
        let p' = Rng.int rng n in
        let strat = strategies.(Rng.int rng 3) in
        if Initiative.attempt c st strat rng p' then begin
          let s = Config.signature c in
          if Hashtbl.mem seen s then ok := false else Hashtbl.add seen s ()
        end
      done;
      !ok && Blocking.is_stable c)

let prop_converges_to_greedy_config =
  Helpers.qtest ~count:100 "initiative dynamics converge to Algorithm 1's configuration"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      let stable = Greedy.stable_config inst in
      let sim = Sim.create inst rng in
      match Sim.run_until_stable sim ~stable ~max_units:200 with
      | Some _ -> true
      | None -> false)

let prop_incremental_stability_matches_naive =
  (* Regression for the O(n)-scan-per-step bug: [run_until_stable]'s
     incremental divergence tracker must report exactly the step count of
     the naive check-[Config.equal]-before-every-step loop it replaced. *)
  Helpers.qtest ~count:60 "incremental stability detection matches naive scan"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      let stable = Greedy.stable_config inst in
      let max_units = 50 in
      let naive =
        let sim = Sim.create inst (Rng.create (seed + 1)) in
        let limit = max_units * Instance.n inst in
        let rec loop () =
          if Config.equal (Sim.config sim) stable then Some (Sim.steps sim)
          else if Sim.steps sim >= limit then None
          else begin
            ignore (Sim.step sim);
            loop ()
          end
        in
        loop ()
      in
      let incremental =
        let sim = Sim.create inst (Rng.create (seed + 1)) in
        Sim.run_until_stable sim ~stable ~max_units
      in
      naive = incremental)

let test_run_until_stable_timeout () =
  (* A target the dynamics can never reach: both implementations must agree
     on [None] after exactly [max_units] base units. *)
  let inst = line_instance 6 1 in
  (* Unreachable target: 0-1 is not the stable edge set of the path. *)
  let unreachable = Config.of_pairs inst [ (1, 2); (3, 4) ] in
  let sim = Sim.create inst (Helpers.rng ~seed:5 ()) in
  Alcotest.(check bool) "times out" true
    (Sim.run_until_stable sim ~stable:unreachable ~max_units:3 = None);
  Alcotest.(check int) "stopped after max_units" 18 (Sim.steps sim)

let test_theorem1_bound_achievable () =
  (* On a complete graph the best-mate schedule realises B/2 connections;
     active count should be modest (>= edge count of stable config). *)
  let n = 20 in
  let inst = Instance.create ~graph:(Gen.complete n) ~b:(Array.make n 2) () in
  let rng = Helpers.rng ~seed:3 () in
  match Sim.count_active_to_stability inst ~strategy:Initiative.Best_mate rng ~max_steps:100_000 with
  | None -> Alcotest.fail "did not converge"
  | Some active ->
      let stable_edges = Config.edge_count (Greedy.stable_config inst) in
      Alcotest.(check bool)
        (Printf.sprintf "active=%d >= stable edges=%d" active stable_edges)
        true (active >= stable_edges);
      Alcotest.(check bool) "and within a small multiple" true (active <= 8 * stable_edges)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)

let test_sim_trajectory_reaches_zero () =
  let rng = Helpers.rng ~seed:9 () in
  let graph = Gen.gnd rng ~n:100 ~d:10. in
  let inst = Instance.create ~graph ~b:(Array.make 100 1) () in
  let stable = Greedy.stable_config inst in
  let sim = Sim.create inst rng in
  let traj = Sim.disorder_trajectory sim ~stable ~units:15 ~samples_per_unit:2 in
  Alcotest.(check bool) "starts disordered" true (snd traj.Series.points.(0) > 0.);
  Helpers.check_close "ends stable" 0. (Series.final_value traj);
  (* Monotone trend: the last quarter is below the first quarter. *)
  let quarter = Array.length traj.Series.points / 4 in
  let avg lo hi =
    let s = ref 0. in
    for i = lo to hi - 1 do
      s := !s +. snd traj.Series.points.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  Alcotest.(check bool) "decreasing trend" true
    (avg (3 * quarter) (4 * quarter) < avg 0 quarter)

let test_sim_counters () =
  let inst = line_instance 10 1 in
  let rng = Helpers.rng () in
  let sim = Sim.create inst rng in
  Sim.run_units sim 3;
  Alcotest.(check int) "steps" 30 (Sim.steps sim);
  Alcotest.(check bool) "some active" true (Sim.active_count sim > 0);
  Alcotest.(check bool) "active <= steps" true (Sim.active_count sim <= Sim.steps sim)

let test_sim_converges_under_all_strategies () =
  List.iter
    (fun strategy ->
      let rng = Helpers.rng ~seed:11 () in
      let graph = Gen.gnd rng ~n:60 ~d:8. in
      let inst = Instance.create ~graph ~b:(Array.make 60 1) () in
      let stable = Greedy.stable_config inst in
      let sim = Sim.create ~strategy inst rng in
      match Sim.run_until_stable sim ~stable ~max_units:500 with
      | Some _ -> ()
      | None ->
          Alcotest.failf "strategy %s did not converge" (Initiative.strategy_name strategy))
    [ Initiative.Best_mate; Initiative.Decremental; Initiative.Random ]

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)

let test_removal_recovery () =
  let rng = Helpers.rng ~seed:17 () in
  let traj =
    Churn.removal_trajectory rng ~n:200 ~d:10. ~b:1 ~remove:0 ~units:12 ~samples_per_unit:2
  in
  (* The system starts near the old stable config: small but non-trivial
     disorder, and recovers to ~0 within d base units. *)
  Alcotest.(check bool) "initial disorder small" true (snd traj.Series.points.(0) < 0.1);
  Helpers.check_close ~eps:1e-9 "recovered" 0. (Series.final_value traj)

let test_removing_good_peer_hurts_more () =
  (* Domino effect: averaged over seeds, removing the best peer creates at
     least as much disruption as removing the worst. *)
  let total_area remove =
    let acc = ref 0. in
    for seed = 0 to 14 do
      let rng = Rng.create (1000 + seed) in
      let traj =
        Churn.removal_trajectory rng ~n:150 ~d:8. ~b:1 ~remove ~units:8 ~samples_per_unit:2
      in
      Array.iter (fun (_, y) -> acc := !acc +. y) traj.Series.points
    done;
    !acc
  in
  let best = total_area 0 and worst = total_area 149 in
  Alcotest.(check bool)
    (Printf.sprintf "best-peer removal (%.4f) >= worst-peer removal (%.4f)" best worst)
    true (best >= worst)

let test_churn_zero_rate_converges () =
  let rng = Helpers.rng ~seed:23 () in
  let params =
    {
      Churn.n = 120;
      d = 10.;
      b = 1;
      rate = 0.;
      units = 15;
      samples_per_unit = 2;
      strategy = Initiative.Best_mate;
      scheduler = Scheduler.Random_poll;
    }
  in
  let traj = Churn.run rng params in
  Helpers.check_close "no churn converges" 0. (Series.final_value traj)

let test_churn_disorder_grows_with_rate () =
  let tail rate seed =
    let rng = Rng.create seed in
    let params =
      {
        Churn.n = 120;
        d = 10.;
        b = 1;
        rate;
        units = 16;
        samples_per_unit = 2;
        strategy = Initiative.Best_mate;
        scheduler = Scheduler.Random_poll;
      }
    in
    Churn.mean_disorder_tail (Churn.run rng params) ~skip_units:8.
  in
  let avg rate = (tail rate 1 +. tail rate 2 +. tail rate 3) /. 3. in
  let low = avg 0.003 and high = avg 0.03 in
  Alcotest.(check bool)
    (Printf.sprintf "plateau grows with churn (%.4f < %.4f)" low high)
    true (low < high);
  Alcotest.(check bool) "disorder stays under control" true (high < 0.5)

let test_churn_keeps_population () =
  (* A long churn run must not crash nor leave the system inconsistent;
     final disorder is finite and in [0, 1.5]. *)
  let rng = Helpers.rng ~seed:31 () in
  let params =
    {
      Churn.n = 80;
      d = 6.;
      b = 2;
      rate = 0.05;
      units = 10;
      samples_per_unit = 1;
      strategy = Initiative.Decremental;
      scheduler = Scheduler.Random_poll;
    }
  in
  let traj = Churn.run rng params in
  Array.iter
    (fun (_, y) ->
      Alcotest.(check bool) "finite" true (Float.is_finite y);
      Alcotest.(check bool) "bounded" true (y >= 0. && y < 1.5))
    traj.Series.points

let suite =
  [
    Alcotest.test_case "perform drops worst mates" `Quick test_perform_drops_worst;
    Alcotest.test_case "perform rejects non-blocking pairs" `Quick test_perform_rejects_non_blocking;
    Alcotest.test_case "best-mate attempt" `Quick test_best_mate_attempt;
    Alcotest.test_case "decremental circular scan" `Quick test_decremental_scans_circularly;
    Alcotest.test_case "random initiative" `Quick test_random_initiative_eventually_connects;
    Alcotest.test_case "disorder of identical configs" `Quick test_disorder_identity;
    Alcotest.test_case "disorder normalisation (paper)" `Quick test_disorder_normalisation;
    Alcotest.test_case "normalisation holds for any perfect matching" `Quick
      test_disorder_normalisation_any_perfect_matching;
    Alcotest.test_case "disorder on peer subsets" `Quick test_disorder_on_subset;
    prop_active_initiatives_never_repeat;
    prop_converges_to_greedy_config;
    prop_incremental_stability_matches_naive;
    Alcotest.test_case "run_until_stable timeout" `Quick test_run_until_stable_timeout;
    Alcotest.test_case "Theorem 1 bound scale" `Quick test_theorem1_bound_achievable;
    Alcotest.test_case "trajectory decreases to zero" `Slow test_sim_trajectory_reaches_zero;
    Alcotest.test_case "sim counters" `Quick test_sim_counters;
    Alcotest.test_case "all strategies converge" `Slow test_sim_converges_under_all_strategies;
    Alcotest.test_case "removal recovery (Fig 2)" `Slow test_removal_recovery;
    Alcotest.test_case "good-peer removal hurts more" `Slow test_removing_good_peer_hurts_more;
    Alcotest.test_case "zero churn converges (Fig 3)" `Slow test_churn_zero_rate_converges;
    Alcotest.test_case "disorder grows with churn rate (Fig 3)" `Slow
      test_churn_disorder_grows_with_rate;
    Alcotest.test_case "long churn run stays consistent" `Slow test_churn_keeps_population;
  ]
