module Rng = Stratify_prng.Rng
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
open Stratify_bittorrent

(* ------------------------------------------------------------------ *)
(* Rate                                                                *)

let test_rate_window () =
  let r = Rate.create ~window:5 in
  Helpers.check_close "empty" 0. (Rate.rate r ~tick:0);
  Rate.record r ~tick:0 10.;
  Rate.record r ~tick:1 20.;
  Helpers.check_close "avg over window" 6. (Rate.rate r ~tick:1);
  (* Ticks 0 and 1 age out of the window ending at tick 6. *)
  Helpers.check_close "aged out (0)" 4. (Rate.rate r ~tick:5);
  Helpers.check_close "aged out (both)" 0. (Rate.rate r ~tick:8);
  Helpers.check_close "total persists" 30. (Rate.total r)

let test_rate_same_tick_accumulates () =
  let r = Rate.create ~window:4 in
  Rate.record r ~tick:3 1.;
  Rate.record r ~tick:3 2.;
  Helpers.check_close "accumulated" 0.75 (Rate.rate r ~tick:3)

let test_rate_bucket_reuse () =
  let r = Rate.create ~window:2 in
  Rate.record r ~tick:0 5.;
  Rate.record r ~tick:2 7.;
  (* tick 2 reuses the slot of tick 0; old value must not leak. *)
  Helpers.check_close "no leak" 3.5 (Rate.rate r ~tick:2)

(* ------------------------------------------------------------------ *)
(* Piece                                                               *)

let test_piece_bitfield () =
  let f = Piece.create ~pieces:20 in
  Alcotest.(check int) "empty" 0 (Piece.count f);
  Alcotest.(check bool) "add" true (Piece.add f 7);
  Alcotest.(check bool) "add dup" false (Piece.add f 7);
  Alcotest.(check bool) "has" true (Piece.has f 7);
  Alcotest.(check bool) "not has" false (Piece.has f 8);
  Alcotest.(check int) "count" 1 (Piece.count f);
  Piece.fill_all f;
  Alcotest.(check bool) "complete" true (Piece.is_complete f);
  Alcotest.(check int) "full count" 20 (Piece.count f)

let test_piece_random_fill () =
  let rng = Helpers.rng () in
  let f = Piece.create ~pieces:2000 in
  Piece.random_fill f rng ~fraction:0.5;
  let c = Piece.count f in
  Alcotest.(check bool) (Printf.sprintf "half-ish (%d)" c) true (c > 880 && c < 1120)

let test_rarest_first () =
  let mk held =
    let f = Piece.create ~pieces:4 in
    List.iter (fun i -> ignore (Piece.add f i)) held;
    f
  in
  let fields = [| mk [ 0; 1; 2 ]; mk [ 0; 1 ]; mk [ 0 ] |] in
  let counts = Piece.Availability.of_swarm ~pieces:4 fields in
  (* availability: piece0=3, piece1=2, piece2=1, piece3=0 *)
  (* receiver has only piece 0; sender has 0,1,2: rarest wanted = 2. *)
  (match Piece.Availability.rarest_wanted counts ~have:fields.(2) ~from_:fields.(0) with
  | Some p -> Alcotest.(check int) "rarest" 2 p
  | None -> Alcotest.fail "expected a wanted piece");
  (* sender with subset of receiver: not interested. *)
  Alcotest.(check bool) "not interested" true
    (Piece.Availability.rarest_wanted counts ~have:fields.(0) ~from_:fields.(2) = None)

(* ------------------------------------------------------------------ *)
(* Choker                                                              *)

let test_choker_top_slots () =
  let rates = [ (4, 1.); (2, 9.); (7, 5.); (1, 9.) ] in
  let d = Choker.rechoke ~rates ~slots:2 ~current_optimistic:None () in
  (* ties broken by id: 1 before 2 *)
  Alcotest.(check (list int)) "top2" [ 1; 2 ] d.Choker.unchoked;
  Alcotest.(check (option int)) "no optimistic" None d.Choker.optimistic

let test_choker_keeps_valid_optimistic () =
  let rates = [ (1, 5.); (2, 3.); (3, 1.) ] in
  let d = Choker.rechoke ~rates ~slots:1 ~current_optimistic:(Some 3) () in
  Alcotest.(check (list int)) "winner" [ 1 ] d.Choker.unchoked;
  Alcotest.(check (option int)) "kept" (Some 3) d.Choker.optimistic;
  (* Optimistic that became a TFT winner is dropped from the slot. *)
  let d2 = Choker.rechoke ~rates ~slots:1 ~current_optimistic:(Some 1) () in
  Alcotest.(check (option int)) "absorbed" None d2.Choker.optimistic;
  (* Optimistic no longer a neighbour is dropped. *)
  let d3 = Choker.rechoke ~rates ~slots:1 ~current_optimistic:(Some 99) () in
  Alcotest.(check (option int)) "gone" None d3.Choker.optimistic

let test_rotate_optimistic () =
  let rng = Helpers.rng () in
  (match Choker.rotate_optimistic rng ~candidates:[ 1; 2; 3 ] ~exclude:[ 1; 2 ] with
  | Some 3 -> ()
  | other ->
      Alcotest.failf "expected Some 3, got %s"
        (match other with None -> "None" | Some x -> string_of_int x));
  Alcotest.(check (option int)) "exhausted" None
    (Choker.rotate_optimistic rng ~candidates:[ 1 ] ~exclude:[ 1 ])

(* ------------------------------------------------------------------ *)
(* Swarm: bandwidth-only mode                                          *)

let heterogeneous_swarm ?(n = 120) ?(seed = 5) ?(ticks = 400) () =
  let rng = Rng.create seed in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let params = { (Swarm.default_params ~uploads) with Swarm.d = 20. } in
  let swarm = Swarm.create rng params in
  Swarm.run swarm ~ticks:(ticks / 2);
  Swarm.reset_counters swarm;
  Swarm.run swarm ~ticks:(ticks / 2);
  swarm

let test_swarm_conservation () =
  let swarm = heterogeneous_swarm () in
  let up = ref 0. and down = ref 0. in
  for i = 0 to Swarm.size swarm - 1 do
    up := !up +. (Swarm.peer swarm i).Peer.uploaded;
    down := !down +. (Swarm.peer swarm i).Peer.downloaded
  done;
  Helpers.check_close_rel ~rel:1e-9 "conservation" !up !down;
  Alcotest.(check bool) "data flowed" true (!up > 0.)

let test_swarm_tft_reciprocity () =
  let swarm = heterogeneous_swarm () in
  let r = Metrics.reciprocity swarm in
  (* The roaming optimistic slot keeps perturbing the matching, so full
     reciprocity is never reached; random unchoking would give ~b0/n. *)
  Alcotest.(check bool) (Printf.sprintf "reciprocity %.2f high" r) true (r > 0.4)

let test_swarm_stratification_emerges () =
  let swarm = heterogeneous_swarm ~n:150 ~ticks:1200 () in
  let c = Metrics.stratification_correlation swarm in
  (* Uncorrelated partner choice would give c ~ 0. *)
  Alcotest.(check bool) (Printf.sprintf "correlation %.2f" c) true (c > 0.4)

let test_swarm_share_ratio_shape () =
  (* Fig 11's gross shape on TFT traffic (what the §6 model predicts):
     the very best peers give more than they get because every potential
     partner is slower; the very worst get more than they give. *)
  let swarm = heterogeneous_swarm ~n:150 ~ticks:1200 () in
  let ratios = Metrics.tft_share_ratios swarm in
  let n = Array.length ratios in
  let mean lo hi =
    let acc = ref 0. in
    for i = lo to hi - 1 do
      acc := !acc +. ratios.(i)
    done;
    !acc /. float_of_int (hi - lo)
  in
  let best = mean 0 5 and worst = mean (n - 5) n in
  Alcotest.(check bool)
    (Printf.sprintf "top-5 %.2f < 1 < bottom-5 %.2f" best worst)
    true
    (best < 1. && worst > 1.)

let test_swarm_partner_rank_offset_small () =
  (* Stratification: TFT partners are close in rank compared to random
     partners (expected offset n/3 for uniform choice). *)
  let n = 150 in
  let swarm = heterogeneous_swarm ~n ~ticks:600 () in
  let ranks = Array.init n (fun i -> i) in
  let offset = Metrics.mean_partner_rank_offset swarm ~ranks in
  (* Uniform random partners would average n/3 = 50. *)
  Alcotest.(check bool)
    (Printf.sprintf "offset %.1f << %d" offset (n / 3))
    true
    (offset < float_of_int n /. 4.)

let test_swarm_determinism () =
  let run seed =
    let swarm = heterogeneous_swarm ~seed () in
    Metrics.share_ratios swarm
  in
  Alcotest.(check bool) "same seed same result" true (run 5 = run 5);
  Alcotest.(check bool) "different seed differs" true (run 5 <> run 6)

let test_swarm_validation () =
  let rng = Helpers.rng () in
  Alcotest.check_raises "slot mismatch" (Invalid_argument "Swarm.create: |slots| <> |uploads|")
    (fun () ->
      ignore
        (Swarm.create rng
           { (Swarm.default_params ~uploads:(Array.make 4 1.)) with Swarm.slots = [| 3 |] }));
  Alcotest.check_raises "too small" (Invalid_argument "Swarm.create: need at least two peers")
    (fun () -> ignore (Swarm.create rng (Swarm.default_params ~uploads:[| 1. |])))

let test_download_caps_respected () =
  (* Asymmetric links: inbound traffic never exceeds the download cap,
     and conservation degrades only by the throttled surplus. *)
  let n = 60 in
  let rng = Rng.create 19 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let caps = Array.map (fun u -> 2.5 *. u) uploads in
  let params =
    { (Swarm.default_params ~uploads) with Swarm.d = 20.; downloads = Some caps }
  in
  let swarm = Swarm.create rng params in
  let ticks = 400 in
  Swarm.run swarm ~ticks;
  for i = 0 to n - 1 do
    let inflow = (Swarm.peer swarm i).Peer.downloaded /. float_of_int ticks in
    Alcotest.(check bool)
      (Printf.sprintf "peer %d inflow %.1f <= cap %.1f" i inflow caps.(i))
      true
      (inflow <= caps.(i) +. 1e-6)
  done;
  (* Counters record delivered traffic, so conservation is exact... *)
  let total caps_mult =
    let rng = Rng.create 19 in
    let caps = Array.map (fun u -> caps_mult *. u) uploads in
    let params =
      { (Swarm.default_params ~uploads) with Swarm.d = 20.; downloads = Some caps }
    in
    let swarm = Swarm.create rng params in
    Swarm.run swarm ~ticks;
    let up = ref 0. and down = ref 0. in
    for i = 0 to n - 1 do
      up := !up +. (Swarm.peer swarm i).Peer.uploaded;
      down := !down +. (Swarm.peer swarm i).Peer.downloaded
    done;
    Helpers.check_close_rel ~rel:1e-9 "conservation of delivered traffic" !up !down;
    !down
  in
  (* ...and throttling shows as delivered volume growing with the cap. *)
  Alcotest.(check bool) "tighter caps deliver less" true (total 1.2 < total 5.0)

let test_no_caps_matches_old_behaviour () =
  let run downloads =
    let rng = Rng.create 20 in
    let uploads = Array.make 30 10. in
    let params = { (Swarm.default_params ~uploads) with Swarm.d = 10.; downloads } in
    let swarm = Swarm.create rng params in
    Swarm.run swarm ~ticks:100;
    Metrics.share_ratios swarm
  in
  (* An infinite cap must not change anything. *)
  Alcotest.(check bool) "identical" true
    (run None = run (Some (Array.make 30 infinity)))

(* ------------------------------------------------------------------ *)
(* Swarm: piece mode                                                   *)

let piece_swarm ~seeds ~ticks =
  let rng = Rng.create 11 in
  let n = 60 in
  let uploads = Array.make n 16. in
  let params =
    {
      (Swarm.default_params ~uploads) with
      Swarm.d = 15.;
      piece = Some { Swarm.pieces = 50; piece_size = 8.; init_fraction = 0.5; seeds };
    }
  in
  let swarm = Swarm.create rng params in
  Swarm.run swarm ~ticks;
  swarm

let test_piece_mode_progress () =
  let swarm = piece_swarm ~seeds:2 ~ticks:400 in
  let completed = Swarm.completed swarm in
  Alcotest.(check bool) (Printf.sprintf "completions %d" completed) true (completed > 30);
  (* Everyone still holds a valid bitfield and piece counts only grew. *)
  for i = 0 to Swarm.size swarm - 1 do
    match (Swarm.peer swarm i).Peer.field with
    | Some f -> Alcotest.(check bool) "holds pieces" true (Piece.count f >= 1)
    | None -> Alcotest.fail "expected piece mode"
  done

let test_piece_mode_interest_semantics () =
  let swarm = piece_swarm ~seeds:1 ~ticks:0 in
  (* Nobody is interested in a peer holding nothing they lack; everyone
     lacking something is interested in the seed (peer 0). *)
  let interested_in_seed = ref 0 in
  for q = 1 to Swarm.size swarm - 1 do
    match (Swarm.peer swarm q).Peer.field with
    | Some f ->
        if not (Piece.is_complete f) then begin
          if Swarm.interested swarm q 0 then incr interested_in_seed
        end
    | None -> ()
  done;
  Alcotest.(check bool) "most incomplete peers want the seed" true
    (!interested_in_seed > (Swarm.size swarm / 2))

let test_post_flashcrowd_assumption () =
  (* §6's premise: once pieces are well spread, availability barely gates
     throughput — aggregate download in piece mode is close to
     bandwidth-only mode. *)
  let n = 60 in
  let uploads = Array.make n 16. in
  let run piece =
    let rng = Rng.create 21 in
    let params = { (Swarm.default_params ~uploads) with Swarm.d = 15.; piece } in
    let swarm = Swarm.create rng params in
    Swarm.run swarm ~ticks:150;
    let total = ref 0. in
    for i = 0 to n - 1 do
      total := !total +. (Swarm.peer swarm i).Peer.downloaded
    done;
    !total
  in
  let bw_only = run None in
  (* A file large enough that nobody completes inside the window: with
     completion, interest vanishes and throughput trivially collapses. *)
  let with_pieces =
    run (Some { Swarm.pieces = 4000; piece_size = 4.; init_fraction = 0.5; seeds = 2 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "piece throughput %.0f within 10%% of bw-only %.0f" with_pieces bw_only)
    true
    (with_pieces > 0.9 *. bw_only)

let suite =
  [
    Alcotest.test_case "rate window semantics" `Quick test_rate_window;
    Alcotest.test_case "rate same-tick accumulation" `Quick test_rate_same_tick_accumulates;
    Alcotest.test_case "rate bucket reuse" `Quick test_rate_bucket_reuse;
    Alcotest.test_case "piece bitfield" `Quick test_piece_bitfield;
    Alcotest.test_case "piece random fill" `Quick test_piece_random_fill;
    Alcotest.test_case "rarest-first selection" `Quick test_rarest_first;
    Alcotest.test_case "choker top slots" `Quick test_choker_top_slots;
    Alcotest.test_case "choker optimistic lifecycle" `Quick test_choker_keeps_valid_optimistic;
    Alcotest.test_case "optimistic rotation" `Quick test_rotate_optimistic;
    Alcotest.test_case "conservation of data" `Slow test_swarm_conservation;
    Alcotest.test_case "TFT reciprocity" `Slow test_swarm_tft_reciprocity;
    Alcotest.test_case "stratification emerges" `Slow test_swarm_stratification_emerges;
    Alcotest.test_case "share-ratio shape (Fig 11, simulated)" `Slow test_swarm_share_ratio_shape;
    Alcotest.test_case "partner rank offset small" `Slow test_swarm_partner_rank_offset_small;
    Alcotest.test_case "simulator determinism" `Slow test_swarm_determinism;
    Alcotest.test_case "swarm validation" `Quick test_swarm_validation;
    Alcotest.test_case "download caps respected" `Slow test_download_caps_respected;
    Alcotest.test_case "no caps = unlimited caps" `Slow test_no_caps_matches_old_behaviour;
    Alcotest.test_case "piece mode progress" `Slow test_piece_mode_progress;
    Alcotest.test_case "piece-mode interest semantics" `Quick test_piece_mode_interest_semantics;
    Alcotest.test_case "post-flash-crowd assumption" `Slow test_post_flashcrowd_assumption;
  ]
