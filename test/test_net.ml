(* Tests for the stratify.net fault-injection layer and the declarative
   scenario harness. *)

module Rng = Stratify_prng.Rng
module Engine = Stratify_des.Engine
module Net = Stratify_net.Net
module Plan = Stratify_net_plan.Plan
module Obs = Stratify_obs
module Bt = Stratify_bittorrent
open Stratify_core

let ideal_faults latency =
  { (Net.ideal ~latency ()) with Net.loss = Net.No_loss }

let with_loss latency loss =
  { Net.latency = Net.Constant latency; loss; duplicate = 0.; reorder = 0.; reorder_spread = 0. }

(* ------------------------------------------------------------------ *)
(* Delivery pipeline                                                   *)

let test_ideal_delivery () =
  let net = Net.create (Helpers.rng ()) (ideal_faults 0.5) in
  let log = ref [] in
  for k = 0 to 4 do
    Net.send net ~src:0 ~dst:1 (fun e -> log := (k, Engine.now e) :: !log)
  done;
  Alcotest.(check bool) "drains" true (Engine.drain (Net.engine net));
  Alcotest.(check (list (pair int (float 1e-9))))
    "all delivered in send order at constant latency"
    [ (0, 0.5); (1, 0.5); (2, 0.5); (3, 0.5); (4, 0.5) ]
    (List.rev !log);
  Alcotest.(check int) "sent" 5 (Net.sent net);
  Alcotest.(check int) "delivered" 5 (Net.delivered net);
  Alcotest.(check int) "nothing dropped" 0 (Net.dropped net)

let test_iid_loss_rate =
  Helpers.qtest ~count:30 "net: i.i.d. loss rate within CI bounds"
    QCheck.(
      make
        ~print:(fun (seed, p10) -> Printf.sprintf "seed=%d p=%.1f" seed (float_of_int p10 /. 10.))
        Gen.(
          let* seed = int_bound 1_000_000 in
          let* p10 = int_range 1 5 in
          return (seed, p10)))
    (fun (seed, p10) ->
      let p = float_of_int p10 /. 10. in
      let sends = 3000 in
      let net = Net.create (Rng.create seed) (with_loss 0.1 (Net.Iid p)) in
      for _ = 1 to sends do
        Net.send net ~src:0 ~dst:1 (fun _ -> ())
      done;
      ignore (Engine.drain (Net.engine net));
      let rate = float_of_int (Net.lost net) /. float_of_int sends in
      (* 4.5 sigma of a binomial proportion: false-failure odds ~ 1e-5. *)
      let bound = 4.5 *. sqrt (p *. (1. -. p) /. float_of_int sends) in
      Float.abs (rate -. p) <= bound)

let test_burst_loss_stationary () =
  let model = Net.Burst { p_gb = 0.1; p_bg = 0.3; loss_good = 0.05; loss_bad = 0.6 } in
  Helpers.check_close "stationary formula" 0.1875 (Net.stationary_loss model);
  let net = Net.create (Helpers.rng ()) (with_loss 0.1 model) in
  let sends = 20_000 in
  for _ = 1 to sends do
    Net.send net ~src:0 ~dst:1 (fun _ -> ())
  done;
  ignore (Engine.drain (Net.engine net));
  let rate = float_of_int (Net.lost net) /. float_of_int sends in
  (* Burst losses are correlated, so the CI is much wider than binomial;
     0.03 is ~6x the observed run-to-run spread. *)
  Alcotest.(check bool)
    (Printf.sprintf "burst rate %.4f near stationary 0.1875" rate)
    true
    (Float.abs (rate -. 0.1875) <= 0.03)

let test_duplication () =
  let net =
    Net.create (Helpers.rng ())
      { (ideal_faults 0.1) with Net.duplicate = 0.4 }
  in
  let sends = 1000 in
  for _ = 1 to sends do
    Net.send net ~src:0 ~dst:1 (fun _ -> ())
  done;
  ignore (Engine.drain (Net.engine net));
  Alcotest.(check int) "every duplicate delivered"
    (sends + Net.duplicated net)
    (Net.delivered net);
  Alcotest.(check bool) "duplicates happened" true (Net.duplicated net > 200)

let test_reordering () =
  let net =
    Net.create (Helpers.rng ())
      { (ideal_faults 1.) with Net.reorder = 0.5; reorder_spread = 10. }
  in
  let log = ref [] in
  for k = 0 to 19 do
    Net.send net ~src:0 ~dst:1 (fun _ -> log := k :: !log)
  done;
  ignore (Engine.drain (Net.engine net));
  let order = List.rev !log in
  Alcotest.(check int) "all delivered" 20 (List.length order);
  Alcotest.(check bool) "reorders recorded" true (Net.reordered net > 0);
  Alcotest.(check bool) "delivery order differs from send order" true
    (order <> List.init 20 Fun.id);
  Alcotest.(check (list int)) "same message set" (List.init 20 Fun.id) (List.sort compare order)

let test_partition_and_heal () =
  let net = Net.create (Helpers.rng ()) (ideal_faults 0.1) in
  Net.set_partition_schedule net
    [
      { Net.at = 1.; groups = Some [| 0; 0; 1; 1 |] };
      { Net.at = 5.; groups = None };
    ];
  let delivered = ref 0 in
  let handler _ = incr delivered in
  let engine = Net.engine net in
  Alcotest.(check bool) "reachable before split" true (Net.reachable net ~src:0 ~dst:3);
  Net.send net ~src:0 ~dst:3 handler;
  Engine.run_until engine ~time:2.;
  Alcotest.(check int) "pre-split message crossed" 1 !delivered;
  Alcotest.(check bool) "unreachable across split" false (Net.reachable net ~src:0 ~dst:3);
  Net.send net ~src:0 ~dst:3 handler;
  Net.send net ~src:2 ~dst:3 handler;
  Engine.run_until engine ~time:4.;
  Alcotest.(check int) "cross-group dropped, within-group crossed" 2 !delivered;
  Alcotest.(check int) "partition drop recorded" 1 (Net.partitioned net);
  Engine.run_until engine ~time:6.;
  Net.send net ~src:0 ~dst:3 handler;
  ignore (Engine.drain engine);
  Alcotest.(check int) "heal restores delivery" 3 !delivered

let test_net_guards () =
  let rng = Helpers.rng () in
  let check_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  check_invalid "loss 1.0" (fun () -> Net.create rng (with_loss 0.1 (Net.Iid 1.)));
  check_invalid "negative latency" (fun () -> Net.create rng (ideal_faults (-0.1)));
  check_invalid "negative spread" (fun () ->
      Net.create rng { (ideal_faults 0.1) with Net.reorder_spread = -1. });
  check_invalid "duplicate out of range" (fun () ->
      Net.create rng { (ideal_faults 0.1) with Net.duplicate = 1.5 })

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

(* A randomized workload over a faulty, partitioned network: the full
   delivery trace (message id, delivery time) must be a pure function of
   the seed. *)
let delivery_trace seed =
  let rng = Rng.create seed in
  let faults =
    {
      Net.latency = Net.Jitter { base = 0.05; spread = 0.5 };
      loss = Net.Iid 0.2;
      duplicate = 0.1;
      reorder = 0.2;
      reorder_spread = 1.;
    }
  in
  let net = Net.create rng faults in
  let n = 6 in
  (* Random split/heal schedule derived from the same seed. *)
  let schedule_rng = Rng.create (seed + 1) in
  let events =
    List.init 4 (fun k ->
        let at = (float_of_int k *. 2.) +. Rng.float schedule_rng 1. in
        let groups =
          if Rng.bool schedule_rng then None
          else Some (Array.init n (fun _ -> Rng.int schedule_rng 2))
        in
        { Net.at; groups })
  in
  Net.set_partition_schedule net events;
  let trace = ref [] in
  let engine = Net.engine net in
  for k = 0 to 79 do
    Engine.schedule_at engine
      ~time:(float_of_int k *. 0.1)
      (fun _ ->
        let src = Rng.int rng n and dst = Rng.int rng n in
        Net.send net ~src ~dst (fun e -> trace := (k, Engine.now e) :: !trace))
  done;
  ignore (Engine.drain engine);
  List.rev !trace

let test_trace_determinism =
  Helpers.qtest ~count:30 "net: delivery trace is a pure function of the seed"
    QCheck.(int_bound 1_000_000)
    (fun seed -> delivery_trace seed = delivery_trace seed)

(* An explicitly-constructed fault-free network must be draw-for-draw
   identical to the legacy direct path Async_dynamics builds itself. *)
let async_outcome ~explicit_net seed =
  let rng = Rng.create seed in
  let graph = Stratify_graph.Gen.gnd rng ~n:100 ~d:10. in
  let inst = Instance.create ~graph ~b:(Array.make 100 1) () in
  let stable = Greedy.stable_config inst in
  let params = { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0.15 } in
  let a =
    if explicit_net then begin
      let net = Net.create rng (with_loss params.Async_dynamics.latency (Net.Iid 0.15)) in
      Async_dynamics.create ~net inst rng params
    end
    else Async_dynamics.create inst rng params
  in
  Async_dynamics.run a ~horizon:60.;
  let outcome = Async_dynamics.quiesce a in
  ( Async_dynamics.messages_sent a,
    Async_dynamics.messages_lost a,
    Async_dynamics.inconsistency_count a,
    Disorder.disorder (Async_dynamics.mutual_config a) ~stable,
    outcome )

let test_explicit_net_bit_identical () =
  Alcotest.(check bool) "explicit fault-free-config net == legacy path" true
    (async_outcome ~explicit_net:true 17 = async_outcome ~explicit_net:false 17)

(* Gossip-discovered acceptance graph + async dynamics under 10% loss:
   the protocol still reaches a stable configuration of the discovered
   instance. *)
let test_gossip_async_under_loss =
  Helpers.qtest ~count:5 "net: gossip + async converge under 10% loss"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 50 in
      let g = Gossip.create rng ~n ~view_size:8 in
      for _ = 1 to 5 do
        Gossip.round g
      done;
      let graph = Gossip.acceptance_graph g in
      let inst = Instance.create ~graph ~b:(Array.make n 1) () in
      let stable = Greedy.stable_config inst in
      let net = Net.create rng (with_loss 0.1 (Net.Iid 0.1)) in
      let a =
        Async_dynamics.create ~net inst rng
          { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0.1 }
      in
      Async_dynamics.run a ~horizon:300.;
      let outcome = Async_dynamics.quiesce a in
      outcome = Async_dynamics.Drained
      && Async_dynamics.inconsistency_count a = 0
      && Disorder.disorder (Async_dynamics.mutual_config a) ~stable <= 0.05)

(* ------------------------------------------------------------------ *)
(* Tick-level faults (swarm)                                           *)

let test_tick_purity_and_rate () =
  let tick = Net.Tick.create ~seed:42 ~loss:0.3 () in
  (* Pure: same (tick, src, dst) always answers the same. *)
  let a = Net.Tick.passes tick ~tick:3 ~src:1 ~dst:2 in
  Alcotest.(check bool) "idempotent verdict" a (Net.Tick.passes tick ~tick:3 ~src:1 ~dst:2);
  (* Empirical rate over many independent keys. *)
  let drops = ref 0 in
  let total = 10_000 in
  for k = 0 to total - 1 do
    if not (Net.Tick.passes tick ~tick:k ~src:(k mod 7) ~dst:(k mod 11)) then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "hash loss rate %.4f near 0.3" rate)
    true
    (Float.abs (rate -. 0.3) <= 4.5 *. sqrt (0.3 *. 0.7 /. float_of_int total));
  Alcotest.(check bool) "drops counted" true (Net.Tick.drops tick > 0)

let test_tick_partition_schedule () =
  let tick =
    Net.Tick.create ~seed:1 ~loss:0.
      ~schedule:
        [
          { Net.Tick.at_tick = 5; groups = Some [| 0; 0; 1; 1 |] };
          { Net.Tick.at_tick = 10; groups = None };
        ]
      ()
  in
  Net.Tick.advance tick ~tick:0;
  Alcotest.(check bool) "connected before" true (Net.Tick.connected tick ~src:0 ~dst:3);
  Net.Tick.advance tick ~tick:5;
  Alcotest.(check bool) "cross-group cut" false (Net.Tick.connected tick ~src:0 ~dst:3);
  Alcotest.(check bool) "within-group open" true (Net.Tick.connected tick ~src:2 ~dst:3);
  Alcotest.(check bool) "passes respects partition" false
    (Net.Tick.passes tick ~tick:6 ~src:0 ~dst:3);
  Net.Tick.advance tick ~tick:11;
  Alcotest.(check bool) "healed" true (Net.Tick.connected tick ~src:0 ~dst:3)

let swarm_uploaded ~faults seed =
  let rng = Rng.create seed in
  let uploads = Array.init 20 (fun i -> 1. +. (float_of_int i /. 10.)) in
  let params = { (Bt.Swarm.default_params ~uploads) with Bt.Swarm.d = 10.; faults } in
  let swarm = Bt.Swarm.create rng params in
  Bt.Swarm.run swarm ~ticks:300;
  let total = ref 0. in
  for i = 0 to Bt.Swarm.size swarm - 1 do
    total := !total +. (Bt.Swarm.peer swarm i).Bt.Peer.uploaded
  done;
  (!total, Bt.Swarm.link_drops swarm)

let test_swarm_tick_loss () =
  let clean, clean_drops = swarm_uploaded ~faults:None 5 in
  let lossy, lossy_drops =
    swarm_uploaded ~faults:(Some (Net.Tick.create ~seed:5 ~loss:0.5 ())) 5
  in
  Alcotest.(check int) "fault-free counts no drops" 0 clean_drops;
  Alcotest.(check bool) "loss suppresses transfers" true (lossy_drops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "lossy volume %.0f < clean %.0f" lossy clean)
    true (lossy < clean)

let test_swarm_full_partition () =
  let groups = Array.init 20 Fun.id in
  let tick =
    Net.Tick.create ~seed:5 ~loss:0. ~schedule:[ { Net.Tick.at_tick = 0; groups = Some groups } ] ()
  in
  let uploaded, drops = swarm_uploaded ~faults:(Some tick) 5 in
  Alcotest.(check (float 1e-9)) "everyone isolated: nothing moves" 0. uploaded;
  Alcotest.(check bool) "all intents dropped" true (drops > 0)

(* ------------------------------------------------------------------ *)
(* Engine satellites                                                   *)

let test_drain_budget_counter () =
  Obs.Control.with_enabled true (fun () ->
      let c = Obs.Counter.make "des.drain_budget_exhausted" in
      let before = Obs.Counter.value c in
      let e = Engine.create () in
      let rec forever engine = Engine.schedule engine ~delay:1. forever in
      Engine.schedule e ~delay:0. forever;
      Alcotest.(check bool) "budget exhausted" false (Engine.drain ~max_events:100 e);
      Alcotest.(check int) "counter bumped" (before + 1) (Obs.Counter.value c))

let test_async_budget_outcome () =
  let rng = Rng.create 3 in
  let graph = Stratify_graph.Gen.gnd rng ~n:20 ~d:5. in
  let inst = Instance.create ~graph ~b:(Array.make 20 1) () in
  let a =
    Async_dynamics.create inst rng { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 0. }
  in
  (* Initiative clocks are always armed, so a zero budget cannot drain. *)
  Alcotest.(check bool) "explicit non-convergence outcome" true
    (Async_dynamics.quiesce ~max_events:0 a = Async_dynamics.Budget_exhausted)

(* ------------------------------------------------------------------ *)
(* Scenario plans                                                      *)

let sample_plan =
  {
    Plan.name = "roundtrip";
    seed = 9;
    workload =
      Plan.Async
        {
          n = 30;
          d = 8.;
          b = 1;
          horizon = 40.;
          initiative_rate = 1.;
          backend = Plan.Dense;
          scheduler = Scheduler.Random_poll;
        };
    net =
      {
        Plan.latency = Plan.Jitter { base = 0.05; spread = 0.1 };
        loss = Plan.Burst { p_gb = 0.1; p_bg = 0.3; loss_good = 0.02; loss_bad = 0.5 };
        duplicate = 0.01;
        reorder = 0.05;
        reorder_spread = 0.5;
      };
    partitions =
      [
        { Plan.at = 5.; groups = Plan.Halves };
        { Plan.at = 8.; groups = Plan.Groups [| 0; 1; 0 |] };
        { Plan.at = 10.; groups = Plan.Heal };
      ];
    assertions =
      [
        Plan.Drained;
        Plan.Final_disorder_below 0.2;
        Plan.Inconsistency_below 30;
        Plan.Converged_by { deadline = 35.; disorder_below = 0.5 };
      ];
  }

let test_plan_roundtrip () =
  Alcotest.(check bool) "of_json (to_json p) = p" true
    (Plan.of_json (Plan.to_json sample_plan) = sample_plan)

let test_plan_parse_errors () =
  let bad json =
    match Plan.of_json (Obs.Jsonx.of_string json) with
    | exception Obs.Jsonx.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected rejection of %s" json
  in
  bad {|{"workload": {"kind": "async", "n": 10}, "assertions": []}|};
  bad {|{"name": "x", "workload": {"kind": "nope", "n": 10}, "assertions": []}|};
  bad
    {|{"name": "x", "workload": {"kind": "swarm", "n": 10},
       "assertions": [{"kind": "drained"}]}|};
  bad
    {|{"name": "x", "workload": {"kind": "async", "n": 10},
       "assertions": [{"kind": "stratification_within", "tolerance": 0.1}]}|}

let test_plan_dispatch_errors () =
  (* A plan built directly (bypassing validate) with an assertion its
     runner cannot evaluate must fail with a structured error naming the
     plan and the assertion kind — not an [assert false]. *)
  let expect_dispatch what plan fragment =
    match Plan.run plan with
    | exception Invalid_argument msg ->
        if not (Helpers.contains msg fragment) then
          Alcotest.failf "%s: error %S does not mention %S" what msg fragment
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  let net =
    {
      Plan.latency = Plan.Constant 0.05;
      loss = Plan.No_loss;
      duplicate = 0.;
      reorder = 0.;
      reorder_spread = 0.;
    }
  in
  expect_dispatch "swarm assertion on async runner"
    {
      Plan.name = "drifted-async";
      seed = 3;
      workload =
        Plan.Async
          {
            n = 10;
            d = 4.;
            b = 1;
            horizon = 5.;
            initiative_rate = 1.;
            backend = Plan.Dense;
            scheduler = Scheduler.Random_poll;
          };
      net;
      partitions = [];
      assertions = [ Plan.Stratification_within 0.1 ];
    }
    "\"stratification_within\" cannot be evaluated by the async runner";
  expect_dispatch "async assertion on swarm runner"
    {
      Plan.name = "drifted-swarm";
      seed = 3;
      workload = Plan.Swarm { n = 12; d = 4.; ticks = 4; warmup = 1 };
      net;
      partitions = [];
      assertions = [ Plan.Drained ];
    }
    "\"drained\" cannot be evaluated by the swarm runner"

let test_plan_run_deterministic () =
  let plan =
    Plan.of_json
      (Obs.Jsonx.of_string
         {|{
             "name": "mini",
             "seed": 4,
             "workload": { "kind": "async", "n": 40, "d": 8.0, "horizon": 60.0 },
             "net": { "latency": { "kind": "constant", "value": 0.1 },
                      "loss": { "kind": "iid", "p": 0.1 } },
             "partitions": [ { "at": 5.0, "groups": "halves" },
                             { "at": 15.0, "groups": "heal" } ],
             "assertions": [ { "kind": "drained" },
                             { "kind": "final_disorder_below", "value": 0.2 } ]
           }|})
  in
  let r1 = Plan.run plan and r2 = Plan.run plan in
  Alcotest.(check bool) "scenario passes" true r1.Plan.passed;
  Alcotest.(check bool) "manifests identical across runs" true
    (r1.Plan.manifest = r2.Plan.manifest);
  Alcotest.(check string) "manifest serialization identical"
    (Obs.Run_manifest.to_string r1.Plan.manifest)
    (Obs.Run_manifest.to_string r2.Plan.manifest);
  Alcotest.(check bool) "network saw traffic" true
    (match Obs.Run_manifest.counter r1.Plan.manifest "net.sent" with
    | Some v -> v > 0
    | None -> false)

let suite =
  [
    Alcotest.test_case "ideal delivery" `Quick test_ideal_delivery;
    test_iid_loss_rate;
    Alcotest.test_case "burst loss stationary rate" `Quick test_burst_loss_stationary;
    Alcotest.test_case "duplication" `Quick test_duplication;
    Alcotest.test_case "reordering" `Quick test_reordering;
    Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "fault parameter guards" `Quick test_net_guards;
    test_trace_determinism;
    Alcotest.test_case "explicit fault-free net == legacy path" `Slow
      test_explicit_net_bit_identical;
    test_gossip_async_under_loss;
    Alcotest.test_case "tick hash purity and rate" `Quick test_tick_purity_and_rate;
    Alcotest.test_case "tick partition schedule" `Quick test_tick_partition_schedule;
    Alcotest.test_case "swarm tick loss" `Quick test_swarm_tick_loss;
    Alcotest.test_case "swarm full partition" `Quick test_swarm_full_partition;
    Alcotest.test_case "drain budget counter" `Quick test_drain_budget_counter;
    Alcotest.test_case "async budget-exhausted outcome" `Quick test_async_budget_outcome;
    Alcotest.test_case "plan JSON round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan rejects ill-formed input" `Quick test_plan_parse_errors;
    Alcotest.test_case "plan runner dispatch errors" `Quick test_plan_dispatch_errors;
    Alcotest.test_case "plan run deterministic" `Slow test_plan_run_deterministic;
  ]
