(* The multicore replication engine: its whole contract is that [jobs]
   never changes any output.  These tests run nontrivial kernels (a fig9
   Monte-Carlo realization) under several worker counts — including a
   prime one that doesn't divide the replica count — and require
   bit-identical results, plus a pinned seed-stability value so a silent
   change to the substream derivation cannot pass. *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Online = Stratify_stats.Online
module Exec = Stratify_exec.Exec
open Stratify_core

(* Fig 9's kernel at toy size: one G(n,p) instance solved to stability;
   the signature captures the full mate structure, not just a summary. *)
let fig9_kernel rng i =
  let n = 60 in
  let adj = Gen.gnp_adjacency rng ~n ~p:0.1 in
  let inst = Instance.of_adjacency ~adj ~b:(Array.make n 2) () in
  let config = Greedy.stable_config inst in
  (i, Config.edge_count config, Array.init n (Config.mates config))

let job_counts = [ 1; 2; 7 ]

let test_map_replicas_jobs_invariant () =
  let run jobs = Exec.map_replicas ~jobs ~rng:(Rng.create 42) ~replicas:10 fig9_kernel in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        true
        (run jobs = reference))
    job_counts;
  (* Chunking must not change results either. *)
  Alcotest.(check bool) "chunk=3 identical" true
    (Exec.map_replicas ~chunk:3 ~jobs:2 ~rng:(Rng.create 42) ~replicas:10 fig9_kernel
    = reference);
  (* Replica indices arrive in order. *)
  Array.iteri (fun i (j, _, _) -> Alcotest.(check int) "index" i j) reference

let test_map_replicas_matches_sequential_split () =
  (* The engine must consume the base rng exactly like a sequential
     split-per-replica loop would. *)
  let kernel rng i = (i, Rng.int rng 1_000_000, Rng.float rng 1.) in
  let expected =
    let rng = Rng.create 7 in
    Array.init 20 (fun i ->
        let sub = Rng.split rng in
        kernel sub i)
  in
  let actual = Exec.map_replicas ~jobs:2 ~rng:(Rng.create 7) ~replicas:20 kernel in
  Alcotest.(check bool) "matches hand-rolled split loop" true (actual = expected)

let test_seed_stability () =
  (* Pinned output of one fig9-style replica under the canonical seed.
     If this changes, every published number in the repo changes with it:
     bump deliberately, never silently. *)
  let results = Exec.map_replicas ~jobs:2 ~rng:(Rng.create 42) ~replicas:10 fig9_kernel in
  let _, edges, mates = results.(3) in
  Alcotest.(check int) "replica 3 edge count" 54 edges;
  Alcotest.(check (list int)) "replica 3 mates of peer 0" [ 20; 29 ] mates.(0)

let test_map_indexed () =
  let f k = (k, k * k) in
  let reference = Array.init 11 f in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "map_indexed jobs=%d" jobs)
        true
        (Exec.map_indexed ~jobs ~count:11 f = reference))
    job_counts

let test_reduce_replicas () =
  (* Floating-point sum: non-associative, so this also checks the fixed
     merge-tree order. *)
  let kernel rng _ = Rng.float rng 1. in
  let run jobs =
    Exec.reduce_replicas ~jobs ~rng:(Rng.create 9) ~replicas:33 ~merge:( +. ) kernel
  in
  let reference = run 1 in
  Alcotest.(check bool) "non-empty" true (reference <> None);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "reduce jobs=%d bit-identical" jobs)
        true
        (run jobs = reference))
    job_counts;
  Alcotest.(check bool) "empty is None" true
    (Exec.reduce_replicas ~jobs:2 ~rng:(Rng.create 9) ~replicas:0 ~merge:( +. ) kernel = None)

let test_online_replicas () =
  let kernel rng _ = Stratify_prng.Dist.normal rng ~mu:0. ~sigma:1. in
  let stats jobs =
    let o = Exec.online_replicas ~jobs ~rng:(Rng.create 5) ~replicas:40 kernel in
    (Online.count o, Online.mean o, Online.variance o, Online.min_value o, Online.max_value o)
  in
  let reference = stats 1 in
  let count, _, _, _, _ = reference in
  Alcotest.(check int) "count" 40 count;
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "online jobs=%d bit-identical" jobs)
        true
        (stats jobs = reference))
    job_counts

(* [online_replicas]' documented contract is "per-chunk accumulators in
   replica order, merged in chunk order" — pinned above only at jobs
   1/2/7 with default chunking.  This property test pins it for {e
   random} chunk partitions and job counts: the result must be
   bit-identical (mean, variance, count, min, max) to an independently
   hand-rolled sequential fold over the same partition, whatever the
   scheduling. *)
let test_online_random_partitions =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 60 in
      let* chunk = int_range 1 12 in
      let* jobs = int_range 1 8 in
      let* seed = int_range 0 1_000_000 in
      return (n, chunk, jobs, seed))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, chunk, jobs, seed) ->
        Printf.sprintf "replicas=%d chunk=%d jobs=%d seed=%d" n chunk jobs seed)
      gen
  in
  QCheck.Test.make ~count:200 ~name:"online_replicas matches sequential chunk folding" arb
    (fun (n, chunk, jobs, seed) ->
      (* The values each replica contributes, derived exactly as the
         engine derives them: one split per replica off the base rng. *)
      let values =
        let rng = Rng.create seed in
        Array.init n (fun _ ->
            let sub = Rng.split rng in
            Stratify_prng.Dist.normal sub ~mu:3. ~sigma:2.)
      in
      let reference =
        let n_chunks = (n + chunk - 1) / chunk in
        let acc = ref (Online.create ()) in
        for c = 0 to n_chunks - 1 do
          let o = Online.create () in
          for i = c * chunk to min n ((c + 1) * chunk) - 1 do
            Online.add o values.(i)
          done;
          acc := Online.merge !acc o
        done;
        !acc
      in
      let actual =
        Exec.online_replicas ~chunk ~jobs ~rng:(Rng.create seed) ~replicas:n (fun rng _ ->
            Stratify_prng.Dist.normal rng ~mu:3. ~sigma:2.)
      in
      let bits = Int64.bits_of_float in
      Online.count actual = Online.count reference
      && bits (Online.mean actual) = bits (Online.mean reference)
      && bits (Online.variance actual) = bits (Online.variance reference)
      && bits (Online.min_value actual) = bits (Online.min_value reference)
      && bits (Online.max_value actual) = bits (Online.max_value reference))

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "kernel failure re-raised (jobs=%d)" jobs)
        (Failure "replica 5 exploded")
        (fun () ->
          ignore
            (Exec.map_replicas ~jobs ~rng:(Rng.create 1) ~replicas:8 (fun _rng i ->
                 if i = 5 then failwith "replica 5 exploded"))))
    [ 1; 2 ]

let test_failure_determinism () =
  (* Several replicas fail; the one with the lowest index must surface,
     for every jobs value — which domain ran a failing replica is
     scheduling noise, the surfaced exception must not be. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "lowest failing replica wins (map_replicas, jobs=%d)" jobs)
        (Failure "replica 2 exploded")
        (fun () ->
          ignore
            (Exec.map_replicas ~jobs ~rng:(Rng.create 1) ~replicas:12 (fun _rng i ->
                 if i = 2 || i = 7 || i = 11 then failwith (Printf.sprintf "replica %d exploded" i))));
      Alcotest.check_raises
        (Printf.sprintf "lowest failing index wins (map_indexed, jobs=%d)" jobs)
        (Failure "index 3 exploded")
        (fun () ->
          ignore
            (Exec.map_indexed ~jobs ~count:12 (fun i ->
                 if i >= 3 then failwith (Printf.sprintf "index %d exploded" i)))))
    [ 1; 2; 4 ]

let test_argument_validation () =
  let kernel _rng i = i in
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Exec.map_replicas: jobs must be positive") (fun () ->
      ignore (Exec.map_replicas ~jobs:0 ~rng:(Rng.create 1) ~replicas:4 kernel));
  Alcotest.check_raises "negative replicas rejected"
    (Invalid_argument "Exec.map_replicas: negative count") (fun () ->
      ignore (Exec.map_replicas ~jobs:1 ~rng:(Rng.create 1) ~replicas:(-1) kernel));
  Alcotest.check_raises "chunk=0 rejected"
    (Invalid_argument "Exec.map_replicas: chunk must be positive") (fun () ->
      ignore (Exec.map_replicas ~chunk:0 ~jobs:1 ~rng:(Rng.create 1) ~replicas:4 kernel));
  (* Degenerate sizes are fine. *)
  Alcotest.(check bool) "zero replicas" true
    (Exec.map_replicas ~jobs:4 ~rng:(Rng.create 1) ~replicas:0 kernel = [||]);
  Alcotest.(check bool) "more jobs than replicas" true
    (Exec.map_replicas ~jobs:16 ~rng:(Rng.create 1) ~replicas:3 kernel = [| 0; 1; 2 |])

let suite =
  [
    Alcotest.test_case "map_replicas jobs-invariant" `Quick test_map_replicas_jobs_invariant;
    Alcotest.test_case "matches sequential split loop" `Quick
      test_map_replicas_matches_sequential_split;
    Alcotest.test_case "seed stability (pinned)" `Quick test_seed_stability;
    Alcotest.test_case "map_indexed jobs-invariant" `Quick test_map_indexed;
    Alcotest.test_case "reduce_replicas jobs-invariant" `Quick test_reduce_replicas;
    Alcotest.test_case "online_replicas jobs-invariant" `Quick test_online_replicas;
    QCheck_alcotest.to_alcotest test_online_random_partitions;
    Alcotest.test_case "kernel exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "lowest failing index surfaces" `Quick test_failure_determinism;
    Alcotest.test_case "argument validation" `Quick test_argument_validation;
  ]
