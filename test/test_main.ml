let () =
  Alcotest.run "stratify"
    [
      ("prng", Test_prng.suite);
      ("graph", Test_graph.suite);
      ("stats", Test_stats.suite);
      ("matching", Test_matching.suite);
      ("dynamics", Test_dynamics.suite);
      ("scheduler", Test_scheduler.suite);
      ("shard", Test_shard.suite);
      ("stratification", Test_stratification.suite);
      ("analytic", Test_analytic.suite);
      ("bandwidth", Test_bandwidth.suite);
      ("bittorrent", Test_bittorrent.suite);
      ("extensions", Test_extensions.suite);
      ("applications", Test_applications.suite);
      ("async", Test_async.suite);
      ("des", Test_des.suite);
      ("net", Test_net.suite);
      ("matrix", Test_matrix.suite);
      ("exec", Test_exec.suite);
      ("obs", Test_obs.suite);
      ("experiments", Test_experiments.suite);
      ("serve", Test_serve.suite);
    ]
