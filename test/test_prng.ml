module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist
module Splitmix64 = Stratify_prng.Splitmix64
module Xoshiro256 = Stratify_prng.Xoshiro256

let test_splitmix_reference () =
  (* Published SplitMix64 vectors for seed 1234567. *)
  let g = Splitmix64.create 1234567L in
  let expected = [| 0x599ed017fb08fc85L; 0x2c73f08458540fa5L; 0x883ebce5a3f27c77L |] in
  Array.iter
    (fun e -> Alcotest.(check int64) "splitmix64 output" e (Splitmix64.next g))
    expected

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_copy_replays () =
  let a = Rng.create 9 in
  for _ = 1 to 10 do
    ignore (Rng.int64 a)
  done;
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)
  done

let test_split_diverges () =
  let a = Rng.create 11 in
  let child = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_int_range () =
  let g = Rng.create 1 in
  for _ = 1 to 10_000 do
    let x = Rng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_uniformity () =
  let g = Rng.create 5 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let x = Rng.int g 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / 8 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (c - expected) < expected / 20))
    counts

let test_unit_float_range_and_mean () =
  let g = Rng.create 2 in
  let sum = ref 0. in
  let trials = 100_000 in
  for _ = 1 to trials do
    let x = Rng.unit_float g in
    if x < 0. || x >= 1. then Alcotest.fail "unit_float out of [0,1)";
    sum := !sum +. x
  done;
  Helpers.check_close ~eps:0.01 "mean ~ 0.5" 0.5 (!sum /. float_of_int trials)

let test_bernoulli () =
  let g = Rng.create 3 in
  let hits = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Rng.bernoulli g 0.3 then incr hits
  done;
  Helpers.check_close ~eps:0.01 "p=0.3" 0.3 (float_of_int !hits /. float_of_int trials)

let test_int_in () =
  let g = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in g (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done;
  Alcotest.(check int) "singleton range" 3 (Rng.int_in g 3 3)

let test_invalid_args () =
  let g = Rng.create 1 in
  Alcotest.check_raises "Rng.int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in g 4 3))

let moments name trials sampler expected_mean expected_sd tol =
  let g = Rng.create 77 in
  let acc = Stratify_stats.Online.create () in
  for _ = 1 to trials do
    Stratify_stats.Online.add acc (sampler g)
  done;
  Helpers.check_close ~eps:tol (name ^ " mean") expected_mean (Stratify_stats.Online.mean acc);
  Helpers.check_close ~eps:tol (name ^ " sd") expected_sd (Stratify_stats.Online.stddev acc)

let test_normal_moments () =
  moments "normal(3,2)" 200_000 (fun g -> Dist.normal g ~mu:3. ~sigma:2.) 3. 2. 0.03

let test_exponential_moments () =
  moments "exp(0.5)" 200_000 (fun g -> Dist.exponential g ~rate:0.5) 2. 2. 0.04

let test_geometric_moments () =
  (* mean (1-p)/p = 3, sd sqrt(1-p)/p = sqrt(12) *)
  moments "geom(0.25)" 200_000
    (fun g -> float_of_int (Dist.geometric g ~p:0.25))
    3. (sqrt 12.) 0.05

let test_poisson_moments () =
  moments "poisson(6)" 100_000 (fun g -> float_of_int (Dist.poisson g ~lambda:6.)) 6. (sqrt 6.) 0.05;
  (* Large-lambda normal-approximation branch. *)
  moments "poisson(100)" 50_000
    (fun g -> float_of_int (Dist.poisson g ~lambda:100.))
    100. 10. 0.35

let test_binomial_moments () =
  moments "binom(20,0.3)" 100_000
    (fun g -> float_of_int (Dist.binomial g ~n:20 ~p:0.3))
    6.
    (sqrt (20. *. 0.3 *. 0.7))
    0.05

let test_binomial_extremes () =
  let g = Rng.create 8 in
  Alcotest.(check int) "p=0" 0 (Dist.binomial g ~n:50 ~p:0.);
  Alcotest.(check int) "p=1" 50 (Dist.binomial g ~n:50 ~p:1.);
  Alcotest.(check int) "n=0" 0 (Dist.binomial g ~n:0 ~p:0.5)

let test_zipf_support_and_monotone () =
  let g = Rng.create 12 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let k = Dist.zipf g ~n:10 ~s:1.2 in
    Alcotest.(check bool) "in [1,10]" true (k >= 1 && k <= 10);
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 2 > rank 5" true (counts.(1) > counts.(4))

let test_zipf_chi_square () =
  (* Goodness of fit of [Zipf.draw] against its own [probability] mass.
     chi² over 10 cells with 9 degrees of freedom: the 99.9th percentile
     is 27.88, so a correct sampler fails with probability < 0.1% — and
     deterministically never, given the fixed seed. *)
  let n = 10 and s = 1.2 and draws = 100_000 in
  let z = Dist.Zipf.create ~n ~s in
  Alcotest.(check int) "size" n (Dist.Zipf.size z);
  let g = Rng.create 42 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Dist.Zipf.draw z g in
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  let chi2 = ref 0. in
  for k = 1 to n do
    let expected = float_of_int draws *. Dist.Zipf.probability z k in
    let diff = float_of_int counts.(k - 1) -. expected in
    chi2 := !chi2 +. (diff *. diff /. expected)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f < 27.88 (df=9, p=0.001)" !chi2)
    true (!chi2 < 27.88);
  (* The mass function itself must be Zipf: p(k) ∝ k^-s, normalised. *)
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. Float.pow (float_of_int k) s)
  done;
  for k = 1 to n do
    Helpers.check_close ~eps:1e-12
      (Printf.sprintf "p(%d)" k)
      (1. /. Float.pow (float_of_int k) s /. !h)
      (Dist.Zipf.probability z k)
  done

let test_zipf_wrapper_matches_table () =
  (* The backward-compatible [zipf] wrapper must consume the rng stream
     exactly like a fresh-table draw. *)
  let a = Rng.create 9 and b = Rng.create 9 in
  let z = Dist.Zipf.create ~n:50 ~s:0.8 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "same draw" (Dist.zipf a ~n:50 ~s:0.8) (Dist.Zipf.draw z b)
  done;
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Dist.zipf: n must be positive")
    (fun () -> ignore (Dist.Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Dist.Zipf.probability: rank out of range") (fun () ->
      ignore (Dist.Zipf.probability z 51))

let test_rounded_positive_normal () =
  let g = Rng.create 13 in
  for _ = 1 to 10_000 do
    let b = Dist.rounded_positive_normal g ~mean:1.2 ~sigma:3. in
    Alcotest.(check bool) "positive" true (b >= 1)
  done;
  Alcotest.(check int) "sigma=0 rounds" 6 (Dist.rounded_positive_normal g ~mean:6.4 ~sigma:0.);
  Alcotest.(check int) "sigma=0 clamps" 1 (Dist.rounded_positive_normal g ~mean:(-3.) ~sigma:0.)

let test_shuffle_is_permutation () =
  let g = Rng.create 14 in
  let a = Array.init 100 (fun i -> i) in
  Dist.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_shuffle_uniform_first_element () =
  let g = Rng.create 15 in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let a = [| 0; 1; 2; 3; 4 |] in
    Dist.shuffle g a;
    counts.(a.(0)) <- counts.(a.(0)) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "within 7% of uniform" true (abs (c - 10_000) < 700))
    counts

let test_sample_without_replacement () =
  let g = Rng.create 16 in
  for _ = 1 to 200 do
    let k = Rng.int g 20 and n = 20 + Rng.int g 100 in
    let s = Dist.sample_without_replacement g ~k ~n in
    Alcotest.(check int) "size" k (Array.length s);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        Alcotest.(check bool) "in range" true (x >= 0 && x < n);
        if Hashtbl.mem seen x then Alcotest.fail "duplicate sample";
        Hashtbl.add seen x ())
      s
  done;
  (* Dense corner: k = n. *)
  let all = Dist.sample_without_replacement g ~k:10 ~n:10 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation" (Array.init 10 (fun i -> i)) sorted

let test_alias_method () =
  let g = Rng.create 17 in
  let weights = [| 1.; 0.; 3.; 6. |] in
  let alias = Dist.Alias.of_weights weights in
  Helpers.check_close "prob 0" 0.1 (Dist.Alias.probability alias 0);
  Helpers.check_close "prob 1" 0. (Dist.Alias.probability alias 1);
  let counts = Array.make 4 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let k = Dist.Alias.draw alias g in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero-weight outcome never drawn" 0 counts.(1);
  Helpers.check_close ~eps:0.01 "freq 3" 0.6 (float_of_int counts.(3) /. float_of_int trials);
  Helpers.check_close ~eps:0.01 "freq 2" 0.3 (float_of_int counts.(2) /. float_of_int trials)

let test_alias_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.Alias.of_weights: empty weights")
    (fun () -> ignore (Dist.Alias.of_weights [||]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Dist.Alias.of_weights: total weight must be positive") (fun () ->
      ignore (Dist.Alias.of_weights [| 0.; 0. |]))

let test_xoshiro_jump_disjoint () =
  (* After a jump, the streams should not collide over a short horizon. *)
  let a = Xoshiro256.create 99L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let collisions = ref 0 in
  for _ = 1 to 1000 do
    if Xoshiro256.next a = Xoshiro256.next b then incr collisions
  done;
  Alcotest.(check int) "no collisions" 0 !collisions

let suite =
  [
    Alcotest.test_case "splitmix64 reference vectors" `Quick test_splitmix_reference;
    Alcotest.test_case "determinism by seed" `Quick test_determinism;
    Alcotest.test_case "copy replays stream" `Quick test_copy_replays;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int within bound" `Quick test_int_range;
    Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
    Alcotest.test_case "unit_float range and mean" `Slow test_unit_float_range_and_mean;
    Alcotest.test_case "bernoulli frequency" `Slow test_bernoulli;
    Alcotest.test_case "int_in inclusive range" `Quick test_int_in;
    Alcotest.test_case "invalid arguments rejected" `Quick test_invalid_args;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
    Alcotest.test_case "geometric moments" `Slow test_geometric_moments;
    Alcotest.test_case "poisson moments (both branches)" `Slow test_poisson_moments;
    Alcotest.test_case "binomial moments" `Slow test_binomial_moments;
    Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
    Alcotest.test_case "zipf support and monotonicity" `Slow test_zipf_support_and_monotone;
    Alcotest.test_case "zipf chi-square fit" `Slow test_zipf_chi_square;
    Alcotest.test_case "zipf wrapper = precomputed table" `Quick test_zipf_wrapper_matches_table;
    Alcotest.test_case "rounded positive normal" `Quick test_rounded_positive_normal;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle first-element uniformity" `Slow test_shuffle_uniform_first_element;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "alias method frequencies" `Slow test_alias_method;
    Alcotest.test_case "alias method invalid input" `Quick test_alias_invalid;
    Alcotest.test_case "xoshiro jump gives disjoint streams" `Quick test_xoshiro_jump_disjoint;
  ]
