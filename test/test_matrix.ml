(* Scenario-matrix generator and report tests: deterministic expansion,
   JSON round-trips, shard partitioning, baseline regression detection,
   the Plan.of_json unknown-field bugfix, the scheduler fixed-point
   assertion, and eDonkey tick faults. *)

module Rng = Stratify_prng.Rng
module Plan = Stratify_net_plan.Plan
module Matrix = Stratify_net_plan.Matrix
module Report = Stratify_cli.Matrix_report
module Manifest = Stratify_obs.Run_manifest
module Jsonx = Stratify_obs.Jsonx
module Queue_sim = Stratify_edonkey.Queue_sim
module Net = Stratify_net.Net

(* ---- generator ------------------------------------------------------ *)

let test_cardinality () =
  let cells = Matrix.generate ~seed:42 in
  Alcotest.(check int) "generate matches cardinality" Matrix.cardinality (Array.length cells);
  Alcotest.(check bool) "at least 100 cells" true (Matrix.cardinality >= 100)

let test_names_unique () =
  let cells = Matrix.generate ~seed:42 in
  let names = List.sort_uniq compare (Array.to_list (Array.map (fun c -> c.Matrix.name) cells)) in
  Alcotest.(check int) "cell names are unique" (Array.length cells) (List.length names)

let test_deterministic_expansion =
  Helpers.qtest ~count:30 "matrix: same seed expands to identical cells"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let a = Matrix.generate ~seed and b = Matrix.generate ~seed in
      a = b && Matrix.checksum a = Matrix.checksum b)

let test_seed_sensitivity () =
  (* Different matrix seeds must move the per-cell seeds (the cell list
     shape stays fixed). *)
  let a = Matrix.generate ~seed:1 and b = Matrix.generate ~seed:2 in
  Alcotest.(check bool) "checksums differ across matrix seeds" true
    (Matrix.checksum a <> Matrix.checksum b);
  Alcotest.(check bool) "names agree across matrix seeds" true
    (Array.for_all2 (fun x y -> x.Matrix.name = y.Matrix.name) a b)

let test_cells_validate () =
  (* Every generated plan already passed Plan validation on
     construction; spot-check the pruning invariants on the cells. *)
  Array.iter
    (fun c ->
      match c.Matrix.workload with
      | Matrix.Async_w -> ()
      | Matrix.Swarm_w | Matrix.Edonkey_w ->
          Alcotest.(check bool)
            (c.Matrix.name ^ ": tick cells are dense/random/non-jitter")
            true
            (c.Matrix.backend = Matrix.Dense_b
            && c.Matrix.scheduler = Stratify_core.Scheduler.Random_poll
            && c.Matrix.fault <> Matrix.Jitter))
    (Matrix.generate ~seed:42)

let test_cell_roundtrip =
  Helpers.qtest ~count:10 "matrix: every cell round-trips Plan.to_json/of_json"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Array.for_all
        (fun c -> Plan.of_json (Plan.to_json c.Matrix.plan) = c.Matrix.plan)
        (Matrix.generate ~seed))

let test_shard_partition =
  Helpers.qtest ~count:50 "matrix: shards partition disjointly and exhaustively"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 10))
    (fun (seed, m) ->
      let cells = Matrix.generate ~seed in
      let shards = List.init m (fun i -> Matrix.shard cells ~index:(i + 1) ~of_:m) in
      let union = List.concat_map Array.to_list shards in
      let name c = c.Matrix.name in
      (* Exhaustive: the union is the whole matrix. *)
      List.sort compare (List.map name union)
      = List.sort compare (Array.to_list (Array.map name cells))
      (* Disjoint: no cell appears twice. *)
      && List.length (List.sort_uniq compare (List.map name union)) = List.length union)

let test_shard_bounds () =
  let cells = Matrix.generate ~seed:42 in
  Alcotest.check_raises "index 0 rejected"
    (Invalid_argument "Matrix.shard: index 0 outside 1..4") (fun () ->
      ignore (Matrix.shard cells ~index:0 ~of_:4));
  Alcotest.check_raises "index > of_ rejected"
    (Invalid_argument "Matrix.shard: index 5 outside 1..4") (fun () ->
      ignore (Matrix.shard cells ~index:5 ~of_:4))

let test_filter () =
  let cells = Matrix.generate ~seed:42 in
  let swarm = Matrix.filter cells ~substring:"swarm-" in
  Alcotest.(check bool) "filter keeps only matches" true
    (Array.length swarm > 0
    && Array.for_all (fun c -> c.Matrix.workload = Matrix.Swarm_w) swarm)

(* ---- unknown top-level fields (bugfix regression) ------------------- *)

let test_unknown_field_rejected () =
  let json =
    Jsonx.of_string
      {|{ "name": "typo", "seed": 1,
          "workload": { "kind": "async", "n": 10, "d": 4.0, "horizon": 5.0 },
          "net": { "latency": { "kind": "constant", "value": 0.05 } },
          "asserions": [ { "kind": "drained" } ] }|}
  in
  match Plan.of_json json with
  | _ -> Alcotest.fail "typo'd top-level field accepted"
  | exception Jsonx.Parse_error msg ->
      Alcotest.(check bool)
        "error names the offending key" true
        (Helpers.contains msg "asserions")

(* ---- run_pure and the scheduler fixed point -------------------------- *)

let worklist_plan =
  {
    Plan.name = "fixed-point-probe";
    seed = 11;
    workload =
      Plan.Async
        {
          n = 30;
          d = 8.;
          b = 1;
          horizon = 40.;
          initiative_rate = 1.;
          backend = Plan.Dense;
          scheduler = Stratify_core.Scheduler.Worklist;
        };
    net =
      {
        Plan.latency = Plan.Constant 0.05;
        loss = Plan.No_loss;
        duplicate = 0.;
        reorder = 0.;
        reorder_spread = 0.;
      };
    partitions = [];
    assertions = [ Plan.Drained; Plan.Scheduler_fixed_point ];
  }

let test_scheduler_fixed_point () =
  let result = Plan.run_pure worklist_plan in
  let check =
    List.find (fun c -> c.Plan.label = "scheduler_fixed_point") result.Plan.checks
  in
  if not check.Plan.ok then
    Alcotest.failf "worklist fixed point diverged from greedy: %s" check.Plan.detail

let test_run_pure_deterministic () =
  let a = Plan.run_pure ~git:"pinned" worklist_plan
  and b = Plan.run_pure ~git:"pinned" worklist_plan in
  Alcotest.(check string)
    "byte-identical manifests" (Manifest.to_string a.Plan.manifest)
    (Manifest.to_string b.Plan.manifest);
  Alcotest.(check (list (pair string int)))
    "no counters captured (parallel-safe)" []
    a.Plan.manifest.Manifest.counters

(* ---- eDonkey tick faults --------------------------------------------- *)

let edonkey_totals faults =
  let uploads = Array.init 20 (fun i -> 1. +. float_of_int i) in
  let sim =
    Queue_sim.create (Rng.create 5)
      { (Queue_sim.default_params ~uploads) with Queue_sim.d = 8.; faults }
  in
  Queue_sim.run sim ~ticks:100;
  let total = ref 0. in
  for p = 0 to 19 do
    total := !total +. Queue_sim.downloaded sim p
  done;
  (!total, Queue_sim.link_drops sim)

let test_edonkey_faults () =
  let clean_total, clean_drops = edonkey_totals None in
  let lossy_total, lossy_drops =
    edonkey_totals (Some (Net.Tick.create ~seed:5 ~loss:0.5 ()))
  in
  Alcotest.(check int) "fault-free simulator draws nothing" 0 clean_drops;
  Alcotest.(check bool) "lossy run records drops" true (lossy_drops > 0);
  Alcotest.(check bool) "loss suppresses transferred bytes" true (lossy_total < clean_total)

(* ---- summaries and regressions ---------------------------------------- *)

let summary_of_cells cells =
  Report.make ~matrix_seed:42 ~cardinality:Matrix.cardinality cells

let cell_result name seed metrics =
  {
    Report.name;
    seed;
    axes = [ ("workload", "async") ];
    passed = true;
    checks = [];
    metrics;
    wall_ms = 1.5;
  }

let test_summary_roundtrip () =
  let s =
    summary_of_cells
      [ cell_result "b" 2 [ ("final_disorder", 0.125) ]; cell_result "a" 1 [ ("x", 3.5) ] ]
  in
  Alcotest.(check bool) "summary round-trips through JSON" true
    (Report.of_json (Report.to_json s) = s);
  Alcotest.(check (list string))
    "cells sorted by name" [ "a"; "b" ]
    (List.map (fun c -> c.Report.name) s.Report.cells)

let test_merge_disjoint_shards () =
  let s1 = summary_of_cells [ cell_result "a" 1 [] ]
  and s2 = summary_of_cells [ cell_result "b" 2 [] ] in
  let merged = Report.merge [ s1; s2 ] in
  Alcotest.(check int) "merged cell count" 2 (List.length merged.Report.cells);
  Alcotest.check_raises "colliding shards rejected"
    (Invalid_argument "Matrix_report: duplicate cell \"a\"") (fun () ->
      ignore (Report.merge [ s1; s1 ]))

let test_regression_detection () =
  let baseline = summary_of_cells [ cell_result "a" 1 [ ("m", 0.5) ] ] in
  (* Identical run: clean. *)
  Alcotest.(check int) "no regression on identical metrics" 0
    (List.length (Report.regressions ~baseline baseline));
  (* Metric drift. *)
  let drifted = summary_of_cells [ cell_result "a" 1 [ ("m", 0.75) ] ] in
  Alcotest.(check bool) "metric drift flagged" true
    (Report.regressions ~baseline drifted <> []);
  (* Pass -> fail flip. *)
  let failed =
    summary_of_cells
      [ { (cell_result "a" 1 [ ("m", 0.5) ]) with Report.passed = false } ]
  in
  Alcotest.(check bool) "pass->fail flagged" true
    (List.exists (fun (_, w) -> Helpers.contains w "failed") (Report.regressions ~baseline failed));
  (* Missing cell. *)
  let empty = summary_of_cells [] in
  Alcotest.(check bool) "missing cell flagged" true
    (List.exists (fun (_, w) -> Helpers.contains w "missing") (Report.regressions ~baseline empty));
  (* New cells are not regressions. *)
  let extra = summary_of_cells [ cell_result "a" 1 [ ("m", 0.5) ]; cell_result "z" 9 [] ] in
  Alcotest.(check int) "new cell is not a regression" 0
    (List.length (Report.regressions ~baseline extra))

let test_markdown_report () =
  let baseline = summary_of_cells [ cell_result "a" 1 [ ("m", 0.5) ] ] in
  let run = summary_of_cells [ cell_result "a" 1 [ ("m", 0.9) ] ] in
  let md = Report.render_markdown ~baseline run in
  Alcotest.(check bool) "report names the regression" true
    (Helpers.contains md "Regressions" && Helpers.contains md "regression");
  let clean = Report.render_markdown ~baseline baseline in
  Alcotest.(check bool) "clean report" true (Helpers.contains clean "no regressions")

let suite =
  [
    Alcotest.test_case "matrix cardinality >= 100" `Quick test_cardinality;
    Alcotest.test_case "matrix cell names unique" `Quick test_names_unique;
    test_deterministic_expansion;
    Alcotest.test_case "matrix seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "matrix pruning invariants" `Quick test_cells_validate;
    test_cell_roundtrip;
    test_shard_partition;
    Alcotest.test_case "matrix shard bounds" `Quick test_shard_bounds;
    Alcotest.test_case "matrix filter" `Quick test_filter;
    Alcotest.test_case "plan rejects unknown top-level field" `Quick test_unknown_field_rejected;
    Alcotest.test_case "scheduler fixed point equals greedy" `Quick test_scheduler_fixed_point;
    Alcotest.test_case "run_pure deterministic and counter-free" `Quick
      test_run_pure_deterministic;
    Alcotest.test_case "edonkey tick faults" `Quick test_edonkey_faults;
    Alcotest.test_case "summary JSON round-trip" `Quick test_summary_roundtrip;
    Alcotest.test_case "merge shard summaries" `Quick test_merge_disjoint_shards;
    Alcotest.test_case "baseline regression detection" `Quick test_regression_detection;
    Alcotest.test_case "markdown report" `Quick test_markdown_report;
  ]
