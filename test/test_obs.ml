(* The observability layer: counters must be monotone and gated on the
   global switch, spans must nest and unwind, histogram bucket
   boundaries must be exact at powers of two, and run manifests must
   round-trip through their JSON encoder — these invariants are what the
   CI manifest comparisons stand on. *)

module Obs = Stratify_obs

let with_obs f = Obs.Control.with_enabled true f

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)

let test_counter_monotone () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.monotone" in
      let before = Obs.Counter.value c in
      let prev = ref before in
      for k = 0 to 20 do
        Obs.Counter.incr c;
        Obs.Counter.add c k;
        let now = Obs.Counter.value c in
        Alcotest.(check bool) "never decreases" true (now >= !prev);
        prev := now
      done;
      Alcotest.(check int) "total" (before + 21 + 210) !prev;
      Alcotest.check_raises "negative add rejected"
        (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
          Obs.Counter.add c (-1)))

let test_counter_gating () =
  Obs.Control.set_enabled false;
  let c = Obs.Counter.make "test.gated" in
  let before = Obs.Counter.value c in
  Obs.Counter.incr c;
  Obs.Counter.add c 100;
  Alcotest.(check int) "disabled probes are no-ops" before (Obs.Counter.value c);
  with_obs (fun () -> Obs.Counter.incr c);
  Alcotest.(check int) "enabled probes count" (before + 1) (Obs.Counter.value c)

let test_counter_registry () =
  let a = Obs.Counter.make "test.same-name" and b = Obs.Counter.make "test.same-name" in
  with_obs (fun () -> Obs.Counter.incr a);
  Alcotest.(check int) "make is idempotent" (Obs.Counter.value a) (Obs.Counter.value b);
  Alcotest.(check bool) "dump contains it" true
    (List.mem_assoc "test.same-name" (Obs.Counter.dump ()))

(* ------------------------------------------------------------------ *)
(* Timers and spans                                                   *)

let spin () =
  (* Burn a little CPU so both wall and cpu clocks advance. *)
  let acc = ref 0. in
  for i = 1 to 200_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

let test_timer_accumulates () =
  let t = Obs.Timer.create () in
  Alcotest.(check bool) "fresh timer at zero" true (Obs.Timer.wall_s t = 0.);
  Obs.Timer.time t spin;
  let once = Obs.Timer.wall_s t in
  Alcotest.(check bool) "first interval positive" true (once > 0.);
  Obs.Timer.time t spin;
  Alcotest.(check bool) "second interval accumulates" true (Obs.Timer.wall_s t > once);
  Alcotest.(check bool) "not running after stop" true (not (Obs.Timer.running t));
  Alcotest.check_raises "stop when idle"
    (Invalid_argument "Obs.Timer.stop: not running") (fun () -> Obs.Timer.stop t);
  Obs.Timer.start t;
  Alcotest.check_raises "double start"
    (Invalid_argument "Obs.Timer.start: already running") (fun () -> Obs.Timer.start t);
  Obs.Timer.stop t

let test_spans_nest () =
  with_obs (fun () ->
      Obs.Span.reset ();
      Obs.Span.with_ "outer" (fun () ->
          Alcotest.(check int) "depth inside outer" 1 (Obs.Span.depth ());
          Obs.Span.with_ "inner" (fun () ->
              Alcotest.(check int) "depth inside inner" 2 (Obs.Span.depth ());
              spin ());
          spin ());
      Obs.Span.with_ "outer" (fun () -> ());
      Alcotest.(check int) "unwound" 0 (Obs.Span.depth ());
      let totals = Obs.Span.totals () in
      let wall name =
        let w, _, _ = List.assoc name totals in
        w
      in
      let count name =
        let _, _, c = List.assoc name totals in
        c
      in
      (* First-entry order, inner time contained in outer time. *)
      Alcotest.(check (list string)) "chronological order" [ "outer"; "inner" ]
        (List.map fst totals);
      Alcotest.(check int) "outer entered twice" 2 (count "outer");
      Alcotest.(check int) "inner entered once" 1 (count "inner");
      Alcotest.(check bool) "outer wall >= inner wall" true (wall "outer" >= wall "inner");
      Alcotest.(check bool) "inner wall > 0" true (wall "inner" > 0.))

let test_span_exception_safe () =
  with_obs (fun () ->
      Obs.Span.reset ();
      (try Obs.Span.with_ "boom" (fun () -> failwith "kernel exploded")
       with Failure _ -> ());
      Alcotest.(check int) "stack unwound on raise" 0 (Obs.Span.depth ());
      let _, _, count = List.assoc "boom" (Obs.Span.totals ()) in
      Alcotest.(check int) "interval still recorded" 1 count)

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)

let test_histogram_buckets_exact () =
  (* Power-of-two boundaries are exact: 2^k - 1 and 2^k always land in
     adjacent buckets, for every k. *)
  Alcotest.(check int) "zero" 0 (Obs.Histogram.bucket_of 0);
  Alcotest.(check int) "negative clamps" 0 (Obs.Histogram.bucket_of (-5));
  Alcotest.(check int) "one" 1 (Obs.Histogram.bucket_of 1);
  for k = 1 to 61 do
    let pow = 1 lsl k in
    Alcotest.(check int) (Printf.sprintf "bucket of 2^%d" k) (k + 1) (Obs.Histogram.bucket_of pow);
    Alcotest.(check int)
      (Printf.sprintf "bucket of 2^%d - 1" k)
      k
      (Obs.Histogram.bucket_of (pow - 1));
    Alcotest.(check int)
      (Printf.sprintf "lower bound of bucket %d" (k + 1))
      pow
      (Obs.Histogram.lower_bound (k + 1))
  done

let test_histogram_counts () =
  with_obs (fun () ->
      let h = Obs.Histogram.make "test.hist" in
      let base = Obs.Histogram.total h in
      List.iter (Obs.Histogram.observe h) [ 0; 1; 1; 3; 4; 1023; 1024 ];
      Alcotest.(check int) "total" (base + 7) (Obs.Histogram.total h);
      let counts = Obs.Histogram.counts h in
      Alcotest.(check int) "bucket 0 (zeros)" 1 counts.(0);
      Alcotest.(check int) "bucket 1 (ones)" 2 counts.(1);
      Alcotest.(check int) "bucket 2 (2..3)" 1 counts.(2);
      Alcotest.(check int) "bucket 3 (4..7)" 1 counts.(3);
      Alcotest.(check int) "bucket 10 (512..1023)" 1 counts.(10);
      Alcotest.(check int) "bucket 11 (1024..2047)" 1 counts.(11);
      Alcotest.(check bool) "dump lists non-empty histograms" true
        (List.mem_assoc "test.hist" (Obs.Histogram.dump ())))

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)

let test_json_roundtrip () =
  let open Stratify_obs.Jsonx in
  let samples =
    [
      Null;
      Bool true;
      Int 0;
      Int (-123456789);
      Float 0.05;
      Float 1.6180339887498949;
      Float (-1e-300);
      Float 12345678901234567890.;
      String "plain";
      String "esc \"quotes\" back\\slash\nnewline\ttab\001ctl";
      List [ Int 1; List []; Obj [] ];
      Obj [ ("a", Int 1); ("nested", Obj [ ("b", List [ Float 2.5; Null ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "pretty round-trip" true (of_string (to_string v) = v);
      Alcotest.(check bool) "compact round-trip" true
        (of_string (to_string ~indent:false v) = v))
    samples;
  (* Unicode escapes decode to UTF-8. *)
  Alcotest.(check bool) "\\u escape" true (of_string {|"é€"|} = String "\xc3\xa9\xe2\x82\xac");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "parse error on %S" bad)
        true
        (match of_string bad with exception Parse_error _ -> true | _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "12 34"; "nul" ]

let test_manifest_roundtrip () =
  let m =
    {
      Obs.Run_manifest.schema_version = Obs.Run_manifest.schema_version;
      kind = "experiment";
      name = "fig1";
      seed = 42;
      scale = 0.05;
      jobs = 7;
      git = "81de300-dirty";
      cores = 4;
      phases =
        [
          { Obs.Run_manifest.phase = "fig1"; wall_s = 1.25; cpu_s = 1.1875; count = 1 };
          { Obs.Run_manifest.phase = "exec.drain"; wall_s = 0.7071067811865476; cpu_s = 0.7; count = 3 };
        ];
      counters = [ ("initiative.performed", 278); ("sim.steps", 4200) ];
      histograms = [ ("exec.chunk_ns", [| 0; 0; 3; 1 |]) ];
      metrics = [ ("replicas_per_sec/2", 304.94) ];
      profile =
        [
          {
            Obs.Profile.kernel = "greedy.build";
            wall_s = 0.5;
            count = 2;
            ops = 20000;
            minor_words = 1234.;
            major_words = 56.;
            promoted_words = 7.;
          };
        ];
    }
  in
  let back = Obs.Run_manifest.of_string (Obs.Run_manifest.to_string m) in
  Alcotest.(check bool) "manifest round-trips" true (back = m);
  Alcotest.(check (option int)) "counter accessor" (Some 4200)
    (Obs.Run_manifest.counter back "sim.steps");
  Alcotest.(check (option (float 1e-9))) "metric accessor" (Some 304.94)
    (Obs.Run_manifest.metric back "replicas_per_sec/2");
  (* File round-trip through write/read. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "stratify-obs-test" in
  let path = Obs.Run_manifest.write ~dir m in
  Alcotest.(check bool) "file name" true (Filename.basename path = "fig1-42.json");
  Alcotest.(check bool) "file round-trips" true (Obs.Run_manifest.read path = m)

let test_capture_snapshots_probes () =
  with_obs (fun () ->
      Obs.Span.reset ();
      let c = Obs.Counter.make "test.capture" in
      Obs.Span.with_ "phase-a" (fun () -> Obs.Counter.add c 5);
      let m =
        Obs.Run_manifest.capture ~kind:"experiment" ~name:"unit" ~seed:1 ~scale:1.0 ~jobs:1 ()
      in
      Alcotest.(check bool) "captured counter" true
        (match Obs.Run_manifest.counter m "test.capture" with Some v -> v >= 5 | None -> false);
      Alcotest.(check bool) "captured phase" true
        (List.exists (fun p -> p.Obs.Run_manifest.phase = "phase-a") m.Obs.Run_manifest.phases);
      Alcotest.(check int) "schema version" Obs.Run_manifest.schema_version m.Obs.Run_manifest.schema_version)

let suite =
  [
    Alcotest.test_case "counters are monotone" `Quick test_counter_monotone;
    Alcotest.test_case "counters gated on the switch" `Quick test_counter_gating;
    Alcotest.test_case "counter registry idempotent" `Quick test_counter_registry;
    Alcotest.test_case "timers accumulate" `Quick test_timer_accumulates;
    Alcotest.test_case "spans nest correctly" `Quick test_spans_nest;
    Alcotest.test_case "spans survive exceptions" `Quick test_span_exception_safe;
    Alcotest.test_case "histogram buckets exact at powers of two" `Quick
      test_histogram_buckets_exact;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "capture snapshots live probes" `Quick test_capture_snapshots_probes;
  ]
