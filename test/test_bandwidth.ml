module Rng = Stratify_prng.Rng
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Empirical = Stratify_stats.Empirical
module Series = Stratify_stats.Series
open Stratify_core

let simple_profile =
  Profile.of_points [| (10., 0.); (100., 0.5); (1000., 1.) |]

let test_profile_validation () =
  let invalid name points =
    match Profile.of_points points with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  invalid "too few" [| (1., 0.) |];
  invalid "non-increasing bw" [| (10., 0.); (10., 1.) |];
  invalid "decreasing frac" [| (10., 0.); (20., 0.5); (30., 0.4); (40., 1.) |];
  invalid "frac not 0..1" [| (10., 0.1); (20., 1.) |];
  invalid "non-positive bw" [| (0., 0.); (10., 1.) |]

let test_cdf_quantile_inverse () =
  let p = simple_profile in
  Helpers.check_close "cdf lo" 0. (Profile.cdf p 10.);
  Helpers.check_close "cdf mid" 0.5 (Profile.cdf p 100.);
  Helpers.check_close "cdf hi" 1. (Profile.cdf p 1000.);
  Helpers.check_close "cdf clamp" 0. (Profile.cdf p 1.);
  Helpers.check_close "quantile mid" 100. (Profile.quantile p 0.5);
  (* log-linear midpoint of [10,100] at u=0.25 *)
  Helpers.check_close ~eps:1e-9 "log-linear interp" (sqrt 1000.) (Profile.quantile p 0.25);
  for i = 0 to 50 do
    let u = float_of_int i /. 50. in
    Helpers.check_close ~eps:1e-9 "inverse" u (Profile.cdf p (Profile.quantile p u))
  done

let test_density_integrates_to_one () =
  let p = Saroiu.profile in
  let lo, hi = Profile.support p in
  let steps = 200_000 in
  let llo = log lo and lhi = log hi in
  let integral = ref 0. in
  for k = 0 to steps - 1 do
    let x0 = exp (llo +. (float_of_int k /. float_of_int steps *. (lhi -. llo))) in
    let x1 = exp (llo +. (float_of_int (k + 1) /. float_of_int steps *. (lhi -. llo))) in
    let xm = sqrt (x0 *. x1) in
    integral := !integral +. (Profile.density p xm *. (x1 -. x0))
  done;
  Helpers.check_close ~eps:1e-3 "density integral" 1. !integral

let test_sampling_matches_cdf () =
  let p = Saroiu.profile in
  let rng = Rng.create 7 in
  let samples = Array.init 20_000 (fun _ -> Profile.sample p rng) in
  let e = Empirical.of_samples samples in
  let ks = Empirical.ks_distance_to e (Profile.cdf p) in
  Alcotest.(check bool) (Printf.sprintf "KS %.4f small" ks) true (ks < 0.02)

let test_rank_bandwidths_decreasing () =
  let bw = Profile.rank_bandwidths Saroiu.profile ~n:500 in
  Alcotest.(check int) "length" 500 (Array.length bw);
  for r = 1 to 499 do
    Alcotest.(check bool) "non-increasing" true (bw.(r) <= bw.(r - 1))
  done;
  Alcotest.(check bool) "best is fast" true (bw.(0) > 10_000.);
  Alcotest.(check bool) "worst is slow" true (bw.(499) < 100.)

let test_rank_bandwidths_validation () =
  List.iter
    (fun n ->
      match Profile.rank_bandwidths Saroiu.profile ~n with
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d names the offending value: %s" n msg)
            true
            (Helpers.contains msg (string_of_int n))
      | _ -> Alcotest.failf "n=%d: expected Invalid_argument" n)
    [ 1; 0; -3 ]

let test_series_export () =
  let s = Profile.to_series simple_profile ~points:11 in
  Alcotest.(check int) "points" 11 (Series.length s);
  Helpers.check_close "starts at 0%" 0. (snd s.Series.points.(0));
  Helpers.check_close "ends at 100%" 100. (Series.final_value s)

let test_saroiu_shape () =
  let p = Saroiu.profile in
  (* Fig 10's gross shape: a wide distribution over four decades. *)
  Alcotest.(check bool) "some hosts below 64kbps" true (Profile.cdf p 64. > 0.05);
  Alcotest.(check bool) "most hosts below 10Mbps" true (Profile.cdf p 10_000. > 0.85);
  Alcotest.(check bool) "median in DSL/cable range" true
    (Saroiu.median_upstream > 100. && Saroiu.median_upstream < 2000.);
  (* Density peaks are local maxima relative to their surroundings. *)
  Array.iter
    (fun peak ->
      let at = Profile.density p peak in
      let below = Profile.density p (peak /. 1.6) in
      Alcotest.(check bool)
        (Printf.sprintf "peak %.0f denser than %.0f" peak (peak /. 1.6))
        true (at > below))
    Saroiu.density_peaks

(* ------------------------------------------------------------------ *)
(* Share ratio (§6, Fig 11)                                            *)

let fig11_result =
  lazy
    (Share_ratio.compute
       { Share_ratio.n = 500; b0 = 3; d = 20.; profile = Saroiu.profile })

let test_fig11_best_peers_suffer () =
  let r = Lazy.force fig11_result in
  Alcotest.(check bool)
    (Printf.sprintf "best peer ratio %.3f < 1" (Share_ratio.best_peer_ratio r))
    true
    (Share_ratio.best_peer_ratio r < 1.)

let test_fig11_worst_peers_thrive () =
  let r = Lazy.force fig11_result in
  let worst = Share_ratio.worst_peer_ratio r in
  Alcotest.(check bool) (Printf.sprintf "worst peer ratio %.3f > 1.2" worst) true (worst > 1.2);
  Alcotest.(check bool) "but bounded" true (worst < 4.)

let test_fig11_density_peaks_near_one () =
  let r = Lazy.force fig11_result in
  (* Peers sitting inside a density peak exchange mostly with equals:
     ratio close to 1 (checked on interior peaks). *)
  List.iter
    (fun peak_bw ->
      let ratio = Share_ratio.ratio_near r ~bandwidth_per_slot:(peak_bw /. 3.) in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.3f near 1 at peak %.0f" ratio peak_bw)
        true
        (ratio > 0.7 && ratio < 1.45))
    [ 56.; 129.; 257.; 650. ]

let test_fig11_expected_mates_bounded () =
  let r = Lazy.force fig11_result in
  Array.iter
    (fun m -> Alcotest.(check bool) "mates <= b0" true (m <= 3. +. 1e-9))
    r.Share_ratio.expected_mates;
  (* Middle peers are nearly full with d = 20 acceptable peers. *)
  Alcotest.(check bool) "mid peer nearly full" true (r.Share_ratio.expected_mates.(250) > 2.5)

let test_fig11_series_monotone_x () =
  let r = Lazy.force fig11_result in
  let s = Share_ratio.to_series r in
  let pts = s.Series.points in
  for k = 1 to Array.length pts - 1 do
    Alcotest.(check bool) "x non-decreasing" true (fst pts.(k) >= fst pts.(k - 1))
  done

let test_rational_peer_prefers_fewer_slots () =
  (* §6's Nash-equilibrium argument: for a typical peer, cutting slots
     raises the expected share ratio. *)
  let sweep =
    Share_ratio.sweep_slots ~n:400 ~d:20. ~profile:Saroiu.profile
      ~my_upload:(Saroiu.median_upstream *. 3. /. 3. *. 3.)
      ~slots:[| 1; 2; 3 |] ()
  in
  let ratio s = snd (Array.get sweep (s - 1)) in
  Alcotest.(check bool)
    (Printf.sprintf "1 slot (%.3f) beats 3 slots (%.3f)" (ratio 1) (ratio 3))
    true
    (ratio 1 > ratio 3)

let test_top_peer_slot_scaling () =
  (* §6: a top peer's expected D/U climbs towards (and past) 1 as extra
     slots pull its per-slot bandwidth down into the strata below. *)
  let top = Profile.quantile Saroiu.profile 0.999 in
  let sweep =
    Share_ratio.sweep_slots_scaled ~n:400 ~d:20. ~profile:Saroiu.profile ~my_upload:top
      ~slots:[| 3; 12; 48 |]
  in
  let ratio k = snd sweep.(k) in
  Alcotest.(check bool)
    (Printf.sprintf "monotone recovery: %.2f < %.2f < %.2f" (ratio 0) (ratio 1) (ratio 2))
    true
    (ratio 0 < ratio 1 && ratio 1 < ratio 2);
  Alcotest.(check bool) "starts spoiled" true (ratio 0 < 0.5);
  Alcotest.(check bool) "recovers past fair" true (ratio 2 > 1.)

let test_nash_one_slot_equilibrium () =
  (* §6's claim: "a Nash equilibrium where all peers have just one TFT
     slot". All-1 is an equilibrium; the default-like profiles are not,
     with deviations pointing at 1 slot. *)
  let analyse b0 =
    Nash.symmetric_profile_analysis ~n:300 ~d:20. ~profile:Saroiu.profile ~population_b0:b0
      ~candidates:[| 1; 2; 3; 4 |] ()
  in
  let eq1 = analyse 1 in
  Alcotest.(check bool) "all-1 is an equilibrium" true eq1.Nash.is_equilibrium;
  let eq3 = analyse 3 in
  Alcotest.(check bool) "all-3 is not" false eq3.Nash.is_equilibrium;
  (* Every profitable deviation at b0=3 reduces the slot count. *)
  Array.iter
    (fun (_, best_s, status_quo, best_ratio) ->
      if best_ratio > status_quo *. 1.05 then
        Alcotest.(check bool) "deviations cut slots" true (best_s < 3))
    eq3.Nash.deviations

let test_nash_guards () =
  Alcotest.check_raises "candidates must include b0"
    (Invalid_argument "Nash.symmetric_profile_analysis: candidates must include population_b0")
    (fun () ->
      ignore
        (Nash.symmetric_profile_analysis ~n:50 ~d:10. ~profile:Saroiu.profile ~population_b0:3
           ~candidates:[| 1; 2 |] ()))

let test_share_ratio_guards () =
  Alcotest.check_raises "n too small" (Invalid_argument "Share_ratio.compute: need n >= 2")
    (fun () ->
      ignore
        (Share_ratio.compute { Share_ratio.n = 1; b0 = 3; d = 5.; profile = Saroiu.profile }))

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "cdf/quantile inverse" `Quick test_cdf_quantile_inverse;
    Alcotest.test_case "density integrates to 1" `Slow test_density_integrates_to_one;
    Alcotest.test_case "sampling matches cdf" `Slow test_sampling_matches_cdf;
    Alcotest.test_case "rank bandwidths decreasing" `Quick test_rank_bandwidths_decreasing;
    Alcotest.test_case "rank bandwidths validation" `Quick test_rank_bandwidths_validation;
    Alcotest.test_case "series export (Fig 10)" `Quick test_series_export;
    Alcotest.test_case "Saroiu profile shape (Fig 10)" `Quick test_saroiu_shape;
    Alcotest.test_case "Fig 11: best peers suffer" `Slow test_fig11_best_peers_suffer;
    Alcotest.test_case "Fig 11: worst peers thrive" `Slow test_fig11_worst_peers_thrive;
    Alcotest.test_case "Fig 11: density peaks give ratio ~ 1" `Slow
      test_fig11_density_peaks_near_one;
    Alcotest.test_case "Fig 11: expected mates bounded" `Slow test_fig11_expected_mates_bounded;
    Alcotest.test_case "Fig 11 series x-monotone" `Slow test_fig11_series_monotone_x;
    Alcotest.test_case "rational peers prefer fewer slots" `Slow
      test_rational_peer_prefers_fewer_slots;
    Alcotest.test_case "top peers recover via more slots" `Slow test_top_peer_slot_scaling;
    Alcotest.test_case "Nash: 1-slot equilibrium (§6)" `Slow test_nash_one_slot_equilibrium;
    Alcotest.test_case "Nash guards" `Quick test_nash_guards;
    Alcotest.test_case "share-ratio guards" `Quick test_share_ratio_guards;
  ]
