module Rng = Stratify_prng.Rng
module U = Stratify_graph.Undirected
module Gen = Stratify_graph.Gen
module Union_find = Stratify_graph.Union_find
module Components = Stratify_graph.Components
module Traversal = Stratify_graph.Traversal
module Metrics = Stratify_graph.Metrics

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "same set" true (Union_find.same uf 0 2);
  Alcotest.(check int) "set size" 4 (Union_find.size uf 3);
  Alcotest.(check int) "remaining sets" 3 (Union_find.count uf)

let test_add_remove_edges () =
  let g = U.create 5 in
  Alcotest.(check bool) "add" true (U.add_edge g 0 3);
  Alcotest.(check bool) "add dup" false (U.add_edge g 3 0);
  Alcotest.(check bool) "mem" true (U.mem_edge g 3 0);
  Alcotest.(check int) "edges" 1 (U.edge_count g);
  Alcotest.(check bool) "remove" true (U.remove_edge g 0 3);
  Alcotest.(check bool) "remove absent" false (U.remove_edge g 0 3);
  Alcotest.(check int) "edges after" 0 (U.edge_count g)

let test_self_loop_rejected () =
  let g = U.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Undirected.add_edge: self-loop")
    (fun () -> ignore (U.add_edge g 1 1))

let test_isolate () =
  let g = Gen.star 6 in
  Alcotest.(check int) "star edges" 5 (U.edge_count g);
  U.isolate g 0;
  Alcotest.(check int) "isolated" 0 (U.edge_count g);
  Alcotest.(check int) "degree" 0 (U.degree g 0)

let test_builders () =
  Alcotest.(check int) "complete K6 edges" 15 (U.edge_count (Gen.complete 6));
  Alcotest.(check int) "ring edges" 7 (U.edge_count (Gen.ring 7));
  Alcotest.(check int) "path edges" 6 (U.edge_count (Gen.path 7));
  let ring = Gen.ring 5 in
  for v = 0 to 4 do
    Alcotest.(check int) "ring degree" 2 (U.degree ring v)
  done

let test_sorted_neighbors_and_arrays () =
  let g = U.create 5 in
  ignore (U.add_edge g 2 4);
  ignore (U.add_edge g 2 0);
  ignore (U.add_edge g 2 3);
  Alcotest.(check (list int)) "sorted" [ 0; 3; 4 ] (U.sorted_neighbors g 2);
  let adj = U.adjacency_arrays g in
  Alcotest.(check (array int)) "row 2" [| 0; 3; 4 |] adj.(2);
  Alcotest.(check (array int)) "row 0" [| 2 |] adj.(0);
  let g2 = U.of_adjacency_arrays adj in
  Alcotest.(check int) "round trip edges" (U.edge_count g) (U.edge_count g2);
  Alcotest.(check bool) "round trip membership" true (U.mem_edge g2 2 4)

let test_gnp_edge_count () =
  let rng = Rng.create 1 in
  let n = 400 and p = 0.05 in
  let acc = Stratify_stats.Online.create () in
  for _ = 1 to 30 do
    let g = Gen.gnp rng ~n ~p in
    Stratify_stats.Online.add acc (float_of_int (U.edge_count g))
  done;
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let mean = Stratify_stats.Online.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "edge count mean %.0f near %.0f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.05 *. expected)

let test_gnp_extremes () =
  let rng = Rng.create 2 in
  Alcotest.(check int) "p=0" 0 (U.edge_count (Gen.gnp rng ~n:50 ~p:0.));
  Alcotest.(check int) "p=1" (50 * 49 / 2) (U.edge_count (Gen.gnp rng ~n:50 ~p:1.))

let test_gnp_symmetry_no_selfloop () =
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:100 ~p:0.1 in
  for v = 0 to 99 do
    List.iter
      (fun w ->
        Alcotest.(check bool) "no self" true (w <> v);
        Alcotest.(check bool) "symmetric" true (U.mem_edge g w v))
      (U.neighbors g v)
  done

let test_gnd_mean_degree () =
  let rng = Rng.create 4 in
  let acc = Stratify_stats.Online.create () in
  for _ = 1 to 20 do
    let g = Gen.gnd rng ~n:500 ~d:12. in
    Stratify_stats.Online.add acc (Metrics.mean_degree g)
  done;
  Helpers.check_close ~eps:0.5 "mean degree ~ d" 12. (Stratify_stats.Online.mean acc)

let test_gnp_adjacency_agrees () =
  let rng = Rng.create 5 in
  let adj = Gen.gnp_adjacency rng ~n:200 ~p:0.08 in
  (* sorted rows, symmetric, no self-loops *)
  Array.iteri
    (fun u row ->
      Array.iteri
        (fun k v ->
          Alcotest.(check bool) "no self" true (v <> u);
          if k > 0 then Alcotest.(check bool) "sorted" true (row.(k - 1) < v);
          Alcotest.(check bool) "symmetric" true (Array.exists (fun w -> w = u) adj.(v)))
        row)
    adj;
  (* Same distribution as Gen.gnp: compare edge totals loosely. *)
  let m = Array.fold_left (fun acc row -> acc + Array.length row) 0 adj / 2 in
  let expected = 0.08 *. float_of_int (200 * 199 / 2) in
  Alcotest.(check bool) "edge count plausible" true
    (Float.abs (float_of_int m -. expected) < 5. *. sqrt expected)

let test_attach_fresh_vertex () =
  let rng = Rng.create 6 in
  let g = U.create 100 in
  let present = Array.make 100 true in
  present.(7) <- false;
  let added =
    Gen.attach_fresh_vertex rng g ~v:0 ~p:0.5 ~present:(fun x -> present.(x))
  in
  Alcotest.(check int) "edge count matches" added (U.edge_count g);
  Alcotest.(check bool) "skips absent" true (not (U.mem_edge g 0 7));
  Alcotest.(check bool) "plausible count" true (added > 25 && added < 75);
  Alcotest.(check int) "p=0 adds none" 0
    (Gen.attach_fresh_vertex rng (U.create 10) ~v:3 ~p:0. ~present:(fun _ -> true));
  let g1 = U.create 10 in
  let all = Gen.attach_fresh_vertex rng g1 ~v:3 ~p:1. ~present:(fun _ -> true) in
  Alcotest.(check int) "p=1 adds all" 9 all

let test_components () =
  let g = U.create 7 in
  ignore (U.add_edge g 0 1);
  ignore (U.add_edge g 1 2);
  ignore (U.add_edge g 3 4);
  let c = Components.of_graph g in
  Alcotest.(check int) "count" 4 c.Components.count;
  Alcotest.(check int) "largest" 3 (Components.largest_size c);
  Helpers.check_close "mean" (7. /. 4.) (Components.mean_size c);
  Alcotest.(check bool) "same comp" true (c.Components.component.(0) = c.Components.component.(2));
  Alcotest.(check bool) "diff comp" true (c.Components.component.(0) <> c.Components.component.(3));
  Alcotest.(check (list int)) "members" [ 3; 4 ] (Components.members c c.Components.component.(3))

let test_components_connected () =
  let c = Components.of_graph (Gen.ring 10) in
  Alcotest.(check bool) "ring connected" true (Components.is_connected c);
  let c2 = Components.of_graph (U.create 3) in
  Alcotest.(check bool) "empty not connected" false (Components.is_connected c2)

let test_bfs () =
  let g = Gen.path 6 in
  let dist = Traversal.bfs_distances g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4; 5 |] dist;
  let g2 = U.create 4 in
  ignore (U.add_edge g2 0 1);
  let dist2 = Traversal.bfs_distances g2 0 in
  Alcotest.(check int) "unreachable" (-1) dist2.(3)

let test_diameter () =
  Alcotest.(check int) "path diameter" 9 (Traversal.diameter_estimate (Gen.path 10));
  Alcotest.(check int) "ring diameter" 5 (Traversal.diameter_estimate (Gen.ring 10));
  Alcotest.(check int) "complete diameter" 1 (Traversal.diameter_estimate (Gen.complete 5))

let test_metrics () =
  let k5 = Gen.complete 5 in
  Helpers.check_close "K5 mean degree" 4. (Metrics.mean_degree k5);
  Helpers.check_close "K5 clustering" 1. (Metrics.clustering_coefficient k5);
  Alcotest.(check int) "K5 max degree" 4 (Metrics.max_degree k5);
  Helpers.check_close "path clustering" 0. (Metrics.clustering_coefficient (Gen.path 5));
  let h = Metrics.degree_histogram (Gen.star 5) in
  Alcotest.(check int) "star leaves" 4 h.(1);
  Alcotest.(check int) "star centre" 1 h.(4)

let test_assortativity () =
  (* A graph linking only consecutive labels is strongly assortative. *)
  let chain = Gen.path 100 in
  Alcotest.(check bool) "chain assortative" true (Metrics.assortativity_by_label chain > 0.9);
  (* A star from vertex 0 to everyone is disassortative by label. *)
  let star = Gen.star 100 in
  Alcotest.(check bool) "star negative" true (Metrics.assortativity_by_label star < 0.)

let prop_gnp_rows_symmetric =
  Helpers.qtest ~count:50 "components of adjacency = components of graph"
    Helpers.instance_params (fun (seed, n, p, _) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p in
      let c1 = Components.of_graph g in
      let c2 = Components.of_adjacency (U.adjacency_arrays g) in
      c1.Components.count = c2.Components.count
      && Components.largest_size c1 = Components.largest_size c2)

let prop_csr_matches_adjacency_arrays =
  Helpers.qtest ~count:100 "CSR snapshot = per-row adjacency arrays"
    Helpers.instance_params (fun (seed, n, p, _) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p in
      let rows = U.adjacency_arrays g in
      let off, data = U.adjacency_csr g in
      Array.length off = n + 1
      && off.(n) = Array.length data
      && begin
           let ok = ref true in
           Array.iteri
             (fun v row ->
               if Array.sub data off.(v) (off.(v + 1) - off.(v)) <> row then ok := false)
             rows;
           !ok
         end)

let suite =
  [
    Alcotest.test_case "union-find basics" `Quick test_union_find_basic;
    Alcotest.test_case "add/remove edges" `Quick test_add_remove_edges;
    Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "isolate removes incident edges" `Quick test_isolate;
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "sorted neighbours / adjacency arrays" `Quick test_sorted_neighbors_and_arrays;
    prop_csr_matches_adjacency_arrays;
    Alcotest.test_case "G(n,p) edge-count concentration" `Slow test_gnp_edge_count;
    Alcotest.test_case "G(n,p) extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "G(n,p) symmetry, no self-loops" `Quick test_gnp_symmetry_no_selfloop;
    Alcotest.test_case "G(n,d) mean degree" `Slow test_gnd_mean_degree;
    Alcotest.test_case "gnp_adjacency invariants" `Quick test_gnp_adjacency_agrees;
    Alcotest.test_case "attach_fresh_vertex" `Quick test_attach_fresh_vertex;
    Alcotest.test_case "connected components" `Quick test_components;
    Alcotest.test_case "is_connected" `Quick test_components_connected;
    Alcotest.test_case "BFS distances" `Quick test_bfs;
    Alcotest.test_case "diameter estimates" `Quick test_diameter;
    Alcotest.test_case "structural metrics" `Quick test_metrics;
    Alcotest.test_case "label assortativity" `Quick test_assortativity;
    prop_gnp_rows_symmetric;
  ]

(* ------------------------------------------------------------------ *)
(* Spatial generators                                                  *)

module Spatial = Stratify_graph.Spatial

let test_positions_and_distance () =
  let rng = Rng.create 31 in
  let pos = Spatial.random_positions rng ~n:50 in
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "in unit square" true (x >= 0. && x < 1. && y >= 0. && y < 1.))
    pos;
  Helpers.check_close "self distance" 0. (Spatial.distance pos 3 3);
  Helpers.check_close "symmetric" (Spatial.distance pos 1 2) (Spatial.distance pos 2 1);
  Alcotest.(check bool) "torus <= plane" true
    (Spatial.toroidal_distance pos 1 2 <= Spatial.distance pos 1 2 +. 1e-12);
  Alcotest.(check bool) "torus bounded" true
    (Spatial.toroidal_distance pos 4 5 <= sqrt 0.5 +. 1e-12)

let test_random_geometric () =
  let rng = Rng.create 32 in
  let g, pos = Spatial.random_geometric rng ~n:100 ~radius:0.2 () in
  (* Every edge within the radius, every close pair connected. *)
  U.iter_edges
    (fun u v ->
      Alcotest.(check bool) "edge within radius" true (Spatial.distance pos u v <= 0.2))
    g;
  for u = 0 to 99 do
    for v = u + 1 to 99 do
      if Spatial.distance pos u v <= 0.2 then
        Alcotest.(check bool) "close pair connected" true (U.mem_edge g u v)
    done
  done

let test_random_geometric_torus_denser () =
  let rng = Rng.create 33 in
  let g_plane, _ = Spatial.random_geometric rng ~n:200 ~radius:0.15 () in
  let rng2 = Rng.create 33 in
  let g_torus, _ = Spatial.random_geometric rng2 ~n:200 ~radius:0.15 ~torus:true () in
  (* Same positions (same seed), wrapping can only add edges. *)
  Alcotest.(check bool) "torus adds edges" true
    (U.edge_count g_torus >= U.edge_count g_plane)

let test_watts_strogatz_lattice () =
  let rng = Rng.create 34 in
  let g = Spatial.watts_strogatz rng ~n:40 ~k:4 ~beta:0. in
  Alcotest.(check int) "lattice edges" 80 (U.edge_count g);
  for v = 0 to 39 do
    Alcotest.(check int) "degree k" 4 (U.degree g v)
  done;
  (* beta = 0 keeps the high-clustering ring lattice. *)
  Alcotest.(check bool) "clustered" true (Metrics.clustering_coefficient g > 0.4)

let test_watts_strogatz_small_world () =
  let rng = Rng.create 35 in
  let lattice = Spatial.watts_strogatz rng ~n:200 ~k:6 ~beta:0. in
  let rewired = Spatial.watts_strogatz rng ~n:200 ~k:6 ~beta:0.2 in
  (* A few shortcuts collapse the diameter while edges stay ~constant. *)
  Alcotest.(check bool) "diameter shrinks" true
    (Traversal.diameter_estimate rewired < Traversal.diameter_estimate lattice);
  Alcotest.(check bool) "edge count preserved" true
    (abs (U.edge_count rewired - U.edge_count lattice) <= 0)

let test_watts_strogatz_guards () =
  let rng = Rng.create 36 in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Spatial.watts_strogatz: k must be even and >= 2") (fun () ->
      ignore (Spatial.watts_strogatz rng ~n:10 ~k:3 ~beta:0.1));
  Alcotest.check_raises "k too big" (Invalid_argument "Spatial.watts_strogatz: need k < n")
    (fun () -> ignore (Spatial.watts_strogatz rng ~n:4 ~k:4 ~beta:0.1))

let spatial_suite =
  [
    Alcotest.test_case "positions and distances" `Quick test_positions_and_distance;
    Alcotest.test_case "random geometric graph" `Quick test_random_geometric;
    Alcotest.test_case "toroidal geometric graph" `Quick test_random_geometric_torus_denser;
    Alcotest.test_case "watts-strogatz lattice" `Quick test_watts_strogatz_lattice;
    Alcotest.test_case "watts-strogatz small world" `Quick test_watts_strogatz_small_world;
    Alcotest.test_case "watts-strogatz guards" `Quick test_watts_strogatz_guards;
  ]

let suite = suite @ spatial_suite
