module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Discrete = Stratify_stats.Discrete
module Series = Stratify_stats.Series
open Stratify_core

(* ------------------------------------------------------------------ *)
(* One_matching (Algorithm 2)                                          *)

let test_best_peer_row_is_geometric () =
  (* For the best peer the recurrence collapses exactly:
     D(0,j) = p(1-p)^(j-1). *)
  let n = 50 and p = 0.2 in
  let row = (One_matching.mate_distributions ~n ~p ~peers:[| 0 |]).(0) in
  for j = 1 to n - 1 do
    let expected = p *. Float.pow (1. -. p) (float_of_int (j - 1)) in
    Helpers.check_close ~eps:1e-12 (Printf.sprintf "D(0,%d)" j) expected (Discrete.mass row j)
  done;
  Helpers.check_close "D(0,0) = 0" 0. (Discrete.mass row 0)

let test_matrix_symmetric_subprobability () =
  let n = 60 and p = 0.15 in
  let m = One_matching.matrix ~n ~p in
  for i = 0 to n - 1 do
    let mass = ref 0. in
    for j = 0 to n - 1 do
      Helpers.check_close ~eps:1e-14 "symmetric" m.(i).(j) m.(j).(i);
      Alcotest.(check bool) "non-negative" true (m.(i).(j) >= 0.);
      mass := !mass +. m.(i).(j)
    done;
    Alcotest.(check bool) "row mass <= 1" true (!mass <= 1. +. 1e-9)
  done;
  Helpers.check_close "diagonal zero" 0. m.(7).(7)

let test_row_mass_tends_to_one () =
  (* Lemma 1: as peers are added below, any fixed peer finds a mate
     almost surely. *)
  let p = 0.1 in
  let mass n = One_matching.match_probability ~n ~p ~peer:4 in
  let m50 = mass 50 and m200 = mass 200 and m800 = mass 800 in
  Alcotest.(check bool) "monotone in n" true (m50 <= m200 && m200 <= m800);
  Alcotest.(check bool) (Printf.sprintf "near one (%.4f)" m800) true (m800 > 0.99)

let test_worst_peer_matched_half_the_time () =
  (* §5.3: the worst peer is matched in (about) half of the cases. *)
  let n = 600 and p = 0.05 in
  let mass = One_matching.match_probability ~n ~p ~peer:(n - 1) in
  Helpers.check_close ~eps:0.02 "worst peer mass 1/2" 0.5 mass

let test_middle_peer_symmetric_shift () =
  (* §5.3 / Fig 8(b): for mid-rank peers the mate distribution is
     symmetric around the peer and shifts with rank. *)
  let n = 2000 and p = 0.01 in
  let rows = One_matching.mate_distributions ~n ~p ~peers:[| 800; 1000 |] in
  let mean0 = Discrete.mean rows.(0) and mean1 = Discrete.mean rows.(1) in
  Helpers.check_close ~eps:12. "centred on peer 800" 800. mean0;
  Helpers.check_close ~eps:12. "centred on peer 1000" 1000. mean1;
  Helpers.check_close ~eps:12. "pure shift" 200. (mean1 -. mean0)

let test_expectations_consistency () =
  let n = 80 and p = 0.1 in
  let m = One_matching.matrix ~n ~p in
  let value j = float_of_int (j * j) in
  let e, mass = One_matching.expectations ~n ~p ~value in
  for i = 0 to n - 1 do
    let expected_e = ref 0. and expected_mass = ref 0. in
    for j = 0 to n - 1 do
      expected_e := !expected_e +. (m.(i).(j) *. value j);
      expected_mass := !expected_mass +. m.(i).(j)
    done;
    Helpers.check_close ~eps:1e-10 "expectation" !expected_e e.(i);
    Helpers.check_close ~eps:1e-10 "mass" !expected_mass mass.(i)
  done

let test_monte_carlo_agreement_1matching () =
  (* Simulate the real stable matching on G(n,p) and compare empirical
     pair frequencies with Algorithm 2 (Assumption 1 is approximate but
     tight at small p). *)
  let n = 60 and p = 0.08 and runs = 4000 in
  let rng = Helpers.rng ~seed:99 () in
  let counts = Array.make_matrix n n 0 in
  for _ = 1 to runs do
    let adj = Gen.gnp_adjacency rng ~n ~p in
    let inst = Instance.of_adjacency ~adj ~b:(Array.make n 1) () in
    let partner = Greedy.stable_partners_array inst in
    Array.iteri (fun i j -> if j > i then counts.(i).(j) <- counts.(i).(j) + 1) partner
  done;
  let model = One_matching.matrix ~n ~p in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let freq = float_of_int counts.(i).(j) /. float_of_int runs in
      worst := Float.max !worst (Float.abs (freq -. model.(i).(j)))
    done
  done;
  (* Sampling noise at 4000 runs is ~0.008 for p~0.1 cells. *)
  Alcotest.(check bool) (Printf.sprintf "max gap %.4f < 0.025" !worst) true (!worst < 0.025)

(* ------------------------------------------------------------------ *)
(* Exact_small & Fig 7                                                 *)

let test_fig7_closed_forms () =
  let p = 0.3 in
  let exact = Exact_small.mate_matrix ~n:3 ~p ~b0:1 in
  let d12, d13, d23 = Exact_small.fig7_exact ~p in
  Helpers.check_close ~eps:1e-12 "D(1,2)" d12 exact.(0).(1);
  Helpers.check_close ~eps:1e-12 "D(1,3)" d13 exact.(0).(2);
  Helpers.check_close ~eps:1e-12 "D(2,3)" d23 exact.(1).(2)

let test_fig7_approximation_error () =
  (* Algorithm 2 overestimates D(2,3) by exactly p^3(1-p). *)
  List.iter
    (fun p ->
      let exact = Exact_small.mate_matrix ~n:3 ~p ~b0:1 in
      let approx = One_matching.matrix ~n:3 ~p in
      let gap = approx.(1).(2) -. exact.(1).(2) in
      Helpers.check_close ~eps:1e-12
        (Printf.sprintf "gap at p=%.2f" p)
        (Exact_small.fig7_approximation_error ~p)
        gap;
      (* The two pairs involving the best peer are exact. *)
      Helpers.check_close ~eps:1e-12 "D(1,2) exact" exact.(0).(1) approx.(0).(1);
      Helpers.check_close ~eps:1e-12 "D(1,3) exact" exact.(0).(2) approx.(0).(2))
    [ 0.1; 0.3; 0.5; 0.9 ]

let test_exact_small_masses () =
  (* Each row of the exact matrix is a sub-probability; the weights over
     all graphs sum to 1 so nothing exceeds it. *)
  let m = Exact_small.mate_matrix ~n:5 ~p:0.4 ~b0:2 in
  Array.iteri
    (fun i row ->
      let mass = Array.fold_left ( +. ) 0. row in
      Alcotest.(check bool) (Printf.sprintf "row %d mass <= b0" i) true (mass <= 2. +. 1e-9);
      Helpers.check_close "no self mass" 0. row.(i))
    m

let test_exact_small_symmetry_pairwise () =
  (* Mate relation is symmetric even though choice indices are not. *)
  let m = Exact_small.mate_matrix ~n:5 ~p:0.35 ~b0:2 in
  for i = 0 to 4 do
    for j = 0 to 4 do
      Helpers.check_close ~eps:1e-12 "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_exact_choice_marginals_sum () =
  let b0 = 2 in
  let per_choice = Exact_small.choice_matrices ~n:5 ~p:0.3 ~b0 in
  let total = Exact_small.mate_matrix ~n:5 ~p:0.3 ~b0 in
  for i = 0 to 4 do
    for j = 0 to 4 do
      let s = ref 0. in
      for c = 0 to b0 - 1 do
        s := !s +. per_choice.(c).(i).(j)
      done;
      Helpers.check_close ~eps:1e-12 "choices sum to mate prob" total.(i).(j) !s
    done
  done

let test_exact_small_guards () =
  Alcotest.check_raises "n too large"
    (Invalid_argument "Exact_small: n too large for exhaustive enumeration") (fun () ->
      ignore (Exact_small.mate_matrix ~n:8 ~p:0.5 ~b0:1))

(* ------------------------------------------------------------------ *)
(* B_matching (Algorithm 3)                                            *)

let test_b_matching_reduces_to_one () =
  let gap = B_matching.reduces_to_one_matching ~n:120 ~p:0.1 in
  Alcotest.(check bool) (Printf.sprintf "b0=1 gap %.2e" gap) true (gap < 1e-12)

let test_choice_distributions_shapes () =
  let n = 300 and p = 0.05 and b0 = 3 in
  let rows = B_matching.choice_distributions ~n ~p ~b0 ~peer:150 in
  Alcotest.(check int) "b0 rows" b0 (Array.length rows);
  let masses = Array.map Discrete.total_mass rows in
  (* Choice c+1 can only be filled if choice c was: masses decrease. *)
  for c = 0 to b0 - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "mass c%d >= c%d" (c + 1) (c + 2))
      true
      (masses.(c) >= masses.(c + 1) -. 1e-12)
  done;
  Array.iter (fun m -> Alcotest.(check bool) "mass <= 1" true (m <= 1. +. 1e-9)) masses;
  (* First choice is the best mate: its mean rank must be the smallest. *)
  Alcotest.(check bool) "choice 1 better than choice 3" true
    (Discrete.mean rows.(0) < Discrete.mean rows.(b0 - 1))

let test_b_matching_vs_exact_small () =
  (* The independence approximation is decent already at n=6. *)
  let n = 6 and b0 = 2 and p = 0.3 in
  let exact = Exact_small.choice_matrices ~n ~p ~b0 in
  let approx = Array.init b0 (fun _ -> Array.make_matrix n n 0.) in
  B_matching.sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      for c = 0 to b0 - 1 do
        approx.(c).(i).(j) <- di.(c);
        approx.(c).(j).(i) <- dj.(c)
      done);
  let worst = ref 0. in
  for c = 0 to b0 - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        worst := Float.max !worst (Float.abs (exact.(c).(i).(j) -. approx.(c).(i).(j)))
      done
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "max gap %.4f" !worst) true (!worst < 0.08)

let test_b_matching_mate_count () =
  let n = 300 and p = 0.08 and b0 = 3 in
  let mass_mid = B_matching.mate_count_mass ~n ~p ~b0 ~peer:150 in
  Alcotest.(check bool) "at most b0" true (mass_mid <= float_of_int b0 +. 1e-9);
  Alcotest.(check bool) (Printf.sprintf "mid peer nearly full (%.3f)" mass_mid) true
    (mass_mid > 2.5)

let test_b_matching_expectations_consistency () =
  let n = 40 and p = 0.2 and b0 = 2 in
  let value j = float_of_int j in
  let e, mass = B_matching.expectations ~n ~p ~b0 ~value in
  (* Recompute from per-peer distributions. *)
  for peer = 0 to n - 1 do
    let rows = B_matching.choice_distributions ~n ~p ~b0 ~peer in
    let expected_e = Array.fold_left (fun acc r -> acc +. Discrete.expectation r value) 0. rows in
    let expected_mass = Array.fold_left (fun acc r -> acc +. Discrete.total_mass r) 0. rows in
    Helpers.check_close ~eps:1e-10 "expectation" expected_e e.(peer);
    Helpers.check_close ~eps:1e-10 "mass" expected_mass mass.(peer)
  done

let test_monte_carlo_agreement_2matching () =
  (* Fig 9 in miniature: simulate G(n,p) 2-matchings, compare first and
     second choice frequencies for a mid peer with Algorithm 3. *)
  let n = 80 and p = 0.07 and b0 = 2 and runs = 3000 in
  let rng = Helpers.rng ~seed:123 () in
  let counts = Array.init b0 (fun _ -> Array.make_matrix n n 0) in
  for _ = 1 to runs do
    let adj = Gen.gnp_adjacency rng ~n ~p in
    let inst = Instance.of_adjacency ~adj ~b:(Array.make n b0) () in
    let config = Greedy.stable_config inst in
    for i = 0 to n - 1 do
      List.iteri
        (fun c j -> counts.(c).(i).(j) <- counts.(c).(i).(j) + 1)
        (Config.mates config i)
    done
  done;
  let approx = Array.init b0 (fun _ -> Array.make_matrix n n 0.) in
  B_matching.sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      for c = 0 to b0 - 1 do
        approx.(c).(i).(j) <- di.(c);
        approx.(c).(j).(i) <- dj.(c)
      done);
  let worst = ref 0. in
  for c = 0 to b0 - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let freq = float_of_int counts.(c).(i).(j) /. float_of_int runs in
        worst := Float.max !worst (Float.abs (freq -. approx.(c).(i).(j)))
      done
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "max gap %.4f < 0.035" !worst) true (!worst < 0.035)

let test_expected_offsets () =
  let n = 1500 and p = 0.02 in
  let offsets = One_matching.expected_offsets ~n ~p in
  (* Best peer: geometric with success p, mean 1/p. *)
  Helpers.check_close_rel ~rel:0.02 "best peer offset 1/p" (1. /. p) offsets.(0);
  (* Mid peers: symmetric two-sided law with heavier combined tails than
     the best peer's one-sided geometric (measured ~1.38/p), flat across
     the middle (shift invariance). *)
  Alcotest.(check bool) "mid heavier than best" true
    (offsets.(n / 2) > offsets.(0) && offsets.(n / 2) < 2. /. p);
  Helpers.check_close_rel ~rel:0.05 "flat middle" offsets.(n / 2) offsets.(2 * n / 5);
  (* Offsets scale like 1/p = n/d: doubling p halves the offset. *)
  let offsets2 = One_matching.expected_offsets ~n ~p:(2. *. p) in
  Helpers.check_close_rel ~rel:0.1 "offset ~ 1/p" (offsets.(n / 2) /. 2.) offsets2.(n / 2)

let test_joint_consistency () =
  (* Row/column sums of the joint recover the marginals, and the joint is
     symmetric under (i,ci) <-> (j,cj) by construction. *)
  let n = 40 and p = 0.2 and b0 = 3 in
  let marginals_i = Array.make_matrix b0 (n * n) 0. in
  let marginals_j = Array.make_matrix b0 (n * n) 0. in
  B_matching.sweep ~n ~p ~b0 ~f:(fun i j di dj ->
      for c = 0 to b0 - 1 do
        marginals_i.(c).((i * n) + j) <- di.(c);
        marginals_j.(c).((i * n) + j) <- dj.(c)
      done);
  B_matching.sweep_joint ~n ~p ~b0 ~f:(fun i j joint ->
      for ci = 0 to b0 - 1 do
        let row_sum = Array.fold_left ( +. ) 0. joint.(ci) in
        Helpers.check_close ~eps:1e-12 "row sum = D_ci(i,j)" marginals_i.(ci).((i * n) + j)
          row_sum
      done;
      for cj = 0 to b0 - 1 do
        let col_sum = ref 0. in
        for ci = 0 to b0 - 1 do
          col_sum := !col_sum +. joint.(ci).(cj)
        done;
        Helpers.check_close ~eps:1e-12 "col sum = D_cj(j,i)" marginals_j.(cj).((i * n) + j)
          !col_sum
      done)

(* ------------------------------------------------------------------ *)
(* Fluid limit                                                         *)

let test_fluid_density_properties () =
  let d = 20. in
  Helpers.check_close "at zero" d (Fluid.density ~d 0.);
  Helpers.check_close "below zero" 0. (Fluid.density ~d (-0.1));
  Helpers.check_close "cdf inf" 1. (Fluid.cdf ~d 10.);
  Helpers.check_close "mean" 0.05 (Fluid.mean_offset ~d);
  (* numeric integral of the density over [0, 2] ~ 1 *)
  let steps = 20_000 in
  let h = 2. /. float_of_int steps in
  let integral = ref 0. in
  for k = 0 to steps - 1 do
    integral := !integral +. (h *. Fluid.density ~d ((float_of_int k +. 0.5) *. h))
  done;
  Helpers.check_close ~eps:1e-6 "integral" 1. !integral

let test_fluid_convergence () =
  let d = 10. in
  let gap_small = Fluid.max_gap_to_limit ~n:200 ~d in
  let gap_large = Fluid.max_gap_to_limit ~n:1600 ~d in
  Alcotest.(check bool)
    (Printf.sprintf "gap shrinks: %.4f -> %.4f" gap_small gap_large)
    true
    (gap_large < gap_small && gap_large < 0.2)

let test_fluid_series_shape () =
  let s = Fluid.scaled_best_peer_series ~n:400 ~d:10. in
  Alcotest.(check int) "length" 399 (Series.length s);
  (* Density at beta=0 should be close to d. *)
  Alcotest.(check bool) "starts near d" true (Float.abs (snd s.Series.points.(0) -. 10.) < 0.5)

let suite =
  [
    Alcotest.test_case "best peer row is geometric" `Quick test_best_peer_row_is_geometric;
    Alcotest.test_case "matrix symmetric sub-probability" `Quick test_matrix_symmetric_subprobability;
    Alcotest.test_case "row mass tends to one (Lemma 1)" `Quick test_row_mass_tends_to_one;
    Alcotest.test_case "worst peer matched half the time" `Quick
      test_worst_peer_matched_half_the_time;
    Alcotest.test_case "middle peers: symmetric shifting (Fig 8b)" `Quick
      test_middle_peer_symmetric_shift;
    Alcotest.test_case "expectations consistency" `Quick test_expectations_consistency;
    Alcotest.test_case "Monte-Carlo agreement, 1-matching" `Slow
      test_monte_carlo_agreement_1matching;
    Alcotest.test_case "Fig 7 closed forms" `Quick test_fig7_closed_forms;
    Alcotest.test_case "Fig 7 approximation error p^3(1-p)" `Quick test_fig7_approximation_error;
    Alcotest.test_case "exact enumeration masses" `Quick test_exact_small_masses;
    Alcotest.test_case "exact mate symmetry" `Quick test_exact_small_symmetry_pairwise;
    Alcotest.test_case "choice marginals sum to mate probability" `Quick
      test_exact_choice_marginals_sum;
    Alcotest.test_case "exact enumeration guards" `Quick test_exact_small_guards;
    Alcotest.test_case "Algorithm 3 reduces to Algorithm 2 at b0=1" `Quick
      test_b_matching_reduces_to_one;
    Alcotest.test_case "choice distribution shapes" `Quick test_choice_distributions_shapes;
    Alcotest.test_case "Algorithm 3 vs exact enumeration" `Quick test_b_matching_vs_exact_small;
    Alcotest.test_case "expected mate count" `Quick test_b_matching_mate_count;
    Alcotest.test_case "b-matching expectations consistency" `Quick
      test_b_matching_expectations_consistency;
    Alcotest.test_case "Monte-Carlo agreement, 2-matching (Fig 9)" `Slow
      test_monte_carlo_agreement_2matching;
    Alcotest.test_case "joint choice distributions consistent" `Quick test_joint_consistency;
    Alcotest.test_case "expected rank offsets (model MMO)" `Quick test_expected_offsets;
    Alcotest.test_case "fluid density properties" `Quick test_fluid_density_properties;
    Alcotest.test_case "fluid limit convergence (Conjecture 1)" `Quick test_fluid_convergence;
    Alcotest.test_case "fluid series shape" `Quick test_fluid_series_shape;
  ]
