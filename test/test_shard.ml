(* Rank-banded sharded matching: band geometry, the cluster-cut renewal
   scan, and the headline property — the sharded solve is identical to
   the unsharded greedy for any band count, overlap and backend
   (Theorem 1's uniqueness makes "blocking-pair-free" mean "equal"). *)

module Rng = Stratify_prng.Rng
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Band geometry                                                       *)

let test_band_ranges () =
  let ranges = Shard.band_ranges ~n:10 ~bands:3 ~overlap:2 in
  Alcotest.(check int) "bands" 3 (Array.length ranges);
  (* Cores partition [0, n). *)
  Alcotest.(check int) "first core starts at 0" 0 ranges.(0).Shard.core_lo;
  Alcotest.(check int) "last core ends at n" 10 ranges.(2).Shard.core_hi;
  Array.iteri
    (fun i r ->
      if i > 0 then
        Alcotest.(check int)
          (Printf.sprintf "band %d contiguous" i)
          ranges.(i - 1).Shard.core_hi r.Shard.core_lo;
      Alcotest.(check int) "ext_lo pads by overlap" (max 0 (r.Shard.core_lo - 2)) r.Shard.ext_lo;
      Alcotest.(check int) "ext_hi pads by overlap" (min 10 (r.Shard.core_hi + 2)) r.Shard.ext_hi)
    ranges

let expect_invalid what f =
  match f () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the offence: %s" what msg)
        true
        (String.length msg > 0)
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_band_validation () =
  expect_invalid "bands = 0" (fun () -> Shard.band_ranges ~n:10 ~bands:0 ~overlap:0);
  expect_invalid "bands > n" (fun () -> Shard.band_ranges ~n:10 ~bands:11 ~overlap:0);
  expect_invalid "negative overlap" (fun () -> Shard.band_ranges ~n:10 ~bands:2 ~overlap:(-1));
  let inst = Instance.complete ~n:6 ~b:(Array.make 6 1) () in
  expect_invalid "stable_config jobs = 0" (fun () -> Shard.stable_config ~jobs:0 inst);
  expect_invalid "stable_config bands = 0" (fun () -> Shard.stable_config ~bands:0 inst);
  expect_invalid "stable_config bands > n" (fun () -> Shard.stable_config ~bands:7 inst);
  expect_invalid "stable_config overlap < 0" (fun () ->
      Shard.stable_config ~bands:2 ~overlap:(-3) inst)

(* ------------------------------------------------------------------ *)
(* Cluster cuts (renewal points)                                       *)

let test_cuts_constant_budgets () =
  (* Constant b0: §4's block structure — cuts at every multiple of b0+1. *)
  let n = 17 and b0 = 2 in
  let inst = Instance.complete ~n ~b:(Array.make n b0) () in
  let expected = List.init ((n / (b0 + 1)) + 1) (fun i -> i * (b0 + 1)) @ [ n ] in
  let expected = List.sort_uniq Int.compare expected in
  Alcotest.(check (list int)) "multiples of b0+1" expected
    (Array.to_list (Shard.cluster_cuts inst))

let prop_cuts_are_crossing_free =
  Helpers.qtest ~count:120 "no stable pair crosses a cut (complete family)"
    QCheck.(
      make
        ~print:(fun (seed, n, bmax, removals) ->
          Printf.sprintf "seed=%d n=%d bmax=%d removals=%d" seed n bmax removals)
        Gen.(
          let* seed = int_bound 1_000_000 in
          let* n = int_range 1 60 in
          let* bmax = int_range 0 4 in
          let* removals = int_range 0 5 in
          return (seed, n, bmax, removals)))
    (fun (seed, n, bmax, removals) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let removed = List.init (min removals n) (fun _ -> Rng.int rng n) in
      let inst =
        if removals = 0 then Instance.complete ~n ~b ()
        else Instance.complete_minus ~n ~b ~removed ()
      in
      let cuts = Shard.cluster_cuts inst in
      let stable = Greedy.stable_config inst in
      Array.for_all
        (fun s ->
          let crossed = ref false in
          Config.iter_pairs (fun p q -> if p < s && q >= s then crossed := true) stable;
          not !crossed)
        cuts
      && cuts.(0) = 0
      && cuts.(Array.length cuts - 1) = n)

let test_snap_ranges_dedup () =
  (* Cuts sparser than bands: snapped boundaries collapse and the
     effective band count drops instead of splitting a cluster. *)
  let ranges = Shard.snap_ranges ~n:12 ~bands:6 [| 0; 6; 12 |] in
  Alcotest.(check int) "two effective bands" 2 (Array.length ranges);
  Alcotest.(check int) "boundary at the cut" 6 ranges.(1).Shard.core_lo;
  Array.iter
    (fun r ->
      Alcotest.(check int) "no extension" r.Shard.core_lo r.Shard.ext_lo;
      Alcotest.(check int) "no extension (hi)" r.Shard.core_hi r.Shard.ext_hi)
    ranges;
  (* One giant cluster: everything collapses to a single band. *)
  Alcotest.(check int) "giant cluster -> one band" 1
    (Array.length (Shard.snap_ranges ~n:12 ~bands:6 [| 0; 12 |]))

(* ------------------------------------------------------------------ *)
(* Sharded = unsharded (the headline invariance)                       *)

let check_sharded_equal inst ~bands ~overlap =
  let reference = Greedy.stable_config inst in
  let sharded = Shard.stable_config ~bands ?overlap inst in
  Blocking.is_stable sharded
  && Config.signature sharded = Config.signature reference
  && Config.edge_count sharded = Config.edge_count reference

let shard_params =
  QCheck.make
    ~print:(fun (seed, n, bmax, bands, overlap) ->
      Printf.sprintf "seed=%d n=%d bmax=%d bands=%d overlap=%d" seed n bmax bands overlap)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 60 in
      let* bands = int_range 1 8 in
      let* bmax = int_range 0 4 in
      let* overlap = int_range 0 3 in
      return (seed, n, bmax, min bands (max 1 n), overlap))

let prop_complete_band_invariance =
  Helpers.qtest ~count:150 "complete: sharded = greedy for any bands/overlap" shard_params
    (fun (seed, n, bmax, bands, overlap) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      check_sharded_equal (Instance.complete ~n ~b ()) ~bands ~overlap:(Some overlap))

let prop_complete_minus_band_invariance =
  Helpers.qtest ~count:150 "complete_minus: sharded = greedy for any bands/overlap" shard_params
    (fun (seed, n, bmax, bands, overlap) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let removed = List.init (Rng.int rng (1 + (n / 3))) (fun _ -> Rng.int rng n) in
      check_sharded_equal (Instance.complete_minus ~n ~b ~removed ()) ~bands ~overlap:(Some overlap))

let prop_dense_band_invariance =
  Helpers.qtest ~count:150 "dense: sharded = greedy for any bands/overlap (tolerant stitch)"
    shard_params (fun (seed, n, bmax, bands, overlap) ->
      let inst = Helpers.random_instance (Rng.create seed) ~n ~p:0.4 ~bmax in
      (* Tiny explicit overlaps push work into the fixup; the default
         overlap exercises the concentration bound. *)
      let overlap = if overlap = 3 then None else Some overlap in
      check_sharded_equal inst ~bands ~overlap)

let test_default_overlap_used () =
  (* Default overlap path (None) on a constant-budget population. *)
  let n = 100 and b0 = 3 in
  let inst = Instance.complete ~n ~b:(Array.make n b0) () in
  Alcotest.(check bool) "default overlap, 7 bands" true
    (check_sharded_equal inst ~bands:7 ~overlap:None);
  Alcotest.(check bool) "overlap 0, 7 bands" true
    (check_sharded_equal inst ~bands:7 ~overlap:(Some 0))

(* ------------------------------------------------------------------ *)
(* Churn: sharded solve of a live dynamic world                        *)

let test_churn_repair_under_sharding () =
  (* Drive a dynamic-backend world through churn, then check the
     sharded solve of the live instance against the world's own
     incremental stable reference. *)
  let rng = Rng.create 77 in
  let n = 36 and d = 5. and b = 2 in
  let w = Churn.make_world rng ~n ~d ~b in
  let p = d /. float_of_int (n - 1) in
  for _ = 1 to 20 do
    Churn.churn_event rng w ~p;
    for _ = 1 to 2 do
      Churn.initiative_step rng w Initiative.Best_mate
    done
  done;
  let inst = Churn.world_instance w in
  let reference = Config.signature (Churn.world_stable w) in
  List.iter
    (fun bands ->
      Alcotest.(check string)
        (Printf.sprintf "%d bands match the churn-repaired reference" bands)
        reference
        (Config.signature (Shard.stable_config ~bands ~overlap:2 inst)))
    [ 1; 2; 5 ]

(* ------------------------------------------------------------------ *)
(* Arena reuse: scratch buffers must never change a result             *)

let prop_arena_reuse_identical =
  (* One arena threaded through many differently-sized solves: the
     scratch arrays carry stale contents from the previous instance, so
     any dependence on initial buffer state would show up as a
     signature mismatch against the fresh-allocation path. *)
  let arena = Greedy.create_arena () in
  Helpers.qtest ~count:100 "reused arena = fresh allocation (greedy + sharded)" shard_params
    (fun (seed, n, bmax, bands, overlap) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let inst = Instance.complete ~n ~b () in
      Config.signature (Greedy.stable_config ~arena inst)
      = Config.signature (Greedy.stable_config inst)
      && Config.signature (Shard.stable_config ~bands ~overlap ~arena inst)
         = Config.signature (Shard.stable_config ~bands ~overlap inst)
      && Shard.cluster_cuts ~arena inst = Shard.cluster_cuts inst)

let test_churn_repair_arena_identical () =
  (* The same arena re-solves the live world after every churn batch;
     each solve must match the arena-free solve, for both the pure
     greedy path (bands = 1) and the banded path. *)
  let rng = Rng.create 91 in
  let n = 36 and d = 5. and b = 2 in
  let w = Churn.make_world rng ~n ~d ~b in
  let p = d /. float_of_int (n - 1) in
  let arena = Greedy.create_arena () in
  for epoch = 1 to 5 do
    for _ = 1 to 4 do
      Churn.churn_event rng w ~p;
      Churn.initiative_step rng w Initiative.Best_mate
    done;
    let inst = Churn.world_instance w in
    List.iter
      (fun bands ->
        Alcotest.(check string)
          (Printf.sprintf "epoch %d, %d bands: arena solve = fresh solve" epoch bands)
          (Config.signature (Shard.stable_config ~bands ~overlap:2 inst))
          (Config.signature (Shard.stable_config ~bands ~overlap:2 ~arena inst)))
      [ 1; 3; 5 ]
  done

(* ------------------------------------------------------------------ *)
(* Config.absorb contract                                              *)

let test_absorb_guards () =
  let inst = Instance.complete ~n:6 ~b:(Array.make 6 1) () in
  let local = Greedy.stable_config (Shard.band_instance inst ~lo:0 ~hi:2) in
  let target = Config.empty inst in
  expect_invalid "absorb outside the population" (fun () ->
      Config.absorb target local ~shift:5);
  Config.absorb target local ~shift:0;
  Alcotest.(check bool) "absorbed pair present" true (Config.mated target 0 1);
  expect_invalid "absorb over mated peers" (fun () -> Config.absorb target local ~shift:0)

let suite =
  [
    Alcotest.test_case "band_ranges geometry" `Quick test_band_ranges;
    Alcotest.test_case "named validation errors" `Quick test_band_validation;
    Alcotest.test_case "cuts on constant budgets" `Quick test_cuts_constant_budgets;
    prop_cuts_are_crossing_free;
    Alcotest.test_case "snap_ranges dedup" `Quick test_snap_ranges_dedup;
    prop_complete_band_invariance;
    prop_complete_minus_band_invariance;
    prop_dense_band_invariance;
    Alcotest.test_case "default overlap" `Quick test_default_overlap_used;
    Alcotest.test_case "churn repair under sharding" `Quick test_churn_repair_under_sharding;
    prop_arena_reuse_identical;
    Alcotest.test_case "churn repair with reused arena" `Quick test_churn_repair_arena_identical;
    Alcotest.test_case "Config.absorb guards" `Quick test_absorb_guards;
  ]
