(* Tests for the pluggable event-queue backends and the defunctionalized
   event path: every backend must pop the identical total (time, seq)
   order — the invariance `--queue` relies on — plus the structural
   behaviours (calendar resizes, ladder rung spawning) and the packed
   codec. *)

module Engine = Stratify_des.Engine
module Calq = Stratify_des.Calq
module Ladq = Stratify_des.Ladq
module Binq = Stratify_des.Binq
module Pqueue = Stratify_des.Pqueue
module Packed = Stratify_net.Net.Packed

(* ------------------------------------------------------------------ *)
(* Cross-backend equivalence                                           *)

(* Replay one schedule script on an engine and log every firing as
   (clock, code).  Scripts mix sparse, clustered and exactly-equal
   times — the equal-time cluster is the historical failure mode for
   bucket-based queues. *)
let replay backend script =
  let eng = Engine.create ~backend () in
  let log = ref [] in
  Engine.set_packed_handler eng (fun eng code ->
      log := (Engine.now eng, code) :: !log;
      (* odd codes fire a child event: exercises inserts interleaved
         with pops, including inserts into already-drained spans *)
      if code land 1 = 1 then
        Engine.schedule_packed eng ~delay:(float_of_int (code land 7) /. 4.) (code / 2));
  List.iteri
    (fun i time -> Engine.schedule_packed_at eng ~time ((i * 7) land 0xFFFF))
    script;
  ignore (Engine.drain eng);
  List.rev !log

let script_gen =
  QCheck.Gen.(
    let* n = int_range 1 120 in
    (* draw times from a mix of a continuous range, a coarse lattice
       (many exact duplicates) and a single hot instant *)
    let time =
      frequency
        [
          (3, map (fun k -> float_of_int k /. 100.) (int_range 0 1000));
          (2, map (fun k -> float_of_int k *. 0.5) (int_range 0 6));
          (1, return 2.5);
        ]
    in
    list_size (return n) time)

let test_backend_equivalence =
  Helpers.qtest ~count:150 "des: backends pop the identical order"
    (QCheck.make ~print:(fun s -> String.concat "," (List.map string_of_float s)) script_gen)
    (fun script ->
      let heap = replay Engine.Heap script in
      let cal = replay Engine.Calendar script in
      let lad = replay Engine.Ladder script in
      heap = cal && heap = lad)

let test_backend_equivalence_closures () =
  (* closure events and packed events share the queue and the order *)
  let run backend =
    let eng = Engine.create ~backend () in
    let log = ref [] in
    Engine.set_packed_handler eng (fun _ code -> log := (`P, code) :: !log);
    for i = 0 to 49 do
      let t = float_of_int (i mod 5) in
      if i land 1 = 0 then Engine.schedule_at eng ~time:t (fun _ -> log := (`C, i) :: !log)
      else Engine.schedule_packed_at eng ~time:t i
    done;
    ignore (Engine.drain eng);
    List.rev !log
  in
  let heap = run Engine.Heap in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Engine.backend_name b ^ " matches heap")
        true
        (run b = heap))
    [ Engine.Calendar; Engine.Ladder ]

(* ------------------------------------------------------------------ *)
(* Raw backend structure                                               *)

(* Drive a raw backend through its SoA (times, seq, slot) interface and
   return the popped slots. *)
let pop_all add pop_min q times order =
  List.iteri (fun seq slot -> ignore (add q times ~seq ~slot)) order;
  let out = ref [] in
  let rec go () =
    let s = pop_min q ~max_time:infinity in
    if s >= 0 then begin
      out := s :: !out;
      go ()
    end
  in
  go ();
  List.rev !out

let test_calendar_resize () =
  let n = 3000 in
  let times = Array.init n (fun i -> float_of_int i *. 0.01) in
  let q = Calq.create () in
  Alcotest.(check int) "initial buckets" 16 (Calq.buckets q);
  let order = List.init n (fun i -> i) in
  let popped = pop_all Calq.add Calq.pop_min q times order in
  Alcotest.(check bool) "grew past the initial directory" true (Calq.resizes q > 0);
  Alcotest.(check int) "drained" 0 (Calq.size q);
  Alcotest.(check (list int)) "sorted order" order popped;
  (* the drain-down shrinks the directory back *)
  Alcotest.(check bool)
    (Printf.sprintf "shrunk at empty (buckets=%d)" (Calq.buckets q))
    true
    (Calq.buckets q <= 64)

let test_ladder_spawn () =
  let n = 2000 in
  (* skew: most mass near the origin, a far tail — the shape the ladder
     subdivides recursively *)
  let times =
    Array.init n (fun i ->
        if i < n - 10 then float_of_int i *. 1e-4 else 1000. +. float_of_int i)
  in
  let q = Ladq.create () in
  let order = List.init n (fun i -> i) in
  let popped = pop_all Ladq.add Ladq.pop_min q times order in
  Alcotest.(check bool) "spawned a child rung" true (Ladq.spawned q > 0);
  Alcotest.(check int) "drained" 0 (Ladq.size q);
  Alcotest.(check (list int)) "sorted order" order popped

let test_ladder_equal_key_cluster () =
  (* hundreds of entries at one exact time exceed the sort threshold but
     cannot be subdivided: must sort by seq into Bottom, not recurse *)
  let n = 400 in
  let times = Array.init n (fun i -> if i < 300 then 5.0 else 5.0 +. float_of_int i) in
  let q = Ladq.create () in
  let order = List.init n (fun i -> i) in
  let popped = pop_all Ladq.add Ladq.pop_min q times order in
  Alcotest.(check (list int)) "cluster pops in seq order" order popped

let test_ladder_insert_into_drained_span () =
  (* regression: a fully drained rung (rcur = nb) must not accept
     inserts above its last boundary — they belong to a finer tier or
     Bottom.  Interleave pops with inserts just above the drained
     cluster and check global order end to end. *)
  let cap = 600 in
  let times = Array.make cap 0. in
  let q = Ladq.create () in
  let seq = ref 0 in
  let add slot t =
    times.(slot) <- t;
    Ladq.add q times ~seq:!seq ~slot;
    incr seq
  in
  (* a big cluster the ladder will spawn over, plus a sparse tail *)
  for i = 0 to 399 do
    add i (1.0 +. (float_of_int (i mod 3) *. 1e-12))
  done;
  for i = 400 to 499 do
    add i (10. +. float_of_int i)
  done;
  let last = ref neg_infinity in
  let monotone = ref true in
  let next_slot = ref 500 in
  for _ = 1 to 200 do
    let s = Ladq.pop_min q ~max_time:infinity in
    if s >= 0 then begin
      if times.(s) < !last then monotone := false;
      last := times.(s);
      (* insert behind the remaining cluster but ahead of the clock *)
      if !next_slot < cap then begin
        add !next_slot (!last +. 1e-9);
        incr next_slot
      end
    end
  done;
  let rec drain () =
    let s = Ladq.pop_min q ~max_time:infinity in
    if s >= 0 then begin
      if times.(s) < !last then monotone := false;
      last := times.(s);
      drain ()
    end
  in
  drain ();
  Alcotest.(check bool) "pop times monotone under mid-drain inserts" true !monotone;
  Alcotest.(check int) "nothing lost" 0 (Ladq.size q)

(* ------------------------------------------------------------------ *)
(* Pqueue space leak                                                   *)

let test_pqueue_pop_releases () =
  let q = Pqueue.create () in
  let payload = ref (Bytes.create 64) in
  let w = Weak.create 1 in
  Weak.set w 0 (Some !payload);
  Pqueue.push q ~priority:1.0 !payload;
  (match Pqueue.pop q with
  | Some (_, b) -> Alcotest.(check bool) "payload back" true (b == !payload)
  | None -> Alcotest.fail "pop returned None");
  payload := Bytes.create 0;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool)
    "popped payload is collectable (no internal retention)" true
    (Weak.get w 0 = None)

(* ------------------------------------------------------------------ *)
(* Packed codec                                                        *)

let test_packed_roundtrip =
  Helpers.qtest ~count:300 "des: packed codec round-trips"
    QCheck.(
      triple (int_bound ((1 lsl Packed.kind_bits) - 1))
        (int_bound ((1 lsl Packed.id_bits) - 1))
        (int_bound ((1 lsl Packed.id_bits) - 1)))
    (fun (kind, src, dst) ->
      let code = Packed.pack_checked ~kind ~src ~dst in
      code >= 0 && Packed.kind code = kind && Packed.src code = src && Packed.dst code = dst)

let test_packed_bounds () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool)
        (name ^ " out of range rejected")
        true
        (try
           ignore (f ());
           false
         with Invalid_argument msg -> Helpers.contains msg name))
    [
      ("kind", fun () -> Packed.pack_checked ~kind:(1 lsl Packed.kind_bits) ~src:0 ~dst:0);
      ("src", fun () -> Packed.pack_checked ~kind:0 ~src:(-1) ~dst:0);
      ("dst", fun () -> Packed.pack_checked ~kind:0 ~src:0 ~dst:(1 lsl Packed.id_bits));
    ]

(* ------------------------------------------------------------------ *)
(* Engine error paths, per backend                                     *)

let test_engine_errors () =
  List.iter
    (fun backend ->
      let eng = Engine.create ~backend () in
      Alcotest.(check bool)
        "negative delay rejected" true
        (try
           Engine.schedule_packed eng ~delay:(-1.) 0;
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool)
        "negative code rejected" true
        (try
           Engine.schedule_packed eng ~delay:0. (-1);
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool)
        "packed event without handler fails loudly" true
        (try
           Engine.schedule_packed eng ~delay:0. 7;
           ignore (Engine.drain eng);
           false
         with Invalid_argument _ -> true))
    Engine.backends

let suite =
  [
    Alcotest.test_case "des: closure/packed order matches across backends" `Quick
      test_backend_equivalence_closures;
    Alcotest.test_case "des: calendar queue resizes and sorts" `Quick test_calendar_resize;
    Alcotest.test_case "des: ladder queue spawns rungs and sorts" `Quick test_ladder_spawn;
    Alcotest.test_case "des: ladder equal-key cluster sorts by seq" `Quick
      test_ladder_equal_key_cluster;
    Alcotest.test_case "des: ladder insert into drained span stays ordered" `Quick
      test_ladder_insert_into_drained_span;
    Alcotest.test_case "des: pqueue pop releases the payload" `Quick test_pqueue_pop_releases;
    Alcotest.test_case "des: packed bounds checks" `Quick test_packed_bounds;
    Alcotest.test_case "des: engine error paths per backend" `Quick test_engine_errors;
    test_backend_equivalence;
    test_packed_roundtrip;
  ]
