module Rng = Stratify_prng.Rng
open Stratify_core

(* ------------------------------------------------------------------ *)
(* MMO                                                                 *)

let test_mmo_closed_form_table1 () =
  (* Table 1's constant-b0 MMO row: 1.67 2.5 3.2 4 4.71 5.5 *)
  Helpers.check_close ~eps:0.005 "b0=2" 1.67 (Mmo.closed_form 2);
  Helpers.check_close "b0=3" 2.5 (Mmo.closed_form 3);
  Helpers.check_close "b0=4" 3.2 (Mmo.closed_form 4);
  Helpers.check_close "b0=5" 4. (Mmo.closed_form 5);
  Helpers.check_close ~eps:0.005 "b0=6" 4.714 (Mmo.closed_form 6);
  Helpers.check_close "b0=7" 5.5 (Mmo.closed_form 7)

let test_mmo_asymptote () =
  Helpers.check_close "asymptote 8" 6. (Mmo.asymptote 8);
  (* closed_form(b0)/b0 -> 3/4 *)
  let ratio = Mmo.closed_form 400 /. 400. in
  Helpers.check_close ~eps:0.002 "limit 3/4" 0.75 ratio

let test_mmo_empirical_matches_closed_form () =
  (* Large complete-graph b0-matching: empirical MMO equals the block
     closed form when (b0+1) divides n. *)
  List.iter
    (fun b0 ->
      let n = 60 / (b0 + 1) * (b0 + 1) in
      let adj = Cluster.collaboration_graph ~b:(Array.make n b0) () in
      Helpers.check_close ~eps:1e-9
        (Printf.sprintf "b0=%d" b0)
        (Mmo.closed_form b0) (Mmo.of_adjacency adj))
    [ 1; 2; 3; 4; 5 ]

let test_mmo_unmated_contribute_zero () =
  Helpers.check_close "all isolated" 0. (Mmo.of_adjacency [| [||]; [||]; [||] |]);
  Helpers.check_close "empty graph" 0. (Mmo.of_adjacency [||])

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

let test_cluster_block_structure () =
  (* Fig 4 for several (n, b0), with and without truncated remainder. *)
  List.iter
    (fun (n, b0) ->
      let adj = Cluster.collaboration_graph ~b:(Array.make n b0) () in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d b0=%d" n b0)
        true
        (Cluster.matches_block_structure ~n ~b0 adj))
    [ (9, 2); (12, 3); (10, 3); (7, 2); (20, 4); (5, 0) ]

let test_cluster_analysis () =
  let a = Cluster.analyze_budgets ~b:(Array.make 9 2) in
  Alcotest.(check int) "three triangles" 3 a.Cluster.count;
  Alcotest.(check int) "largest" 3 a.Cluster.largest;
  Helpers.check_close "mean" 3. a.Cluster.mean_size;
  Alcotest.(check (array int)) "sizes sorted" [| 3; 3; 3 |] a.Cluster.component_sizes

let test_cluster_truncated_remainder () =
  (* n = 8, b0 = 2: two triangles + a pair. *)
  let a = Cluster.analyze_budgets ~b:(Array.make 8 2) in
  Alcotest.(check (array int)) "sizes" [| 3; 3; 2 |] a.Cluster.component_sizes

let test_predicted_block () =
  Alcotest.(check (list int)) "first block" [ 0; 1; 2 ] (Cluster.predicted_block ~n:9 ~b0:2 ~peer:1);
  Alcotest.(check (list int)) "last truncated" [ 6; 7 ] (Cluster.predicted_block ~n:8 ~b0:2 ~peer:7);
  Alcotest.(check (list int)) "b0=0 singleton" [ 5 ] (Cluster.predicted_block ~n:9 ~b0:0 ~peer:5)

let test_extra_connection_connects_fig5 () =
  (* Fig 5: b0 = 2 everywhere plus one extra slot on peer 0 chains all
     clusters together. *)
  let n = 8 in
  let b = Normal_b.with_extra (Normal_b.constant ~n ~b0:2) ~peer:0 in
  let analysis = Cluster.analyze_budgets ~b in
  Alcotest.(check int) "single component" 1 analysis.Cluster.count;
  Alcotest.(check int) "spans everyone" n analysis.Cluster.largest;
  (* Without the extra slot: disconnected (Fig 4). *)
  let base = Cluster.analyze_budgets ~b:(Normal_b.constant ~n ~b0:2) in
  Alcotest.(check bool) "baseline disconnected" true (base.Cluster.count > 1)

let test_connectivity_lower_bound () =
  (* §4.1's remark: 1-regular collaboration graphs can never be connected
     beyond a pair, and b0 = 2 gives cycles at best. *)
  let a1 = Cluster.analyze_budgets ~b:(Array.make 10 1) in
  Alcotest.(check int) "pairs only" 2 a1.Cluster.largest;
  let a2 = Cluster.analyze_budgets ~b:(Array.make 10 2) in
  Alcotest.(check bool) "b0=2 clusters of 3" true (a2.Cluster.largest <= 3)

(* ------------------------------------------------------------------ *)
(* Normal_b                                                            *)

let test_normal_b_constant_and_extra () =
  Alcotest.(check (array int)) "constant" [| 3; 3; 3 |] (Normal_b.constant ~n:3 ~b0:3);
  let b = Normal_b.with_extra [| 2; 2 |] ~peer:1 in
  Alcotest.(check (array int)) "extra" [| 2; 3 |] b

let test_normal_b_sampling () =
  let rng = Helpers.rng () in
  let b = Normal_b.rounded_normal rng ~n:5000 ~mean:6. ~sigma:0.2 in
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x >= 1)) b;
  let mean = Array.fold_left ( + ) 0 b |> float_of_int in
  Helpers.check_close ~eps:0.1 "mean near 6" 6. (mean /. 5000.);
  (* sigma = 0.2 gives mostly 6s with some 5s and 7s. *)
  let distinct = List.sort_uniq compare (Array.to_list b) in
  Alcotest.(check bool) "a few values" true (List.length distinct <= 4)

(* ------------------------------------------------------------------ *)
(* Phase transition                                                    *)

let test_phase_sigma_zero_matches_constant () =
  let rng = Helpers.rng () in
  let point = Phase.measure rng ~n:700 ~mean_b:6. ~sigma:0. ~replicates:1 in
  Helpers.check_close "cluster size b0+1" 7. point.Phase.mean_cluster_size;
  Helpers.check_close ~eps:0.01 "MMO closed form" (Mmo.closed_form 6) point.Phase.mmo

let test_phase_transition_explodes () =
  let rng = Helpers.rng ~seed:5 () in
  (* b̄ = 3 keeps cluster sizes small enough for a quick test. *)
  let points =
    Phase.sweep rng ~n:4000 ~mean_b:3. ~sigmas:[| 0.; 0.1; 0.3; 0.6 |] ~replicates:3
  in
  let base = points.(0) and after = points.(2) in
  Alcotest.(check bool)
    (Printf.sprintf "explosion: %.1f -> %.1f" base.Phase.mean_cluster_size
       after.Phase.mean_cluster_size)
    true
    (after.Phase.mean_cluster_size > 3. *. base.Phase.mean_cluster_size);
  (* MMO decreases across the transition (Fig 6's contrast). *)
  Alcotest.(check bool)
    (Printf.sprintf "MMO falls: %.2f -> %.2f" base.Phase.mmo after.Phase.mmo)
    true (after.Phase.mmo < base.Phase.mmo);
  match Phase.transition_sigma points ~threshold:2. with
  | Some s -> Alcotest.(check bool) "transition below 0.4" true (s <= 0.4)
  | None -> Alcotest.fail "no transition found"

let test_phase_invalid () =
  let rng = Helpers.rng () in
  Alcotest.check_raises "replicates" (Invalid_argument "Phase.measure: need replicates > 0")
    (fun () -> ignore (Phase.measure rng ~n:10 ~mean_b:2. ~sigma:0.1 ~replicates:0))

let suite =
  [
    Alcotest.test_case "MMO closed form (Table 1)" `Quick test_mmo_closed_form_table1;
    Alcotest.test_case "MMO asymptote 3b0/4" `Quick test_mmo_asymptote;
    Alcotest.test_case "empirical MMO = closed form" `Quick test_mmo_empirical_matches_closed_form;
    Alcotest.test_case "MMO of isolated peers" `Quick test_mmo_unmated_contribute_zero;
    Alcotest.test_case "Fig 4 block structure" `Quick test_cluster_block_structure;
    Alcotest.test_case "cluster analysis" `Quick test_cluster_analysis;
    Alcotest.test_case "truncated remainder block" `Quick test_cluster_truncated_remainder;
    Alcotest.test_case "predicted blocks" `Quick test_predicted_block;
    Alcotest.test_case "Fig 5: one extra slot reconnects" `Quick test_extra_connection_connects_fig5;
    Alcotest.test_case "connectivity lower bound (b0 >= 3)" `Quick test_connectivity_lower_bound;
    Alcotest.test_case "budget constructors" `Quick test_normal_b_constant_and_extra;
    Alcotest.test_case "rounded-normal sampling" `Quick test_normal_b_sampling;
    Alcotest.test_case "sigma = 0 reduces to constant matching" `Quick
      test_phase_sigma_zero_matches_constant;
    Alcotest.test_case "phase transition (Fig 6)" `Slow test_phase_transition_explodes;
    Alcotest.test_case "phase validation" `Quick test_phase_invalid;
  ]
